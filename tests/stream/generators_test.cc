#include "stream/generators.h"

#include <gtest/gtest.h>

#include <cmath>

namespace topkmon {
namespace {

TEST(GeneratorsTest, DistributionNames) {
  EXPECT_STREQ(DistributionName(Distribution::kIndependent), "IND");
  EXPECT_STREQ(DistributionName(Distribution::kAntiCorrelated), "ANT");
  EXPECT_STREQ(DistributionName(Distribution::kClustered), "CLU");
}

TEST(GeneratorsTest, ParseDistribution) {
  EXPECT_TRUE(ParseDistribution("ind").ok());
  EXPECT_TRUE(ParseDistribution("IND").ok());
  EXPECT_TRUE(ParseDistribution("anticorrelated").ok());
  EXPECT_TRUE(ParseDistribution("clu").ok());
  EXPECT_FALSE(ParseDistribution("zipf").ok());
}

TEST(GeneratorsTest, SameSeedSameStream) {
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAntiCorrelated,
        Distribution::kClustered}) {
    auto a = MakeGenerator(dist, 3, 42);
    auto b = MakeGenerator(dist, 3, 42);
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(a->NextPoint(), b->NextPoint());
    }
  }
}

class GeneratorInUnitSpace : public ::testing::TestWithParam<
                                 std::tuple<Distribution, int>> {};

TEST_P(GeneratorInUnitSpace, AllPointsInsideUnitSpace) {
  const auto [dist, dim] = GetParam();
  auto gen = MakeGenerator(dist, dim, 7);
  for (int i = 0; i < 2000; ++i) {
    const Point p = gen->NextPoint();
    ASSERT_EQ(p.dim(), dim);
    ASSERT_TRUE(p.InUnitSpace()) << p.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDistsAndDims, GeneratorInUnitSpace,
    ::testing::Combine(::testing::Values(Distribution::kIndependent,
                                         Distribution::kAntiCorrelated,
                                         Distribution::kClustered),
                       ::testing::Values(1, 2, 3, 4, 6)));

TEST(GeneratorsTest, IndependentCoordinatesAreUncorrelated) {
  auto gen = MakeGenerator(Distribution::kIndependent, 2, 11);
  const int n = 20000;
  double sx = 0, sy = 0, sxy = 0, sxx = 0, syy = 0;
  for (int i = 0; i < n; ++i) {
    const Point p = gen->NextPoint();
    sx += p[0];
    sy += p[1];
    sxy += p[0] * p[1];
    sxx += p[0] * p[0];
    syy += p[1] * p[1];
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  const double corr = cov / std::sqrt(vx * vy);
  EXPECT_NEAR(corr, 0.0, 0.05);
  EXPECT_NEAR(sx / n, 0.5, 0.02);
}

TEST(GeneratorsTest, AntiCorrelatedCoordinatesAreNegativelyCorrelated) {
  auto gen = MakeGenerator(Distribution::kAntiCorrelated, 2, 13);
  const int n = 20000;
  double sx = 0, sy = 0, sxy = 0, sxx = 0, syy = 0;
  for (int i = 0; i < n; ++i) {
    const Point p = gen->NextPoint();
    sx += p[0];
    sy += p[1];
    sxy += p[0] * p[1];
    sxx += p[0] * p[0];
    syy += p[1] * p[1];
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  const double corr = cov / std::sqrt(vx * vy);
  EXPECT_LT(corr, -0.3) << "ANT data must be strongly anti-correlated";
}

TEST(GeneratorsTest, AntiCorrelatedConcentratesNearDiagonalPlane) {
  // Section 8: ANT data concentrate close to the plane through
  // (0.5, ..., 0.5) perpendicular to the main diagonal, i.e. the
  // coordinate sums cluster around d * 0.5.
  const int dim = 4;
  auto gen = MakeGenerator(Distribution::kAntiCorrelated, dim, 17);
  const int n = 10000;
  double sum_mean = 0, sum_var = 0;
  std::vector<double> sums;
  sums.reserve(n);
  for (int i = 0; i < n; ++i) {
    const Point p = gen->NextPoint();
    double s = 0;
    for (int j = 0; j < dim; ++j) s += p[j];
    sums.push_back(s);
    sum_mean += s;
  }
  sum_mean /= n;
  for (double s : sums) sum_var += (s - sum_mean) * (s - sum_mean);
  sum_var /= n;
  EXPECT_NEAR(sum_mean, 0.5 * dim, 0.1);
  // IND sums would have variance dim/12 ~ 0.33; ANT must be much tighter
  // per-point around its plane... but the plane itself moves (v ~ N(0.5,
  // 0.16)), so compare against the IND variance.
  EXPECT_LT(sum_var, dim / 12.0 * 2.0);
}

TEST(GeneratorsTest, ClusteredPointsHitMultipleClusters) {
  auto gen = MakeGenerator(Distribution::kClustered, 2, 19);
  // Crude check: points should not all be identical and should span a
  // nontrivial part of the space.
  double min_x = 1.0, max_x = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const Point p = gen->NextPoint();
    min_x = std::min(min_x, p[0]);
    max_x = std::max(max_x, p[0]);
  }
  EXPECT_GT(max_x - min_x, 0.2);
}

TEST(RecordSourceTest, AssignsIncreasingIdsAndTimestamps) {
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 3));
  const Record a = source.Next(5);
  const Record b = source.Next(6);
  EXPECT_EQ(a.id, 0u);
  EXPECT_EQ(b.id, 1u);
  EXPECT_EQ(a.arrival, 5);
  EXPECT_EQ(b.arrival, 6);
  const std::vector<Record> batch = source.NextBatch(10, 7);
  ASSERT_EQ(batch.size(), 10u);
  EXPECT_EQ(batch.front().id, 2u);
  EXPECT_EQ(batch.back().id, 11u);
  EXPECT_EQ(source.next_id(), 12u);
}

}  // namespace
}  // namespace topkmon
