#include "stream/update_stream.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace topkmon {
namespace {

UpdateStreamGenerator MakeGen(double delete_fraction, std::uint64_t seed) {
  return UpdateStreamGenerator(
      MakeGenerator(Distribution::kIndependent, 2, seed), delete_fraction,
      seed + 1);
}

TEST(UpdateStreamTest, ZeroDeleteFractionIsInsertOnly) {
  UpdateStreamGenerator gen = MakeGen(0.0, 5);
  for (int i = 0; i < 200; ++i) {
    const UpdateOp op = gen.Next(0);
    ASSERT_EQ(op.kind, UpdateOp::Kind::kInsert);
  }
  EXPECT_EQ(gen.live_count(), 200u);
}

TEST(UpdateStreamTest, DeletesTargetLiveRecords) {
  UpdateStreamGenerator gen = MakeGen(0.4, 9);
  std::unordered_set<RecordId> live;
  for (int i = 0; i < 5000; ++i) {
    const UpdateOp op = gen.Next(0);
    if (op.kind == UpdateOp::Kind::kInsert) {
      EXPECT_TRUE(live.insert(op.record.id).second);
    } else {
      EXPECT_EQ(live.erase(op.record.id), 1u)
          << "deletion of non-live record " << op.record.id;
    }
    ASSERT_EQ(gen.live_count(), live.size());
  }
}

TEST(UpdateStreamTest, DeleteFractionApproximatelyRespected) {
  UpdateStreamGenerator gen = MakeGen(0.3, 21);
  int deletes = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (gen.Next(0).kind == UpdateOp::Kind::kDelete) ++deletes;
  }
  EXPECT_NEAR(static_cast<double>(deletes) / n, 0.3, 0.02);
}

TEST(UpdateStreamTest, InsertIdsAreUniqueAndIncreasing) {
  UpdateStreamGenerator gen = MakeGen(0.5, 33);
  RecordId last = 0;
  bool first = true;
  for (int i = 0; i < 2000; ++i) {
    const UpdateOp op = gen.Next(0);
    if (op.kind != UpdateOp::Kind::kInsert) continue;
    if (!first) {
      EXPECT_GT(op.record.id, last);
    }
    last = op.record.id;
    first = false;
  }
}

TEST(UpdateStreamTest, BatchCarriesTimestamps) {
  UpdateStreamGenerator gen = MakeGen(0.0, 1);
  const std::vector<UpdateOp> ops = gen.NextBatch(5, 42);
  ASSERT_EQ(ops.size(), 5u);
  for (const UpdateOp& op : ops) EXPECT_EQ(op.record.arrival, 42);
}

TEST(UpdateStreamTest, FirstOpIsInsertEvenWithHighDeleteFraction) {
  UpdateStreamGenerator gen = MakeGen(0.9, 2);
  EXPECT_EQ(gen.Next(0).kind, UpdateOp::Kind::kInsert);
}

}  // namespace
}  // namespace topkmon
