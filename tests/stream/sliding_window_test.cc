#include "stream/sliding_window.h"

#include <gtest/gtest.h>

namespace topkmon {
namespace {

Record Rec(RecordId id, double x, Timestamp t) {
  return Record(id, Point{x, x}, t);
}

TEST(SlidingWindowTest, CountBasedEvictsOldestBeyondCapacity) {
  SlidingWindow w = SlidingWindow::CountBased(3);
  for (RecordId i = 0; i < 5; ++i) {
    ASSERT_TRUE(w.Append(Rec(i, 0.5, static_cast<Timestamp>(i))).ok());
  }
  const std::vector<Record> expired = w.EvictExpired(5);
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].id, 0u);
  EXPECT_EQ(expired[1].id, 1u);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_FALSE(w.Contains(1));
  EXPECT_TRUE(w.Contains(2));
  EXPECT_TRUE(w.Contains(4));
}

TEST(SlidingWindowTest, TimeBasedEvictsByArrivalCutoff) {
  SlidingWindow w = SlidingWindow::TimeBased(10);
  ASSERT_TRUE(w.Append(Rec(0, 0.1, 0)).ok());
  ASSERT_TRUE(w.Append(Rec(1, 0.2, 5)).ok());
  ASSERT_TRUE(w.Append(Rec(2, 0.3, 12)).ok());
  // At now=12 the cutoff is 2: record 0 (arrival 0 <= 2) expires.
  std::vector<Record> expired = w.EvictExpired(12);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, 0u);
  // At now=15 the cutoff is 5: record 1 (arrival 5 <= 5) expires too.
  expired = w.EvictExpired(15);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, 1u);
  EXPECT_EQ(w.size(), 1u);
}

TEST(SlidingWindowTest, GetReturnsStoredRecord) {
  SlidingWindow w = SlidingWindow::CountBased(10);
  ASSERT_TRUE(w.Append(Rec(0, 0.25, 1)).ok());
  ASSERT_TRUE(w.Append(Rec(1, 0.75, 1)).ok());
  EXPECT_EQ(w.Get(1).position[0], 0.75);
  EXPECT_EQ(w.Get(0).arrival, 1);
}

TEST(SlidingWindowTest, GetAfterEvictionUsesShiftedBase) {
  SlidingWindow w = SlidingWindow::CountBased(2);
  for (RecordId i = 0; i < 4; ++i) {
    ASSERT_TRUE(w.Append(Rec(i, 0.1 * static_cast<double>(i + 1),
                             static_cast<Timestamp>(i)))
                    .ok());
    w.EvictExpired(static_cast<Timestamp>(i));
  }
  EXPECT_TRUE(w.Contains(2));
  EXPECT_TRUE(w.Contains(3));
  EXPECT_DOUBLE_EQ(w.Get(3).position[0], 0.4);
}

TEST(SlidingWindowTest, RejectsNonContiguousIds) {
  SlidingWindow w = SlidingWindow::CountBased(10);
  ASSERT_TRUE(w.Append(Rec(0, 0.5, 0)).ok());
  const Status s = w.Append(Rec(2, 0.5, 0));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(SlidingWindowTest, RejectsInvalidId) {
  SlidingWindow w = SlidingWindow::CountBased(10);
  Record r = Rec(kInvalidRecordId, 0.5, 0);
  EXPECT_EQ(w.Append(r).code(), StatusCode::kInvalidArgument);
}

TEST(SlidingWindowTest, RejectsDecreasingTimestamps) {
  SlidingWindow w = SlidingWindow::CountBased(10);
  ASSERT_TRUE(w.Append(Rec(0, 0.5, 5)).ok());
  EXPECT_EQ(w.Append(Rec(1, 0.5, 4)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SlidingWindowTest, IterationIsArrivalOrdered) {
  SlidingWindow w = SlidingWindow::CountBased(10);
  for (RecordId i = 0; i < 5; ++i) {
    ASSERT_TRUE(w.Append(Rec(i, 0.5, 0)).ok());
  }
  RecordId expect = 0;
  for (const Record& r : w) EXPECT_EQ(r.id, expect++);
  EXPECT_EQ(expect, 5u);
}

TEST(SlidingWindowTest, OldestIsFrontOfFifo) {
  SlidingWindow w = SlidingWindow::CountBased(2);
  ASSERT_TRUE(w.Append(Rec(0, 0.5, 0)).ok());
  ASSERT_TRUE(w.Append(Rec(1, 0.5, 0)).ok());
  EXPECT_EQ(w.Oldest().id, 0u);
  ASSERT_TRUE(w.Append(Rec(2, 0.5, 1)).ok());
  w.EvictExpired(1);
  EXPECT_EQ(w.Oldest().id, 1u);
}

TEST(SlidingWindowTest, EmptyWindowBehaves) {
  SlidingWindow w = SlidingWindow::TimeBased(5);
  EXPECT_TRUE(w.empty());
  EXPECT_TRUE(w.EvictExpired(100).empty());
  EXPECT_FALSE(w.Contains(0));
}

TEST(SlidingWindowTest, ExactCapacityDoesNotEvict) {
  SlidingWindow w = SlidingWindow::CountBased(3);
  for (RecordId i = 0; i < 3; ++i) {
    ASSERT_TRUE(w.Append(Rec(i, 0.5, 0)).ok());
  }
  EXPECT_TRUE(w.EvictExpired(0).empty());
  EXPECT_EQ(w.size(), 3u);
}

TEST(SlidingWindowTest, MemoryBytesTracksSize) {
  SlidingWindow w = SlidingWindow::CountBased(100);
  EXPECT_EQ(w.MemoryBytes(), 0u);
  ASSERT_TRUE(w.Append(Rec(0, 0.5, 0)).ok());
  EXPECT_EQ(w.MemoryBytes(), sizeof(Record));
}

}  // namespace
}  // namespace topkmon
