// RecordArena lifetime and recycling, plus the zero-copy decode path's
// arena discipline under hostile bytes.
//
// The arena's contract has three interlocking rules — a chunk recycles
// only when (1) fully released, (2) its newest epoch is retired, and
// (3) no consumer pins an epoch at or below it — and every rule exists
// because some consumer holds views past the obvious release point: a
// parked long-poll, a journal writer serializing a span, a decode that
// failed mid-frame. Each test here breaks exactly one rule and asserts
// storage stays put, then restores it and asserts storage moves.
//
// Suite names (RecordArena*, ZeroCopy*) are pinned by CI's TSan job
// (.github/workflows/ci.yml), which runs them under the race detector.

#include "stream/record_arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/record.h"
#include "net/protocol.h"

namespace topkmon {
namespace {

Record* FillSpan(RecordArena& arena, std::size_t n, RecordId first_id) {
  Record* span = arena.Allocate(n);
  for (std::size_t i = 0; i < n; ++i) {
    span[i].id = first_id + i;
    span[i].position = Point(2);
    span[i].position[0] = 0.25;
    span[i].position[1] = 0.75;
    span[i].arrival = static_cast<Timestamp>(first_id + i);
  }
  return span;
}

TEST(RecordArenaTest, AllocateZeroReturnsNull) {
  RecordArena arena;
  EXPECT_EQ(arena.Allocate(0), nullptr);
}

TEST(RecordArenaTest, ReleasedAndRetiredChunksRecycle) {
  RecordArenaOptions opt;
  opt.chunk_records = 8;
  opt.max_free_chunks = 2;
  RecordArena arena(opt);

  Record* a = FillSpan(arena, 8, 0);
  arena.Release(a, 8);
  arena.RetireThrough(arena.AdvanceEpoch());
  const std::size_t resident = arena.ResidentBytes();

  // The next same-size span must come from the free list, not malloc.
  Record* b = FillSpan(arena, 8, 8);
  EXPECT_EQ(arena.ResidentBytes(), resident);
  arena.Release(b, 8);
  arena.RetireThrough(arena.AdvanceEpoch());

  const RecordArenaStats s = arena.stats();
  EXPECT_EQ(s.allocated_records, 16u);
  EXPECT_EQ(s.released_records, 16u);
  EXPECT_GE(s.chunks_recycled, 1u);
}

TEST(RecordArenaTest, UnretiredEpochHoldsStorage) {
  RecordArenaOptions opt;
  opt.chunk_records = 4;
  RecordArena arena(opt);

  Record* a = FillSpan(arena, 4, 0);
  arena.Release(a, 4);
  // Fully released but the epoch was never retired: no recycling.
  EXPECT_EQ(arena.stats().chunks_recycled, 0u);
  arena.RetireThrough(arena.AdvanceEpoch());
  Record* b = FillSpan(arena, 4, 4);
  EXPECT_GE(arena.stats().chunks_recycled, 1u);
  arena.Release(b, 4);
}

TEST(RecordArenaTest, PinnedEpochHoldsStorageAgainstRetire) {
  RecordArenaOptions opt;
  opt.chunk_records = 4;
  RecordArena arena(opt);

  const std::uint64_t epoch = arena.current_epoch();
  Record* a = FillSpan(arena, 4, 0);
  // A parked long-poll (or journal writer) pins the epoch while holding
  // a view past its release point.
  arena.PinEpoch(epoch);
  arena.Release(a, 4);
  arena.RetireThrough(arena.AdvanceEpoch());
  // Released AND retired, but pinned: the span must stay readable.
  EXPECT_EQ(arena.stats().chunks_recycled, 0u);
  EXPECT_EQ(a[3].id, 3u);
  EXPECT_EQ(a[3].position[1], 0.75);

  arena.UnpinEpoch(epoch);
  Record* b = FillSpan(arena, 4, 4);
  EXPECT_GE(arena.stats().chunks_recycled, 1u);
  arena.Release(b, 4);
}

TEST(RecordArenaTest, SplitReleaseReclaimsWholeChunk) {
  RecordArenaOptions opt;
  opt.chunk_records = 8;
  RecordArena arena(opt);

  // The server's shape: admitted prefix released after cycle publish,
  // rejected suffix released immediately — split, out of order.
  Record* span = FillSpan(arena, 8, 0);
  arena.Release(span + 5, 3);  // rejected suffix first
  arena.RetireThrough(arena.AdvanceEpoch());
  EXPECT_EQ(arena.stats().chunks_recycled, 0u);
  arena.Release(span, 5);  // admitted prefix after publish
  Record* next = FillSpan(arena, 8, 8);
  EXPECT_GE(arena.stats().chunks_recycled, 1u);
  arena.Release(next, 8);
}

TEST(RecordArenaTest, OversizedSpanGetsDedicatedChunk) {
  RecordArenaOptions opt;
  opt.chunk_records = 4;
  opt.max_free_chunks = 1;
  RecordArena arena(opt);

  Record* big = FillSpan(arena, 64, 0);
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_EQ(big[i].id, i);
  }
  arena.Release(big, 64);
  arena.RetireThrough(arena.AdvanceEpoch());
  // One big free chunk is kept; a second oversized round must reuse it.
  const std::size_t resident = arena.ResidentBytes();
  Record* again = FillSpan(arena, 64, 64);
  EXPECT_LE(arena.ResidentBytes(), resident + 64 * sizeof(Record));
  arena.Release(again, 64);
}

TEST(RecordArenaTest, FreeListCapBoundsResidency) {
  RecordArenaOptions opt;
  opt.chunk_records = 8;
  opt.max_free_chunks = 2;
  RecordArena arena(opt);

  // Recycle-under-pressure: many rounds, each fully released + retired.
  // Residency must flatline at the free-list cap, not ratchet.
  std::size_t high_water = 0;
  for (int round = 0; round < 200; ++round) {
    Record* a = FillSpan(arena, 8, static_cast<RecordId>(round) * 24);
    Record* b = FillSpan(arena, 8, static_cast<RecordId>(round) * 24 + 8);
    Record* c = FillSpan(arena, 8, static_cast<RecordId>(round) * 24 + 16);
    arena.Release(b, 8);
    arena.Release(a, 8);
    arena.Release(c, 8);
    arena.RetireThrough(arena.AdvanceEpoch());
    high_water = std::max(high_water, arena.ResidentBytes());
  }
  // 3 in-flight chunks + the free list; anything past that is a leak.
  EXPECT_LE(high_water,
            (3 + opt.max_free_chunks) * opt.chunk_records * sizeof(Record));
  const RecordArenaStats s = arena.stats();
  EXPECT_EQ(s.allocated_records, s.released_records);
  EXPECT_GE(s.chunks_recycled + s.chunks_freed, 100u);
}

TEST(RecordArenaTest, ConcurrentProducersAndRecycler) {
  RecordArenaOptions opt;
  opt.chunk_records = 32;
  RecordArena arena(opt);

  // The service's real shape under TSan: several poll loops decode into
  // the arena while the driver seals epochs and retires them.
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&arena, t] {
      for (int round = 0; round < 100; ++round) {
        Record* span =
            FillSpan(arena, 8, static_cast<RecordId>(t) * 100000 +
                                   static_cast<RecordId>(round) * 8);
        for (std::size_t i = 0; i < 8; ++i) {
          ASSERT_EQ(span[i].position[0], 0.25);
        }
        arena.Release(span, 8);
      }
    });
  }
  std::thread recycler([&arena] {
    for (int i = 0; i < 200; ++i) {
      arena.RetireThrough(arena.AdvanceEpoch());
    }
  });
  for (std::thread& p : producers) p.join();
  recycler.join();
  arena.RetireThrough(arena.AdvanceEpoch());
  const RecordArenaStats s = arena.stats();
  EXPECT_EQ(s.allocated_records, s.released_records);
  EXPECT_EQ(s.allocated_records, 4u * 100u * 8u);
}

// ---- zero-copy decode: hostile bytes must leave the arena consistent --

std::string EncodeIngestBody(const std::vector<Record>& records) {
  std::string body;
  EncodeIngest(records, &body);
  return body;
}

std::vector<Record> SampleRecords(std::size_t n) {
  std::vector<Record> records;
  for (std::size_t i = 0; i < n; ++i) {
    Point p(2);
    p[0] = 0.1 + 0.001 * static_cast<double>(i);
    p[1] = 0.9 - 0.001 * static_cast<double>(i);
    records.emplace_back(static_cast<RecordId>(i), p,
                         static_cast<Timestamp>(100 + i));
  }
  return records;
}

TEST(ZeroCopyDecodeTest, ValidFrameDecodesBitwise) {
  RecordArena arena;
  const std::vector<Record> records = SampleRecords(17);
  const std::string body = EncodeIngestBody(records);
  IngestFrameView view;
  ASSERT_TRUE(
      DecodeIngestBodyToArena(body.data(), body.size(), 2, arena, &view)
          .ok());
  ASSERT_EQ(view.count, records.size());
  EXPECT_TRUE(view.invalid.empty());
  for (std::size_t i = 0; i < view.count; ++i) {
    EXPECT_EQ(view.records[i].id, records[i].id);
    EXPECT_EQ(view.records[i].arrival, records[i].arrival);
    for (int d = 0; d < 2; ++d) {
      const double a = view.records[i].position[d];
      const double b = records[i].position[d];
      EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0);
    }
  }
  arena.Release(view.records, view.count);
  const RecordArenaStats s = arena.stats();
  EXPECT_EQ(s.allocated_records, s.released_records);
}

TEST(ZeroCopyDecodeTest, TruncatedFrameReleasesItsAllocation) {
  RecordArena arena;
  const std::string body = EncodeIngestBody(SampleRecords(9));
  // Chop the body mid-span: the count prefix survives, the records do
  // not — decode must fail AND hand back everything it allocated.
  for (std::size_t cut = 6; cut < body.size(); cut += 7) {
    IngestFrameView view;
    const Status st =
        DecodeIngestBodyToArena(body.data(), cut, 2, arena, &view);
    EXPECT_FALSE(st.ok()) << "cut=" << cut;
    EXPECT_EQ(view.count, 0u);
  }
  const RecordArenaStats s = arena.stats();
  EXPECT_EQ(s.allocated_records, s.released_records);
  arena.RetireThrough(arena.AdvanceEpoch());
  // A fresh decode into the now-consistent arena still works.
  IngestFrameView view;
  const std::string good = EncodeIngestBody(SampleRecords(4));
  ASSERT_TRUE(
      DecodeIngestBodyToArena(good.data(), good.size(), 2, arena, &view)
          .ok());
  EXPECT_EQ(view.count, 4u);
  arena.Release(view.records, view.count);
}

TEST(ZeroCopyDecodeTest, HostileCountRefusedBeforeAllocation) {
  RecordArena arena;
  std::string body = EncodeIngestBody(SampleRecords(3));
  // Rewrite the u32 count (bytes 1..4, after the type tag) to promise
  // ~16M records backed by a handful of bytes.
  const std::uint32_t hostile = 0x00FFFFFFu;
  std::memcpy(&body[1], &hostile, sizeof(hostile));
  IngestFrameView view;
  const Status st =
      DecodeIngestBodyToArena(body.data(), body.size(), 2, arena, &view);
  EXPECT_FALSE(st.ok());
  // Refused before sizing an allocation: the arena never grew.
  EXPECT_EQ(arena.stats().allocated_records, 0u);
  EXPECT_EQ(arena.ResidentBytes(), 0u);
}

TEST(ZeroCopyDecodeTest, TrailingGarbageRefusedAndReleased) {
  RecordArena arena;
  std::string body = EncodeIngestBody(SampleRecords(5));
  body.append("garbage");
  IngestFrameView view;
  EXPECT_FALSE(
      DecodeIngestBodyToArena(body.data(), body.size(), 2, arena, &view)
          .ok());
  const RecordArenaStats s = arena.stats();
  EXPECT_EQ(s.allocated_records, s.released_records);
}

TEST(ZeroCopyDecodeTest, OutOfSpacePointsFlaggedNotRefused) {
  RecordArena arena;
  std::vector<Record> records = SampleRecords(6);
  records[2].position[0] = 1.5;   // outside the unit space
  records[4].position[1] = -0.5;  // ditto
  const std::string body = EncodeIngestBody(records);
  IngestFrameView view;
  // Unit-space violations are PER-RECORD refusals, not frame failures:
  // the frame decodes, the offenders land in `invalid`, and the caller
  // interleaves their rejections between the valid runs.
  ASSERT_TRUE(
      DecodeIngestBodyToArena(body.data(), body.size(), 2, arena, &view)
          .ok());
  ASSERT_EQ(view.count, 6u);
  ASSERT_EQ(view.invalid.size(), 2u);
  EXPECT_EQ(view.invalid[0], 2u);
  EXPECT_EQ(view.invalid[1], 4u);
  EXPECT_FALSE(view.first_invalid.ok());
  arena.Release(view.records, view.count);
}

TEST(ZeroCopyDecodeTest, DimensionMismatchFlagsEveryRecord) {
  RecordArena arena;
  const std::string body = EncodeIngestBody(SampleRecords(4));
  IngestFrameView view;
  ASSERT_TRUE(
      DecodeIngestBodyToArena(body.data(), body.size(), /*dim=*/3, arena,
                              &view)
          .ok());
  ASSERT_EQ(view.count, 4u);
  EXPECT_EQ(view.invalid.size(), 4u);
  EXPECT_FALSE(view.first_invalid.ok());
  arena.Release(view.records, view.count);
}

}  // namespace
}  // namespace topkmon
