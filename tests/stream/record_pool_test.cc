#include "stream/record_pool.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/rng.h"

namespace topkmon {
namespace {

Record Rec(RecordId id, double x) { return Record(id, Point{x, x}, 0); }

TEST(RecordPoolTest, InsertFindErase) {
  RecordPool pool;
  ASSERT_TRUE(pool.Insert(Rec(7, 0.5)).ok());
  EXPECT_TRUE(pool.Contains(7));
  EXPECT_EQ(pool.size(), 1u);
  const Result<Record> found = pool.Find(7);
  ASSERT_TRUE(found.ok());
  EXPECT_DOUBLE_EQ(found->position[0], 0.5);
  ASSERT_TRUE(pool.Erase(7).ok());
  EXPECT_FALSE(pool.Contains(7));
  EXPECT_TRUE(pool.empty());
}

TEST(RecordPoolTest, DuplicateInsertFails) {
  RecordPool pool;
  ASSERT_TRUE(pool.Insert(Rec(1, 0.1)).ok());
  EXPECT_EQ(pool.Insert(Rec(1, 0.2)).code(), StatusCode::kAlreadyExists);
}

TEST(RecordPoolTest, EraseMissingFails) {
  RecordPool pool;
  EXPECT_EQ(pool.Erase(3).code(), StatusCode::kNotFound);
}

TEST(RecordPoolTest, FindMissingFails) {
  RecordPool pool;
  EXPECT_EQ(pool.Find(3).status().code(), StatusCode::kNotFound);
}

TEST(RecordPoolTest, RejectsInvalidId) {
  RecordPool pool;
  EXPECT_EQ(pool.Insert(Rec(kInvalidRecordId, 0.5)).code(),
            StatusCode::kInvalidArgument);
}

TEST(RecordPoolTest, SlotsAreReused) {
  RecordPool pool;
  for (RecordId i = 0; i < 100; ++i) ASSERT_TRUE(pool.Insert(Rec(i, 0.5)).ok());
  const std::size_t bytes_full = pool.MemoryBytes();
  for (RecordId i = 0; i < 100; ++i) ASSERT_TRUE(pool.Erase(i).ok());
  for (RecordId i = 100; i < 200; ++i) {
    ASSERT_TRUE(pool.Insert(Rec(i, 0.5)).ok());
  }
  // Reinsertion into freed slots must not grow the slab: the footprint at
  // 100 live records is the same before and after the churn.
  EXPECT_LE(pool.MemoryBytes(), bytes_full + 64);
}

TEST(RecordPoolTest, ForEachVisitsAllLiveRecords) {
  RecordPool pool;
  for (RecordId i = 0; i < 20; ++i) ASSERT_TRUE(pool.Insert(Rec(i, 0.5)).ok());
  for (RecordId i = 0; i < 20; i += 2) ASSERT_TRUE(pool.Erase(i).ok());
  std::unordered_set<RecordId> seen;
  pool.ForEach([&seen](const Record& r) { seen.insert(r.id); });
  EXPECT_EQ(seen.size(), 10u);
  for (RecordId i = 1; i < 20; i += 2) EXPECT_TRUE(seen.count(i));
}

TEST(RecordPoolTest, RandomChurnMatchesOracle) {
  RecordPool pool;
  std::unordered_set<RecordId> oracle;
  Rng rng(5);
  RecordId next = 0;
  for (int op = 0; op < 5000; ++op) {
    if (oracle.empty() || rng.UniformInt(2) == 0) {
      ASSERT_TRUE(pool.Insert(Rec(next, 0.5)).ok());
      oracle.insert(next);
      ++next;
    } else {
      const RecordId victim = *oracle.begin();
      ASSERT_TRUE(pool.Erase(victim).ok());
      oracle.erase(victim);
    }
    ASSERT_EQ(pool.size(), oracle.size());
  }
  for (RecordId id : oracle) EXPECT_TRUE(pool.Contains(id));
}

}  // namespace
}  // namespace topkmon
