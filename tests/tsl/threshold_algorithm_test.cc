#include "tsl/threshold_algorithm.h"

#include <gtest/gtest.h>

#include <vector>

#include "stream/generators.h"
#include "util/rng.h"

namespace topkmon {
namespace {

struct Dataset {
  std::vector<Record> records;
  SortedAttributeLists lists;

  Dataset(int dim, std::size_t n, Distribution dist, std::uint64_t seed)
      : lists(dim) {
    RecordSource source(MakeGenerator(dist, dim, seed));
    for (std::size_t i = 0; i < n; ++i) {
      records.push_back(source.Next(0));
      lists.Insert(records.back());
    }
  }

  TaRecordAccessor Accessor() const {
    return [this](RecordId id) -> const Record& {
      return records[static_cast<std::size_t>(id)];
    };
  }

  std::vector<ResultEntry> BruteTopK(const ScoringFunction& f, int k) const {
    TopKList top(k);
    for (const Record& r : records) top.Consider(r.id, f.Score(r.position));
    return top.entries();
  }
};

TEST(ThresholdAlgorithmTest, FindsExactTopK) {
  Dataset data(2, 500, Distribution::kIndependent, 1);
  LinearFunction f({1.0, 2.0});
  const TaResult out = RunThresholdAlgorithm(data.lists, f, 10,
                                             data.Accessor());
  EXPECT_EQ(out.result, data.BruteTopK(f, 10));
}

TEST(ThresholdAlgorithmTest, EmptyListsReturnNothing) {
  Dataset data(2, 0, Distribution::kIndependent, 1);
  LinearFunction f({1.0, 1.0});
  const TaResult out =
      RunThresholdAlgorithm(data.lists, f, 5, data.Accessor());
  EXPECT_TRUE(out.result.empty());
}

TEST(ThresholdAlgorithmTest, KLargerThanDataset) {
  Dataset data(2, 7, Distribution::kIndependent, 2);
  LinearFunction f({1.0, 1.0});
  const TaResult out =
      RunThresholdAlgorithm(data.lists, f, 50, data.Accessor());
  EXPECT_EQ(out.result.size(), 7u);
}

TEST(ThresholdAlgorithmTest, StopsEarlyOnSkewedFunction) {
  // With all weight on one axis, TA should terminate after scanning a
  // small prefix of the lists rather than everything.
  Dataset data(2, 2000, Distribution::kIndependent, 3);
  LinearFunction f({1.0, 0.0});
  const TaResult out =
      RunThresholdAlgorithm(data.lists, f, 5, data.Accessor());
  EXPECT_EQ(out.result, data.BruteTopK(f, 5));
  EXPECT_LT(out.sorted_accesses, 2u * 2000u);
}

TEST(ThresholdAlgorithmTest, MixedMonotonicityUsesAscendingCursor) {
  Dataset data(2, 800, Distribution::kIndependent, 4);
  LinearFunction f({1.0, -1.0});
  const TaResult out =
      RunThresholdAlgorithm(data.lists, f, 6, data.Accessor());
  EXPECT_EQ(out.result, data.BruteTopK(f, 6));
}

class TaProperty : public ::testing::TestWithParam<
                       std::tuple<int, int, Distribution, FunctionFamily>> {
};

TEST_P(TaProperty, MatchesBruteForce) {
  const auto [dim, k, dist, family] = GetParam();
  Dataset data(dim, 600, dist, 100 + static_cast<std::uint64_t>(dim));
  Rng rng(55 + dim);
  auto uniform = [&rng]() { return rng.Uniform(); };
  for (int trial = 0; trial < 4; ++trial) {
    auto f = MakeRandomFunction(family, dim, uniform);
    const TaResult out =
        RunThresholdAlgorithm(data.lists, *f, k, data.Accessor());
    EXPECT_EQ(out.result, data.BruteTopK(*f, k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TaProperty,
    ::testing::Combine(
        ::testing::Values(1, 2, 3, 4),
        ::testing::Values(1, 10, 25),
        ::testing::Values(Distribution::kIndependent,
                          Distribution::kAntiCorrelated),
        ::testing::Values(FunctionFamily::kLinear,
                          FunctionFamily::kProduct)));

TEST(ThresholdAlgorithmTest, AccessCountersAreConsistent) {
  Dataset data(3, 400, Distribution::kIndependent, 5);
  LinearFunction f({0.5, 0.5, 0.5});
  const TaResult out =
      RunThresholdAlgorithm(data.lists, f, 10, data.Accessor());
  EXPECT_GT(out.sorted_accesses, 0u);
  EXPECT_GT(out.random_accesses, 0u);
  EXPECT_LE(out.random_accesses, out.sorted_accesses);
  EXPECT_GT(out.rounds, 0u);
  EXPECT_LE(out.sorted_accesses, out.rounds * 3);
}

}  // namespace
}  // namespace topkmon
