#include "tsl/sorted_lists.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace topkmon {
namespace {

Record Rec(RecordId id, std::initializer_list<double> coords) {
  return Record(id, Point(coords), 0);
}

TEST(SortedListsTest, InsertAndSize) {
  SortedAttributeLists lists(2);
  EXPECT_EQ(lists.size(), 0u);
  lists.Insert(Rec(0, {0.3, 0.7}));
  lists.Insert(Rec(1, {0.6, 0.1}));
  EXPECT_EQ(lists.size(), 2u);
  EXPECT_EQ(lists.dim(), 2);
}

TEST(SortedListsTest, DescendingCursorForIncreasingAxis) {
  SortedAttributeLists lists(2);
  lists.Insert(Rec(0, {0.3, 0.7}));
  lists.Insert(Rec(1, {0.6, 0.1}));
  lists.Insert(Rec(2, {0.1, 0.9}));
  auto cursor = lists.BestFirst(0, Monotonicity::kIncreasing);
  std::vector<double> values;
  while (cursor.Valid()) {
    values.push_back(cursor.value());
    cursor.Advance();
  }
  EXPECT_EQ(values, (std::vector<double>{0.6, 0.3, 0.1}));
}

TEST(SortedListsTest, AscendingCursorForDecreasingAxis) {
  SortedAttributeLists lists(2);
  lists.Insert(Rec(0, {0.3, 0.7}));
  lists.Insert(Rec(1, {0.6, 0.1}));
  auto cursor = lists.BestFirst(1, Monotonicity::kDecreasing);
  EXPECT_TRUE(cursor.Valid());
  EXPECT_DOUBLE_EQ(cursor.value(), 0.1);
  EXPECT_EQ(cursor.id(), 1u);
  cursor.Advance();
  EXPECT_DOUBLE_EQ(cursor.value(), 0.7);
  cursor.Advance();
  EXPECT_FALSE(cursor.Valid());
}

TEST(SortedListsTest, EmptyCursorInvalid) {
  SortedAttributeLists lists(1);
  EXPECT_FALSE(lists.BestFirst(0, Monotonicity::kIncreasing).Valid());
  EXPECT_FALSE(lists.BestFirst(0, Monotonicity::kDecreasing).Valid());
}

TEST(SortedListsTest, EraseRemovesFromAllAxes) {
  SortedAttributeLists lists(2);
  lists.Insert(Rec(0, {0.3, 0.7}));
  lists.Insert(Rec(1, {0.6, 0.1}));
  ASSERT_TRUE(lists.Erase(Rec(0, {0.3, 0.7})).ok());
  EXPECT_EQ(lists.size(), 1u);
  auto cursor = lists.BestFirst(0, Monotonicity::kIncreasing);
  EXPECT_EQ(cursor.id(), 1u);
}

TEST(SortedListsTest, EraseMissingFails) {
  SortedAttributeLists lists(2);
  EXPECT_EQ(lists.Erase(Rec(9, {0.5, 0.5})).code(), StatusCode::kNotFound);
}

TEST(SortedListsTest, DuplicateValuesDistinguishedById) {
  SortedAttributeLists lists(1);
  lists.Insert(Rec(0, {0.5}));
  lists.Insert(Rec(1, {0.5}));
  ASSERT_TRUE(lists.Erase(Rec(0, {0.5})).ok());
  auto cursor = lists.BestFirst(0, Monotonicity::kIncreasing);
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.id(), 1u);
  EXPECT_EQ(lists.size(), 1u);
}

TEST(SortedListsTest, MemoryGrowsWithRecords) {
  SortedAttributeLists lists(3);
  const std::size_t empty = lists.MemoryBytes();
  Rng rng(1);
  for (RecordId i = 0; i < 100; ++i) {
    lists.Insert(Record(i, Point{rng.Uniform(), rng.Uniform(),
                                 rng.Uniform()},
                        0));
  }
  EXPECT_GT(lists.MemoryBytes(), empty);
}

}  // namespace
}  // namespace topkmon
