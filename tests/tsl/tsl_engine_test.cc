#include "tsl/tsl_engine.h"

#include <gtest/gtest.h>

#include "core/brute_force_engine.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

using ::topkmon::testing::MakeRandomQueries;

TslOptions SmallOptions(int dim, std::size_t n) {
  TslOptions opt;
  opt.dim = dim;
  opt.window = WindowSpec::Count(n);
  return opt;
}

QuerySpec LinearQuery(QueryId id, int k, std::vector<double> w) {
  QuerySpec spec;
  spec.id = id;
  spec.k = k;
  spec.function = std::make_shared<LinearFunction>(std::move(w));
  return spec;
}

TEST(TslEngineTest, NameAndBasicErrors) {
  TslEngine engine(SmallOptions(2, 100));
  EXPECT_EQ(engine.name(), "TSL");
  EXPECT_EQ(engine.dim(), 2);
  EXPECT_EQ(engine.UnregisterQuery(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.CurrentResult(1).status().code(), StatusCode::kNotFound);
  TOPKMON_ASSERT_OK(engine.RegisterQuery(LinearQuery(1, 2, {1.0, 1.0})));
  EXPECT_EQ(engine.RegisterQuery(LinearQuery(1, 2, {1.0, 1.0})).code(),
            StatusCode::kAlreadyExists);
}

TEST(TslEngineTest, ConstrainedQueriesMatchBruteForce) {
  // Constraint support landed with the piecewise decomposition (PR 7):
  // probes skip out-of-region records and the TA refill filters at
  // resolve time. Pin against BruteForce on a churning stream.
  const WindowSpec window = WindowSpec::Count(120);
  TslEngine engine(SmallOptions(2, 120));
  BruteForceEngine brute(2, window);
  QuerySpec q = LinearQuery(1, 4, {1.0, 1.0});
  q.constraint = Rect(Point({0.2, 0.3}), Point({0.7, 0.9}));
  TOPKMON_ASSERT_OK(engine.RegisterQuery(q));
  TOPKMON_ASSERT_OK(brute.RegisterQuery(q));
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 17));
  for (Timestamp now = 1; now <= 8; ++now) {
    const std::vector<Record> batch = source.NextBatch(40, now);
    TOPKMON_ASSERT_OK(engine.ProcessCycle(now, batch));
    TOPKMON_ASSERT_OK(brute.ProcessCycle(now, batch));
    const auto got = engine.CurrentResult(1);
    const auto want = brute.CurrentResult(1);
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_EQ(testing::Scores(*got), testing::Scores(*want)) << now;
  }
}

TEST(TslEngineTest, InitialComputationUsesTa) {
  TslEngine engine(SmallOptions(2, 100));
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 3));
  TOPKMON_ASSERT_OK(engine.ProcessCycle(1, source.NextBatch(100, 1)));
  TOPKMON_ASSERT_OK(engine.RegisterQuery(LinearQuery(1, 5, {1.0, 2.0})));
  EXPECT_GT(engine.total_sorted_accesses(), 0u);
  EXPECT_GT(engine.total_random_accesses(), 0u);
  const auto result = engine.CurrentResult(1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 5u);
}

TEST(TslEngineTest, MatchesBruteForceOnRandomStream) {
  const int dim = 2;
  TslOptions opt = SmallOptions(dim, 400);
  TslEngine tsl(opt);
  BruteForceEngine brute(dim, opt.window);
  const auto queries = MakeRandomQueries(dim, 6, 5, 42);
  testing::RunLockstepAgreement({&brute, &tsl}, queries,
                                Distribution::kIndependent, dim, 40, 12, 30,
                                7);
}

TEST(TslEngineTest, MatchesBruteForceWithTinyKmaxSlack) {
  // kmax == k forces a refill on nearly every expiry of a result record —
  // the worst case for TSL but a strong correctness probe.
  const int dim = 2;
  TslOptions opt = SmallOptions(dim, 200);
  opt.kmax_override = 3;
  TslEngine tsl(opt);
  BruteForceEngine brute(dim, opt.window);
  const auto queries = MakeRandomQueries(dim, 5, 3, 19);
  testing::RunLockstepAgreement({&brute, &tsl}, queries,
                                Distribution::kIndependent, dim, 25, 10, 30,
                                3);
  EXPECT_GT(tsl.stats().view_refills, 0u);
}

TEST(TslEngineTest, TimeBasedWindowMatchesBruteForce) {
  const int dim = 3;
  TslOptions opt;
  opt.dim = dim;
  opt.window = WindowSpec::Time(6);
  TslEngine tsl(opt);
  BruteForceEngine brute(dim, opt.window);
  const auto queries = MakeRandomQueries(dim, 4, 4, 29);
  testing::RunLockstepAgreement({&brute, &tsl}, queries,
                                Distribution::kIndependent, dim, 30, 8, 20,
                                31);
}

TEST(TslEngineTest, AverageViewSizeWithinBounds) {
  TslOptions opt = SmallOptions(2, 300);
  TslEngine engine(opt);
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 5));
  Timestamp now = 1;
  TOPKMON_ASSERT_OK(engine.ProcessCycle(now, source.NextBatch(300, now)));
  const int k = 10;
  for (const QuerySpec& q : MakeRandomQueries(2, 4, k, 31)) {
    TOPKMON_ASSERT_OK(engine.RegisterQuery(q));
  }
  for (int c = 0; c < 15; ++c) {
    ++now;
    TOPKMON_ASSERT_OK(engine.ProcessCycle(now, source.NextBatch(30, now)));
  }
  EXPECT_GE(engine.AverageViewSize(), static_cast<double>(k));
  EXPECT_LE(engine.AverageViewSize(), static_cast<double>(DefaultKmax(k)));
}

TEST(TslEngineTest, MemoryIncludesSortedLists) {
  TslOptions opt = SmallOptions(2, 100);
  TslEngine engine(opt);
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 3));
  TOPKMON_ASSERT_OK(engine.ProcessCycle(1, source.NextBatch(100, 1)));
  const MemoryBreakdown mb = engine.Memory();
  EXPECT_GT(mb.Bytes("sorted_lists"), 0u);
  EXPECT_GT(mb.Bytes("window"), 0u);
}

TEST(TslEngineTest, StatsScoreEveryArrivalPerQuery) {
  TslOptions opt = SmallOptions(2, 1000);
  TslEngine engine(opt);
  for (const QuerySpec& q : MakeRandomQueries(2, 5, 2, 31)) {
    TOPKMON_ASSERT_OK(engine.RegisterQuery(q));
  }
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 3));
  TOPKMON_ASSERT_OK(engine.ProcessCycle(1, source.NextBatch(100, 1)));
  // TSL has no influence regions: every arrival is scored for all 5
  // queries (expirations: none yet).
  EXPECT_GE(engine.stats().points_scored, 500u);
}

}  // namespace
}  // namespace topkmon
