#include "tsl/topk_view.h"

#include <gtest/gtest.h>

namespace topkmon {
namespace {

TEST(TopKViewTest, RefillSetsEntries) {
  TopKView view(2, 4);
  view.Refill({{1, 0.9}, {2, 0.8}, {3, 0.7}});
  EXPECT_EQ(view.size(), 3u);
  EXPECT_FALSE(view.NeedsRefill());
  const auto top = view.TopK();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 1u);
  EXPECT_EQ(top[1].id, 2u);
}

TEST(TopKViewTest, RefillTrimsToKmax) {
  TopKView view(1, 2);
  view.Refill({{1, 0.9}, {2, 0.8}, {3, 0.7}});
  EXPECT_EQ(view.size(), 2u);
}

TEST(TopKViewTest, ArrivalAboveKthInserts) {
  TopKView view(2, 3);
  view.Refill({{1, 0.9}, {2, 0.5}});
  EXPECT_TRUE(view.OnArrival(3, 0.7));
  EXPECT_EQ(view.size(), 3u);
  const auto top = view.TopK();
  EXPECT_EQ(top[0].id, 1u);
  EXPECT_EQ(top[1].id, 3u);
}

TEST(TopKViewTest, ArrivalBelowWorstIsIgnored) {
  TopKView view(2, 3);
  view.Refill({{1, 0.9}, {2, 0.5}});
  EXPECT_FALSE(view.OnArrival(3, 0.4));
  EXPECT_EQ(view.size(), 2u);
}

TEST(TopKViewTest, ArrivalIntoEmptyViewIsIgnored) {
  // An empty view answers top-0; only a refill may grow it (inserting an
  // arbitrary arrival would falsely claim it is the top-1).
  TopKView view(1, 3);
  EXPECT_FALSE(view.OnArrival(1, 0.9));
  EXPECT_TRUE(view.NeedsRefill());
}

TEST(TopKViewTest, OverflowBeyondKmaxDropsWorst) {
  TopKView view(1, 2);
  view.Refill({{1, 0.9}, {2, 0.8}});
  EXPECT_TRUE(view.OnArrival(3, 0.85));
  EXPECT_EQ(view.size(), 2u);
  EXPECT_EQ(view.entries()[0].id, 1u);
  EXPECT_EQ(view.entries()[1].id, 3u);  // 2 dropped
}

TEST(TopKViewTest, ExpiryRemovesMember) {
  TopKView view(2, 4);
  view.Refill({{1, 0.9}, {2, 0.8}, {3, 0.7}});
  EXPECT_TRUE(view.OnExpiry(2, 0.8));
  EXPECT_EQ(view.size(), 2u);
  EXPECT_FALSE(view.NeedsRefill());
  EXPECT_TRUE(view.OnExpiry(1, 0.9));
  EXPECT_TRUE(view.NeedsRefill());
}

TEST(TopKViewTest, ExpiryOfNonMemberIsNoop) {
  TopKView view(2, 4);
  view.Refill({{1, 0.9}, {2, 0.8}});
  EXPECT_FALSE(view.OnExpiry(7, 0.3));
  EXPECT_FALSE(view.OnExpiry(7, 0.85));  // score in range but id absent
  EXPECT_EQ(view.size(), 2u);
}

TEST(TopKViewTest, TieScoresResolvedById) {
  TopKView view(2, 4);
  view.Refill({{5, 0.8}, {3, 0.8}});
  EXPECT_TRUE(view.OnExpiry(3, 0.8));
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view.entries()[0].id, 5u);
}

TEST(DefaultKmaxTest, MatchesPaperCalibration) {
  EXPECT_EQ(DefaultKmax(1), 4);
  EXPECT_EQ(DefaultKmax(5), 10);
  EXPECT_EQ(DefaultKmax(10), 20);
  EXPECT_EQ(DefaultKmax(20), 30);
  EXPECT_EQ(DefaultKmax(50), 70);
  EXPECT_EQ(DefaultKmax(100), 120);
}

TEST(DefaultKmaxTest, InterpolatesBetweenCalibrationPoints) {
  EXPECT_GT(DefaultKmax(30), 30);
  EXPECT_LT(DefaultKmax(30), 70);
  EXPECT_GE(DefaultKmax(3), 4);
  EXPECT_LE(DefaultKmax(3), 10);
}

TEST(DefaultKmaxTest, ExtrapolatesBeyondRange) {
  EXPECT_GT(DefaultKmax(200), 200);
}

}  // namespace
}  // namespace topkmon
