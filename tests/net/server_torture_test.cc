// Protocol torture tests: hostile and broken peers against the TCP
// server. The invariant under test is liveness — truncated frames, CRC
// damage, wrong versions, oversized length prefixes, request floods and
// slow-loris dribbles must each yield a clean per-connection error (an
// Error frame and/or a close), while a well-behaved client on another
// connection keeps getting served the whole time.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/brute_force_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "tests/net/net_test_util.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

constexpr int kDim = 2;

ServiceOptions FastOptions() {
  ServiceOptions opt;
  opt.ingest.slack = 0;
  opt.drain_wait = std::chrono::milliseconds(1);
  return opt;
}

NetServerOptions FastServer() { return testing::TestServerOptions(); }

/// A raw TCP connection to the server under test, for speaking broken
/// protocol on purpose.
class RawPeer {
 public:
  explicit RawPeer(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
    timeval tv{2, 0};  // reads give up after 2 s
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  ~RawPeer() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(const std::string& bytes) {
    (void)::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  }

  /// Reads until the peer closes (or the 2 s timeout); returns all bytes.
  std::string ReadToEof() {
    std::string out;
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

/// Decodes the first frame of `stream` as an Error message; reports the
/// carried status via *code. False if the stream holds no clean frame.
bool FirstFrameIsError(const std::string& stream, StatusCode* code) {
  const char* body = nullptr;
  std::size_t body_len = 0;
  std::size_t consumed = 0;
  Status error;
  if (TryParseNetFrame(stream.data(), stream.size(), kMaxNetFrameBytes,
                       &body, &body_len, &consumed,
                       &error) != FrameParse::kFrame) {
    return false;
  }
  NetMessage msg;
  if (!DecodeNetBody(body, body_len, &msg).ok()) return false;
  if (msg.type != NetMessageType::kError) return false;
  *code = msg.code;
  return true;
}

/// Asserts the server still serves a full healthy workflow: handshake,
/// register, ingest, flush, snapshot.
void ExpectServerHealthy(MonitorService& service, std::uint16_t port,
                         const std::string& label) {
  auto client = MonitorClient::Connect("127.0.0.1", port, label,
                                       /*resume=*/false);
  ASSERT_TRUE(client.ok()) << client.status();
  QuerySpec spec;
  spec.k = 2;
  spec.function =
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0}, 0.0);
  const auto query = (*client)->Register(spec);
  ASSERT_TRUE(query.ok()) << query.status();
  std::vector<Record> batch;
  batch.emplace_back(0, Point{0.9, 0.9}, 1);
  batch.emplace_back(0, Point{0.1, 0.1}, 2);
  const auto ack = (*client)->Ingest(std::move(batch));
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->accepted, 2u);
  TOPKMON_ASSERT_OK(service.Flush());
  const auto result = (*client)->CurrentResult(*query);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 2u);
  TOPKMON_ASSERT_OK((*client)->Close(/*close_session=*/true));
}

class ServerTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<MonitorService>(
        std::make_unique<BruteForceEngine>(kDim, WindowSpec::Count(100)),
        FastOptions());
    server_ = std::make_unique<TcpServer>(*service_, FastServer());
    TOPKMON_ASSERT_OK(server_->Start());
  }

  void TearDown() override {
    server_->Stop();
    service_->Shutdown();
  }

  std::unique_ptr<MonitorService> service_;
  std::unique_ptr<TcpServer> server_;
};

TEST_F(ServerTortureTest, GarbageBytesGetAnErrorFrameAndAClose) {
  RawPeer peer(server_->port());
  ASSERT_TRUE(peer.connected());
  peer.Send("GET / HTTP/1.1\r\nHost: topkmon\r\n\r\n");
  StatusCode code = StatusCode::kOk;
  // "GET ..." parses as an absurd length prefix -> framing violation.
  EXPECT_TRUE(FirstFrameIsError(peer.ReadToEof(), &code));
  EXPECT_EQ(code, StatusCode::kInvalidArgument);
  EXPECT_GE(server_->stats().protocol_errors, 1u);
  ExpectServerHealthy(*service_, server_->port(), "after-garbage");
}

TEST_F(ServerTortureTest, BadCrcFailsOnlyThatConnection) {
  std::string body;
  EncodeHello(false, "evil", &body);
  std::string stream;
  EncodeNetFrame(body, &stream);
  stream[kNetFrameHeaderBytes] ^= 0x40;  // damage the body, keep the CRC
  RawPeer peer(server_->port());
  peer.Send(stream);
  StatusCode code = StatusCode::kOk;
  EXPECT_TRUE(FirstFrameIsError(peer.ReadToEof(), &code));
  EXPECT_EQ(code, StatusCode::kInvalidArgument);
  ExpectServerHealthy(*service_, server_->port(), "after-crc");
}

TEST_F(ServerTortureTest, WrongVersionAndWrongMagicAreRefused) {
  {
    std::string body;
    EncodeHello(false, "time-traveler", &body);
    body[5] = 99;  // version field (after type + magic)
    std::string stream;
    EncodeNetFrame(body, &stream);
    RawPeer peer(server_->port());
    peer.Send(stream);
    StatusCode code = StatusCode::kOk;
    EXPECT_TRUE(FirstFrameIsError(peer.ReadToEof(), &code));
    EXPECT_EQ(code, StatusCode::kUnimplemented);
  }
  {
    std::string body;
    EncodeHello(false, "imposter", &body);
    body[1] ^= 0x7F;  // magic field
    std::string stream;
    EncodeNetFrame(body, &stream);
    RawPeer peer(server_->port());
    peer.Send(stream);
    StatusCode code = StatusCode::kOk;
    EXPECT_TRUE(FirstFrameIsError(peer.ReadToEof(), &code));
    EXPECT_EQ(code, StatusCode::kInvalidArgument);
  }
  ExpectServerHealthy(*service_, server_->port(), "after-version");
}

TEST_F(ServerTortureTest, PreviousVersionHelloNegotiatesItsDialect) {
  // Rolling-upgrade compatibility: a v4 peer (the fencing-epoch-less
  // dialect) is accepted, its Welcome echoes the negotiated version,
  // and every reply is shaped for v4 — no trailing epoch bytes a v4
  // decoder would choke on. The v5 decoder reads the same bytes with
  // the epoch defaulting to 0.
  std::string body;
  EncodeHello(false, "legacy-v4", &body);
  body[5] = 4;  // version field (after type + magic), little-endian
  std::string stream;
  EncodeNetFrame(body, &stream);
  body.clear();
  EncodeStatusRequest(&body);
  EncodeNetFrame(body, &stream);
  RawPeer peer(server_->port());
  ASSERT_TRUE(peer.connected());
  peer.Send(stream);
  const std::string answer = peer.ReadToEof();

  const char* frame = nullptr;
  std::size_t frame_len = 0;
  std::size_t consumed = 0;
  Status error;
  ASSERT_EQ(TryParseNetFrame(answer.data(), answer.size(),
                             kMaxNetFrameBytes, &frame, &frame_len,
                             &consumed, &error),
            FrameParse::kFrame)
      << error;
  NetMessage welcome;
  TOPKMON_ASSERT_OK(DecodeNetBody(frame, frame_len, &welcome));
  ASSERT_EQ(welcome.type, NetMessageType::kWelcome);
  EXPECT_EQ(welcome.version, 4u);
  EXPECT_EQ(welcome.fencing_epoch, 0u);  // absent on the wire at v4
  ASSERT_EQ(TryParseNetFrame(answer.data() + consumed,
                             answer.size() - consumed, kMaxNetFrameBytes,
                             &frame, &frame_len, &consumed, &error),
            FrameParse::kFrame)
      << error;
  NetMessage info;
  TOPKMON_ASSERT_OK(DecodeNetBody(frame, frame_len, &info));
  EXPECT_EQ(info.type, NetMessageType::kStatusInfo);
  ExpectServerHealthy(*service_, server_->port(), "after-v4-peer");
}

TEST_F(ServerTortureTest, OversizedLengthPrefixIsAFramingViolation) {
  std::string stream;
  const std::uint32_t huge = 0x7FFFFFFFu;
  for (int i = 0; i < 4; ++i) {
    stream.push_back(static_cast<char>(huge >> (8 * i)));
  }
  stream.append(4, '\0');
  RawPeer peer(server_->port());
  peer.Send(stream);
  StatusCode code = StatusCode::kOk;
  EXPECT_TRUE(FirstFrameIsError(peer.ReadToEof(), &code));
  EXPECT_EQ(code, StatusCode::kInvalidArgument);
  ExpectServerHealthy(*service_, server_->port(), "after-oversize");
}

TEST_F(ServerTortureTest, RequestBeforeHelloIsRefused) {
  std::string body;
  EncodePoll(10, 0, &body);
  std::string stream;
  EncodeNetFrame(body, &stream);
  RawPeer peer(server_->port());
  peer.Send(stream);
  StatusCode code = StatusCode::kOk;
  EXPECT_TRUE(FirstFrameIsError(peer.ReadToEof(), &code));
  EXPECT_EQ(code, StatusCode::kFailedPrecondition);
}

TEST_F(ServerTortureTest, SlowLorisNeverWedgesTheDriverThread) {
  // Three peers dribble a valid frame one byte at a time while a real
  // client runs complete workflows in between every dribbled byte.
  std::string body;
  EncodeHello(false, "loris", &body);
  std::string stream;
  EncodeNetFrame(body, &stream);

  std::vector<std::unique_ptr<RawPeer>> slow;
  for (int i = 0; i < 3; ++i) {
    slow.push_back(std::make_unique<RawPeer>(server_->port()));
    ASSERT_TRUE(slow.back()->connected());
  }
  for (std::size_t i = 0; i < stream.size(); ++i) {
    for (auto& peer : slow) peer->Send(stream.substr(i, 1));
    if (i % 4 == 0) {
      ExpectServerHealthy(*service_, server_->port(),
                          "during-loris-" + std::to_string(i));
    }
  }
  // The dribbled frames were valid after all: each loris gets a Welcome.
  for (auto& peer : slow) {
    const std::string response = peer->ReadToEof();
    const char* frame_body = nullptr;
    std::size_t body_len = 0;
    std::size_t consumed = 0;
    Status error;
    ASSERT_EQ(TryParseNetFrame(response.data(), response.size(),
                               kMaxNetFrameBytes, &frame_body, &body_len,
                               &consumed, &error),
              FrameParse::kFrame);
    NetMessage msg;
    TOPKMON_ASSERT_OK(DecodeNetBody(frame_body, body_len, &msg));
    EXPECT_EQ(msg.type, NetMessageType::kWelcome);
  }
}

TEST_F(ServerTortureTest, AbruptDisconnectsLeakNothing) {
  for (int i = 0; i < 20; ++i) {
    RawPeer peer(server_->port());
    ASSERT_TRUE(peer.connected());
    std::string body;
    EncodeHello(false, "drop-" + std::to_string(i), &body);
    std::string stream;
    EncodeNetFrame(body, &stream);
    peer.Send(stream.substr(0, 1 + i % stream.size()));
    // Destructor slams the connection mid-frame.
  }
  ExpectServerHealthy(*service_, server_->port(), "after-drops");
  // Give the poll loop a few ticks to reap the closed fds.
  for (int i = 0; i < 100 && server_->stats().open_connections > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server_->stats().open_connections, 0u);
}

TEST_F(ServerTortureTest, ServiceErrorsAreAnswersNotDisconnects) {
  auto client = MonitorClient::Connect("127.0.0.1", server_->port(),
                                       "lawful", /*resume=*/false);
  ASSERT_TRUE(client.ok()) << client.status();
  // Unknown query id: a clean NotFound, connection stays usable.
  const auto missing = (*client)->CurrentResult(424242);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // Unregistering someone else's (nonexistent) query: same.
  EXPECT_EQ((*client)->Unregister(424242).code(), StatusCode::kNotFound);
  // A malformed tuple inside a batch is rejected per-record.
  std::vector<Record> batch;
  batch.emplace_back(0, Point{0.5, 0.5}, 1);
  batch.emplace_back(0, Point{4.2, 0.5}, 2);  // outside the unit space
  const auto ack = (*client)->Ingest(std::move(batch));
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->accepted, 1u);
  EXPECT_EQ(ack->rejected, 1u);
  EXPECT_EQ(ack->first_error.code(), StatusCode::kOutOfRange);
  // And the connection is still fully alive.
  QuerySpec spec;
  spec.k = 1;
  spec.function =
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 0.0}, 0.0);
  EXPECT_TRUE((*client)->Register(spec).ok());
  EXPECT_EQ(server_->stats().protocol_errors, 0u);
}

TEST_F(ServerTortureTest, AbsurdArrivalTimestampsAreRejectedPerRecord) {
  auto client = MonitorClient::Connect("127.0.0.1", server_->port(),
                                       "chronos", /*resume=*/false);
  ASSERT_TRUE(client.ok()) << client.status();
  // One tuple at the far edge of i64: admitted unchecked it would drag
  // the shared reordering frontier to the end of time for every session
  // (and overflow the slack arithmetic). It must bounce, alone.
  std::vector<Record> batch;
  batch.emplace_back(0, Point{0.5, 0.5}, 1);
  batch.emplace_back(0, Point{0.5, 0.5},
                     std::numeric_limits<Timestamp>::max());
  batch.emplace_back(0, Point{0.5, 0.5}, -7);
  const auto ack = (*client)->Ingest(std::move(batch));
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->accepted, 1u);
  EXPECT_EQ(ack->rejected, 2u);
  EXPECT_EQ(ack->first_error.code(), StatusCode::kOutOfRange);
  // The frontier survived: ordinary timestamps still flow end to end.
  ExpectServerHealthy(*service_, server_->port(), "after-chronos");
}

TEST(ServerIdleTimeoutTest, APeerThatNeverReadsCannotGrowServerMemory) {
  MonitorService service(
      std::make_unique<BruteForceEngine>(kDim, WindowSpec::Count(100)),
      FastOptions());
  NetServerOptions opt = FastServer();
  opt.max_output_bytes = 256;  // tiny cap so the test trips it fast
  TcpServer server(service, opt);
  TOPKMON_ASSERT_OK(server.Start());

  RawPeer hog(server.port());
  ASSERT_TRUE(hog.connected());
  std::string stream;
  {
    std::string body;
    EncodeHello(false, "hog", &body);
    EncodeNetFrame(body, &stream);
  }
  // Pipeline many requests without ever reading a response: the
  // response buffer must hit the cap and the connection must be
  // dropped, not grown without bound.
  for (int i = 0; i < 64; ++i) {
    std::string body;
    EncodeSnapshotRequest(static_cast<QueryId>(1000 + i), &body);
    EncodeNetFrame(body, &stream);
  }
  hog.Send(stream);
  // Wait for the cap to trip (the definitive signal — checking the
  // connection count first would race the accept itself).
  for (int i = 0; i < 1000 && server.stats().protocol_errors == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(server.stats().protocol_errors, 1u);
  for (int i = 0; i < 1000 && server.stats().open_connections > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server.stats().open_connections, 0u);
  // And the server is still fine for everyone else.
  ExpectServerHealthy(service, server.port(), "after-hog");
  server.Stop();
  service.Shutdown();
}

TEST(ServerIdleTimeoutTest, SilentConnectionsAreReaped) {
  MonitorService service(
      std::make_unique<BruteForceEngine>(kDim, WindowSpec::Count(100)),
      FastOptions());
  NetServerOptions opt = FastServer();
  opt.idle_timeout = std::chrono::milliseconds(100);
  TcpServer server(service, opt);
  TOPKMON_ASSERT_OK(server.Start());

  RawPeer mute(server.port());
  ASSERT_TRUE(mute.connected());
  // Send nothing: the server must evict the slot, with a classified
  // error frame, well before the 2 s read timeout of the peer.
  StatusCode code = StatusCode::kOk;
  EXPECT_TRUE(FirstFrameIsError(mute.ReadToEof(), &code));
  EXPECT_EQ(code, StatusCode::kFailedPrecondition);
  for (int i = 0; i < 500 && server.stats().open_connections > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server.stats().open_connections, 0u);
  server.Stop();
  service.Shutdown();
}

TEST_F(ServerTortureTest, SnapshotsAreScopedToTheOwningSession) {
  auto owner = MonitorClient::Connect("127.0.0.1", server_->port(),
                                      "owner", /*resume=*/false);
  ASSERT_TRUE(owner.ok()) << owner.status();
  QuerySpec spec;
  spec.k = 1;
  spec.function =
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0}, 0.0);
  const auto query = (*owner)->Register(spec);
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_TRUE((*owner)->CurrentResult(*query).ok());

  // A different session probing the (small, sequential) query id gets
  // the same NotFound an unknown id draws — existence does not leak.
  auto snoop = MonitorClient::Connect("127.0.0.1", server_->port(),
                                      "snoop", /*resume=*/false);
  ASSERT_TRUE(snoop.ok()) << snoop.status();
  EXPECT_EQ((*snoop)->CurrentResult(*query).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ((*snoop)->CurrentResult(999999).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace topkmon
