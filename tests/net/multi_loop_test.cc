// Multi-loop server tests: connection sharding across poll loops,
// replication-fetch pinning to the dedicated loop, cross-loop resume
// eviction, and the v3 ingest backpressure signal.
//
// The cross-loop isolation property under test is *progress*, not
// timing: a slow-loris peer or a saturating replication-fetch stream on
// one loop must never keep a connection on another loop from completing
// its round trips. Wall-clock latency assertions would be flaky on a
// loaded CI box, so the tests assert liveness (every healthy round trip
// completes while the hostile traffic is demonstrably concurrent — its
// counters grew) and use the deterministic virtual-clock/queue-shape
// setups where the property allows (the backpressure tests hold the
// ingest queue full via a frozen slack gate instead of racing a timer).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/brute_force_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "tests/journal/journal_test_util.h"
#include "tests/net/net_test_util.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

constexpr int kDim = 2;

using ::topkmon::testing::TestServerOptions;

std::unique_ptr<MonitorService> MakeFastService() {
  ServiceOptions opt;
  opt.ingest.slack = 0;
  opt.drain_wait = std::chrono::milliseconds(1);
  return std::make_unique<MonitorService>(
      std::make_unique<BruteForceEngine>(kDim, WindowSpec::Count(200)),
      opt);
}

QuerySpec SumSpec(int k) {
  QuerySpec spec;
  spec.k = k;
  spec.function =
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0}, 0.0);
  return spec;
}

/// Runs one full healthy workflow against the server: handshake,
/// register, ingest, flush, snapshot.
void ExpectFullService(MonitorService& service, std::uint16_t port,
                       const std::string& label) {
  auto client = MonitorClient::Connect("127.0.0.1", port, label,
                                       /*resume=*/false);
  ASSERT_TRUE(client.ok()) << client.status();
  const auto query = (*client)->Register(SumSpec(2));
  ASSERT_TRUE(query.ok()) << query.status();
  std::vector<Record> batch;
  batch.emplace_back(0, Point{0.8, 0.8}, 1);
  batch.emplace_back(0, Point{0.2, 0.2}, 2);
  const auto ack = (*client)->Ingest(std::move(batch));
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->accepted, 2u);
  TOPKMON_ASSERT_OK(service.Flush());
  const auto result = (*client)->CurrentResult(*query);
  ASSERT_TRUE(result.ok()) << result.status();
  TOPKMON_ASSERT_OK((*client)->Close(/*close_session=*/true));
}

/// Raw TCP peer for hostile traffic (dribbles bytes, never reads).
class RawPeer {
 public:
  explicit RawPeer(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawPeer() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }
  void Send(const std::string& bytes) {
    (void)::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  }
  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }
  /// Reads until the server closes (bounded by a 2 s socket timeout).
  std::string ReadToEof() {
    timeval tv{2, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    std::string out;
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

/// Parses every complete frame of `stream` into decoded messages.
std::vector<NetMessage> DecodeStream(const std::string& stream) {
  std::vector<NetMessage> out;
  std::size_t off = 0;
  while (true) {
    const char* body = nullptr;
    std::size_t body_len = 0;
    std::size_t consumed = 0;
    Status error;
    if (TryParseNetFrame(stream.data() + off, stream.size() - off,
                         kMaxNetFrameBytes, &body, &body_len, &consumed,
                         &error) != FrameParse::kFrame) {
      break;
    }
    NetMessage msg;
    if (!DecodeNetBody(body, body_len, &msg).ok()) break;
    out.push_back(std::move(msg));
    off += consumed;
  }
  return out;
}

TEST(MultiLoopServerTest, ConnectionsShardAcrossLoopsAndAllGetService) {
  auto service = MakeFastService();
  NetServerOptions opt = TestServerOptions();
  opt.server_threads = 3;
  TcpServer server(*service, opt);
  TOPKMON_ASSERT_OK(server.Start());
  EXPECT_EQ(server.loop_count(), 3u);
  // No journal -> no dedicated replication loop.
  EXPECT_EQ(server.replication_loop(), server.loop_count());

  // More concurrent clients than loops, all served in parallel.
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      ExpectFullService(*service, server.port(),
                        "shard-" + std::to_string(c));
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(server.stats().protocol_errors, 0u);
  server.Stop();
  service->Shutdown();
}

TEST(MultiLoopServerTest, SlowLorisOnOneLoopNeverStallsAnotherLoop) {
  auto service = MakeFastService();
  NetServerOptions opt = TestServerOptions();
  opt.server_threads = 2;
  TcpServer server(*service, opt);
  TOPKMON_ASSERT_OK(server.Start());

  // Connection order pins loops round-robin: the loris lands on loop 0.
  std::string stream;
  {
    std::string body;
    EncodeHello(false, "loris", &body);
    EncodeNetFrame(body, &stream);
  }
  RawPeer loris(server.port());
  ASSERT_TRUE(loris.connected());

  // While the loris dribbles one byte per step, healthy clients —
  // landing on the other loop and on the loris's own loop alike — keep
  // completing full workflows. Liveness, not latency: every round trip
  // must finish while the loris connection is still open mid-frame.
  for (std::size_t i = 0; i < stream.size() - 1; ++i) {
    loris.Send(stream.substr(i, 1));
    if (i % 3 == 0) {
      ExpectFullService(*service, server.port(),
                        "during-loris-" + std::to_string(i));
    }
  }
  const NetServerStats mid = server.stats();
  EXPECT_GE(mid.open_connections, 1u) << "loris should still be parked";
  server.Stop();
  service->Shutdown();
}

// ---- journaled servers: the dedicated replication loop ------------------

struct JournaledServer {
  testing::ScopedTempDir dir;
  std::unique_ptr<MonitorService> service;
  std::unique_ptr<TcpServer> server;

  explicit JournaledServer(std::size_t threads) {
    ServiceOptions opt;
    opt.ingest.slack = 0;
    opt.drain_wait = std::chrono::milliseconds(1);
    opt.journal.dir = dir.path() + "/journal";
    service = std::make_unique<MonitorService>(
        std::make_unique<BruteForceEngine>(kDim, WindowSpec::Count(200)),
        opt);
    NetServerOptions net = testing::TestServerOptions();
    net.server_threads = threads;
    server = std::make_unique<TcpServer>(*service, net);
    if (!server->Start().ok()) std::abort();
  }
};

TEST(MultiLoopServerTest, ReplFetchMigratesToTheDedicatedLoop) {
  JournaledServer js(2);
  EXPECT_EQ(js.server->loop_count(), 2u);
  ASSERT_EQ(js.server->replication_loop(), 1u);

  // Put some bytes in the journal first.
  ExpectFullService(*js.service, js.server->port(), "writer");

  // A fetching client necessarily lands on loop 0 (the only
  // client-facing loop); its first ReplFetch moves it to loop 1.
  auto fetcher = MonitorClient::Connect("127.0.0.1", js.server->port(),
                                        "follower", /*resume=*/false);
  ASSERT_TRUE(fetcher.ok()) << fetcher.status();
  const auto chunk =
      (*fetcher)->ReplFetch(0, 0, 1 << 20, std::chrono::milliseconds(0));
  ASSERT_TRUE(chunk.ok()) << chunk.status();
  EXPECT_FALSE(chunk->data.empty()) << "journal should hold the anchor";

  const NetServerStats stats = js.server->stats();
  EXPECT_EQ(stats.connections_migrated, 1u);
  EXPECT_GE(stats.repl_chunks_sent, 1u);

  // The migrated connection keeps full service from its new loop: more
  // fetches, and ordinary requests too (same session, same socket).
  const auto more = (*fetcher)->ReplFetch(0, chunk->data.size(), 1 << 20,
                                          std::chrono::milliseconds(0));
  EXPECT_TRUE(more.ok()) << more.status();
  const auto query = (*fetcher)->Register(SumSpec(1));
  EXPECT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(js.server->stats().connections_migrated, 1u)
      << "already on the dedicated loop; no second migration";
  TOPKMON_ASSERT_OK((*fetcher)->Close(/*close_session=*/true));
  js.server->Stop();
  js.service->Shutdown();
}

TEST(MultiLoopServerTest, HalfCloseBehindAMigrationStillGetsItsChunk) {
  // A peer that pipelines Hello + ReplFetch and immediately half-closes
  // races the close against the migration to the dedicated loop. The
  // deferred-close path must still serve both responses (the old
  // single-loop server did) before closing the socket.
  JournaledServer js(2);
  RawPeer peer(js.server->port());
  ASSERT_TRUE(peer.connected());
  std::string stream;
  {
    std::string body;
    EncodeHello(false, "eof-fetcher", &body);
    EncodeNetFrame(body, &stream);
    body.clear();
    EncodeReplFetch(0, 0, 1 << 20, /*wait_ms=*/0, &body);
    EncodeNetFrame(body, &stream);
  }
  peer.Send(stream);
  peer.ShutdownWrite();
  const std::vector<NetMessage> replies = DecodeStream(peer.ReadToEof());
  ASSERT_EQ(replies.size(), 2u)
      << "expected Welcome + ReplChunk before the close";
  EXPECT_EQ(replies[0].type, NetMessageType::kWelcome);
  EXPECT_EQ(replies[1].type, NetMessageType::kReplChunk);
  EXPECT_FALSE(replies[1].data.empty());
  js.server->Stop();
  js.service->Shutdown();
}

TEST(MultiLoopServerTest, FetchSaturationNeverStallsClientIngest) {
  JournaledServer js(2);
  // Seed the journal with enough bytes that fetch clients have real
  // chunks to chew through.
  {
    auto seeder = MonitorClient::Connect("127.0.0.1", js.server->port(),
                                         "seeder", /*resume=*/false);
    ASSERT_TRUE(seeder.ok()) << seeder.status();
    std::vector<Record> batch;
    for (int i = 1; i <= 2000; ++i) {
      batch.emplace_back(0, Point{0.5, 0.5}, static_cast<Timestamp>(i));
      if (batch.size() == 200) {
        const auto ack = (*seeder)->Ingest(std::move(batch));
        ASSERT_TRUE(ack.ok()) << ack.status();
        batch.clear();
      }
    }
    TOPKMON_ASSERT_OK(js.service->Flush());
    TOPKMON_ASSERT_OK((*seeder)->Close(/*close_session=*/true));
  }

  // Two saturator threads hammer ReplFetch with tiny chunks in a tight
  // loop (each iteration is a full round trip with a raw journal read
  // behind it), re-walking the journal from the start whenever they
  // drain it. They migrate to the dedicated loop on their first fetch.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> fetch_round_trips{0};
  std::vector<std::thread> saturators;
  for (int s = 0; s < 2; ++s) {
    saturators.emplace_back([&, s] {
      auto client = MonitorClient::Connect(
          "127.0.0.1", js.server->port(), "sat-" + std::to_string(s),
          /*resume=*/false);
      if (!client.ok()) return;
      std::uint64_t segment = 0;
      std::uint64_t offset = 0;
      while (!stop.load()) {
        const auto chunk = (*client)->ReplFetch(
            segment, offset, 512, std::chrono::milliseconds(0));
        if (!chunk.ok()) break;
        fetch_round_trips.fetch_add(1);
        if (chunk->restart) {
          segment = chunk->next_segment;
          offset = 0;
        } else if (chunk->sealed && chunk->data.empty()) {
          segment = chunk->next_segment;
          offset = 0;
        } else if (chunk->data.empty()) {
          segment = 0;  // tail reached: walk the journal again
          offset = 0;
        } else {
          offset = chunk->offset + chunk->data.size();
        }
      }
      (void)(*client)->Close(/*close_session=*/false);
    });
  }

  // Meanwhile a client-loop connection must complete every one of its
  // ingest round trips and long-polls. Progress is the assertion.
  {
    auto client = MonitorClient::Connect("127.0.0.1", js.server->port(),
                                         "interactive", /*resume=*/false);
    ASSERT_TRUE(client.ok()) << client.status();
    const auto query = (*client)->Register(SumSpec(3));
    ASSERT_TRUE(query.ok()) << query.status();
    Timestamp ts = 10000;
    // At least 40 interactive rounds, and keep going until the
    // saturators have demonstrably run concurrently (200 fetch round
    // trips) — both sides must overlap for the assertion to mean
    // anything.
    for (int round = 0;
         round < 40 || fetch_round_trips.load() < 200; ++round) {
      std::vector<Record> batch;
      for (int i = 0; i < 25; ++i) {
        batch.emplace_back(0, Point{0.3, 0.7}, ++ts);
      }
      const auto ack = (*client)->Ingest(std::move(batch));
      ASSERT_TRUE(ack.ok()) << ack.status();
      EXPECT_EQ(ack->accepted, 25u);
      const auto events =
          (*client)->PollDeltas(64, std::chrono::milliseconds(5));
      ASSERT_TRUE(events.ok()) << events.status();
    }
    TOPKMON_ASSERT_OK((*client)->Close(/*close_session=*/true));
  }
  stop.store(true);
  for (std::thread& t : saturators) t.join();

  // The hostile load was genuinely concurrent: the saturators completed
  // plenty of fetch round trips (each one a journal read on the
  // dedicated loop) while every interactive round trip succeeded.
  EXPECT_GE(fetch_round_trips.load(), 200u);
  const NetServerStats stats = js.server->stats();
  EXPECT_GE(stats.connections_migrated, 2u);
  EXPECT_EQ(js.service->stats().failed_cycles, 0u);
  js.server->Stop();
  js.service->Shutdown();
}

TEST(MultiLoopServerTest, ResumeEvictsAParkedPollAcrossLoops) {
  auto service = MakeFastService();
  NetServerOptions opt = TestServerOptions();
  opt.server_threads = 2;
  TcpServer server(*service, opt);
  TOPKMON_ASSERT_OK(server.Start());

  // Connection order: stale -> loop 0, fresh -> loop 1. The eviction
  // therefore must cross loops.
  auto stale = MonitorClient::Connect("127.0.0.1", server.port(), "dash",
                                      /*resume=*/false);
  ASSERT_TRUE(stale.ok()) << stale.status();
  const auto query = (*stale)->Register(SumSpec(2));
  ASSERT_TRUE(query.ok()) << query.status();

  Status stale_outcome;
  std::thread parked([&] {
    const auto events =
        (*stale)->PollDeltas(16, std::chrono::milliseconds(5000));
    stale_outcome = events.status();
  });
  // Wait until the poll is genuinely parked server-side.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  auto fresh = MonitorClient::Connect("127.0.0.1", server.port(), "dash",
                                      /*resume=*/true);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_TRUE((*fresh)->resumed());
  parked.join();
  EXPECT_EQ(stale_outcome.code(), StatusCode::kFailedPrecondition)
      << stale_outcome;

  // The fresh connection — not the evicted one — consumes the stream.
  std::vector<Record> batch;
  batch.emplace_back(0, Point{0.9, 0.9}, 1);
  const auto ack = (*fresh)->Ingest(std::move(batch));
  ASSERT_TRUE(ack.ok()) << ack.status();
  TOPKMON_ASSERT_OK(service->Flush());
  const auto events =
      (*fresh)->PollDeltas(16, std::chrono::milliseconds(2000));
  ASSERT_TRUE(events.ok()) << events.status();
  ASSERT_FALSE(events->empty());
  EXPECT_EQ(events->front().delta.query, *query);
  server.Stop();
  service->Shutdown();
}

// ---- v3 backpressure ----------------------------------------------------

TEST(IngestBackpressureTest, QueueHintRisesAndQueueFullRejectsSuffix) {
  // A frozen queue: capacity 8, a slack gate that can never clear, and a
  // drain wait far longer than the test — depth only moves when we push.
  // This makes every hint value deterministic (no timer races).
  ServiceOptions opt;
  opt.ingest.capacity = 8;
  opt.ingest.slack = Timestamp{1} << 40;
  opt.drain_wait = std::chrono::seconds(30);
  MonitorService service(
      std::make_unique<BruteForceEngine>(kDim, WindowSpec::Count(100)),
      opt);
  TcpServer server(service, testing::TestServerOptions());
  TOPKMON_ASSERT_OK(server.Start());

  auto client = MonitorClient::Connect("127.0.0.1", server.port(),
                                       "pressured", /*resume=*/false);
  ASSERT_TRUE(client.ok()) << client.status();

  // Below the high-water mark (depth 3 of 8): hint 0.
  std::vector<Record> calm;
  for (Timestamp ts = 1; ts <= 3; ++ts) {
    calm.emplace_back(0, Point{0.5, 0.5}, ts);
  }
  const auto ack1 = (*client)->Ingest(std::move(calm));
  ASSERT_TRUE(ack1.ok()) << ack1.status();
  EXPECT_EQ(ack1->accepted, 3u);
  EXPECT_EQ(ack1->queue_hint, 0);
  EXPECT_EQ((*client)->last_ingest_hint(), 0);

  // A batch that overruns capacity: the accepted tuples are exactly the
  // (arrival-sorted) prefix, the suffix is refused RESOURCE_EXHAUSTED,
  // and the hint saturates — the producer's cue to back off and retry
  // the suffix.
  std::vector<Record> burst;
  for (Timestamp ts = 4; ts <= 23; ++ts) {
    burst.emplace_back(0, Point{0.5, 0.5}, ts);
  }
  const auto ack2 = (*client)->Ingest(std::move(burst));
  ASSERT_TRUE(ack2.ok()) << ack2.status();
  EXPECT_EQ(ack2->accepted, 5u) << "capacity 8 minus the 3 buffered";
  EXPECT_EQ(ack2->rejected, 15u);
  EXPECT_EQ(ack2->first_error.code(), StatusCode::kResourceExhausted)
      << ack2->first_error;
  EXPECT_EQ(ack2->queue_hint, 255);
  EXPECT_EQ((*client)->last_ingest_hint(), 255);

  // The refusal is an answer, not a disconnect — and crucially the poll
  // loop never blocked on the full queue: the same connection keeps
  // getting served instantly (control plane and reads don't touch the
  // ingest queue).
  const auto query = (*client)->Register(SumSpec(2));
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_TRUE((*client)->CurrentResult(*query).ok());

  const NetServerStats stats = server.stats();
  EXPECT_EQ(stats.records_ingested, 8u);
  EXPECT_EQ(stats.records_backpressured, 15u);
  EXPECT_EQ(stats.protocol_errors, 0u);

  TOPKMON_ASSERT_OK((*client)->Close(/*close_session=*/true));
  server.Stop();
  service.Shutdown();
}

TEST(IngestBackpressureTest, ProducerPacingLoopDrainsEverythingEventually) {
  // The documented producer protocol: on RESOURCE_EXHAUSTED, retry the
  // unaccepted suffix after a backoff scaled by the hint. With a live
  // driver the queue drains, so the loop always terminates with every
  // tuple admitted exactly once.
  ServiceOptions opt;
  opt.ingest.capacity = 64;
  opt.ingest.slack = 0;
  opt.drain_wait = std::chrono::milliseconds(1);
  MonitorService service(
      std::make_unique<BruteForceEngine>(kDim, WindowSpec::Count(5000)),
      opt);
  TcpServer server(service, testing::TestServerOptions());
  TOPKMON_ASSERT_OK(server.Start());

  auto client = MonitorClient::Connect("127.0.0.1", server.port(),
                                       "paced", /*resume=*/false);
  ASSERT_TRUE(client.ok()) << client.status();

  const std::size_t total = 3000;
  std::vector<Record> pending;
  for (Timestamp ts = 1; ts <= static_cast<Timestamp>(total); ++ts) {
    pending.emplace_back(0, Point{0.4, 0.6}, ts);
  }
  std::uint64_t admitted = 0;
  while (!pending.empty()) {
    std::vector<Record> batch = pending;  // already arrival-sorted
    const auto ack = (*client)->Ingest(std::move(batch));
    ASSERT_TRUE(ack.ok()) << ack.status();
    admitted += ack->accepted;
    if (ack->rejected > 0) {
      ASSERT_EQ(ack->first_error.code(), StatusCode::kResourceExhausted)
          << ack->first_error;
      pending.erase(pending.begin(),
                    pending.begin() + static_cast<long>(ack->accepted));
      // Hint-scaled backoff: saturated queue -> longer wait.
      std::this_thread::sleep_for(
          std::chrono::microseconds(50 * (1 + ack->queue_hint / 64)));
    } else {
      pending.clear();
    }
  }
  EXPECT_EQ(admitted, total);
  TOPKMON_ASSERT_OK(service.Flush());
  EXPECT_EQ(service.stats().records_applied, total);
  TOPKMON_ASSERT_OK((*client)->Close(/*close_session=*/true));
  server.Stop();
  service.Shutdown();
}

}  // namespace
}  // namespace topkmon
