// Wire-protocol unit tests: every message type round-trips through its
// encoder and DecodeNetBody, frames round-trip through EncodeNetFrame and
// TryParseNetFrame, and hostile inputs (truncation, bit flips, oversized
// lengths, lying counts) decode to clean errors, never crashes or
// over-allocations.

#include "net/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/scoring.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

/// Encodes `body` as a frame and re-extracts it, asserting a clean parse.
NetMessage RoundTrip(const std::string& body) {
  std::string stream;
  EncodeNetFrame(body, &stream);
  const char* parsed_body = nullptr;
  std::size_t body_len = 0;
  std::size_t consumed = 0;
  Status error;
  EXPECT_EQ(TryParseNetFrame(stream.data(), stream.size(), kMaxNetFrameBytes,
                             &parsed_body, &body_len, &consumed, &error),
            FrameParse::kFrame)
      << error;
  EXPECT_EQ(consumed, stream.size());
  NetMessage msg;
  const Status st = DecodeNetBody(parsed_body, body_len, &msg);
  EXPECT_TRUE(st.ok()) << st;
  return msg;
}

TEST(NetProtocolTest, HelloAndWelcomeRoundTrip) {
  std::string body;
  EncodeHello(true, "dashboard-7", &body);
  NetMessage hello = RoundTrip(body);
  EXPECT_EQ(hello.type, NetMessageType::kHello);
  EXPECT_EQ(hello.magic, kNetMagic);
  EXPECT_EQ(hello.version, kNetProtocolVersion);
  EXPECT_TRUE(hello.resume);
  EXPECT_EQ(hello.label, "dashboard-7");

  body.clear();
  EncodeWelcome(42, true, /*role=*/1, /*server_tag=*/7,
                /*fencing_epoch=*/3, kNetProtocolVersion, &body);
  NetMessage welcome = RoundTrip(body);
  EXPECT_EQ(welcome.type, NetMessageType::kWelcome);
  EXPECT_EQ(welcome.session, 42u);
  EXPECT_TRUE(welcome.resumed);
  EXPECT_EQ(welcome.role, 1);
  EXPECT_EQ(welcome.server_tag, 7u);
  EXPECT_EQ(welcome.fencing_epoch, 3u);

  // An untagged (standalone) server answers with the sentinel; a group
  // that never failed over carries epoch 0.
  body.clear();
  EncodeWelcome(43, false, /*role=*/0, kNoServerTag, /*fencing_epoch=*/0,
                kNetProtocolVersion, &body);
  NetMessage plain = RoundTrip(body);
  EXPECT_EQ(plain.server_tag, kNoServerTag);
  EXPECT_EQ(plain.fencing_epoch, 0u);
}

TEST(NetProtocolTest, V4ShapedRepliesDecodeWithEpochZero) {
  // A v4 connection gets replies without the trailing fencing epoch;
  // a v5 decoder accepts them and defaults the epoch to 0. The echoed
  // Welcome version carries the negotiated dialect.
  std::string body;
  EncodeWelcome(42, false, /*role=*/0, /*server_tag=*/7,
                /*fencing_epoch=*/99, /*wire_version=*/4, &body);
  NetMessage welcome = RoundTrip(body);
  EXPECT_EQ(welcome.version, 4u);
  EXPECT_EQ(welcome.fencing_epoch, 0u);  // not shipped at v4

  body.clear();
  EncodeIngestAck(5, 0, Status::Ok(), /*queue_hint=*/0,
                  /*fencing_epoch=*/99, /*wire_version=*/4, &body);
  NetMessage ack = RoundTrip(body);
  EXPECT_EQ(ack.accepted, 5u);
  EXPECT_EQ(ack.fencing_epoch, 0u);

  body.clear();
  EncodeReplChunk(/*segment=*/2, /*offset=*/64, /*sealed=*/false,
                  /*restart=*/false, /*next_segment=*/0,
                  /*leader_cycle_ts=*/123, "abc", /*fencing_epoch=*/99,
                  /*wire_version=*/4, &body);
  NetMessage chunk = RoundTrip(body);
  EXPECT_EQ(chunk.data, "abc");
  EXPECT_EQ(chunk.fencing_epoch, 0u);

  // A partial trailing epoch (1..7 bytes) is still malformed, not a
  // quietly truncated v4 body.
  body.clear();
  EncodeWelcome(42, false, 0, 7, 99, kNetProtocolVersion, &body);
  body.resize(body.size() - 3);
  NetMessage out;
  EXPECT_FALSE(DecodeNetBody(body.data(), body.size(), &out).ok());
}

TEST(NetProtocolTest, IngestBatchRoundTripsThroughTheSpanEncoding) {
  std::vector<Record> tuples;
  for (RecordId id = 0; id < 50; ++id) {
    tuples.emplace_back(id,
                        Point{0.01 * static_cast<double>(id), 0.5},
                        static_cast<Timestamp>(100 + id / 7));
  }
  std::string body;
  EncodeIngest(tuples, &body);
  // Span compactness: ~2 bytes of deltas + 16 coordinate bytes per tuple
  // after the span header — the design target for batched ingest.
  EXPECT_LT(body.size(), 1 + 4 + 17 + tuples.size() * 20);
  NetMessage msg = RoundTrip(body);
  ASSERT_EQ(msg.type, NetMessageType::kIngest);
  ASSERT_EQ(msg.tuples.size(), tuples.size());
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_EQ(msg.tuples[i].id, tuples[i].id);
    EXPECT_EQ(msg.tuples[i].arrival, tuples[i].arrival);
    EXPECT_EQ(msg.tuples[i].position[0], tuples[i].position[0]);
  }

  body.clear();
  EncodeIngestAck(48, 2,
                  Status::FailedPrecondition("session rate limit"),
                  /*queue_hint=*/0, /*fencing_epoch=*/0,
                  kNetProtocolVersion, &body);
  NetMessage ack = RoundTrip(body);
  EXPECT_EQ(ack.type, NetMessageType::kIngestAck);
  EXPECT_EQ(ack.accepted, 48u);
  EXPECT_EQ(ack.rejected, 2u);
  EXPECT_EQ(ack.code, StatusCode::kFailedPrecondition);
  EXPECT_EQ(ack.message, "session rate limit");
  EXPECT_EQ(ack.queue_hint, 0);
  EXPECT_EQ(ack.fencing_epoch, 0u);

  // The v3 backpressure byte roundtrips, including the saturated value;
  // the v5 fencing epoch rides along.
  body.clear();
  EncodeIngestAck(7, 9, Status::ResourceExhausted("ingest queue is full"),
                  /*queue_hint=*/255, /*fencing_epoch=*/12,
                  kNetProtocolVersion, &body);
  NetMessage pressured = RoundTrip(body);
  EXPECT_EQ(pressured.type, NetMessageType::kIngestAck);
  EXPECT_EQ(pressured.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(pressured.queue_hint, 255);
  EXPECT_EQ(pressured.fencing_epoch, 12u);

  // A FENCED refusal (v5) round-trips its dedicated wire status code.
  body.clear();
  EncodeIngestAck(0, 9, Status::Fenced("leader lease lapsed"),
                  /*queue_hint=*/0, /*fencing_epoch=*/13,
                  kNetProtocolVersion, &body);
  NetMessage fenced = RoundTrip(body);
  EXPECT_EQ(fenced.code, StatusCode::kFenced);
  EXPECT_EQ(fenced.fencing_epoch, 13u);
}

TEST(NetProtocolTest, StatusProbeRoundTripsRoleEpochAndJournalEnd) {
  std::string body;
  EncodeStatusRequest(&body);
  NetMessage request = RoundTrip(body);
  EXPECT_EQ(request.type, NetMessageType::kStatus);

  body.clear();
  EncodeStatusInfo(/*role=*/1, /*fencing_epoch=*/9,
                   /*applied_cycle_ts=*/777, /*segment=*/4,
                   /*offset=*/65536, /*fenced=*/false, &body);
  NetMessage info = RoundTrip(body);
  EXPECT_EQ(info.type, NetMessageType::kStatusInfo);
  EXPECT_EQ(info.role, 1);
  EXPECT_EQ(info.fencing_epoch, 9u);
  EXPECT_EQ(info.as_of, 777);
  EXPECT_EQ(info.segment, 4u);
  EXPECT_EQ(info.offset, 65536u);
  EXPECT_FALSE(info.fenced);

  // The fenced latch rides last: a deposed leader still reports role 0,
  // so the flag — not the role — is what probing followers trust.
  body.clear();
  EncodeStatusInfo(/*role=*/0, /*fencing_epoch=*/256,
                   /*applied_cycle_ts=*/777, /*segment=*/4,
                   /*offset=*/65536, /*fenced=*/true, &body);
  NetMessage deposed = RoundTrip(body);
  EXPECT_EQ(deposed.role, 0);
  EXPECT_TRUE(deposed.fenced);

  // Any value beyond 0/1 in the flag byte is a malformed body.
  std::string junk = body;
  junk.back() = 2;
  NetMessage out;
  EXPECT_FALSE(DecodeNetBody(junk.data(), junk.size(), &out).ok());
}

TEST(NetProtocolTest, RegisterRoundTripsSpecsIncludingConstraints) {
  QuerySpec spec;
  spec.id = 7;
  spec.k = 12;
  spec.function = std::make_shared<LinearFunction>(
      std::vector<double>{0.25, -0.5, 1.0}, 0.125);
  spec.constraint = Rect(Point{0.1, 0.2, 0.3}, Point{0.9, 0.8, 0.7});
  std::string body;
  TOPKMON_ASSERT_OK(EncodeRegister(spec, &body));
  NetMessage msg = RoundTrip(body);
  ASSERT_EQ(msg.type, NetMessageType::kRegister);
  EXPECT_EQ(msg.spec.id, 7u);
  EXPECT_EQ(msg.spec.k, 12);
  ASSERT_NE(msg.spec.function, nullptr);
  EXPECT_EQ(msg.spec.function->Score(Point{1.0, 1.0, 1.0}),
            spec.function->Score(Point{1.0, 1.0, 1.0}));
  ASSERT_TRUE(msg.spec.constraint.has_value());
  EXPECT_EQ(msg.spec.constraint->lo()[2], 0.3);

  body.clear();
  EncodeRegisterAck(31, &body);
  EXPECT_EQ(RoundTrip(body).query, 31u);
}

TEST(NetProtocolTest, SnapshotAndDeltasRoundTrip) {
  std::string body;
  EncodeSnapshotRequest(9, &body);
  EXPECT_EQ(RoundTrip(body).query, 9u);

  body.clear();
  EncodeSnapshotResult({{101, 0.75}, {88, 0.5}}, /*as_of=*/777,
                       /*stale_by=*/3, &body);
  NetMessage snap = RoundTrip(body);
  ASSERT_EQ(snap.entries.size(), 2u);
  EXPECT_EQ(snap.entries[0].id, 101u);
  EXPECT_EQ(snap.entries[1].score, 0.5);
  EXPECT_EQ(snap.as_of, 777);
  EXPECT_EQ(snap.stale_by, 3);

  std::vector<DeltaEvent> events(2);
  events[0].seq = 5;
  events[0].delta.query = 3;
  events[0].delta.when = 1234;
  events[0].delta.added = {{7, 0.9}};
  events[1].seq = 6;
  events[1].delta.query = 3;
  events[1].delta.when = 1235;
  events[1].delta.removed = {{7, 0.9}, {8, 0.1}};
  body.clear();
  EncodeDeltas(events, /*as_of=*/1235, /*truncated=*/false, &body);
  NetMessage deltas = RoundTrip(body);
  ASSERT_EQ(deltas.events.size(), 2u);
  EXPECT_EQ(deltas.events[0].seq, 5u);
  EXPECT_EQ(deltas.events[0].delta.added.size(), 1u);
  EXPECT_EQ(deltas.events[1].delta.removed[1].id, 8u);
  EXPECT_EQ(deltas.events[1].delta.when, 1235);
  EXPECT_EQ(deltas.as_of, 1235);
  EXPECT_FALSE(deltas.truncated);

  // The v4 truncated flag survives the wire; values past 1 are a
  // dialect violation, not silently truthy.
  body.clear();
  EncodeDeltas(events, /*as_of=*/1235, /*truncated=*/true, &body);
  EXPECT_TRUE(RoundTrip(body).truncated);
  body[1 + 8] = 2;  // the flag byte follows the type byte and as_of
  NetMessage bad;
  EXPECT_FALSE(DecodeNetBody(body.data(), body.size(), &bad).ok());
}

TEST(NetProtocolTest, PollCloseAndErrorRoundTrip) {
  std::string body;
  EncodePoll(256, 1500, &body);
  NetMessage poll = RoundTrip(body);
  EXPECT_EQ(poll.max_events, 256u);
  EXPECT_EQ(poll.timeout_ms, 1500u);

  body.clear();
  EncodeClose(true, &body);
  EXPECT_TRUE(RoundTrip(body).close_session);

  body.clear();
  EncodeError(Status::NotFound("no query 12"), &body);
  NetMessage err = RoundTrip(body);
  EXPECT_EQ(err.type, NetMessageType::kError);
  EXPECT_EQ(err.code, StatusCode::kNotFound);
  EXPECT_EQ(err.message, "no query 12");
}

TEST(NetProtocolTest, StatusCodesSurviveTheWire) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kResourceExhausted,
        StatusCode::kUnavailable}) {
    EXPECT_EQ(NetDecodeStatusCode(NetEncodeStatusCode(code)), code);
  }
  EXPECT_EQ(NetDecodeStatusCode(255), StatusCode::kInternal);
}

TEST(NetFrameTest, PartialFramesAskForMoreBytes) {
  std::string body;
  EncodeHello(false, "x", &body);
  std::string stream;
  EncodeNetFrame(body, &stream);
  const char* out_body = nullptr;
  std::size_t body_len = 0;
  std::size_t consumed = 0;
  Status error;
  for (std::size_t n = 0; n < stream.size(); ++n) {
    EXPECT_EQ(TryParseNetFrame(stream.data(), n, kMaxNetFrameBytes,
                               &out_body, &body_len, &consumed, &error),
              FrameParse::kNeedMore)
        << "prefix length " << n;
  }
}

TEST(NetFrameTest, EveryBitFlipIsCaughtByTheCrc) {
  std::string body;
  EncodeRegisterAck(1234, &body);
  std::string pristine;
  EncodeNetFrame(body, &pristine);
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    std::string stream = pristine;
    stream[i] = static_cast<char>(stream[i] ^ 0x01);
    const char* out_body = nullptr;
    std::size_t body_len = 0;
    std::size_t consumed = 0;
    Status error;
    const FrameParse parse =
        TryParseNetFrame(stream.data(), stream.size(), kMaxNetFrameBytes,
                         &out_body, &body_len, &consumed, &error);
    // A flip in the length prefix may shrink the frame below the
    // available bytes (kNeedMore) or trip the size limit (kBad); any
    // flip that leaves a complete frame must fail the CRC — a damaged
    // frame is never decoded.
    if (parse == FrameParse::kFrame) {
      ADD_FAILURE() << "bit flip at byte " << i << " went undetected";
    }
  }
}

TEST(NetFrameTest, OversizedLengthPrefixIsRejectedNotAllocated) {
  std::string stream;
  // A length prefix of ~4 GiB: must be refused via the max_body bound
  // without ever waiting for (or allocating) that many bytes.
  const std::uint32_t huge = 0xFFFFFF00u;
  for (int i = 0; i < 4; ++i) {
    stream.push_back(static_cast<char>(huge >> (8 * i)));
  }
  stream.append(4, '\0');  // crc
  const char* body = nullptr;
  std::size_t body_len = 0;
  std::size_t consumed = 0;
  Status error;
  EXPECT_EQ(TryParseNetFrame(stream.data(), stream.size(), kMaxNetFrameBytes,
                             &body, &body_len, &consumed, &error),
            FrameParse::kBad);
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
}

TEST(NetProtocolTest, TruncatedBodiesDecodeToCleanErrors) {
  std::vector<std::string> bodies;
  bodies.emplace_back();
  EncodeHello(true, "client", &bodies.back());
  bodies.emplace_back();
  {
    std::vector<Record> tuples;
    for (RecordId id = 0; id < 5; ++id) {
      tuples.emplace_back(id, Point{0.5, 0.5}, 1);
    }
    EncodeIngest(tuples, &bodies.back());
  }
  bodies.emplace_back();
  {
    QuerySpec spec;
    spec.k = 3;
    spec.function =
        std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0}, 0.0);
    TOPKMON_ASSERT_OK(EncodeRegister(spec, &bodies.back()));
  }
  bodies.emplace_back();
  {
    std::vector<DeltaEvent> events(1);
    events[0].seq = 1;
    events[0].delta.added = {{1, 0.5}};
    EncodeDeltas(events, /*as_of=*/99, /*truncated=*/false, &bodies.back());
  }
  for (const std::string& body : bodies) {
    for (std::size_t n = 1; n < body.size(); ++n) {
      NetMessage msg;
      const Status st = DecodeNetBody(body.data(), n, &msg);
      EXPECT_FALSE(st.ok())
          << "truncating a " << body.size() << "-byte body to " << n
          << " bytes decoded anyway";
    }
    // Trailing garbage is a dialect mismatch, also refused.
    std::string padded = body + "x";
    NetMessage msg;
    EXPECT_FALSE(DecodeNetBody(padded.data(), padded.size(), &msg).ok());
  }
}

TEST(NetProtocolTest, LyingCountsCannotDriveAllocations) {
  // An ingest body promising 2^32-1 records in a handful of bytes.
  std::string body;
  body.push_back(static_cast<char>(NetMessageType::kIngest));
  for (int i = 0; i < 4; ++i) body.push_back(static_cast<char>(0xFF));
  body.push_back(2);  // dim
  body.append(20, '\0');
  NetMessage msg;
  EXPECT_FALSE(DecodeNetBody(body.data(), body.size(), &msg).ok());

  // A deltas body promising 100M events.
  body.clear();
  body.push_back(static_cast<char>(NetMessageType::kDeltas));
  body.append(8, '\0');  // as_of (v4)
  body.push_back(0);     // truncated flag (v4)
  const std::uint32_t count = 100000000;
  for (int i = 0; i < 4; ++i) {
    body.push_back(static_cast<char>(count >> (8 * i)));
  }
  body.append(8, '\0');
  EXPECT_FALSE(DecodeNetBody(body.data(), body.size(), &msg).ok());
}

TEST(NetProtocolTest, DeeplyNestedPiecewiseCannotOverflowTheStack) {
  // A Register body whose scoring function nests piecewise-inside-
  // piecewise ~200k levels deep (~21 bytes per level, well under the
  // 16 MiB frame cap). The decoder must reject the nested family tag
  // BEFORE recursing into it — a post-parse check would recurse once
  // per level and smash the stack long before the first rejection.
  std::string body;
  body.push_back(static_cast<char>(NetMessageType::kRegister));
  body.append(4, '\0');  // spec id
  body.append(4, '\0');  // k
  const auto put_f64 = [&](double) { body.append(8, '\0'); };
  for (int level = 0; level < 200000; ++level) {
    body.push_back(4);  // family: piecewise
    body.push_back(1);  // dim
    body.push_back(1);  // piece count
    body.push_back(1);  // lo point dim
    put_f64(0.0);
    body.push_back(1);  // hi point dim
    put_f64(1.0);
    // ... followed by the piece's inner function: the next level.
  }
  NetMessage msg;
  const Status st = DecodeNetBody(body.data(), body.size(), &msg);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("nested piecewise"), std::string::npos) << st;
}

}  // namespace
}  // namespace topkmon
