// Loopback end-to-end acceptance: real TCP, real concurrency.
//
// A TcpServer fronts a MonitorService over a 2-shard TMA engine. Four
// client threads run against it over loopback:
//   * 2 producers stream tuples through batched wire ingest;
//   * 2 subscribers each hold a session with registered queries and
//     long-poll their delta streams — and one of them disconnects
//     mid-run and reconnects with resume, adopting its session by label.
// Every session's delta stream must be sequence-contiguous (gap-free,
// across the reconnect), and replaying the exact cycles the service
// driver applied into a BruteForceEngine must reproduce the identical
// per-query delta streams cycle-for-cycle.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/brute_force_engine.h"
#include "core/sharded_engine.h"
#include "core/tma_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "tests/net/net_test_util.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

using ::topkmon::testing::MakeRandomQueries;

constexpr int kDim = 2;
constexpr std::size_t kWindow = 500;
constexpr int kProducers = 2;
constexpr int kRecordsPerProducer = 600;
constexpr std::size_t kBatch = 25;

std::vector<double> ApplyDelta(std::map<RecordId, double>& view,
                               const ResultDelta& delta) {
  for (const ResultEntry& e : delta.removed) view.erase(e.id);
  for (const ResultEntry& e : delta.added) view.emplace(e.id, e.score);
  std::vector<double> scores;
  scores.reserve(view.size());
  for (const auto& [id, score] : view) scores.push_back(score);
  std::sort(scores.begin(), scores.end());
  return scores;
}

TEST(NetEndToEndTest, TcpClientsSeeGapFreeDeltasMatchingBruteForce) {
  ServiceOptions opt;
  opt.ingest.slack = 4;
  opt.drain_wait = std::chrono::milliseconds(2);
  opt.hub.buffer_capacity = 1 << 16;  // no overflow drops in this test
  MonitorService service(
      std::make_unique<ShardedEngine>(
          2,
          [] {
            GridEngineOptions grid;
            grid.dim = kDim;
            grid.window = WindowSpec::Count(kWindow);
            grid.cell_budget = 256;
            return std::unique_ptr<MonitorEngine>(new TmaEngine(grid));
          }),
      opt);

  // Journal of the exact (cycle, batch) sequence the driver applied.
  std::mutex journal_mu;
  std::vector<std::pair<Timestamp, std::vector<Record>>> journal;
  service.SetCycleObserver(
      [&journal_mu, &journal](Timestamp ts, RecordSpan b) {
        std::lock_guard<std::mutex> lock(journal_mu);
        journal.emplace_back(ts,
                             std::vector<Record>(b.begin(), b.end()));
      });

  TcpServer server(service, testing::TestServerOptions());
  TOPKMON_ASSERT_OK(server.Start());
  const std::uint16_t port = server.port();

  // Two subscriber sessions, three queries each, registered over the
  // wire before the stream starts.
  const char* labels[2] = {"sub-a", "sub-b"};
  const auto specs = MakeRandomQueries(kDim, 6, 5, 99);
  std::vector<QuerySpec> registered;  // specs with service-assigned ids
  std::vector<std::unique_ptr<MonitorClient>> subscribers;
  for (int s = 0; s < 2; ++s) {
    auto client =
        MonitorClient::Connect("127.0.0.1", port, labels[s],
                               /*resume=*/false);
    ASSERT_TRUE(client.ok()) << client.status();
    EXPECT_FALSE((*client)->resumed());
    for (int q = 0; q < 3; ++q) {
      const QuerySpec& spec = specs[static_cast<std::size_t>(s * 3 + q)];
      const auto id = (*client)->Register(spec);
      ASSERT_TRUE(id.ok()) << id.status();
      QuerySpec with_id = spec;
      with_id.id = *id;
      registered.push_back(std::move(with_id));
    }
    subscribers.push_back(std::move(*client));
  }

  // Subscriber threads long-poll their delta streams. Subscriber 1
  // additionally drops its connection mid-run and resumes by label.
  std::atomic<bool> done{false};
  std::vector<std::vector<DeltaEvent>> received(2);
  bool resumed_ok = false;
  std::vector<std::thread> threads;
  for (int s = 0; s < 2; ++s) {
    threads.emplace_back([&, s] {
      std::unique_ptr<MonitorClient> client = std::move(subscribers[s]);
      bool reconnected = s == 0;  // only sub-b (s==1) reconnects
      while (true) {
        auto events =
            client->PollDeltas(512, std::chrono::milliseconds(20));
        ASSERT_TRUE(events.ok()) << events.status();
        received[s].insert(received[s].end(), events->begin(),
                           events->end());
        if (!reconnected && received[s].size() >= 10) {
          // Mid-run reconnect: drop the socket (session survives), come
          // back with resume, keep polling the same stream.
          client.reset();
          auto again = MonitorClient::Connect("127.0.0.1", port, labels[s],
                                              /*resume=*/true);
          ASSERT_TRUE(again.ok()) << again.status();
          resumed_ok = (*again)->resumed();
          client = std::move(*again);
          reconnected = true;
        }
        if (events->empty() && done.load()) break;
      }
      TOPKMON_ASSERT_OK(client->Close(/*close_session=*/false));
    });
  }

  // Producer threads ingest concurrently over their own connections; a
  // shared atomic clock keeps timestamps globally unique.
  std::atomic<Timestamp> clock{1};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      auto client = MonitorClient::Connect(
          "127.0.0.1", port, "prod-" + std::to_string(p),
          /*resume=*/false);
      ASSERT_TRUE(client.ok()) << client.status();
      auto gen = MakeGenerator(Distribution::kIndependent, kDim,
                               1000 + static_cast<std::uint64_t>(p));
      int sent = 0;
      while (sent < kRecordsPerProducer) {
        std::vector<Record> batch;
        for (std::size_t i = 0;
             i < kBatch && sent < kRecordsPerProducer; ++i, ++sent) {
          batch.emplace_back(0, gen->NextPoint(), clock.fetch_add(1));
        }
        const auto ack = (*client)->Ingest(std::move(batch));
        ASSERT_TRUE(ack.ok()) << ack.status();
        ASSERT_EQ(ack->rejected, 0u) << ack->first_error;
      }
      TOPKMON_ASSERT_OK((*client)->Close(/*close_session=*/false));
    });
  }
  for (std::thread& t : producers) t.join();
  TOPKMON_ASSERT_OK(service.Flush());
  done.store(true);
  for (std::thread& t : threads) t.join();
  server.Stop();
  service.Shutdown();

  EXPECT_TRUE(resumed_ok) << "reconnect did not adopt the session by label";
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.records_applied,
            static_cast<std::uint64_t>(kProducers * kRecordsPerProducer));
  EXPECT_EQ(stats.failed_cycles, 0u);
  EXPECT_EQ(stats.deltas_dropped, 0u);

  // Gap-free: every session's sequence numbers are exactly 1..n, with
  // the reconnect invisible in the stream.
  std::map<QueryId, std::vector<ResultDelta>> got;
  for (int s = 0; s < 2; ++s) {
    ASSERT_FALSE(received[s].empty()) << labels[s];
    std::uint64_t expected_seq = 1;
    for (const DeltaEvent& e : received[s]) {
      EXPECT_EQ(e.seq, expected_seq++)
          << labels[s] << " has a sequence gap";
      got[e.delta.query].push_back(e.delta);
    }
  }

  // Ground truth: replay the exact driver cycles into a brute-force
  // engine holding the same queries, and compare per-query delta
  // streams cycle-for-cycle.
  std::map<QueryId, std::vector<ResultDelta>> truth;
  BruteForceEngine brute(kDim, WindowSpec::Count(kWindow));
  brute.SetDeltaCallback(
      [&truth](const ResultDelta& d) { truth[d.query].push_back(d); });
  for (const QuerySpec& spec : registered) {
    TOPKMON_ASSERT_OK(brute.RegisterQuery(spec));
  }
  {
    std::lock_guard<std::mutex> lock(journal_mu);
    ASSERT_FALSE(journal.empty());
    for (const auto& [ts, batch] : journal) {
      TOPKMON_ASSERT_OK(brute.ProcessCycle(ts, batch));
    }
  }
  for (const QuerySpec& spec : registered) {
    const auto& got_deltas = got[spec.id];
    const auto& want_deltas = truth[spec.id];
    ASSERT_EQ(got_deltas.size(), want_deltas.size())
        << "query " << spec.id;
    std::map<RecordId, double> got_view;
    std::map<RecordId, double> want_view;
    for (std::size_t i = 0; i < got_deltas.size(); ++i) {
      EXPECT_EQ(got_deltas[i].when, want_deltas[i].when)
          << "query " << spec.id << " event " << i;
      EXPECT_EQ(ApplyDelta(got_view, got_deltas[i]),
                ApplyDelta(want_view, want_deltas[i]))
          << "query " << spec.id << " diverges at event " << i;
    }
  }
}

// A stale connection with a parked long-poll must not survive a resume:
// its poll would silently consume the session's delta events into a
// socket buffer nobody reads. Connections sharing the session without
// an outstanding poll (the producer in this test) are left alone.
TEST(NetEndToEndTest, ResumeEvictsAStaleParkedPollButNotProducers) {
  ServiceOptions opt;
  opt.ingest.slack = 0;
  opt.drain_wait = std::chrono::milliseconds(1);
  MonitorService service(
      std::make_unique<BruteForceEngine>(kDim, WindowSpec::Count(100)),
      opt);
  TcpServer server(service, testing::TestServerOptions());
  TOPKMON_ASSERT_OK(server.Start());

  auto stale = MonitorClient::Connect("127.0.0.1", server.port(), "dash",
                                      /*resume=*/false);
  ASSERT_TRUE(stale.ok()) << stale.status();
  QuerySpec spec;
  spec.k = 2;
  spec.function =
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0}, 0.0);
  const auto query = (*stale)->Register(spec);
  ASSERT_TRUE(query.ok()) << query.status();
  // A producer sharing the session, with no poll outstanding.
  auto producer = MonitorClient::Connect("127.0.0.1", server.port(),
                                         "dash", /*resume=*/true);
  ASSERT_TRUE(producer.ok()) << producer.status();
  EXPECT_TRUE((*producer)->resumed());

  // Park a long-poll on the stale connection, then resume the session
  // from a fresh connection while it waits.
  Status stale_outcome;
  std::thread parked([&] {
    const auto events =
        (*stale)->PollDeltas(16, std::chrono::milliseconds(5000));
    stale_outcome = events.status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto fresh = MonitorClient::Connect("127.0.0.1", server.port(), "dash",
                                      /*resume=*/true);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_TRUE((*fresh)->resumed());
  parked.join();
  EXPECT_EQ(stale_outcome.code(), StatusCode::kFailedPrecondition)
      << stale_outcome;

  // The producer connection was NOT evicted and the fresh connection —
  // not the stale one — receives the deltas its ingest triggers.
  std::vector<Record> batch;
  batch.emplace_back(0, Point{0.9, 0.9}, 1);
  const auto ack = (*producer)->Ingest(std::move(batch));
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->accepted, 1u);
  TOPKMON_ASSERT_OK(service.Flush());
  const auto events =
      (*fresh)->PollDeltas(16, std::chrono::milliseconds(2000));
  ASSERT_TRUE(events.ok()) << events.status();
  ASSERT_FALSE(events->empty());
  EXPECT_EQ(events->front().delta.query, *query);
  server.Stop();
  service.Shutdown();
}

// The v4 truncated flag must be server-reported truth, not a client
// guess: when the server's own max_poll_events clamp — which the client
// cannot see — is the binding cap, a cut answer still says so, and the
// flag clears once the buffer drains.
TEST(NetEndToEndTest, TruncatedPollsReportTheServerSideFlag) {
  ServiceOptions opt;
  opt.ingest.slack = 0;
  opt.drain_wait = std::chrono::milliseconds(1);
  MonitorService service(
      std::make_unique<BruteForceEngine>(kDim, WindowSpec::Count(100)),
      opt);
  NetServerOptions server_opt = testing::TestServerOptions();
  server_opt.max_poll_events = 1;  // the server clamp, invisible on the wire
  TcpServer server(service, server_opt);
  TOPKMON_ASSERT_OK(server.Start());

  auto client = MonitorClient::Connect("127.0.0.1", server.port(), "sub",
                                       /*resume=*/false);
  ASSERT_TRUE(client.ok()) << client.status();
  QuerySpec spec;
  spec.k = 2;
  spec.function =
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0}, 0.0);
  const auto query = (*client)->Register(spec);
  ASSERT_TRUE(query.ok()) << query.status();

  // Four single-record cycles, each shifting the top-2: four buffered
  // delta events for the session.
  for (Timestamp ts = 1; ts <= 4; ++ts) {
    std::vector<Record> batch;
    const double coord = 0.2 * static_cast<double>(ts);
    batch.emplace_back(0, Point{coord, coord}, ts);
    const auto ack = (*client)->Ingest(std::move(batch));
    ASSERT_TRUE(ack.ok()) << ack.status();
    TOPKMON_ASSERT_OK(service.Flush());
  }

  // The client asks for 512; the server clamps at 1 and must confess
  // the cut. Draining polls stay truncated until the buffer empties.
  std::size_t total = 0;
  bool saw_truncated = false;
  for (int i = 0; i < 16; ++i) {
    const auto events =
        (*client)->PollDeltas(512, std::chrono::milliseconds(0));
    ASSERT_TRUE(events.ok()) << events.status();
    if (events->empty()) break;
    EXPECT_LE(events->size(), 1u);
    total += events->size();
    if ((*client)->deltas_truncated()) saw_truncated = true;
  }
  EXPECT_GE(total, 2u);
  EXPECT_TRUE(saw_truncated)
      << "a poll cut at the server's clamp never reported truncation";
  // The final (empty) answer proved the stream drained.
  EXPECT_FALSE((*client)->deltas_truncated());
  server.Stop();
  service.Shutdown();
}

TEST(NetEndToEndTest, CloseSessionReleasesQueriesAndForgetsTheLabel) {
  MonitorService service(
      std::make_unique<BruteForceEngine>(kDim, WindowSpec::Count(100)),
      ServiceOptions{});
  TcpServer server(service, testing::TestServerOptions());
  TOPKMON_ASSERT_OK(server.Start());

  auto client = MonitorClient::Connect("127.0.0.1", server.port(),
                                       "ephemeral", /*resume=*/true);
  ASSERT_TRUE(client.ok()) << client.status();
  EXPECT_FALSE((*client)->resumed());
  QuerySpec spec;
  spec.k = 1;
  spec.function =
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0}, 0.0);
  const auto id = (*client)->Register(spec);
  ASSERT_TRUE(id.ok());
  TOPKMON_ASSERT_OK((*client)->Close(/*close_session=*/true));

  // The session is gone: a resume under the same label opens fresh, and
  // the query was unregistered with it.
  auto again = MonitorClient::Connect("127.0.0.1", server.port(),
                                      "ephemeral", /*resume=*/true);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_FALSE((*again)->resumed());
  EXPECT_EQ((*again)->CurrentResult(*id).status().code(),
            StatusCode::kNotFound);
  server.Stop();
  service.Shutdown();
}

}  // namespace
}  // namespace topkmon
