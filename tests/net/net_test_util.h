// Shared server construction for the net/replica test tiers.

#ifndef TOPKMON_TESTS_NET_NET_TEST_UTIL_H_
#define TOPKMON_TESTS_NET_NET_TEST_UTIL_H_

#include <chrono>
#include <cstdlib>

#include "net/server.h"

namespace topkmon {
namespace testing {

/// Fast-tick server options for tests. TOPKMON_SERVER_THREADS (if set)
/// overrides the poll-loop count, which is how CI re-runs the whole
/// net/replica tier multi-threaded (e.g. under TSan with 4 loops)
/// without a parallel test matrix in the sources.
inline NetServerOptions TestServerOptions() {
  NetServerOptions opt;
  opt.poll_tick = std::chrono::milliseconds(1);
  if (const char* env = std::getenv("TOPKMON_SERVER_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) opt.server_threads = static_cast<std::size_t>(n);
  }
  return opt;
}

}  // namespace testing
}  // namespace topkmon

#endif  // TOPKMON_TESTS_NET_NET_TEST_UTIL_H_
