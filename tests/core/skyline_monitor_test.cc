#include "core/skyline_monitor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "stream/generators.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

TEST(DominanceTest, StrictDominanceRequiresOneStrictAxis) {
  EXPECT_TRUE(Dominates(Point{0.5, 0.5}, Point{0.5, 0.4}));
  EXPECT_TRUE(Dominates(Point{0.6, 0.6}, Point{0.5, 0.5}));
  EXPECT_FALSE(Dominates(Point{0.5, 0.5}, Point{0.5, 0.5}));
  EXPECT_FALSE(Dominates(Point{0.6, 0.4}, Point{0.5, 0.5}));
}

TEST(DominanceTest, WeakDominanceAcceptsEquality) {
  EXPECT_TRUE(DominatesOrEquals(Point{0.5, 0.5}, Point{0.5, 0.5}));
  EXPECT_TRUE(DominatesOrEquals(Point{0.6, 0.5}, Point{0.5, 0.5}));
  EXPECT_FALSE(DominatesOrEquals(Point{0.4, 0.9}, Point{0.5, 0.5}));
}

TEST(SkylineMonitorTest, SimpleSkyline) {
  SkylineMonitor monitor(2, WindowSpec::Count(10));
  TOPKMON_ASSERT_OK(monitor.ProcessCycle(
      1, {Record(0, Point{0.9, 0.2}, 1), Record(1, Point{0.5, 0.5}, 1),
          Record(2, Point{0.2, 0.9}, 1), Record(3, Point{0.4, 0.4}, 1)}));
  const std::vector<Record> skyline = monitor.CurrentSkyline();
  std::set<RecordId> ids;
  for (const Record& r : skyline) ids.insert(r.id);
  // Record 3 is dominated by record 1; the rest are incomparable.
  EXPECT_EQ(ids, (std::set<RecordId>{0, 1, 2}));
}

TEST(SkylineMonitorTest, ArrivalEvictsSupersededCandidates) {
  SkylineMonitor monitor(2, WindowSpec::Count(10));
  TOPKMON_ASSERT_OK(monitor.ProcessCycle(
      1, {Record(0, Point{0.5, 0.5}, 1), Record(1, Point{0.4, 0.4}, 1)}));
  EXPECT_EQ(monitor.CandidateCount(), 2u);  // 1 may outlive 0
  // A new record strictly dominating both: candidates collapse to it.
  TOPKMON_ASSERT_OK(
      monitor.ProcessCycle(2, {Record(2, Point{0.6, 0.6}, 2)}));
  EXPECT_EQ(monitor.CandidateCount(), 1u);
  const std::vector<Record> skyline = monitor.CurrentSkyline();
  ASSERT_EQ(skyline.size(), 1u);
  EXPECT_EQ(skyline[0].id, 2u);
}

TEST(SkylineMonitorTest, ExactDuplicatesBothStayInSkyline) {
  SkylineMonitor monitor(2, WindowSpec::Count(10));
  TOPKMON_ASSERT_OK(monitor.ProcessCycle(
      1, {Record(0, Point{0.7, 0.7}, 1), Record(1, Point{0.7, 0.7}, 1)}));
  EXPECT_EQ(monitor.CandidateCount(), 2u);
  EXPECT_EQ(monitor.CurrentSkyline().size(), 2u);
}

TEST(SkylineMonitorTest, DominatedByOlderStaysAsCandidate) {
  SkylineMonitor monitor(2, WindowSpec::Count(2));
  // Record 0 dominates record 1, but 1 arrives later: 1 must be retained
  // because it enters the skyline once 0 expires.
  TOPKMON_ASSERT_OK(monitor.ProcessCycle(
      1, {Record(0, Point{0.8, 0.8}, 1), Record(1, Point{0.3, 0.3}, 1)}));
  auto skyline = monitor.CurrentSkyline();
  ASSERT_EQ(skyline.size(), 1u);
  EXPECT_EQ(skyline[0].id, 0u);
  EXPECT_EQ(monitor.CandidateCount(), 2u);
  // Push record 0 out of the 2-record window.
  TOPKMON_ASSERT_OK(
      monitor.ProcessCycle(2, {Record(2, Point{0.1, 0.9}, 2)}));
  skyline = monitor.CurrentSkyline();
  std::set<RecordId> ids;
  for (const Record& r : skyline) ids.insert(r.id);
  EXPECT_EQ(ids, (std::set<RecordId>{1, 2}));
}

TEST(SkylineMonitorTest, RejectsMalformedInput) {
  SkylineMonitor monitor(2, WindowSpec::Count(10));
  EXPECT_EQ(monitor.ProcessCycle(1, {Record(0, Point{1.2, 0.5}, 1)}).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(
      monitor.ProcessCycle(1, {Record(0, Point{0.5, 0.5, 0.5}, 1)}).code(),
      StatusCode::kInvalidArgument);
}

// Differential test against a full-scan skyline oracle across window
// kinds, dimensionalities and distributions.
class SkylineMonitorProperty
    : public ::testing::TestWithParam<std::tuple<int, Distribution>> {};

TEST_P(SkylineMonitorProperty, MatchesBruteForceOracle) {
  const auto [dim, dist] = GetParam();
  const std::size_t window_n = 150;
  SkylineMonitor monitor(dim, WindowSpec::Count(window_n));
  SlidingWindow shadow = SlidingWindow::CountBased(window_n);
  RecordSource source(
      MakeGenerator(dist, dim, 300 + static_cast<std::uint64_t>(dim)));
  Timestamp now = 0;
  for (int cycle = 0; cycle < 40; ++cycle) {
    ++now;
    const std::vector<Record> batch = source.NextBatch(20, now);
    TOPKMON_ASSERT_OK(monitor.ProcessCycle(now, batch));
    for (const Record& r : batch) ASSERT_TRUE(shadow.Append(r).ok());
    shadow.EvictExpired(now);
    // Oracle: O(n^2) skyline of the shadow window.
    std::set<RecordId> want;
    for (const Record& p : shadow) {
      bool dominated = false;
      for (const Record& q : shadow) {
        if (q.id != p.id && Dominates(q.position, p.position)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) want.insert(p.id);
    }
    std::set<RecordId> got;
    for (const Record& r : monitor.CurrentSkyline()) got.insert(r.id);
    ASSERT_EQ(got, want) << "cycle " << cycle << " dim " << dim;
    // The candidate set is always a superset of the skyline and a subset
    // of the window.
    EXPECT_GE(monitor.CandidateCount(), got.size());
    EXPECT_LE(monitor.CandidateCount(), shadow.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkylineMonitorProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(Distribution::kIndependent,
                                         Distribution::kAntiCorrelated,
                                         Distribution::kClustered)));

TEST(SkylineMonitorTest, TimeBasedWindowDrains) {
  SkylineMonitor monitor(2, WindowSpec::Time(3));
  TOPKMON_ASSERT_OK(
      monitor.ProcessCycle(1, {Record(0, Point{0.9, 0.9}, 1)}));
  EXPECT_EQ(monitor.CurrentSkyline().size(), 1u);
  TOPKMON_ASSERT_OK(monitor.ProcessCycle(5, {}));
  EXPECT_EQ(monitor.CurrentSkyline().size(), 0u);
  EXPECT_EQ(monitor.WindowSize(), 0u);
  EXPECT_EQ(monitor.CandidateCount(), 0u);
}

TEST(SkylineMonitorTest, AntiCorrelatedSkylineIsLarger) {
  // Classic skyline behavior: ANT data have much larger skylines than IND
  // (every band point is nearly incomparable with its neighbors).
  auto run = [](Distribution dist) {
    SkylineMonitor monitor(3, WindowSpec::Count(2000));
    RecordSource source(MakeGenerator(dist, 3, 9));
    Timestamp now = 0;
    for (int c = 0; c < 10; ++c) {
      ++now;
      [&] {
        TOPKMON_ASSERT_OK(monitor.ProcessCycle(now, source.NextBatch(200, now)));
      }();
    }
    return monitor.CurrentSkyline().size();
  };
  EXPECT_GT(run(Distribution::kAntiCorrelated),
            2 * run(Distribution::kIndependent));
}

}  // namespace
}  // namespace topkmon
