#include "core/query.h"

#include <gtest/gtest.h>

#include <memory>

namespace topkmon {
namespace {

QuerySpec MakeSpec(int k, std::vector<double> weights) {
  QuerySpec spec;
  spec.id = 1;
  spec.k = k;
  spec.function = std::make_shared<LinearFunction>(std::move(weights));
  return spec;
}

TEST(QuerySpecTest, ValidSpecPasses) {
  EXPECT_TRUE(MakeSpec(5, {1.0, 2.0}).Validate(2).ok());
}

TEST(QuerySpecTest, RejectsNonPositiveK) {
  EXPECT_EQ(MakeSpec(0, {1.0, 2.0}).Validate(2).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeSpec(-3, {1.0, 2.0}).Validate(2).code(),
            StatusCode::kInvalidArgument);
}

TEST(QuerySpecTest, RejectsMissingFunction) {
  QuerySpec spec;
  spec.k = 1;
  EXPECT_EQ(spec.Validate(2).code(), StatusCode::kInvalidArgument);
}

TEST(QuerySpecTest, RejectsDimMismatch) {
  EXPECT_EQ(MakeSpec(1, {1.0, 2.0, 3.0}).Validate(2).code(),
            StatusCode::kInvalidArgument);
}

TEST(QuerySpecTest, RejectsConstraintDimMismatch) {
  QuerySpec spec = MakeSpec(1, {1.0, 2.0});
  spec.constraint = Rect::UnitSpace(3);
  EXPECT_EQ(spec.Validate(2).code(), StatusCode::kInvalidArgument);
}

TEST(QuerySpecTest, RejectsConstraintOutsideUnitSpace) {
  QuerySpec spec = MakeSpec(1, {1.0, 2.0});
  Point hi{1.0, 1.0};
  hi[0] = 1.5;
  spec.constraint = Rect(Point{0.0, 0.0}, hi);
  EXPECT_EQ(spec.Validate(2).code(), StatusCode::kOutOfRange);
}

TEST(ResultOrderTest, DescendingScoreThenDescendingId) {
  EXPECT_TRUE(ResultOrder({1, 2.0}, {2, 1.0}));
  EXPECT_FALSE(ResultOrder({2, 1.0}, {1, 2.0}));
  EXPECT_TRUE(ResultOrder({5, 1.0}, {3, 1.0}));  // newer id first on tie
  EXPECT_FALSE(ResultOrder({3, 1.0}, {5, 1.0}));
}

TEST(TopKListTest, KeepsBestKSorted) {
  TopKList list(3);
  list.Consider(1, 0.5);
  list.Consider(2, 0.9);
  list.Consider(3, 0.1);
  list.Consider(4, 0.7);
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list.entries()[0].id, 2u);
  EXPECT_EQ(list.entries()[1].id, 4u);
  EXPECT_EQ(list.entries()[2].id, 1u);
  EXPECT_DOUBLE_EQ(list.KthScore(), 0.5);
  EXPECT_TRUE(list.full());
}

TEST(TopKListTest, KthScoreIsMinusInfinityWhileNotFull) {
  TopKList list(2);
  EXPECT_EQ(list.KthScore(), -std::numeric_limits<double>::infinity());
  list.Consider(1, 0.5);
  EXPECT_EQ(list.KthScore(), -std::numeric_limits<double>::infinity());
  list.Consider(2, 0.6);
  EXPECT_DOUBLE_EQ(list.KthScore(), 0.5);
}

TEST(TopKListTest, RejectsWorseThanKth) {
  TopKList list(2);
  list.Consider(1, 0.9);
  list.Consider(2, 0.8);
  EXPECT_FALSE(list.Consider(3, 0.7));
  EXPECT_EQ(list.size(), 2u);
}

TEST(TopKListTest, EqualScoreNewerIdReplacesOlder) {
  TopKList list(2);
  list.Consider(1, 0.9);
  list.Consider(2, 0.5);
  // Newer record ties the kth score: per the arrival rule (score >=
  // top_score) it enters and the older equal entry leaves.
  EXPECT_TRUE(list.Consider(7, 0.5));
  EXPECT_TRUE(list.Contains(7));
  EXPECT_FALSE(list.Contains(2));
}

TEST(TopKListTest, EqualScoreOlderIdRejectedWhenFull) {
  TopKList list(2);
  list.Consider(5, 0.9);
  list.Consider(6, 0.5);
  EXPECT_FALSE(list.Consider(2, 0.5));
  EXPECT_TRUE(list.Contains(6));
}

TEST(TopKListTest, RemoveAndContains) {
  TopKList list(3);
  list.Consider(1, 0.5);
  list.Consider(2, 0.6);
  EXPECT_TRUE(list.Contains(1));
  EXPECT_TRUE(list.Remove(1));
  EXPECT_FALSE(list.Contains(1));
  EXPECT_FALSE(list.Remove(1));
  EXPECT_EQ(list.size(), 1u);
}

TEST(TopKListTest, ClearEmpties) {
  TopKList list(2);
  list.Consider(1, 0.5);
  list.Clear();
  EXPECT_EQ(list.size(), 0u);
  EXPECT_FALSE(list.full());
}

TEST(TopKListTest, KOneBehaves) {
  TopKList list(1);
  list.Consider(1, 0.3);
  EXPECT_TRUE(list.Consider(2, 0.4));
  EXPECT_FALSE(list.Consider(3, 0.2));
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list.entries()[0].id, 2u);
}

}  // namespace
}  // namespace topkmon
