#include "core/delta.h"

#include <gtest/gtest.h>

#include <map>

#include "core/brute_force_engine.h"
#include "core/sma_engine.h"
#include "core/tma_engine.h"
#include "tests/test_util.h"
#include "tsl/tsl_engine.h"

namespace topkmon {
namespace {

TEST(DeltaTrackerTest, DisabledTrackerDoesNothing) {
  DeltaTracker tracker;
  EXPECT_FALSE(tracker.enabled());
  tracker.Report(1, 0, {{1, 0.5}});  // must be a no-op, not a crash
  EXPECT_EQ(tracker.MemoryBytes(), 0u);
}

TEST(DeltaTrackerTest, FirstReportIsAllAdded) {
  DeltaTracker tracker;
  std::vector<ResultDelta> deltas;
  tracker.SetCallback([&](const ResultDelta& d) { deltas.push_back(d); });
  tracker.Report(7, 3, {{10, 0.9}, {11, 0.8}});
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].query, 7u);
  EXPECT_EQ(deltas[0].when, 3);
  EXPECT_EQ(deltas[0].added.size(), 2u);
  EXPECT_TRUE(deltas[0].removed.empty());
}

TEST(DeltaTrackerTest, UnchangedResultIsSilent) {
  DeltaTracker tracker;
  int calls = 0;
  tracker.SetCallback([&](const ResultDelta&) { ++calls; });
  tracker.Report(1, 1, {{10, 0.9}});
  tracker.Report(1, 2, {{10, 0.9}});
  tracker.Report(1, 3, {{10, 0.9}});
  EXPECT_EQ(calls, 1);
}

TEST(DeltaTrackerTest, ChangeReportsAddedAndRemoved) {
  DeltaTracker tracker;
  std::vector<ResultDelta> deltas;
  tracker.SetCallback([&](const ResultDelta& d) { deltas.push_back(d); });
  tracker.Report(1, 1, {{10, 0.9}, {11, 0.8}});
  tracker.Report(1, 2, {{10, 0.9}, {12, 0.85}});
  ASSERT_EQ(deltas.size(), 2u);
  ASSERT_EQ(deltas[1].added.size(), 1u);
  EXPECT_EQ(deltas[1].added[0].id, 12u);
  ASSERT_EQ(deltas[1].removed.size(), 1u);
  EXPECT_EQ(deltas[1].removed[0].id, 11u);
}

TEST(DeltaTrackerTest, ForgetDropsState) {
  DeltaTracker tracker;
  int calls = 0;
  tracker.SetCallback([&](const ResultDelta&) { ++calls; });
  tracker.Report(1, 1, {{10, 0.9}});
  tracker.Forget(1);
  tracker.Report(1, 2, {{10, 0.9}});  // reported as new again
  EXPECT_EQ(calls, 2);
}

TEST(DeltaTrackerTest, ClearingCallbackResetsState) {
  DeltaTracker tracker;
  tracker.SetCallback([](const ResultDelta&) {});
  tracker.Report(1, 1, {{10, 0.9}});
  EXPECT_GT(tracker.MemoryBytes(), 0u);
  tracker.SetCallback(nullptr);
  EXPECT_FALSE(tracker.enabled());
  EXPECT_EQ(tracker.MemoryBytes(), 0u);
}

// Engine-level contract: replaying the deltas reconstructs the current
// result exactly, for every engine, over a random stream.
template <typename EngineT>
void CheckDeltaReplay(EngineT& engine) {
  const int dim = engine.dim();
  QuerySpec q;
  q.id = 1;
  q.k = 5;
  q.function = std::make_shared<LinearFunction>(
      std::vector<double>(dim, 1.0));
  std::map<RecordId, double> replayed;
  std::uint64_t callbacks = 0;
  engine.SetDeltaCallback([&](const ResultDelta& d) {
    ++callbacks;
    ASSERT_EQ(d.query, 1u);
    for (const ResultEntry& e : d.removed) {
      ASSERT_EQ(replayed.erase(e.id), 1u) << "removed unknown entry";
    }
    for (const ResultEntry& e : d.added) {
      ASSERT_TRUE(replayed.emplace(e.id, e.score).second)
          << "added duplicate entry";
    }
  });
  TOPKMON_ASSERT_OK(engine.RegisterQuery(q));
  RecordSource source(MakeGenerator(Distribution::kIndependent, dim, 77));
  for (Timestamp now = 1; now <= 40; ++now) {
    TOPKMON_ASSERT_OK(engine.ProcessCycle(now, source.NextBatch(25, now)));
    const auto result = engine.CurrentResult(1);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(replayed.size(), result->size()) << "at t=" << now;
    for (const ResultEntry& e : *result) {
      auto it = replayed.find(e.id);
      ASSERT_NE(it, replayed.end());
      EXPECT_EQ(it->second, e.score);
    }
  }
  EXPECT_GT(callbacks, 1u);
}

TEST(EngineDeltaTest, TmaDeltasReplayToCurrentResult) {
  GridEngineOptions opt;
  opt.dim = 2;
  opt.window = WindowSpec::Count(300);
  opt.cell_budget = 256;
  TmaEngine engine(opt);
  CheckDeltaReplay(engine);
}

TEST(EngineDeltaTest, SmaDeltasReplayToCurrentResult) {
  GridEngineOptions opt;
  opt.dim = 2;
  opt.window = WindowSpec::Count(300);
  opt.cell_budget = 256;
  SmaEngine engine(opt);
  CheckDeltaReplay(engine);
}

TEST(EngineDeltaTest, TslDeltasReplayToCurrentResult) {
  TslOptions opt;
  opt.dim = 2;
  opt.window = WindowSpec::Count(300);
  TslEngine engine(opt);
  CheckDeltaReplay(engine);
}

TEST(EngineDeltaTest, BruteDeltasReplayToCurrentResult) {
  BruteForceEngine engine(2, WindowSpec::Count(300));
  CheckDeltaReplay(engine);
}

TEST(EngineDeltaTest, RegistrationEmitsInitialResult) {
  GridEngineOptions opt;
  opt.dim = 2;
  opt.window = WindowSpec::Count(100);
  opt.cell_budget = 64;
  TmaEngine engine(opt);
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 5));
  TOPKMON_ASSERT_OK(engine.ProcessCycle(1, source.NextBatch(100, 1)));
  std::vector<ResultDelta> deltas;
  engine.SetDeltaCallback(
      [&](const ResultDelta& d) { deltas.push_back(d); });
  QuerySpec q;
  q.id = 9;
  q.k = 3;
  q.function = std::make_shared<LinearFunction>(
      std::vector<double>{1.0, 1.0});
  TOPKMON_ASSERT_OK(engine.RegisterQuery(q));
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].query, 9u);
  EXPECT_EQ(deltas[0].added.size(), 3u);
  EXPECT_TRUE(deltas[0].removed.empty());
}

}  // namespace
}  // namespace topkmon
