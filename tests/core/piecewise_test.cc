#include "core/piecewise.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/sma_engine.h"
#include "core/tma_engine.h"
#include "stream/generators.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

/// The running example: f(p) = x2 - |x1 - 0.5|, non-monotone in x1 with a
/// single ridge at x1 = 0.5, split into two monotone pieces.
std::vector<MonotonePiece> RidgePieces() {
  std::vector<MonotonePiece> pieces;
  // x1 in [0, 0.5]: f = -0.5 + x1 + x2 (increasing on both axes).
  pieces.push_back(MonotonePiece{
      Rect(Point{0.0, 0.0}, Point{0.5, 1.0}),
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0},
                                       -0.5)});
  // x1 in [0.5, 1]: f = 0.5 - x1 + x2 (decreasing on x1).
  pieces.push_back(MonotonePiece{
      Rect(Point{0.5, 0.0}, Point{1.0, 1.0}),
      std::make_shared<LinearFunction>(std::vector<double>{-1.0, 1.0},
                                       0.5)});
  return pieces;
}

double RidgeScore(const Point& p) {
  return p[1] - std::abs(p[0] - 0.5);
}

GridEngineOptions Options2d(std::size_t window) {
  GridEngineOptions opt;
  opt.dim = 2;
  opt.window = WindowSpec::Count(window);
  opt.cell_budget = 256;
  return opt;
}

TEST(LinearFunctionBiasTest, BiasShiftsScoresUniformly) {
  LinearFunction plain({1.0, 1.0});
  LinearFunction biased({1.0, 1.0}, -0.5);
  const Point p{0.3, 0.4};
  EXPECT_DOUBLE_EQ(biased.Score(p), plain.Score(p) - 0.5);
  EXPECT_EQ(biased.direction(0), Monotonicity::kIncreasing);
  auto clone = biased.Clone();
  EXPECT_DOUBLE_EQ(clone->Score(p), biased.Score(p));
  EXPECT_NE(biased.ToString().find("-0.500 + "), std::string::npos);
}

TEST(PiecewiseTest, RegistrationValidatesInput) {
  SmaEngine engine(Options2d(100));
  EXPECT_FALSE(
      PiecewiseTopKQuery::Register(nullptr, 1, 3, RidgePieces()).ok());
  EXPECT_FALSE(PiecewiseTopKQuery::Register(&engine, 1, 3, {}).ok());
  // Dimensionality mismatch inside a piece is caught by the engine and
  // already-registered pieces are rolled back.
  std::vector<MonotonePiece> bad = RidgePieces();
  bad[1].function = std::make_shared<LinearFunction>(
      std::vector<double>{1.0, 1.0, 1.0});
  EXPECT_FALSE(PiecewiseTopKQuery::Register(&engine, 1, 3, bad).ok());
  // The rollback freed the base id: a clean registration succeeds.
  auto query = PiecewiseTopKQuery::Register(&engine, 1, 3, RidgePieces());
  ASSERT_TRUE(query.ok());
  TOPKMON_EXPECT_OK(query->Unregister());
}

TEST(PiecewiseTest, MatchesNonMonotoneBruteForceOverStream) {
  for (int engine_kind = 0; engine_kind < 2; ++engine_kind) {
    std::unique_ptr<MonitorEngine> engine;
    if (engine_kind == 0) {
      engine = std::make_unique<TmaEngine>(Options2d(300));
    } else {
      engine = std::make_unique<SmaEngine>(Options2d(300));
    }
    const int k = 5;
    auto query =
        PiecewiseTopKQuery::Register(engine.get(), 10, k, RidgePieces());
    ASSERT_TRUE(query.ok());
    EXPECT_EQ(query->num_pieces(), 2u);

    RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 91));
    SlidingWindow shadow = SlidingWindow::CountBased(300);
    for (Timestamp now = 1; now <= 30; ++now) {
      const std::vector<Record> batch = source.NextBatch(30, now);
      TOPKMON_ASSERT_OK(engine->ProcessCycle(now, batch));
      for (const Record& r : batch) ASSERT_TRUE(shadow.Append(r).ok());
      shadow.EvictExpired(now);
      // Oracle: brute-force top-k under the true non-monotone function.
      TopKList want(k);
      for (const Record& r : shadow) {
        want.Consider(r.id, RidgeScore(r.position));
      }
      const auto got = query->CurrentResult();
      ASSERT_TRUE(got.ok());
      const std::vector<double> got_scores = testing::Scores(*got);
      const std::vector<double> want_scores =
          testing::Scores(want.entries());
      ASSERT_EQ(got_scores.size(), want_scores.size())
          << "engine " << engine->name() << " t=" << now;
      for (std::size_t i = 0; i < got_scores.size(); ++i) {
        EXPECT_NEAR(got_scores[i], want_scores[i], 1e-12)
            << "engine " << engine->name() << " t=" << now << " rank " << i;
      }
    }
    TOPKMON_EXPECT_OK(query->Unregister());
    EXPECT_EQ(engine->CurrentResult(10).status().code(),
              StatusCode::kNotFound);
    EXPECT_EQ(engine->CurrentResult(11).status().code(),
              StatusCode::kNotFound);
  }
}

TEST(PiecewiseTest, BoundaryRecordsAreNotDuplicated) {
  SmaEngine engine(Options2d(100));
  const int k = 4;
  auto query =
      PiecewiseTopKQuery::Register(&engine, 1, k, RidgePieces());
  ASSERT_TRUE(query.ok());
  // Records exactly on the ridge x1 = 0.5 belong to both pieces.
  TOPKMON_ASSERT_OK(engine.ProcessCycle(
      1, {Record(0, Point{0.5, 0.9}, 1), Record(1, Point{0.5, 0.8}, 1),
          Record(2, Point{0.2, 0.9}, 1)}));
  const auto result = query->CurrentResult();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 3u);  // no id twice
  EXPECT_EQ((*result)[0].id, 0u);  // 0.9 on the ridge
  EXPECT_EQ((*result)[1].id, 1u);  // 0.8 on the ridge
  EXPECT_EQ((*result)[2].id, 2u);  // 0.9 - 0.3
  EXPECT_DOUBLE_EQ((*result)[0].score, 0.9);
  EXPECT_DOUBLE_EQ((*result)[2].score, 0.6);
  TOPKMON_EXPECT_OK(query->Unregister());
}

TEST(PiecewiseTest, FourPieceSaddleFunction) {
  // f(p) = -|x1 - 0.5| - |x2 - 0.5| (peak at the center): four monotone
  // quadrant pieces.
  std::vector<MonotonePiece> pieces;
  const double c = 0.5;
  pieces.push_back(MonotonePiece{
      Rect(Point{0.0, 0.0}, Point{c, c}),
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0},
                                       -1.0)});
  pieces.push_back(MonotonePiece{
      Rect(Point{c, 0.0}, Point{1.0, c}),
      std::make_shared<LinearFunction>(std::vector<double>{-1.0, 1.0},
                                       0.0)});
  pieces.push_back(MonotonePiece{
      Rect(Point{0.0, c}, Point{c, 1.0}),
      std::make_shared<LinearFunction>(std::vector<double>{1.0, -1.0},
                                       0.0)});
  pieces.push_back(MonotonePiece{
      Rect(Point{c, c}, Point{1.0, 1.0}),
      std::make_shared<LinearFunction>(std::vector<double>{-1.0, -1.0},
                                       1.0)});
  SmaEngine engine(Options2d(400));
  auto query = PiecewiseTopKQuery::Register(&engine, 100, 6, pieces);
  ASSERT_TRUE(query.ok());
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 7));
  SlidingWindow shadow = SlidingWindow::CountBased(400);
  for (Timestamp now = 1; now <= 25; ++now) {
    const std::vector<Record> batch = source.NextBatch(40, now);
    TOPKMON_ASSERT_OK(engine.ProcessCycle(now, batch));
    for (const Record& r : batch) ASSERT_TRUE(shadow.Append(r).ok());
    shadow.EvictExpired(now);
    TopKList want(6);
    for (const Record& r : shadow) {
      want.Consider(r.id, -std::abs(r.position[0] - c) -
                              std::abs(r.position[1] - c));
    }
    const auto got = query->CurrentResult();
    ASSERT_TRUE(got.ok());
    const std::vector<double> got_scores = testing::Scores(*got);
    const std::vector<double> want_scores = testing::Scores(want.entries());
    ASSERT_EQ(got_scores.size(), want_scores.size()) << "t=" << now;
    for (std::size_t i = 0; i < got_scores.size(); ++i) {
      EXPECT_NEAR(got_scores[i], want_scores[i], 1e-12) << "t=" << now;
    }
  }
  TOPKMON_EXPECT_OK(query->Unregister());
}

}  // namespace
}  // namespace topkmon
