#include "core/tma_engine.h"

#include <gtest/gtest.h>

#include "core/brute_force_engine.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

using ::topkmon::testing::MakeRandomQueries;
using ::topkmon::testing::Scores;

GridEngineOptions SmallOptions(int dim, std::size_t n) {
  GridEngineOptions opt;
  opt.dim = dim;
  opt.window = WindowSpec::Count(n);
  opt.cell_budget = 256;
  return opt;
}

QuerySpec LinearQuery(QueryId id, int k, std::vector<double> w) {
  QuerySpec spec;
  spec.id = id;
  spec.k = k;
  spec.function = std::make_shared<LinearFunction>(std::move(w));
  return spec;
}

TEST(TmaEngineTest, NameAndDim) {
  TmaEngine engine(SmallOptions(3, 100));
  EXPECT_EQ(engine.name(), "TMA");
  EXPECT_EQ(engine.dim(), 3);
}

TEST(TmaEngineTest, RegisterDuplicateFails) {
  TmaEngine engine(SmallOptions(2, 100));
  TOPKMON_ASSERT_OK(engine.RegisterQuery(LinearQuery(1, 2, {1.0, 1.0})));
  EXPECT_EQ(engine.RegisterQuery(LinearQuery(1, 2, {1.0, 1.0})).code(),
            StatusCode::kAlreadyExists);
}

TEST(TmaEngineTest, UnregisterUnknownFails) {
  TmaEngine engine(SmallOptions(2, 100));
  EXPECT_EQ(engine.UnregisterQuery(9).code(), StatusCode::kNotFound);
}

TEST(TmaEngineTest, CurrentResultUnknownQueryFails) {
  TmaEngine engine(SmallOptions(2, 100));
  EXPECT_EQ(engine.CurrentResult(5).status().code(), StatusCode::kNotFound);
}

TEST(TmaEngineTest, EmptyWindowYieldsEmptyResult) {
  TmaEngine engine(SmallOptions(2, 100));
  TOPKMON_ASSERT_OK(engine.RegisterQuery(LinearQuery(1, 3, {1.0, 2.0})));
  const auto result = engine.CurrentResult(1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(TmaEngineTest, HandCraftedScenarioFollowsFigure8) {
  // Reproduces the dynamics of Figures 5/8: f = x1 + 2*x2, k = 1, window
  // of 2 records.
  GridEngineOptions opt = SmallOptions(2, 2);
  opt.cells_per_axis = 7;
  opt.cell_budget = 0;
  TmaEngine engine(opt);
  // p1 near the top (winner), p2 weaker.
  TOPKMON_ASSERT_OK(engine.ProcessCycle(
      1, {Record(0, Point{0.65, 0.85}, 1), Record(1, Point{0.15, 0.90}, 1)}));
  TOPKMON_ASSERT_OK(engine.RegisterQuery(LinearQuery(1, 1, {1.0, 2.0})));
  auto result = engine.CurrentResult(1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 0u);  // p1 wins: 0.65 + 1.7 = 2.35 vs 1.95

  // Figure 8(a): p3, p4 arrive; p1, p2 expire (count window of 2). p3
  // scores above the old top record, so the insertion pre-empts the
  // expiration of p1 and no recomputation happens.
  TOPKMON_ASSERT_OK(engine.ProcessCycle(
      2, {Record(2, Point{0.75, 0.85}, 2), Record(3, Point{0.60, 0.60}, 2)}));
  result = engine.CurrentResult(1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 2u);  // p3: 0.75 + 1.7 = 2.45
  // No recomputation was needed: the insertion of p3 preceded p1's expiry.
  EXPECT_EQ(engine.stats().recomputations, 0u);

  // Figure 8(b): p5 arrives (weak), p3 expires => recomputation, p4 wins.
  TOPKMON_ASSERT_OK(
      engine.ProcessCycle(3, {Record(4, Point{0.10, 0.10}, 3)}));
  result = engine.CurrentResult(1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 3u);  // p4
  EXPECT_EQ(engine.stats().recomputations, 1u);
}

TEST(TmaEngineTest, MatchesBruteForceOnRandomStream) {
  const int dim = 2;
  GridEngineOptions opt = SmallOptions(dim, 500);
  TmaEngine tma(opt);
  BruteForceEngine brute(dim, opt.window);
  const auto queries = MakeRandomQueries(dim, 8, 5, 42);
  testing::RunLockstepAgreement({&brute, &tma}, queries,
                                Distribution::kIndependent, dim,
                                /*arrivals_per_cycle=*/50,
                                /*warmup_cycles=*/12, /*measured_cycles=*/30,
                                /*seed=*/7);
}

TEST(TmaEngineTest, ConstrainedQueryMatchesBruteForce) {
  const int dim = 2;
  GridEngineOptions opt = SmallOptions(dim, 400);
  TmaEngine tma(opt);
  BruteForceEngine brute(dim, opt.window);
  QuerySpec q = LinearQuery(1, 4, {1.0, 2.0});
  q.constraint = Rect(Point{0.2, 0.1}, Point{0.7, 0.8});
  testing::RunLockstepAgreement({&brute, &tma}, {q},
                                Distribution::kIndependent, dim, 40, 12, 25,
                                11);
}

TEST(TmaEngineTest, UnregisterClearsAllInfluenceEntries) {
  GridEngineOptions opt = SmallOptions(2, 300);
  TmaEngine engine(opt);
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 3));
  TOPKMON_ASSERT_OK(engine.ProcessCycle(1, source.NextBatch(300, 1)));
  TOPKMON_ASSERT_OK(engine.RegisterQuery(LinearQuery(1, 5, {1.0, 0.5})));
  TOPKMON_ASSERT_OK(engine.RegisterQuery(LinearQuery(2, 5, {0.3, 0.9})));
  EXPECT_GT(engine.grid().TotalInfluenceEntries(), 0u);
  TOPKMON_ASSERT_OK(engine.UnregisterQuery(1));
  TOPKMON_ASSERT_OK(engine.UnregisterQuery(2));
  EXPECT_EQ(engine.grid().TotalInfluenceEntries(), 0u);
}

TEST(TmaEngineTest, RejectsOutOfRangeArrival) {
  TmaEngine engine(SmallOptions(2, 10));
  const Status s =
      engine.ProcessCycle(1, {Record(0, Point{1.5, 0.5}, 1)});
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST(TmaEngineTest, KLargerThanWindowTracksEverything) {
  GridEngineOptions opt = SmallOptions(2, 5);
  TmaEngine engine(opt);
  BruteForceEngine brute(2, opt.window);
  const auto queries = MakeRandomQueries(2, 3, 20, 5);
  testing::RunLockstepAgreement({&brute, &engine}, queries,
                                Distribution::kIndependent, 2, 3, 2, 20, 9);
}

TEST(TmaEngineTest, MemoryBreakdownHasComponents) {
  GridEngineOptions opt = SmallOptions(2, 100);
  TmaEngine engine(opt);
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 3));
  TOPKMON_ASSERT_OK(engine.ProcessCycle(1, source.NextBatch(100, 1)));
  TOPKMON_ASSERT_OK(engine.RegisterQuery(LinearQuery(1, 5, {1.0, 0.5})));
  const MemoryBreakdown mb = engine.Memory();
  EXPECT_GT(mb.Bytes("window"), 0u);
  EXPECT_GT(mb.Bytes("point_lists"), 0u);
  EXPECT_GT(mb.Bytes("query_table"), 0u);
  EXPECT_GT(mb.TotalBytes(), 0u);
}

TEST(TmaEngineTest, StatsCountArrivalsAndExpirations) {
  GridEngineOptions opt = SmallOptions(2, 50);
  TmaEngine engine(opt);
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 3));
  TOPKMON_ASSERT_OK(engine.ProcessCycle(1, source.NextBatch(80, 1)));
  EXPECT_EQ(engine.stats().arrivals, 80u);
  EXPECT_EQ(engine.stats().expirations, 30u);
  EXPECT_EQ(engine.WindowSize(), 50u);
  EXPECT_EQ(engine.stats().cycles, 1u);
}

}  // namespace
}  // namespace topkmon
