#include "core/brute_force_engine.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace topkmon {
namespace {

QuerySpec LinearQuery(QueryId id, int k, std::vector<double> w) {
  QuerySpec spec;
  spec.id = id;
  spec.k = k;
  spec.function = std::make_shared<LinearFunction>(std::move(w));
  return spec;
}

TEST(BruteForceEngineTest, ComputesTopKByFullScan) {
  BruteForceEngine engine(2, WindowSpec::Count(10));
  TOPKMON_ASSERT_OK(engine.ProcessCycle(
      1, {Record(0, Point{0.1, 0.1}, 1), Record(1, Point{0.9, 0.9}, 1),
          Record(2, Point{0.5, 0.5}, 1)}));
  TOPKMON_ASSERT_OK(engine.RegisterQuery(LinearQuery(1, 2, {1.0, 1.0})));
  const auto result = engine.CurrentResult(1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].id, 1u);
  EXPECT_EQ((*result)[1].id, 2u);
  EXPECT_DOUBLE_EQ((*result)[0].score, 1.8);
}

TEST(BruteForceEngineTest, RespectsWindowEviction) {
  BruteForceEngine engine(2, WindowSpec::Count(2));
  TOPKMON_ASSERT_OK(engine.RegisterQuery(LinearQuery(1, 1, {1.0, 1.0})));
  TOPKMON_ASSERT_OK(engine.ProcessCycle(
      1, {Record(0, Point{0.9, 0.9}, 1), Record(1, Point{0.2, 0.2}, 1),
          Record(2, Point{0.3, 0.3}, 1)}));
  // Record 0 (the best) fell out of the 2-record window.
  const auto result = engine.CurrentResult(1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0].id, 2u);
}

TEST(BruteForceEngineTest, ConstraintFiltersRecords) {
  BruteForceEngine engine(2, WindowSpec::Count(10));
  QuerySpec q = LinearQuery(1, 1, {1.0, 1.0});
  q.constraint = Rect(Point{0.0, 0.0}, Point{0.5, 0.5});
  TOPKMON_ASSERT_OK(engine.RegisterQuery(q));
  TOPKMON_ASSERT_OK(engine.ProcessCycle(
      1, {Record(0, Point{0.9, 0.9}, 1), Record(1, Point{0.4, 0.4}, 1)}));
  const auto result = engine.CurrentResult(1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 1u);
}

TEST(BruteForceEngineTest, ErrorPaths) {
  BruteForceEngine engine(2, WindowSpec::Count(10));
  EXPECT_EQ(engine.CurrentResult(1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.UnregisterQuery(1).code(), StatusCode::kNotFound);
  TOPKMON_ASSERT_OK(engine.RegisterQuery(LinearQuery(1, 1, {1.0, 1.0})));
  EXPECT_EQ(engine.RegisterQuery(LinearQuery(1, 1, {1.0, 1.0})).code(),
            StatusCode::kAlreadyExists);
  TOPKMON_ASSERT_OK(engine.UnregisterQuery(1));
}

}  // namespace
}  // namespace topkmon
