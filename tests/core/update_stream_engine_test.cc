#include "core/update_stream_engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "stream/record_pool.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

GridEngineOptions SmallOptions(int dim) {
  GridEngineOptions opt;
  opt.dim = dim;
  opt.cell_budget = 256;
  return opt;
}

QuerySpec LinearQuery(QueryId id, int k, std::vector<double> w) {
  QuerySpec spec;
  spec.id = id;
  spec.k = k;
  spec.function = std::make_shared<LinearFunction>(std::move(w));
  return spec;
}

UpdateOp Insert(RecordId id, Point p) {
  UpdateOp op;
  op.kind = UpdateOp::Kind::kInsert;
  op.record = Record(id, std::move(p), 0);
  return op;
}

UpdateOp Delete(RecordId id) {
  UpdateOp op;
  op.kind = UpdateOp::Kind::kDelete;
  op.record.id = id;
  return op;
}

TEST(UpdateStreamEngineTest, InsertionsBuildResult) {
  UpdateStreamTmaEngine engine(SmallOptions(2));
  TOPKMON_ASSERT_OK(engine.RegisterQuery(LinearQuery(1, 2, {1.0, 1.0})));
  TOPKMON_ASSERT_OK(engine.ProcessBatch({Insert(0, Point{0.9, 0.9}),
                                         Insert(1, Point{0.2, 0.2}),
                                         Insert(2, Point{0.5, 0.6})}));
  const auto result = engine.CurrentResult(1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].id, 0u);
  EXPECT_EQ((*result)[1].id, 2u);
  EXPECT_EQ(engine.LiveCount(), 3u);
}

TEST(UpdateStreamEngineTest, DeletingResultRecordTriggersRecompute) {
  UpdateStreamTmaEngine engine(SmallOptions(2));
  TOPKMON_ASSERT_OK(engine.RegisterQuery(LinearQuery(1, 1, {1.0, 1.0})));
  TOPKMON_ASSERT_OK(engine.ProcessBatch({Insert(0, Point{0.9, 0.9}),
                                         Insert(1, Point{0.4, 0.4})}));
  const std::uint64_t before = engine.stats().recomputations;
  TOPKMON_ASSERT_OK(engine.ProcessBatch({Delete(0)}));
  EXPECT_EQ(engine.stats().recomputations, before + 1);
  const auto result = engine.CurrentResult(1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 1u);
}

TEST(UpdateStreamEngineTest, DeletingNonResultRecordIsCheap) {
  UpdateStreamTmaEngine engine(SmallOptions(2));
  TOPKMON_ASSERT_OK(engine.RegisterQuery(LinearQuery(1, 1, {1.0, 1.0})));
  TOPKMON_ASSERT_OK(engine.ProcessBatch({Insert(0, Point{0.9, 0.9}),
                                         Insert(1, Point{0.4, 0.4})}));
  const std::uint64_t before = engine.stats().recomputations;
  TOPKMON_ASSERT_OK(engine.ProcessBatch({Delete(1)}));
  EXPECT_EQ(engine.stats().recomputations, before);
}

TEST(UpdateStreamEngineTest, DeleteUnknownIdFails) {
  UpdateStreamTmaEngine engine(SmallOptions(2));
  EXPECT_EQ(engine.ProcessBatch({Delete(42)}).code(),
            StatusCode::kNotFound);
}

TEST(UpdateStreamEngineTest, DuplicateInsertFails) {
  UpdateStreamTmaEngine engine(SmallOptions(2));
  TOPKMON_ASSERT_OK(engine.ProcessBatch({Insert(0, Point{0.5, 0.5})}));
  EXPECT_EQ(engine.ProcessBatch({Insert(0, Point{0.6, 0.6})}).code(),
            StatusCode::kAlreadyExists);
}

TEST(UpdateStreamEngineTest, MatchesOracleOnRandomChurn) {
  const int dim = 2;
  UpdateStreamTmaEngine engine(SmallOptions(dim));
  const auto queries = testing::MakeRandomQueries(dim, 6, 4, 77);
  for (const QuerySpec& q : queries) {
    TOPKMON_ASSERT_OK(engine.RegisterQuery(q));
  }
  UpdateStreamGenerator gen(
      MakeGenerator(Distribution::kIndependent, dim, 3), 0.35, 99);
  RecordPool oracle;
  for (int batch = 0; batch < 40; ++batch) {
    const std::vector<UpdateOp> ops = gen.NextBatch(25, batch);
    TOPKMON_ASSERT_OK(engine.ProcessBatch(ops));
    for (const UpdateOp& op : ops) {
      if (op.kind == UpdateOp::Kind::kInsert) {
        ASSERT_TRUE(oracle.Insert(op.record).ok());
      } else {
        ASSERT_TRUE(oracle.Erase(op.record.id).ok());
      }
    }
    for (const QuerySpec& q : queries) {
      TopKList want(q.k);
      oracle.ForEach([&](const Record& r) {
        want.Consider(r.id, q.function->Score(r.position));
      });
      const auto got = engine.CurrentResult(q.id);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(testing::Scores(*got), testing::Scores(want.entries()))
          << "query " << q.id << " batch " << batch;
    }
  }
}

TEST(UpdateStreamEngineTest, ConstrainedQueryMatchesOracle) {
  const int dim = 2;
  UpdateStreamTmaEngine engine(SmallOptions(dim));
  QuerySpec q = LinearQuery(1, 3, {1.0, 2.0});
  q.constraint = Rect(Point{0.1, 0.2}, Point{0.8, 0.9});
  TOPKMON_ASSERT_OK(engine.RegisterQuery(q));
  UpdateStreamGenerator gen(
      MakeGenerator(Distribution::kIndependent, dim, 31), 0.3, 17);
  RecordPool oracle;
  for (int batch = 0; batch < 30; ++batch) {
    const std::vector<UpdateOp> ops = gen.NextBatch(20, batch);
    TOPKMON_ASSERT_OK(engine.ProcessBatch(ops));
    for (const UpdateOp& op : ops) {
      if (op.kind == UpdateOp::Kind::kInsert) {
        ASSERT_TRUE(oracle.Insert(op.record).ok());
      } else {
        ASSERT_TRUE(oracle.Erase(op.record.id).ok());
      }
    }
    TopKList want(q.k);
    oracle.ForEach([&](const Record& r) {
      if (!q.constraint->Contains(r.position)) return;
      want.Consider(r.id, q.function->Score(r.position));
    });
    const auto got = engine.CurrentResult(q.id);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(testing::Scores(*got), testing::Scores(want.entries()))
        << "batch " << batch;
  }
}

TEST(UpdateStreamEngineTest, UnregisterAndErrors) {
  UpdateStreamTmaEngine engine(SmallOptions(2));
  EXPECT_EQ(engine.UnregisterQuery(1).code(), StatusCode::kNotFound);
  TOPKMON_ASSERT_OK(engine.RegisterQuery(LinearQuery(1, 1, {1.0, 1.0})));
  EXPECT_EQ(engine.RegisterQuery(LinearQuery(1, 1, {1.0, 1.0})).code(),
            StatusCode::kAlreadyExists);
  TOPKMON_ASSERT_OK(engine.UnregisterQuery(1));
  EXPECT_EQ(engine.CurrentResult(1).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace topkmon
