#include "core/topk_compute.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stream/generators.h"
#include "util/rng.h"

namespace topkmon {
namespace {

/// Small indexed dataset: records in a vector, ids are indices.
struct Dataset {
  std::vector<Record> records;
  Grid grid;

  Dataset(int dim, int cells_per_axis, std::size_t n, Distribution dist,
          std::uint64_t seed)
      : grid(dim, cells_per_axis) {
    RecordSource source(MakeGenerator(dist, dim, seed));
    for (std::size_t i = 0; i < n; ++i) {
      records.push_back(source.Next(0));
      grid.InsertPoint(grid.LocateCell(records.back().position),
                       records.back().id, records.back().position);
    }
  }

  std::vector<ResultEntry> BruteTopK(const ScoringFunction& f, int k,
                                     const Rect* constraint) const {
    TopKList top(k);
    for (const Record& r : records) {
      if (constraint != nullptr && !constraint->Contains(r.position)) {
        continue;
      }
      top.Consider(r.id, f.Score(r.position));
    }
    return top.entries();
  }
};

TEST(ComputeTopKTest, MatchesBruteForceOnSmallDataset) {
  Dataset data(2, 8, 500, Distribution::kIndependent, 1);
  LinearFunction f({1.0, 2.0});
  TraversalScratch scratch;
  const TopKComputation out =
      ComputeTopK(data.grid, f, 10, &scratch);
  EXPECT_EQ(out.result, data.BruteTopK(f, 10, nullptr));
}

TEST(ComputeTopKTest, EmptyGridReturnsNothing) {
  Dataset data(2, 8, 0, Distribution::kIndependent, 1);
  LinearFunction f({1.0, 1.0});
  TraversalScratch scratch;
  const TopKComputation out =
      ComputeTopK(data.grid, f, 5, &scratch);
  EXPECT_TRUE(out.result.empty());
  // All cells were processed looking for points.
  EXPECT_EQ(out.processed_cells.size(), data.grid.num_cells());
  EXPECT_TRUE(out.frontier_cells.empty());
}

TEST(ComputeTopKTest, KLargerThanDatasetReturnsEverything) {
  Dataset data(2, 4, 7, Distribution::kIndependent, 2);
  LinearFunction f({1.0, 1.0});
  TraversalScratch scratch;
  const TopKComputation out =
      ComputeTopK(data.grid, f, 50, &scratch);
  EXPECT_EQ(out.result.size(), 7u);
  EXPECT_EQ(out.KthScore(50), -std::numeric_limits<double>::infinity());
}

TEST(ComputeTopKTest, ProcessedCellsAreMinimal) {
  // Section 4.2 optimality: every processed cell except possibly the ones
  // examined while the list was still filling has maxscore > kth score.
  Dataset data(2, 10, 2000, Distribution::kIndependent, 3);
  LinearFunction f({0.7, 0.4});
  TraversalScratch scratch;
  const int k = 5;
  const TopKComputation out =
      ComputeTopK(data.grid, f, k, &scratch);
  const double kth = out.KthScore(k);
  for (CellIndex cell : out.processed_cells) {
    EXPECT_GE(f.MaxScore(data.grid.CellBounds(cell)), kth);
  }
  // And no unprocessed cell could contain a better record: its maxscore is
  // at most the kth score.
  std::vector<bool> processed(data.grid.num_cells(), false);
  for (CellIndex cell : out.processed_cells) processed[cell] = true;
  for (CellIndex cell = 0; cell < data.grid.num_cells(); ++cell) {
    if (!processed[cell]) {
      EXPECT_LE(f.MaxScore(data.grid.CellBounds(cell)), kth + 1e-12);
    }
  }
}

TEST(ComputeTopKTest, FrontierCellsHaveMaxScoreBelowKth) {
  Dataset data(2, 10, 2000, Distribution::kIndependent, 4);
  LinearFunction f({1.0, 2.0});
  TraversalScratch scratch;
  const TopKComputation out =
      ComputeTopK(data.grid, f, 5, &scratch);
  const double kth = out.KthScore(5);
  for (CellIndex cell : out.frontier_cells) {
    EXPECT_LE(f.MaxScore(data.grid.CellBounds(cell)), kth + 1e-12);
  }
}

TEST(ComputeTopKTest, ConstrainedQueryFiltersPoints) {
  Dataset data(2, 10, 2000, Distribution::kIndependent, 5);
  LinearFunction f({1.0, 2.0});
  const Rect constraint(Point{0.2, 0.3}, Point{0.6, 0.7});
  TraversalScratch scratch;
  const TopKComputation out = ComputeTopK(data.grid, f, 8, &scratch, &constraint);
  EXPECT_EQ(out.result, data.BruteTopK(f, 8, &constraint));
  for (const ResultEntry& e : out.result) {
    EXPECT_TRUE(constraint.Contains(
        data.records[static_cast<std::size_t>(e.id)].position));
  }
}

TEST(ComputeTopKTest, NaiveMatchesHeapTraversal) {
  Dataset data(3, 6, 1500, Distribution::kAntiCorrelated, 6);
  ProductFunction f({0.2, 0.5, 0.8});
  TraversalScratch scratch;
  const TopKComputation heap =
      ComputeTopK(data.grid, f, 12, &scratch);
  const TopKComputation naive =
      ComputeTopKNaive(data.grid, f, 12);
  EXPECT_EQ(heap.result, naive.result);
}

// Property sweep: heap computation equals brute force across
// dimensionalities, k values, distributions and function families.
class ComputeTopKProperty
    : public ::testing::TestWithParam<
          std::tuple<int, int, Distribution, FunctionFamily>> {};

TEST_P(ComputeTopKProperty, MatchesBruteForce) {
  const auto [dim, k, dist, family] = GetParam();
  Rng rng(900 + dim * 31 + k);
  auto uniform = [&rng]() { return rng.Uniform(); };
  Dataset data(dim, Grid::CellsPerAxisForBudget(dim, 4096), 800, dist,
               77 + static_cast<std::uint64_t>(dim) * 13);
  TraversalScratch scratch;
  for (int trial = 0; trial < 5; ++trial) {
    auto f = MakeRandomFunction(family, dim, uniform);
    const TopKComputation out =
        ComputeTopK(data.grid, *f, k, &scratch);
    EXPECT_EQ(out.result, data.BruteTopK(*f, k, nullptr));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ComputeTopKProperty,
    ::testing::Combine(
        ::testing::Values(1, 2, 3, 4),
        ::testing::Values(1, 5, 20),
        ::testing::Values(Distribution::kIndependent,
                          Distribution::kAntiCorrelated),
        ::testing::Values(FunctionFamily::kLinear,
                          FunctionFamily::kProduct)));

TEST(ComputeTopKTest, MixedMonotonicityFunctionsWork) {
  Dataset data(2, 8, 1000, Distribution::kIndependent, 8);
  // Figure 7a: f = x1 - x2.
  LinearFunction f({1.0, -1.0});
  TraversalScratch scratch;
  const TopKComputation out =
      ComputeTopK(data.grid, f, 4, &scratch);
  EXPECT_EQ(out.result, data.BruteTopK(f, 4, nullptr));
}

// Constrained property sweep: heap traversal equals brute force for random
// constraint rectangles, including rectangles whose corners lie exactly on
// grid lines (the floating-point seed-correction path).
class ConstrainedComputeProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ConstrainedComputeProperty, MatchesBruteForceUnderConstraints) {
  const auto [dim, k] = GetParam();
  const int cells_per_axis = Grid::CellsPerAxisForBudget(dim, 4096);
  Dataset data(dim, cells_per_axis, 700, Distribution::kIndependent,
               500 + static_cast<std::uint64_t>(dim));
  Rng rng(600 + static_cast<std::uint64_t>(dim) * 7 +
          static_cast<std::uint64_t>(k));
  TraversalScratch scratch;
  auto uniform = [&rng]() { return rng.Uniform(); };
  for (int trial = 0; trial < 12; ++trial) {
    auto f = MakeRandomFunction(FunctionFamily::kLinear, dim, uniform);
    Point lo(dim);
    Point hi(dim);
    for (int i = 0; i < dim; ++i) {
      // Half the corners snap to grid lines to exercise boundary cases.
      double a = rng.UniformInt(2) == 0
                     ? static_cast<double>(rng.UniformInt(
                           static_cast<std::uint64_t>(cells_per_axis) + 1)) /
                           cells_per_axis
                     : rng.Uniform();
      double b = rng.Uniform();
      lo[i] = std::min(a, b);
      hi[i] = std::max(a, b);
    }
    const Rect constraint(lo, hi);
    const TopKComputation heap = ComputeTopK(
        data.grid, *f, k, &scratch, &constraint);
    EXPECT_EQ(heap.result, data.BruteTopK(*f, k, &constraint))
        << "constraint " << constraint.ToString();
    const TopKComputation naive =
        ComputeTopKNaive(data.grid, *f, k, &constraint);
    EXPECT_EQ(heap.result, naive.result);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConstrainedComputeProperty,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(1, 8)));

TEST(ComputeTopKTest, DuplicatePositionsTieCorrectly) {
  Grid grid(2, 4);
  std::vector<Record> records;
  for (RecordId i = 0; i < 6; ++i) {
    records.push_back(Record(i, Point{0.9, 0.9}, 0));
    grid.InsertPoint(grid.LocateCell(records.back().position), i,
                     records.back().position);
  }
  LinearFunction f({1.0, 1.0});
  TraversalScratch scratch;
  const TopKComputation out = ComputeTopK(grid, f, 3, &scratch);
  ASSERT_EQ(out.result.size(), 3u);
  // All scores equal; newest ids win under ResultOrder.
  EXPECT_EQ(out.result[0].id, 5u);
  EXPECT_EQ(out.result[1].id, 4u);
  EXPECT_EQ(out.result[2].id, 3u);
}

}  // namespace
}  // namespace topkmon
