#include "core/threshold_monitor.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "stream/generators.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

ThresholdQuerySpec ThresholdQuery(QueryId id, double tau,
                                  std::vector<double> w) {
  ThresholdQuerySpec spec;
  spec.id = id;
  spec.threshold = tau;
  spec.function = std::make_shared<LinearFunction>(std::move(w));
  return spec;
}

TEST(ThresholdMonitorTest, ValidationErrors) {
  ThresholdMonitor monitor(2, WindowSpec::Count(10));
  ThresholdQuerySpec bad;
  bad.id = 1;
  EXPECT_EQ(monitor.RegisterQuery(bad).code(),
            StatusCode::kInvalidArgument);
  ThresholdQuerySpec wrong_dim = ThresholdQuery(1, 0.5, {1.0, 1.0, 1.0});
  EXPECT_EQ(monitor.RegisterQuery(wrong_dim).code(),
            StatusCode::kInvalidArgument);
  ThresholdQuerySpec nan_tau = ThresholdQuery(1, std::nan(""), {1.0, 1.0});
  EXPECT_EQ(monitor.RegisterQuery(nan_tau).code(),
            StatusCode::kInvalidArgument);
}

TEST(ThresholdMonitorTest, DuplicateAndUnknownIds) {
  ThresholdMonitor monitor(2, WindowSpec::Count(10));
  TOPKMON_ASSERT_OK(monitor.RegisterQuery(ThresholdQuery(1, 0.5, {1, 1})));
  EXPECT_EQ(monitor.RegisterQuery(ThresholdQuery(1, 0.5, {1, 1})).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(monitor.UnregisterQuery(2).code(), StatusCode::kNotFound);
  EXPECT_EQ(monitor.CurrentResult(2).status().code(), StatusCode::kNotFound);
}

TEST(ThresholdMonitorTest, InitialResultCoversExistingRecords) {
  ThresholdMonitor monitor(2, WindowSpec::Count(10));
  TOPKMON_ASSERT_OK(monitor.ProcessCycle(
      1, {Record(0, Point{0.9, 0.9}, 1), Record(1, Point{0.2, 0.2}, 1),
          Record(2, Point{0.6, 0.7}, 1)}));
  TOPKMON_ASSERT_OK(
      monitor.RegisterQuery(ThresholdQuery(1, 1.0, {1.0, 1.0})));
  const auto result = monitor.CurrentResult(1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);  // 1.8 and 1.3 exceed 1.0; 0.4 does not
  EXPECT_EQ((*result)[0].id, 0u);
  EXPECT_EQ((*result)[1].id, 2u);
}

TEST(ThresholdMonitorTest, MaintenanceTracksArrivalsAndExpirations) {
  ThresholdMonitor monitor(2, WindowSpec::Count(2));
  TOPKMON_ASSERT_OK(
      monitor.RegisterQuery(ThresholdQuery(1, 1.0, {1.0, 1.0})));
  TOPKMON_ASSERT_OK(monitor.ProcessCycle(
      1, {Record(0, Point{0.9, 0.9}, 1), Record(1, Point{0.7, 0.8}, 1)}));
  auto result = monitor.CurrentResult(1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
  // Record 0 expires when two more arrive.
  TOPKMON_ASSERT_OK(monitor.ProcessCycle(
      2, {Record(2, Point{0.1, 0.1}, 2), Record(3, Point{0.95, 0.6}, 2)}));
  result = monitor.CurrentResult(1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 3u);  // 1.55 > 1.0; records 0,1 expired
  EXPECT_EQ(monitor.stats().recomputations, 0u);  // never needed
}

TEST(ThresholdMonitorTest, MatchesFullScanOracleOnRandomStream) {
  const int dim = 3;
  ThresholdMonitor monitor(dim, WindowSpec::Count(300), 512);
  RecordSource source(MakeGenerator(Distribution::kIndependent, dim, 5));
  // Thresholds chosen around the upper score range so results stay small.
  std::vector<ThresholdQuerySpec> specs;
  specs.push_back(ThresholdQuery(1, 2.2, {1.0, 1.0, 1.0}));
  specs.push_back(ThresholdQuery(2, 1.2, {0.5, 0.9, 0.2}));
  specs.push_back(ThresholdQuery(3, 0.95, {0.1, 0.2, 0.9}));
  Timestamp now = 1;
  TOPKMON_ASSERT_OK(monitor.ProcessCycle(now, source.NextBatch(300, now)));
  for (const auto& s : specs) TOPKMON_ASSERT_OK(monitor.RegisterQuery(s));
  // Shadow window for the oracle.
  SlidingWindow shadow = SlidingWindow::CountBased(300);
  {
    RecordSource shadow_source(
        MakeGenerator(Distribution::kIndependent, dim, 5));
    for (const Record& r : shadow_source.NextBatch(300, 1)) {
      ASSERT_TRUE(shadow.Append(r).ok());
    }
    shadow.EvictExpired(1);
  }
  RecordSource shadow_source(
      MakeGenerator(Distribution::kIndependent, dim, 5));
  shadow_source.NextBatch(300, 1);  // skip what the monitor already saw
  for (int cycle = 0; cycle < 30; ++cycle) {
    ++now;
    const std::vector<Record> batch = shadow_source.NextBatch(25, now);
    TOPKMON_ASSERT_OK(monitor.ProcessCycle(now, batch));
    for (const Record& r : batch) ASSERT_TRUE(shadow.Append(r).ok());
    shadow.EvictExpired(now);
    for (const auto& spec : specs) {
      std::vector<double> oracle;
      for (const Record& r : shadow) {
        const double score = spec.function->Score(r.position);
        if (score > spec.threshold) oracle.push_back(score);
      }
      std::sort(oracle.rbegin(), oracle.rend());
      const auto got = monitor.CurrentResult(spec.id);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(testing::Scores(*got), oracle)
          << "query " << spec.id << " cycle " << cycle;
    }
  }
}

TEST(ThresholdMonitorTest, UnregisterStopsMaintenance) {
  ThresholdMonitor monitor(2, WindowSpec::Count(10));
  TOPKMON_ASSERT_OK(
      monitor.RegisterQuery(ThresholdQuery(1, 0.5, {1.0, 1.0})));
  TOPKMON_ASSERT_OK(monitor.UnregisterQuery(1));
  // Arrivals after unregistration must not crash on stale influence
  // entries.
  TOPKMON_ASSERT_OK(
      monitor.ProcessCycle(1, {Record(0, Point{0.9, 0.9}, 1)}));
  EXPECT_EQ(monitor.CurrentResult(1).status().code(), StatusCode::kNotFound);
}

TEST(ThresholdMonitorTest, VeryHighThresholdYieldsEmptyResult) {
  ThresholdMonitor monitor(2, WindowSpec::Count(10));
  TOPKMON_ASSERT_OK(monitor.ProcessCycle(
      1, {Record(0, Point{0.9, 0.9}, 1)}));
  TOPKMON_ASSERT_OK(
      monitor.RegisterQuery(ThresholdQuery(1, 5.0, {1.0, 1.0})));
  const auto result = monitor.CurrentResult(1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(monitor.stats().cells_visited, 0u);  // no cell beats tau=5
}

}  // namespace
}  // namespace topkmon
