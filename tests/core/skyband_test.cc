#include "core/skyband.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace topkmon {
namespace {

std::vector<RecordId> Ids(const Skyband& s) {
  std::vector<RecordId> out;
  for (const SkybandEntry& e : s.entries()) out.push_back(e.id);
  return out;
}

TEST(SkybandTest, RebuildFromResultComputesDominanceCounters) {
  // Figure 2(b)-style setup: entries in ResultOrder (desc score); arrival
  // (= expiry) order is the id. For each entry, DC = higher-scoring
  // records that arrive later.
  Skyband s(3);
  s.Rebuild({{5, 0.9}, {7, 0.8}, {2, 0.7}, {9, 0.6}});
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.entries()[0].dominance, 0);  // id 5, score .9: none above
  EXPECT_EQ(s.entries()[1].dominance, 0);  // id 7: id 5 is above but older
  EXPECT_EQ(s.entries()[2].dominance, 2);  // id 2: ids 5 and 7 later+higher
  EXPECT_EQ(s.entries()[3].dominance, 0);  // id 9: nothing above is newer
}

TEST(SkybandTest, InsertIncrementsLowerScoredCounters) {
  Skyband s(2);
  s.Rebuild({{1, 0.9}, {2, 0.5}});
  // New arrival (id 3) with middle score dominates entry 2 only.
  s.Insert(3, 0.7);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(Ids(s), (std::vector<RecordId>{1, 3, 2}));
  EXPECT_EQ(s.entries()[2].dominance, 1);
}

TEST(SkybandTest, InsertEvictsAtDominanceK) {
  // Figure 10's pattern: a high-scoring, latest-expiring arrival bumps the
  // dominance counter of everything below it; entries reaching DC = k
  // leave the 2-skyband.
  Skyband s(2);
  s.Rebuild({{10, 0.9}, {6, 0.6}, {8, 0.5}, {12, 0.3}});
  EXPECT_EQ(s.entries()[0].dominance, 0);  // id 10: top score
  EXPECT_EQ(s.entries()[1].dominance, 1);  // id 6: dominated by 10
  EXPECT_EQ(s.entries()[2].dominance, 1);  // id 8: dominated by 10
  EXPECT_EQ(s.entries()[3].dominance, 0);  // id 12: newest, higher ones older
  // Arrival id 13 with score 0.8 dominates ids 6, 8 (reaching DC=2,
  // evicted) and id 12 (DC=1).
  const std::size_t evicted = s.Insert(13, 0.8);
  EXPECT_EQ(evicted, 2u);
  EXPECT_EQ(Ids(s), (std::vector<RecordId>{10, 13, 12}));
  EXPECT_EQ(s.entries()[2].dominance, 1);  // id 12
}

TEST(SkybandTest, RemoveOnlyTouchesMatchingEntry) {
  Skyband s(2);
  s.Rebuild({{4, 0.9}, {6, 0.5}});
  EXPECT_TRUE(s.Remove(4));
  EXPECT_FALSE(s.Remove(4));
  EXPECT_FALSE(s.Remove(99));
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.entries()[0].id, 6u);
  EXPECT_EQ(s.entries()[0].dominance, 0);  // unchanged by removal
}

TEST(SkybandTest, TopKIsPrefix) {
  Skyband s(2);
  s.Rebuild({{1, 0.9}});
  s.Insert(2, 0.8);
  s.Insert(3, 0.7);
  const std::vector<ResultEntry> top = s.TopK();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 1u);
  EXPECT_EQ(top[1].id, 2u);
}

TEST(SkybandTest, TopKWithFewerThanKEntries) {
  Skyband s(5);
  s.Insert(1, 0.5);
  EXPECT_EQ(s.TopK().size(), 1u);
}

TEST(SkybandTest, ContainsFindsById) {
  Skyband s(2);
  s.Insert(3, 0.5);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(4));
}

TEST(SkybandTest, EqualScoresNewerDominatesOlder) {
  Skyband s(1);
  s.Insert(1, 0.5);
  // Same score, newer arrival: under the paper's <= rule the old entry is
  // dominated and (k=1) evicted.
  const std::size_t evicted = s.Insert(2, 0.5);
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(Ids(s), std::vector<RecordId>{2});
}

TEST(BruteForceSkybandTest, MatchesDefinition) {
  // Points: (id=expiry, score).
  const std::vector<ResultEntry> pts = {
      {1, 0.9}, {2, 0.3}, {3, 0.5}, {4, 0.4}};
  // Dominators (higher score, later expiry): id 2 is dominated by ids 3
  // and 4; ids 1, 3, 4 are undominated (id 1 has the top score; nothing
  // newer than 3 or 4 scores higher).
  const std::vector<RecordId> sky1 = BruteForceSkyband(pts, 1);
  EXPECT_EQ(sky1, (std::vector<RecordId>{1, 3, 4}));
  // id 2 has exactly two dominators, so it joins the 3-skyband but not
  // the 2-skyband.
  const std::vector<RecordId> sky2 = BruteForceSkyband(pts, 2);
  EXPECT_EQ(sky2, (std::vector<RecordId>{1, 3, 4}));
  const std::vector<RecordId> sky3 = BruteForceSkyband(pts, 3);
  EXPECT_EQ(sky3, (std::vector<RecordId>{1, 2, 3, 4}));
}

// Differential test: maintaining a Skyband over a random arrival stream
// (all arrivals admitted, threshold -inf) matches the brute-force
// k-skyband of the live set at every step — restricted to the entries the
// incremental structure is required to keep (it may evict dominated ones
// early, but the first-k prefix must always match the true top-k).
TEST(SkybandTest, IncrementalTopKMatchesBruteForceUnderArrivals) {
  Rng rng(17);
  for (int k : {1, 2, 3, 5}) {
    Skyband s(k);
    std::vector<ResultEntry> live;
    for (RecordId id = 1; id <= 300; ++id) {
      const double score = rng.Uniform();
      s.Insert(id, score);
      live.push_back({id, score});
      // True top-k of the live set:
      std::vector<ResultEntry> sorted = live;
      std::sort(sorted.begin(), sorted.end(), ResultOrder);
      sorted.resize(std::min<std::size_t>(sorted.size(), k));
      const std::vector<ResultEntry> got = s.TopK();
      ASSERT_EQ(got, sorted) << "k=" << k << " id=" << id;
      // Skyband must contain every brute-force k-skyband member... the
      // incremental skyband equals it exactly:
      const std::vector<RecordId> oracle = BruteForceSkyband(live, k);
      // (Oracle over the full arrival history: expired nothing yet.)
      std::vector<RecordId> have = Ids(s);
      std::sort(have.begin(), have.end());
      std::vector<RecordId> want = oracle;
      std::sort(want.begin(), want.end());
      ASSERT_EQ(have, want) << "k=" << k << " id=" << id;
    }
  }
}

// Expiry side: popping the earliest-arrival entries in order yields the
// successive future top-k results (Figure 2: the skyband contains exactly
// the records that appear in some result).
TEST(SkybandTest, ExpiryReplaysFutureResults) {
  Rng rng(23);
  const int k = 3;
  Skyband s(k);
  std::vector<ResultEntry> live;
  for (RecordId id = 1; id <= 100; ++id) {
    const double score = rng.Uniform();
    s.Insert(id, score);
    live.push_back({id, score});
  }
  // No more arrivals: expire records one at a time (FIFO by id).
  for (RecordId expired = 1; expired <= 100; ++expired) {
    // Remove the expired record from both structures.
    s.Remove(expired);
    live.erase(std::remove_if(live.begin(), live.end(),
                              [expired](const ResultEntry& e) {
                                return e.id == expired;
                              }),
               live.end());
    std::vector<ResultEntry> sorted = live;
    std::sort(sorted.begin(), sorted.end(), ResultOrder);
    sorted.resize(std::min<std::size_t>(sorted.size(), k));
    ASSERT_EQ(s.TopK(), sorted) << "after expiry of " << expired;
  }
  EXPECT_EQ(s.size(), 0u);
}

}  // namespace
}  // namespace topkmon
