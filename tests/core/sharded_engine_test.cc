#include "core/sharded_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "core/brute_force_engine.h"
#include "core/sma_engine.h"
#include "core/tma_engine.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

using ::topkmon::testing::MakeRandomQueries;

EngineFactory SmaFactory(int dim, std::size_t window) {
  return [dim, window] {
    GridEngineOptions opt;
    opt.dim = dim;
    opt.window = WindowSpec::Count(window);
    opt.cell_budget = 256;
    return std::unique_ptr<MonitorEngine>(new SmaEngine(opt));
  };
}

TEST(ShardedEngineTest, NameMentionsShardsAndInnerEngine) {
  ShardedEngine engine(3, SmaFactory(2, 100));
  EXPECT_EQ(engine.name(), "SHARDED[3xSMA]");
  EXPECT_EQ(engine.num_shards(), 3);
  EXPECT_EQ(engine.dim(), 2);
}

TEST(ShardedEngineTest, MatchesBruteForceAcrossShardCounts) {
  const int dim = 2;
  for (int shards : {1, 2, 4}) {
    ShardedEngine sharded(shards, SmaFactory(dim, 400));
    BruteForceEngine brute(dim, WindowSpec::Count(400));
    const auto queries = MakeRandomQueries(dim, 9, 5, 42);
    testing::RunLockstepAgreement({&brute, &sharded}, queries,
                                  Distribution::kIndependent, dim, 40, 10,
                                  20, 7);
  }
}

TEST(ShardedEngineTest, QueriesAreSpreadRoundRobin) {
  ShardedEngine engine(4, SmaFactory(2, 100));
  const auto queries = MakeRandomQueries(2, 8, 3, 5);
  for (const QuerySpec& q : queries) {
    TOPKMON_ASSERT_OK(engine.RegisterQuery(q));
  }
  // All queries answer; per-shard distribution is not directly observable
  // through the interface, but unregistering all of them must succeed.
  for (const QuerySpec& q : queries) {
    ASSERT_TRUE(engine.CurrentResult(q.id).ok());
    TOPKMON_ASSERT_OK(engine.UnregisterQuery(q.id));
  }
}

TEST(ShardedEngineTest, DuplicateAndUnknownQueryErrors) {
  ShardedEngine engine(2, SmaFactory(2, 100));
  const auto queries = MakeRandomQueries(2, 1, 3, 5);
  TOPKMON_ASSERT_OK(engine.RegisterQuery(queries[0]));
  EXPECT_EQ(engine.RegisterQuery(queries[0]).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(engine.UnregisterQuery(99).code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.CurrentResult(99).status().code(), StatusCode::kNotFound);
}

TEST(ShardedEngineTest, PropagatesCycleErrors) {
  ShardedEngine engine(2, SmaFactory(2, 100));
  const Status st =
      engine.ProcessCycle(1, {Record(0, Point{2.0, 0.5}, 1)});
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST(ShardedEngineTest, StatsReportLogicalStreamCounters) {
  ShardedEngine engine(3, SmaFactory(2, 50));
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 3));
  TOPKMON_ASSERT_OK(engine.ProcessCycle(1, source.NextBatch(80, 1)));
  // Stream counters must not be multiplied by the shard count.
  EXPECT_EQ(engine.stats().arrivals, 80u);
  EXPECT_EQ(engine.stats().expirations, 30u);
  EXPECT_EQ(engine.stats().cycles, 1u);
  EXPECT_EQ(engine.WindowSize(), 50u);
}

TEST(ShardedEngineTest, MemoryGrowsWithShardCount) {
  auto fill = [](ShardedEngine& e) {
    RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 3));
    TOPKMON_ASSERT_OK(e.ProcessCycle(1, source.NextBatch(100, 1)));
  };
  ShardedEngine one(1, SmaFactory(2, 100));
  ShardedEngine four(4, SmaFactory(2, 100));
  fill(one);
  fill(four);
  EXPECT_GT(four.Memory().TotalBytes(), 3 * one.Memory().TotalBytes());
}

TEST(ShardedEngineTest, DeltaCallbacksAreSerializedAndComplete) {
  ShardedEngine engine(4, SmaFactory(2, 200));
  std::set<QueryId> reported;
  std::atomic<int> concurrent{0};
  bool overlapped = false;
  engine.SetDeltaCallback([&](const ResultDelta& d) {
    if (concurrent.fetch_add(1) != 0) overlapped = true;
    reported.insert(d.query);
    concurrent.fetch_sub(1);
  });
  const auto queries = MakeRandomQueries(2, 8, 3, 11);
  for (const QuerySpec& q : queries) {
    TOPKMON_ASSERT_OK(engine.RegisterQuery(q));
  }
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 13));
  for (Timestamp now = 1; now <= 10; ++now) {
    TOPKMON_ASSERT_OK(engine.ProcessCycle(now, source.NextBatch(50, now)));
  }
  EXPECT_FALSE(overlapped) << "delta callbacks ran concurrently";
  EXPECT_EQ(reported.size(), queries.size());
}

TEST(ShardedEngineTest, ShutdownKeepsIdentityAndReadsValid) {
  ShardedEngine engine(3, SmaFactory(2, 100));
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 3));
  const auto queries = MakeRandomQueries(2, 2, 3, 5);
  for (const QuerySpec& q : queries) {
    TOPKMON_ASSERT_OK(engine.RegisterQuery(q));
  }
  TOPKMON_ASSERT_OK(engine.ProcessCycle(1, source.NextBatch(50, 1)));
  engine.Shutdown();
  engine.Shutdown();  // idempotent
  // Identity and the read side survive shutdown...
  EXPECT_EQ(engine.name(), "SHARDED[3xSMA]");
  EXPECT_EQ(engine.dim(), 2);
  EXPECT_EQ(engine.num_shards(), 3);
  EXPECT_TRUE(engine.CurrentResult(queries[0].id).ok());
  EXPECT_EQ(engine.stats().cycles, 1u);
  // ...but cycles need the worker pool.
  EXPECT_EQ(engine.ProcessCycle(2, source.NextBatch(10, 2)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ShardedEngineTest, InitialResultDeltaIsRoutedOnRegistration) {
  ShardedEngine engine(3, SmaFactory(2, 200));
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 3));
  TOPKMON_ASSERT_OK(engine.ProcessCycle(1, source.NextBatch(100, 1)));
  std::vector<ResultDelta> deltas;
  engine.SetDeltaCallback(
      [&deltas](const ResultDelta& d) { deltas.push_back(d); });
  // Registering mid-stream must report the initial result as one delta.
  const auto queries = MakeRandomQueries(2, 1, 4, 5);
  TOPKMON_ASSERT_OK(engine.RegisterQuery(queries[0]));
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].query, queries[0].id);
  EXPECT_EQ(deltas[0].added.size(), 4u);
  EXPECT_TRUE(deltas[0].removed.empty());
}

TEST(ShardedEngineTest, MidStreamChurnStaysExact) {
  const int dim = 2;
  ShardedEngine sharded(3, SmaFactory(dim, 300));
  BruteForceEngine brute(dim, WindowSpec::Count(300));
  RecordSource source(MakeGenerator(Distribution::kIndependent, dim, 17));
  const auto queries = MakeRandomQueries(dim, 6, 4, 23);
  Timestamp now = 0;
  auto cycle = [&](std::size_t n) {
    ++now;
    const auto batch = source.NextBatch(n, now);
    TOPKMON_ASSERT_OK(sharded.ProcessCycle(now, batch));
    TOPKMON_ASSERT_OK(brute.ProcessCycle(now, batch));
  };
  for (int c = 0; c < 8; ++c) cycle(40);
  for (const QuerySpec& q : queries) {
    TOPKMON_ASSERT_OK(sharded.RegisterQuery(q));
    TOPKMON_ASSERT_OK(brute.RegisterQuery(q));
  }
  for (int c = 0; c < 10; ++c) {
    cycle(40);
    for (const QuerySpec& q : queries) {
      const auto want = brute.CurrentResult(q.id);
      const auto got = sharded.CurrentResult(q.id);
      ASSERT_TRUE(want.ok());
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(testing::Scores(*got), testing::Scores(*want));
    }
  }
  TOPKMON_ASSERT_OK(sharded.UnregisterQuery(queries[0].id));
  TOPKMON_ASSERT_OK(brute.UnregisterQuery(queries[0].id));
  for (int c = 0; c < 5; ++c) cycle(40);
  EXPECT_EQ(sharded.CurrentResult(queries[0].id).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace topkmon
