#include "core/sma_engine.h"

#include <gtest/gtest.h>

#include "core/brute_force_engine.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

using ::topkmon::testing::MakeRandomQueries;

GridEngineOptions SmallOptions(int dim, std::size_t n) {
  GridEngineOptions opt;
  opt.dim = dim;
  opt.window = WindowSpec::Count(n);
  opt.cell_budget = 256;
  return opt;
}

QuerySpec LinearQuery(QueryId id, int k, std::vector<double> w) {
  QuerySpec spec;
  spec.id = id;
  spec.k = k;
  spec.function = std::make_shared<LinearFunction>(std::move(w));
  return spec;
}

TEST(SmaEngineTest, NameAndDim) {
  SmaEngine engine(SmallOptions(4, 100));
  EXPECT_EQ(engine.name(), "SMA");
  EXPECT_EQ(engine.dim(), 4);
}

TEST(SmaEngineTest, RegisterDuplicateFails) {
  SmaEngine engine(SmallOptions(2, 100));
  TOPKMON_ASSERT_OK(engine.RegisterQuery(LinearQuery(1, 2, {1.0, 1.0})));
  EXPECT_EQ(engine.RegisterQuery(LinearQuery(1, 2, {1.0, 1.0})).code(),
            StatusCode::kAlreadyExists);
}

TEST(SmaEngineTest, SkybandAvoidsRecomputationOnExpiry) {
  // SMA's signature behavior (Figure 8(b) discussion): when the top record
  // expires, the next result is already in the skyband — no from-scratch
  // computation.
  GridEngineOptions opt = SmallOptions(2, 2);
  opt.cells_per_axis = 7;
  opt.cell_budget = 0;
  SmaEngine engine(opt);
  TOPKMON_ASSERT_OK(engine.ProcessCycle(
      1, {Record(0, Point{0.65, 0.85}, 1), Record(1, Point{0.15, 0.90}, 1)}));
  TOPKMON_ASSERT_OK(engine.RegisterQuery(LinearQuery(1, 1, {1.0, 2.0})));
  // Arrivals above the threshold enter the skyband even though they do not
  // (yet) win.
  TOPKMON_ASSERT_OK(engine.ProcessCycle(
      2, {Record(2, Point{0.75, 0.85}, 2), Record(3, Point{0.90, 0.74}, 2)}));
  // Window now holds {2, 3}: top is p2 (2.45); p3 (2.38) waits in the
  // skyband. p2 expires next cycle; SMA must answer p3 without recompute.
  auto result = engine.CurrentResult(1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0].id, 2u);
  TOPKMON_ASSERT_OK(
      engine.ProcessCycle(3, {Record(4, Point{0.05, 0.05}, 3)}));
  result = engine.CurrentResult(1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 3u);
  EXPECT_EQ(engine.stats().recomputations, 0u);
  EXPECT_GT(engine.stats().skyband_insertions, 0u);
}

TEST(SmaEngineTest, MatchesBruteForceOnRandomStream) {
  const int dim = 2;
  GridEngineOptions opt = SmallOptions(dim, 500);
  SmaEngine sma(opt);
  BruteForceEngine brute(dim, opt.window);
  const auto queries = MakeRandomQueries(dim, 8, 5, 42);
  testing::RunLockstepAgreement({&brute, &sma}, queries,
                                Distribution::kIndependent, dim, 50, 12, 30,
                                7);
}

TEST(SmaEngineTest, MatchesBruteForceOnAntiCorrelatedStream) {
  const int dim = 3;
  GridEngineOptions opt = SmallOptions(dim, 400);
  opt.cell_budget = 512;
  SmaEngine sma(opt);
  BruteForceEngine brute(dim, opt.window);
  const auto queries = MakeRandomQueries(dim, 6, 10, 13);
  testing::RunLockstepAgreement({&brute, &sma}, queries,
                                Distribution::kAntiCorrelated, dim, 40, 12,
                                25, 19);
}

TEST(SmaEngineTest, ConstrainedQueryMatchesBruteForce) {
  const int dim = 2;
  GridEngineOptions opt = SmallOptions(dim, 400);
  SmaEngine sma(opt);
  BruteForceEngine brute(dim, opt.window);
  QuerySpec q = LinearQuery(1, 4, {1.0, 2.0});
  q.constraint = Rect(Point{0.2, 0.1}, Point{0.7, 0.8});
  testing::RunLockstepAgreement({&brute, &sma}, {q},
                                Distribution::kIndependent, dim, 40, 12, 25,
                                11);
}

TEST(SmaEngineTest, TimeBasedWindowMatchesBruteForce) {
  const int dim = 2;
  GridEngineOptions opt = SmallOptions(dim, 0);
  opt.window = WindowSpec::Time(8);
  SmaEngine sma(opt);
  BruteForceEngine brute(dim, opt.window);
  const auto queries = MakeRandomQueries(dim, 5, 3, 21);
  testing::RunLockstepAgreement({&brute, &sma}, queries,
                                Distribution::kIndependent, dim, 30, 10, 25,
                                23);
}

TEST(SmaEngineTest, UnregisterClearsInfluence) {
  GridEngineOptions opt = SmallOptions(2, 200);
  SmaEngine engine(opt);
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 3));
  TOPKMON_ASSERT_OK(engine.ProcessCycle(1, source.NextBatch(200, 1)));
  TOPKMON_ASSERT_OK(engine.RegisterQuery(LinearQuery(1, 5, {1.0, 0.5})));
  EXPECT_GT(engine.grid().TotalInfluenceEntries(), 0u);
  TOPKMON_ASSERT_OK(engine.UnregisterQuery(1));
  EXPECT_EQ(engine.grid().TotalInfluenceEntries(), 0u);
}

TEST(SmaEngineTest, AverageSkybandSizeAtLeastK) {
  GridEngineOptions opt = SmallOptions(2, 300);
  SmaEngine engine(opt);
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 5));
  Timestamp now = 1;
  TOPKMON_ASSERT_OK(engine.ProcessCycle(now, source.NextBatch(300, now)));
  const int k = 5;
  for (const QuerySpec& q : MakeRandomQueries(2, 4, k, 31)) {
    TOPKMON_ASSERT_OK(engine.RegisterQuery(q));
  }
  for (int c = 0; c < 20; ++c) {
    ++now;
    TOPKMON_ASSERT_OK(engine.ProcessCycle(now, source.NextBatch(30, now)));
  }
  // Section 6 / Table 2: the skyband holds the k results plus few extras.
  EXPECT_GE(engine.AverageSkybandSize(), static_cast<double>(k));
  EXPECT_LT(engine.AverageSkybandSize(), 3.0 * k);
}

TEST(SmaEngineTest, MemoryExceedsNothingButIsTracked) {
  GridEngineOptions opt = SmallOptions(2, 100);
  SmaEngine engine(opt);
  TOPKMON_ASSERT_OK(engine.RegisterQuery(LinearQuery(1, 5, {1.0, 0.5})));
  EXPECT_GT(engine.Memory().TotalBytes(), 0u);
}

}  // namespace
}  // namespace topkmon
