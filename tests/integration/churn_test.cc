// Chaos test: random interleaving of query registration, termination,
// empty cycles, bursty cycles and constraint churn across all engines,
// checked against the brute-force oracle after every step.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/brute_force_engine.h"
#include "core/sma_engine.h"
#include "core/tma_engine.h"
#include "tests/test_util.h"
#include "tsl/tsl_engine.h"
#include "util/rng.h"

namespace topkmon {
namespace {

class ChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnTest, EnginesStayExactUnderRandomOperations) {
  const std::uint64_t seed = GetParam();
  const int dim = 3;
  const WindowSpec window = WindowSpec::Count(300);
  GridEngineOptions grid_opt;
  grid_opt.dim = dim;
  grid_opt.window = window;
  grid_opt.cell_budget = 343;
  TslOptions tsl_opt;
  tsl_opt.dim = dim;
  tsl_opt.window = window;

  BruteForceEngine brute(dim, window);
  TmaEngine tma(grid_opt);
  SmaEngine sma(grid_opt);
  TslEngine tsl(tsl_opt);
  // TSL does not support constrained queries; it participates only in the
  // unconstrained ones.
  std::vector<MonitorEngine*> grid_engines = {&brute, &tma, &sma};

  Rng rng(seed);
  RecordSource source(MakeGenerator(Distribution::kIndependent, dim, seed));
  Timestamp now = 0;
  QueryId next_query = 1;
  std::set<QueryId> live_constrained;
  std::set<QueryId> live_unconstrained;

  auto make_query = [&](bool constrained) {
    QuerySpec q;
    q.id = next_query++;
    q.k = 1 + static_cast<int>(rng.UniformInt(10));
    std::vector<double> w(dim);
    for (double& x : w) x = rng.Uniform();
    q.function = std::make_shared<LinearFunction>(std::move(w));
    if (constrained) {
      Point lo(dim);
      Point hi(dim);
      for (int i = 0; i < dim; ++i) {
        const double a = rng.Uniform();
        const double b = rng.Uniform();
        lo[i] = std::min(a, b);
        hi[i] = std::max(a, b);
      }
      q.constraint = Rect(lo, hi);
    }
    return q;
  };

  auto check_all = [&]() {
    for (QueryId id : live_unconstrained) {
      const auto want = brute.CurrentResult(id);
      ASSERT_TRUE(want.ok());
      for (MonitorEngine* e :
           std::vector<MonitorEngine*>{&tma, &sma, &tsl}) {
        const auto got = e->CurrentResult(id);
        ASSERT_TRUE(got.ok()) << e->name();
        ASSERT_EQ(testing::Scores(*got), testing::Scores(*want))
            << e->name() << " query " << id << " t=" << now;
      }
    }
    for (QueryId id : live_constrained) {
      const auto want = brute.CurrentResult(id);
      ASSERT_TRUE(want.ok());
      for (MonitorEngine* e : std::vector<MonitorEngine*>{&tma, &sma}) {
        const auto got = e->CurrentResult(id);
        ASSERT_TRUE(got.ok()) << e->name();
        ASSERT_EQ(testing::Scores(*got), testing::Scores(*want))
            << e->name() << " constrained query " << id << " t=" << now;
      }
    }
  };

  for (int step = 0; step < 120; ++step) {
    const int action = static_cast<int>(rng.UniformInt(10));
    if (action < 5) {
      // Normal cycle with a random burst size (possibly 0).
      ++now;
      const std::size_t burst = rng.UniformInt(60);
      const std::vector<Record> batch = source.NextBatch(burst, now);
      for (MonitorEngine* e : grid_engines) {
        TOPKMON_ASSERT_OK(e->ProcessCycle(now, batch));
      }
      TOPKMON_ASSERT_OK(tsl.ProcessCycle(now, batch));
    } else if (action < 7) {
      // Register a new unconstrained query on all engines.
      const QuerySpec q = make_query(false);
      for (MonitorEngine* e : grid_engines) {
        TOPKMON_ASSERT_OK(e->RegisterQuery(q));
      }
      TOPKMON_ASSERT_OK(tsl.RegisterQuery(q));
      live_unconstrained.insert(q.id);
    } else if (action < 8) {
      // Register a constrained query (grid engines only).
      const QuerySpec q = make_query(true);
      for (MonitorEngine* e : grid_engines) {
        TOPKMON_ASSERT_OK(e->RegisterQuery(q));
      }
      live_constrained.insert(q.id);
    } else {
      // Terminate a random live query, if any.
      if (!live_unconstrained.empty() &&
          (live_constrained.empty() || rng.UniformInt(2) == 0)) {
        const QueryId id = *live_unconstrained.begin();
        for (MonitorEngine* e : grid_engines) {
          TOPKMON_ASSERT_OK(e->UnregisterQuery(id));
        }
        TOPKMON_ASSERT_OK(tsl.UnregisterQuery(id));
        live_unconstrained.erase(id);
      } else if (!live_constrained.empty()) {
        const QueryId id = *live_constrained.begin();
        for (MonitorEngine* e : grid_engines) {
          TOPKMON_ASSERT_OK(e->UnregisterQuery(id));
        }
        live_constrained.erase(id);
      }
    }
    check_all();
  }
  // Influence lists must be fully reclaimed after terminating everything.
  for (QueryId id : live_unconstrained) {
    for (MonitorEngine* e : grid_engines) {
      TOPKMON_ASSERT_OK(e->UnregisterQuery(id));
    }
  }
  for (QueryId id : live_constrained) {
    for (MonitorEngine* e : grid_engines) {
      TOPKMON_ASSERT_OK(e->UnregisterQuery(id));
    }
  }
  EXPECT_EQ(tma.grid().TotalInfluenceEntries(), 0u);
  EXPECT_EQ(sma.grid().TotalInfluenceEntries(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace topkmon
