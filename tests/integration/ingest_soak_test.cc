// Arena soak: sustained full-rate wire ingest through a LocalCluster
// with the admin plane scraped throughout, pinning the zero-copy hot
// path's memory contract — after a warm-up third, the record arenas
// stop growing. Every chunk the steady state needs is allocated while
// the queues first saturate; from then on decode/admit/drain/commit must
// run entirely on recycled storage, and the `topkmon_arena_peak_bytes`
// gauge (a lifetime high-water mark, monotone by construction) is the
// witness: its value at the end of warm-up must equal its value after
// the soak. A leak, an unreleased view, or a reclamation bug shows up
// as a higher final peak; no sampling race can hide it.
//
// Mid-run, a ReplicaFollower attaches to partition 0 and performs a
// full resync (bootstrap from the leader's oldest segment + live tail
// chase) while the firehose is on — the shipper serves journal bytes
// from the same poll loops that decode ingest frames, so the resync
// must neither stall the hot path nor perturb the arena plateau.
//
// Runtime scales with TOPKMON_SOAK_SECONDS (default 3 so the tier-1
// suite stays fast; the nightly/acceptance soak sets 60).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/local_cluster.h"
#include "core/tma_engine.h"
#include "net/client.h"
#include "replica/follower.h"
#include "stream/generators.h"
#include "tests/journal/journal_test_util.h"
#include "tests/net/net_test_util.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

using ::topkmon::testing::MakeRandomQueries;
using ::topkmon::testing::ScopedTempDir;

constexpr int kDim = 2;
constexpr std::size_t kPartitions = 2;
constexpr std::size_t kWireBatch = 256;

double SoakSeconds() {
  const char* env = std::getenv("TOPKMON_SOAK_SECONDS");
  if (env != nullptr && *env != '\0') {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 3.0;
}

std::unique_ptr<MonitorEngine> MakeEngine() {
  GridEngineOptions opt;
  opt.dim = kDim;
  opt.window = WindowSpec::Count(2000);
  return std::make_unique<TmaEngine>(opt);
}

/// Minimal blocking HTTP/1.0 GET against the admin port; empty string on
/// any socket failure (the caller asserts on content).
std::string HttpGet(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string out;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

/// The value of an unlabelled gauge/counter line in a /metrics scrape;
/// -1.0 when the metric is absent.
double MetricValue(const std::string& scrape, const std::string& name) {
  std::istringstream lines(scrape);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind(name + " ", 0) == 0) {
      return std::atof(line.c_str() + name.size() + 1);
    }
  }
  return -1.0;
}

TEST(IngestSoakTest, ArenaStopsGrowingAfterWarmup) {
  const double total_seconds = SoakSeconds();
  const double warmup_seconds = total_seconds / 3.0;

  ScopedTempDir journal_root;
  LocalClusterOptions options;
  options.partitions = kPartitions;
  options.engine_factory = MakeEngine;
  options.service.ingest.slack = 2;
  // Small enough that full-rate producers saturate the queue (and with
  // it the arena's steady-state chunk count) well inside warm-up.
  options.service.ingest.capacity = 4096;
  options.service.ingest.max_batch = 2048;
  options.service.drain_wait = std::chrono::milliseconds(2);
  options.service.hub.buffer_capacity = 1 << 14;
  options.service.journal.dir = journal_root.path();
  options.service.journal.segment_bytes = 256 << 10;
  options.service.admin.enabled = true;
  options.net = testing::TestServerOptions();
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  for (std::size_t p = 0; p < kPartitions; ++p) {
    ASSERT_NE((*cluster)->admin_port(p), 0) << "partition " << p;
  }

  // A few standing queries per partition so every cycle does real grid
  // work while the arena churns underneath it.
  const auto specs = MakeRandomQueries(kDim, 3, 5, 42);
  for (std::size_t p = 0; p < kPartitions; ++p) {
    auto admin = MonitorClient::Connect(
        "127.0.0.1", (*cluster)->map().endpoint(p).port,
        "soak-admin-" + std::to_string(p), /*resume=*/false);
    ASSERT_TRUE(admin.ok()) << admin.status();
    const auto outcomes = (*admin)->RegisterBatch(specs);
    ASSERT_TRUE(outcomes.ok()) << outcomes.status();
    for (const auto& outcome : *outcomes) {
      ASSERT_EQ(outcome.code, StatusCode::kOk);
    }
    TOPKMON_ASSERT_OK((*admin)->Close(/*close_session=*/false));
  }

  // One unthrottled wire producer per partition: batches of kWireBatch
  // records, backing off only on the server's explicit backpressure
  // hint (rejected records are load-shed, which is the soak's point —
  // the queue must stay pinned at capacity).
  std::atomic<bool> done{false};
  std::vector<std::uint64_t> accepted(kPartitions, 0);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kPartitions; ++p) {
    producers.emplace_back([&, p] {
      auto client = MonitorClient::Connect(
          "127.0.0.1", (*cluster)->map().endpoint(p).port,
          "soak-producer-" + std::to_string(p), /*resume=*/false);
      ASSERT_TRUE(client.ok()) << client.status();
      auto gen = MakeGenerator(Distribution::kIndependent, kDim,
                               /*seed=*/1000 + p);
      Timestamp clock = 1;
      while (!done.load(std::memory_order_relaxed)) {
        std::vector<Record> batch;
        batch.reserve(kWireBatch);
        for (std::size_t i = 0; i < kWireBatch; ++i) {
          batch.emplace_back(0, gen->NextPoint(), clock);
          if (i % 32 == 31) ++clock;
        }
        ++clock;
        const auto ack = (*client)->Ingest(std::move(batch));
        if (!ack.ok()) break;  // cluster shutting down under us
        accepted[p] += ack->accepted;
        if (ack->queue_hint > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      (void)(*client)->Close(/*close_session=*/false);
    });
  }

  // Scraper: periodic /metrics pulls against every partition's admin
  // port for the whole soak, proving the plane stays responsive under
  // fire and the arena gauges are always present and sane.
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      for (std::size_t p = 0; p < kPartitions; ++p) {
        const std::string scrape =
            HttpGet((*cluster)->admin_port(p), "/metrics");
        if (scrape.empty()) continue;  // raced a slow accept; retry next tick
        EXPECT_NE(scrape.find("200 OK"), std::string::npos);
        const double bytes = MetricValue(scrape, "topkmon_arena_bytes");
        const double peak = MetricValue(scrape, "topkmon_arena_peak_bytes");
        EXPECT_GE(bytes, 0.0) << "partition " << p;
        EXPECT_GE(peak, bytes) << "partition " << p;
        ++scrapes;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  // ---- warm-up: let the queues saturate, then pin the high-water ------
  // Warm-up ends when every partition's arena peak has been nonzero and
  // unchanged across several consecutive scrapes (the plateau), not
  // after a fixed sleep — on a loaded box (the full parallel test
  // suite) the producers can be descheduled long enough that a fixed
  // warm-up misses the true saturation peak and a late spike reads as
  // "growth". Hard cap so a wedged cluster still fails loudly.
  const auto warmup_start = std::chrono::steady_clock::now();
  const auto warmup_floor =
      warmup_start + std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(warmup_seconds));
  const auto warmup_cap = warmup_start + std::chrono::seconds(30);
  std::vector<double> warm_peak(kPartitions, -1.0);
  std::vector<int> stable_rounds(kPartitions, 0);
  bool plateaued = false;
  while (std::chrono::steady_clock::now() < warmup_cap) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    for (std::size_t p = 0; p < kPartitions; ++p) {
      const double peak = MetricValue(
          HttpGet((*cluster)->admin_port(p), "/metrics"),
          "topkmon_arena_peak_bytes");
      if (peak > 0.0 && peak == warm_peak[p]) {
        ++stable_rounds[p];
      } else {
        stable_rounds[p] = 0;
        warm_peak[p] = peak;
      }
    }
    if (std::chrono::steady_clock::now() < warmup_floor) continue;
    plateaued = true;
    for (std::size_t p = 0; p < kPartitions; ++p) {
      if (stable_rounds[p] < 6) plateaued = false;
    }
    if (plateaued) break;
  }
  ASSERT_TRUE(plateaued) << "arena peaks never plateaued during warm-up";

  // ---- mid-run follower resync against partition 0 --------------------
  ServiceOptions follower_svc;
  follower_svc.ingest.slack = 2;
  follower_svc.drain_wait = std::chrono::milliseconds(2);
  follower_svc.journal.dir = journal_root.path() + "/standby";
  ReplicaFollowerOptions follower_opt;
  follower_opt.leader_port = (*cluster)->map().endpoint(0).port;
  follower_opt.fetch_wait = std::chrono::milliseconds(20);
  follower_opt.reconnect_backoff = std::chrono::milliseconds(20);
  auto follower =
      ReplicaFollower::Open(MakeEngine, follower_svc, follower_opt);
  ASSERT_TRUE(follower.ok()) << follower.status();
  const Timestamp resync_target =
      (*cluster)->service(0)->replication().applied_cycle_ts;
  if (resync_target > 0) {
    TOPKMON_ASSERT_OK(
        (*follower)->WaitForCycleTs(resync_target, std::chrono::seconds(30)));
  }

  // ---- the rest of the soak, arena pinned at its warm-up plateau ------
  std::this_thread::sleep_for(
      std::chrono::duration<double>(total_seconds - warmup_seconds));
  done.store(true);
  for (std::thread& t : producers) t.join();
  scraper.join();
  TOPKMON_ASSERT_OK((*cluster)->FlushAll());

  for (std::size_t p = 0; p < kPartitions; ++p) {
    const std::string scrape =
        HttpGet((*cluster)->admin_port(p), "/metrics");
    const double final_peak =
        MetricValue(scrape, "topkmon_arena_peak_bytes");
    const double final_bytes = MetricValue(scrape, "topkmon_arena_bytes");
    const double recycled =
        MetricValue(scrape, "topkmon_arena_chunks_recycled_total");
    // The contract under test: every byte the steady state needs was
    // resident by the end of warm-up. Growth afterwards means a view
    // outlived its cycle or reclamation regressed.
    EXPECT_EQ(final_peak, warm_peak[p])
        << "partition " << p << " arena grew after warm-up";
    EXPECT_GE(final_bytes, 0.0) << "partition " << p;
    EXPECT_LE(final_bytes, final_peak) << "partition " << p;
    // A soak that never recycled a chunk wasn't running the zero-copy
    // path at all.
    EXPECT_GT(recycled, 0.0) << "partition " << p;
    EXPECT_GT(accepted[p], 0u) << "partition " << p;
  }
  EXPECT_GT(scrapes.load(), 0u);

  const ReplicaFollowerStats fstats = (*follower)->stats();
  EXPECT_TRUE(fstats.connected);
  EXPECT_GT(fstats.records_applied, 0u);
  (*follower)->Stop();
  (*cluster)->Stop();
}

}  // namespace
}  // namespace topkmon
