// Influence-list invariants (Section 4.3).
//
// Laziness means a cell may carry a query it no longer influences, but
// never the reverse: at any instant, every cell that could produce or
// remove a result record — i.e. any cell whose maxscore reaches the
// query's current kth score — must list the query. This is the property
// that makes maintenance sound; these tests assert it directly on engine
// internals after randomized streams.

#include <gtest/gtest.h>

#include "core/sma_engine.h"
#include "core/tma_engine.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

using ::topkmon::testing::MakeRandomQueries;

template <typename Engine>
void CheckInfluenceSuperset(const Engine& engine,
                            const std::vector<QuerySpec>& queries) {
  const Grid& grid = engine.grid();
  for (const QuerySpec& q : queries) {
    const auto result = engine.CurrentResult(q.id);
    ASSERT_TRUE(result.ok());
    if (result->size() < static_cast<std::size_t>(q.k)) continue;
    const double kth = result->back().score;
    for (CellIndex cell = 0; cell < grid.num_cells(); ++cell) {
      if (q.function->MaxScore(grid.CellBounds(cell)) >= kth) {
        EXPECT_TRUE(grid.HasInfluence(cell, q.id))
            << "cell " << cell << " (maxscore "
            << q.function->MaxScore(grid.CellBounds(cell))
            << ") not in influence list of query " << q.id << " (kth "
            << kth << ")";
      }
    }
  }
}

TEST(InfluenceInvariantTest, TmaInfluenceCoversCurrentRegion) {
  const int dim = 2;
  GridEngineOptions opt;
  opt.dim = dim;
  opt.window = WindowSpec::Count(400);
  opt.cell_budget = 200;
  TmaEngine engine(opt);
  const auto queries = MakeRandomQueries(dim, 5, 5, 3);
  RecordSource source(MakeGenerator(Distribution::kIndependent, dim, 7));
  Timestamp now = 0;
  for (int c = 0; c < 10; ++c) {
    ++now;
    TOPKMON_ASSERT_OK(engine.ProcessCycle(now, source.NextBatch(40, now)));
  }
  for (const QuerySpec& q : queries) {
    TOPKMON_ASSERT_OK(engine.RegisterQuery(q));
  }
  for (int c = 0; c < 25; ++c) {
    ++now;
    TOPKMON_ASSERT_OK(engine.ProcessCycle(now, source.NextBatch(40, now)));
    CheckInfluenceSuperset(engine, queries);
  }
}

TEST(InfluenceInvariantTest, SmaInfluenceCoversComputeTimeRegion) {
  // SMA admits skyband entries against the *fixed* threshold of the last
  // computation, so its influence lists must cover every cell with
  // maxscore >= that threshold. The current kth score only rises above
  // it, so covering the current region is implied; we check the current
  // region (the externally observable contract).
  const int dim = 2;
  GridEngineOptions opt;
  opt.dim = dim;
  opt.window = WindowSpec::Count(400);
  opt.cell_budget = 200;
  SmaEngine engine(opt);
  const auto queries = MakeRandomQueries(dim, 5, 5, 13);
  RecordSource source(MakeGenerator(Distribution::kIndependent, dim, 17));
  Timestamp now = 0;
  for (int c = 0; c < 10; ++c) {
    ++now;
    TOPKMON_ASSERT_OK(engine.ProcessCycle(now, source.NextBatch(40, now)));
  }
  for (const QuerySpec& q : queries) {
    TOPKMON_ASSERT_OK(engine.RegisterQuery(q));
  }
  for (int c = 0; c < 25; ++c) {
    ++now;
    TOPKMON_ASSERT_OK(engine.ProcessCycle(now, source.NextBatch(40, now)));
    CheckInfluenceSuperset(engine, queries);
  }
}

TEST(InfluenceInvariantTest, CleanupRemovesStaleEntriesAfterRecompute) {
  // After many cycles, influence entries must not accumulate without
  // bound: the reconciliation walk prunes regions the query stopped
  // influencing. We bound the total entries by the grid size times the
  // query count (a loose sanity bound) and check it stays stable across a
  // long run instead of growing monotonically.
  const int dim = 2;
  GridEngineOptions opt;
  opt.dim = dim;
  opt.window = WindowSpec::Count(300);
  opt.cell_budget = 400;
  TmaEngine engine(opt);
  const auto queries = MakeRandomQueries(dim, 3, 3, 23);
  RecordSource source(MakeGenerator(Distribution::kIndependent, dim, 29));
  Timestamp now = 0;
  for (int c = 0; c < 8; ++c) {
    ++now;
    TOPKMON_ASSERT_OK(engine.ProcessCycle(now, source.NextBatch(40, now)));
  }
  for (const QuerySpec& q : queries) {
    TOPKMON_ASSERT_OK(engine.RegisterQuery(q));
  }
  std::size_t peak_mid_run = 0;
  for (int c = 0; c < 60; ++c) {
    ++now;
    TOPKMON_ASSERT_OK(engine.ProcessCycle(now, source.NextBatch(40, now)));
    if (c == 30) peak_mid_run = engine.grid().TotalInfluenceEntries();
  }
  const std::size_t at_end = engine.grid().TotalInfluenceEntries();
  ASSERT_GT(peak_mid_run, 0u);
  // Stale entries are reclaimed: the count cannot keep growing linearly
  // with cycles (allow generous slack for workload variance).
  EXPECT_LT(at_end, 4 * peak_mid_run);
}

TEST(InfluenceInvariantTest, ExpiryOfResultRecordAlwaysObserved) {
  // End-to-end guard against false misses: run TMA for many cycles and
  // verify (via the brute-force oracle embedded in lockstep) that no
  // expired record lingers in any result. Here we just assert that every
  // reported result id is still a valid window record.
  const int dim = 3;
  GridEngineOptions opt;
  opt.dim = dim;
  opt.window = WindowSpec::Count(200);
  opt.cell_budget = 512;
  TmaEngine engine(opt);
  const auto queries = MakeRandomQueries(dim, 4, 8, 31);
  RecordSource source(MakeGenerator(Distribution::kAntiCorrelated, dim, 37));
  Timestamp now = 0;
  for (int c = 0; c < 5; ++c) {
    ++now;
    TOPKMON_ASSERT_OK(engine.ProcessCycle(now, source.NextBatch(40, now)));
  }
  for (const QuerySpec& q : queries) {
    TOPKMON_ASSERT_OK(engine.RegisterQuery(q));
  }
  RecordId first_valid = 0;
  for (int c = 0; c < 30; ++c) {
    ++now;
    const auto batch = source.NextBatch(40, now);
    TOPKMON_ASSERT_OK(engine.ProcessCycle(now, batch));
    first_valid = batch.back().id >= 199 ? batch.back().id - 199 : 0;
    for (const QuerySpec& q : queries) {
      const auto result = engine.CurrentResult(q.id);
      ASSERT_TRUE(result.ok());
      for (const ResultEntry& e : *result) {
        EXPECT_GE(e.id, first_valid) << "expired record in result";
      }
    }
  }
}

}  // namespace
}  // namespace topkmon
