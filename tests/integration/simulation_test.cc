#include "core/simulation.h"

#include <gtest/gtest.h>

#include "core/brute_force_engine.h"
#include "core/sma_engine.h"
#include "core/tma_engine.h"
#include "tests/test_util.h"
#include "tsl/tsl_engine.h"

namespace topkmon {
namespace {

WorkloadSpec SmallSpec() {
  WorkloadSpec spec;
  spec.dim = 2;
  spec.window_size = 500;
  spec.arrivals_per_cycle = 50;
  spec.num_cycles = 20;
  spec.num_queries = 10;
  spec.k = 5;
  spec.seed = 99;
  return spec;
}

TEST(WorkloadSpecTest, WindowSpecAndWarmup) {
  WorkloadSpec spec = SmallSpec();
  EXPECT_EQ(spec.MakeWindowSpec().kind, WindowKind::kCountBased);
  EXPECT_EQ(spec.MakeWindowSpec().capacity, 500u);
  EXPECT_EQ(spec.WarmupCycles(), 10);
  spec.window_kind = WindowKind::kTimeBased;
  EXPECT_EQ(spec.MakeWindowSpec().kind, WindowKind::kTimeBased);
  EXPECT_EQ(spec.MakeWindowSpec().span, 10);
}

TEST(WorkloadSpecTest, QueriesAreDeterministic) {
  const WorkloadSpec spec = SmallSpec();
  const auto a = spec.MakeQueries();
  const auto b = spec.MakeQueries();
  ASSERT_EQ(a.size(), 10u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].k, spec.k);
    const Point probe{0.3, 0.8};
    EXPECT_DOUBLE_EQ(a[i].function->Score(probe),
                     b[i].function->Score(probe));
  }
}

TEST(RunWorkloadTest, DrivesEngineToSteadyState) {
  const WorkloadSpec spec = SmallSpec();
  TmaEngine engine(
      {spec.dim, spec.MakeWindowSpec(), /*cell_budget=*/256, 0});
  const auto report = RunWorkload(engine, spec);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->engine, "TMA");
  EXPECT_EQ(report->stats.cycles, 20u);
  EXPECT_EQ(report->stats.arrivals, 20u * 50u);
  EXPECT_EQ(engine.WindowSize(), 500u);
  EXPECT_GE(report->monitor_seconds, 0.0);
  EXPECT_GT(report->memory.TotalBytes(), 0u);
}

TEST(RunWorkloadTest, IdenticalSpecsFeedIdenticalStreams) {
  const WorkloadSpec spec = SmallSpec();
  TmaEngine a({spec.dim, spec.MakeWindowSpec(), 256, 0});
  TmaEngine b({spec.dim, spec.MakeWindowSpec(), 256, 0});
  ASSERT_TRUE(RunWorkload(a, spec).ok());
  ASSERT_TRUE(RunWorkload(b, spec).ok());
  for (QueryId q = 1; q <= 10; ++q) {
    const auto ra = a.CurrentResult(q);
    const auto rb = b.CurrentResult(q);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(testing::Scores(*ra), testing::Scores(*rb));
  }
}

TEST(RunWorkloadTest, AllEnginesAgreeAfterFullWorkload) {
  WorkloadSpec spec = SmallSpec();
  spec.distribution = Distribution::kAntiCorrelated;
  BruteForceEngine brute(spec.dim, spec.MakeWindowSpec());
  TmaEngine tma({spec.dim, spec.MakeWindowSpec(), 256, 0});
  SmaEngine sma({spec.dim, spec.MakeWindowSpec(), 256, 0});
  TslOptions tsl_opt;
  tsl_opt.dim = spec.dim;
  tsl_opt.window = spec.MakeWindowSpec();
  TslEngine tsl(tsl_opt);
  ASSERT_TRUE(RunWorkload(brute, spec).ok());
  ASSERT_TRUE(RunWorkload(tma, spec).ok());
  ASSERT_TRUE(RunWorkload(sma, spec).ok());
  ASSERT_TRUE(RunWorkload(tsl, spec).ok());
  for (QueryId q = 1; q <= 10; ++q) {
    const auto want = brute.CurrentResult(q);
    ASSERT_TRUE(want.ok());
    for (MonitorEngine* e :
         std::vector<MonitorEngine*>{&tma, &sma, &tsl}) {
      const auto got = e->CurrentResult(q);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(testing::Scores(*got), testing::Scores(*want))
          << e->name();
    }
  }
}

TEST(RunWorkloadTest, TimeBasedWindowWorkload) {
  WorkloadSpec spec = SmallSpec();
  spec.window_kind = WindowKind::kTimeBased;
  SmaEngine sma({spec.dim, spec.MakeWindowSpec(), 256, 0});
  const auto report = RunWorkload(sma, spec);
  ASSERT_TRUE(report.ok());
  // Steady state holds ~N records (exactly N when r divides N).
  EXPECT_EQ(sma.WindowSize(), 500u);
}

TEST(RunWorkloadTest, NonLinearFamilyWorkload) {
  WorkloadSpec spec = SmallSpec();
  spec.family = FunctionFamily::kProduct;
  BruteForceEngine brute(spec.dim, spec.MakeWindowSpec());
  SmaEngine sma({spec.dim, spec.MakeWindowSpec(), 256, 0});
  ASSERT_TRUE(RunWorkload(brute, spec).ok());
  ASSERT_TRUE(RunWorkload(sma, spec).ok());
  for (QueryId q = 1; q <= 10; ++q) {
    const auto want = brute.CurrentResult(q);
    const auto got = sma.CurrentResult(q);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(testing::Scores(*got), testing::Scores(*want));
  }
}

}  // namespace
}  // namespace topkmon
