// Section 3.1's reduction: freeze the stream and let the window drain.
// The set of records that appear in at least one of the remaining top-k
// results must equal the k-skyband of the valid records in (score,
// expiration-time) space (Figure 2).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/brute_force_engine.h"
#include "core/skyband.h"
#include "core/sma_engine.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

class SkybandReduction : public ::testing::TestWithParam<int> {};

TEST_P(SkybandReduction, FutureResultUnionEqualsSkyband) {
  const int k = GetParam();
  const int dim = 2;
  const std::size_t n = 200;
  // Build a window of n records, freeze arrivals, and replay expirations
  // through a time-based window (one record expires per tick).
  RecordSource source(MakeGenerator(Distribution::kIndependent, dim, 71));
  std::vector<Record> records;
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back(source.Next(static_cast<Timestamp>(i)));
  }
  QuerySpec q;
  q.id = 1;
  q.k = k;
  q.function = std::make_shared<LinearFunction>(std::vector<double>{1.0, 2.0});

  // (a) Oracle: k-skyband in (score, expiry) space. Expiry order == id.
  std::vector<ResultEntry> scored;
  for (const Record& r : records) {
    scored.push_back({r.id, q.function->Score(r.position)});
  }
  std::vector<RecordId> skyband_ids = BruteForceSkyband(scored, k);
  std::sort(skyband_ids.begin(), skyband_ids.end());

  // (b) Replay: drain the window one record per tick, collecting every id
  // that ever appears in the result.
  BruteForceEngine engine(dim, WindowSpec::Time(static_cast<Timestamp>(n)));
  Timestamp now = 0;
  for (const Record& r : records) {
    TOPKMON_ASSERT_OK(engine.ProcessCycle(r.arrival, {r}));
    now = r.arrival;
  }
  TOPKMON_ASSERT_OK(engine.RegisterQuery(q));
  std::set<RecordId> appeared;
  while (engine.WindowSize() > 0) {
    const auto result = engine.CurrentResult(1);
    ASSERT_TRUE(result.ok());
    for (const ResultEntry& e : *result) appeared.insert(e.id);
    ++now;
    TOPKMON_ASSERT_OK(engine.ProcessCycle(now, {}));
  }

  // With continuous scores ties have probability zero, so the equality is
  // exact: every record that ever appears is a skyband member and vice
  // versa.
  const std::vector<RecordId> appeared_vec(appeared.begin(), appeared.end());
  EXPECT_EQ(appeared_vec, skyband_ids) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(KSweep, SkybandReduction,
                         ::testing::Values(1, 2, 3, 5, 10, 25));

// The same reduction drives SMA: with no further arrivals, SMA keeps
// answering from its skyband and never recomputes while it holds >= k
// entries.
TEST(SkybandReductionTest, SmaDrainsWithoutRecomputeWhileSkybandLasts) {
  const int dim = 2;
  const int k = 3;
  GridEngineOptions opt;
  opt.dim = dim;
  opt.window = WindowSpec::Time(300);
  opt.cell_budget = 256;
  SmaEngine sma(opt);
  BruteForceEngine brute(dim, opt.window);
  RecordSource source(MakeGenerator(Distribution::kIndependent, dim, 13));
  Timestamp now = 0;
  for (int c = 0; c < 10; ++c) {
    ++now;
    const auto batch = source.NextBatch(20, now);
    TOPKMON_ASSERT_OK(sma.ProcessCycle(now, batch));
    TOPKMON_ASSERT_OK(brute.ProcessCycle(now, batch));
  }
  QuerySpec q;
  q.id = 1;
  q.k = k;
  q.function = std::make_shared<LinearFunction>(std::vector<double>{0.8, 0.6});
  TOPKMON_ASSERT_OK(sma.RegisterQuery(q));
  TOPKMON_ASSERT_OK(brute.RegisterQuery(q));
  // Drain with empty cycles; results must track the shrinking window.
  // (Recomputations are allowed only when the skyband itself drains below
  // k, which with an initial skyband of exactly k happens as soon as one
  // member expires without arrivals to replace it — so we only check
  // agreement here, plus that SMA's answers use the skyband prefix.)
  while (brute.WindowSize() > 0) {
    now += 30;  // expire a chunk per cycle (time-based window of 300)
    TOPKMON_ASSERT_OK(sma.ProcessCycle(now, {}));
    TOPKMON_ASSERT_OK(brute.ProcessCycle(now, {}));
    const auto want = brute.CurrentResult(1);
    const auto got = sma.CurrentResult(1);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(testing::Scores(*got), testing::Scores(*want));
  }
}

}  // namespace
}  // namespace topkmon
