// Failure injection: malformed input must surface as Status errors (never
// crashes), and engines must remain usable afterwards.

#include <gtest/gtest.h>

#include "core/sma_engine.h"
#include "core/tma_engine.h"
#include "core/update_stream_engine.h"
#include "tests/test_util.h"
#include "tsl/tsl_engine.h"

namespace topkmon {
namespace {

QuerySpec LinearQuery(QueryId id, int k, std::vector<double> w) {
  QuerySpec spec;
  spec.id = id;
  spec.k = k;
  spec.function = std::make_shared<LinearFunction>(std::move(w));
  return spec;
}

GridEngineOptions Options2d() {
  GridEngineOptions opt;
  opt.dim = 2;
  opt.window = WindowSpec::Count(100);
  opt.cell_budget = 64;
  return opt;
}

TEST(FailureInjectionTest, OutOfRangeCoordinatesRejectedByAllEngines) {
  TmaEngine tma(Options2d());
  SmaEngine sma(Options2d());
  TslOptions tsl_opt;
  tsl_opt.dim = 2;
  tsl_opt.window = WindowSpec::Count(100);
  TslEngine tsl(tsl_opt);
  const std::vector<Record> bad = {Record(0, Point{0.5, 1.5}, 1)};
  EXPECT_EQ(tma.ProcessCycle(1, bad).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(sma.ProcessCycle(1, bad).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(tsl.ProcessCycle(1, bad).code(), StatusCode::kOutOfRange);
}

TEST(FailureInjectionTest, WrongDimensionalityRejected) {
  TmaEngine tma(Options2d());
  const std::vector<Record> bad = {Record(0, Point{0.5, 0.5, 0.5}, 1)};
  EXPECT_EQ(tma.ProcessCycle(1, bad).code(), StatusCode::kInvalidArgument);
}

TEST(FailureInjectionTest, NonFiniteCoordinateRejected) {
  TmaEngine tma(Options2d());
  const std::vector<Record> bad = {
      Record(0, Point{std::nan(""), 0.5}, 1)};
  EXPECT_EQ(tma.ProcessCycle(1, bad).code(), StatusCode::kOutOfRange);
}

TEST(FailureInjectionTest, NonContiguousIdsRejected) {
  TmaEngine tma(Options2d());
  TOPKMON_ASSERT_OK(tma.ProcessCycle(1, {Record(0, Point{0.5, 0.5}, 1)}));
  EXPECT_EQ(
      tma.ProcessCycle(2, {Record(5, Point{0.5, 0.5}, 2)}).code(),
      StatusCode::kFailedPrecondition);
}

TEST(FailureInjectionTest, EngineUsableAfterRejectedInput) {
  TmaEngine tma(Options2d());
  TOPKMON_ASSERT_OK(tma.RegisterQuery(LinearQuery(1, 2, {1.0, 1.0})));
  EXPECT_FALSE(tma.ProcessCycle(1, {Record(0, Point{2.0, 0.5}, 1)}).ok());
  // The bad record was rejected before indexing; a good cycle still works.
  TOPKMON_ASSERT_OK(tma.ProcessCycle(2, {Record(0, Point{0.9, 0.9}, 2)}));
  const auto result = tma.CurrentResult(1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].id, 0u);
}

TEST(FailureInjectionTest, MalformedQuerySpecsRejectedEverywhere) {
  TmaEngine tma(Options2d());
  SmaEngine sma(Options2d());
  QuerySpec no_function;
  no_function.id = 1;
  no_function.k = 1;
  EXPECT_EQ(tma.RegisterQuery(no_function).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sma.RegisterQuery(no_function).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(tma.RegisterQuery(LinearQuery(1, 0, {1.0, 1.0})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(tma.RegisterQuery(LinearQuery(1, 1, {1.0, 1.0, 1.0})).code(),
            StatusCode::kInvalidArgument);
}

TEST(FailureInjectionTest, UpdateStreamDoubleDeleteFails) {
  UpdateStreamTmaEngine engine(Options2d());
  UpdateOp ins;
  ins.kind = UpdateOp::Kind::kInsert;
  ins.record = Record(0, Point{0.5, 0.5}, 0);
  TOPKMON_ASSERT_OK(engine.ProcessBatch({ins}));
  UpdateOp del;
  del.kind = UpdateOp::Kind::kDelete;
  del.record.id = 0;
  TOPKMON_ASSERT_OK(engine.ProcessBatch({del}));
  EXPECT_EQ(engine.ProcessBatch({del}).code(), StatusCode::kNotFound);
}

TEST(FailureInjectionTest, ResultQueriesAfterErrorsStayConsistent) {
  SmaEngine sma(Options2d());
  TOPKMON_ASSERT_OK(sma.RegisterQuery(LinearQuery(1, 1, {1.0, 1.0})));
  EXPECT_FALSE(sma.ProcessCycle(1, {Record(0, Point{-0.1, 0.5}, 1)}).ok());
  TOPKMON_ASSERT_OK(sma.ProcessCycle(2, {Record(0, Point{0.4, 0.4}, 2)}));
  const auto result = sma.CurrentResult(1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
}

TEST(FailureInjectionTest, ZeroArrivalCyclesAreFine) {
  TmaEngine tma(Options2d());
  TOPKMON_ASSERT_OK(tma.RegisterQuery(LinearQuery(1, 2, {1.0, 1.0})));
  for (Timestamp t = 1; t <= 5; ++t) {
    TOPKMON_ASSERT_OK(tma.ProcessCycle(t, {}));
  }
  EXPECT_EQ(tma.stats().cycles, 5u);
}

}  // namespace
}  // namespace topkmon
