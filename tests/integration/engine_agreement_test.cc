// Cross-engine agreement: TMA, SMA and TSL must report, cycle for cycle,
// the same top-k score multisets as the brute-force reference for the same
// stream — across dimensionalities, result sizes, distributions, window
// kinds and scoring-function families.

#include <gtest/gtest.h>

#include <memory>

#include "core/brute_force_engine.h"
#include "core/sma_engine.h"
#include "core/tma_engine.h"
#include "tests/test_util.h"
#include "tsl/tsl_engine.h"

namespace topkmon {
namespace {

using ::topkmon::testing::MakeRandomQueries;

struct AgreementCase {
  int dim;
  int k;
  Distribution dist;
  WindowKind window_kind;
  FunctionFamily family;
};

class EngineAgreement : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(EngineAgreement, AllEnginesMatchBruteForce) {
  const AgreementCase& c = GetParam();
  const std::size_t window_n = 600;
  const std::size_t r = 60;
  const WindowSpec window = c.window_kind == WindowKind::kCountBased
                                ? WindowSpec::Count(window_n)
                                : WindowSpec::Time(10);

  GridEngineOptions grid_opt;
  grid_opt.dim = c.dim;
  grid_opt.window = window;
  grid_opt.cell_budget = 1024;

  TslOptions tsl_opt;
  tsl_opt.dim = c.dim;
  tsl_opt.window = window;

  BruteForceEngine brute(c.dim, window);
  TmaEngine tma(grid_opt);
  SmaEngine sma(grid_opt);
  TslEngine tsl(tsl_opt);

  const auto queries =
      MakeRandomQueries(c.dim, 6, c.k,
                        1000 + static_cast<std::uint64_t>(c.dim), c.family);
  testing::RunLockstepAgreement(
      {&brute, &tma, &sma, &tsl}, queries, c.dist, c.dim, r,
      /*warmup_cycles=*/12, /*measured_cycles=*/25,
      /*seed=*/2000 + static_cast<std::uint64_t>(c.k));
}

std::string CaseName(const ::testing::TestParamInfo<AgreementCase>& info) {
  const AgreementCase& c = info.param;
  std::string name = "d" + std::to_string(c.dim) + "_k" +
                     std::to_string(c.k) + "_";
  name += DistributionName(c.dist);
  name += c.window_kind == WindowKind::kCountBased ? "_count" : "_time";
  switch (c.family) {
    case FunctionFamily::kLinear:
      name += "_linear";
      break;
    case FunctionFamily::kProduct:
      name += "_product";
      break;
    case FunctionFamily::kSumOfSquares:
      name += "_squares";
      break;
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineAgreement,
    ::testing::Values(
        // Dimensionality sweep (count-based, linear, IND).
        AgreementCase{2, 5, Distribution::kIndependent,
                      WindowKind::kCountBased, FunctionFamily::kLinear},
        AgreementCase{3, 5, Distribution::kIndependent,
                      WindowKind::kCountBased, FunctionFamily::kLinear},
        AgreementCase{4, 5, Distribution::kIndependent,
                      WindowKind::kCountBased, FunctionFamily::kLinear},
        AgreementCase{5, 5, Distribution::kIndependent,
                      WindowKind::kCountBased, FunctionFamily::kLinear},
        // k sweep.
        AgreementCase{2, 1, Distribution::kIndependent,
                      WindowKind::kCountBased, FunctionFamily::kLinear},
        AgreementCase{2, 20, Distribution::kIndependent,
                      WindowKind::kCountBased, FunctionFamily::kLinear},
        AgreementCase{2, 50, Distribution::kIndependent,
                      WindowKind::kCountBased, FunctionFamily::kLinear},
        // Anti-correlated data.
        AgreementCase{2, 10, Distribution::kAntiCorrelated,
                      WindowKind::kCountBased, FunctionFamily::kLinear},
        AgreementCase{4, 10, Distribution::kAntiCorrelated,
                      WindowKind::kCountBased, FunctionFamily::kLinear},
        // Clustered data (extension workload).
        AgreementCase{3, 8, Distribution::kClustered,
                      WindowKind::kCountBased, FunctionFamily::kLinear},
        // Time-based windows.
        AgreementCase{2, 5, Distribution::kIndependent,
                      WindowKind::kTimeBased, FunctionFamily::kLinear},
        AgreementCase{3, 10, Distribution::kAntiCorrelated,
                      WindowKind::kTimeBased, FunctionFamily::kLinear},
        // Non-linear preference functions (Figure 21).
        AgreementCase{2, 5, Distribution::kIndependent,
                      WindowKind::kCountBased, FunctionFamily::kProduct},
        AgreementCase{3, 10, Distribution::kAntiCorrelated,
                      WindowKind::kCountBased, FunctionFamily::kProduct},
        AgreementCase{2, 5, Distribution::kIndependent,
                      WindowKind::kCountBased,
                      FunctionFamily::kSumOfSquares},
        AgreementCase{4, 10, Distribution::kIndependent,
                      WindowKind::kCountBased,
                      FunctionFamily::kSumOfSquares}),
    CaseName);

// Queries arriving and terminating mid-stream: late registration computes
// over the current window; unregistered queries stop being maintained
// while the rest stay exact.
TEST(EngineAgreementTest, MidStreamRegistrationAndTermination) {
  const int dim = 2;
  const WindowSpec window = WindowSpec::Count(400);
  GridEngineOptions opt;
  opt.dim = dim;
  opt.window = window;
  opt.cell_budget = 256;
  BruteForceEngine brute(dim, window);
  TmaEngine tma(opt);
  SmaEngine sma(opt);
  std::vector<MonitorEngine*> engines = {&brute, &tma, &sma};

  RecordSource source(MakeGenerator(Distribution::kIndependent, dim, 5));
  const auto queries = MakeRandomQueries(dim, 6, 5, 11);
  Timestamp now = 0;
  auto cycle = [&](std::size_t n) {
    ++now;
    const auto batch = source.NextBatch(n, now);
    for (MonitorEngine* e : engines) {
      TOPKMON_ASSERT_OK(e->ProcessCycle(now, batch));
    }
  };
  auto check = [&](QueryId id) {
    const auto want = brute.CurrentResult(id);
    ASSERT_TRUE(want.ok());
    for (MonitorEngine* e : engines) {
      const auto got = e->CurrentResult(id);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(testing::Scores(*got), testing::Scores(*want))
          << e->name() << " query " << id;
    }
  };

  for (int c = 0; c < 10; ++c) cycle(50);
  // Register the first half.
  for (std::size_t i = 0; i < 3; ++i) {
    for (MonitorEngine* e : engines) {
      TOPKMON_ASSERT_OK(e->RegisterQuery(queries[i]));
    }
  }
  for (int c = 0; c < 5; ++c) cycle(40);
  for (std::size_t i = 0; i < 3; ++i) check(queries[i].id);
  // Register the second half mid-stream; terminate query 0.
  for (std::size_t i = 3; i < 6; ++i) {
    for (MonitorEngine* e : engines) {
      TOPKMON_ASSERT_OK(e->RegisterQuery(queries[i]));
    }
  }
  for (MonitorEngine* e : engines) {
    TOPKMON_ASSERT_OK(e->UnregisterQuery(queries[0].id));
  }
  for (int c = 0; c < 10; ++c) {
    cycle(40);
    for (std::size_t i = 1; i < 6; ++i) check(queries[i].id);
  }
}

// Stress: window drains to empty (no arrivals for several cycles under a
// time-based window), then refills.
TEST(EngineAgreementTest, WindowDrainAndRefill) {
  const int dim = 2;
  const WindowSpec window = WindowSpec::Time(4);
  GridEngineOptions opt;
  opt.dim = dim;
  opt.window = window;
  opt.cell_budget = 256;
  BruteForceEngine brute(dim, window);
  TmaEngine tma(opt);
  SmaEngine sma(opt);
  std::vector<MonitorEngine*> engines = {&brute, &tma, &sma};
  const auto queries = MakeRandomQueries(dim, 4, 3, 21);
  for (const QuerySpec& q : queries) {
    for (MonitorEngine* e : engines) {
      TOPKMON_ASSERT_OK(e->RegisterQuery(q));
    }
  }
  RecordSource source(MakeGenerator(Distribution::kIndependent, dim, 9));
  Timestamp now = 0;
  auto run_and_check = [&](std::size_t n) {
    ++now;
    const auto batch = source.NextBatch(n, now);
    for (MonitorEngine* e : engines) {
      TOPKMON_ASSERT_OK(e->ProcessCycle(now, batch));
    }
    for (const QuerySpec& q : queries) {
      const auto want = brute.CurrentResult(q.id);
      ASSERT_TRUE(want.ok());
      for (MonitorEngine* e : engines) {
        const auto got = e->CurrentResult(q.id);
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(testing::Scores(*got), testing::Scores(*want))
            << e->name() << " at t=" << now;
      }
    }
  };
  for (int c = 0; c < 6; ++c) run_and_check(20);
  for (int c = 0; c < 8; ++c) run_and_check(0);  // drain to empty
  EXPECT_EQ(brute.WindowSize(), 0u);
  for (int c = 0; c < 6; ++c) run_and_check(20);  // refill
}

}  // namespace
}  // namespace topkmon
