// Differential fuzzing of the monitoring engines.
//
// A seeded generator produces random interleavings of the only four
// operations that mutate an engine — processing cycles (which both
// ingest arrivals and expire the window; a zero-arrival cycle is a pure
// expiry step), query registration and query termination — and replays
// the identical sequence through TMA, SMA, TSL and a 2-shard
// ShardedEngine, checking every live query's result score multiset
// against BruteForceEngine after every cycle. Registrations mix
// monotone and piecewise-monotone specs, so the engines' internal
// piece decomposition is fuzzed under the same interleavings. A second
// tier replays every named workload from src/workload/ — skewed keys,
// bursts, churn, adversarial timestamps — through the same engine set.
//
// Every op is self-contained (cycles carry their own point seed, and
// registrations their own query seed), so a failing sequence can be
// *minimized* by deleting ops and re-running: on mismatch the test
// greedily shrinks the sequence and prints the seed plus a replay
// script of the surviving ops. Each script line maps 1:1 onto a FuzzOp
// (see OpToString), so rebuilding the op list in a scratch test — the
// shape ReplayScriptsAreDeterministic demonstrates — reproduces the
// divergence exactly, without re-deriving the generator's RNG stream.
//
// Extra seeds: TOPKMON_FUZZ_SEEDS=7,8,9 appends to the fixed CI set;
// TOPKMON_FUZZ_STEPS overrides the ops per sequence.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <cstring>

#include "core/brute_force_engine.h"
#include "core/piecewise.h"
#include "core/sharded_engine.h"
#include "core/sma_engine.h"
#include "core/tma_engine.h"
#include "net/protocol.h"
#include "stream/record_arena.h"
#include "tests/test_util.h"
#include "tsl/tsl_engine.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace topkmon {
namespace {

using ::topkmon::testing::Scores;

constexpr int kDim = 2;
constexpr std::size_t kWindow = 150;
constexpr int kMaxLiveQueries = 6;

struct FuzzOp {
  enum Kind { kCycle, kRegister, kUnregister } kind = kCycle;
  std::size_t batch = 0;          ///< kCycle: arrivals this cycle
  std::uint64_t point_seed = 0;   ///< kCycle: generator seed for them
  QueryId query = 0;              ///< kRegister / kUnregister target
  int k = 0;                      ///< kRegister
  std::uint64_t query_seed = 0;   ///< kRegister: function seed
  bool piecewise = false;         ///< kRegister: piecewise-monotone spec
};

std::string OpToString(const FuzzOp& op) {
  std::ostringstream os;
  switch (op.kind) {
    case FuzzOp::kCycle:
      os << "cycle n=" << op.batch << " pseed=" << op.point_seed;
      break;
    case FuzzOp::kRegister:
      os << "register q=" << op.query << " k=" << op.k
         << " qseed=" << op.query_seed
         << (op.piecewise ? " piecewise=1" : "");
      break;
    case FuzzOp::kUnregister:
      os << "unregister q=" << op.query;
      break;
  }
  return os.str();
}

std::string ScriptToString(std::uint64_t seed,
                           const std::vector<FuzzOp>& ops) {
  std::ostringstream os;
  os << "# topkmon fuzz replay (seed=" << seed << ", " << ops.size()
     << " ops)\n";
  for (const FuzzOp& op : ops) os << OpToString(op) << "\n";
  return os.str();
}

/// Generates a random but fully self-contained op sequence.
std::vector<FuzzOp> GenerateOps(std::uint64_t seed, std::size_t steps) {
  Rng rng(seed);
  std::vector<FuzzOp> ops;
  std::vector<QueryId> live;
  QueryId next_query = 1;
  for (std::size_t step = 0; step < steps; ++step) {
    const double roll = rng.Uniform();
    FuzzOp op;
    if (step == 0 || (roll < 0.20 &&
                      live.size() < static_cast<std::size_t>(
                                        kMaxLiveQueries))) {
      op.kind = FuzzOp::kRegister;
      op.query = next_query++;
      op.k = 1 + static_cast<int>(rng.Uniform() * 8);
      op.query_seed = rng.NextUint64();
      // Roughly a third of registrations carry a piecewise-monotone
      // spec, so every interleaving shape also runs through the
      // engines' internal piece decomposition.
      op.piecewise = rng.Uniform() < 0.35;
      live.push_back(op.query);
    } else if (roll < 0.30 && !live.empty()) {
      op.kind = FuzzOp::kUnregister;
      const std::size_t idx =
          static_cast<std::size_t>(rng.Uniform() * live.size()) %
          live.size();
      op.query = live[idx];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      op.kind = FuzzOp::kCycle;
      // Bias toward small batches; ~1 in 8 cycles is a pure expiry step.
      const double size_roll = rng.Uniform();
      op.batch = size_roll < 0.125
                     ? 0
                     : 1 + static_cast<std::size_t>(rng.Uniform() * 30);
      op.point_seed = rng.NextUint64();
    }
    ops.push_back(op);
  }
  return ops;
}

/// A random piecewise-monotone function: the unit space tiled into
/// 2..4 slabs along a random axis at random cut points, each slab with
/// its own monotone linear function. Cut points are random uniform
/// doubles, so stream records never land exactly on a piece boundary —
/// the decomposed engines and BruteForce see identical scores.
std::shared_ptr<const ScoringFunction> PiecewiseFor(std::uint64_t seed) {
  Rng rng(seed);
  const int axis = static_cast<int>(rng.UniformInt(kDim));
  const std::size_t num_pieces = 2 + rng.UniformInt(3);
  std::vector<double> cuts = {0.0};
  for (std::size_t i = 0; i + 1 < num_pieces; ++i) {
    cuts.push_back(rng.Uniform());
  }
  cuts.push_back(1.0);
  std::sort(cuts.begin(), cuts.end());
  std::vector<MonotonePiece> pieces;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    Point lo(kDim);
    Point hi(kDim);
    for (int d = 0; d < kDim; ++d) {
      lo[d] = d == axis ? cuts[i] : 0.0;
      hi[d] = d == axis ? cuts[i + 1] : 1.0;
    }
    MonotonePiece piece;
    piece.domain = Rect(lo, hi);
    piece.function = MakeRandomFunction(FunctionFamily::kLinear, kDim,
                                        [&rng] { return rng.Uniform(); });
    pieces.push_back(std::move(piece));
  }
  auto fn = PiecewiseFunction::Create(std::move(pieces));
  EXPECT_TRUE(fn.ok());
  return *fn;
}

QuerySpec SpecFor(const FuzzOp& op) {
  QuerySpec spec;
  spec.id = op.query;
  spec.k = op.k;
  if (op.piecewise) {
    spec.function = PiecewiseFor(op.query_seed);
    return spec;
  }
  Rng rng(op.query_seed);
  spec.function = MakeRandomFunction(FunctionFamily::kLinear, kDim,
                                     [&rng] { return rng.Uniform(); });
  return spec;
}

struct Mismatch {
  bool failed = false;
  std::string engine;
  QueryId query = 0;
  Timestamp at = 0;
  std::size_t op_index = 0;
};

/// Replays `ops` through every engine against BruteForce. Robust to
/// arbitrary (e.g. minimized) op lists: registers of an already-live id
/// and unregisters of unknown ids are skipped uniformly.
Mismatch RunOps(const std::vector<FuzzOp>& ops) {
  BruteForceEngine brute(kDim, WindowSpec::Count(kWindow));
  GridEngineOptions grid;
  grid.dim = kDim;
  grid.window = WindowSpec::Count(kWindow);
  grid.cell_budget = 128;
  TmaEngine tma(grid);
  SmaEngine sma(grid);
  TslOptions tsl_opt;
  tsl_opt.dim = kDim;
  tsl_opt.window = WindowSpec::Count(kWindow);
  TslEngine tsl(tsl_opt);
  ShardedEngine sharded(2, [&grid] {
    return std::unique_ptr<MonitorEngine>(new TmaEngine(grid));
  });
  std::vector<MonitorEngine*> engines = {&tma, &sma, &tsl, &sharded};

  Mismatch result;
  std::map<QueryId, QuerySpec> live;
  RecordId next_id = 0;
  Timestamp now = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const FuzzOp& op = ops[i];
    switch (op.kind) {
      case FuzzOp::kRegister: {
        if (live.count(op.query) > 0) break;
        const QuerySpec spec = SpecFor(op);
        if (!brute.RegisterQuery(spec).ok()) break;
        for (MonitorEngine* e : engines) {
          EXPECT_TRUE(e->RegisterQuery(spec).ok()) << e->name();
        }
        live.emplace(op.query, spec);
        break;
      }
      case FuzzOp::kUnregister: {
        if (live.erase(op.query) == 0) break;
        (void)brute.UnregisterQuery(op.query);
        for (MonitorEngine* e : engines) {
          (void)e->UnregisterQuery(op.query);
        }
        break;
      }
      case FuzzOp::kCycle: {
        ++now;
        std::vector<Record> batch;
        auto gen = MakeGenerator(Distribution::kIndependent, kDim,
                                 op.point_seed);
        for (std::size_t r = 0; r < op.batch; ++r) {
          batch.emplace_back(next_id++, gen->NextPoint(), now);
        }
        EXPECT_TRUE(brute.ProcessCycle(now, batch).ok());
        for (MonitorEngine* e : engines) {
          EXPECT_TRUE(e->ProcessCycle(now, batch).ok()) << e->name();
        }
        for (const auto& [id, spec] : live) {
          (void)spec;
          const auto want = brute.CurrentResult(id);
          if (!want.ok()) continue;
          for (MonitorEngine* e : engines) {
            const auto got = e->CurrentResult(id);
            if (!got.ok() || Scores(*got) != Scores(*want)) {
              result.failed = true;
              result.engine = e->name();
              result.query = id;
              result.at = now;
              result.op_index = i;
              return result;
            }
          }
        }
        break;
      }
    }
  }
  return result;
}

/// Greedy delta-debugging: repeatedly try to drop chunks of ops while
/// the mismatch persists. Bounded by `budget` re-runs.
std::vector<FuzzOp> MinimizeOps(std::vector<FuzzOp> ops, int budget) {
  for (std::size_t chunk = ops.size() / 2; chunk >= 1 && budget > 0;
       chunk /= 2) {
    bool shrunk = true;
    while (shrunk && budget > 0) {
      shrunk = false;
      for (std::size_t start = 0; start < ops.size() && budget > 0;
           start += chunk) {
        std::vector<FuzzOp> candidate;
        candidate.reserve(ops.size());
        for (std::size_t i = 0; i < ops.size(); ++i) {
          if (i < start || i >= start + chunk) candidate.push_back(ops[i]);
        }
        if (candidate.empty()) continue;
        --budget;
        if (RunOps(candidate).failed) {
          ops = std::move(candidate);
          shrunk = true;
          break;
        }
      }
    }
    if (chunk == 1) break;
  }
  return ops;
}

void FuzzOneSeed(std::uint64_t seed, std::size_t steps) {
  const std::vector<FuzzOp> ops = GenerateOps(seed, steps);
  const Mismatch mismatch = RunOps(ops);
  if (!mismatch.failed) return;
  const std::vector<FuzzOp> minimized = MinimizeOps(ops, /*budget=*/150);
  const Mismatch confirmed = RunOps(minimized);
  ADD_FAILURE() << "engine " << mismatch.engine << " diverged from BRUTE on "
                << "query " << mismatch.query << " at cycle " << mismatch.at
                << " (seed=" << seed << ", op " << mismatch.op_index
                << ").\nMinimized replay ("
                << (confirmed.failed ? "still failing" : "flaky!")
                << ", " << minimized.size() << "/" << ops.size()
                << " ops):\n"
                << ScriptToString(seed, minimized);
}

std::vector<std::uint64_t> SeedSet() {
  // The fixed CI seed set; stable so failures are reproducible runs,
  // not lottery tickets.
  std::vector<std::uint64_t> seeds = {1, 7, 42, 1234, 777777, 20060626};
  if (const char* extra = std::getenv("TOPKMON_FUZZ_SEEDS")) {
    std::stringstream ss(extra);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) seeds.push_back(std::strtoull(tok.c_str(),
                                                      nullptr, 10));
    }
  }
  return seeds;
}

std::size_t StepCount() {
  if (const char* steps = std::getenv("TOPKMON_FUZZ_STEPS")) {
    const std::size_t n = std::strtoull(steps, nullptr, 10);
    if (n > 0) return n;
  }
  return 60;
}

TEST(EngineFuzzTest, RandomInterleavingsAgreeWithBruteForce) {
  const std::size_t steps = StepCount();
  for (const std::uint64_t seed : SeedSet()) {
    FuzzOneSeed(seed, steps);
  }
}

/// Drives the full engine set through `steps` cycles of one named
/// workload, applying its query register/unregister schedule, and
/// differential-checks every live query against BruteForce after each
/// cycle. Workload queries are monotone (possibly constrained), so
/// score multisets must match bitwise.
void FuzzWorkload(const std::string& name, std::size_t steps) {
  WorkloadOptions wopt;
  wopt.dim = kDim;
  wopt.seed = 20060626;
  wopt.k = 5;
  wopt.mean_batch = 24;
  wopt.num_queries = kMaxLiveQueries;
  auto workload = MakeWorkload(name, wopt);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();

  BruteForceEngine brute(kDim, WindowSpec::Count(kWindow));
  GridEngineOptions grid;
  grid.dim = kDim;
  grid.window = WindowSpec::Count(kWindow);
  grid.cell_budget = 128;
  TmaEngine tma(grid);
  SmaEngine sma(grid);
  TslOptions tsl_opt;
  tsl_opt.dim = kDim;
  tsl_opt.window = WindowSpec::Count(kWindow);
  TslEngine tsl(tsl_opt);
  ShardedEngine sharded(2, [&grid] {
    return std::unique_ptr<MonitorEngine>(new TmaEngine(grid));
  });
  std::vector<MonitorEngine*> engines = {&tma, &sma, &tsl, &sharded};

  std::set<QueryId> live;
  for (std::size_t s = 0; s < steps; ++s) {
    const WorkloadStep step = (*workload)->NextStep();
    for (const QueryEvent& ev : step.query_events) {
      if (ev.kind == QueryEvent::kRegister) {
        ASSERT_TRUE(brute.RegisterQuery(ev.spec).ok());
        for (MonitorEngine* e : engines) {
          ASSERT_TRUE(e->RegisterQuery(ev.spec).ok()) << e->name();
        }
        live.insert(ev.id);
      } else {
        ASSERT_TRUE(brute.UnregisterQuery(ev.id).ok());
        for (MonitorEngine* e : engines) {
          ASSERT_TRUE(e->UnregisterQuery(ev.id).ok()) << e->name();
        }
        live.erase(ev.id);
      }
    }
    ASSERT_TRUE(brute.ProcessCycle(step.now, step.arrivals).ok());
    for (MonitorEngine* e : engines) {
      ASSERT_TRUE(e->ProcessCycle(step.now, step.arrivals).ok())
          << e->name();
    }
    for (const QueryId id : live) {
      const auto want = brute.CurrentResult(id);
      ASSERT_TRUE(want.ok());
      for (MonitorEngine* e : engines) {
        const auto got = e->CurrentResult(id);
        ASSERT_TRUE(got.ok()) << e->name();
        ASSERT_EQ(Scores(*got), Scores(*want))
            << "engine " << e->name() << " diverged on workload '" << name
            << "' query " << id << " at cycle " << s;
      }
    }
  }
}

TEST(EngineFuzzTest, NamedWorkloadsAgreeWithBruteForce) {
  // TOPKMON_FUZZ_WORKLOAD narrows the run to one registry name (CI fans
  // out one sanitizer job per workload); unset covers the registry.
  const char* only = std::getenv("TOPKMON_FUZZ_WORKLOAD");
  const std::size_t steps = StepCount();
  for (const WorkloadInfo& info : ListWorkloads()) {
    if (only != nullptr && info.name != only) continue;
    SCOPED_TRACE(info.name);
    FuzzWorkload(info.name, steps);
  }
}

/// Wire-roundtrip mode: every cycle batch of a named workload is
/// encoded as a kIngest frame body and decoded BOTH ways — the copying
/// path (DecodeNetBody into a NetMessage) and the zero-copy path
/// (DecodeIngestBodyToArena into a RecordArena). The two decodes are
/// pinned bitwise against each other, then the arena-backed span drives
/// the full engine set while BruteForce is fed from the copying decode,
/// so any divergence between the storage paths — decode, arena
/// lifetime, span-threaded ProcessCycle, lane-major scoring — shows up
/// as a score mismatch. Arena epochs advance per frame exactly as the
/// service's drain loop does, so recycling runs under the fuzz too.
void FuzzWorkloadWireRoundtrip(const std::string& name, std::size_t steps) {
  WorkloadOptions wopt;
  wopt.dim = kDim;
  wopt.seed = 20060626;
  wopt.k = 5;
  wopt.mean_batch = 24;
  wopt.num_queries = kMaxLiveQueries;
  auto workload = MakeWorkload(name, wopt);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();

  BruteForceEngine brute(kDim, WindowSpec::Count(kWindow));
  GridEngineOptions grid;
  grid.dim = kDim;
  grid.window = WindowSpec::Count(kWindow);
  grid.cell_budget = 128;
  TmaEngine tma(grid);
  SmaEngine sma(grid);
  TslOptions tsl_opt;
  tsl_opt.dim = kDim;
  tsl_opt.window = WindowSpec::Count(kWindow);
  TslEngine tsl(tsl_opt);
  ShardedEngine sharded(2, [&grid] {
    return std::unique_ptr<MonitorEngine>(new TmaEngine(grid));
  });
  std::vector<MonitorEngine*> engines = {&tma, &sma, &tsl, &sharded};

  RecordArenaOptions aopt;
  aopt.chunk_records = 64;  // small chunks so recycling actually cycles
  RecordArena arena(aopt);

  std::set<QueryId> live;
  for (std::size_t s = 0; s < steps; ++s) {
    const WorkloadStep step = (*workload)->NextStep();
    for (const QueryEvent& ev : step.query_events) {
      if (ev.kind == QueryEvent::kRegister) {
        ASSERT_TRUE(brute.RegisterQuery(ev.spec).ok());
        for (MonitorEngine* e : engines) {
          ASSERT_TRUE(e->RegisterQuery(ev.spec).ok()) << e->name();
        }
        live.insert(ev.id);
      } else {
        ASSERT_TRUE(brute.UnregisterQuery(ev.id).ok());
        for (MonitorEngine* e : engines) {
          ASSERT_TRUE(e->UnregisterQuery(ev.id).ok()) << e->name();
        }
        live.erase(ev.id);
      }
    }

    RecordSpan engine_batch;
    IngestFrameView view;
    std::vector<Record> copied;
    if (!step.arrivals.empty()) {
      std::string body;
      EncodeIngest(step.arrivals, &body);
      NetMessage msg;
      ASSERT_TRUE(DecodeNetBody(body.data(), body.size(), &msg).ok());
      copied = std::move(msg.tuples);
      ASSERT_TRUE(DecodeIngestBodyToArena(body.data(), body.size(), kDim,
                                          arena, &view)
                      .ok());
      ASSERT_TRUE(view.invalid.empty()) << name << " cycle " << s;
      ASSERT_EQ(view.count, copied.size());
      for (std::size_t r = 0; r < view.count; ++r) {
        ASSERT_EQ(view.records[r].id, copied[r].id);
        ASSERT_EQ(view.records[r].arrival, copied[r].arrival);
        ASSERT_EQ(view.records[r].position.dim(), kDim);
        for (int d = 0; d < kDim; ++d) {
          const double a = view.records[r].position[d];
          const double b = copied[r].position[d];
          ASSERT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
              << "coordinate bits diverged: workload '" << name
              << "' cycle " << s << " record " << r << " dim " << d;
        }
      }
      engine_batch = RecordSpan(view.records, view.count);
    }

    ASSERT_TRUE(brute.ProcessCycle(step.now, copied).ok());
    for (MonitorEngine* e : engines) {
      ASSERT_TRUE(e->ProcessCycle(step.now, engine_batch).ok())
          << e->name();
    }
    for (const QueryId id : live) {
      const auto want = brute.CurrentResult(id);
      ASSERT_TRUE(want.ok());
      for (MonitorEngine* e : engines) {
        const auto got = e->CurrentResult(id);
        ASSERT_TRUE(got.ok()) << e->name();
        ASSERT_EQ(Scores(*got), Scores(*want))
            << "engine " << e->name() << " diverged on wire-roundtrip '"
            << name << "' query " << id << " at cycle " << s;
      }
    }

    // Cycle published: same lifecycle the ingest queue runs per drain.
    if (view.count > 0) arena.Release(view.records, view.count);
    arena.RetireThrough(arena.AdvanceEpoch());
  }
  // Everything released + retired: a warmed-up arena must not have
  // ratcheted memory (chunks recycle through the bounded free list).
  const RecordArenaStats astats = arena.stats();
  EXPECT_EQ(astats.allocated_records, astats.released_records);
  EXPECT_LE(arena.ResidentBytes(),
            (aopt.max_free_chunks + 1) * aopt.chunk_records *
                sizeof(Record) +
                wopt.mean_batch * 8 * sizeof(Record));
}

TEST(EngineFuzzTest, WireRoundtripNamedWorkloadsAgreeWithBruteForce) {
  const char* only = std::getenv("TOPKMON_FUZZ_WORKLOAD");
  const std::size_t steps = StepCount();
  for (const WorkloadInfo& info : ListWorkloads()) {
    if (only != nullptr && info.name != only) continue;
    SCOPED_TRACE(info.name);
    FuzzWorkloadWireRoundtrip(info.name, steps);
  }
}

/// The replay path itself is exercised so a printed script is known to
/// reproduce: a hand-written minimal sequence runs clean.
TEST(EngineFuzzTest, ReplayScriptsAreDeterministic) {
  std::vector<FuzzOp> ops;
  FuzzOp reg;
  reg.kind = FuzzOp::kRegister;
  reg.query = 1;
  reg.k = 3;
  reg.query_seed = 99;
  ops.push_back(reg);
  FuzzOp cycle;
  cycle.kind = FuzzOp::kCycle;
  cycle.batch = 20;
  cycle.point_seed = 5;
  ops.push_back(cycle);
  FuzzOp expiry;
  expiry.kind = FuzzOp::kCycle;
  expiry.batch = 0;
  expiry.point_seed = 0;
  ops.push_back(expiry);
  EXPECT_FALSE(RunOps(ops).failed);
  // Ops are self-contained: running twice is bit-identical, so the
  // printed script reproduces exactly.
  EXPECT_FALSE(RunOps(ops).failed);
}

}  // namespace
}  // namespace topkmon
