// Admin-plane HTTP tests: endpoint correctness against a live
// MonitorService, hostile-peer torture against a bare AdminHttpServer
// (mirroring tests/net/server_torture_test.cc's stance: nothing a peer
// does costs more than its own connection), /healthz across the
// follower -> leader -> fenced role transitions, and an e2e run with
// concurrent scrapes under full-rate ingest with the data plane up.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/brute_force_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/admin_server.h"
#include "service/monitor_service.h"
#include "tests/journal/journal_test_util.h"
#include "tests/net/net_test_util.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

constexpr int kDim = 2;

std::unique_ptr<MonitorEngine> MakeEngine() {
  return std::make_unique<BruteForceEngine>(kDim, WindowSpec::Count(200));
}

/// A raw TCP client for speaking (possibly broken) HTTP on purpose.
class RawHttpPeer {
 public:
  explicit RawHttpPeer(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
    timeval tv{5, 0};  // reads give up after 5 s
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  ~RawHttpPeer() { Close(); }

  bool connected() const { return connected_; }

  void Send(const std::string& bytes) {
    (void)::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  }

  /// Reads until the server closes (HTTP/1.0 framing) or the timeout.
  std::string ReadToEof() {
    std::string out;
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

struct HttpResponse {
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
};

/// Splits a raw HTTP/1.0 response; status stays 0 on malformed input.
HttpResponse ParseHttpResponse(const std::string& raw) {
  HttpResponse r;
  const std::size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos || raw.rfind("HTTP/1.0 ", 0) != 0) {
    return r;
  }
  r.status = std::atoi(raw.c_str() + 9);
  const std::size_t headers_end = raw.find("\r\n\r\n");
  if (headers_end == std::string::npos) return r;
  std::size_t pos = line_end + 2;
  while (pos < headers_end) {
    const std::size_t eol = raw.find("\r\n", pos);
    const std::string line = raw.substr(pos, eol - pos);
    const std::size_t colon = line.find(": ");
    if (colon != std::string::npos) {
      r.headers[line.substr(0, colon)] = line.substr(colon + 2);
    }
    pos = eol + 2;
  }
  r.body = raw.substr(headers_end + 4);
  return r;
}

/// One well-formed GET, response parsed.
HttpResponse Get(std::uint16_t port, const std::string& path) {
  RawHttpPeer peer(port);
  EXPECT_TRUE(peer.connected());
  peer.Send("GET " + path + " HTTP/1.0\r\nHost: test\r\n\r\n");
  return ParseHttpResponse(peer.ReadToEof());
}

/// The isolation probe after every torture case: a fresh well-formed
/// request still succeeds.
void ExpectAdminHealthy(std::uint16_t port, const std::string& path) {
  const HttpResponse r = Get(port, path);
  EXPECT_EQ(r.status, 200) << "admin server no longer serves " << path;
}

ServiceOptions AdminEnabledOptions() {
  ServiceOptions options;
  options.drain_wait = std::chrono::milliseconds(1);
  options.admin.enabled = true;
  options.admin.port = 0;
  options.admin.poll_tick = std::chrono::milliseconds(1);
  return options;
}

// ---- endpoint correctness against a live service ----------------------

TEST(AdminEndpoints, ServeMetricsStatuszHealthz) {
  MonitorService service(MakeEngine(), AdminEnabledOptions());
  ASSERT_TRUE(service.admin_status().ok()) << service.admin_status();
  const std::uint16_t port = service.admin_port();
  ASSERT_NE(port, 0);

  const auto session = service.OpenSession("admin-test");
  ASSERT_TRUE(session.ok());
  QuerySpec spec;
  spec.k = 2;
  spec.function = std::make_shared<LinearFunction>(
      std::vector<double>{1.0, 1.0}, 0.0);
  ASSERT_TRUE(service.Register(*session, spec).ok());
  for (Timestamp t = 1; t <= 50; ++t) {
    TOPKMON_ASSERT_OK(service.Ingest(Point{0.5, 0.5}, t));
  }
  TOPKMON_ASSERT_OK(service.Flush());

  const HttpResponse metrics = Get(port, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.headers.at("Content-Type"),
            "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_EQ(metrics.headers.at("Connection"), "close");
  EXPECT_EQ(std::stoul(metrics.headers.at("Content-Length")),
            metrics.body.size());
  EXPECT_NE(metrics.body.find("# TYPE topkmon_cycles_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("topkmon_records_ingested_total 50"),
            std::string::npos);
  EXPECT_NE(
      metrics.body.find(
          "# TYPE topkmon_ingest_publish_latency_seconds histogram"),
      std::string::npos);

  const HttpResponse statusz = Get(port, "/statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_EQ(statusz.headers.at("Content-Type"), "application/json");
  for (const char* key :
       {"\"role\":\"leader\"", "\"fenced\":false", "\"fencing_epoch\":0",
        "\"replication\":", "\"ingest\":", "\"journal\":",
        "\"sessions\":", "\"records_ingested\":50",
        "\"label\":\"admin-test\""}) {
    EXPECT_NE(statusz.body.find(key), std::string::npos)
        << "/statusz is missing " << key << "\n" << statusz.body;
  }

  const HttpResponse healthz = Get(port, "/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_EQ(healthz.body, "leader-ok\n");

  // Unknown path and non-GET draw clean per-request errors.
  EXPECT_EQ(Get(port, "/nope").status, 404);
  {
    RawHttpPeer peer(port);
    ASSERT_TRUE(peer.connected());
    peer.Send("POST /metrics HTTP/1.0\r\n\r\n");
    EXPECT_EQ(ParseHttpResponse(peer.ReadToEof()).status, 405);
  }
  // A query string is stripped before path matching.
  EXPECT_EQ(Get(port, "/healthz?probe=1").status, 200);

  service.Shutdown();
}

TEST(AdminEndpoints, DisabledByDefaultAndAfterShutdown) {
  ServiceOptions options;
  options.drain_wait = std::chrono::milliseconds(1);
  MonitorService service(MakeEngine(), options);
  EXPECT_EQ(service.admin_port(), 0);
  EXPECT_TRUE(service.admin_status().ok());
  service.Shutdown();

  MonitorService enabled(MakeEngine(), AdminEnabledOptions());
  const std::uint16_t port = enabled.admin_port();
  ASSERT_NE(port, 0);
  enabled.Shutdown();
  RawHttpPeer peer(port);
  if (peer.connected()) {
    peer.Send("GET /healthz HTTP/1.0\r\n\r\n");
    EXPECT_TRUE(peer.ReadToEof().empty());
  }
}

// ---- torture against a bare AdminHttpServer ---------------------------

AdminServerOptions TortureOptions() {
  AdminServerOptions options;
  options.enabled = true;
  options.port = 0;
  options.max_request_bytes = 512;
  options.idle_timeout = std::chrono::milliseconds(150);
  options.poll_tick = std::chrono::milliseconds(1);
  return options;
}

class AdminTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<AdminHttpServer>(TortureOptions());
    server_->Handle("/ok", [] {
      AdminResponse r;
      r.body = "ok\n";
      return r;
    });
    TOPKMON_ASSERT_OK(server_->Start());
  }

  void TearDown() override { server_->Stop(); }

  std::unique_ptr<AdminHttpServer> server_;
};

TEST_F(AdminTortureTest, GarbageRequestLineDraws400) {
  RawHttpPeer peer(server_->port());
  ASSERT_TRUE(peer.connected());
  peer.Send("\x01\x02garbage-no-spaces\r\n\r\n");
  EXPECT_EQ(ParseHttpResponse(peer.ReadToEof()).status, 400);
  ExpectAdminHealthy(server_->port(), "/ok");
  // A request line whose target is not a path is equally malformed.
  RawHttpPeer relative(server_->port());
  ASSERT_TRUE(relative.connected());
  relative.Send("GET ok HTTP/1.0\r\n\r\n");
  EXPECT_EQ(ParseHttpResponse(relative.ReadToEof()).status, 400);
  ExpectAdminHealthy(server_->port(), "/ok");
}

TEST_F(AdminTortureTest, OversizedHeadersDraw431) {
  RawHttpPeer peer(server_->port());
  ASSERT_TRUE(peer.connected());
  peer.Send("GET /ok HTTP/1.0\r\nX-Filler: " +
            std::string(4096, 'x') + "\r\n\r\n");
  EXPECT_EQ(ParseHttpResponse(peer.ReadToEof()).status, 431);
  ExpectAdminHealthy(server_->port(), "/ok");
}

TEST_F(AdminTortureTest, SlowLorisIsReaped) {
  RawHttpPeer peer(server_->port());
  ASSERT_TRUE(peer.connected());
  peer.Send("GET /ok HT");  // never finishes the request line
  const auto start = std::chrono::steady_clock::now();
  // The server must close the connection (empty response, no reply)
  // once idle_timeout passes — well before our 5 s socket timeout.
  EXPECT_TRUE(peer.ReadToEof().empty());
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(4));
  ExpectAdminHealthy(server_->port(), "/ok");
}

TEST_F(AdminTortureTest, AbruptDisconnectIsIsolated) {
  for (int i = 0; i < 8; ++i) {
    RawHttpPeer peer(server_->port());
    ASSERT_TRUE(peer.connected());
    peer.Send("GET /ok");
    peer.Close();  // mid-request hangup
  }
  {
    // Hang up without sending anything at all.
    RawHttpPeer peer(server_->port());
    ASSERT_TRUE(peer.connected());
  }
  ExpectAdminHealthy(server_->port(), "/ok");
}

TEST_F(AdminTortureTest, ManyConcurrentPeersAllServed) {
  std::vector<std::thread> peers;
  std::atomic<int> ok{0};
  for (int i = 0; i < 16; ++i) {
    peers.emplace_back([this, &ok] {
      const HttpResponse r = Get(server_->port(), "/ok");
      if (r.status == 200 && r.body == "ok\n") ok.fetch_add(1);
    });
  }
  for (std::thread& t : peers) t.join();
  EXPECT_EQ(ok.load(), 16);
}

// ---- /healthz across role transitions ---------------------------------

TEST(AdminHealthz, FollowerPromoteFenceTransitions) {
  testing::ScopedTempDir dir;
  ASSERT_FALSE(dir.path().empty());
  ServiceOptions options = AdminEnabledOptions();
  options.journal.dir = dir.path();
  auto service = MonitorService::OpenFollower(MakeEngine, options,
                                              "127.0.0.1:19999");
  ASSERT_TRUE(service.ok()) << service.status();
  const std::uint16_t port = (*service)->admin_port();
  ASSERT_NE(port, 0);

  HttpResponse r = Get(port, "/healthz");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "follower-ok\n");
  EXPECT_NE(Get(port, "/statusz").body.find("\"role\":\"follower\""),
            std::string::npos);

  TOPKMON_ASSERT_OK((*service)->Promote());
  r = Get(port, "/healthz");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "leader-ok\n");

  // A higher epoch observed anywhere deposes this leader; the probe
  // flips to degraded without any write traffic.
  const std::uint64_t epoch = (*service)->fencing_epoch();
  TOPKMON_ASSERT_OK((*service)->ObserveFencingEpoch(epoch + 1000));
  r = Get(port, "/healthz");
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.body.find("fenced-degraded"), std::string::npos);
  EXPECT_NE(Get(port, "/statusz").body.find("\"fenced\":true"),
            std::string::npos);

  (*service)->Shutdown();
}

// ---- e2e: concurrent scrapes under full-rate ingest -------------------

TEST(AdminE2E, ConcurrentScrapesUnderLoad) {
  MonitorService service(MakeEngine(), AdminEnabledOptions());
  const std::uint16_t admin_port = service.admin_port();
  ASSERT_NE(admin_port, 0);
  TcpServer server(service, testing::TestServerOptions());
  TOPKMON_ASSERT_OK(server.Start());

  auto client = MonitorClient::Connect("127.0.0.1", server.port(),
                                       "scrape-load", /*resume=*/false);
  ASSERT_TRUE(client.ok()) << client.status();
  QuerySpec spec;
  spec.k = 3;
  spec.function = std::make_shared<LinearFunction>(
      std::vector<double>{1.0, 1.0}, 0.0);
  ASSERT_TRUE((*client)->Register(spec).ok());

  // Full-rate wire ingest for the whole scrape window.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sent{0};
  std::thread producer([&] {
    Timestamp ts = 1;
    while (!stop.load()) {
      std::vector<Record> batch;
      for (int i = 0; i < 64; ++i) {
        batch.emplace_back(0, Point{0.3, 0.7}, ts++);
      }
      const auto ack = (*client)->Ingest(std::move(batch));
      if (!ack.ok()) break;
      sent.fetch_add(ack->accepted);
    }
  });

  std::atomic<int> scrape_failures{0};
  std::vector<std::thread> scrapers;
  for (int s = 0; s < 4; ++s) {
    scrapers.emplace_back([&, s] {
      const char* path = (s % 2 == 0) ? "/metrics" : "/statusz";
      for (int i = 0; i < 25; ++i) {
        const HttpResponse r = Get(admin_port, path);
        if (r.status != 200 || r.body.empty()) {
          scrape_failures.fetch_add(1);
        }
        if (s % 2 == 0 &&
            r.body.find("topkmon_net_open_connections") ==
                std::string::npos) {
          scrape_failures.fetch_add(1);  // net sampler missing mid-run
        }
      }
    });
  }
  for (std::thread& t : scrapers) t.join();
  stop.store(true);
  producer.join();
  EXPECT_EQ(scrape_failures.load(), 0);
  EXPECT_GT(sent.load(), 0u);

  // The data plane never stopped: what was accepted got applied.
  TOPKMON_ASSERT_OK(service.Flush());
  const HttpResponse after = Get(admin_port, "/metrics");
  EXPECT_EQ(after.status, 200);
  (void)(*client)->Close();
  server.Stop();
  service.Shutdown();
}

}  // namespace
}  // namespace topkmon
