// MetricsRegistry unit + round-trip tests: instrument semantics,
// histogram bucket math, sampler add/remove, and a Prometheus text
// exposition parser driven over both a synthetic registry and a real
// MonitorService scrape. The parser enforces the exposition invariants
// a scraper relies on: every line parses, every sample name is covered
// by exactly one HELP/TYPE block, no (name, labels) series appears
// twice, histogram buckets are cumulative and monotone, and the +Inf
// bucket equals _count.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/brute_force_engine.h"
#include "obs/metrics.h"
#include "service/monitor_service.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

// ---- a small Prometheus text exposition parser ------------------------

struct PromSeries {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

struct PromExposition {
  std::map<std::string, std::string> help;  ///< metric name -> HELP text
  std::map<std::string, std::string> type;  ///< metric name -> TYPE token
  std::vector<PromSeries> series;
};

/// Parses `name{k="v",...}` (labels optional); false on malformed input.
bool ParseSeriesHead(const std::string& head, PromSeries* out) {
  const std::size_t brace = head.find('{');
  if (brace == std::string::npos) {
    out->name = head;
    return !out->name.empty();
  }
  out->name = head.substr(0, brace);
  if (out->name.empty() || head.back() != '}') return false;
  std::string inner = head.substr(brace + 1, head.size() - brace - 2);
  while (!inner.empty()) {
    const std::size_t eq = inner.find("=\"");
    if (eq == std::string::npos) return false;
    const std::size_t end = inner.find('"', eq + 2);
    if (end == std::string::npos) return false;
    out->labels[inner.substr(0, eq)] = inner.substr(eq + 2, end - eq - 2);
    if (end + 1 == inner.size()) break;
    if (inner[end + 1] != ',') return false;
    inner = inner.substr(end + 2);
  }
  return true;
}

/// Parses a whole exposition document into *out; fails the test on any
/// malformed line (out-param because gtest ASSERTs need a void return).
void ParseExposition(const std::string& text, PromExposition* parsed) {
  PromExposition& out = *parsed;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      const bool is_help = line[2] == 'H';
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      EXPECT_NE(space, std::string::npos) << "bare comment header: " << line;
      if (space == std::string::npos) continue;
      const std::string name = rest.substr(0, space);
      auto& target = is_help ? out.help : out.type;
      EXPECT_EQ(target.count(name), 0u)
          << "duplicate " << (is_help ? "HELP" : "TYPE") << " for " << name;
      target[name] = rest.substr(space + 1);
      continue;
    }
    EXPECT_NE(line[0], '#') << "unknown comment form: " << line;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << "no value on line: " << line;
    PromSeries series;
    ASSERT_TRUE(ParseSeriesHead(line.substr(0, space), &series))
        << "bad series head: " << line;
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    if (value == "+Inf") {
      series.value = std::numeric_limits<double>::infinity();
    } else {
      series.value = std::strtod(value.c_str(), &end);
      ASSERT_TRUE(end != nullptr && *end == '\0')
          << "bad value '" << value << "' on line: " << line;
    }
    out.series.push_back(std::move(series));
  }
}

/// Strips the _bucket/_sum/_count suffix a histogram series carries, so
/// the series maps back to its TYPE block's base name.
std::string BaseName(const PromExposition& exposition,
                     const std::string& series_name) {
  if (exposition.type.count(series_name) != 0) return series_name;
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s = suffix;
    if (series_name.size() > s.size() &&
        series_name.compare(series_name.size() - s.size(), s.size(), s) ==
            0) {
      const std::string base =
          series_name.substr(0, series_name.size() - s.size());
      const auto it = exposition.type.find(base);
      if (it != exposition.type.end() && it->second == "histogram") {
        return base;
      }
    }
  }
  return series_name;
}

/// The full invariant pass every scrape must satisfy.
void CheckExposition(const PromExposition& exposition) {
  // 1. Every series belongs to exactly one HELP + TYPE block.
  for (const PromSeries& s : exposition.series) {
    const std::string base = BaseName(exposition, s.name);
    EXPECT_EQ(exposition.type.count(base), 1u)
        << "series " << s.name << " has no TYPE block";
    EXPECT_EQ(exposition.help.count(base), 1u)
        << "series " << s.name << " has no HELP block";
  }
  // 2. No (name, labels) series appears twice.
  std::set<std::string> seen;
  for (const PromSeries& s : exposition.series) {
    std::string key = s.name;
    for (const auto& [k, v] : s.labels) key += "|" + k + "=" + v;
    EXPECT_TRUE(seen.insert(key).second) << "duplicate series " << key;
  }
  // 3. Histograms: buckets cumulative-monotone in le order, +Inf bucket
  //    present and equal to _count, _sum present.
  for (const auto& [name, type] : exposition.type) {
    if (type != "histogram") continue;
    // Group the buckets by their non-le label set (one histogram per
    // label combination).
    std::map<std::string, std::vector<std::pair<double, double>>> buckets;
    std::map<std::string, double> counts;
    std::set<std::string> sums;
    for (const PromSeries& s : exposition.series) {
      std::string key;
      for (const auto& [k, v] : s.labels) {
        if (k != "le") key += k + "=" + v + ",";
      }
      if (s.name == name + "_bucket") {
        const auto le = s.labels.find("le");
        ASSERT_NE(le, s.labels.end()) << name << "_bucket without le";
        const double bound = le->second == "+Inf"
                                 ? std::numeric_limits<double>::infinity()
                                 : std::strtod(le->second.c_str(), nullptr);
        buckets[key].emplace_back(bound, s.value);
      } else if (s.name == name + "_count") {
        counts[key] = s.value;
      } else if (s.name == name + "_sum") {
        sums.insert(key);
      }
    }
    EXPECT_FALSE(buckets.empty()) << name << " has no buckets";
    for (auto& [key, series] : buckets) {
      std::sort(series.begin(), series.end());
      double prev = 0.0;
      for (const auto& [bound, count] : series) {
        EXPECT_GE(count, prev)
            << name << "{" << key << "} bucket le=" << bound
            << " is not cumulative-monotone";
        prev = count;
      }
      ASSERT_FALSE(series.empty());
      EXPECT_TRUE(std::isinf(series.back().first))
          << name << "{" << key << "} is missing the +Inf bucket";
      ASSERT_EQ(counts.count(key), 1u) << name << " is missing _count";
      EXPECT_EQ(series.back().second, counts[key])
          << name << "{" << key << "} +Inf bucket != _count";
      EXPECT_EQ(sums.count(key), 1u) << name << " is missing _sum";
    }
  }
}

// ---- instrument semantics ---------------------------------------------

TEST(MetricsInstruments, CountersAndGaugesRender) {
  MetricsRegistry registry;
  MetricCounter* counter =
      registry.RegisterCounter("demo_events_total", "Events seen");
  MetricGauge* gauge = registry.RegisterGauge("demo_depth", "Queue depth");
  MetricGauge* labeled = registry.RegisterGauge(
      "demo_loop_depth", "Per-loop depth", {{"loop", "0"}});
  counter->Increment();
  counter->Increment(41);
  gauge->Set(7);
  gauge->Add(-2);
  labeled->Set(3);

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].name, "demo_events_total");
  EXPECT_EQ(snap.samples[0].kind, MetricKind::kCounter);
  EXPECT_EQ(snap.samples[0].value, 42.0);
  EXPECT_EQ(snap.samples[1].value, 5.0);
  ASSERT_EQ(snap.samples[2].labels.size(), 1u);
  EXPECT_EQ(snap.samples[2].labels[0].second, "0");

  PromExposition exposition;
  ParseExposition(snap.ToPrometheus(), &exposition);
  CheckExposition(exposition);
  ASSERT_EQ(exposition.series.size(), 3u);
  EXPECT_EQ(exposition.type.at("demo_events_total"), "counter");
  EXPECT_EQ(exposition.type.at("demo_depth"), "gauge");
}

TEST(MetricsHistogram, BucketBoundsArePowersOfTwoMicros) {
  EXPECT_EQ(LatencyHistogram::BucketBoundMicros(0), 1u);
  EXPECT_EQ(LatencyHistogram::BucketBoundMicros(10), 1024u);
  EXPECT_EQ(LatencyHistogram::BucketBoundMicros(26), 67108864u);
}

TEST(MetricsHistogram, RecordsIntoTheTightestBucket) {
  LatencyHistogram h;
  h.RecordMicros(1);     // bucket 0 (<= 1us)
  h.RecordMicros(2);     // bucket 1
  h.RecordMicros(3);     // bucket 2 (<= 4us)
  h.RecordMicros(1024);  // bucket 10
  h.RecordMicros(std::uint64_t{1} << 40);  // beyond 2^26us: +Inf
  h.Record(std::chrono::milliseconds(1));  // 1000us: bucket 10
  h.Record(std::chrono::nanoseconds(-5));  // clamped to 0: bucket 0

  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(10), 2u);
  EXPECT_EQ(h.BucketCount(LatencyHistogram::kFiniteBuckets), 1u);
  EXPECT_EQ(h.Count(), 7u);
  EXPECT_EQ(h.SumMicros(),
            1u + 2u + 3u + 1024u + (std::uint64_t{1} << 40) + 1000u);
}

TEST(MetricsHistogram, SnapshotBucketsAreCumulative) {
  MetricsRegistry registry;
  LatencyHistogram* h =
      registry.RegisterHistogram("demo_latency_seconds", "Latency");
  h->RecordMicros(1);
  h->RecordMicros(2);
  h->RecordMicros(500);

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.samples.size(), 1u);
  const MetricSample& s = snap.samples[0];
  EXPECT_EQ(s.kind, MetricKind::kHistogram);
  ASSERT_EQ(static_cast<int>(s.cumulative_buckets.size()),
            LatencyHistogram::kFiniteBuckets);
  EXPECT_EQ(s.cumulative_buckets[0], 1u);  // <= 1us
  EXPECT_EQ(s.cumulative_buckets[1], 2u);  // <= 2us
  EXPECT_EQ(s.cumulative_buckets[9], 3u);  // <= 512us
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.sum_seconds, 503e-6, 1e-12);

  PromExposition exposition;
  ParseExposition(snap.ToPrometheus(), &exposition);
  CheckExposition(exposition);
  EXPECT_EQ(exposition.type.at("demo_latency_seconds"), "histogram");
}

// ---- samplers ---------------------------------------------------------

TEST(MetricsSampler, BridgesAndRemoves) {
  MetricsRegistry registry;
  int calls = 0;
  const std::uint64_t id = registry.AddSampler([&calls](MetricSink& sink) {
    ++calls;
    sink.AddCounter("bridged_total", "Bridged", 5.0);
    sink.AddGauge("bridged_depth", "Bridged", 2.0, {{"loop", "1"}});
  });
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(snap.samples.size(), 2u);
  EXPECT_EQ(snap.samples[0].name, "bridged_total");
  PromExposition bridged;
  ParseExposition(snap.ToPrometheus(), &bridged);
  CheckExposition(bridged);

  registry.RemoveSampler(id);
  snap = registry.Snapshot();
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(snap.samples.empty());
  // Removing twice (or a bogus id) is harmless.
  registry.RemoveSampler(id);
  registry.RemoveSampler(9999);
}

TEST(MetricsSampler, RemoveIsSafeUnderConcurrentSnapshots) {
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::thread scraper([&registry, &stop] {
    while (!stop.load()) (void)registry.Snapshot();
  });
  // Each round's sampler reads state that dies right after RemoveSampler
  // returns — the barrier semantics are what keeps the scraper off it.
  for (int round = 0; round < 200; ++round) {
    auto state = std::make_unique<int>(round);
    int* raw = state.get();
    const std::uint64_t id = registry.AddSampler([raw](MetricSink& sink) {
      sink.AddGauge("ephemeral", "Round state", static_cast<double>(*raw));
    });
    (void)registry.Snapshot();
    registry.RemoveSampler(id);
    state.reset();  // safe: no snapshot can still be inside the sampler
  }
  stop.store(true);
  scraper.join();
}

// ---- the real thing: a MonitorService scrape round-trips --------------

TEST(MetricsRoundTrip, MonitorServiceScrapeParses) {
  ServiceOptions options;
  options.drain_wait = std::chrono::milliseconds(1);
  MonitorService service(
      std::make_unique<BruteForceEngine>(2, WindowSpec::Count(100)),
      options);

  const auto session = service.OpenSession("scrape-test");
  ASSERT_TRUE(session.ok());
  QuerySpec spec;
  spec.k = 3;
  spec.function = std::make_shared<LinearFunction>(
      std::vector<double>{1.0, 1.0}, 0.0);
  ASSERT_TRUE(service.Register(*session, spec).ok());
  for (Timestamp t = 1; t <= 200; ++t) {
    TOPKMON_ASSERT_OK(service.Ingest(
        Point{0.001 * static_cast<double>(t), 0.5}, t));
  }
  TOPKMON_ASSERT_OK(service.Flush());

  const MetricsSnapshot snap = service.metrics().Snapshot();
  PromExposition exposition;
  ParseExposition(snap.ToPrometheus(), &exposition);
  CheckExposition(exposition);

  // Every registered sample made it into the exposition.
  for (const MetricSample& s : snap.samples) {
    EXPECT_EQ(exposition.type.count(s.name), 1u)
        << s.name << " missing from the exposition";
  }
  // The time dimension exists: ingested records flowed through the
  // ingest->publish histogram.
  double ingested = -1.0;
  for (const PromSeries& s : exposition.series) {
    if (s.name == "topkmon_records_ingested_total") ingested = s.value;
    if (s.name == "topkmon_ingest_publish_latency_seconds_count") {
      EXPECT_GT(s.value, 0.0) << "no ingest->publish latency recorded";
    }
  }
  EXPECT_EQ(ingested, 200.0);

  service.Shutdown();
}

TEST(MetricsJson, EscapesAndRenders) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape(std::string("a\nb\tc")), "a\\nb\\tc");

  MetricsRegistry registry;
  registry.RegisterCounter("x_total", "help", {{"loop", "0"}})->Increment();
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"name\":\"x_total\""), std::string::npos);
  EXPECT_NE(json.find("\"loop\":\"0\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":1"), std::string::npos);
}

}  // namespace
}  // namespace topkmon
