// Piecewise-monotone queries across a kill/restart: the family-4 journal
// encoding (format v2) must carry a PiecewiseFunction through
// AppendRegister, and MonitorService::Open must recover the query into a
// working engine — scoring new arrivals with the same non-monotone
// function the client originally registered.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "core/brute_force_engine.h"
#include "core/piecewise.h"
#include "service/monitor_service.h"
#include "stream/generators.h"
#include "tests/journal/journal_test_util.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

using ::topkmon::testing::ScopedTempDir;
using ::topkmon::testing::Scores;

constexpr int kDim = 2;
constexpr std::size_t kWindow = 200;

/// f(p) = x2 - |x1 - 0.5|: non-monotone in x1, split at the ridge into
/// two monotone linear pieces (the paper's Section 9 construction).
std::shared_ptr<const PiecewiseFunction> RidgeFunction() {
  std::vector<MonotonePiece> pieces;
  pieces.push_back(MonotonePiece{
      Rect(Point{0.0, 0.0}, Point{0.5, 1.0}),
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0},
                                       -0.5)});
  pieces.push_back(MonotonePiece{
      Rect(Point{0.5, 0.0}, Point{1.0, 1.0}),
      std::make_shared<LinearFunction>(std::vector<double>{-1.0, 1.0},
                                       0.5)});
  auto fn = PiecewiseFunction::Create(std::move(pieces));
  EXPECT_TRUE(fn.ok()) << fn.status();
  return *fn;
}

std::function<std::unique_ptr<MonitorEngine>()> BruteFactory() {
  // Grid engines refuse a whole-function piecewise registration (no
  // global monotone directions); BruteForce only needs Score().
  return [] {
    return std::unique_ptr<MonitorEngine>(
        new BruteForceEngine(kDim, WindowSpec::Count(kWindow)));
  };
}

ServiceOptions JournaledOptions(const std::string& dir,
                                bool snapshot_on_shutdown) {
  ServiceOptions opt;
  opt.ingest.slack = 0;
  opt.drain_wait = std::chrono::milliseconds(2);
  opt.journal.dir = dir;
  opt.journal.snapshot_on_shutdown = snapshot_on_shutdown;
  opt.journal.snapshot_every_cycles = 5;
  return opt;
}

void RunPiecewiseRecoveryScenario(bool clean_shutdown_snapshot) {
  ScopedTempDir dir;
  QuerySpec spec;
  spec.k = 4;
  spec.function = RidgeFunction();
  std::vector<std::pair<Timestamp, std::vector<Record>>> applied;
  QueryId query = 0;

  // ---- incarnation 1: register the piecewise query, stream, die -------
  {
    auto service = MonitorService::Open(
        BruteFactory(), JournaledOptions(dir.path(), clean_shutdown_snapshot));
    ASSERT_TRUE(service.ok()) << service.status();
    const auto session = (*service)->OpenSession("pw-client");
    ASSERT_TRUE(session.ok()) << session.status();
    const auto id = (*service)->Register(*session, spec);
    ASSERT_TRUE(id.ok())
        << "piecewise registration refused while journaling: "
        << id.status();
    query = *id;

    (*service)->SetCycleObserver(
        [&applied](Timestamp ts, RecordSpan batch) {
          applied.emplace_back(
              ts, std::vector<Record>(batch.begin(), batch.end()));
        });
    auto gen = MakeGenerator(Distribution::kIndependent, kDim, 321);
    for (Timestamp ts = 1; ts <= 40; ++ts) {
      TOPKMON_ASSERT_OK((*service)->Ingest(gen->NextPoint(), ts));
    }
    TOPKMON_ASSERT_OK((*service)->Flush());
    (*service)->SetCycleObserver(nullptr);
    (*service)->Shutdown();
  }

  // ---- incarnation 2: the query must come back alive ------------------
  auto service = MonitorService::Open(
      BruteFactory(), JournaledOptions(dir.path(), clean_shutdown_snapshot));
  ASSERT_TRUE(service.ok()) << service.status();
  const RecoveryReport& report = (*service)->recovery();
  EXPECT_TRUE(report.recovered);
  ASSERT_EQ(report.live_queries.size(), 1u);
  EXPECT_EQ(report.live_queries[0].spec.id, query);
  // The decoded function is a real PiecewiseFunction, not a lossy stand-in.
  const auto* roundtripped = dynamic_cast<const PiecewiseFunction*>(
      report.live_queries[0].spec.function.get());
  ASSERT_NE(roundtripped, nullptr);
  EXPECT_EQ(roundtripped->pieces().size(), 2u);
  EXPECT_FALSE(roundtripped->IsMonotone());

  // Keep streaming; the recovered query scores the new arrivals with the
  // original ridge function.
  (*service)->SetCycleObserver(
      [&applied](Timestamp ts, RecordSpan batch) {
        applied.emplace_back(
              ts, std::vector<Record>(batch.begin(), batch.end()));
      });
  auto gen = MakeGenerator(Distribution::kIndependent, kDim, 654);
  for (Timestamp ts = 41; ts <= 80; ++ts) {
    TOPKMON_ASSERT_OK((*service)->Ingest(gen->NextPoint(), ts));
  }
  TOPKMON_ASSERT_OK((*service)->Flush());
  (*service)->SetCycleObserver(nullptr);

  // Ground truth: one uninterrupted engine over the exact applied batches.
  BruteForceEngine truth(kDim, WindowSpec::Count(kWindow));
  QuerySpec truth_spec = spec;
  truth_spec.id = query;
  TOPKMON_ASSERT_OK(truth.RegisterQuery(truth_spec));
  for (const auto& [ts, batch] : applied) {
    TOPKMON_ASSERT_OK(truth.ProcessCycle(ts, batch));
  }
  const auto got = (*service)->CurrentResult(query);
  const auto want = truth.CurrentResult(query);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(want.ok());
  ASSERT_FALSE(want->empty());
  EXPECT_EQ(Scores(*got), Scores(*want));
  (*service)->Shutdown();
}

TEST(PiecewiseRecoveryTest, KillRestartReplaysThePiecewiseQuery) {
  RunPiecewiseRecoveryScenario(/*clean_shutdown_snapshot=*/false);
}

TEST(PiecewiseRecoveryTest, ShutdownSnapshotCarriesThePiecewiseQuery) {
  RunPiecewiseRecoveryScenario(/*clean_shutdown_snapshot=*/true);
}

}  // namespace
}  // namespace topkmon
