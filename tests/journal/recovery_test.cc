#include "journal/recovery.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "core/brute_force_engine.h"
#include "core/tma_engine.h"
#include "journal/journal_reader.h"
#include "journal/journal_writer.h"
#include "tests/journal/journal_test_util.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

using ::topkmon::testing::MakeRandomQueries;
using ::topkmon::testing::ScopedTempDir;
using ::topkmon::testing::Scores;

constexpr int kDim = 2;
constexpr std::size_t kWindow = 300;
constexpr std::size_t kBatch = 40;

GridEngineOptions TmaOptions() {
  GridEngineOptions opt;
  opt.dim = kDim;
  opt.window = WindowSpec::Count(kWindow);
  opt.cell_budget = 256;
  return opt;
}

/// Drives `engine` (and mirrors every append into `writer`, when given)
/// through deterministic cycles [first, last], taking writer snapshots
/// whenever due.
void DriveCycles(MonitorEngine& engine, CycleJournalWriter* writer,
                 RecordSource& source, Timestamp first, Timestamp last,
                 const std::vector<JournaledQuery>& live) {
  for (Timestamp ts = first; ts <= last; ++ts) {
    const std::vector<Record> batch = source.NextBatch(kBatch, ts);
    if (writer != nullptr) {
      TOPKMON_ASSERT_OK(writer->AppendCycle(ts, batch));
    }
    TOPKMON_ASSERT_OK(engine.ProcessCycle(ts, batch));
    if (writer != nullptr && writer->SnapshotDue()) {
      auto engine_snap = engine.SnapshotState();
      ASSERT_TRUE(engine_snap.ok()) << engine_snap.status();
      JournalSnapshot snap;
      snap.last_cycle_ts = engine_snap->last_cycle;
      snap.window = std::move(engine_snap->window);
      snap.next_record_id =
          snap.window.empty() ? 0 : snap.window.back().id + 1;
      snap.next_query_id = 100;
      snap.live_queries = live;
      TOPKMON_ASSERT_OK(writer->RotateWithSnapshot(snap));
    }
  }
}

std::vector<JournaledQuery> JournaledQueries(
    const std::vector<QuerySpec>& specs) {
  std::vector<JournaledQuery> out;
  for (const QuerySpec& spec : specs) out.push_back({spec, "client"});
  return out;
}

/// The acceptance scenario at engine level: run a journaled TMA engine,
/// "crash" it mid-stream, recover into a fresh engine, and drive the
/// post-crash stream through both the recovered engine and an
/// uninterrupted BruteForceEngine. Top-k results must agree after every
/// cycle, and the two delta streams must reconstruct identical results
/// cycle-for-cycle. Exercised both with mid-stream snapshots (recovery =
/// snapshot + tail replay) and without (recovery = full replay).
void RunCrashRecoveryScenario(std::uint64_t snapshot_every_cycles) {
  ScopedTempDir dir;
  const Timestamp crash_at = 23;
  const Timestamp end_at = 40;
  const auto specs = MakeRandomQueries(kDim, 4, 5, 1234);
  const std::vector<JournaledQuery> live = JournaledQueries(specs);

  // Uninterrupted ground truth over the identical stream.
  BruteForceEngine truth(kDim, WindowSpec::Count(kWindow));
  RecordSource truth_source(MakeGenerator(Distribution::kIndependent, kDim, 5));
  for (const QuerySpec& spec : specs) {
    TOPKMON_ASSERT_OK(truth.RegisterQuery(spec));
  }

  // Journaled engine, crashed after `crash_at` cycles (the writer is
  // dropped without a final snapshot, exactly like a process kill; the
  // cycle records up to the crash are on disk).
  {
    JournalOptions options;
    options.dir = dir.path();
    options.snapshot_every_cycles = snapshot_every_cycles;
    auto writer = CycleJournalWriter::Open(options, JournalSnapshot{});
    ASSERT_TRUE(writer.ok()) << writer.status();
    TmaEngine live_engine(TmaOptions());
    for (const JournaledQuery& q : live) {
      TOPKMON_ASSERT_OK((*writer)->AppendRegister(q));
      TOPKMON_ASSERT_OK(live_engine.RegisterQuery(q.spec));
    }
    RecordSource source(MakeGenerator(Distribution::kIndependent, kDim, 5));
    DriveCycles(live_engine, writer->get(), source, 1, crash_at, live);
  }
  DriveCycles(truth, nullptr, truth_source, 1, crash_at, live);

  // Recover into a fresh engine.
  TmaEngine recovered(TmaOptions());
  auto report = RecoveryDriver::Replay(dir.path(), recovered);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->recovered);
  EXPECT_EQ(report->last_cycle_ts, crash_at);
  EXPECT_EQ(report->live_queries.size(), specs.size());
  EXPECT_FALSE(report->torn_tail);
  EXPECT_FALSE(report->corrupt_record);
  EXPECT_EQ(recovered.WindowSize(), truth.WindowSize());
  if (snapshot_every_cycles > 0) {
    // Rotation happened mid-stream: bounded replay from the last anchor.
    EXPECT_LT(report->cycles_replayed,
              static_cast<std::uint64_t>(crash_at));
  } else {
    EXPECT_EQ(report->cycles_replayed,
              static_cast<std::uint64_t>(crash_at));
  }

  // The recovered state already answers every query like the truth does.
  for (const QuerySpec& spec : specs) {
    const auto got = recovered.CurrentResult(spec.id);
    const auto want = truth.CurrentResult(spec.id);
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_EQ(Scores(*got), Scores(*want)) << "query " << spec.id;
  }

  // Post-crash: both engines report deltas from the same starting line.
  std::map<QueryId, std::map<RecordId, double>> got_view;
  std::map<QueryId, std::map<RecordId, double>> want_view;
  auto apply = [](std::map<QueryId, std::map<RecordId, double>>& views,
                  const ResultDelta& d) {
    auto& view = views[d.query];
    for (const ResultEntry& e : d.removed) view.erase(e.id);
    for (const ResultEntry& e : d.added) view.emplace(e.id, e.score);
  };
  recovered.SetDeltaCallback(
      [&](const ResultDelta& d) { apply(got_view, d); });
  truth.SetDeltaCallback([&](const ResultDelta& d) { apply(want_view, d); });

  RecordSource recovered_source(
      MakeGenerator(Distribution::kIndependent, kDim, 5));
  for (Timestamp ts = 1; ts <= crash_at; ++ts) {
    recovered_source.NextBatch(kBatch, ts);  // skip to the crash point
  }
  for (Timestamp ts = crash_at + 1; ts <= end_at; ++ts) {
    const std::vector<Record> batch = recovered_source.NextBatch(kBatch, ts);
    TOPKMON_ASSERT_OK(recovered.ProcessCycle(ts, batch));
    TOPKMON_ASSERT_OK(truth.ProcessCycle(ts, batch));
    for (const QuerySpec& spec : specs) {
      // Snapshot reads agree cycle-for-cycle...
      const auto got = recovered.CurrentResult(spec.id);
      const auto want = truth.CurrentResult(spec.id);
      ASSERT_TRUE(got.ok() && want.ok());
      EXPECT_EQ(Scores(*got), Scores(*want))
          << "query " << spec.id << " at cycle " << ts;
      // ... and so do the delta-reconstructed client views.
      std::vector<double> got_scores, want_scores;
      for (const auto& [id, score] : got_view[spec.id]) {
        (void)id;
        got_scores.push_back(score);
      }
      for (const auto& [id, score] : want_view[spec.id]) {
        (void)id;
        want_scores.push_back(score);
      }
      std::sort(got_scores.begin(), got_scores.end());
      std::sort(want_scores.begin(), want_scores.end());
      EXPECT_EQ(got_scores, want_scores)
          << "delta views diverge for query " << spec.id << " at cycle "
          << ts;
    }
  }
}

TEST(RecoveryTest, FullReplayMatchesUninterruptedRun) {
  RunCrashRecoveryScenario(/*snapshot_every_cycles=*/0);
}

TEST(RecoveryTest, SnapshotPlusTailReplayMatchesUninterruptedRun) {
  RunCrashRecoveryScenario(/*snapshot_every_cycles=*/7);
}

TEST(RecoveryTest, EmptyOrMissingJournalDirIsAFreshStart) {
  ScopedTempDir dir;
  TmaEngine engine(TmaOptions());
  auto report = RecoveryDriver::Replay(dir.path(), engine);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->recovered);
  EXPECT_EQ(report->next_record_id, 0u);
  EXPECT_EQ(report->next_query_id, 1u);
  EXPECT_EQ(engine.WindowSize(), 0u);

  auto missing =
      RecoveryDriver::Replay("/tmp/topkmon-no-such-journal-999", engine);
  ASSERT_TRUE(missing.ok()) << missing.status();
  EXPECT_FALSE(missing->recovered);
}

/// Writes a small journal (1-record batches, no rotation) and returns the
/// segment path plus the number of cycles written.
std::string WriteSmallJournal(const std::string& dir, int cycles) {
  JournalOptions options;
  options.dir = dir;
  options.snapshot_every_cycles = 0;
  auto writer = CycleJournalWriter::Open(options, JournalSnapshot{});
  EXPECT_TRUE(writer.ok());
  for (Timestamp ts = 1; ts <= cycles; ++ts) {
    std::vector<Record> batch;
    batch.emplace_back(static_cast<RecordId>(ts - 1), Point{0.5, 0.5}, ts);
    EXPECT_TRUE((*writer)->AppendCycle(ts, batch).ok());
  }
  EXPECT_TRUE((*writer)->Close().ok());
  return (*writer)->current_segment_path();
}

TEST(RecoveryTest, TornFinalRecordIsTruncatedAndThePrefixReplays) {
  ScopedTempDir dir;
  const std::string path = WriteSmallJournal(dir.path(), 10);

  // Chop a few bytes off the end: the classic crash-mid-append tail.
  struct stat st;
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  ASSERT_EQ(::truncate(path.c_str(), st.st_size - 5), 0);

  TmaEngine engine(TmaOptions());
  auto report = RecoveryDriver::Replay(dir.path(), engine);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->recovered);
  EXPECT_TRUE(report->torn_tail);
  EXPECT_FALSE(report->corrupt_record);
  EXPECT_EQ(report->cycles_replayed, 9u) << "the torn 10th cycle is dropped";
  EXPECT_EQ(report->last_cycle_ts, 9);
  EXPECT_GT(report->tail_bytes_dropped, 0u);
  EXPECT_EQ(engine.WindowSize(), 9u);
}

TEST(RecoveryTest, CorruptCrcMidSegmentStopsReplayAtTheDamage) {
  ScopedTempDir dir;
  const std::string path = WriteSmallJournal(dir.path(), 10);

  // Flip one byte halfway into the file — inside some cycle record's
  // frame, well before the last one.
  struct stat st;
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  const long target = st.st_size / 2;
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, target, SEEK_SET), 0);
    const int orig = std::fgetc(f);
    ASSERT_NE(orig, EOF);
    ASSERT_EQ(std::fseek(f, target, SEEK_SET), 0);
    std::fputc(orig ^ 0xFF, f);
    std::fclose(f);
  }

  // Independently count how many records a reader still trusts.
  std::uint64_t good_cycles = 0;
  {
    auto reader = CycleJournalReader::Open(path);
    ASSERT_TRUE(reader.ok());
    (void)(*reader)->Next();  // anchor snapshot
    while (true) {
      auto outcome = (*reader)->Next();
      if (outcome.kind != CycleJournalReader::Kind::kRecord) {
        EXPECT_EQ(outcome.kind, CycleJournalReader::Kind::kCorrupt);
        break;
      }
      ++good_cycles;
    }
  }
  ASSERT_LT(good_cycles, 10u);

  TmaEngine engine(TmaOptions());
  auto report = RecoveryDriver::Replay(dir.path(), engine);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->recovered);
  EXPECT_TRUE(report->corrupt_record);
  EXPECT_FALSE(report->torn_tail);
  EXPECT_EQ(report->cycles_replayed, good_cycles);
  EXPECT_GT(report->tail_bytes_dropped, 0u);
  EXPECT_EQ(engine.WindowSize(), good_cycles);
}

TEST(RecoveryTest, QueryLifecycleEventsReplay) {
  ScopedTempDir dir;
  const auto specs = MakeRandomQueries(kDim, 3, 4, 77);
  {
    JournalOptions options;
    options.dir = dir.path();
    auto writer = CycleJournalWriter::Open(options, JournalSnapshot{});
    ASSERT_TRUE(writer.ok());
    // Register all three, run a cycle, unregister the second.
    for (const QuerySpec& spec : specs) {
      TOPKMON_ASSERT_OK((*writer)->AppendRegister({spec, "alice"}));
    }
    std::vector<Record> batch;
    for (RecordId id = 0; id < 20; ++id) {
      batch.emplace_back(id, Point{0.1 * static_cast<double>(id % 10),
                                   0.5},
                         1);
    }
    TOPKMON_ASSERT_OK((*writer)->AppendCycle(1, batch));
    TOPKMON_ASSERT_OK((*writer)->AppendUnregister(specs[1].id));
    TOPKMON_ASSERT_OK((*writer)->Close());
  }

  TmaEngine engine(TmaOptions());
  auto report = RecoveryDriver::Replay(dir.path(), engine);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->registers_replayed, 3u);
  EXPECT_EQ(report->unregisters_replayed, 1u);
  ASSERT_EQ(report->live_queries.size(), 2u);
  EXPECT_EQ(report->live_queries[0].spec.id, specs[0].id);
  EXPECT_EQ(report->live_queries[1].spec.id, specs[2].id);
  EXPECT_EQ(report->next_query_id,
            static_cast<std::uint64_t>(specs[2].id) + 1);
  EXPECT_TRUE(engine.CurrentResult(specs[0].id).ok());
  EXPECT_EQ(engine.CurrentResult(specs[1].id).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(engine.CurrentResult(specs[2].id).ok());
}

TEST(RecoveryTest, ReplayIntoAUsedEngineIsRefused) {
  ScopedTempDir dir;
  WriteSmallJournal(dir.path(), 3);
  TmaEngine engine(TmaOptions());
  std::vector<Record> batch;
  batch.emplace_back(0, Point{0.5, 0.5}, 1);
  TOPKMON_ASSERT_OK(engine.ProcessCycle(1, batch));
  auto report = RecoveryDriver::Replay(dir.path(), engine);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RecoveryTest, DimensionMismatchIsRefusedBeforeAnythingIsApplied) {
  ScopedTempDir dir;
  {
    // A journal whose anchor snapshot carries a 2-d window record.
    JournalOptions options;
    options.dir = dir.path();
    JournalSnapshot anchor;
    anchor.last_cycle_ts = 1;
    anchor.next_record_id = 1;
    anchor.window.emplace_back(0, Point{0.5, 0.5}, 1);
    auto writer = CycleJournalWriter::Open(options, anchor);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  GridEngineOptions opt = TmaOptions();
  opt.dim = 3;
  TmaEngine engine(opt);
  auto report = RecoveryDriver::Replay(dir.path(), engine);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.WindowSize(), 0u);
}

}  // namespace
}  // namespace topkmon
