#include "journal/recovery.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/brute_force_engine.h"
#include "core/tma_engine.h"
#include "journal/journal_reader.h"
#include "journal/journal_writer.h"
#include "tests/journal/journal_test_util.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

using ::topkmon::testing::MakeRandomQueries;
using ::topkmon::testing::ScopedTempDir;
using ::topkmon::testing::Scores;

constexpr int kDim = 2;
constexpr std::size_t kWindow = 300;
constexpr std::size_t kBatch = 40;

GridEngineOptions TmaOptions() {
  GridEngineOptions opt;
  opt.dim = kDim;
  opt.window = WindowSpec::Count(kWindow);
  opt.cell_budget = 256;
  return opt;
}

/// Drives `engine` (and mirrors every append into `writer`, when given)
/// through deterministic cycles [first, last], taking writer snapshots
/// whenever due.
void DriveCycles(MonitorEngine& engine, CycleJournalWriter* writer,
                 RecordSource& source, Timestamp first, Timestamp last,
                 const std::vector<JournaledQuery>& live) {
  for (Timestamp ts = first; ts <= last; ++ts) {
    const std::vector<Record> batch = source.NextBatch(kBatch, ts);
    if (writer != nullptr) {
      TOPKMON_ASSERT_OK(writer->AppendCycle(ts, batch));
    }
    TOPKMON_ASSERT_OK(engine.ProcessCycle(ts, batch));
    if (writer != nullptr && writer->SnapshotDue()) {
      auto engine_snap = engine.SnapshotState();
      ASSERT_TRUE(engine_snap.ok()) << engine_snap.status();
      JournalSnapshot snap;
      snap.last_cycle_ts = engine_snap->last_cycle;
      snap.window = std::move(engine_snap->window);
      snap.next_record_id =
          snap.window.empty() ? 0 : snap.window.back().id + 1;
      snap.next_query_id = 100;
      snap.live_queries = live;
      TOPKMON_ASSERT_OK(writer->RotateWithSnapshot(snap));
    }
  }
}

std::vector<JournaledQuery> JournaledQueries(
    const std::vector<QuerySpec>& specs) {
  std::vector<JournaledQuery> out;
  for (const QuerySpec& spec : specs) out.push_back({spec, "client"});
  return out;
}

/// The acceptance scenario at engine level: run a journaled TMA engine,
/// "crash" it mid-stream, recover into a fresh engine, and drive the
/// post-crash stream through both the recovered engine and an
/// uninterrupted BruteForceEngine. Top-k results must agree after every
/// cycle, and the two delta streams must reconstruct identical results
/// cycle-for-cycle. Exercised both with mid-stream snapshots (recovery =
/// snapshot + tail replay) and without (recovery = full replay).
void RunCrashRecoveryScenario(std::uint64_t snapshot_every_cycles) {
  ScopedTempDir dir;
  const Timestamp crash_at = 23;
  const Timestamp end_at = 40;
  const auto specs = MakeRandomQueries(kDim, 4, 5, 1234);
  const std::vector<JournaledQuery> live = JournaledQueries(specs);

  // Uninterrupted ground truth over the identical stream.
  BruteForceEngine truth(kDim, WindowSpec::Count(kWindow));
  RecordSource truth_source(MakeGenerator(Distribution::kIndependent, kDim, 5));
  for (const QuerySpec& spec : specs) {
    TOPKMON_ASSERT_OK(truth.RegisterQuery(spec));
  }

  // Journaled engine, crashed after `crash_at` cycles (the writer is
  // dropped without a final snapshot, exactly like a process kill; the
  // cycle records up to the crash are on disk).
  {
    JournalOptions options;
    options.dir = dir.path();
    options.snapshot_every_cycles = snapshot_every_cycles;
    auto writer = CycleJournalWriter::Open(options, JournalSnapshot{});
    ASSERT_TRUE(writer.ok()) << writer.status();
    TmaEngine live_engine(TmaOptions());
    for (const JournaledQuery& q : live) {
      TOPKMON_ASSERT_OK((*writer)->AppendRegister(q));
      TOPKMON_ASSERT_OK(live_engine.RegisterQuery(q.spec));
    }
    RecordSource source(MakeGenerator(Distribution::kIndependent, kDim, 5));
    DriveCycles(live_engine, writer->get(), source, 1, crash_at, live);
  }
  DriveCycles(truth, nullptr, truth_source, 1, crash_at, live);

  // Recover into a fresh engine.
  TmaEngine recovered(TmaOptions());
  auto report = RecoveryDriver::Replay(dir.path(), recovered);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->recovered);
  EXPECT_EQ(report->last_cycle_ts, crash_at);
  EXPECT_EQ(report->live_queries.size(), specs.size());
  EXPECT_FALSE(report->torn_tail);
  EXPECT_FALSE(report->corrupt_record);
  EXPECT_EQ(recovered.WindowSize(), truth.WindowSize());
  if (snapshot_every_cycles > 0) {
    // Rotation happened mid-stream: bounded replay from the last anchor.
    EXPECT_LT(report->cycles_replayed,
              static_cast<std::uint64_t>(crash_at));
  } else {
    EXPECT_EQ(report->cycles_replayed,
              static_cast<std::uint64_t>(crash_at));
  }

  // The recovered state already answers every query like the truth does.
  for (const QuerySpec& spec : specs) {
    const auto got = recovered.CurrentResult(spec.id);
    const auto want = truth.CurrentResult(spec.id);
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_EQ(Scores(*got), Scores(*want)) << "query " << spec.id;
  }

  // Post-crash: both engines report deltas from the same starting line.
  std::map<QueryId, std::map<RecordId, double>> got_view;
  std::map<QueryId, std::map<RecordId, double>> want_view;
  auto apply = [](std::map<QueryId, std::map<RecordId, double>>& views,
                  const ResultDelta& d) {
    auto& view = views[d.query];
    for (const ResultEntry& e : d.removed) view.erase(e.id);
    for (const ResultEntry& e : d.added) view.emplace(e.id, e.score);
  };
  recovered.SetDeltaCallback(
      [&](const ResultDelta& d) { apply(got_view, d); });
  truth.SetDeltaCallback([&](const ResultDelta& d) { apply(want_view, d); });

  RecordSource recovered_source(
      MakeGenerator(Distribution::kIndependent, kDim, 5));
  for (Timestamp ts = 1; ts <= crash_at; ++ts) {
    recovered_source.NextBatch(kBatch, ts);  // skip to the crash point
  }
  for (Timestamp ts = crash_at + 1; ts <= end_at; ++ts) {
    const std::vector<Record> batch = recovered_source.NextBatch(kBatch, ts);
    TOPKMON_ASSERT_OK(recovered.ProcessCycle(ts, batch));
    TOPKMON_ASSERT_OK(truth.ProcessCycle(ts, batch));
    for (const QuerySpec& spec : specs) {
      // Snapshot reads agree cycle-for-cycle...
      const auto got = recovered.CurrentResult(spec.id);
      const auto want = truth.CurrentResult(spec.id);
      ASSERT_TRUE(got.ok() && want.ok());
      EXPECT_EQ(Scores(*got), Scores(*want))
          << "query " << spec.id << " at cycle " << ts;
      // ... and so do the delta-reconstructed client views.
      std::vector<double> got_scores, want_scores;
      for (const auto& [id, score] : got_view[spec.id]) {
        (void)id;
        got_scores.push_back(score);
      }
      for (const auto& [id, score] : want_view[spec.id]) {
        (void)id;
        want_scores.push_back(score);
      }
      std::sort(got_scores.begin(), got_scores.end());
      std::sort(want_scores.begin(), want_scores.end());
      EXPECT_EQ(got_scores, want_scores)
          << "delta views diverge for query " << spec.id << " at cycle "
          << ts;
    }
  }
}

TEST(RecoveryTest, FullReplayMatchesUninterruptedRun) {
  RunCrashRecoveryScenario(/*snapshot_every_cycles=*/0);
}

TEST(RecoveryTest, SnapshotPlusTailReplayMatchesUninterruptedRun) {
  RunCrashRecoveryScenario(/*snapshot_every_cycles=*/7);
}

TEST(RecoveryTest, EmptyOrMissingJournalDirIsAFreshStart) {
  ScopedTempDir dir;
  TmaEngine engine(TmaOptions());
  auto report = RecoveryDriver::Replay(dir.path(), engine);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->recovered);
  EXPECT_EQ(report->next_record_id, 0u);
  EXPECT_EQ(report->next_query_id, 1u);
  EXPECT_EQ(engine.WindowSize(), 0u);

  auto missing =
      RecoveryDriver::Replay("/tmp/topkmon-no-such-journal-999", engine);
  ASSERT_TRUE(missing.ok()) << missing.status();
  EXPECT_FALSE(missing->recovered);
}

/// Writes a small journal (1-record batches, no rotation) and returns the
/// segment path plus the number of cycles written.
std::string WriteSmallJournal(const std::string& dir, int cycles) {
  JournalOptions options;
  options.dir = dir;
  options.snapshot_every_cycles = 0;
  auto writer = CycleJournalWriter::Open(options, JournalSnapshot{});
  EXPECT_TRUE(writer.ok());
  for (Timestamp ts = 1; ts <= cycles; ++ts) {
    std::vector<Record> batch;
    batch.emplace_back(static_cast<RecordId>(ts - 1), Point{0.5, 0.5}, ts);
    EXPECT_TRUE((*writer)->AppendCycle(ts, batch).ok());
  }
  EXPECT_TRUE((*writer)->Close().ok());
  return (*writer)->current_segment_path();
}

TEST(RecoveryTest, TornFinalRecordIsTruncatedAndThePrefixReplays) {
  ScopedTempDir dir;
  const std::string path = WriteSmallJournal(dir.path(), 10);

  // Chop a few bytes off the end: the classic crash-mid-append tail.
  struct stat st;
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  ASSERT_EQ(::truncate(path.c_str(), st.st_size - 5), 0);

  TmaEngine engine(TmaOptions());
  auto report = RecoveryDriver::Replay(dir.path(), engine);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->recovered);
  EXPECT_TRUE(report->torn_tail);
  EXPECT_FALSE(report->corrupt_record);
  EXPECT_EQ(report->cycles_replayed, 9u) << "the torn 10th cycle is dropped";
  EXPECT_EQ(report->last_cycle_ts, 9);
  EXPECT_GT(report->tail_bytes_dropped, 0u);
  EXPECT_EQ(engine.WindowSize(), 9u);
}

TEST(RecoveryTest, CorruptCrcMidSegmentStopsReplayAtTheDamage) {
  ScopedTempDir dir;
  const std::string path = WriteSmallJournal(dir.path(), 10);

  // Flip one byte halfway into the file — inside some cycle record's
  // frame, well before the last one.
  struct stat st;
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  const long target = st.st_size / 2;
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, target, SEEK_SET), 0);
    const int orig = std::fgetc(f);
    ASSERT_NE(orig, EOF);
    ASSERT_EQ(std::fseek(f, target, SEEK_SET), 0);
    std::fputc(orig ^ 0xFF, f);
    std::fclose(f);
  }

  // Independently count how many records a reader still trusts.
  std::uint64_t good_cycles = 0;
  {
    auto reader = CycleJournalReader::Open(path);
    ASSERT_TRUE(reader.ok());
    (void)(*reader)->Next();  // anchor snapshot
    while (true) {
      auto outcome = (*reader)->Next();
      if (outcome.kind != CycleJournalReader::Kind::kRecord) {
        EXPECT_EQ(outcome.kind, CycleJournalReader::Kind::kCorrupt);
        break;
      }
      ++good_cycles;
    }
  }
  ASSERT_LT(good_cycles, 10u);

  TmaEngine engine(TmaOptions());
  auto report = RecoveryDriver::Replay(dir.path(), engine);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->recovered);
  EXPECT_TRUE(report->corrupt_record);
  EXPECT_FALSE(report->torn_tail);
  EXPECT_EQ(report->cycles_replayed, good_cycles);
  EXPECT_GT(report->tail_bytes_dropped, 0u);
  EXPECT_EQ(engine.WindowSize(), good_cycles);
}

TEST(RecoveryTest, QueryLifecycleEventsReplay) {
  ScopedTempDir dir;
  const auto specs = MakeRandomQueries(kDim, 3, 4, 77);
  {
    JournalOptions options;
    options.dir = dir.path();
    auto writer = CycleJournalWriter::Open(options, JournalSnapshot{});
    ASSERT_TRUE(writer.ok());
    // Register all three, run a cycle, unregister the second.
    for (const QuerySpec& spec : specs) {
      TOPKMON_ASSERT_OK((*writer)->AppendRegister({spec, "alice"}));
    }
    std::vector<Record> batch;
    for (RecordId id = 0; id < 20; ++id) {
      batch.emplace_back(id, Point{0.1 * static_cast<double>(id % 10),
                                   0.5},
                         1);
    }
    TOPKMON_ASSERT_OK((*writer)->AppendCycle(1, batch));
    TOPKMON_ASSERT_OK((*writer)->AppendUnregister(specs[1].id));
    TOPKMON_ASSERT_OK((*writer)->Close());
  }

  TmaEngine engine(TmaOptions());
  auto report = RecoveryDriver::Replay(dir.path(), engine);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->registers_replayed, 3u);
  EXPECT_EQ(report->unregisters_replayed, 1u);
  ASSERT_EQ(report->live_queries.size(), 2u);
  EXPECT_EQ(report->live_queries[0].spec.id, specs[0].id);
  EXPECT_EQ(report->live_queries[1].spec.id, specs[2].id);
  EXPECT_EQ(report->next_query_id,
            static_cast<std::uint64_t>(specs[2].id) + 1);
  EXPECT_TRUE(engine.CurrentResult(specs[0].id).ok());
  EXPECT_EQ(engine.CurrentResult(specs[1].id).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(engine.CurrentResult(specs[2].id).ok());
}

// ---- exhaustive fault injection ---------------------------------------
//
// Recovery's contract under arbitrary single-point damage: every byte
// flip and every truncation of a segment must land in one of the clean
// outcomes — full replay (damage in ignored bytes), classified
// torn-tail/corrupt-record prefix replay, a skipped segment (damaged
// header or anchor → fresh start), or an explicit error — and the
// replayed window must always be an exact prefix of the undamaged run.
// Never a crash, never silently wrong data.

struct FaultTruth {
  std::string segment_path;
  std::string pristine;            ///< undamaged segment bytes
  std::vector<Record> window;      ///< undamaged final window (id order)
  std::uint64_t cycles = 0;
  std::size_t records_per_cycle = 0;
  /// File offsets that end a complete frame. A truncation at one of
  /// these is byte-identical to a journal that cleanly wrote fewer
  /// records — the only damage no tail-scanning WAL can flag.
  std::set<std::size_t> frame_boundaries;
};

void ComputeFrameBoundaries(FaultTruth* truth) {
  std::size_t off = 16;  // segment header
  while (off + 8 <= truth->pristine.size()) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(static_cast<unsigned char>(
                 truth->pristine[off + static_cast<std::size_t>(i)]))
             << (8 * i);
    }
    off += 8 + len;
    if (off > truth->pristine.size()) break;
    truth->frame_boundaries.insert(off);
  }
}

/// Writes a small journal (1 register + `cycles` 2-record cycles) and
/// returns its bytes plus the ground-truth window.
FaultTruth WriteFaultJournal(const std::string& dir, int cycles) {
  FaultTruth truth;
  truth.cycles = static_cast<std::uint64_t>(cycles);
  truth.records_per_cycle = 2;
  JournalOptions options;
  options.dir = dir;
  options.snapshot_every_cycles = 0;
  auto writer = CycleJournalWriter::Open(options, JournalSnapshot{});
  EXPECT_TRUE(writer.ok());
  const auto specs = MakeRandomQueries(kDim, 1, 3, 55);
  EXPECT_TRUE((*writer)->AppendRegister({specs[0], "alice"}).ok());
  RecordId id = 0;
  for (Timestamp ts = 1; ts <= cycles; ++ts) {
    std::vector<Record> batch;
    for (std::size_t r = 0; r < truth.records_per_cycle; ++r) {
      batch.emplace_back(id, Point{0.05 * static_cast<double>(id % 20),
                                   0.07 * static_cast<double>(id % 13)},
                         ts);
      truth.window.push_back(batch.back());
      ++id;
    }
    EXPECT_TRUE((*writer)->AppendCycle(ts, batch).ok());
  }
  EXPECT_TRUE((*writer)->Close().ok());
  truth.segment_path = (*writer)->current_segment_path();
  std::FILE* f = std::fopen(truth.segment_path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    truth.pristine.append(buf, n);
  }
  std::fclose(f);
  ComputeFrameBoundaries(&truth);
  return truth;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// Recovers the (damaged) journal in `dir` and applies the common safety
/// assertions. `damaged_size` is the mutated file's length (a prefix
/// replay may end flag-free only when that length is a frame boundary);
/// `what` labels the mutation for failure messages.
void ExpectSafeRecovery(const std::string& dir, const FaultTruth& truth,
                        std::size_t damaged_size, const std::string& what) {
  TmaEngine engine(TmaOptions());
  const auto report = RecoveryDriver::Replay(dir, engine);
  if (!report.ok()) {
    // An explicit error must leave the engine untouched (operators can
    // retry against the intact bytes); I/O-level failures land here.
    EXPECT_EQ(engine.WindowSize(), 0u) << what;
    return;
  }
  if (!report->recovered) {
    // Damaged header or anchor snapshot: the segment is skipped whole —
    // a fresh start, never a partially trusted one.
    EXPECT_EQ(report->segments_skipped, 1u) << what;
    EXPECT_EQ(engine.WindowSize(), 0u) << what;
    return;
  }
  // Prefix replay: exactly the cycles before the damage, flagged as
  // torn/corrupt unless the replay is complete (then the damage was in
  // bytes the format ignores, e.g. the reserved header field).
  ASSERT_LE(report->cycles_replayed, truth.cycles) << what;
  if (report->cycles_replayed < truth.cycles ||
      report->registers_replayed == 0) {
    // Data was dropped: that must be classified — except for the one
    // undetectable case, a truncation landing exactly on a frame
    // boundary (indistinguishable from a journal that wrote less).
    EXPECT_TRUE(report->torn_tail || report->corrupt_record ||
                truth.frame_boundaries.count(damaged_size) > 0)
        << what << ": dropped data without classifying the damage";
  }
  const auto snapshot = engine.SnapshotState();
  ASSERT_TRUE(snapshot.ok()) << what;
  const std::size_t expect_records =
      static_cast<std::size_t>(report->cycles_replayed) *
      truth.records_per_cycle;
  ASSERT_EQ(snapshot->window.size(), expect_records) << what;
  for (std::size_t i = 0; i < snapshot->window.size(); ++i) {
    const Record& got = snapshot->window[i];
    const Record& want = truth.window[i];
    ASSERT_EQ(got.id, want.id) << what << " record " << i;
    ASSERT_EQ(got.arrival, want.arrival) << what << " record " << i;
    for (int d = 0; d < kDim; ++d) {
      ASSERT_EQ(got.position[d], want.position[d])
          << what << " record " << i;
    }
  }
}

TEST(RecoveryFaultInjectionTest, EveryByteFlipIsClassifiedAndSafe) {
  ScopedTempDir dir;
  const FaultTruth truth = WriteFaultJournal(dir.path(), 6);
  ASSERT_FALSE(truth.pristine.empty());
  for (std::size_t i = 0; i < truth.pristine.size(); ++i) {
    std::string damaged = truth.pristine;
    damaged[i] = static_cast<char>(damaged[i] ^ 0xFF);
    WriteBytes(truth.segment_path, damaged);
    // A flipped file keeps its full length: a flip is never allowed to
    // masquerade as a clean shorter journal, so the boundary exemption
    // in ExpectSafeRecovery cannot fire for a partial replay here
    // (pristine.size() is a boundary, but then nothing was dropped).
    ExpectSafeRecovery(dir.path(), truth, /*damaged_size=*/0,
                       "flip at byte " + std::to_string(i));
  }
}

TEST(RecoveryFaultInjectionTest, EveryTruncationIsClassifiedAndSafe) {
  ScopedTempDir dir;
  const FaultTruth truth = WriteFaultJournal(dir.path(), 6);
  ASSERT_FALSE(truth.pristine.empty());
  for (std::size_t len = 0; len < truth.pristine.size(); ++len) {
    WriteBytes(truth.segment_path, truth.pristine.substr(0, len));
    ExpectSafeRecovery(dir.path(), truth, len,
                       "truncation to " + std::to_string(len) + " bytes");
  }
}

TEST(RecoveryFaultInjectionTest, CombinedFlipPlusTruncationSpotChecks) {
  // A sparser sweep of two-fault combinations (flip then truncate): the
  // classification contract must hold under compound damage too.
  ScopedTempDir dir;
  const FaultTruth truth = WriteFaultJournal(dir.path(), 6);
  for (std::size_t i = 7; i < truth.pristine.size(); i += 23) {
    for (std::size_t len = truth.pristine.size() / 3;
         len < truth.pristine.size(); len += 41) {
      std::string damaged = truth.pristine.substr(0, len);
      if (i < damaged.size()) {
        damaged[i] = static_cast<char>(damaged[i] ^ 0x10);
      }
      WriteBytes(truth.segment_path, damaged);
      ExpectSafeRecovery(dir.path(), truth, len,
                         "flip@" + std::to_string(i) + "+trunc@" +
                             std::to_string(len));
    }
  }
}

TEST(RecoveryTest, ReplayIntoAUsedEngineIsRefused) {
  ScopedTempDir dir;
  WriteSmallJournal(dir.path(), 3);
  TmaEngine engine(TmaOptions());
  std::vector<Record> batch;
  batch.emplace_back(0, Point{0.5, 0.5}, 1);
  TOPKMON_ASSERT_OK(engine.ProcessCycle(1, batch));
  auto report = RecoveryDriver::Replay(dir.path(), engine);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RecoveryTest, DimensionMismatchIsRefusedBeforeAnythingIsApplied) {
  ScopedTempDir dir;
  {
    // A journal whose anchor snapshot carries a 2-d window record.
    JournalOptions options;
    options.dir = dir.path();
    JournalSnapshot anchor;
    anchor.last_cycle_ts = 1;
    anchor.next_record_id = 1;
    anchor.window.emplace_back(0, Point{0.5, 0.5}, 1);
    auto writer = CycleJournalWriter::Open(options, anchor);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  GridEngineOptions opt = TmaOptions();
  opt.dim = 3;
  TmaEngine engine(opt);
  auto report = RecoveryDriver::Replay(dir.path(), engine);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.WindowSize(), 0u);
}

}  // namespace
}  // namespace topkmon
