// Shared helpers for the journal test suite.

#ifndef TOPKMON_TESTS_JOURNAL_JOURNAL_TEST_UTIL_H_
#define TOPKMON_TESTS_JOURNAL_JOURNAL_TEST_UTIL_H_

#include <dirent.h>
#include <stdlib.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

namespace topkmon {
namespace testing {

/// A mkdtemp-backed directory removed (with its files) on destruction.
class ScopedTempDir {
 public:
  ScopedTempDir() {
    char tmpl[] = "/tmp/topkmon_journal_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    path_ = made != nullptr ? made : "";
  }

  ~ScopedTempDir() {
    if (path_.empty()) return;
    if (DIR* d = ::opendir(path_.c_str())) {
      while (const dirent* entry = ::readdir(d)) {
        if (std::strcmp(entry->d_name, ".") == 0 ||
            std::strcmp(entry->d_name, "..") == 0) {
          continue;
        }
        ::unlink((path_ + "/" + entry->d_name).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(path_.c_str());
  }

  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  const std::string& path() const { return path_; }

  std::vector<std::string> Files() const {
    std::vector<std::string> out;
    if (DIR* d = ::opendir(path_.c_str())) {
      while (const dirent* entry = ::readdir(d)) {
        if (std::strcmp(entry->d_name, ".") == 0 ||
            std::strcmp(entry->d_name, "..") == 0) {
          continue;
        }
        out.emplace_back(entry->d_name);
      }
      ::closedir(d);
    }
    return out;
  }

 private:
  std::string path_;
};

}  // namespace testing
}  // namespace topkmon

#endif  // TOPKMON_TESTS_JOURNAL_JOURNAL_TEST_UTIL_H_
