#include "journal/format.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/scoring.h"

namespace topkmon {
namespace {

TEST(JournalFormatTest, Crc32MatchesTheStandardCheckValue) {
  // The canonical CRC-32C (Castagnoli) check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xE3069283u);
  // Incremental computation matches one-shot.
  const std::uint32_t partial = Crc32("12345", 5);
  EXPECT_EQ(Crc32("6789", 4, partial), 0xE3069283u);
  EXPECT_EQ(Crc32("", 0), 0u);
  // Byte-at-a-time equals the sliced/hardware bulk path on a long input
  // (exercises the 8-byte folding loop and the unaligned tail).
  std::string long_input;
  for (int i = 0; i < 1000; ++i) long_input.push_back(static_cast<char>(i));
  std::uint32_t rolling = 0;
  for (char c : long_input) rolling = Crc32(&c, 1, rolling);
  EXPECT_EQ(Crc32(long_input.data(), long_input.size()), rolling);
}

TEST(JournalFormatTest, CycleBodyRoundtrips) {
  std::vector<Record> batch;
  batch.emplace_back(41, Point{0.25, 0.75}, 99);
  batch.emplace_back(42, Point{0.0, 1.0}, 100);
  std::string body;
  EncodeCycleBody(100, batch, &body);

  JournalRecord record;
  ASSERT_TRUE(DecodeBody(body.data(), body.size(), &record).ok());
  EXPECT_EQ(record.type, JournalRecordType::kCycle);
  EXPECT_EQ(record.cycle_ts, 100);
  ASSERT_EQ(record.batch.size(), 2u);
  EXPECT_EQ(record.batch[0].id, 41u);
  EXPECT_EQ(record.batch[0].arrival, 99);
  EXPECT_EQ(record.batch[0].position, (Point{0.25, 0.75}));
  EXPECT_EQ(record.batch[1].id, 42u);
}

TEST(JournalFormatTest, RegisterBodyRoundtripsEveryFunctionFamily) {
  std::vector<std::shared_ptr<const ScoringFunction>> functions = {
      std::make_shared<LinearFunction>(std::vector<double>{0.3, -0.7}, 1.5),
      std::make_shared<ProductFunction>(std::vector<double>{0.1, 0.9}),
      std::make_shared<SumOfSquaresFunction>(std::vector<double>{0.4, 0.6}),
  };
  for (const auto& fn : functions) {
    JournaledQuery query;
    query.spec.id = 7;
    query.spec.k = 12;
    query.spec.function = fn;
    query.spec.constraint =
        Rect(Point{0.1, 0.2}, Point{0.8, 0.9});
    query.owner_label = "dashboard-3";

    std::string body;
    ASSERT_TRUE(EncodeRegisterBody(query, &body).ok()) << fn->ToString();
    JournalRecord record;
    ASSERT_TRUE(DecodeBody(body.data(), body.size(), &record).ok());
    EXPECT_EQ(record.type, JournalRecordType::kRegister);
    EXPECT_EQ(record.query.spec.id, 7u);
    EXPECT_EQ(record.query.spec.k, 12);
    EXPECT_EQ(record.query.owner_label, "dashboard-3");
    ASSERT_TRUE(record.query.spec.constraint.has_value());
    EXPECT_EQ(record.query.spec.constraint->lo(), (Point{0.1, 0.2}));
    EXPECT_EQ(record.query.spec.constraint->hi(), (Point{0.8, 0.9}));
    // The decoded function scores identically (same family, same coeffs).
    const Point probe{0.37, 0.61};
    EXPECT_DOUBLE_EQ(record.query.spec.function->Score(probe),
                     fn->Score(probe));
    EXPECT_EQ(record.query.spec.function->ToString(), fn->ToString());
  }
}

TEST(JournalFormatTest, UnregisterBodyRoundtrips) {
  std::string body;
  EncodeUnregisterBody(123456, &body);
  JournalRecord record;
  ASSERT_TRUE(DecodeBody(body.data(), body.size(), &record).ok());
  EXPECT_EQ(record.type, JournalRecordType::kUnregister);
  EXPECT_EQ(record.unregistered, 123456u);
}

TEST(JournalFormatTest, SnapshotBodyRoundtrips) {
  JournalSnapshot snap;
  snap.last_cycle_ts = 777;
  snap.next_record_id = 5001;
  snap.next_query_id = 42;
  for (RecordId id = 4990; id < 5001; ++id) {
    snap.window.emplace_back(id, Point{0.5, 0.5}, 770 + (id % 7));
  }
  JournaledQuery q;
  q.spec.id = 41;
  q.spec.k = 3;
  q.spec.function =
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0});
  q.owner_label = "alice";
  snap.live_queries.push_back(q);

  std::string body;
  ASSERT_TRUE(EncodeSnapshotBody(snap, &body).ok());
  JournalRecord record;
  ASSERT_TRUE(DecodeBody(body.data(), body.size(), &record).ok());
  EXPECT_EQ(record.type, JournalRecordType::kSnapshot);
  EXPECT_EQ(record.snapshot.last_cycle_ts, 777);
  EXPECT_EQ(record.snapshot.next_record_id, 5001u);
  EXPECT_EQ(record.snapshot.next_query_id, 42u);
  ASSERT_EQ(record.snapshot.window.size(), 11u);
  EXPECT_EQ(record.snapshot.window.front().id, 4990u);
  ASSERT_EQ(record.snapshot.live_queries.size(), 1u);
  EXPECT_EQ(record.snapshot.live_queries[0].spec.id, 41u);
  EXPECT_EQ(record.snapshot.live_queries[0].owner_label, "alice");
}

/// A monotone function the journal has no encoding for.
class OpaqueFunction final : public ScoringFunction {
 public:
  int dim() const override { return 2; }
  double Score(const Point& p) const override { return p[0] + p[1]; }
  Monotonicity direction(int) const override {
    return Monotonicity::kIncreasing;
  }
  std::unique_ptr<ScoringFunction> Clone() const override {
    return std::make_unique<OpaqueFunction>();
  }
  std::string ToString() const override { return "opaque(x1, x2)"; }
};

TEST(JournalFormatTest, UnknownFunctionTypesAreRefusedNotMangled) {
  JournaledQuery query;
  query.spec.id = 1;
  query.spec.k = 1;
  query.spec.function = std::make_shared<OpaqueFunction>();
  std::string body;
  const Status st = EncodeRegisterBody(query, &body);
  EXPECT_EQ(st.code(), StatusCode::kUnimplemented);
  EXPECT_TRUE(body.empty()) << "refused encode must not leave partial bytes";
}

TEST(JournalFormatTest, TruncatedAndGarbageBodiesAreRejected) {
  std::vector<Record> batch;
  batch.emplace_back(1, Point{0.5, 0.5}, 10);
  std::string body;
  EncodeCycleBody(10, batch, &body);
  JournalRecord record;
  for (std::size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(DecodeBody(body.data(), cut, &record).ok())
        << "prefix of length " << cut << " decoded successfully";
  }
  const std::string garbage = "\xFFthis is not a journal record";
  EXPECT_FALSE(DecodeBody(garbage.data(), garbage.size(), &record).ok());
}

TEST(JournalFormatTest, SegmentFileNamesRoundtrip) {
  EXPECT_EQ(SegmentFileName(0), "segment-000000000000.wal");
  EXPECT_EQ(SegmentFileName(42), "segment-000000000042.wal");
  std::uint64_t index = 99;
  EXPECT_TRUE(ParseSegmentFileName("segment-000000000042.wal", &index));
  EXPECT_EQ(index, 42u);
  EXPECT_FALSE(ParseSegmentFileName("segment-xyz.wal", &index));
  EXPECT_FALSE(ParseSegmentFileName("other.txt", &index));
  EXPECT_FALSE(ParseSegmentFileName("segment-000000000042.wal.bak", &index));
}

TEST(JournalFormatTest, FormatVersionIsTwo) {
  // docs/JOURNAL_FORMAT.md documents version 2; CI cross-checks the two.
  EXPECT_EQ(kJournalFormatVersion, 2u);
}

TEST(JournalFormatTest, VersionOneSegmentsRemainReadable) {
  // v1 encodings are a strict subset of v2 (v2 only added the piecewise
  // scoring-function tag), so a v1 header must still be accepted while
  // future versions and version 0 are refused.
  std::string header;
  EncodeSegmentHeader(&header);
  ASSERT_EQ(header.size(), kSegmentHeaderBytes);
  std::string v1 = header;
  v1[8] = 1;  // version:u32 little-endian at offset 8
  EXPECT_TRUE(DecodeSegmentHeader(v1.data(), v1.size()).ok());
  std::string v0 = header;
  v0[8] = 0;
  EXPECT_EQ(DecodeSegmentHeader(v0.data(), v0.size()).code(),
            StatusCode::kUnimplemented);
  std::string v9 = header;
  v9[8] = 9;
  EXPECT_EQ(DecodeSegmentHeader(v9.data(), v9.size()).code(),
            StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace topkmon
