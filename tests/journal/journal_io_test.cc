#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "journal/journal_reader.h"
#include "journal/journal_writer.h"
#include "tests/journal/journal_test_util.h"

namespace topkmon {
namespace {

using ::topkmon::testing::ScopedTempDir;

std::vector<Record> OneRecordBatch(RecordId id, Timestamp ts) {
  std::vector<Record> batch;
  batch.emplace_back(id, Point{0.3, 0.4}, ts);
  return batch;
}

JournaledQuery LinearQuery(QueryId id, const std::string& label) {
  JournaledQuery q;
  q.spec.id = id;
  q.spec.k = 2;
  q.spec.function =
      std::make_shared<LinearFunction>(std::vector<double>{0.5, 0.5});
  q.owner_label = label;
  return q;
}

TEST(JournalIoTest, WritesReadBackInOrder) {
  ScopedTempDir dir;
  JournalOptions options;
  options.dir = dir.path();
  auto writer = CycleJournalWriter::Open(options, JournalSnapshot{});
  ASSERT_TRUE(writer.ok()) << writer.status();

  ASSERT_TRUE((*writer)->AppendRegister(LinearQuery(1, "alice")).ok());
  ASSERT_TRUE((*writer)->AppendCycle(10, OneRecordBatch(0, 10)).ok());
  ASSERT_TRUE((*writer)->AppendCycle(11, OneRecordBatch(1, 11)).ok());
  ASSERT_TRUE((*writer)->AppendUnregister(1).ok());
  ASSERT_TRUE((*writer)->Close().ok());

  auto segments = ListSegments(dir.path());
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 1u);
  auto reader = CycleJournalReader::Open((*segments)[0].path);
  ASSERT_TRUE(reader.ok()) << reader.status();

  auto next = (*reader)->Next();
  ASSERT_EQ(next.kind, CycleJournalReader::Kind::kRecord);
  EXPECT_EQ(next.record.type, JournalRecordType::kSnapshot);

  next = (*reader)->Next();
  ASSERT_EQ(next.kind, CycleJournalReader::Kind::kRecord);
  ASSERT_EQ(next.record.type, JournalRecordType::kRegister);
  EXPECT_EQ(next.record.query.spec.id, 1u);
  EXPECT_EQ(next.record.query.owner_label, "alice");

  next = (*reader)->Next();
  ASSERT_EQ(next.record.type, JournalRecordType::kCycle);
  EXPECT_EQ(next.record.cycle_ts, 10);
  next = (*reader)->Next();
  ASSERT_EQ(next.record.type, JournalRecordType::kCycle);
  EXPECT_EQ(next.record.cycle_ts, 11);

  next = (*reader)->Next();
  ASSERT_EQ(next.record.type, JournalRecordType::kUnregister);
  EXPECT_EQ(next.record.unregistered, 1u);

  EXPECT_EQ((*reader)->Next().kind, CycleJournalReader::Kind::kEnd);
  // Terminal outcomes are sticky.
  EXPECT_EQ((*reader)->Next().kind, CycleJournalReader::Kind::kEnd);
}

TEST(JournalIoTest, RotationAnchorsNewSegmentsAndCollectsOldOnes) {
  ScopedTempDir dir;
  JournalOptions options;
  options.dir = dir.path();
  options.snapshot_every_cycles = 2;
  auto writer = CycleJournalWriter::Open(options, JournalSnapshot{});
  ASSERT_TRUE(writer.ok()) << writer.status();

  EXPECT_FALSE((*writer)->SnapshotDue());
  ASSERT_TRUE((*writer)->AppendCycle(1, OneRecordBatch(0, 1)).ok());
  EXPECT_FALSE((*writer)->SnapshotDue());
  ASSERT_TRUE((*writer)->AppendCycle(2, OneRecordBatch(1, 2)).ok());
  EXPECT_TRUE((*writer)->SnapshotDue());

  JournalSnapshot snap;
  snap.last_cycle_ts = 2;
  snap.next_record_id = 2;
  snap.window = OneRecordBatch(1, 2);
  ASSERT_TRUE((*writer)->RotateWithSnapshot(snap).ok());
  EXPECT_EQ((*writer)->current_segment_index(), 1u);
  EXPECT_FALSE((*writer)->SnapshotDue());

  // The superseded segment 0 is gone; segment 1 starts with the snapshot.
  auto segments = ListSegments(dir.path());
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 1u);
  EXPECT_EQ((*segments)[0].index, 1u);
  auto reader = CycleJournalReader::Open((*segments)[0].path);
  ASSERT_TRUE(reader.ok());
  auto first = (*reader)->Next();
  ASSERT_EQ(first.kind, CycleJournalReader::Kind::kRecord);
  ASSERT_EQ(first.record.type, JournalRecordType::kSnapshot);
  EXPECT_EQ(first.record.snapshot.last_cycle_ts, 2);
  ASSERT_EQ(first.record.snapshot.window.size(), 1u);
  EXPECT_EQ((*writer)->stats().segments_deleted, 1u);
}

TEST(JournalIoTest, GroupCommitSyncsOnCycleCountAndOnTheTimeTrigger) {
  ScopedTempDir dir;
  JournalOptions options;
  options.dir = dir.path();
  options.sync = SyncPolicy::kInterval;
  options.sync_every_records = 1000;  // never trips in this test
  options.sync_interval_cycles = 4;   // the group-commit batch size
  auto writer = CycleJournalWriter::Open(options, JournalSnapshot{});
  ASSERT_TRUE(writer.ok()) << writer.status();
  const std::uint64_t base = (*writer)->stats().sync_calls;  // anchor sync

  // 8 cycles at 4 cycles per group commit: exactly 2 syncs.
  for (Timestamp ts = 1; ts <= 8; ++ts) {
    ASSERT_TRUE((*writer)
                    ->AppendCycle(ts, OneRecordBatch(
                                          static_cast<RecordId>(ts), ts))
                    .ok());
  }
  EXPECT_EQ((*writer)->stats().sync_calls, base + 2);

  // Non-cycle records ride along in the batch without forcing a sync.
  ASSERT_TRUE((*writer)->AppendRegister(LinearQuery(1, "alice")).ok());
  EXPECT_EQ((*writer)->stats().sync_calls, base + 2);

  // The explicit barrier flushes the partial batch; a second call is a
  // no-op because nothing is unsynced.
  ASSERT_TRUE((*writer)->Sync().ok());
  EXPECT_EQ((*writer)->stats().sync_calls, base + 3);
  ASSERT_TRUE((*writer)->Sync().ok());
  EXPECT_EQ((*writer)->stats().sync_calls, base + 3);

  // Time trigger: with an elapsed interval, the idle-path SyncIfDue
  // syncs pending appends — and only pending ones.
  ASSERT_TRUE((*writer)->SyncIfDue().ok());
  EXPECT_EQ((*writer)->stats().sync_calls, base + 3) << "nothing pending";
  auto timed = options;
  timed.sync_interval_cycles = 0;
  timed.sync_interval_ms = std::chrono::milliseconds(1);
  ScopedTempDir dir2;
  timed.dir = dir2.path();
  auto writer2 = CycleJournalWriter::Open(timed, JournalSnapshot{});
  ASSERT_TRUE(writer2.ok()) << writer2.status();
  const std::uint64_t base2 = (*writer2)->stats().sync_calls;
  ASSERT_TRUE((*writer2)->AppendRegister(LinearQuery(1, "bob")).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE((*writer2)->SyncIfDue().ok());
  EXPECT_EQ((*writer2)->stats().sync_calls, base2 + 1);
  ASSERT_TRUE((*writer2)->Close().ok());
  ASSERT_TRUE((*writer)->Close().ok());
}

TEST(JournalIoTest, RetainSegmentCountKeepsAReplicationHorizon) {
  ScopedTempDir dir;
  JournalOptions options;
  options.dir = dir.path();
  options.retain_segment_count = 2;
  auto writer = CycleJournalWriter::Open(options, JournalSnapshot{});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendCycle(1, OneRecordBatch(0, 1)).ok());
  ASSERT_TRUE((*writer)->RotateWithSnapshot(JournalSnapshot{}).ok());
  auto segments = ListSegments(dir.path());
  ASSERT_TRUE(segments.ok());
  EXPECT_EQ(segments->size(), 2u) << "previous segment survives";
  ASSERT_TRUE((*writer)->RotateWithSnapshot(JournalSnapshot{}).ok());
  segments = ListSegments(dir.path());
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 2u);
  EXPECT_EQ(segments->front().index, 1u) << "only the oldest is collected";
  ASSERT_TRUE((*writer)->Close().ok());
}

TEST(JournalIoTest, RetainOldSegmentsKeepsHistory) {
  ScopedTempDir dir;
  JournalOptions options;
  options.dir = dir.path();
  options.retain_old_segments = true;
  auto writer = CycleJournalWriter::Open(options, JournalSnapshot{});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendCycle(1, OneRecordBatch(0, 1)).ok());
  ASSERT_TRUE((*writer)->RotateWithSnapshot(JournalSnapshot{}).ok());
  auto segments = ListSegments(dir.path());
  ASSERT_TRUE(segments.ok());
  EXPECT_EQ(segments->size(), 2u);
}

TEST(JournalIoTest, FreshOpenRefusesADirectoryWithHistory) {
  ScopedTempDir dir;
  JournalOptions options;
  options.dir = dir.path();
  {
    auto writer = CycleJournalWriter::Open(options, JournalSnapshot{});
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto second = CycleJournalWriter::Open(options, JournalSnapshot{});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  // Resuming (the recovery path) appends a new segment instead.
  auto resumed =
      CycleJournalWriter::Open(options, JournalSnapshot{}, /*resuming=*/true);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ((*resumed)->current_segment_index(), 1u);
}

TEST(JournalIoTest, AppendsAfterCloseFail) {
  ScopedTempDir dir;
  JournalOptions options;
  options.dir = dir.path();
  auto writer = CycleJournalWriter::Open(options, JournalSnapshot{});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_TRUE((*writer)->closed());
  EXPECT_EQ((*writer)->AppendCycle(1, OneRecordBatch(0, 1)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*writer)->RotateWithSnapshot(JournalSnapshot{}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE((*writer)->Close().ok()) << "Close is idempotent";
}

TEST(JournalIoTest, SyncPoliciesParseAndCount) {
  EXPECT_EQ(*ParseSyncPolicy("none"), SyncPolicy::kNone);
  EXPECT_EQ(*ParseSyncPolicy("interval"), SyncPolicy::kInterval);
  EXPECT_EQ(*ParseSyncPolicy("always"), SyncPolicy::kAlways);
  EXPECT_FALSE(ParseSyncPolicy("sometimes").ok());

  ScopedTempDir dir;
  JournalOptions options;
  options.dir = dir.path();
  options.sync = SyncPolicy::kAlways;
  auto writer = CycleJournalWriter::Open(options, JournalSnapshot{});
  ASSERT_TRUE(writer.ok());
  const std::uint64_t baseline = (*writer)->stats().sync_calls;
  ASSERT_TRUE((*writer)->AppendCycle(1, OneRecordBatch(0, 1)).ok());
  ASSERT_TRUE((*writer)->AppendCycle(2, OneRecordBatch(1, 2)).ok());
  EXPECT_EQ((*writer)->stats().sync_calls, baseline + 2);
}

TEST(JournalIoTest, ListSegmentsOnMissingDirectoryIsEmptyNotAnError) {
  auto segments = ListSegments("/tmp/topkmon-does-not-exist-12345");
  ASSERT_TRUE(segments.ok());
  EXPECT_TRUE(segments->empty());
}

}  // namespace
}  // namespace topkmon
