// Per-session ingest rate limiting (token bucket in SessionManager) and
// session lookup by label.

#include <gtest/gtest.h>

#include <memory>

#include "core/brute_force_engine.h"
#include "service/monitor_service.h"
#include "service/session.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

TEST(RateLimitTest, TokenBucketRefillsAtTheConfiguredRate) {
  SessionOptions options;
  options.ingest_rate_per_sec = 100.0;
  options.ingest_burst = 10.0;
  SessionManager sessions(options);
  const SessionId s = *sessions.Open("client");

  // The bucket starts full: exactly `burst` tokens at t=0.
  for (int i = 0; i < 10; ++i) {
    TOPKMON_ASSERT_OK(sessions.ConsumeIngestTokens(s, 1.0, 0.0));
  }
  EXPECT_EQ(sessions.ConsumeIngestTokens(s, 1.0, 0.0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(sessions.stats().rate_limited, 1u);

  // 50 ms later: 5 tokens have dripped in.
  for (int i = 0; i < 5; ++i) {
    TOPKMON_ASSERT_OK(sessions.ConsumeIngestTokens(s, 1.0, 0.05));
  }
  EXPECT_EQ(sessions.ConsumeIngestTokens(s, 1.0, 0.05).code(),
            StatusCode::kFailedPrecondition);

  // A long idle period refills to the burst cap, never beyond it.
  for (int i = 0; i < 10; ++i) {
    TOPKMON_ASSERT_OK(sessions.ConsumeIngestTokens(s, 1.0, 60.0));
  }
  EXPECT_EQ(sessions.ConsumeIngestTokens(s, 1.0, 60.0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(sessions.stats().rate_limited, 3u);
}

TEST(RateLimitTest, BurstDefaultsToOneSecondOfRate) {
  SessionOptions options;
  options.ingest_rate_per_sec = 7.0;  // burst unset -> 7 tokens
  SessionManager sessions(options);
  const SessionId s = *sessions.Open("client");
  for (int i = 0; i < 7; ++i) {
    TOPKMON_ASSERT_OK(sessions.ConsumeIngestTokens(s, 1.0, 0.0));
  }
  EXPECT_FALSE(sessions.ConsumeIngestTokens(s, 1.0, 0.0).ok());
}

TEST(RateLimitTest, DisabledByDefaultAndUnknownSessionsAreNotFound) {
  SessionManager sessions(SessionOptions{});
  const SessionId s = *sessions.Open("client");
  for (int i = 0; i < 10000; ++i) {
    TOPKMON_ASSERT_OK(sessions.ConsumeIngestTokens(s, 1.0, 0.0));
  }
  EXPECT_EQ(sessions.stats().rate_limited, 0u);
  EXPECT_EQ(sessions.ConsumeIngestTokens(9999, 1.0, 0.0).code(),
            StatusCode::kNotFound);
}

TEST(RateLimitTest, EachSessionHasItsOwnBucket) {
  SessionOptions options;
  options.ingest_rate_per_sec = 1.0;
  options.ingest_burst = 2.0;
  SessionManager sessions(options);
  const SessionId a = *sessions.Open("a");
  const SessionId b = *sessions.Open("b");
  TOPKMON_ASSERT_OK(sessions.ConsumeIngestTokens(a, 2.0, 0.0));
  EXPECT_FALSE(sessions.ConsumeIngestTokens(a, 1.0, 0.0).ok());
  // Session b is unaffected by a's exhaustion.
  TOPKMON_ASSERT_OK(sessions.ConsumeIngestTokens(b, 2.0, 0.0));
}

TEST(RateLimitTest, FindByLabelReturnsTheOldestMatch) {
  SessionManager sessions(SessionOptions{});
  const SessionId first = *sessions.Open("dup");
  (void)*sessions.Open("dup");
  (void)*sessions.Open("other");
  const auto found = sessions.FindByLabel("dup");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, first);
  EXPECT_EQ(sessions.FindByLabel("missing").status().code(),
            StatusCode::kNotFound);
}

// The service-level bucket tests run on an injected virtual clock
// (MonitorService::SetClockForTesting), so no wall-clock instant — not
// even a sanitizer-slowed one — can drip tokens mid-assertion: the
// suite is deterministic by construction, with no sleeps.

TEST(RateLimitTest, ServiceIngestEnforcesTheSessionBucket) {
  ServiceOptions opt;
  opt.ingest.slack = 0;
  opt.drain_wait = std::chrono::milliseconds(1);
  opt.session.ingest_rate_per_sec = 100.0;
  opt.session.ingest_burst = 3.0;
  MonitorService service(
      std::make_unique<BruteForceEngine>(2, WindowSpec::Count(100)), opt);
  double virtual_now = 0.0;  // frozen unless the test advances it
  service.SetClockForTesting([&virtual_now] { return virtual_now; });
  const SessionId session = *service.OpenSession("meter");

  for (Timestamp ts = 1; ts <= 3; ++ts) {
    TOPKMON_ASSERT_OK(service.Ingest(session, Point{0.5, 0.5}, ts));
  }
  EXPECT_EQ(service.Ingest(session, Point{0.5, 0.5}, 4).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.TryIngest(session, Point{0.5, 0.5}, 4).code(),
            StatusCode::kFailedPrecondition);
  // Anonymous producers bypass the bucket.
  TOPKMON_ASSERT_OK(service.Ingest(Point{0.5, 0.5}, 5));
  TOPKMON_ASSERT_OK(service.Flush());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.records_rate_limited, 2u);
  EXPECT_EQ(stats.records_ingested, 4u);
  // An unknown session cannot ingest at all.
  EXPECT_EQ(service.Ingest(777, Point{0.5, 0.5}, 6).code(),
            StatusCode::kNotFound);
}

TEST(RateLimitTest, ServiceBucketRefillsOnTheInjectedClock) {
  ServiceOptions opt;
  opt.ingest.slack = 0;
  opt.drain_wait = std::chrono::milliseconds(1);
  opt.session.ingest_rate_per_sec = 10.0;  // one token per 100 virtual ms
  opt.session.ingest_burst = 2.0;
  MonitorService service(
      std::make_unique<BruteForceEngine>(2, WindowSpec::Count(100)), opt);
  double virtual_now = 0.0;
  service.SetClockForTesting([&virtual_now] { return virtual_now; });
  const SessionId session = *service.OpenSession("meter");

  // Drain the initial burst at a frozen instant.
  TOPKMON_ASSERT_OK(service.Ingest(session, Point{0.1, 0.1}, 1));
  TOPKMON_ASSERT_OK(service.Ingest(session, Point{0.1, 0.1}, 2));
  EXPECT_EQ(service.Ingest(session, Point{0.1, 0.1}, 3).code(),
            StatusCode::kFailedPrecondition);

  // 150 virtual ms later exactly 1.5 tokens dripped in: one ingest
  // passes, the next still fails.
  virtual_now = 0.15;
  TOPKMON_ASSERT_OK(service.Ingest(session, Point{0.1, 0.1}, 4));
  EXPECT_EQ(service.Ingest(session, Point{0.1, 0.1}, 5).code(),
            StatusCode::kFailedPrecondition);

  // A long virtual idle refills to the burst cap, never beyond.
  virtual_now = 100.0;
  TOPKMON_ASSERT_OK(service.Ingest(session, Point{0.1, 0.1}, 6));
  TOPKMON_ASSERT_OK(service.Ingest(session, Point{0.1, 0.1}, 7));
  EXPECT_EQ(service.Ingest(session, Point{0.1, 0.1}, 8).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.stats().records_rate_limited, 3u);
}

}  // namespace
}  // namespace topkmon
