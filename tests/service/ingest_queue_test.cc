#include "service/ingest_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tests/test_util.h"

namespace topkmon {
namespace {

Point P(double x, double y) { return Point{x, y}; }

/// Drains everything currently buffered (flush gate open).
std::vector<Record> DrainAll(IngestQueue& queue) {
  std::vector<Record> out;
  Timestamp ts = 0;
  while (queue.DrainBatch(&out, &ts, std::chrono::milliseconds(0),
                          /*flush_all=*/true) > 0) {
  }
  return out;
}

TEST(IngestQueueTest, ReordersWithinSlackAndAssignsIncreasingIds) {
  IngestOptions opt;
  opt.slack = 5;
  IngestQueue queue(opt);
  // Push out of timestamp order, all within the slack.
  for (Timestamp ts : {3, 1, 4, 2, 5}) {
    TOPKMON_ASSERT_OK(queue.Push(P(0.1, 0.2), ts));
  }
  const std::vector<Record> out = DrainAll(queue);
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].arrival, static_cast<Timestamp>(i + 1));
    EXPECT_EQ(out[i].id, static_cast<RecordId>(i));
  }
  EXPECT_EQ(queue.stats().coerced, 0u);
}

TEST(IngestQueueTest, SlackGateHoldsRecentRecordsBack) {
  IngestOptions opt;
  opt.slack = 3;
  IngestQueue queue(opt);
  for (Timestamp ts : {1, 2, 3, 4, 5}) {
    TOPKMON_ASSERT_OK(queue.Push(P(0.5, 0.5), ts));
  }
  std::vector<Record> out;
  Timestamp cycle = 0;
  // Only ts 1 and 2 clear the gate (max_seen=5, slack=3).
  const std::size_t n =
      queue.DrainBatch(&out, &cycle, std::chrono::milliseconds(0));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(cycle, 2);
  EXPECT_EQ(queue.depth(), 3u);
}

TEST(IngestQueueTest, LateStragglerIsCoercedToTheFrontier) {
  IngestOptions opt;
  opt.slack = 1;
  IngestQueue queue(opt);
  for (Timestamp ts : {5, 6, 7}) {
    TOPKMON_ASSERT_OK(queue.Push(P(0.5, 0.5), ts));
  }
  std::vector<Record> out = DrainAll(queue);
  ASSERT_EQ(out.size(), 3u);
  // Far too late: arrives after the frontier reached 7.
  TOPKMON_ASSERT_OK(queue.Push(P(0.5, 0.5), 2));
  out = DrainAll(queue);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].arrival, 7);  // coerced forward, not time-traveling
  EXPECT_EQ(queue.stats().coerced, 1u);
}

TEST(IngestQueueTest, ConcurrentProducersKeepBatchesOrdered) {
  IngestOptions opt;
  opt.slack = 8;
  opt.capacity = 1 << 12;
  IngestQueue queue(opt);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 1000;
  std::atomic<Timestamp> clock{1};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &clock] {
      for (int i = 0; i < kPerProducer; ++i) {
        const Timestamp ts = clock.fetch_add(1);
        ASSERT_TRUE(queue.Push(P(0.3, 0.7), ts).ok());
      }
    });
  }
  std::vector<Record> all;
  Timestamp cycle = 0;
  while (all.size() < kProducers * kPerProducer) {
    queue.DrainBatch(&all, &cycle, std::chrono::milliseconds(5));
    if (queue.depth() == 0 && all.size() < kProducers * kPerProducer) {
      std::this_thread::yield();
    }
  }
  for (std::thread& t : producers) t.join();
  all = [&] {
    std::vector<Record> rest = DrainAll(queue);
    all.insert(all.end(), rest.begin(), rest.end());
    return all;
  }();
  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].id, static_cast<RecordId>(i));  // strictly increasing
    if (i > 0) {
      EXPECT_GE(all[i].arrival, all[i - 1].arrival);  // non-decreasing
    }
  }
  EXPECT_EQ(queue.stats().pushed,
            static_cast<std::uint64_t>(kProducers * kPerProducer));
}

TEST(IngestQueueTest, BackpressureBoundsTheBufferAndReleasesProducers) {
  IngestOptions opt;
  opt.capacity = 8;
  opt.slack = 0;
  IngestQueue queue(opt);
  constexpr int kTotal = 64;
  std::thread producer([&queue] {
    for (Timestamp ts = 1; ts <= kTotal; ++ts) {
      ASSERT_TRUE(queue.Push(P(0.2, 0.2), ts).ok());  // blocks when full
    }
  });
  std::vector<Record> all;
  Timestamp cycle = 0;
  while (all.size() < kTotal) {
    queue.DrainBatch(&all, &cycle, std::chrono::milliseconds(5));
  }
  producer.join();
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kTotal));
  EXPECT_LE(queue.stats().max_depth, 8u);  // capacity was never exceeded
}

TEST(IngestQueueTest, TryPushShedsOnFullBuffer) {
  IngestOptions opt;
  opt.capacity = 2;
  IngestQueue queue(opt);
  EXPECT_TRUE(queue.TryPush(P(0.1, 0.1), 1));
  EXPECT_TRUE(queue.TryPush(P(0.1, 0.1), 2));
  EXPECT_FALSE(queue.TryPush(P(0.1, 0.1), 3));
  EXPECT_EQ(queue.stats().shed, 1u);
  EXPECT_EQ(queue.stats().pushed, 2u);
}

TEST(IngestQueueTest, CloseWakesBlockedProducersAndDrainsRemainder) {
  IngestOptions opt;
  opt.capacity = 2;
  IngestQueue queue(opt);
  TOPKMON_ASSERT_OK(queue.Push(P(0.1, 0.1), 1));
  TOPKMON_ASSERT_OK(queue.Push(P(0.1, 0.1), 2));
  std::thread blocked([&queue] {
    const Status st = queue.Push(P(0.1, 0.1), 3);  // full: blocks
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  blocked.join();
  EXPECT_EQ(queue.Push(P(0.1, 0.1), 4).code(),
            StatusCode::kFailedPrecondition);
  std::vector<Record> out;
  Timestamp cycle = 0;
  EXPECT_EQ(queue.DrainBatch(&out, &cycle, std::chrono::milliseconds(0)),
            2u);
  EXPECT_EQ(queue.DrainBatch(&out, &cycle, std::chrono::milliseconds(0)),
            0u);
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(IngestQueueTest, MaxBatchSplitsLargeBacklogs) {
  IngestOptions opt;
  opt.max_batch = 10;
  IngestQueue queue(opt);
  for (Timestamp ts = 1; ts <= 25; ++ts) {
    TOPKMON_ASSERT_OK(queue.Push(P(0.4, 0.4), ts));
  }
  std::vector<Record> out;
  Timestamp cycle = 0;
  EXPECT_EQ(queue.DrainBatch(&out, &cycle, std::chrono::milliseconds(0),
                             true),
            10u);
  EXPECT_EQ(cycle, 10);
  EXPECT_EQ(queue.DrainBatch(&out, &cycle, std::chrono::milliseconds(0),
                             true),
            10u);
  EXPECT_EQ(queue.DrainBatch(&out, &cycle, std::chrono::milliseconds(0),
                             true),
            5u);
  EXPECT_EQ(cycle, 25);
}

}  // namespace
}  // namespace topkmon
