// Kill/restart recovery through the full service stack: a journaled
// MonitorService is stopped mid-workload, reopened with
// MonitorService::Open, and must come back with its sessions and queries
// intact and its results indistinguishable — cycle-for-cycle against
// BruteForceEngine ground truth fed the exact batches both incarnations
// applied.

#include "service/monitor_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/brute_force_engine.h"
#include "core/tma_engine.h"
#include "stream/generators.h"
#include "tests/journal/journal_test_util.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

using ::topkmon::testing::MakeRandomQueries;
using ::topkmon::testing::ScopedTempDir;
using ::topkmon::testing::Scores;

constexpr int kDim = 2;
constexpr std::size_t kWindow = 400;

std::function<std::unique_ptr<MonitorEngine>()> TmaFactory() {
  return [] {
    GridEngineOptions opt;
    opt.dim = kDim;
    opt.window = WindowSpec::Count(kWindow);
    opt.cell_budget = 256;
    return std::unique_ptr<MonitorEngine>(new TmaEngine(opt));
  };
}

ServiceOptions JournaledOptions(const std::string& dir,
                                bool snapshot_on_shutdown) {
  ServiceOptions opt;
  opt.ingest.slack = 4;
  opt.drain_wait = std::chrono::milliseconds(2);
  opt.hub.buffer_capacity = 1 << 16;
  opt.journal.dir = dir;
  opt.journal.snapshot_on_shutdown = snapshot_on_shutdown;
  // Force mid-stream rotations so the snapshot path is exercised too.
  opt.journal.snapshot_every_cycles = 5;
  return opt;
}

/// Ingests `count` tuples with timestamps starting at `first_ts`, records
/// every applied (cycle, batch) into *applied, and flushes.
void IngestPhase(MonitorService& service, Timestamp first_ts,
                 std::size_t count, std::uint64_t seed,
                 std::vector<std::pair<Timestamp, std::vector<Record>>>*
                     applied) {
  std::mutex mu;
  service.SetCycleObserver(
      [&mu, applied](Timestamp ts, RecordSpan batch) {
        std::lock_guard<std::mutex> lock(mu);
        applied->emplace_back(
            ts, std::vector<Record>(batch.begin(), batch.end()));
      });
  auto gen = MakeGenerator(Distribution::kIndependent, kDim, seed);
  for (std::size_t i = 0; i < count; ++i) {
    TOPKMON_ASSERT_OK(service.Ingest(
        gen->NextPoint(), first_ts + static_cast<Timestamp>(i)));
  }
  TOPKMON_ASSERT_OK(service.Flush());
  service.SetCycleObserver(nullptr);
}

void RunKillRestartScenario(bool clean_shutdown_snapshot) {
  ScopedTempDir dir;
  const auto specs = MakeRandomQueries(kDim, 4, 5, 4242);
  std::vector<QuerySpec> registered;  // with service-assigned ids
  std::vector<std::pair<Timestamp, std::vector<Record>>> applied;

  // ---- incarnation 1: first boot on an empty journal dir --------------
  {
    auto service = MonitorService::Open(
        TmaFactory(), JournaledOptions(dir.path(), clean_shutdown_snapshot));
    ASSERT_TRUE(service.ok()) << service.status();
    EXPECT_FALSE((*service)->recovery().recovered) << "first boot";
    const SessionId alice = *(*service)->OpenSession("alice");
    const SessionId bob = *(*service)->OpenSession("bob");
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto id =
          (*service)->Register(i % 2 == 0 ? alice : bob, specs[i]);
      ASSERT_TRUE(id.ok()) << id.status();
      QuerySpec spec = specs[i];
      spec.id = *id;
      registered.push_back(std::move(spec));
    }
    IngestPhase(**service, 1, 500, 11, &applied);
    TOPKMON_ASSERT_OK((*service)->journal_status());
    (*service)->Shutdown();  // kill point (dtor would do the same)
  }

  // ---- incarnation 2: recover and continue ----------------------------
  auto service = MonitorService::Open(
      TmaFactory(), JournaledOptions(dir.path(), clean_shutdown_snapshot));
  ASSERT_TRUE(service.ok()) << service.status();
  const RecoveryReport& report = (*service)->recovery();
  EXPECT_TRUE(report.recovered);
  EXPECT_FALSE(report.torn_tail);
  EXPECT_FALSE(report.corrupt_record);
  ASSERT_EQ(report.live_queries.size(), registered.size());
  if (clean_shutdown_snapshot) {
    EXPECT_EQ(report.cycles_replayed, 0u)
        << "a clean shutdown snapshot replays nothing";
  } else {
    EXPECT_GT(report.cycles_replayed, 0u);
  }

  // Sessions came back under their labels, owning their queries.
  const auto alice = (*service)->FindSession("alice");
  const auto bob = (*service)->FindSession("bob");
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(bob.ok());
  EXPECT_EQ((*service)->stats().open_sessions, 2u);
  EXPECT_EQ((*service)->stats().active_queries, registered.size());

  // Continue the stream in the new incarnation.
  IngestPhase(**service, 501, 500, 12, &applied);

  // New registrations must not collide with recovered query ids.
  const auto fresh = (*service)->Register(*alice, specs[0]);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  for (const QuerySpec& spec : registered) EXPECT_GT(*fresh, spec.id);

  // ---- ground truth: one uninterrupted run over the applied batches ---
  BruteForceEngine truth(kDim, WindowSpec::Count(kWindow));
  for (const QuerySpec& spec : registered) {
    TOPKMON_ASSERT_OK(truth.RegisterQuery(spec));
  }
  for (const auto& [ts, batch] : applied) {
    TOPKMON_ASSERT_OK(truth.ProcessCycle(ts, batch));
  }
  for (const QuerySpec& spec : registered) {
    const auto got = (*service)->CurrentResult(spec.id);
    const auto want = truth.CurrentResult(spec.id);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(Scores(*got), Scores(*want)) << "query " << spec.id;
  }

  // Sequence-numbered deltas: each recovered session's stream is gap-free
  // and reconstructs exactly the final snapshot of each of its queries.
  for (const SessionId session : {*alice, *bob}) {
    EXPECT_EQ((*service)->DroppedDeltas(session), 0u);
    std::vector<DeltaEvent> events;
    (*service)->PollDeltas(session, std::size_t(-1), &events);
    ASSERT_FALSE(events.empty());
    std::uint64_t expected_seq = 1;
    std::map<QueryId, std::map<RecordId, double>> views;
    for (const DeltaEvent& e : events) {
      EXPECT_EQ(e.seq, expected_seq++) << "sequence gap without drops";
      auto& view = views[e.delta.query];
      for (const ResultEntry& r : e.delta.removed) view.erase(r.id);
      for (const ResultEntry& r : e.delta.added) view.emplace(r.id, r.score);
    }
    for (auto& [query, view] : views) {
      const auto snapshot = (*service)->CurrentResult(query);
      ASSERT_TRUE(snapshot.ok());
      std::vector<double> snapshot_scores = Scores(*snapshot);
      std::sort(snapshot_scores.begin(), snapshot_scores.end());
      std::vector<double> view_scores;
      for (const auto& [id, score] : view) {
        (void)id;
        view_scores.push_back(score);
      }
      std::sort(view_scores.begin(), view_scores.end());
      EXPECT_EQ(view_scores, snapshot_scores) << "query " << query;
    }
  }
  (*service)->Shutdown();
}

TEST(MonitorServiceRecoveryTest, CleanRestartRecoversFromShutdownSnapshot) {
  RunKillRestartScenario(/*clean_shutdown_snapshot=*/true);
}

TEST(MonitorServiceRecoveryTest, KillRestartReplaysTheCycleJournal) {
  RunKillRestartScenario(/*clean_shutdown_snapshot=*/false);
}

TEST(MonitorServiceRecoveryTest, OpenOnEmptyDirIsAFirstBoot) {
  ScopedTempDir dir;
  auto service =
      MonitorService::Open(TmaFactory(), JournaledOptions(dir.path(), true));
  ASSERT_TRUE(service.ok()) << service.status();
  EXPECT_FALSE((*service)->recovery().recovered);
  const SessionId session = *(*service)->OpenSession("c");
  const auto specs = MakeRandomQueries(kDim, 1, 3, 9);
  ASSERT_TRUE((*service)->Register(session, specs[0]).ok());
  TOPKMON_ASSERT_OK((*service)->Ingest(Point{0.4, 0.6}, 1));
  TOPKMON_ASSERT_OK((*service)->Flush());
  EXPECT_GT((*service)->stats().journal_records, 0u);
}

TEST(MonitorServiceRecoveryTest, OpenRequiresAJournalDir) {
  ServiceOptions opt;
  auto service = MonitorService::Open(TmaFactory(), opt);
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kInvalidArgument);
}

TEST(MonitorServiceRecoveryTest,
     PlainConstructorRefusesADirectoryWithHistory) {
  ScopedTempDir dir;
  {
    auto service = MonitorService::Open(TmaFactory(),
                                        JournaledOptions(dir.path(), true));
    ASSERT_TRUE(service.ok());
    (*service)->Shutdown();
  }
  ServiceOptions opt = JournaledOptions(dir.path(), true);
  MonitorService service(TmaFactory()(), opt);
  // The service still runs, but journaling is off and the fault is
  // visible rather than silently clobbering the previous journal.
  EXPECT_FALSE(service.journal_status().ok());
  EXPECT_GE(service.stats().journal_failures, 1u);
  TOPKMON_ASSERT_OK(service.Ingest(Point{0.1, 0.2}, 1));
  TOPKMON_ASSERT_OK(service.Flush());
}

}  // namespace
}  // namespace topkmon
