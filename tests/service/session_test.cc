#include "service/session.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace topkmon {
namespace {

SessionOptions SmallQuotas() {
  SessionOptions opt;
  opt.max_queries_per_session = 2;
  opt.max_k = 10;
  opt.max_sessions = 3;
  return opt;
}

TEST(SessionManagerTest, OpenAdmitCloseLifecycle) {
  SessionManager mgr(SmallQuotas());
  const auto session = mgr.Open("dashboard-1");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(mgr.OpenSessions(), 1u);
  EXPECT_EQ(*mgr.Label(*session), "dashboard-1");

  TOPKMON_ASSERT_OK(mgr.Admit(*session, 7, 5));
  TOPKMON_ASSERT_OK(mgr.Admit(*session, 8, 5));
  EXPECT_EQ(*mgr.QueryCount(*session), 2u);
  EXPECT_EQ(*mgr.Owner(7), *session);
  EXPECT_EQ(mgr.ActiveQueries(), 2u);

  const auto owned = mgr.Close(*session);
  ASSERT_TRUE(owned.ok());
  std::vector<QueryId> ids = *owned;
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<QueryId>{7, 8}));
  EXPECT_EQ(mgr.OpenSessions(), 0u);
  EXPECT_EQ(mgr.ActiveQueries(), 0u);
  EXPECT_EQ(mgr.Owner(7).status().code(), StatusCode::kNotFound);
}

TEST(SessionManagerTest, QueryQuotaIsEnforced) {
  SessionManager mgr(SmallQuotas());
  const SessionId s = *mgr.Open("greedy");
  TOPKMON_ASSERT_OK(mgr.Admit(s, 1, 3));
  TOPKMON_ASSERT_OK(mgr.Admit(s, 2, 3));
  EXPECT_EQ(mgr.Admit(s, 3, 3).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(mgr.stats().quota_rejections, 1u);
  // Releasing one frees a slot.
  TOPKMON_ASSERT_OK(mgr.Release(1));
  TOPKMON_ASSERT_OK(mgr.Admit(s, 3, 3));
}

TEST(SessionManagerTest, KQuotaIsEnforced) {
  SessionManager mgr(SmallQuotas());
  const SessionId s = *mgr.Open("big-k");
  EXPECT_EQ(mgr.Admit(s, 1, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(mgr.Admit(s, 1, 11).code(), StatusCode::kInvalidArgument);
  TOPKMON_ASSERT_OK(mgr.Admit(s, 1, 10));
  EXPECT_EQ(mgr.stats().quota_rejections, 2u);
}

TEST(SessionManagerTest, SessionLimitIsEnforced) {
  SessionManager mgr(SmallQuotas());
  ASSERT_TRUE(mgr.Open("a").ok());
  ASSERT_TRUE(mgr.Open("b").ok());
  const auto c = mgr.Open("c");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(mgr.Open("d").status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(mgr.Close(*c).ok());
  ASSERT_TRUE(mgr.Open("d").ok());
}

TEST(SessionManagerTest, UnknownEntitiesReportNotFound) {
  SessionManager mgr(SmallQuotas());
  EXPECT_EQ(mgr.Close(99).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.Admit(99, 1, 3).code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.Release(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.Label(99).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.QueryCount(99).status().code(), StatusCode::kNotFound);
}

TEST(SessionManagerTest, DuplicateQueryIdRefused) {
  SessionManager mgr(SmallQuotas());
  const SessionId a = *mgr.Open("a");
  const SessionId b = *mgr.Open("b");
  TOPKMON_ASSERT_OK(mgr.Admit(a, 1, 3));
  EXPECT_EQ(mgr.Admit(b, 1, 3).code(), StatusCode::kAlreadyExists);
}

TEST(SessionManagerTest, StatsCountTheLifecycle) {
  SessionManager mgr(SmallQuotas());
  const SessionId s = *mgr.Open("stats");
  TOPKMON_ASSERT_OK(mgr.Admit(s, 1, 3));
  TOPKMON_ASSERT_OK(mgr.Release(1));
  ASSERT_TRUE(mgr.Close(s).ok());
  const SessionStats stats = mgr.stats();
  EXPECT_EQ(stats.opened, 1u);
  EXPECT_EQ(stats.closed, 1u);
  EXPECT_EQ(stats.queries_admitted, 1u);
  EXPECT_EQ(stats.queries_released, 1u);
}

}  // namespace
}  // namespace topkmon
