#include "service/monitor_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/brute_force_engine.h"
#include "core/sharded_engine.h"
#include "core/tma_engine.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

using ::topkmon::testing::MakeRandomQueries;

constexpr int kDim = 2;
constexpr std::size_t kWindow = 500;

std::unique_ptr<MonitorEngine> MakeBrute() {
  return std::make_unique<BruteForceEngine>(kDim, WindowSpec::Count(kWindow));
}

std::unique_ptr<MonitorEngine> MakeShardedTma(int shards) {
  return std::make_unique<ShardedEngine>(shards, [] {
    GridEngineOptions opt;
    opt.dim = kDim;
    opt.window = WindowSpec::Count(kWindow);
    opt.cell_budget = 256;
    return std::unique_ptr<MonitorEngine>(new TmaEngine(opt));
  });
}

ServiceOptions FastOptions() {
  ServiceOptions opt;
  opt.ingest.slack = 4;
  opt.drain_wait = std::chrono::milliseconds(2);
  return opt;
}

TEST(MonitorServiceTest, ClosingASessionUnregistersItsQueries) {
  MonitorService service(MakeBrute(), FastOptions());
  const auto session = service.OpenSession("client-a");
  ASSERT_TRUE(session.ok());
  const auto queries = MakeRandomQueries(kDim, 3, 5, 42);
  std::vector<QueryId> ids;
  for (const QuerySpec& q : queries) {
    const auto id = service.Register(*session, q);
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(*id);
  }
  EXPECT_EQ(service.stats().active_queries, 3u);
  for (QueryId id : ids) {
    EXPECT_TRUE(service.CurrentResult(id).ok());
  }
  TOPKMON_ASSERT_OK(service.CloseSession(*session));
  for (QueryId id : ids) {
    EXPECT_EQ(service.CurrentResult(id).status().code(),
              StatusCode::kNotFound);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.active_queries, 0u);
  EXPECT_EQ(stats.open_sessions, 0u);
}

TEST(MonitorServiceTest, QuotasRejectGreedyClients) {
  ServiceOptions opt = FastOptions();
  opt.session.max_queries_per_session = 2;
  opt.session.max_k = 8;
  MonitorService service(MakeBrute(), opt);
  const SessionId session = *service.OpenSession("greedy");
  const auto queries = MakeRandomQueries(kDim, 3, 5, 7);
  ASSERT_TRUE(service.Register(session, queries[0]).ok());
  ASSERT_TRUE(service.Register(session, queries[1]).ok());
  EXPECT_EQ(service.Register(session, queries[2]).status().code(),
            StatusCode::kFailedPrecondition);
  QuerySpec big = queries[2];
  big.k = 9;
  EXPECT_EQ(service.Register(session, big).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MonitorServiceTest, OnlyTheOwningSessionMayUnregister) {
  MonitorService service(MakeBrute(), FastOptions());
  const SessionId a = *service.OpenSession("a");
  const SessionId b = *service.OpenSession("b");
  const auto queries = MakeRandomQueries(kDim, 1, 5, 11);
  const QueryId id = *service.Register(a, queries[0]);
  EXPECT_EQ(service.Unregister(b, id).code(),
            StatusCode::kFailedPrecondition);
  TOPKMON_ASSERT_OK(service.Unregister(a, id));
  EXPECT_EQ(service.Unregister(a, id).code(), StatusCode::kNotFound);
}

TEST(MonitorServiceTest, IngestValidatesTuplesAtAdmission) {
  MonitorService service(MakeBrute(), FastOptions());
  EXPECT_EQ(service.Ingest(Point{2.0, 0.5}, 1).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(service.TryIngest(Point{0.5}, 1).code(),
            StatusCode::kInvalidArgument);
  TOPKMON_ASSERT_OK(service.Ingest(Point{0.5, 0.5}, 1));
  TOPKMON_ASSERT_OK(service.Flush());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.records_ingested, 1u);
  EXPECT_EQ(stats.records_applied, 1u);
  EXPECT_EQ(stats.failed_cycles, 0u);
}

TEST(MonitorServiceTest, ShutdownDrainsAndIsIdempotent) {
  MonitorService service(MakeBrute(), FastOptions());
  for (Timestamp ts = 1; ts <= 100; ++ts) {
    TOPKMON_ASSERT_OK(service.Ingest(Point{0.3, 0.3}, ts));
  }
  service.Shutdown();
  service.Shutdown();  // idempotent
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.records_applied, 100u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(service.Ingest(Point{0.3, 0.3}, 101).code(),
            StatusCode::kFailedPrecondition);
}

/// Applies a delta to a materialized result and returns the sorted score
/// multiset after it — the client-side view reconstruction.
std::vector<double> ApplyDelta(std::map<RecordId, double>& view,
                               const ResultDelta& delta) {
  for (const ResultEntry& e : delta.removed) view.erase(e.id);
  for (const ResultEntry& e : delta.added) view.emplace(e.id, e.score);
  std::vector<double> scores;
  scores.reserve(view.size());
  for (const auto& [id, score] : view) scores.push_back(score);
  std::sort(scores.begin(), scores.end());
  return scores;
}

// The acceptance scenario: 4 producer threads ingest concurrently while 2
// sessions hold queries over a sharded TMA engine. Every session's delta
// stream must be sequence-gap-free, and replaying the exact batches the
// driver formed into a BruteForceEngine must yield the identical sequence
// of per-query result changes, cycle for cycle.
TEST(MonitorServiceTest, EndToEndDeltasMatchBruteForceGroundTruth) {
  ServiceOptions opt = FastOptions();
  opt.hub.buffer_capacity = 1 << 16;  // no overflow drops in this test
  MonitorService service(MakeShardedTma(2), opt);

  // Journal of the exact (cycle, batch) sequence the driver applied.
  std::mutex journal_mu;
  std::vector<std::pair<Timestamp, std::vector<Record>>> journal;
  service.SetCycleObserver(
      [&journal_mu, &journal](Timestamp ts, RecordSpan b) {
        std::lock_guard<std::mutex> lock(journal_mu);
        journal.emplace_back(ts,
                             std::vector<Record>(b.begin(), b.end()));
      });

  // Two sessions, three queries each, registered before the stream runs.
  const SessionId sessions[2] = {*service.OpenSession("alice"),
                                 *service.OpenSession("bob")};
  const auto specs = MakeRandomQueries(kDim, 6, 5, 99);
  std::vector<QueryId> ids;
  std::vector<QuerySpec> registered;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const SessionId owner = sessions[i % 2];
    const auto id = service.Register(owner, specs[i]);
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(*id);
    QuerySpec spec = specs[i];
    spec.id = *id;
    registered.push_back(std::move(spec));
  }

  // Four producers hammer the ingest queue concurrently.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 600;
  std::atomic<Timestamp> clock{1};
  Rng seed_rng(7);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    const std::uint64_t seed = seed_rng.NextUint64();
    producers.emplace_back([&service, &clock, seed] {
      auto gen = MakeGenerator(Distribution::kIndependent, kDim, seed);
      for (int i = 0; i < kPerProducer; ++i) {
        const Timestamp ts = clock.fetch_add(1);
        ASSERT_TRUE(service.Ingest(gen->NextPoint(), ts).ok());
      }
    });
  }
  for (std::thread& t : producers) t.join();
  TOPKMON_ASSERT_OK(service.Flush());
  service.Shutdown();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.records_ingested,
            static_cast<std::uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(stats.records_applied, stats.records_ingested);
  EXPECT_EQ(stats.failed_cycles, 0u);
  EXPECT_GT(stats.cycles, 0u);

  // Collect every session's delta stream; sequences must be gap-free.
  std::map<QueryId, std::vector<ResultDelta>> received;
  for (const SessionId session : sessions) {
    EXPECT_EQ(service.DroppedDeltas(session), 0u);
    std::vector<DeltaEvent> events;
    service.PollDeltas(session, std::size_t(-1), &events);
    std::uint64_t expected_seq = 1;
    for (const DeltaEvent& e : events) {
      EXPECT_EQ(e.seq, expected_seq++) << "sequence gap without drops";
      received[e.delta.query].push_back(e.delta);
    }
  }

  // Ground truth: replay the journal into a brute-force engine with the
  // same queries and record its delta stream per query.
  std::map<QueryId, std::vector<ResultDelta>> truth;
  BruteForceEngine brute(kDim, WindowSpec::Count(kWindow));
  brute.SetDeltaCallback([&truth](const ResultDelta& d) {
    truth[d.query].push_back(d);
  });
  for (const QuerySpec& spec : registered) {
    TOPKMON_ASSERT_OK(brute.RegisterQuery(spec));
  }
  {
    std::lock_guard<std::mutex> lock(journal_mu);
    for (const auto& [ts, batch] : journal) {
      TOPKMON_ASSERT_OK(brute.ProcessCycle(ts, batch));
    }
  }

  // Per query: the service delivered the same number of change events,
  // at the same cycle timestamps, reconstructing the same results.
  for (QueryId id : ids) {
    const auto& got = received[id];
    const auto& want = truth[id];
    ASSERT_EQ(got.size(), want.size()) << "query " << id;
    std::map<RecordId, double> got_view;
    std::map<RecordId, double> want_view;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].when, want[i].when)
          << "query " << id << " event " << i;
      EXPECT_EQ(ApplyDelta(got_view, got[i]), ApplyDelta(want_view, want[i]))
          << "query " << id << " diverges at event " << i;
    }
    // The fully-reconstructed subscription view equals the final snapshot.
    const auto snapshot = service.CurrentResult(id);
    ASSERT_TRUE(snapshot.ok());
    std::vector<double> snapshot_scores = testing::Scores(*snapshot);
    std::sort(snapshot_scores.begin(), snapshot_scores.end());
    std::vector<double> view_scores;
    for (const auto& [rid, score] : got_view) view_scores.push_back(score);
    std::sort(view_scores.begin(), view_scores.end());
    EXPECT_EQ(view_scores, snapshot_scores);
  }
}

TEST(MonitorServiceTest, SlowSubscriberLosesHistoryNotFreshness) {
  ServiceOptions opt = FastOptions();
  opt.hub.buffer_capacity = 4;  // tiny buffer: drops are expected
  MonitorService service(MakeBrute(), opt);
  const SessionId session = *service.OpenSession("slow");
  const auto specs = MakeRandomQueries(kDim, 1, 3, 5);
  const QueryId id = *service.Register(session, specs[0]);
  auto gen = MakeGenerator(Distribution::kIndependent, kDim, 17);
  for (Timestamp ts = 1; ts <= 400; ++ts) {
    TOPKMON_ASSERT_OK(service.Ingest(gen->NextPoint(), ts));
    if (ts % 50 == 0) TOPKMON_ASSERT_OK(service.Flush());
  }
  TOPKMON_ASSERT_OK(service.Flush());
  service.Shutdown();
  std::vector<DeltaEvent> events;
  service.PollDeltas(session, std::size_t(-1), &events);
  ASSERT_LE(events.size(), 4u);
  ASSERT_FALSE(events.empty());
  const std::uint64_t dropped = service.DroppedDeltas(session);
  EXPECT_GT(dropped, 0u);
  // Sequence accounting is airtight: last seq = delivered + dropped.
  EXPECT_EQ(events.back().seq, events.size() + dropped);
  // The freshest event survived.
  EXPECT_EQ(events.back().delta.query, id);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.deltas_dropped, dropped);
}

}  // namespace
}  // namespace topkmon
