#include "service/subscription_hub.h"

#include <gtest/gtest.h>

#include <thread>

#include "tests/test_util.h"

namespace topkmon {
namespace {

ResultDelta MakeDelta(QueryId query, Timestamp when, RecordId added_id) {
  ResultDelta d;
  d.query = query;
  d.when = when;
  d.added.push_back(ResultEntry{added_id, 0.5});
  return d;
}

TEST(SubscriptionHubTest, SequenceNumbersAreContiguousPerSession) {
  SubscriptionHub hub(HubOptions{});
  hub.Attach(1);
  hub.Attach(2);
  TOPKMON_ASSERT_OK(hub.Bind(10, 1));
  TOPKMON_ASSERT_OK(hub.Bind(20, 2));
  for (Timestamp t = 1; t <= 5; ++t) hub.Publish(MakeDelta(10, t, t));
  for (Timestamp t = 1; t <= 3; ++t) hub.Publish(MakeDelta(20, t, t));

  std::vector<DeltaEvent> events;
  EXPECT_EQ(hub.Poll(1, 100, &events), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 1);  // gap-free, starts at 1
    EXPECT_EQ(events[i].delta.query, 10u);
  }
  events.clear();
  EXPECT_EQ(hub.Poll(2, 100, &events), 3u);
  EXPECT_EQ(events.back().seq, 3u);
}

TEST(SubscriptionHubTest, OverflowDropsOldestAndAccountsForIt) {
  HubOptions opt;
  opt.buffer_capacity = 3;
  SubscriptionHub hub(opt);
  hub.Attach(1);
  TOPKMON_ASSERT_OK(hub.Bind(10, 1));
  for (Timestamp t = 1; t <= 5; ++t) hub.Publish(MakeDelta(10, t, t));

  EXPECT_EQ(hub.Dropped(1), 2u);
  EXPECT_EQ(hub.stats().dropped, 2u);
  std::vector<DeltaEvent> events;
  ASSERT_EQ(hub.Poll(1, 100, &events), 3u);
  // The two oldest were dropped: the survivors are seq 3..5, so the
  // consumer sees the gap (first seq != 1) and the drop counter agrees.
  EXPECT_EQ(events[0].seq, 3u);
  EXPECT_EQ(events[1].seq, 4u);
  EXPECT_EQ(events[2].seq, 5u);
  EXPECT_EQ(events[0].delta.when, 3);  // freshness kept, history lost
}

TEST(SubscriptionHubTest, UnboundQueriesAreCountedNotDelivered) {
  SubscriptionHub hub(HubOptions{});
  hub.Attach(1);
  hub.Publish(MakeDelta(10, 1, 1));  // never bound
  EXPECT_EQ(hub.stats().unrouted, 1u);
  EXPECT_EQ(hub.Depth(1), 0u);
  TOPKMON_ASSERT_OK(hub.Bind(10, 1));
  hub.Publish(MakeDelta(10, 2, 2));
  hub.Unbind(10);
  hub.Publish(MakeDelta(10, 3, 3));
  EXPECT_EQ(hub.Depth(1), 1u);  // only the delta published while bound
  EXPECT_EQ(hub.stats().unrouted, 2u);
}

TEST(SubscriptionHubTest, BindRequiresAttachedSessionAndUniqueQuery) {
  SubscriptionHub hub(HubOptions{});
  EXPECT_EQ(hub.Bind(10, 1).code(), StatusCode::kNotFound);
  hub.Attach(1);
  hub.Attach(2);
  TOPKMON_ASSERT_OK(hub.Bind(10, 1));
  EXPECT_EQ(hub.Bind(10, 2).code(), StatusCode::kAlreadyExists);
}

TEST(SubscriptionHubTest, DetachDiscardsBufferAndRoutes) {
  SubscriptionHub hub(HubOptions{});
  hub.Attach(1);
  TOPKMON_ASSERT_OK(hub.Bind(10, 1));
  hub.Publish(MakeDelta(10, 1, 1));
  hub.Detach(1);
  EXPECT_EQ(hub.Depth(1), 0u);
  hub.Publish(MakeDelta(10, 2, 2));  // route died with the session
  EXPECT_EQ(hub.stats().unrouted, 1u);
  std::vector<DeltaEvent> events;
  EXPECT_EQ(hub.Poll(1, 100, &events), 0u);
}

TEST(SubscriptionHubTest, WaitPollWakesOnPublish) {
  SubscriptionHub hub(HubOptions{});
  hub.Attach(1);
  TOPKMON_ASSERT_OK(hub.Bind(10, 1));
  std::vector<DeltaEvent> events;
  std::thread publisher([&hub] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    hub.Publish(MakeDelta(10, 1, 1));
  });
  const std::size_t n =
      hub.WaitPoll(1, 10, std::chrono::milliseconds(2000), &events);
  publisher.join();
  EXPECT_EQ(n, 1u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].delta.query, 10u);
}

TEST(SubscriptionHubTest, WaitPollTimesOutEmpty) {
  SubscriptionHub hub(HubOptions{});
  hub.Attach(1);
  std::vector<DeltaEvent> events;
  EXPECT_EQ(hub.WaitPoll(1, 10, std::chrono::milliseconds(10), &events),
            0u);
  EXPECT_TRUE(events.empty());
}

}  // namespace
}  // namespace topkmon
