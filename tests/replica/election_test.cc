// Election fault matrix for the follower-driven failover agent
// (src/replica/failover.h), three scenarios over a leader + two
// standbys:
//
//   1. Unequal applied journals: the follower with the LONGEST applied
//      journal wins, the shorter one adopts the winner, re-targets its
//      pump, catches up through it and observes the bumped epoch.
//   2. Equal journals: the deterministic tie-break (lexicographically
//      smallest endpoint) picks exactly one winner — never two leaders,
//      never zero.
//   3. A would-be winner dying mid-election drops out of the next probe
//      round's candidate set and the second-ranked follower takes over:
//      an election never leaves the group leaderless while any
//      candidate survives.
//
// The "short" follower is frozen deterministically by re-targeting its
// pump at a dead port (a bound-then-closed ephemeral port nothing
// listens on) before the extra records are ingested — no sleeps, no
// racing against the shipper.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/brute_force_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "replica/failover.h"
#include "replica/follower.h"
#include "replica/lease.h"
#include "tests/journal/journal_test_util.h"
#include "tests/net/net_test_util.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

using ::topkmon::testing::MakeRandomQueries;
using ::topkmon::testing::ScopedTempDir;

constexpr int kDim = 2;
constexpr std::size_t kWindow = 300;

std::unique_ptr<MonitorEngine> MakeEngine() {
  return std::make_unique<BruteForceEngine>(kDim, WindowSpec::Count(kWindow));
}

/// An ephemeral port with no listener behind it: bound, read back, and
/// closed without ever calling listen(), so connects are refused
/// promptly and a pump pointed here freezes where it stands.
std::uint16_t DeadPort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

void AwaitQuiescent(ReplicaFollower& follower) {
  std::uint64_t last = follower.stats().records_applied;
  int stable_rounds = 0;
  while (stable_rounds < 10) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::uint64_t now = follower.stats().records_applied;
    stable_rounds = now == last ? stable_rounds + 1 : 0;
    last = now;
  }
}

/// Leader + two standbys behind their own TcpServers, with `count`
/// acked records and `queries` registered — the shared fixture shape of
/// every scenario below.
struct Group {
  ScopedTempDir dir;
  Result<std::unique_ptr<MonitorService>> leader{
      Status::Internal("not started")};
  std::unique_ptr<TcpServer> leader_server;
  Result<std::unique_ptr<ReplicaFollower>> a{Status::Internal("not started")};
  Result<std::unique_ptr<ReplicaFollower>> b{Status::Internal("not started")};
  std::unique_ptr<TcpServer> a_server;
  std::unique_ptr<TcpServer> b_server;
  std::vector<QuerySpec> registered;
  std::atomic<Timestamp> clock{1};

  std::string endpoint_a() const {
    return "127.0.0.1:" + std::to_string(a_server->port());
  }
  std::string endpoint_b() const {
    return "127.0.0.1:" + std::to_string(b_server->port());
  }

  void Start() {
    ServiceOptions leader_opt;
    leader_opt.ingest.slack = 4;
    leader_opt.ingest.max_batch = 64;
    leader_opt.drain_wait = std::chrono::milliseconds(2);
    leader_opt.journal.dir = dir.path() + "/leader";
    leader_opt.journal.segment_bytes = 8192;
    leader_opt.journal.retain_segment_count = 6;
    leader_opt.journal.snapshot_every_cycles = 0;
    leader = MonitorService::Open(MakeEngine, leader_opt);
    ASSERT_TRUE(leader.ok()) << leader.status();
    const NetServerOptions net = testing::TestServerOptions();
    leader_server = std::make_unique<TcpServer>(**leader, net);
    TOPKMON_ASSERT_OK(leader_server->Start());

    for (const char* name : {"a", "b"}) {
      ServiceOptions fsvc;
      fsvc.ingest.slack = 4;
      fsvc.drain_wait = std::chrono::milliseconds(2);
      fsvc.journal.dir = dir.path() + "/" + name;
      fsvc.journal.retain_segment_count = 6;
      ReplicaFollowerOptions fopt;
      fopt.leader_port = leader_server->port();
      fopt.label = name;
      fopt.fetch_wait = std::chrono::milliseconds(20);
      fopt.reconnect_backoff = std::chrono::milliseconds(20);
      auto follower = ReplicaFollower::Open(MakeEngine, fsvc, fopt);
      ASSERT_TRUE(follower.ok()) << follower.status();
      auto server =
          std::make_unique<TcpServer>((*follower)->service(), net);
      TOPKMON_ASSERT_OK(server->Start());
      if (name[0] == 'a') {
        a = std::move(follower);
        a_server = std::move(server);
      } else {
        b = std::move(follower);
        b_server = std::move(server);
      }
    }
  }

  /// Acked ingest of `count` records; returns the leader's applied
  /// frontier afterwards.
  Timestamp IngestAcked(std::uint64_t count, std::uint64_t seed) {
    auto client = MonitorClient::Connect("127.0.0.1", leader_server->port(),
                                         "writer", /*resume=*/true);
    EXPECT_TRUE(client.ok()) << client.status();
    auto gen = MakeGenerator(Distribution::kIndependent, kDim, seed);
    std::uint64_t sent = 0;
    while (sent < count) {
      std::vector<Record> batch;
      for (int i = 0; i < 20 && sent < count; ++i, ++sent) {
        batch.emplace_back(0, gen->NextPoint(), clock.fetch_add(1));
      }
      const auto ack = (*client)->Ingest(std::move(batch));
      EXPECT_TRUE(ack.ok()) << ack.status();
    }
    EXPECT_TRUE((*client)->Close(/*close_session=*/false).ok());
    EXPECT_TRUE((*leader)->Flush().ok());
    return (*leader)->replication().applied_cycle_ts;
  }

  void RegisterQueries() {
    auto client = MonitorClient::Connect("127.0.0.1", leader_server->port(),
                                         "writer", /*resume=*/false);
    ASSERT_TRUE(client.ok()) << client.status();
    const auto specs = MakeRandomQueries(kDim, 2, 5, 31);
    const auto outcomes = (*client)->RegisterBatch(specs);
    ASSERT_TRUE(outcomes.ok()) << outcomes.status();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      ASSERT_EQ((*outcomes)[i].code, StatusCode::kOk);
      QuerySpec with_id = specs[i];
      with_id.id = (*outcomes)[i].query;
      registered.push_back(std::move(with_id));
    }
    TOPKMON_ASSERT_OK((*client)->Close(/*close_session=*/false));
  }

  FailoverOptions AgentOptions(const std::string& self,
                               const std::string& peer) const {
    FailoverOptions opt;
    opt.self_endpoint = self;
    opt.peers = {peer};
    opt.election_timeout = std::chrono::milliseconds(400);
    opt.poll_interval = std::chrono::milliseconds(50);
    opt.probe_timeout = std::chrono::milliseconds(500);
    opt.takeover_backoff = std::chrono::milliseconds(100);
    return opt;
  }

  void Shutdown() {
    if (a_server) a_server->Stop();
    if (b_server) b_server->Stop();
    if (a.ok()) {
      (*a)->Stop();
      (*a)->service().Shutdown();
    }
    if (b.ok()) {
      (*b)->Stop();
      (*b)->service().Shutdown();
    }
    if (leader_server) leader_server->Stop();
    if (leader.ok() && *leader) (*leader)->Shutdown();
  }
};

/// The epoch `winner` mints in the group's FIRST election (everyone
/// still at epoch 0): next generation tagged with the winner's rank in
/// the sorted two-member set.
std::uint64_t ExpectedFirstEpoch(const std::string& winner,
                                 const std::string& other) {
  return MintFencingEpoch(0, winner < other ? 0 : 1);
}

bool WaitUntil(const std::function<bool()>& done,
               std::chrono::seconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return done();
}

TEST(ReplicaElectionTest, LongestAppliedJournalWinsAndLoserCatchesUp) {
  Group g;
  g.Start();
  if (::testing::Test::HasFatalFailure()) return;
  g.RegisterQueries();
  const Timestamp ts1 = g.IngestAcked(150, 7);
  TOPKMON_ASSERT_OK((*g.a)->WaitForCycleTs(ts1, std::chrono::seconds(30)));
  TOPKMON_ASSERT_OK((*g.b)->WaitForCycleTs(ts1, std::chrono::seconds(30)));

  // Freeze B, then advance the group: A ends strictly longer.
  (*g.b)->SetLeader("127.0.0.1", DeadPort());
  AwaitQuiescent(**g.b);
  const Timestamp ts2 = g.IngestAcked(150, 8);
  TOPKMON_ASSERT_OK((*g.a)->WaitForCycleTs(ts2, std::chrono::seconds(30)));
  ASSERT_LT((*g.b)->stats().applied_cycle_ts, ts2);

  g.leader_server->Stop();
  FailoverAgent agent_a(g.a->get(),
                        g.AgentOptions(g.endpoint_a(), g.endpoint_b()));
  FailoverAgent agent_b(g.b->get(),
                        g.AgentOptions(g.endpoint_b(), g.endpoint_a()));

  // The longer follower — and only it — promotes.
  ASSERT_TRUE(WaitUntil([&] { return agent_a.promoted(); },
                        std::chrono::seconds(30)));
  EXPECT_EQ((*g.a)->service().role(), ServiceRole::kLeader);
  const std::uint64_t epoch_a =
      ExpectedFirstEpoch(g.endpoint_a(), g.endpoint_b());
  EXPECT_EQ((*g.a)->service().fencing_epoch(), epoch_a);
  // The shorter one adopts the winner and re-targets its pump at it.
  ASSERT_TRUE(WaitUntil(
      [&] { return agent_b.stats().leaders_adopted >= 1; },
      std::chrono::seconds(30)));
  EXPECT_FALSE(agent_b.promoted());
  EXPECT_EQ((*g.b)->leader_endpoint(), g.endpoint_a());

  // New-term writes flow A -> B: the loser catches up through the
  // winner (follower-assisted catch-up) and observes the bumped epoch
  // from the shipped chunks.
  {
    auto gen = MakeGenerator(Distribution::kClustered, kDim, 9);
    for (int i = 0; i < 100; ++i) {
      TOPKMON_ASSERT_OK((*g.a)->service().Ingest(gen->NextPoint(),
                                                 g.clock.fetch_add(1)));
    }
    TOPKMON_ASSERT_OK((*g.a)->service().Flush());
  }
  const Timestamp ts3 = (*g.a)->service().replication().applied_cycle_ts;
  TOPKMON_ASSERT_OK((*g.b)->WaitForCycleTs(ts3, std::chrono::seconds(30)));
  EXPECT_TRUE(WaitUntil(
      [&] { return (*g.b)->service().fencing_epoch() == epoch_a; },
      std::chrono::seconds(10)));
  for (const QuerySpec& spec : g.registered) {
    const auto a_view = (*g.a)->service().CurrentResult(spec.id);
    const auto b_view = (*g.b)->service().CurrentResult(spec.id);
    ASSERT_TRUE(a_view.ok()) << a_view.status();
    ASSERT_TRUE(b_view.ok()) << b_view.status();
    EXPECT_EQ(testing::Scores(*a_view), testing::Scores(*b_view))
        << "query " << spec.id;
  }
  agent_a.Stop();
  agent_b.Stop();
  g.Shutdown();
}

TEST(ReplicaElectionTest, EqualFrontiersBreakTiesBySmallestEndpoint) {
  Group g;
  g.Start();
  if (::testing::Test::HasFatalFailure()) return;
  g.RegisterQueries();
  const Timestamp ts1 = g.IngestAcked(100, 7);
  TOPKMON_ASSERT_OK((*g.a)->WaitForCycleTs(ts1, std::chrono::seconds(30)));
  TOPKMON_ASSERT_OK((*g.b)->WaitForCycleTs(ts1, std::chrono::seconds(30)));
  AwaitQuiescent(**g.a);
  AwaitQuiescent(**g.b);
  // The tie premise: byte-identical shipped prefixes.
  EXPECT_EQ((*g.a)->stats().current_segment, (*g.b)->stats().current_segment);
  EXPECT_EQ((*g.a)->stats().shipped_offset, (*g.b)->stats().shipped_offset);

  g.leader_server->Stop();
  const std::string expected_winner =
      std::min(g.endpoint_a(), g.endpoint_b());
  FailoverAgent agent_a(g.a->get(),
                        g.AgentOptions(g.endpoint_a(), g.endpoint_b()));
  FailoverAgent agent_b(g.b->get(),
                        g.AgentOptions(g.endpoint_b(), g.endpoint_a()));

  ASSERT_TRUE(WaitUntil(
      [&] { return agent_a.promoted() || agent_b.promoted(); },
      std::chrono::seconds(30)));
  FailoverAgent& winner =
      expected_winner == g.endpoint_a() ? agent_a : agent_b;
  FailoverAgent& loser =
      expected_winner == g.endpoint_a() ? agent_b : agent_a;
  ReplicaFollower& winner_node =
      expected_winner == g.endpoint_a() ? **g.a : **g.b;
  ReplicaFollower& loser_node =
      expected_winner == g.endpoint_a() ? **g.b : **g.a;
  // Exactly one leader, and it is the deterministic one: every agent
  // ranks the same tied snapshot, so they all name the same winner.
  EXPECT_TRUE(winner.promoted());
  ASSERT_TRUE(WaitUntil([&] { return loser.stats().leaders_adopted >= 1; },
                        std::chrono::seconds(30)));
  EXPECT_FALSE(loser.promoted());
  EXPECT_EQ(winner_node.service().role(), ServiceRole::kLeader);
  // The tie winner is the smallest endpoint, i.e. rank 0.
  const std::uint64_t winner_epoch = MintFencingEpoch(0, 0);
  EXPECT_EQ(winner_node.service().fencing_epoch(), winner_epoch);
  EXPECT_EQ(loser_node.service().role(), ServiceRole::kFollower);
  EXPECT_EQ(loser_node.leader_endpoint(), expected_winner);
  EXPECT_TRUE(WaitUntil(
      [&] { return loser_node.service().fencing_epoch() == winner_epoch; },
      std::chrono::seconds(10)));
  agent_a.Stop();
  agent_b.Stop();
  g.Shutdown();
}

TEST(ReplicaElectionTest, SymmetricPartitionMintsDistinctEpochsAndHeals) {
  // Worst-case split: the leader dies AND the two standbys cannot probe
  // each other. Each agent sees itself as the only candidate and
  // promotes — split-brain is unavoidable under a lease-based design,
  // but the minted epochs must DIFFER (rank-tagged generations), so the
  // strict greater-than arbitration deposes exactly one of the two
  // once connectivity returns.
  Group g;
  g.Start();
  if (::testing::Test::HasFatalFailure()) return;
  g.RegisterQueries();
  const Timestamp ts1 = g.IngestAcked(100, 7);
  TOPKMON_ASSERT_OK((*g.a)->WaitForCycleTs(ts1, std::chrono::seconds(30)));
  TOPKMON_ASSERT_OK((*g.b)->WaitForCycleTs(ts1, std::chrono::seconds(30)));

  g.leader_server->Stop();
  g.a_server->Stop();  // A and B cannot reach each other's probes
  g.b_server->Stop();
  FailoverAgent agent_a(g.a->get(),
                        g.AgentOptions(g.endpoint_a(), g.endpoint_b()));
  FailoverAgent agent_b(g.b->get(),
                        g.AgentOptions(g.endpoint_b(), g.endpoint_a()));
  ASSERT_TRUE(WaitUntil(
      [&] { return agent_a.promoted() && agent_b.promoted(); },
      std::chrono::seconds(30)));

  // Both are leaders — but at node-unique epochs: same generation,
  // different rank byte.
  const std::uint64_t epoch_a = (*g.a)->service().fencing_epoch();
  const std::uint64_t epoch_b = (*g.b)->service().fencing_epoch();
  EXPECT_NE(epoch_a, epoch_b);
  EXPECT_EQ(FencingEpochGeneration(epoch_a), FencingEpochGeneration(epoch_b));
  EXPECT_EQ(epoch_a, ExpectedFirstEpoch(g.endpoint_a(), g.endpoint_b()));
  EXPECT_EQ(epoch_b, ExpectedFirstEpoch(g.endpoint_b(), g.endpoint_a()));

  // The partition heals: each side learns of the other's epoch (in
  // production via probes, chunks, or router re-resolution). The lower
  // epoch fences itself and refuses writes; the higher one is immune to
  // the lower's stale claim and keeps serving.
  MonitorService& lower =
      epoch_a < epoch_b ? (*g.a)->service() : (*g.b)->service();
  MonitorService& higher =
      epoch_a < epoch_b ? (*g.b)->service() : (*g.a)->service();
  TOPKMON_ASSERT_OK(higher.ObserveFencingEpoch(std::min(epoch_a, epoch_b)));
  EXPECT_FALSE(higher.IsFenced());
  TOPKMON_ASSERT_OK(lower.ObserveFencingEpoch(std::max(epoch_a, epoch_b)));
  EXPECT_TRUE(lower.IsFenced());
  auto gen = MakeGenerator(Distribution::kClustered, kDim, 9);
  EXPECT_EQ(lower.Ingest(gen->NextPoint(), g.clock.fetch_add(1)).code(),
            StatusCode::kFenced);
  TOPKMON_ASSERT_OK(higher.Ingest(gen->NextPoint(), g.clock.fetch_add(1)));
  agent_a.Stop();
  agent_b.Stop();
  g.Shutdown();
}

TEST(ReplicaElectionTest, DeadWinnerMidElectionSecondCandidateTakesOver) {
  Group g;
  g.Start();
  if (::testing::Test::HasFatalFailure()) return;
  g.RegisterQueries();
  const Timestamp ts1 = g.IngestAcked(100, 7);
  TOPKMON_ASSERT_OK((*g.a)->WaitForCycleTs(ts1, std::chrono::seconds(30)));
  TOPKMON_ASSERT_OK((*g.b)->WaitForCycleTs(ts1, std::chrono::seconds(30)));
  (*g.b)->SetLeader("127.0.0.1", DeadPort());
  AwaitQuiescent(**g.b);
  const Timestamp ts2 = g.IngestAcked(100, 8);
  TOPKMON_ASSERT_OK((*g.a)->WaitForCycleTs(ts2, std::chrono::seconds(30)));
  ASSERT_LT((*g.b)->stats().applied_cycle_ts, ts2);

  // Kill the leader. Only B runs an agent — A is the rightful winner,
  // but its own agent "died": it will answer probes as a candidate yet
  // never promote.
  g.leader_server->Stop();
  FailoverAgent agent_b(g.b->get(),
                        g.AgentOptions(g.endpoint_b(), g.endpoint_a()));

  // B keeps deferring while the outranking candidate still answers —
  // rounds tick without a promotion. (A transiently unreachable live
  // server would break this expectation; on loopback it does not
  // happen.)
  ASSERT_TRUE(WaitUntil([&] { return agent_b.stats().rounds >= 2; },
                        std::chrono::seconds(30)));
  EXPECT_FALSE(agent_b.promoted());

  // Now A dies mid-election: it stops answering probes, drops out of
  // the candidate set, and B — the shorter follower — must take over
  // rather than leave the group leaderless.
  g.a_server->Stop();
  (*g.a)->Stop();
  ASSERT_TRUE(WaitUntil([&] { return agent_b.promoted(); },
                        std::chrono::seconds(30)));
  EXPECT_EQ((*g.b)->service().role(), ServiceRole::kLeader);
  EXPECT_EQ((*g.b)->service().fencing_epoch(),
            ExpectedFirstEpoch(g.endpoint_b(), g.endpoint_a()));
  EXPECT_GE(agent_b.stats().probes_failed, 1u);
  EXPECT_GE(agent_b.stats().rounds, 2u);
  // The new leader accepts writes immediately.
  auto gen = MakeGenerator(Distribution::kClustered, kDim, 9);
  TOPKMON_ASSERT_OK(
      (*g.b)->service().Ingest(gen->NextPoint(), g.clock.fetch_add(1)));
  TOPKMON_ASSERT_OK((*g.b)->service().Flush());
  agent_b.Stop();
  g.Shutdown();
}

}  // namespace
}  // namespace topkmon
