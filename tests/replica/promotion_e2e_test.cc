// Kill-the-leader acceptance: a follower promoted mid-stream must serve
// top-k results and gap-free, sequence-contiguous delta streams that
// match an uninterrupted BruteForce run cycle-for-cycle.
//
// Shape: a journaled leader (sharded TMA) fronts real TCP producers; a
// ReplicaFollower ships and replays its journal live (with segment
// rotations mid-stream) and fronts its own TcpServer. The leader is then
// killed *with journaled cycles still unshipped* (they are written after
// its server stopped), so the follower holds a strict prefix — exactly
// the crash shape. After Promote() the follower accepts registrations
// and ingest and keeps the same sessions' delta sequences running.
// Ground truth: every cycle the follower applied (replicated and
// post-promotion, via the cycle observer) replayed into a BruteForce
// engine with the same query lifetimes at the same stream positions.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/brute_force_engine.h"
#include "core/sharded_engine.h"
#include "core/tma_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "replica/follower.h"
#include "tests/journal/journal_test_util.h"
#include "tests/net/net_test_util.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

using ::topkmon::testing::MakeRandomQueries;
using ::topkmon::testing::ScopedTempDir;

constexpr int kDim = 2;
constexpr std::size_t kWindow = 500;

std::unique_ptr<MonitorEngine> MakeShardedTma() {
  return std::make_unique<ShardedEngine>(2, [] {
    GridEngineOptions grid;
    grid.dim = kDim;
    grid.window = WindowSpec::Count(kWindow);
    grid.cell_budget = 256;
    return std::unique_ptr<MonitorEngine>(new TmaEngine(grid));
  });
}

std::vector<double> ApplyDelta(std::map<RecordId, double>& view,
                               const ResultDelta& delta) {
  for (const ResultEntry& e : delta.removed) view.erase(e.id);
  for (const ResultEntry& e : delta.added) view.emplace(e.id, e.score);
  std::vector<double> scores;
  scores.reserve(view.size());
  for (const auto& [id, score] : view) scores.push_back(score);
  std::sort(scores.begin(), scores.end());
  return scores;
}

/// Polls until the follower's applied-record count stops moving (the
/// pump has drained everything the dead leader managed to ship).
void AwaitQuiescent(ReplicaFollower& follower) {
  std::uint64_t last = follower.stats().records_applied;
  int stable_rounds = 0;
  while (stable_rounds < 10) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::uint64_t now = follower.stats().records_applied;
    stable_rounds = now == last ? stable_rounds + 1 : 0;
    last = now;
  }
}

TEST(ReplicaPromotionE2eTest, PromotedFollowerMatchesBruteForceMidKill) {
  // ---- leader: journaled service + TCP front-end ----------------------
  ScopedTempDir leader_dir;
  ServiceOptions leader_opt;
  leader_opt.ingest.slack = 4;
  leader_opt.ingest.max_batch = 128;  // many cycles -> rotations happen
  leader_opt.drain_wait = std::chrono::milliseconds(2);
  leader_opt.hub.buffer_capacity = 1 << 16;
  leader_opt.journal.dir = leader_dir.path() + "/leader";
  leader_opt.journal.segment_bytes = 16384;
  leader_opt.journal.retain_segment_count = 3;  // replication horizon
  leader_opt.journal.snapshot_every_cycles = 0;
  auto leader = MonitorService::Open(MakeShardedTma, leader_opt);
  ASSERT_TRUE(leader.ok()) << leader.status();
  const NetServerOptions net = testing::TestServerOptions();
  auto leader_server = std::make_unique<TcpServer>(**leader, net);
  TOPKMON_ASSERT_OK(leader_server->Start());

  // ---- follower: ships the journal, serves its own port ---------------
  ScopedTempDir follower_dir;
  ServiceOptions fsvc;
  fsvc.ingest.slack = 4;
  fsvc.drain_wait = std::chrono::milliseconds(2);
  fsvc.hub.buffer_capacity = 1 << 16;
  fsvc.journal.dir = follower_dir.path() + "/repl";
  fsvc.journal.retain_segment_count = 2;
  ReplicaFollowerOptions fopt;
  fopt.leader_port = leader_server->port();
  fopt.fetch_wait = std::chrono::milliseconds(20);
  fopt.reconnect_backoff = std::chrono::milliseconds(20);
  auto follower = ReplicaFollower::Open(MakeShardedTma, fsvc, fopt);
  ASSERT_TRUE(follower.ok()) << follower.status();

  // Ground-truth seam: every cycle the follower applies, in order —
  // replicated now, driver-driven after promotion.
  std::mutex cycles_mu;
  std::vector<std::pair<Timestamp, std::vector<Record>>> cycles;
  (*follower)->service().SetCycleObserver(
      [&cycles_mu, &cycles](Timestamp ts, RecordSpan b) {
        std::lock_guard<std::mutex> lock(cycles_mu);
        cycles.emplace_back(ts,
                            std::vector<Record>(b.begin(), b.end()));
      });

  TcpServer follower_server((*follower)->service(), net);
  TOPKMON_ASSERT_OK(follower_server.Start());

  // ---- queries: one batched Register over the wire --------------------
  const auto specs = MakeRandomQueries(kDim, 4, 6, 2024);
  std::vector<QuerySpec> registered;  // with service-assigned ids
  {
    auto dash = MonitorClient::Connect("127.0.0.1", leader_server->port(),
                                       "dash", /*resume=*/false);
    ASSERT_TRUE(dash.ok()) << dash.status();
    EXPECT_FALSE((*dash)->server_is_follower());
    const std::vector<QuerySpec> first3(specs.begin(), specs.begin() + 3);
    const auto outcomes = (*dash)->RegisterBatch(first3);
    ASSERT_TRUE(outcomes.ok()) << outcomes.status();
    ASSERT_EQ(outcomes->size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_EQ((*outcomes)[i].code, StatusCode::kOk)
          << (*outcomes)[i].message;
      QuerySpec with_id = specs[i];
      with_id.id = (*outcomes)[i].query;
      registered.push_back(std::move(with_id));
    }
    TOPKMON_ASSERT_OK((*dash)->Close(/*close_session=*/false));
  }

  // ---- stream phase: concurrent TCP producers into the leader ---------
  std::atomic<Timestamp> clock{1};
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      auto client = MonitorClient::Connect(
          "127.0.0.1", leader_server->port(), "prod-" + std::to_string(p),
          /*resume=*/false);
      ASSERT_TRUE(client.ok()) << client.status();
      auto gen = MakeGenerator(Distribution::kIndependent, kDim,
                               1000 + static_cast<std::uint64_t>(p));
      int sent = 0;
      while (sent < 700) {
        std::vector<Record> batch;
        for (int i = 0; i < 25 && sent < 700; ++i, ++sent) {
          batch.emplace_back(0, gen->NextPoint(), clock.fetch_add(1));
        }
        const auto ack = (*client)->Ingest(std::move(batch));
        ASSERT_TRUE(ack.ok()) << ack.status();
        ASSERT_EQ(ack->rejected, 0u) << ack->first_error;
      }
      TOPKMON_ASSERT_OK((*client)->Close(/*close_session=*/false));
    });
  }
  for (std::thread& t : producers) t.join();
  TOPKMON_ASSERT_OK((*leader)->Flush());
  // Let the follower finish the stream phase (crossing every segment
  // rotation) before the kill — the unshipped tail below is what makes
  // the kill a real mid-stream crash, deterministically.
  TOPKMON_ASSERT_OK((*follower)->WaitForCycleTs(
      (*leader)->replication().applied_cycle_ts, std::chrono::seconds(30)));

  // ---- kill the leader, with journaled work the follower never gets ---
  leader_server->Stop();  // the wire goes dark first ...
  {
    auto gen = MakeGenerator(Distribution::kClustered, kDim, 4242);
    for (int i = 0; i < 300; ++i) {
      TOPKMON_ASSERT_OK(
          (*leader)->Ingest(gen->NextPoint(), clock.fetch_add(1)));
    }
    TOPKMON_ASSERT_OK((*leader)->Flush());  // ... journaled, unshippable
  }
  AwaitQuiescent(**follower);
  const std::uint64_t replicated_records =
      (*follower)->service().stats().records_applied;
  EXPECT_GT(replicated_records, 0u);
  EXPECT_LT(replicated_records, (*leader)->stats().records_applied)
      << "the kill must leave journaled leader work unshipped";
  EXPECT_GE((*follower)->stats().segments_completed, 1u)
      << "the stream phase should have crossed segment rotations";
  ASSERT_EQ((*follower)->stats().restarts, 0u)
      << "a full resync re-delivers initial results and would void the "
         "cycle-for-cycle ground-truth comparison";

  // ---- the follower's session serves the replicated delta stream ------
  auto dash = MonitorClient::Connect("127.0.0.1", follower_server.port(),
                                     "dash", /*resume=*/true);
  ASSERT_TRUE(dash.ok()) << dash.status();
  EXPECT_TRUE((*dash)->resumed())
      << "the leader-side session label must exist on the follower";
  EXPECT_TRUE((*dash)->server_is_follower());
  std::vector<DeltaEvent> received;
  auto drain = [&dash, &received] {
    while (true) {
      auto events =
          (*dash)->PollDeltas(4096, std::chrono::milliseconds(30));
      ASSERT_TRUE(events.ok()) << events.status();
      if (events->empty()) break;
      received.insert(received.end(), events->begin(), events->end());
    }
  };
  drain();
  ASSERT_FALSE(received.empty());

  // ---- promote ---------------------------------------------------------
  TOPKMON_ASSERT_OK((*follower)->Promote());
  EXPECT_EQ((*follower)->service().role(), ServiceRole::kLeader);
  const std::size_t cycles_at_promotion = [&] {
    std::lock_guard<std::mutex> lock(cycles_mu);
    return cycles.size();
  }();

  // The same connection keeps working; a fresh handshake sees a leader.
  {
    auto probe = MonitorClient::Connect(
        "127.0.0.1", follower_server.port(), "probe", /*resume=*/false);
    ASSERT_TRUE(probe.ok()) << probe.status();
    EXPECT_FALSE((*probe)->server_is_follower());
    TOPKMON_ASSERT_OK((*probe)->Close(/*close_session=*/true));
  }

  // Register one more query (batched) and stream fresh records into the
  // promoted node — the failover write path.
  const auto outcome4 =
      (*dash)->RegisterBatch({specs[3]});
  ASSERT_TRUE(outcome4.ok()) << outcome4.status();
  ASSERT_EQ((*outcome4)[0].code, StatusCode::kOk) << (*outcome4)[0].message;
  QuerySpec spec4 = specs[3];
  spec4.id = (*outcome4)[0].query;
  {
    auto writer = MonitorClient::Connect(
        "127.0.0.1", follower_server.port(), "prod-0", /*resume=*/true);
    ASSERT_TRUE(writer.ok()) << writer.status();
    auto gen = MakeGenerator(Distribution::kIndependent, kDim, 777);
    int sent = 0;
    while (sent < 400) {
      std::vector<Record> batch;
      for (int i = 0; i < 25 && sent < 400; ++i, ++sent) {
        batch.emplace_back(0, gen->NextPoint(), clock.fetch_add(1));
      }
      const auto ack = (*writer)->Ingest(std::move(batch));
      ASSERT_TRUE(ack.ok()) << ack.status();
      ASSERT_EQ(ack->rejected, 0u) << ack->first_error;
    }
    TOPKMON_ASSERT_OK((*writer)->Close(/*close_session=*/false));
  }
  TOPKMON_ASSERT_OK((*follower)->service().Flush());
  drain();

  // Post-promotion snapshots come from a leader: zero staleness bound.
  const auto snap = (*dash)->CurrentResult(registered[0].id);
  ASSERT_TRUE(snap.ok()) << snap.status();
  EXPECT_EQ((*dash)->snapshot_stale_by(), 0);
  TOPKMON_ASSERT_OK((*dash)->Close(/*close_session=*/false));
  follower_server.Stop();

  // ---- gap-free: one contiguous sequence across kill + promotion ------
  std::map<QueryId, std::vector<ResultDelta>> got;
  std::uint64_t expected_seq = 1;
  for (const DeltaEvent& e : received) {
    EXPECT_EQ(e.seq, expected_seq++) << "sequence gap across promotion";
    got[e.delta.query].push_back(e.delta);
  }

  // ---- ground truth: BruteForce over the follower's applied cycles ----
  std::map<QueryId, std::vector<ResultDelta>> truth;
  BruteForceEngine brute(kDim, WindowSpec::Count(kWindow));
  brute.SetDeltaCallback(
      [&truth](const ResultDelta& d) { truth[d.query].push_back(d); });
  for (const QuerySpec& spec : registered) {
    TOPKMON_ASSERT_OK(brute.RegisterQuery(spec));
  }
  {
    std::lock_guard<std::mutex> lock(cycles_mu);
    ASSERT_GT(cycles.size(), cycles_at_promotion)
        << "post-promotion ingest must have driven new cycles";
    for (std::size_t i = 0; i < cycles.size(); ++i) {
      if (i == cycles_at_promotion) {
        TOPKMON_ASSERT_OK(brute.RegisterQuery(spec4));
      }
      TOPKMON_ASSERT_OK(brute.ProcessCycle(cycles[i].first,
                                           cycles[i].second));
    }
  }
  std::vector<QuerySpec> all_queries = registered;
  all_queries.push_back(spec4);
  for (const QuerySpec& spec : all_queries) {
    const auto& got_deltas = got[spec.id];
    const auto& want_deltas = truth[spec.id];
    ASSERT_EQ(got_deltas.size(), want_deltas.size())
        << "query " << spec.id;
    std::map<RecordId, double> got_view;
    std::map<RecordId, double> want_view;
    for (std::size_t i = 0; i < got_deltas.size(); ++i) {
      EXPECT_EQ(got_deltas[i].when, want_deltas[i].when)
          << "query " << spec.id << " event " << i;
      ASSERT_EQ(ApplyDelta(got_view, got_deltas[i]),
                ApplyDelta(want_view, want_deltas[i]))
          << "query " << spec.id << " diverges at event " << i;
    }
    // ... and the final top-k matches entry for entry.
    const auto brute_result = brute.CurrentResult(spec.id);
    const auto follower_result =
        (*follower)->service().CurrentResult(spec.id);
    ASSERT_TRUE(brute_result.ok()) << brute_result.status();
    ASSERT_TRUE(follower_result.ok()) << follower_result.status();
    EXPECT_EQ(testing::Scores(*brute_result),
              testing::Scores(*follower_result))
        << "query " << spec.id;
  }
  (*follower)->service().Shutdown();
  (*leader)->Shutdown();
}

}  // namespace
}  // namespace topkmon
