// Split-brain fault injection: partition a leased leader away from its
// follower, let the lease lapse, and let the standby's failover agent
// self-promote. The safety claims under test:
//
//   * every record the old leader ACKED before the partition is present
//     on the promoted node (no acked record lost),
//   * every write attempted on the deposed leader after its lease
//     lapsed is refused with FENCED (none silently accepted, none
//     journaled into a divergent history),
//   * the deposed leader, restarted in follower mode over its own
//     journal directory, rejoins the group behind the new leader,
//     observes the bumped fencing epoch (and persists it, so a second
//     restart cannot resurrect the old term) and converges to the new
//     leader's state byte-for-byte downstream of the same journal.
//
// The leader's lease runs on an injected clock, so "past lease expiry"
// is an exact instant rather than a sleep: the partition (its TcpServer
// stops) and the lease lapse are two separately controlled faults.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/brute_force_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "replica/failover.h"
#include "replica/follower.h"
#include "replica/lease.h"
#include "tests/journal/journal_test_util.h"
#include "tests/net/net_test_util.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

using ::topkmon::testing::MakeRandomQueries;
using ::topkmon::testing::ScopedTempDir;

constexpr int kDim = 2;
constexpr std::size_t kWindow = 300;

std::unique_ptr<MonitorEngine> MakeEngine() {
  return std::make_unique<BruteForceEngine>(kDim, WindowSpec::Count(kWindow));
}

TEST(ReplicaFailoverFaultTest, SplitBrainFencesDeposedLeaderAndRejoins) {
  // ---- leased leader + follower with an unattended agent --------------
  ScopedTempDir dir;
  ServiceOptions leader_opt;
  leader_opt.ingest.slack = 4;
  leader_opt.ingest.max_batch = 64;
  leader_opt.drain_wait = std::chrono::milliseconds(2);
  leader_opt.journal.dir = dir.path() + "/leader";
  leader_opt.journal.segment_bytes = 8192;
  leader_opt.journal.retain_segment_count = 4;
  leader_opt.journal.snapshot_every_cycles = 0;
  leader_opt.lease.enabled = true;
  leader_opt.lease.duration_seconds = 5.0;
  auto leader = MonitorService::Open(MakeEngine, leader_opt);
  ASSERT_TRUE(leader.ok()) << leader.status();
  std::atomic<double> leader_now{1000.0};
  (*leader)->SetClockForTesting([&leader_now] { return leader_now.load(); });
  const NetServerOptions net = testing::TestServerOptions();
  auto leader_server = std::make_unique<TcpServer>(**leader, net);
  TOPKMON_ASSERT_OK(leader_server->Start());

  ServiceOptions fsvc;
  fsvc.ingest.slack = 4;
  fsvc.drain_wait = std::chrono::milliseconds(2);
  fsvc.journal.dir = dir.path() + "/standby";
  fsvc.journal.retain_segment_count = 4;
  ReplicaFollowerOptions fopt;
  fopt.leader_port = leader_server->port();
  fopt.fetch_wait = std::chrono::milliseconds(20);
  fopt.reconnect_backoff = std::chrono::milliseconds(20);
  auto follower = ReplicaFollower::Open(MakeEngine, fsvc, fopt);
  ASSERT_TRUE(follower.ok()) << follower.status();
  TcpServer follower_server((*follower)->service(), net);
  TOPKMON_ASSERT_OK(follower_server.Start());

  FailoverOptions agent_opt;
  agent_opt.self_endpoint =
      "127.0.0.1:" + std::to_string(follower_server.port());
  agent_opt.election_timeout = std::chrono::milliseconds(1000);
  agent_opt.poll_interval = std::chrono::milliseconds(50);
  agent_opt.takeover_backoff = std::chrono::milliseconds(100);
  FailoverAgent agent(follower->get(), agent_opt);

  // ---- acked history: everything here must survive the failover -------
  const auto specs = MakeRandomQueries(kDim, 2, 5, 99);
  std::vector<QuerySpec> registered;
  std::atomic<Timestamp> clock{1};
  constexpr std::uint64_t kAcked = 200;
  {
    auto client = MonitorClient::Connect("127.0.0.1", leader_server->port(),
                                         "writer", /*resume=*/false);
    ASSERT_TRUE(client.ok()) << client.status();
    const auto outcomes = (*client)->RegisterBatch(specs);
    ASSERT_TRUE(outcomes.ok()) << outcomes.status();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      ASSERT_EQ((*outcomes)[i].code, StatusCode::kOk);
      QuerySpec with_id = specs[i];
      with_id.id = (*outcomes)[i].query;
      registered.push_back(std::move(with_id));
    }
    auto gen = MakeGenerator(Distribution::kIndependent, kDim, 7);
    std::uint64_t sent = 0;
    while (sent < kAcked) {
      std::vector<Record> batch;
      for (int i = 0; i < 20 && sent < kAcked; ++i, ++sent) {
        batch.emplace_back(0, gen->NextPoint(), clock.fetch_add(1));
      }
      const auto ack = (*client)->Ingest(std::move(batch));
      ASSERT_TRUE(ack.ok()) << ack.status();
      ASSERT_EQ(ack->rejected, 0u) << ack->first_error;
    }
    TOPKMON_ASSERT_OK((*client)->Close(/*close_session=*/false));
  }
  TOPKMON_ASSERT_OK((*leader)->Flush());
  const Timestamp acked_ts = (*leader)->replication().applied_cycle_ts;
  TOPKMON_ASSERT_OK(
      (*follower)->WaitForCycleTs(acked_ts, std::chrono::seconds(30)));

  // ---- fault: partition the leader, lapse its lease -------------------
  leader_server->Stop();
  leader_now.store(1000.0 + 60.0);  // well past duration_seconds

  // The deposed leader refuses every write from the instant the lease
  // lapsed — ingest AND registration — with FENCED, not some generic
  // failure a client would blindly retry against the same node.
  {
    auto gen = MakeGenerator(Distribution::kClustered, kDim, 11);
    for (int i = 0; i < 3; ++i) {
      const Status refused =
          (*leader)->Ingest(gen->NextPoint(), clock.fetch_add(1));
      EXPECT_EQ(refused.code(), StatusCode::kFenced) << refused;
    }
    // Fencing is checked before session validation, so any session id
    // draws the FENCED refusal.
    const auto reg = (*leader)->Register(SessionId{0}, specs[0]);
    EXPECT_EQ(reg.status().code(), StatusCode::kFenced) << reg.status();
    EXPECT_TRUE((*leader)->IsFenced());
  }

  // A probe of the deposed leader tells the truth: the role still says
  // leader (it never flips on fencing), but the fenced latch rides the
  // StatusInfo answer — so electing followers and the cluster router
  // know not to adopt this node. Journal fetches are refused with
  // FENCED for the same reason: a pump stuck here must stall into its
  // own election instead of following a dead term.
  {
    TcpServer deposed_server(**leader, net);
    TOPKMON_ASSERT_OK(deposed_server.Start());
    auto probe = MonitorClient::Connect("127.0.0.1", deposed_server.port(),
                                        "probe", /*resume=*/false);
    ASSERT_TRUE(probe.ok()) << probe.status();
    const auto status = (*probe)->GetStatus();
    ASSERT_TRUE(status.ok()) << status.status();
    EXPECT_EQ(status->role, 0);  // still claims leader...
    EXPECT_TRUE(status->fenced);  // ...but the latch says deposed
    const auto fetch =
        (*probe)->ReplFetch(0, 0, 0, std::chrono::milliseconds(0));
    ASSERT_FALSE(fetch.ok());
    EXPECT_EQ(fetch.status().code(), StatusCode::kFenced) << fetch.status();
    TOPKMON_ASSERT_OK((*probe)->Close(/*close_session=*/false));
    deposed_server.Stop();
  }

  // ---- the standby self-promotes, unattended --------------------------
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!agent.promoted() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  ASSERT_TRUE(agent.promoted()) << "no unattended promotion within 30s";
  EXPECT_EQ((*follower)->service().role(), ServiceRole::kLeader);
  // A lone standby (no peers configured) ranks 0 in its one-member
  // set: first minted epoch = generation 1, rank 0.
  const std::uint64_t promoted_epoch = MintFencingEpoch(0, 0);
  EXPECT_EQ((*follower)->service().fencing_epoch(), promoted_epoch);

  // No acked record lost: the promoted node applied exactly the acked
  // history (the fenced attempts above are absent — they were refused,
  // not half-accepted), and serves the same top-k the old leader froze
  // at.
  EXPECT_EQ((*follower)->service().stats().records_applied, kAcked);
  EXPECT_EQ((*follower)->service().replication().applied_cycle_ts, acked_ts);
  for (const QuerySpec& spec : registered) {
    const auto old_view = (*leader)->CurrentResult(spec.id);
    const auto new_view = (*follower)->service().CurrentResult(spec.id);
    ASSERT_TRUE(old_view.ok()) << old_view.status();
    ASSERT_TRUE(new_view.ok()) << new_view.status();
    EXPECT_EQ(testing::Scores(*old_view), testing::Scores(*new_view))
        << "query " << spec.id;
  }

  // ---- new term: writes land on the new leader ------------------------
  constexpr std::uint64_t kNewTerm = 120;
  {
    auto client = MonitorClient::Connect(
        "127.0.0.1", follower_server.port(), "writer", /*resume=*/true);
    ASSERT_TRUE(client.ok()) << client.status();
    EXPECT_EQ((*client)->fencing_epoch(), promoted_epoch);
    auto gen = MakeGenerator(Distribution::kIndependent, kDim, 13);
    std::uint64_t sent = 0;
    while (sent < kNewTerm) {
      std::vector<Record> batch;
      for (int i = 0; i < 20 && sent < kNewTerm; ++i, ++sent) {
        batch.emplace_back(0, gen->NextPoint(), clock.fetch_add(1));
      }
      const auto ack = (*client)->Ingest(std::move(batch));
      ASSERT_TRUE(ack.ok()) << ack.status();
      ASSERT_EQ(ack->rejected, 0u) << ack->first_error;
    }
    TOPKMON_ASSERT_OK((*client)->Close(/*close_session=*/false));
  }
  TOPKMON_ASSERT_OK((*follower)->service().Flush());
  const Timestamp new_term_ts =
      (*follower)->service().replication().applied_cycle_ts;
  ASSERT_GT(new_term_ts, acked_ts);

  // ---- the deposed leader rejoins as a follower of the new leader -----
  (*leader)->Shutdown();
  (*leader).reset();  // release the journal dir before re-opening it
  ReplicaFollowerOptions rejoin_opt;
  rejoin_opt.leader_port = follower_server.port();
  rejoin_opt.label = "rejoined-old-leader";
  rejoin_opt.fetch_wait = std::chrono::milliseconds(20);
  rejoin_opt.reconnect_backoff = std::chrono::milliseconds(20);
  // Same ServiceOptions as its leader days — follower-assisted catch-up
  // starts from its own journal (the shipped-prefix bytes it wrote while
  // leading) and continues over the wire.
  auto rejoined = ReplicaFollower::Open(MakeEngine, leader_opt, rejoin_opt);
  ASSERT_TRUE(rejoined.ok()) << rejoined.status();
  EXPECT_EQ((*rejoined)->service().role(), ServiceRole::kFollower);
  TOPKMON_ASSERT_OK(
      (*rejoined)->WaitForCycleTs(new_term_ts, std::chrono::seconds(30)));

  // The old leader's graceful Shutdown() rotated a farewell snapshot
  // segment into its journal — a segment the group never shipped, whose
  // index collides with the new leader's post-promotion segment. The
  // rejoin MUST NOT splice those divergent bytes: the first connect sees
  // the leader's epoch outrank the epoch its journal was written
  // under (0) and full-resyncs instead of continuing byte-wise.
  EXPECT_GE((*rejoined)->stats().restarts, 1u);
  // It converged onto the new term's history...
  for (const QuerySpec& spec : registered) {
    const auto leader_view = (*follower)->service().CurrentResult(spec.id);
    const auto rejoined_view = (*rejoined)->service().CurrentResult(spec.id);
    ASSERT_TRUE(leader_view.ok()) << leader_view.status();
    ASSERT_TRUE(rejoined_view.ok()) << rejoined_view.status();
    EXPECT_EQ(testing::Scores(*leader_view),
              testing::Scores(*rejoined_view))
        << "query " << spec.id;
  }
  // ... and adopted + persisted the new fencing epoch, so a crash and
  // restart cannot resurrect it at its old term.
  const auto observe_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((*rejoined)->service().fencing_epoch() < promoted_epoch &&
         std::chrono::steady_clock::now() < observe_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ((*rejoined)->service().fencing_epoch(), promoted_epoch);
  const auto epoch_on_disk = ReadFencingEpoch(leader_opt.journal.dir);
  ASSERT_TRUE(epoch_on_disk.ok()) << epoch_on_disk.status();
  EXPECT_EQ(*epoch_on_disk, promoted_epoch);

  (*rejoined)->Stop();
  (*rejoined)->service().Shutdown();
  follower_server.Stop();
  agent.Stop();
  (*follower)->service().Shutdown();
}

TEST(ReplicaFailoverFaultTest, EpochPersistFailureKeepsRetriesEffective) {
  // A failed EPOCH write must NOT publish the raised epoch in memory:
  // were it published, every retry would short-circuit on the
  // "already seen" fast path and the epoch would never reach disk — a
  // restarted deposed leader could then resurrect its old term. The
  // fault here is the journal directory replaced by a plain file (the
  // EPOCH writer cannot re-create it, unlike a merely missing dir);
  // healing it makes the retried call do the real work.
  ScopedTempDir dir;
  ServiceOptions opt;
  opt.drain_wait = std::chrono::milliseconds(2);
  opt.journal.dir = dir.path() + "/node";
  opt.journal.snapshot_every_cycles = 0;
  auto svc = MonitorService::Open(MakeEngine, opt);
  ASSERT_TRUE(svc.ok()) << svc.status();

  std::filesystem::remove_all(opt.journal.dir);
  { std::ofstream(opt.journal.dir) << "not a directory"; }
  const std::uint64_t epoch = MintFencingEpoch(0, kOperatorFencingRank);
  const Status failed = (*svc)->ObserveFencingEpoch(epoch);
  EXPECT_FALSE(failed.ok()) << "persist into a missing dir should fail";
  // Unpublished: the next call must not be a no-op.
  EXPECT_EQ((*svc)->fencing_epoch(), 0u);
  // But the deposition itself is latched — a provably deposed leader
  // must not keep serving just because its disk is broken.
  EXPECT_TRUE((*svc)->IsFenced());

  std::filesystem::remove(opt.journal.dir);
  std::filesystem::create_directories(opt.journal.dir);
  TOPKMON_ASSERT_OK((*svc)->ObserveFencingEpoch(epoch));
  EXPECT_EQ((*svc)->fencing_epoch(), epoch);
  const auto on_disk = ReadFencingEpoch(opt.journal.dir);
  ASSERT_TRUE(on_disk.ok()) << on_disk.status();
  EXPECT_EQ(*on_disk, epoch);
  (*svc)->Shutdown();
}

}  // namespace
}  // namespace topkmon
