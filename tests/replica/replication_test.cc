// Replication unit and edge-case coverage: the leader-side shipper's
// chunk semantics (sealing, restart-on-GC, torn live tails), the
// streaming journal frame parser, follower-mode service refusals, and
// the follower catch-up edge cases the design must survive — a torn
// leader tail mid-ship, segment rotation racing the shipper past a slow
// follower, a follower restart resuming from its local journal, and a
// slow follower that must never stall leader ingest.

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "core/brute_force_engine.h"
#include "core/tma_engine.h"
#include "journal/format.h"
#include "journal/journal_reader.h"
#include "journal/journal_writer.h"
#include "net/client.h"
#include "net/server.h"
#include "replica/follower.h"
#include "replica/shipper.h"
#include "service/monitor_service.h"
#include "stream/generators.h"
#include "tests/journal/journal_test_util.h"
#include "tests/net/net_test_util.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

using ::topkmon::testing::MakeRandomQueries;
using ::topkmon::testing::ScopedTempDir;

constexpr int kDim = 2;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void AppendBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::vector<Record> MakeBatch(RecordId first, std::size_t n, Timestamp ts) {
  auto gen = MakeGenerator(Distribution::kIndependent, kDim, 7 + first);
  std::vector<Record> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.emplace_back(first + static_cast<RecordId>(i), gen->NextPoint(), ts);
  }
  return out;
}

// ---- streaming frame parser --------------------------------------------

TEST(ReplicaFrameParseTest, NeedMoreThenFrameThenBad) {
  std::string body;
  EncodeCycleBody(42, MakeBatch(0, 3, 42), &body);
  std::string frame;
  EncodeFrame(body, &frame);

  const char* got_body = nullptr;
  std::size_t body_len = 0;
  std::size_t consumed = 0;
  std::string detail;
  // Every proper prefix is kNeedMore — a torn tail never decodes.
  for (std::size_t n = 0; n < frame.size(); ++n) {
    EXPECT_EQ(TryParseJournalFrame(frame.data(), n, &got_body, &body_len,
                                   &consumed, &detail),
              JournalFrameParse::kNeedMore)
        << "prefix " << n;
  }
  ASSERT_EQ(TryParseJournalFrame(frame.data(), frame.size(), &got_body,
                                 &body_len, &consumed, &detail),
            JournalFrameParse::kFrame);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(body_len, body.size());
  JournalRecord record;
  TOPKMON_ASSERT_OK(DecodeBody(got_body, body_len, &record));
  EXPECT_EQ(record.type, JournalRecordType::kCycle);
  EXPECT_EQ(record.batch.size(), 3u);

  // Flip a body byte: complete frame, wrong CRC -> kBad.
  std::string damaged = frame;
  damaged[damaged.size() - 1] = static_cast<char>(damaged.back() ^ 0x40);
  EXPECT_EQ(TryParseJournalFrame(damaged.data(), damaged.size(), &got_body,
                                 &body_len, &consumed, &detail),
            JournalFrameParse::kBad);
}

// ---- shipper chunk semantics -------------------------------------------

TEST(ReplicaShipperTest, ChunkedReadsReassembleTheExactFileBytes) {
  ScopedTempDir dir;
  JournalOptions opt;
  opt.dir = dir.path();
  auto writer = CycleJournalWriter::Open(opt, JournalSnapshot{});
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (Timestamp ts = 1; ts <= 20; ++ts) {
    TOPKMON_ASSERT_OK((*writer)->AppendCycle(
        ts, MakeBatch(static_cast<RecordId>(ts * 10), 4, ts)));
  }
  const std::string path = (*writer)->current_segment_path();
  TOPKMON_ASSERT_OK((*writer)->Close());
  const std::string want = ReadFile(path);
  ASSERT_FALSE(want.empty());

  JournalShipper shipper(dir.path());
  std::string got;
  // Tiny chunks: every fetch ends mid-frame somewhere, which is exactly
  // the torn-tail shape a live leader presents — bytes must reassemble
  // verbatim regardless.
  while (true) {
    auto chunk = shipper.Read(0, got.size(), 13);
    ASSERT_TRUE(chunk.ok()) << chunk.status();
    EXPECT_FALSE(chunk->restart);
    EXPECT_EQ(chunk->offset, got.size());
    if (chunk->data.empty()) break;
    got += chunk->data;
  }
  EXPECT_EQ(got, want);
}

TEST(ReplicaShipperTest, TornLeaderTailShipsAndCompletesLater) {
  ScopedTempDir dir;
  JournalOptions opt;
  opt.dir = dir.path();
  auto writer = CycleJournalWriter::Open(opt, JournalSnapshot{});
  ASSERT_TRUE(writer.ok()) << writer.status();
  TOPKMON_ASSERT_OK((*writer)->AppendCycle(1, MakeBatch(0, 4, 1)));
  const std::string path = (*writer)->current_segment_path();
  TOPKMON_ASSERT_OK((*writer)->Close());

  // Simulate a crash mid-append: half a frame lands on disk.
  std::string body;
  EncodeCycleBody(2, MakeBatch(10, 4, 2), &body);
  std::string frame;
  EncodeFrame(body, &frame);
  const std::string first_half = frame.substr(0, frame.size() / 2);
  AppendBytes(path, first_half);

  JournalShipper shipper(dir.path());
  auto chunk = shipper.Read(0, 0, 1 << 20);
  ASSERT_TRUE(chunk.ok()) << chunk.status();
  const std::size_t with_tail = chunk->data.size();
  // The shipper serves the torn bytes as they are (the follower's frame
  // parser waits for the rest)...
  EXPECT_EQ(chunk->data.substr(with_tail - first_half.size()), first_half);
  // ...and once the "recovered" leader finishes the append, the next
  // fetch completes the frame byte-for-byte.
  AppendBytes(path, frame.substr(frame.size() / 2));
  auto rest = shipper.Read(0, with_tail, 1 << 20);
  ASSERT_TRUE(rest.ok()) << rest.status();
  EXPECT_EQ(rest->data, frame.substr(frame.size() / 2));
}

TEST(ReplicaShipperTest, RotationSealsAndGcDrawsRestart) {
  ScopedTempDir dir;
  JournalOptions opt;
  opt.dir = dir.path();
  auto writer = CycleJournalWriter::Open(opt, JournalSnapshot{});
  ASSERT_TRUE(writer.ok()) << writer.status();
  TOPKMON_ASSERT_OK((*writer)->AppendCycle(1, MakeBatch(0, 4, 1)));

  // Default GC (retain_segment_count = 1) deletes segment 0 at rotation:
  // a follower still asking for it draws a restart pointing at the
  // oldest survivor.
  JournalSnapshot snap;
  snap.last_cycle_ts = 1;
  snap.next_record_id = 4;
  TOPKMON_ASSERT_OK((*writer)->RotateWithSnapshot(snap));
  JournalShipper shipper(dir.path());
  auto gone = shipper.Read(0, 0, 1 << 20);
  ASSERT_TRUE(gone.ok()) << gone.status();
  EXPECT_TRUE(gone->restart);
  EXPECT_EQ(gone->next_segment, 1u);
  TOPKMON_ASSERT_OK((*writer)->Close());

  // With a replication horizon (retain_segment_count = 2) the sealed
  // segment survives its own rotation and ships with the sealed flag.
  ScopedTempDir dir2;
  JournalOptions opt2;
  opt2.dir = dir2.path();
  opt2.retain_segment_count = 2;
  auto writer2 = CycleJournalWriter::Open(opt2, JournalSnapshot{});
  ASSERT_TRUE(writer2.ok()) << writer2.status();
  TOPKMON_ASSERT_OK((*writer2)->AppendCycle(1, MakeBatch(0, 4, 1)));
  const std::uint64_t sealed_size =
      ReadFile((*writer2)->current_segment_path()).size();
  TOPKMON_ASSERT_OK((*writer2)->RotateWithSnapshot(snap));
  JournalShipper shipper2(dir2.path());
  auto sealed = shipper2.Read(0, 0, 1 << 20);
  ASSERT_TRUE(sealed.ok()) << sealed.status();
  EXPECT_FALSE(sealed->restart);
  EXPECT_TRUE(sealed->sealed);
  EXPECT_EQ(sealed->next_segment, 1u);
  EXPECT_EQ(sealed->data.size(), sealed_size);
  // A second rotation pushes segment 0 past the horizon: restart.
  TOPKMON_ASSERT_OK((*writer2)->RotateWithSnapshot(snap));
  auto late = shipper2.Read(0, 0, 1 << 20);
  ASSERT_TRUE(late.ok()) << late.status();
  EXPECT_TRUE(late->restart);
  EXPECT_EQ(late->next_segment, 1u);
  TOPKMON_ASSERT_OK((*writer2)->Close());
}

// ---- follower-mode service ---------------------------------------------

std::function<std::unique_ptr<MonitorEngine>()> BruteFactory(
    std::size_t window) {
  return [window] {
    return std::unique_ptr<MonitorEngine>(
        new BruteForceEngine(kDim, WindowSpec::Count(window)));
  };
}

TEST(ReplicaFollowerServiceTest, WritesAreRefusedWithRedirect) {
  ScopedTempDir dir;
  ServiceOptions opt;
  opt.journal.dir = dir.path() + "/repl";
  auto follower = MonitorService::OpenFollower(BruteFactory(100), opt,
                                               "10.0.0.1:4585");
  ASSERT_TRUE(follower.ok()) << follower.status();
  MonitorService& svc = **follower;
  EXPECT_EQ(svc.role(), ServiceRole::kFollower);

  const Status ingest = svc.Ingest(Point{0.5, 0.5}, 1);
  EXPECT_EQ(ingest.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(ingest.message().find("10.0.0.1:4585"), std::string::npos)
      << "redirect must name the leader: " << ingest;
  QuerySpec spec;
  spec.k = 2;
  spec.function =
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0}, 0.0);
  const auto session = svc.OpenSession("reader");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(svc.Register(*session, spec).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(svc.Unregister(*session, 1).code(),
            StatusCode::kFailedPrecondition);
  // A reader session owning nothing is pure local state: closing it must
  // work, or short-lived follower readers pile into the session limit.
  TOPKMON_EXPECT_OK(svc.CloseSession(*session));
  svc.Shutdown();
}

TEST(ReplicaFollowerServiceTest, ReplayRoutesDeltasAndPromoteAcceptsWrites) {
  ScopedTempDir dir;
  ServiceOptions opt;
  opt.journal.dir = dir.path() + "/repl";
  opt.hub.buffer_capacity = 1 << 12;
  auto follower = MonitorService::OpenFollower(BruteFactory(100), opt,
                                               "leader:1");
  ASSERT_TRUE(follower.ok()) << follower.status();
  MonitorService& svc = **follower;

  // Feed replicated records by hand: a register under label "dash", then
  // two cycles. The register must create the session, bind the route and
  // deliver the initial-result delta.
  JournalRecord reg;
  reg.type = JournalRecordType::kRegister;
  reg.query.spec = MakeRandomQueries(kDim, 1, 3, 5)[0];
  reg.query.spec.id = 7;
  reg.query.owner_label = "dash";
  TOPKMON_ASSERT_OK(svc.ApplyReplicated(reg));
  const auto session = svc.FindSession("dash");
  ASSERT_TRUE(session.ok()) << session.status();

  JournalRecord cycle;
  cycle.type = JournalRecordType::kCycle;
  cycle.cycle_ts = 1;
  cycle.batch = MakeBatch(0, 8, 1);
  TOPKMON_ASSERT_OK(svc.ApplyReplicated(cycle));
  cycle.cycle_ts = 2;
  cycle.batch = MakeBatch(8, 8, 2);
  TOPKMON_ASSERT_OK(svc.ApplyReplicated(cycle));

  std::vector<DeltaEvent> events;
  svc.PollDeltas(*session, 1024, &events);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().seq, 1u);
  EXPECT_EQ(events.front().delta.query, 7u);
  const auto replicated = svc.CurrentResult(7);
  ASSERT_TRUE(replicated.ok()) << replicated.status();
  EXPECT_EQ(svc.replication().applied_cycle_ts, 2);
  // This session owns a *replicated* query: closing it would diverge
  // from the leader, so it draws the redirect.
  EXPECT_EQ(svc.CloseSession(*session).code(),
            StatusCode::kFailedPrecondition);

  // Promotion: writes start working, record ids / timestamps resume past
  // the replayed ones, and the journal opens in the shipped dir.
  TOPKMON_ASSERT_OK(svc.Promote());
  EXPECT_EQ(svc.role(), ServiceRole::kLeader);
  TOPKMON_ASSERT_OK(svc.Ingest(Point{0.9, 0.9}, 3));
  TOPKMON_ASSERT_OK(svc.Flush());
  QuerySpec extra = MakeRandomQueries(kDim, 1, 2, 9)[0];
  const auto extra_id = svc.Register(*session, extra);
  ASSERT_TRUE(extra_id.ok()) << extra_id.status();
  EXPECT_GT(*extra_id, 7u) << "query ids must continue past the replayed";
  TOPKMON_ASSERT_OK(svc.journal_status());
  svc.Shutdown();

  // The promoted journal is recoverable: a restart sees the replicated
  // query and the promoted-era state.
  ServiceOptions again = opt;
  auto reopened = MonitorService::Open(BruteFactory(100), again);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_TRUE((*reopened)->recovery().recovered);
  const auto recovered = (*reopened)->CurrentResult(7);
  EXPECT_TRUE(recovered.ok()) << recovered.status();
  (*reopened)->Shutdown();
}

// Regression: the follower-mode CloseSession refusal must not outlive
// Promote(). The refusal is keyed on the *current* role (checked at call
// time, not latched per session), so pre-promotion sessions — readers
// owning nothing and owners of replicated queries alike — close normally
// once the service is a leader, and closing the owner unregisters its
// queries like any leader-side close.
TEST(ReplicaFollowerServiceTest, CloseSessionWorksAfterPromote) {
  ScopedTempDir dir;
  ServiceOptions opt;
  opt.journal.dir = dir.path() + "/repl";
  auto follower = MonitorService::OpenFollower(BruteFactory(100), opt,
                                               "leader:1");
  ASSERT_TRUE(follower.ok()) << follower.status();
  MonitorService& svc = **follower;

  JournalRecord reg;
  reg.type = JournalRecordType::kRegister;
  reg.query.spec = MakeRandomQueries(kDim, 1, 3, 5)[0];
  reg.query.spec.id = 7;
  reg.query.owner_label = "dash";
  TOPKMON_ASSERT_OK(svc.ApplyReplicated(reg));
  JournalRecord cycle;
  cycle.type = JournalRecordType::kCycle;
  cycle.cycle_ts = 1;
  cycle.batch = MakeBatch(0, 8, 1);
  TOPKMON_ASSERT_OK(svc.ApplyReplicated(cycle));

  const auto owner = svc.FindSession("dash");
  ASSERT_TRUE(owner.ok()) << owner.status();
  const auto reader = svc.OpenSession("pre-promotion-reader");
  ASSERT_TRUE(reader.ok()) << reader.status();

  // Pre-promotion: the query-owning session draws the redirect.
  EXPECT_EQ(svc.CloseSession(*owner).code(),
            StatusCode::kFailedPrecondition);

  TOPKMON_ASSERT_OK(svc.Promote());
  EXPECT_EQ(svc.role(), ServiceRole::kLeader);

  // Post-promotion both pre-promotion sessions close cleanly...
  TOPKMON_EXPECT_OK(svc.CloseSession(*reader));
  TOPKMON_EXPECT_OK(svc.CloseSession(*owner));
  // ...the owner's replicated query went with it, and the labels are
  // free for fresh sessions again.
  EXPECT_EQ(svc.CurrentResult(7).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(svc.FindSession("dash").ok());
  EXPECT_FALSE(svc.FindSession("pre-promotion-reader").ok());
  TOPKMON_ASSERT_OK(svc.journal_status());
  svc.Shutdown();
}

// ---- live follower edge cases ------------------------------------------

struct Leader {
  ScopedTempDir dir;
  std::unique_ptr<MonitorService> service;
  std::unique_ptr<TcpServer> server;

  explicit Leader(std::size_t window = 400,
                  std::size_t segment_bytes = 8u << 20,
                  std::uint64_t retain_segments = 2) {
    ServiceOptions opt;
    opt.ingest.slack = 0;
    opt.ingest.max_batch = 128;  // many cycles -> rotation really happens
    opt.drain_wait = std::chrono::milliseconds(1);
    opt.journal.dir = dir.path() + "/leader";
    opt.journal.segment_bytes = segment_bytes;
    opt.journal.retain_segment_count = retain_segments;
    opt.journal.snapshot_every_cycles = 0;  // size-based rotation only
    auto opened = MonitorService::Open(BruteFactory(window), opt);
    if (!opened.ok()) std::abort();
    service = std::move(*opened);
    server = std::make_unique<TcpServer>(*service,
                                         testing::TestServerOptions());
    if (!server->Start().ok()) std::abort();
  }
};

ReplicaFollowerOptions FollowerOptions(std::uint16_t port) {
  ReplicaFollowerOptions opt;
  opt.leader_port = port;
  opt.fetch_wait = std::chrono::milliseconds(20);
  opt.reconnect_backoff = std::chrono::milliseconds(10);
  return opt;
}

ServiceOptions FollowerServiceOptions(const std::string& dir) {
  ServiceOptions opt;
  opt.journal.dir = dir;
  opt.hub.buffer_capacity = 1 << 16;
  return opt;
}

/// Ingests `n` records into the leader starting at *clock and flushes.
void IngestRecords(Leader& leader, std::size_t n, Timestamp* clock) {
  auto gen = MakeGenerator(Distribution::kClustered, kDim,
                           900 + static_cast<std::uint64_t>(*clock));
  for (std::size_t i = 0; i < n; ++i) {
    TOPKMON_ASSERT_OK(leader.service->Ingest(gen->NextPoint(), ++*clock));
  }
  TOPKMON_ASSERT_OK(leader.service->Flush());
}

void ExpectSameTopK(MonitorService& a, MonitorService& b, QueryId query) {
  const auto ra = a.CurrentResult(query);
  const auto rb = b.CurrentResult(query);
  ASSERT_TRUE(ra.ok()) << ra.status();
  ASSERT_TRUE(rb.ok()) << rb.status();
  EXPECT_EQ(testing::Scores(*ra), testing::Scores(*rb))
      << "query " << query;
}

TEST(ReplicaFollowerTest, MirrorsLeaderThroughTinyChunksAndServesReads) {
  Leader leader;
  const auto session = leader.service->OpenSession("dash");
  ASSERT_TRUE(session.ok());
  std::vector<QueryId> queries;
  for (const QuerySpec& spec : MakeRandomQueries(kDim, 3, 4, 21)) {
    const auto id = leader.service->Register(*session, spec);
    ASSERT_TRUE(id.ok()) << id.status();
    queries.push_back(*id);
  }

  ScopedTempDir fdir;
  auto fopt = FollowerOptions(leader.server->port());
  // Tiny fetches: every chunk boundary lands mid-frame somewhere — the
  // torn-tail-mid-ship shape, continuously.
  fopt.fetch_bytes = 61;
  auto follower = ReplicaFollower::Open(
      BruteFactory(400), FollowerServiceOptions(fdir.path() + "/repl"),
      fopt);
  ASSERT_TRUE(follower.ok()) << follower.status();

  Timestamp clock = 0;
  IngestRecords(leader, 600, &clock);
  const Timestamp leader_ts =
      leader.service->replication().applied_cycle_ts;
  TOPKMON_ASSERT_OK((*follower)->WaitForCycleTs(
      leader_ts, std::chrono::seconds(30)));

  for (QueryId q : queries) {
    ExpectSameTopK(*leader.service, (*follower)->service(), q);
  }
  // The replica adopted the leader-side session label; its delta stream
  // is gap-free from seq 1.
  const auto fsession = (*follower)->service().FindSession("dash");
  ASSERT_TRUE(fsession.ok()) << fsession.status();
  std::vector<DeltaEvent> events;
  (*follower)->service().PollDeltas(*fsession, 1u << 20, &events);
  ASSERT_FALSE(events.empty());
  std::uint64_t seq = 1;
  for (const DeltaEvent& e : events) EXPECT_EQ(e.seq, seq++);

  // Reads over the wire: Welcome announces the follower role, snapshots
  // carry the staleness fields, writes draw the redirect.
  TcpServer fserver((*follower)->service(), testing::TestServerOptions());
  TOPKMON_ASSERT_OK(fserver.Start());
  auto reader = MonitorClient::Connect("127.0.0.1", fserver.port(), "dash",
                                       /*resume=*/true);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_TRUE((*reader)->resumed());
  EXPECT_TRUE((*reader)->server_is_follower());
  const auto snap = (*reader)->CurrentResult(queries[0]);
  ASSERT_TRUE(snap.ok()) << snap.status();
  EXPECT_EQ((*reader)->snapshot_as_of(), leader_ts);
  const auto ack = (*reader)->Ingest(MakeBatch(0, 1, clock + 1));
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->accepted, 0u);
  EXPECT_EQ(ack->first_error.code(), StatusCode::kFailedPrecondition);
  fserver.Stop();
  (*follower)->Stop();
}

TEST(ReplicaFollowerTest, RestartResumesFromLocalJournalEvenWithTornTail) {
  Leader leader;
  const auto session = leader.service->OpenSession("dash");
  ASSERT_TRUE(session.ok());
  const auto query = leader.service->Register(
      *session, MakeRandomQueries(kDim, 1, 5, 31)[0]);
  ASSERT_TRUE(query.ok());

  ScopedTempDir fdir;
  const std::string repl_dir = fdir.path() + "/repl";
  Timestamp clock = 0;
  {
    auto follower = ReplicaFollower::Open(
        BruteFactory(400), FollowerServiceOptions(repl_dir),
        FollowerOptions(leader.server->port()));
    ASSERT_TRUE(follower.ok()) << follower.status();
    IngestRecords(leader, 300, &clock);
    TOPKMON_ASSERT_OK((*follower)->WaitForCycleTs(
        leader.service->replication().applied_cycle_ts,
        std::chrono::seconds(30)));
    (*follower)->Stop();  // follower goes down; local journal remains
  }

  // Damage the local tail the way a crash mid-ship would: half a frame.
  auto segments = ListSegments(repl_dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_FALSE(segments->empty());
  AppendBytes(segments->back().path, std::string(5, '\x7f'));

  // The leader moves on while the follower is down.
  IngestRecords(leader, 300, &clock);

  auto follower = ReplicaFollower::Open(
      BruteFactory(400), FollowerServiceOptions(repl_dir),
      FollowerOptions(leader.server->port()));
  ASSERT_TRUE(follower.ok()) << follower.status();
  const ReplicaFollowerStats boot = (*follower)->stats();
  EXPECT_GT(boot.records_applied, 0u)
      << "bootstrap must replay the locally shipped journal";
  TOPKMON_ASSERT_OK((*follower)->WaitForCycleTs(
      leader.service->replication().applied_cycle_ts,
      std::chrono::seconds(30)));
  ExpectSameTopK(*leader.service, (*follower)->service(), *query);
  EXPECT_EQ((*follower)->stats().restarts, 0u)
      << "a clean local resume must not need a full resync";
  (*follower)->Stop();
}

TEST(ReplicaFollowerTest, GcPastSlowFollowerForcesRestartCatchUp) {
  // Small segments with GC on: by the time the follower attaches, the
  // segment it asks for first (0) is long gone — it must restart from
  // the leader's oldest surviving snapshot anchor and still converge.
  Leader leader(/*window=*/400, /*segment_bytes=*/16384,
                /*retain_segments=*/2);
  const auto session = leader.service->OpenSession("dash");
  ASSERT_TRUE(session.ok());
  const auto query = leader.service->Register(
      *session, MakeRandomQueries(kDim, 1, 5, 41)[0]);
  ASSERT_TRUE(query.ok());
  Timestamp clock = 0;
  IngestRecords(leader, 3000, &clock);  // forces several rotations + GC
  {
    auto segments = ListSegments(leader.service->journal_dir());
    ASSERT_TRUE(segments.ok());
    ASSERT_GT(segments->front().index, 0u)
        << "premise: segment 0 must be garbage-collected before the "
           "follower attaches";
  }

  ScopedTempDir fdir;
  auto follower = ReplicaFollower::Open(
      BruteFactory(400), FollowerServiceOptions(fdir.path() + "/repl"),
      FollowerOptions(leader.server->port()));
  ASSERT_TRUE(follower.ok()) << follower.status();
  TOPKMON_ASSERT_OK((*follower)->WaitForCycleTs(
      leader.service->replication().applied_cycle_ts,
      std::chrono::seconds(30)));
  EXPECT_GE((*follower)->stats().restarts, 1u);
  ExpectSameTopK(*leader.service, (*follower)->service(), *query);

  // Rotation racing the attached shipper: keep ingesting so the leader
  // seals + deletes segments while the follower follows along live.
  IngestRecords(leader, 3000, &clock);
  TOPKMON_ASSERT_OK((*follower)->WaitForCycleTs(
      leader.service->replication().applied_cycle_ts,
      std::chrono::seconds(30)));
  ExpectSameTopK(*leader.service, (*follower)->service(), *query);
  EXPECT_GE((*follower)->stats().segments_completed, 1u);
  (*follower)->Stop();
}

TEST(ReplicaFollowerTest, SlowFollowerNeverStallsLeaderIngest) {
  Leader leader;
  const auto session = leader.service->OpenSession("dash");
  ASSERT_TRUE(session.ok());
  const auto query = leader.service->Register(
      *session, MakeRandomQueries(kDim, 1, 5, 51)[0]);
  ASSERT_TRUE(query.ok());

  ScopedTempDir fdir;
  auto fopt = FollowerOptions(leader.server->port());
  fopt.fetch_bytes = 48;  // pathologically slow shipping
  auto follower = ReplicaFollower::Open(
      BruteFactory(400), FollowerServiceOptions(fdir.path() + "/repl"),
      fopt);
  ASSERT_TRUE(follower.ok()) << follower.status();

  // The leader applies every record and Flush returns without ever
  // waiting on the follower (pull model: nothing in the ingest path
  // talks to replication).
  Timestamp clock = 0;
  IngestRecords(leader, 3000, &clock);
  EXPECT_EQ(leader.service->stats().records_applied, 3000u);
  EXPECT_LT((*follower)->service().stats().records_applied, 3000u)
      << "a 48-byte/fetch follower cannot have kept up with a flushed "
         "leader — if it did, this test lost its premise";
  // ... and the slow follower still converges eventually.
  TOPKMON_ASSERT_OK((*follower)->WaitForCycleTs(
      leader.service->replication().applied_cycle_ts,
      std::chrono::minutes(2)));
  ExpectSameTopK(*leader.service, (*follower)->service(), *query);
  (*follower)->Stop();
}

}  // namespace
}  // namespace topkmon
