// DeltaMultiplexer: frontier discipline, gap detection, restart
// re-baselining — the transport-free heart of the cluster router.

#include "cluster/delta_mux.h"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/topk_merge.h"

namespace topkmon {
namespace {

DeltaEvent Ev(std::uint64_t seq, QueryId query, Timestamp when,
              std::vector<ResultEntry> added,
              std::vector<ResultEntry> removed = {}) {
  DeltaEvent e;
  e.seq = seq;
  e.delta.query = query;
  e.delta.when = when;
  e.delta.added = std::move(added);
  e.delta.removed = std::move(removed);
  return e;
}

TEST(ClusterDeltaMuxTest, NothingMergesUntilEveryPartitionReports) {
  DeltaMultiplexer mux(2);
  ASSERT_TRUE(mux.AddQuery(1, 2).ok());
  ASSERT_TRUE(
      mux.OnPartitionEvents(0, {Ev(1, 1, 5, {{40, 0.4}})}, 5, false).ok());
  std::vector<DeltaEvent> out;
  mux.Drain(&out);
  // Partition 1 has never answered: its progress is unknown, so even
  // timestamp 5 from partition 0 must wait.
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(mux.OnPartitionEvents(1, {}, 6, false).ok());
  ASSERT_TRUE(mux.OnPartitionEvents(0, {}, 6, false).ok());
  mux.Drain(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(out[0].delta.when, 5);
  ASSERT_EQ(out[0].delta.added.size(), 1u);
  EXPECT_EQ(out[0].delta.added[0].id, NamespaceRecordId(40, 0, 2));
}

TEST(ClusterDeltaMuxTest, EqualTimestampIsNotFinal) {
  // Cycle timestamps may repeat: as_of == t does NOT close t. Only a
  // frontier strictly past t releases it.
  DeltaMultiplexer mux(2);
  ASSERT_TRUE(mux.AddQuery(1, 2).ok());
  ASSERT_TRUE(
      mux.OnPartitionEvents(0, {Ev(1, 1, 5, {{40, 0.4}})}, 5, false).ok());
  ASSERT_TRUE(mux.OnPartitionEvents(1, {}, 5, false).ok());
  std::vector<DeltaEvent> out;
  mux.Drain(&out);
  EXPECT_TRUE(out.empty()) << "timestamp 5 merged while still open";
  EXPECT_EQ(mux.as_of(), 5);
  // A second cycle at the SAME timestamp arrives after the first drain
  // attempt — exactly the hazard the strict rule guards against.
  ASSERT_TRUE(
      mux.OnPartitionEvents(0, {Ev(2, 1, 5, {{42, 0.6}})}, 6, false).ok());
  ASSERT_TRUE(mux.OnPartitionEvents(1, {}, 6, false).ok());
  mux.Drain(&out);
  // Both same-timestamp cycles coalesce into ONE merged event.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].delta.added.size(), 2u);
}

TEST(ClusterDeltaMuxTest, MergedStreamIsContiguousAndKMerged) {
  DeltaMultiplexer mux(2);
  ASSERT_TRUE(mux.AddQuery(7, 2).ok());
  // Partition 0 contributes scores 0.9/0.1; partition 1 contributes 0.5.
  ASSERT_TRUE(mux.OnPartitionEvents(
                     0, {Ev(1, 7, 1, {{10, 0.9}, {11, 0.1}})}, 2, false)
                  .ok());
  ASSERT_TRUE(
      mux.OnPartitionEvents(1, {Ev(1, 7, 1, {{20, 0.5}})}, 2, false).ok());
  std::vector<DeltaEvent> out;
  mux.Drain(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].seq, 1u);
  const auto view = mux.CurrentView(7);
  ASSERT_EQ(view.size(), 2u);  // k=2: global best two across partitions
  EXPECT_EQ(view[0].id, NamespaceRecordId(10, 0, 2));
  EXPECT_EQ(view[1].id, NamespaceRecordId(20, 1, 2));

  // Partition 1's 0.5 record leaves; partition 0's 0.1 record takes the
  // second slot.
  ASSERT_TRUE(mux.OnPartitionEvents(
                     1, {Ev(2, 7, 3, {}, {{20, 0.5}})}, 4, false)
                  .ok());
  ASSERT_TRUE(mux.OnPartitionEvents(0, {}, 4, false).ok());
  mux.Drain(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].seq, 2u);
  EXPECT_EQ(out[1].delta.when, 3);
  ASSERT_EQ(out[1].delta.added.size(), 1u);
  EXPECT_EQ(out[1].delta.added[0].id, NamespaceRecordId(11, 0, 2));
  ASSERT_EQ(out[1].delta.removed.size(), 1u);
  EXPECT_EQ(out[1].delta.removed[0].id, NamespaceRecordId(20, 1, 2));
}

TEST(ClusterDeltaMuxTest, TruncatedAnswersAdvanceOnlyToDeliveredEvents) {
  DeltaMultiplexer mux(1);
  ASSERT_TRUE(mux.AddQuery(1, 4).ok());
  // A truncated poll delivered events through when=7 while claiming
  // as_of=9: the cut may have split timestamp 7, so only 7 is proven
  // complete-exclusive — nothing at 7 may merge yet.
  ASSERT_TRUE(mux.OnPartitionEvents(
                     0, {Ev(1, 1, 6, {{1, 0.1}}), Ev(2, 1, 7, {{2, 0.2}})},
                     9, true)
                  .ok());
  std::vector<DeltaEvent> out;
  mux.Drain(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].delta.when, 6);
  EXPECT_EQ(mux.as_of(), 7);
  // The follow-up poll is not truncated: as_of now counts.
  ASSERT_TRUE(mux.OnPartitionEvents(0, {}, 9, false).ok());
  mux.Drain(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].delta.when, 7);
  EXPECT_EQ(mux.as_of(), 9);
}

TEST(ClusterDeltaMuxTest, SequenceGapIsAnError) {
  DeltaMultiplexer mux(1);
  ASSERT_TRUE(mux.AddQuery(1, 2).ok());
  ASSERT_TRUE(
      mux.OnPartitionEvents(0, {Ev(1, 1, 1, {{1, 0.1}})}, 1, false).ok());
  const Status gap =
      mux.OnPartitionEvents(0, {Ev(3, 1, 2, {{2, 0.2}})}, 2, false);
  EXPECT_EQ(gap.code(), StatusCode::kInternal);
  EXPECT_NE(gap.message().find("gap"), std::string::npos) << gap;
}

TEST(ClusterDeltaMuxTest, SequenceRegressionRebaselinesThePartition) {
  DeltaMultiplexer mux(2);
  ASSERT_TRUE(mux.AddQuery(1, 2).ok());
  ASSERT_TRUE(mux.OnPartitionEvents(
                     0, {Ev(1, 1, 1, {{10, 0.9}}), Ev(2, 1, 2, {{11, 0.8}})},
                     3, false)
                  .ok());
  ASSERT_TRUE(mux.OnPartitionEvents(1, {}, 3, false).ok());
  std::vector<DeltaEvent> out;
  mux.Drain(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(mux.partition_restarts(), 0u);

  // Partition 0 restarts: its stream begins again at seq 1 with a full
  // current-result baseline (record 11 survived recovery, 10 did not).
  ASSERT_TRUE(
      mux.OnPartitionEvents(0, {Ev(1, 1, 4, {{11, 0.8}})}, 5, false).ok());
  EXPECT_EQ(mux.partition_restarts(), 1u);
  ASSERT_TRUE(mux.OnPartitionEvents(1, {}, 5, false).ok());
  mux.Drain(&out);
  // The merged stream stays contiguous across the restart and now shows
  // record 10 gone.
  std::uint64_t expected_seq = 1;
  for (const DeltaEvent& e : out) EXPECT_EQ(e.seq, expected_seq++);
  const auto view = mux.CurrentView(1);
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0].id, NamespaceRecordId(11, 0, 2));
}

TEST(ClusterDeltaMuxTest, UnknownQueriesAreSkippedNotFatal) {
  DeltaMultiplexer mux(1);
  ASSERT_TRUE(mux.AddQuery(1, 2).ok());
  // Query id 0 is the router's "unregistered" sentinel: the event must
  // still count for sequence tracking but produce no merged output.
  ASSERT_TRUE(mux.OnPartitionEvents(
                     0, {Ev(1, 0, 1, {{5, 0.5}}), Ev(2, 1, 1, {{6, 0.6}})},
                     2, false)
                  .ok());
  std::vector<DeltaEvent> out;
  mux.Drain(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].delta.query, 1u);
}

TEST(ClusterDeltaMuxTest, RemoveQueryDropsItsStream) {
  DeltaMultiplexer mux(1);
  ASSERT_TRUE(mux.AddQuery(1, 2).ok());
  ASSERT_TRUE(
      mux.OnPartitionEvents(0, {Ev(1, 1, 1, {{5, 0.5}})}, 1, false).ok());
  ASSERT_TRUE(mux.RemoveQuery(1).ok());
  EXPECT_EQ(mux.RemoveQuery(1).code(), StatusCode::kNotFound);
  std::vector<DeltaEvent> out;
  mux.Finalize(&out);
  EXPECT_TRUE(out.empty());
}

TEST(ClusterDeltaMuxTest, FinalizeFlushesTheOpenFrontier) {
  DeltaMultiplexer mux(2);
  ASSERT_TRUE(mux.AddQuery(1, 2).ok());
  ASSERT_TRUE(
      mux.OnPartitionEvents(0, {Ev(1, 1, 9, {{1, 0.9}})}, 9, false).ok());
  ASSERT_TRUE(
      mux.OnPartitionEvents(1, {Ev(1, 1, 9, {{2, 0.8}})}, 9, false).ok());
  std::vector<DeltaEvent> out;
  mux.Drain(&out);
  EXPECT_TRUE(out.empty());  // 9 is still open
  mux.Finalize(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].delta.added.size(), 2u);
  EXPECT_EQ(mux.buffered_events(), 0u);
}

TEST(ClusterDeltaMuxTest, AddQueryValidation) {
  DeltaMultiplexer mux(1);
  EXPECT_EQ(mux.AddQuery(1, 0).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(mux.AddQuery(1, 2).ok());
  EXPECT_EQ(mux.AddQuery(1, 2).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(mux.OnPartitionEvents(9, {}, 1, false).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace topkmon
