// PartitionMap: parsing, validation, and the ownership hash contract.

#include "cluster/partition_map.h"

#include <gtest/gtest.h>

#include <set>

namespace topkmon {
namespace {

TEST(ClusterPartitionMapTest, ParsesAnEndpointList) {
  const auto map = PartitionMap::Parse("127.0.0.1:4001,10.9.8.7:4002");
  ASSERT_TRUE(map.ok()) << map.status();
  ASSERT_EQ(map->partitions(), 2u);
  EXPECT_EQ(map->endpoint(0).host, "127.0.0.1");
  EXPECT_EQ(map->endpoint(0).port, 4001);
  EXPECT_EQ(map->endpoint(1).host, "10.9.8.7");
  EXPECT_EQ(map->endpoint(1).port, 4002);
  EXPECT_EQ(map->Describe(1), "partition 1 at 10.9.8.7:4002");
}

TEST(ClusterPartitionMapTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"", "nocolon", "host:", ":4001", "host:0", "host:99999",
        "host:12x", "ok:4001,,ok:4002"}) {
    EXPECT_EQ(PartitionMap::Parse(bad).status().code(),
              StatusCode::kInvalidArgument)
        << "'" << bad << "' should not parse";
  }
}

TEST(ClusterPartitionMapTest, RejectsBadEndpointLists) {
  EXPECT_EQ(PartitionMap::Create({}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      PartitionMap::Create(std::vector<PartitionEndpoint>(
                               257, PartitionEndpoint{"h", 1, {}}))
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(PartitionMap::Create({PartitionEndpoint{"", 4001, {}}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      PartitionMap::Create({PartitionEndpoint{"h", 0, {}}}).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(ClusterPartitionMapTest, OwnershipIsDeterministicInRangeAndCovering) {
  const auto a = PartitionMap::Parse("a:1,b:2,c:3");
  const auto b = PartitionMap::Parse("x:7,y:8,z:9");
  ASSERT_TRUE(a.ok() && b.ok());
  std::set<std::size_t> hit;
  for (RecordId id = 0; id < 1000; ++id) {
    const std::size_t owner = a->OwnerOf(id);
    ASSERT_LT(owner, a->partitions());
    // Ownership depends only on (id, partition count) — every producer
    // and router agrees no matter which hosts the map names.
    EXPECT_EQ(owner, b->OwnerOf(id)) << "id " << id;
    hit.insert(owner);
  }
  // The splitmix64 mix must spread even a tiny dense id range.
  EXPECT_EQ(hit.size(), a->partitions());
}

TEST(ClusterPartitionMapTest, AdjacentIdsScatter) {
  const auto map = PartitionMap::Parse("a:1,b:2,c:3,d:4");
  ASSERT_TRUE(map.ok());
  // Sequential ids must not all land on one partition (a modulo without
  // mixing would stripe them 0,1,2,3,0,...; a broken mix would clump).
  std::size_t same_as_previous = 0;
  for (RecordId id = 1; id < 256; ++id) {
    if (map->OwnerOf(id) == map->OwnerOf(id - 1)) ++same_as_previous;
  }
  EXPECT_GT(same_as_previous, 20u);   // ~64 expected for 4 partitions
  EXPECT_LT(same_as_previous, 130u);  // not striped, not clumped
}

}  // namespace
}  // namespace topkmon
