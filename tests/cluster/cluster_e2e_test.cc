// Cluster end-to-end acceptance: 3 TCP partitions, 2 routed producers,
// 2 routed subscribers, one mid-run reconnect — and the merged per-query
// delta streams plus the final top-k must match an uninterrupted
// single-node BruteForce replay cycle-for-cycle.
//
// Determinism strategy: the workload is phase-structured. Every phase
// has ONE shared arrival timestamp, a fixed object-id set that covers
// every partition (so each partition runs a cycle at every timestamp and
// processes its expirations on schedule), and a FlushAll barrier before
// the next phase — so each partition applies exactly the phase's records
// at the phase's timestamp, and the single-node ground truth is the
// captured per-partition cycles grouped by timestamp. Time-based windows
// are required: a count-based window of the union stream cannot be
// partitioned exactly, a time-based one partitions trivially (expiry
// depends only on arrival time).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/local_cluster.h"
#include "cluster/router.h"
#include "core/brute_force_engine.h"
#include "stream/generators.h"
#include "tests/net/net_test_util.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

using ::topkmon::testing::MakeRandomQueries;
using ::topkmon::testing::Scores;

constexpr int kDim = 2;
constexpr std::size_t kPartitions = 3;
constexpr Timestamp kSpan = 8;  // time-based window: plenty of expiry churn
constexpr Timestamp kPhases = 24;
constexpr int kSubscribers = 2;
constexpr int kQueriesPerSubscriber = 3;

std::vector<double> ApplyDelta(std::map<RecordId, double>& view,
                               const ResultDelta& delta) {
  for (const ResultEntry& e : delta.removed) view.erase(e.id);
  for (const ResultEntry& e : delta.added) view.emplace(e.id, e.score);
  std::vector<double> scores;
  scores.reserve(view.size());
  for (const auto& [id, score] : view) scores.push_back(score);
  std::sort(scores.begin(), scores.end());
  return scores;
}

/// Object ids that (a) cover every partition and (b) split between the
/// two producers so both route to all partitions every phase.
std::vector<std::vector<RecordId>> CoveringProducerIds(
    const PartitionMap& map) {
  std::vector<std::vector<RecordId>> per_producer(2);
  for (std::size_t producer = 0; producer < 2; ++producer) {
    std::vector<bool> covered(map.partitions(), false);
    std::size_t covered_count = 0;
    for (RecordId id = producer;
         (covered_count < map.partitions() ||
          per_producer[producer].size() < 6) &&
         id < 100000;
         id += 2) {
      const std::size_t owner = map.OwnerOf(id);
      if (per_producer[producer].size() >= 6 && covered[owner]) continue;
      per_producer[producer].push_back(id);
      if (!covered[owner]) {
        covered[owner] = true;
        ++covered_count;
      }
    }
  }
  return per_producer;
}

TEST(ClusterE2ETest, ScatterGatherMatchesSingleNodeBruteForce) {
  LocalClusterOptions options;
  options.partitions = kPartitions;
  options.engine_factory = [] {
    return std::unique_ptr<MonitorEngine>(
        new BruteForceEngine(kDim, WindowSpec::Time(kSpan)));
  };
  options.service.ingest.slack = 0;
  options.service.drain_wait = std::chrono::milliseconds(2);
  options.service.hub.buffer_capacity = 1 << 16;
  options.net = testing::TestServerOptions();
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status();

  // Capture every partition's applied (cycle, batch) sequence — the raw
  // material of the single-node ground truth.
  std::mutex capture_mu;
  std::vector<std::vector<std::pair<Timestamp, std::vector<Record>>>>
      captured(kPartitions);
  for (std::size_t p = 0; p < kPartitions; ++p) {
    (*cluster)->service(p)->SetCycleObserver(
        [&capture_mu, &captured, p](Timestamp ts, RecordSpan batch) {
          std::lock_guard<std::mutex> lock(capture_mu);
          captured[p].emplace_back(
              ts, std::vector<Record>(batch.begin(), batch.end()));
        });
  }

  // Two subscriber routers register three queries each (scattered to all
  // partitions) before any data flows.
  const auto specs =
      MakeRandomQueries(kDim, kSubscribers * kQueriesPerSubscriber, 5, 77);
  std::vector<std::unique_ptr<ClusterRouter>> subs;
  std::vector<std::vector<QueryId>> sub_qids(kSubscribers);
  for (int s = 0; s < kSubscribers; ++s) {
    auto router =
        ClusterRouter::Connect((*cluster)->map(),
                               "sub-" + std::to_string(s), /*resume=*/false);
    ASSERT_TRUE(router.ok()) << router.status();
    for (int q = 0; q < kQueriesPerSubscriber; ++q) {
      const auto gid = (*router)->Register(
          specs[static_cast<std::size_t>(s * kQueriesPerSubscriber + q)]);
      ASSERT_TRUE(gid.ok()) << gid.status();
      sub_qids[s].push_back(*gid);
    }
    subs.push_back(std::move(*router));
  }

  // Subscriber threads long-poll the merged stream; subscriber 1 drops
  // and resumes its partition-1 connection mid-run.
  std::atomic<bool> done{false};
  std::vector<std::vector<DeltaEvent>> received(kSubscribers);
  std::atomic<bool> reconnect_resumed{false};
  std::vector<std::thread> sub_threads;
  for (int s = 0; s < kSubscribers; ++s) {
    sub_threads.emplace_back([&, s] {
      ClusterRouter& router = *subs[static_cast<std::size_t>(s)];
      bool reconnected = s == 0;  // only subscriber 1 reconnects
      while (!done.load()) {
        auto events =
            router.PollDeltas(1024, std::chrono::milliseconds(20));
        ASSERT_TRUE(events.ok()) << events.status();
        auto& sink = received[static_cast<std::size_t>(s)];
        sink.insert(sink.end(), events->begin(), events->end());
        if (!reconnected && sink.size() >= 5) {
          TOPKMON_ASSERT_OK(router.Reconnect(1));
          reconnect_resumed.store(router.resumed(1));
          reconnected = true;
        }
      }
      // Input has stopped (final FlushAll done): pull the remaining
      // partition events and the final frontier, then flush the merge.
      for (int i = 0; i < 3; ++i) {
        auto events =
            router.PollDeltas(1024, std::chrono::milliseconds(20));
        ASSERT_TRUE(events.ok()) << events.status();
        auto& sink = received[static_cast<std::size_t>(s)];
        sink.insert(sink.end(), events->begin(), events->end());
      }
      EXPECT_EQ(router.deltas_as_of(), kPhases);
      const auto final_events = router.FinalizeDeltas();
      auto& sink = received[static_cast<std::size_t>(s)];
      sink.insert(sink.end(), final_events.begin(), final_events.end());
    });
  }

  // Two producer routers ingest in lockstep phases: one shared arrival
  // timestamp per phase, every partition fed, FlushAll between phases.
  std::vector<std::unique_ptr<ClusterRouter>> producers;
  for (int p = 0; p < 2; ++p) {
    auto router = ClusterRouter::Connect(
        (*cluster)->map(), "prod-" + std::to_string(p), /*resume=*/false);
    ASSERT_TRUE(router.ok()) << router.status();
    producers.push_back(std::move(*router));
  }
  const auto producer_ids = CoveringProducerIds((*cluster)->map());
  for (std::size_t p = 0; p < 2; ++p) {
    std::vector<bool> covered(kPartitions, false);
    for (RecordId id : producer_ids[p]) {
      covered[(*cluster)->map().OwnerOf(id)] = true;
    }
    for (std::size_t part = 0; part < kPartitions; ++part) {
      ASSERT_TRUE(covered[part])
          << "producer " << p << " does not reach partition " << part;
    }
  }
  std::vector<std::unique_ptr<StreamGenerator>> gens;
  gens.push_back(MakeGenerator(Distribution::kIndependent, kDim, 501));
  gens.push_back(MakeGenerator(Distribution::kIndependent, kDim, 502));
  for (Timestamp phase = 1; phase <= kPhases; ++phase) {
    std::vector<std::thread> phase_threads;
    for (std::size_t p = 0; p < 2; ++p) {
      phase_threads.emplace_back([&, p] {
        std::vector<Record> batch;
        for (RecordId id : producer_ids[p]) {
          batch.emplace_back(id, gens[p]->NextPoint(), phase);
        }
        const auto report = producers[p]->Ingest(batch);
        ASSERT_TRUE(report.ok()) << report.status();
        ASSERT_EQ(report->rejected, 0u) << report->first_error;
        ASSERT_EQ(report->accepted, producer_ids[p].size());
      });
    }
    for (std::thread& t : phase_threads) t.join();
    TOPKMON_ASSERT_OK((*cluster)->FlushAll());
  }
  done.store(true);
  for (std::thread& t : sub_threads) t.join();

  EXPECT_TRUE(reconnect_resumed.load())
      << "mid-run Reconnect did not adopt the partition session by label";

  // Ground truth: group the captured per-partition cycles by timestamp,
  // concatenate partition-major, re-identify densely, and replay into
  // one uninterrupted BruteForce engine per subscriber's query set.
  std::vector<std::pair<Timestamp, std::vector<Record>>> merged_cycles;
  {
    std::lock_guard<std::mutex> lock(capture_mu);
    RecordId next_id = 0;
    for (Timestamp ts = 1; ts <= kPhases; ++ts) {
      std::vector<Record> batch;
      for (std::size_t p = 0; p < kPartitions; ++p) {
        for (const auto& [cts, cbatch] : captured[p]) {
          if (cts != ts) continue;
          for (const Record& r : cbatch) {
            batch.emplace_back(next_id++, r.position, r.arrival);
          }
        }
      }
      ASSERT_FALSE(batch.empty()) << "no partition cycled at ts " << ts;
      merged_cycles.emplace_back(ts, std::move(batch));
    }
  }

  for (int s = 0; s < kSubscribers; ++s) {
    std::map<QueryId, std::vector<ResultDelta>> truth;
    BruteForceEngine brute(kDim, WindowSpec::Time(kSpan));
    brute.SetDeltaCallback(
        [&truth](const ResultDelta& d) { truth[d.query].push_back(d); });
    for (int q = 0; q < kQueriesPerSubscriber; ++q) {
      QuerySpec spec =
          specs[static_cast<std::size_t>(s * kQueriesPerSubscriber + q)];
      spec.id = sub_qids[s][static_cast<std::size_t>(q)];
      TOPKMON_ASSERT_OK(brute.RegisterQuery(spec));
    }
    for (const auto& [ts, batch] : merged_cycles) {
      TOPKMON_ASSERT_OK(brute.ProcessCycle(ts, batch));
    }

    // The merged stream is gap-free with router-assigned sequence.
    std::map<QueryId, std::vector<ResultDelta>> got;
    std::uint64_t expected_seq = 1;
    ASSERT_FALSE(received[s].empty());
    for (const DeltaEvent& e : received[s]) {
      EXPECT_EQ(e.seq, expected_seq++) << "subscriber " << s;
      got[e.delta.query].push_back(e.delta);
    }

    // Cycle-for-cycle: same event count, same timestamps, same evolving
    // score vectors (ids are namespaced on one side, dense on the other,
    // so comparison is score-based — ties are measure-zero with random
    // continuous scores).
    for (int q = 0; q < kQueriesPerSubscriber; ++q) {
      const QueryId qid = sub_qids[s][static_cast<std::size_t>(q)];
      const auto& got_deltas = got[qid];
      const auto& want_deltas = truth[qid];
      ASSERT_EQ(got_deltas.size(), want_deltas.size())
          << "subscriber " << s << " query " << qid;
      std::map<RecordId, double> got_view;
      std::map<RecordId, double> want_view;
      for (std::size_t i = 0; i < got_deltas.size(); ++i) {
        EXPECT_EQ(got_deltas[i].when, want_deltas[i].when)
            << "subscriber " << s << " query " << qid << " event " << i;
        EXPECT_EQ(ApplyDelta(got_view, got_deltas[i]),
                  ApplyDelta(want_view, want_deltas[i]))
            << "subscriber " << s << " query " << qid
            << " diverges at event " << i;
      }

      // Final state, three ways: the delta-built view, the router's
      // scatter-gather snapshot, and the truth engine agree.
      const auto snapshot = subs[static_cast<std::size_t>(s)]
                                ->CurrentResult(qid);
      ASSERT_TRUE(snapshot.ok()) << snapshot.status();
      EXPECT_EQ(subs[static_cast<std::size_t>(s)]->snapshot_as_of(),
                kPhases);
      const auto want_final = brute.CurrentResult(qid);
      ASSERT_TRUE(want_final.ok()) << want_final.status();
      EXPECT_EQ(Scores(*snapshot), Scores(*want_final))
          << "subscriber " << s << " query " << qid;
      std::vector<double> view_scores;
      for (const auto& [id, score] : got_view) {
        view_scores.push_back(score);
      }
      std::sort(view_scores.begin(), view_scores.end());
      auto final_scores = Scores(*want_final);
      std::sort(final_scores.begin(), final_scores.end());
      EXPECT_EQ(view_scores, final_scores)
          << "subscriber " << s << " query " << qid
          << ": delta stream and final snapshot disagree";
    }
  }

  for (auto& sub : subs) TOPKMON_EXPECT_OK(sub->Close());
  for (auto& prod : producers) TOPKMON_EXPECT_OK(prod->Close());
  (*cluster)->Stop();
}

}  // namespace
}  // namespace topkmon
