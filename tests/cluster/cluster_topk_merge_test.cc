// MergeTopK: the scatter-gather k-merge against a sort-everything oracle.

#include "cluster/topk_merge.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

namespace topkmon {
namespace {

std::vector<ResultEntry> Oracle(
    const std::vector<std::vector<ResultEntry>>& lists, int k) {
  std::vector<ResultEntry> all;
  for (const auto& l : lists) all.insert(all.end(), l.begin(), l.end());
  std::sort(all.begin(), all.end(), ResultOrder);
  if (static_cast<int>(all.size()) > k) {
    all.resize(static_cast<std::size_t>(k));
  }
  return all;
}

TEST(ClusterTopKMergeTest, NamespacedIdsAreUniqueAndReversible) {
  std::set<RecordId> seen;
  for (RecordId local = 0; local < 100; ++local) {
    for (std::size_t p = 0; p < 5; ++p) {
      const RecordId global = NamespaceRecordId(local, p, 5);
      EXPECT_TRUE(seen.insert(global).second)
          << "collision at local " << local << " partition " << p;
      EXPECT_EQ(global % 5, p);
      EXPECT_EQ(global / 5, local);
    }
  }
}

TEST(ClusterTopKMergeTest, HandlesEmptyInputsAndNonPositiveK) {
  EXPECT_TRUE(MergeTopK({}, 5).empty());
  EXPECT_TRUE(MergeTopK({{}, {}}, 5).empty());
  EXPECT_TRUE(MergeTopK({{ResultEntry{1, 1.0}}}, 0).empty());
  EXPECT_TRUE(MergeTopK({{ResultEntry{1, 1.0}}}, -3).empty());
}

TEST(ClusterTopKMergeTest, PicksTheGlobalBestAcrossLists) {
  const std::vector<std::vector<ResultEntry>> lists = {
      {{10, 0.9}, {13, 0.5}, {16, 0.1}},
      {{11, 0.8}, {14, 0.7}},
      {},
      {{12, 0.6}},
  };
  const auto merged = MergeTopK(lists, 4);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].id, 10u);
  EXPECT_EQ(merged[1].id, 11u);
  EXPECT_EQ(merged[2].id, 14u);
  EXPECT_EQ(merged[3].id, 12u);
}

TEST(ClusterTopKMergeTest, ShortInputsReturnEverything) {
  const auto merged =
      MergeTopK({{{1, 0.3}}, {{2, 0.4}}}, 10);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].id, 2u);
  EXPECT_EQ(merged[1].id, 1u);
}

TEST(ClusterTopKMergeTest, TiesFollowResultOrder) {
  // Equal scores rank by descending id — the same rule every engine
  // applies, so the merged view is deterministic.
  const auto merged = MergeTopK({{{5, 1.0}}, {{9, 1.0}}, {{7, 1.0}}}, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].id, 9u);
  EXPECT_EQ(merged[1].id, 7u);
  EXPECT_EQ(merged[2].id, 5u);
}

TEST(ClusterTopKMergeTest, AgreesWithTheOracleOnRandomInputs) {
  std::mt19937_64 rng(20260808);
  std::uniform_real_distribution<double> score(0.0, 1.0);
  for (int round = 0; round < 200; ++round) {
    const std::size_t partitions = 1 + rng() % 6;
    std::vector<std::vector<ResultEntry>> lists(partitions);
    RecordId next_id = 0;
    for (auto& l : lists) {
      const std::size_t n = rng() % 8;
      for (std::size_t i = 0; i < n; ++i) {
        l.push_back(ResultEntry{next_id++, score(rng)});
      }
      std::sort(l.begin(), l.end(), ResultOrder);
    }
    const int k = static_cast<int>(rng() % 10);
    EXPECT_EQ(MergeTopK(lists, k), Oracle(lists, k)) << "round " << round;
  }
}

}  // namespace
}  // namespace topkmon
