// Router failure isolation: a dead partition must not take the cluster
// with it — healthy ingest keeps flowing, scatter operations fail with
// an Unavailable that NAMES the dead endpoint, and a journal-recovered
// partition re-joins with a gap-free merged stream whose final state
// matches single-node ground truth.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/local_cluster.h"
#include "cluster/router.h"
#include "core/brute_force_engine.h"
#include "stream/generators.h"
#include "tests/journal/journal_test_util.h"
#include "tests/net/net_test_util.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

using ::topkmon::testing::MakeRandomQueries;
using ::topkmon::testing::ScopedTempDir;
using ::topkmon::testing::Scores;

constexpr int kDim = 2;
constexpr std::size_t kPartitions = 3;
constexpr Timestamp kSpan = 100;  // nothing expires inside these tests

LocalClusterOptions BaseOptions() {
  LocalClusterOptions options;
  options.partitions = kPartitions;
  options.engine_factory = [] {
    return std::unique_ptr<MonitorEngine>(
        new BruteForceEngine(kDim, WindowSpec::Time(kSpan)));
  };
  options.service.ingest.slack = 0;
  options.service.drain_wait = std::chrono::milliseconds(2);
  options.service.hub.buffer_capacity = 1 << 14;
  options.net = testing::TestServerOptions();
  return options;
}

/// One record per partition at timestamp `ts` (probing OwnerOf so every
/// partition is fed), scores seeded off `ts` for variety.
std::vector<Record> CoveringBatch(const PartitionMap& map, Timestamp ts,
                                  StreamGenerator& gen) {
  std::vector<Record> batch;
  std::vector<bool> covered(map.partitions(), false);
  std::size_t covered_count = 0;
  for (RecordId id = 0; covered_count < map.partitions(); ++id) {
    if (covered[map.OwnerOf(id)]) continue;
    covered[map.OwnerOf(id)] = true;
    ++covered_count;
    batch.emplace_back(id, gen.NextPoint(), ts);
  }
  return batch;
}

TEST(ClusterFailureTest, DeadPartitionIsIsolatedAndNamed) {
  auto cluster = LocalCluster::Start(BaseOptions());
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  const PartitionMap& map = (*cluster)->map();

  auto router = ClusterRouter::Connect(map, "iso", /*resume=*/false);
  ASSERT_TRUE(router.ok()) << router.status();
  const auto specs = MakeRandomQueries(kDim, 2, 3, 11);
  const auto query = (*router)->Register(specs[0]);
  ASSERT_TRUE(query.ok()) << query.status();

  auto gen = MakeGenerator(Distribution::kIndependent, kDim, 900);
  const auto warm = (*router)->Ingest(CoveringBatch(map, 1, *gen));
  ASSERT_TRUE(warm.ok()) << warm.status();
  ASSERT_EQ(warm->rejected, 0u) << warm->first_error;
  TOPKMON_ASSERT_OK((*cluster)->FlushAll());

  // Kill partition 1. The router still holds a connection to it, so the
  // first call discovers the death as a transport error.
  TOPKMON_ASSERT_OK((*cluster)->StopPartition(1));

  // Ingest: the healthy partitions' tuples flow, partition 1's are
  // rejected with an error naming the endpoint.
  const std::vector<Record> batch2 = CoveringBatch(map, 2, *gen);
  std::size_t owned_by_dead = 0;
  for (const Record& r : batch2) {
    if (map.OwnerOf(r.id) == 1) ++owned_by_dead;
  }
  ASSERT_GT(owned_by_dead, 0u);
  const auto report = (*router)->Ingest(batch2);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->accepted, batch2.size() - owned_by_dead);
  EXPECT_EQ(report->rejected, owned_by_dead);
  EXPECT_EQ(report->first_error.code(), StatusCode::kUnavailable)
      << report->first_error;
  EXPECT_NE(report->first_error.message().find(map.Describe(1)),
            std::string::npos)
      << "error does not name the endpoint: " << report->first_error;
  EXPECT_FALSE((*router)->partition_up(1));

  // Later ingests keep flowing to the healthy partitions with no
  // transport stalls (the dead partition is skipped outright).
  const auto report2 = (*router)->Ingest(CoveringBatch(map, 3, *gen));
  ASSERT_TRUE(report2.ok()) << report2.status();
  EXPECT_EQ(report2->accepted,
            CoveringBatch(map, 3, *gen).size() - owned_by_dead);
  EXPECT_EQ(report2->first_error.code(), StatusCode::kUnavailable);

  // Scatter operations on the dead partition: clear Unavailable naming
  // the endpoint, and the partial registration is rolled back.
  const auto refused = (*router)->Register(specs[1]);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(refused.status().message().find(map.Describe(1)),
            std::string::npos)
      << refused.status();

  const auto read = (*router)->CurrentResult(*query);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(read.status().message().find(map.Describe(1)),
            std::string::npos)
      << read.status();

  const Status unreg = (*router)->Unregister(*query);
  EXPECT_EQ(unreg.code(), StatusCode::kUnavailable);
  EXPECT_NE(unreg.message().find(map.Describe(1)), std::string::npos)
      << unreg;

  // Polling stays healthy: the merged frontier just stops advancing
  // past the dead partition's last answer.
  const auto events =
      (*router)->PollDeltas(256, std::chrono::milliseconds(20));
  ASSERT_TRUE(events.ok()) << events.status();

  (void)(*router)->Close();
  (*cluster)->Stop();
}

TEST(ClusterFailureTest, RecoveredPartitionResumesGapFreeAndConverges) {
  ScopedTempDir journal_root;
  LocalClusterOptions options = BaseOptions();
  options.service.journal.dir = journal_root.path();
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  const PartitionMap& map = (*cluster)->map();

  // Capture per-partition cycles for the ground-truth replay; the
  // observer must be re-installed after the restart.
  std::mutex capture_mu;
  std::vector<std::vector<std::pair<Timestamp, std::vector<Record>>>>
      captured(kPartitions);
  auto install_observer = [&](std::size_t p) {
    (*cluster)->service(p)->SetCycleObserver(
        [&capture_mu, &captured, p](Timestamp ts, RecordSpan batch) {
          std::lock_guard<std::mutex> lock(capture_mu);
          captured[p].emplace_back(
              ts, std::vector<Record>(batch.begin(), batch.end()));
        });
  };
  for (std::size_t p = 0; p < kPartitions; ++p) install_observer(p);

  auto router = ClusterRouter::Connect(map, "recov", /*resume=*/false);
  ASSERT_TRUE(router.ok()) << router.status();
  const auto specs = MakeRandomQueries(kDim, 1, 4, 33);
  const auto query = (*router)->Register(specs[0]);
  ASSERT_TRUE(query.ok()) << query.status();

  auto gen = MakeGenerator(Distribution::kIndependent, kDim, 901);
  std::vector<DeltaEvent> merged;
  auto pump = [&] {
    const auto events =
        (*router)->PollDeltas(256, std::chrono::milliseconds(20));
    ASSERT_TRUE(events.ok()) << events.status();
    merged.insert(merged.end(), events->begin(), events->end());
  };

  for (Timestamp ts = 1; ts <= 4; ++ts) {
    const auto report = (*router)->Ingest(CoveringBatch(map, ts, *gen));
    ASSERT_TRUE(report.ok()) << report.status();
    ASSERT_EQ(report->rejected, 0u) << report->first_error;
    TOPKMON_ASSERT_OK((*cluster)->FlushAll());
    pump();
  }

  // Crash partition 2, recover it from its journal, reconnect. The
  // recovered session keeps its label, so the router resumes it; the
  // recovered hub starts a fresh delta sequence, which the multiplexer
  // detects and absorbs as a re-baseline.
  TOPKMON_ASSERT_OK((*cluster)->StopPartition(2));
  TOPKMON_ASSERT_OK((*cluster)->RestartPartition(2));
  install_observer(2);
  TOPKMON_ASSERT_OK((*router)->Reconnect(2));
  EXPECT_TRUE((*router)->resumed(2))
      << "recovery did not preserve the session label";

  for (Timestamp ts = 5; ts <= 8; ++ts) {
    const auto report = (*router)->Ingest(CoveringBatch(map, ts, *gen));
    ASSERT_TRUE(report.ok()) << report.status();
    ASSERT_EQ(report->rejected, 0u) << report->first_error;
    TOPKMON_ASSERT_OK((*cluster)->FlushAll());
    pump();
  }
  pump();
  pump();
  auto final_events = (*router)->FinalizeDeltas();
  merged.insert(merged.end(), final_events.begin(), final_events.end());

  // The MERGED stream is gap-free across the crash (per-partition
  // sequences restarted, the router's did not), and the restart was
  // observed.
  std::uint64_t expected_seq = 1;
  for (const DeltaEvent& e : merged) EXPECT_EQ(e.seq, expected_seq++);
  EXPECT_GE((*router)->partition_restarts(), 1u);

  // Final convergence: the delta-built view, the scatter-gather
  // snapshot, and an uninterrupted single-node replay all agree.
  // (Cycle-exactness across the crash is NOT promised — events the dead
  // partition published between the last poll and the crash are gone —
  // the guarantee is the re-baselined stream converging to truth.)
  std::map<RecordId, double> view;
  for (const DeltaEvent& e : merged) {
    for (const ResultEntry& r : e.delta.removed) view.erase(r.id);
    for (const ResultEntry& r : e.delta.added) view.emplace(r.id, r.score);
  }
  std::vector<double> view_scores;
  for (const auto& [id, score] : view) view_scores.push_back(score);
  std::sort(view_scores.begin(), view_scores.end(), std::greater<>());

  const auto snapshot = (*router)->CurrentResult(*query);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();

  BruteForceEngine brute(kDim, WindowSpec::Time(kSpan));
  QuerySpec spec = specs[0];
  spec.id = *query;
  TOPKMON_ASSERT_OK(brute.RegisterQuery(spec));
  {
    std::lock_guard<std::mutex> lock(capture_mu);
    RecordId next_id = 0;
    for (Timestamp ts = 1; ts <= 8; ++ts) {
      std::vector<Record> batch;
      for (std::size_t p = 0; p < kPartitions; ++p) {
        for (const auto& [cts, cbatch] : captured[p]) {
          if (cts != ts) continue;
          for (const Record& r : cbatch) {
            batch.emplace_back(next_id++, r.position, r.arrival);
          }
        }
      }
      ASSERT_FALSE(batch.empty()) << "no partition cycled at ts " << ts;
      TOPKMON_ASSERT_OK(brute.ProcessCycle(ts, batch));
    }
  }
  const auto want = brute.CurrentResult(*query);
  ASSERT_TRUE(want.ok()) << want.status();
  EXPECT_EQ(Scores(*snapshot), Scores(*want));
  EXPECT_EQ(view_scores, Scores(*want))
      << "the re-baselined delta stream did not converge to truth";

  (void)(*router)->Close();
  (*cluster)->Stop();
}

}  // namespace
}  // namespace topkmon
