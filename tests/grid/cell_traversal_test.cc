#include "grid/cell_traversal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "util/rng.h"

namespace topkmon {
namespace {

TEST(TraversalScratchTest, MarksResetPerEpoch) {
  TraversalScratch scratch;
  scratch.Reset(16);
  EXPECT_TRUE(scratch.Mark(3));
  EXPECT_FALSE(scratch.Mark(3));
  EXPECT_TRUE(scratch.IsMarked(3));
  EXPECT_FALSE(scratch.IsMarked(4));
  scratch.Reset(16);
  EXPECT_FALSE(scratch.IsMarked(3));
  EXPECT_TRUE(scratch.Mark(3));
}

TEST(TraversalScratchTest, GrowsWithGrid) {
  TraversalScratch scratch;
  scratch.Reset(4);
  EXPECT_TRUE(scratch.Mark(3));
  scratch.Reset(32);
  EXPECT_TRUE(scratch.Mark(31));
}

TEST(SeedCellTest, IncreasingFunctionsSeedAtTopCorner) {
  Grid g(2, 10);
  LinearFunction f({1.0, 1.0});
  const CellCoords coords = g.Decompose(SeedCell(g, f));
  EXPECT_EQ(coords[0], 9);
  EXPECT_EQ(coords[1], 9);
}

TEST(SeedCellTest, MixedMonotonicitySeedsAtMixedCorner) {
  // Figure 7a: f = x1 - x2 starts at the bottom-right corner.
  Grid g(2, 10);
  LinearFunction f({1.0, -1.0});
  const CellCoords coords = g.Decompose(SeedCell(g, f));
  EXPECT_EQ(coords[0], 9);
  EXPECT_EQ(coords[1], 0);
}

// The core Figure 5b property: the traversal must emit every grid cell in
// exact descending maxscore order, for any monotone function.
class DescendingOrderProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DescendingOrderProperty, EnumeratesAllCellsInMaxScoreOrder) {
  const auto [dim, cells_per_axis] = GetParam();
  Grid g(dim, cells_per_axis);
  Rng rng(100 + dim * 10 + cells_per_axis);
  for (int trial = 0; trial < 5; ++trial) {
    // Random mixed-sign linear function.
    std::vector<double> w(dim);
    for (double& x : w) x = rng.Uniform(-1.0, 1.0);
    LinearFunction f(w);

    TraversalScratch scratch;
    MaxScoreTraversal traversal(g, f, &scratch);
    std::vector<double> emitted;
    std::unordered_set<CellIndex> seen;
    while (traversal.HasNext()) {
      const auto entry = traversal.Next();
      emitted.push_back(entry.maxscore);
      EXPECT_TRUE(seen.insert(entry.cell).second)
          << "cell emitted twice: " << entry.cell;
      // The reported key must equal the true maxscore of the cell.
      EXPECT_DOUBLE_EQ(entry.maxscore, f.MaxScore(g.CellBounds(entry.cell)));
    }
    EXPECT_EQ(seen.size(), g.num_cells());
    EXPECT_TRUE(std::is_sorted(emitted.rbegin(), emitted.rend()))
        << "maxscores not descending";
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndResolutions, DescendingOrderProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 2, 5, 8)));

TEST(MaxScoreTraversalTest, FrontierIsEnheapedButUnprocessed) {
  Grid g(2, 8);
  LinearFunction f({1.0, 2.0});
  TraversalScratch scratch;
  MaxScoreTraversal traversal(g, f, &scratch);
  // Process only 5 cells.
  std::unordered_set<CellIndex> processed;
  for (int i = 0; i < 5; ++i) processed.insert(traversal.Next().cell);
  const std::vector<CellIndex> frontier = traversal.RemainingFrontier();
  EXPECT_FALSE(frontier.empty());
  for (CellIndex c : frontier) {
    EXPECT_FALSE(processed.count(c))
        << "frontier cell was already processed";
    // Frontier cells have lower-or-equal maxscore than any processed cell's.
  }
  EXPECT_EQ(traversal.num_processed(), 5u);
}

TEST(MaxScoreTraversalTest, ConstrainedVisitsOnlyIntersectingCells) {
  Grid g(2, 10);
  LinearFunction f({1.0, 2.0});
  const Rect constraint(Point{0.32, 0.0}, Point{0.58, 0.45});
  TraversalScratch scratch;
  MaxScoreTraversal traversal(g, f, &scratch, &constraint);
  std::size_t count = 0;
  double last = std::numeric_limits<double>::infinity();
  while (traversal.HasNext()) {
    const auto entry = traversal.Next();
    ++count;
    EXPECT_TRUE(g.CellBounds(entry.cell).Intersects(constraint));
    EXPECT_LE(entry.maxscore, last + 1e-12);
    last = entry.maxscore;
    // Clipped maxscore never exceeds the constraint's own best score.
    EXPECT_LE(entry.maxscore, f.MaxScore(constraint) + 1e-12);
  }
  // The constraint spans x1 in cells 3..5 and x2 in cells 0..4 => 15 cells.
  EXPECT_EQ(count, 15u);
}

TEST(MaxScoreTraversalTest, ConstraintSeedIsBestCornerCell) {
  Grid g(2, 10);
  LinearFunction f({1.0, 2.0});
  const Rect constraint(Point{0.3, 0.0}, Point{0.6, 0.45});
  TraversalScratch scratch;
  MaxScoreTraversal traversal(g, f, &scratch, &constraint);
  // Figure 12: the first processed cell contains the best corner of R.
  // The corner (0.6, 0.45) lies exactly on the grid line x1 = 0.6, so the
  // corrected seed is the cell on the constraint's side: (5, 4).
  ASSERT_TRUE(traversal.HasNext());
  const auto first = traversal.Next();
  EXPECT_EQ(first.cell, ConstrainedSeedCell(g, f, constraint));
  const CellCoords coords = g.Decompose(first.cell);
  EXPECT_EQ(coords[0], 5);
  EXPECT_EQ(coords[1], 4);
}

TEST(ConstrainedSeedCellTest, CornerOnGridLineStaysInsideConstraint) {
  Grid g(2, 10);
  LinearFunction inc({1.0, 1.0});
  // hi corner exactly on a grid line for an increasing function.
  const Rect on_line(Point{0.0, 0.0}, Point{0.6, 0.6});
  const CellCoords c1 = g.Decompose(ConstrainedSeedCell(g, inc, on_line));
  EXPECT_EQ(c1[0], 5);
  EXPECT_EQ(c1[1], 5);
  // lo corner exactly on a grid line for a decreasing function: whichever
  // cell is chosen, it must intersect the constraint (the property the
  // traversal needs to start).
  LinearFunction dec({-1.0, -1.0});
  const Rect lo_line(Point{0.3, 0.3}, Point{0.9, 0.9});
  const CellIndex c2 = ConstrainedSeedCell(g, dec, lo_line);
  EXPECT_TRUE(g.CellBounds(c2).Intersects(lo_line));
  // And across many random constraints the seed always intersects.
  Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    Point lo(2);
    Point hi(2);
    for (int i = 0; i < 2; ++i) {
      double a = rng.UniformInt(11) / 10.0;  // grid-aligned corners
      double b = rng.Uniform();
      lo[i] = std::min(a, b);
      hi[i] = std::max(a, b);
    }
    const Rect r(lo, hi);
    for (const ScoringFunction* f2 :
         {static_cast<const ScoringFunction*>(&inc),
          static_cast<const ScoringFunction*>(&dec)}) {
      const CellIndex seed = ConstrainedSeedCell(g, *f2, r);
      EXPECT_TRUE(g.CellBounds(seed).Intersects(r))
          << "constraint " << r.ToString();
    }
  }
}

TEST(WalkDescendingTest, VisitsDownClosedRegion) {
  Grid g(2, 6);
  LinearFunction f({1.0, 1.0});
  TraversalScratch scratch;
  // Expand only through cells whose coordinate sum is >= 8; the walk from
  // the top corner should visit those plus their immediate down-neighbors.
  std::vector<CellIndex> visited;
  WalkDescending(g, f, {SeedCell(g, f)}, &scratch,
                 [&](CellIndex cell) {
                   visited.push_back(cell);
                   const CellCoords c = g.Decompose(cell);
                   return c[0] + c[1] >= 8;
                 });
  // Cells with sum >= 8: (4,4),(5,4),(4,5),(5,5),(3,5),(5,3) = 6 cells;
  // their down-neighbors with sum 7 are also *visited* (but not expanded):
  // (2,5),(3,4),(4,3),(5,2).
  std::unordered_set<CellIndex> set(visited.begin(), visited.end());
  EXPECT_EQ(set.size(), 10u);
  for (CellIndex cell : visited) {
    const CellCoords c = g.Decompose(cell);
    EXPECT_GE(c[0] + c[1], 7);
  }
}

TEST(WalkDescendingTest, EmptySeedsVisitsNothing) {
  Grid g(2, 4);
  LinearFunction f({1.0, 1.0});
  TraversalScratch scratch;
  int visits = 0;
  WalkDescending(g, f, {}, &scratch, [&](CellIndex) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 0);
}

TEST(WalkDescendingTest, DuplicateSeedsVisitOnce) {
  Grid g(2, 4);
  LinearFunction f({1.0, 1.0});
  TraversalScratch scratch;
  int visits = 0;
  const CellIndex seed = SeedCell(g, f);
  WalkDescending(g, f, {seed, seed, seed}, &scratch, [&](CellIndex) {
    ++visits;
    return false;
  });
  EXPECT_EQ(visits, 1);
}

}  // namespace
}  // namespace topkmon
