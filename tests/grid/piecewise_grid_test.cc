// Pins the engine-internal piecewise decomposition (PR 7): TMA, SMA,
// TSL and the sharded engine must answer piecewise-monotone queries
// cycle-for-cycle identically to BruteForce, including records landing
// exactly on piece boundaries and timestamps landing exactly on the
// window's expiry edge. All coordinates, weights and biases in the
// pinned cases are dyadic so the per-piece linear scores are bitwise
// equal across engines (the merge dedup relies on that).
//
// The PiecewiseGrid prefix is load-bearing: CI's TSan matrix includes
// PiecewiseGrid* in its gtest filter.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "core/brute_force_engine.h"
#include "core/piecewise.h"
#include "core/piecewise_router.h"
#include "core/sharded_engine.h"
#include "core/sma_engine.h"
#include "core/tma_engine.h"
#include "tests/test_util.h"
#include "tsl/tsl_engine.h"

namespace topkmon {
namespace {

GridEngineOptions GridOptions(std::size_t window) {
  GridEngineOptions opt;
  opt.dim = 2;
  opt.window = WindowSpec::Count(window);
  opt.cell_budget = 256;
  return opt;
}

/// Every engine under test plus the BruteForce oracle (index 0). The
/// sharded engine runs 2xTMA so its scatter path covers the piecewise
/// forwarding too.
struct EngineSet {
  std::vector<std::unique_ptr<MonitorEngine>> owned;
  std::vector<MonitorEngine*> all;  ///< [0] is BruteForce
};

EngineSet MakeEngines(const WindowSpec& window, std::size_t count_window) {
  EngineSet set;
  set.owned.push_back(std::make_unique<BruteForceEngine>(2, window));
  GridEngineOptions grid = GridOptions(count_window);
  grid.window = window;
  set.owned.push_back(std::make_unique<TmaEngine>(grid));
  set.owned.push_back(std::make_unique<SmaEngine>(grid));
  TslOptions tsl;
  tsl.dim = 2;
  tsl.window = window;
  set.owned.push_back(std::make_unique<TslEngine>(tsl));
  set.owned.push_back(std::make_unique<ShardedEngine>(2, [=] {
    GridEngineOptions inner = GridOptions(count_window);
    inner.window = window;
    return std::unique_ptr<MonitorEngine>(new TmaEngine(inner));
  }));
  for (auto& e : set.owned) set.all.push_back(e.get());
  return set;
}

/// The ridge f(p) = x2 - |x1 - 0.5| as two monotone pieces. All dyadic.
std::shared_ptr<const ScoringFunction> RidgeFunction() {
  std::vector<MonotonePiece> pieces;
  pieces.push_back(MonotonePiece{
      Rect(Point{0.0, 0.0}, Point{0.5, 1.0}),
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0},
                                       -0.5)});
  pieces.push_back(MonotonePiece{
      Rect(Point{0.5, 0.0}, Point{1.0, 1.0}),
      std::make_shared<LinearFunction>(std::vector<double>{-1.0, 1.0},
                                       0.5)});
  auto fn = PiecewiseFunction::Create(std::move(pieces));
  EXPECT_TRUE(fn.ok());
  return *fn;
}

/// A partial cover: only the center box [0.25, 0.75]^2 is ranked;
/// records outside it are unrankable and must never be reported.
std::shared_ptr<const ScoringFunction> CenterOnlyFunction() {
  std::vector<MonotonePiece> pieces;
  pieces.push_back(MonotonePiece{
      Rect(Point{0.25, 0.25}, Point{0.75, 0.75}),
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0})});
  auto fn = PiecewiseFunction::Create(std::move(pieces));
  EXPECT_TRUE(fn.ok());
  return *fn;
}

QuerySpec PiecewiseSpec(QueryId id, int k,
                        std::shared_ptr<const ScoringFunction> fn) {
  QuerySpec spec;
  spec.id = id;
  spec.k = k;
  spec.function = std::move(fn);
  return spec;
}

void ExpectAllAgree(const EngineSet& set, QueryId id, Timestamp now) {
  const auto want = set.all[0]->CurrentResult(id);
  ASSERT_TRUE(want.ok());
  for (std::size_t i = 1; i < set.all.size(); ++i) {
    const auto got = set.all[i]->CurrentResult(id);
    ASSERT_TRUE(got.ok()) << set.all[i]->name();
    EXPECT_EQ(testing::Scores(*got), testing::Scores(*want))
        << set.all[i]->name() << " vs BruteForce, query " << id << " t="
        << now;
  }
}

TEST(PiecewiseGridTest, AllEnginesMatchBruteForceOnRandomStream) {
  EngineSet set = MakeEngines(WindowSpec::Count(200), 200);
  const QuerySpec ridge = PiecewiseSpec(1, 5, RidgeFunction());
  const QuerySpec center = PiecewiseSpec(2, 4, CenterOnlyFunction());
  for (MonitorEngine* e : set.all) {
    TOPKMON_ASSERT_OK(e->RegisterQuery(ridge));
    TOPKMON_ASSERT_OK(e->RegisterQuery(center));
  }
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 91));
  for (Timestamp now = 1; now <= 25; ++now) {
    const std::vector<Record> batch = source.NextBatch(30, now);
    for (MonitorEngine* e : set.all) {
      TOPKMON_ASSERT_OK(e->ProcessCycle(now, batch));
    }
    ExpectAllAgree(set, 1, now);
    ExpectAllAgree(set, 2, now);
  }
}

TEST(PiecewiseGridTest, PieceBoundaryRecordsPinnedBitwise) {
  // Records exactly on the ridge x1 = 0.5 belong to both pieces; the
  // merge must report each once with the exact dyadic score.
  EngineSet set = MakeEngines(WindowSpec::Count(100), 100);
  const QuerySpec spec = PiecewiseSpec(7, 4, RidgeFunction());
  for (MonitorEngine* e : set.all) {
    TOPKMON_ASSERT_OK(e->RegisterQuery(spec));
  }
  const std::vector<Record> batch = {
      Record(1, Point{0.5, 0.875}, 1),   // on the ridge: score 0.875
      Record(2, Point{0.5, 0.75}, 1),    // on the ridge: score 0.75
      Record(3, Point{0.25, 0.875}, 1),  // left piece: score 0.625
      Record(4, Point{0.75, 0.5}, 1),    // right piece: score 0.25
      Record(5, Point{0.0, 0.125}, 1),   // left edge: score -0.375
  };
  for (MonitorEngine* e : set.all) {
    TOPKMON_ASSERT_OK(e->ProcessCycle(1, batch));
    const auto result = e->CurrentResult(7);
    ASSERT_TRUE(result.ok()) << e->name();
    ASSERT_EQ(result->size(), 4u) << e->name();
    EXPECT_EQ((*result)[0].id, 1u) << e->name();
    EXPECT_EQ((*result)[1].id, 2u) << e->name();
    EXPECT_EQ((*result)[2].id, 3u) << e->name();
    EXPECT_EQ((*result)[3].id, 4u) << e->name();
    // Dyadic inputs: the scores are exact, not just near.
    EXPECT_EQ((*result)[0].score, 0.875) << e->name();
    EXPECT_EQ((*result)[1].score, 0.75) << e->name();
    EXPECT_EQ((*result)[2].score, 0.625) << e->name();
    EXPECT_EQ((*result)[3].score, 0.25) << e->name();
  }
}

TEST(PiecewiseGridTest, ExpiryEdgeTimestampsStayExact) {
  // Time-based window: a boundary record arriving at t expires exactly
  // at the window edge. Drive cycles across that edge and require
  // cycle-for-cycle agreement while ridge records drop out.
  const WindowSpec window = WindowSpec::Time(4);
  EngineSet set = MakeEngines(window, 64);
  const QuerySpec spec = PiecewiseSpec(3, 3, RidgeFunction());
  for (MonitorEngine* e : set.all) {
    TOPKMON_ASSERT_OK(e->RegisterQuery(spec));
  }
  RecordId next_id = 1;
  for (Timestamp now = 1; now <= 12; ++now) {
    std::vector<Record> batch;
    // One ridge record and one per-piece record each cycle, on dyadic
    // lattice points that drift with the cycle.
    const double y = static_cast<double>(now % 8) / 8.0;
    batch.push_back(Record(next_id++, Point{0.5, y}, now));
    batch.push_back(Record(next_id++, Point{0.25, 1.0 - y}, now));
    batch.push_back(Record(next_id++, Point{0.75, y}, now));
    for (MonitorEngine* e : set.all) {
      TOPKMON_ASSERT_OK(e->ProcessCycle(now, batch));
    }
    ExpectAllAgree(set, 3, now);
  }
}

TEST(PiecewiseGridTest, TinyKmaxSlackForcesRefillsAndStaysExact) {
  // kmax == k is TSL's worst case: every expiry of a result record in
  // any piece forces a view refill through the constrained TA.
  TslOptions opt;
  opt.dim = 2;
  opt.window = WindowSpec::Count(80);
  opt.kmax_override = 3;
  TslEngine tsl(opt);
  BruteForceEngine brute(2, opt.window);
  const QuerySpec spec = PiecewiseSpec(1, 3, RidgeFunction());
  TOPKMON_ASSERT_OK(tsl.RegisterQuery(spec));
  TOPKMON_ASSERT_OK(brute.RegisterQuery(spec));
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 5));
  for (Timestamp now = 1; now <= 20; ++now) {
    const std::vector<Record> batch = source.NextBatch(20, now);
    TOPKMON_ASSERT_OK(tsl.ProcessCycle(now, batch));
    TOPKMON_ASSERT_OK(brute.ProcessCycle(now, batch));
    const auto want = brute.CurrentResult(1);
    const auto got = tsl.CurrentResult(1);
    ASSERT_TRUE(want.ok() && got.ok());
    EXPECT_EQ(testing::Scores(*got), testing::Scores(*want)) << now;
  }
  EXPECT_GT(tsl.stats().view_refills, 0u);
}

TEST(PiecewiseGridTest, MidStreamRegisterAndUnregisterLeaveNoResidue) {
  EngineSet set = MakeEngines(WindowSpec::Count(150), 150);
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 13));
  Timestamp now = 0;
  auto cycle = [&] {
    ++now;
    const std::vector<Record> batch = source.NextBatch(25, now);
    for (MonitorEngine* e : set.all) {
      TOPKMON_ASSERT_OK(e->ProcessCycle(now, batch));
    }
  };
  for (int c = 0; c < 6; ++c) cycle();
  const QuerySpec spec = PiecewiseSpec(9, 4, RidgeFunction());
  for (MonitorEngine* e : set.all) {
    TOPKMON_ASSERT_OK(e->RegisterQuery(spec));
  }
  ExpectAllAgree(set, 9, now);  // initial computation over the window
  for (int c = 0; c < 6; ++c) {
    cycle();
    ExpectAllAgree(set, 9, now);
  }
  for (MonitorEngine* e : set.all) {
    TOPKMON_ASSERT_OK(e->UnregisterQuery(9));
    EXPECT_EQ(e->CurrentResult(9).status().code(), StatusCode::kNotFound)
        << e->name();
    // The internal sub-queries are invisible: the reserved range reads
    // as NotFound, before and after the parent existed.
    EXPECT_EQ(e->CurrentResult(kInternalQueryIdBase).status().code(),
              StatusCode::kNotFound)
        << e->name();
    // Re-registration under the same id works (full cleanup happened).
    TOPKMON_ASSERT_OK(e->RegisterQuery(spec));
    TOPKMON_ASSERT_OK(e->UnregisterQuery(9));
  }
}

TEST(PiecewiseGridTest, ReservedIdRangeRefusedEverywhere) {
  EngineSet set = MakeEngines(WindowSpec::Count(50), 50);
  QuerySpec spec = PiecewiseSpec(kInternalQueryIdBase, 3, RidgeFunction());
  for (MonitorEngine* e : set.all) {
    EXPECT_EQ(e->RegisterQuery(spec).code(), StatusCode::kInvalidArgument)
        << e->name();
  }
}

TEST(PiecewiseGridTest, DeltasReportParentIdsOnly) {
  for (int kind = 0; kind < 3; ++kind) {
    std::unique_ptr<MonitorEngine> engine;
    if (kind == 0) {
      engine = std::make_unique<TmaEngine>(GridOptions(120));
    } else if (kind == 1) {
      engine = std::make_unique<SmaEngine>(GridOptions(120));
    } else {
      TslOptions opt;
      opt.dim = 2;
      opt.window = WindowSpec::Count(120);
      engine = std::make_unique<TslEngine>(opt);
    }
    std::set<QueryId> reported;
    engine->SetDeltaCallback(
        [&reported](const ResultDelta& d) { reported.insert(d.query); });
    TOPKMON_ASSERT_OK(
        engine->RegisterQuery(PiecewiseSpec(5, 3, RidgeFunction())));
    RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 29));
    for (Timestamp now = 1; now <= 8; ++now) {
      TOPKMON_ASSERT_OK(engine->ProcessCycle(now, source.NextBatch(30, now)));
    }
    EXPECT_EQ(reported.size(), 1u) << engine->name();
    EXPECT_TRUE(reported.count(5)) << engine->name();
  }
}

}  // namespace
}  // namespace topkmon
