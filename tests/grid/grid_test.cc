#include "grid/grid.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace topkmon {
namespace {

TEST(GridTest, CellsPerAxisForBudgetMatchesPaperSizing) {
  // Section 8 tunes ~12^4 = 20736 total cells regardless of d.
  EXPECT_EQ(Grid::CellsPerAxisForBudget(4, 20736), 12);
  EXPECT_EQ(Grid::CellsPerAxisForBudget(2, 20736), 144);
  EXPECT_EQ(Grid::CellsPerAxisForBudget(3, 20736), 27);
  EXPECT_EQ(Grid::CellsPerAxisForBudget(5, 20736), 7);
  EXPECT_EQ(Grid::CellsPerAxisForBudget(6, 20736), 5);
  EXPECT_EQ(Grid::CellsPerAxisForBudget(1, 20736), 20736);
  EXPECT_EQ(Grid::CellsPerAxisForBudget(4, 1), 1);
}

TEST(GridTest, DimensionsAndDelta) {
  Grid g(2, 10);
  EXPECT_EQ(g.dim(), 2);
  EXPECT_EQ(g.cells_per_axis(), 10);
  EXPECT_EQ(g.num_cells(), 100u);
  EXPECT_DOUBLE_EQ(g.delta(), 0.1);
}

TEST(GridTest, LocateCellBasics) {
  Grid g(2, 10);
  // Section 4.1: cell c_{i,j} covers [i*delta,(i+1)*delta).
  const CellIndex c = g.LocateCell(Point{0.25, 0.77});
  const CellCoords coords = g.Decompose(c);
  EXPECT_EQ(coords[0], 2);
  EXPECT_EQ(coords[1], 7);
}

TEST(GridTest, LocateCellBoundaryOneMapsToLastCell) {
  Grid g(2, 10);
  const CellCoords coords = g.Decompose(g.LocateCell(Point{1.0, 1.0}));
  EXPECT_EQ(coords[0], 9);
  EXPECT_EQ(coords[1], 9);
}

TEST(GridTest, LocateCellOriginMapsToFirstCell) {
  Grid g(3, 7);
  EXPECT_EQ(g.LocateCell(Point{0.0, 0.0, 0.0}), 0u);
}

TEST(GridTest, ComposeDecomposeRoundTrip) {
  Grid g(4, 6);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const CellIndex c =
        static_cast<CellIndex>(rng.UniformInt(g.num_cells()));
    EXPECT_EQ(g.Compose(g.Decompose(c)), c);
  }
}

TEST(GridTest, CellBoundsContainLocatedPoints) {
  Grid g(3, 9);
  Rng rng(6);
  for (int trial = 0; trial < 500; ++trial) {
    Point p(3);
    for (int i = 0; i < 3; ++i) p[i] = rng.Uniform();
    const CellIndex c = g.LocateCell(p);
    EXPECT_TRUE(g.CellBounds(c).Contains(p)) << p.ToString();
  }
}

TEST(GridTest, CellBoundsTileTheWorkspace) {
  Grid g(2, 4);
  double volume = 0.0;
  for (CellIndex c = 0; c < g.num_cells(); ++c) {
    volume += g.CellBounds(c).Volume();
  }
  EXPECT_NEAR(volume, 1.0, 1e-12);
}

TEST(GridTest, PointListFifo) {
  Grid g(2, 4);
  const CellIndex c = g.LocateCell(Point{0.1, 0.1});
  g.InsertPoint(c, 10, Point{0.1, 0.1});
  g.InsertPoint(c, 11, Point{0.12, 0.1});
  g.InsertPoint(c, 12, Point{0.14, 0.1});
  EXPECT_EQ(g.num_points(), 3u);
  EXPECT_EQ(g.PointsIn(c).size(), 3u);
  g.ErasePointFifo(c, 10);
  EXPECT_EQ(g.PointsIn(c).size(), 2u);
  EXPECT_EQ(*g.PointsIn(c).begin(), 11u);
  EXPECT_EQ(g.num_points(), 2u);
}

TEST(GridTest, PointListPositionalErase) {
  Grid g(2, 4);
  const CellIndex c = 0;
  g.InsertPoint(c, 1, Point{0.01, 0.01});
  g.InsertPoint(c, 2, Point{0.02, 0.02});
  g.InsertPoint(c, 3, Point{0.03, 0.03});
  ASSERT_TRUE(g.ErasePoint(c, 2).ok());
  EXPECT_EQ(g.PointsIn(c).size(), 2u);
  std::vector<RecordId> remaining(g.PointsIn(c).begin(),
                                  g.PointsIn(c).end());
  EXPECT_EQ(remaining, (std::vector<RecordId>{1, 3}));
  EXPECT_EQ(g.ErasePoint(c, 99).code(), StatusCode::kNotFound);
}

TEST(GridTest, PointListCompactionKeepsContents) {
  PointList list;
  for (RecordId i = 0; i < 1000; ++i) {
    list.PushBack(i, Point{static_cast<double>(i) / 1000.0, 0.5});
  }
  for (RecordId i = 0; i < 900; ++i) list.PopFront(i);
  EXPECT_EQ(list.size(), 100u);
  RecordId expect = 900;
  for (RecordId id : list) EXPECT_EQ(id, expect++);
  // The coordinate lanes compact in lockstep with the ids.
  const double* x = list.Lane(0);
  const double* y = list.Lane(1);
  for (std::size_t i = 0; i < list.size(); ++i) {
    EXPECT_DOUBLE_EQ(x[i], static_cast<double>(900 + i) / 1000.0);
    EXPECT_DOUBLE_EQ(y[i], 0.5);
  }
}

TEST(GridTest, PointListLanesTrackErase) {
  PointList list;
  list.PushBack(1, Point{0.1, 0.9});
  list.PushBack(2, Point{0.2, 0.8});
  list.PushBack(3, Point{0.3, 0.7});
  ASSERT_TRUE(list.Erase(2));
  ASSERT_EQ(list.size(), 2u);
  EXPECT_DOUBLE_EQ(list.Lane(0)[0], 0.1);
  EXPECT_DOUBLE_EQ(list.Lane(0)[1], 0.3);
  EXPECT_DOUBLE_EQ(list.Lane(1)[0], 0.9);
  EXPECT_DOUBLE_EQ(list.Lane(1)[1], 0.7);
}

TEST(GridTest, InfluenceListAddRemove) {
  Grid g(2, 4);
  g.AddInfluence(3, 7);
  g.AddInfluence(3, 8);
  g.AddInfluence(3, 7);  // idempotent
  EXPECT_TRUE(g.HasInfluence(3, 7));
  EXPECT_TRUE(g.HasInfluence(3, 8));
  EXPECT_EQ(g.InfluenceList(3).size(), 2u);
  EXPECT_EQ(g.TotalInfluenceEntries(), 2u);
  EXPECT_TRUE(g.RemoveInfluence(3, 7));
  EXPECT_FALSE(g.RemoveInfluence(3, 7));
  EXPECT_FALSE(g.HasInfluence(3, 7));
  EXPECT_EQ(g.TotalInfluenceEntries(), 1u);
}

TEST(GridTest, MemoryBreakdownHasExpectedComponents) {
  Grid g(2, 8);
  g.InsertPoint(0, 1, Point{0.05, 0.05});
  g.AddInfluence(0, 1);
  const MemoryBreakdown mb = g.Memory();
  EXPECT_GT(mb.Bytes("grid_directory"), 0u);
  EXPECT_GT(mb.Bytes("point_lists"), 0u);
  EXPECT_GT(mb.Bytes("influence_lists"), 0u);
}

TEST(GridTest, SingleCellGrid) {
  Grid g(2, 1);
  EXPECT_EQ(g.num_cells(), 1u);
  EXPECT_EQ(g.LocateCell(Point{0.0, 0.0}), 0u);
  EXPECT_EQ(g.LocateCell(Point{1.0, 1.0}), 0u);
  const Rect bounds = g.CellBounds(0);
  EXPECT_DOUBLE_EQ(bounds.Volume(), 1.0);
}

TEST(GridTest, HighDimensionalGrid) {
  Grid g(6, 5);
  EXPECT_EQ(g.num_cells(), 15625u);
  Point p{0.99, 0.0, 0.5, 0.2, 0.8, 0.41};
  const CellCoords coords = g.Decompose(g.LocateCell(p));
  EXPECT_EQ(coords[0], 4);
  EXPECT_EQ(coords[1], 0);
  EXPECT_EQ(coords[2], 2);
  EXPECT_EQ(coords[3], 1);
  EXPECT_EQ(coords[4], 4);
  EXPECT_EQ(coords[5], 2);
}

}  // namespace
}  // namespace topkmon
