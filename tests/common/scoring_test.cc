#include "common/scoring.h"

#include <gtest/gtest.h>

#include <tuple>

#include "util/rng.h"

namespace topkmon {
namespace {

TEST(LinearFunctionTest, ScoresWeightedSum) {
  LinearFunction f({1.0, 2.0});
  EXPECT_DOUBLE_EQ(f.Score(Point{0.5, 0.25}), 1.0);
  EXPECT_EQ(f.dim(), 2);
}

TEST(LinearFunctionTest, NegativeWeightIsDecreasing) {
  // Figure 7a: f = x1 - x2.
  LinearFunction f({1.0, -1.0});
  EXPECT_EQ(f.direction(0), Monotonicity::kIncreasing);
  EXPECT_EQ(f.direction(1), Monotonicity::kDecreasing);
  EXPECT_DOUBLE_EQ(f.Score(Point{1.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(f.Score(Point{0.0, 1.0}), -1.0);
}

TEST(LinearFunctionTest, BestCornerFollowsDirections) {
  LinearFunction f({1.0, -1.0});
  const Rect r = Rect::UnitSpace(2);
  const Point best = f.BestCorner(r);
  EXPECT_EQ(best, (Point{1.0, 0.0}));
  const Point worst = f.WorstCorner(r);
  EXPECT_EQ(worst, (Point{0.0, 1.0}));
}

TEST(ProductFunctionTest, ScoresShiftedProduct) {
  ProductFunction f({0.0, 1.0});
  EXPECT_DOUBLE_EQ(f.Score(Point{0.5, 0.5}), 0.75);
  EXPECT_EQ(f.direction(0), Monotonicity::kIncreasing);
}

TEST(SumOfSquaresFunctionTest, ScoresQuadratic) {
  SumOfSquaresFunction f({2.0, 1.0});
  EXPECT_DOUBLE_EQ(f.Score(Point{0.5, 1.0}), 1.5);
}

TEST(ScoringFunctionTest, CloneIsDeepAndEquivalent) {
  LinearFunction f({0.3, 0.7, 0.1});
  auto clone = f.Clone();
  const Point p{0.1, 0.9, 0.5};
  EXPECT_DOUBLE_EQ(clone->Score(p), f.Score(p));
  EXPECT_EQ(clone->dim(), 3);
}

TEST(ScoringFunctionTest, ToStringMentionsEveryTerm) {
  EXPECT_EQ(LinearFunction({0.5, 0.25}).ToString(),
            "0.500*x1 + 0.250*x2");
  EXPECT_EQ(ProductFunction({0.5}).ToString(), "(0.500+x1)");
  EXPECT_EQ(SumOfSquaresFunction({0.5}).ToString(), "0.500*x1^2");
}

TEST(ParseFunctionFamilyTest, KnownNames) {
  EXPECT_TRUE(ParseFunctionFamily("linear").ok());
  EXPECT_TRUE(ParseFunctionFamily("product").ok());
  EXPECT_TRUE(ParseFunctionFamily("squares").ok());
  EXPECT_TRUE(ParseFunctionFamily("sum_of_squares").ok());
  EXPECT_FALSE(ParseFunctionFamily("cubic").ok());
}

TEST(MakeRandomFunctionTest, ProducesRequestedFamilyAndDim) {
  Rng rng(7);
  auto uniform = [&rng]() { return rng.Uniform(); };
  auto lin = MakeRandomFunction(FunctionFamily::kLinear, 3, uniform);
  auto prod = MakeRandomFunction(FunctionFamily::kProduct, 4, uniform);
  auto sq = MakeRandomFunction(FunctionFamily::kSumOfSquares, 2, uniform);
  EXPECT_NE(dynamic_cast<LinearFunction*>(lin.get()), nullptr);
  EXPECT_NE(dynamic_cast<ProductFunction*>(prod.get()), nullptr);
  EXPECT_NE(dynamic_cast<SumOfSquaresFunction*>(sq.get()), nullptr);
  EXPECT_EQ(lin->dim(), 3);
  EXPECT_EQ(prod->dim(), 4);
  EXPECT_EQ(sq->dim(), 2);
}

// Property sweep: for every family and dimensionality, MaxScore of a random
// sub-rectangle upper-bounds (and MinScore lower-bounds) the score of every
// point sampled inside it — the geometric foundation of Section 3.1.
class MaxScoreBoundProperty
    : public ::testing::TestWithParam<std::tuple<FunctionFamily, int>> {};

TEST_P(MaxScoreBoundProperty, BoundsHoldForRandomRectsAndPoints) {
  const auto [family, dim] = GetParam();
  Rng rng(1234 + dim);
  auto uniform = [&rng]() { return rng.Uniform(); };
  for (int trial = 0; trial < 50; ++trial) {
    auto f = MakeRandomFunction(family, dim, uniform);
    // Random sub-rectangle.
    Point lo(dim);
    Point hi(dim);
    for (int i = 0; i < dim; ++i) {
      const double a = rng.Uniform();
      const double b = rng.Uniform();
      lo[i] = std::min(a, b);
      hi[i] = std::max(a, b);
    }
    const Rect r(lo, hi);
    const double max_score = f->MaxScore(r);
    const double min_score = f->MinScore(r);
    EXPECT_LE(min_score, max_score);
    for (int s = 0; s < 20; ++s) {
      Point p(dim);
      for (int i = 0; i < dim; ++i) p[i] = rng.Uniform(lo[i], hi[i]);
      const double score = f->Score(p);
      EXPECT_LE(score, max_score + 1e-12);
      EXPECT_GE(score, min_score - 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAndDims, MaxScoreBoundProperty,
    ::testing::Combine(::testing::Values(FunctionFamily::kLinear,
                                         FunctionFamily::kProduct,
                                         FunctionFamily::kSumOfSquares),
                       ::testing::Values(1, 2, 3, 4, 6)));

// Monotonicity property: perturbing a single coordinate in the direction
// reported by direction(i) never decreases the score.
class MonotonicityProperty
    : public ::testing::TestWithParam<std::tuple<FunctionFamily, int>> {};

TEST_P(MonotonicityProperty, DirectionsMatchBehavior) {
  const auto [family, dim] = GetParam();
  Rng rng(99 + dim);
  auto uniform = [&rng]() { return rng.Uniform(); };
  for (int trial = 0; trial < 50; ++trial) {
    auto f = MakeRandomFunction(family, dim, uniform);
    Point p(dim);
    for (int i = 0; i < dim; ++i) p[i] = rng.Uniform(0.1, 0.9);
    const double base = f->Score(p);
    for (int i = 0; i < dim; ++i) {
      Point up = p;
      up[i] = std::min(1.0, p[i] + 0.05);
      const double moved = f->Score(up);
      if (f->direction(i) == Monotonicity::kIncreasing) {
        EXPECT_GE(moved, base - 1e-12);
      } else {
        EXPECT_LE(moved, base + 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAndDims, MonotonicityProperty,
    ::testing::Combine(::testing::Values(FunctionFamily::kLinear,
                                         FunctionFamily::kProduct,
                                         FunctionFamily::kSumOfSquares),
                       ::testing::Values(1, 2, 4, 6)));

// Mixed-monotonicity linear functions (random sign flips) must also keep
// the MaxScore bound — this exercises BestCorner's per-axis choices.
TEST(MixedMonotonicityTest, MaxScoreBoundWithNegativeWeights) {
  Rng rng(555);
  for (int trial = 0; trial < 100; ++trial) {
    const int dim = 2 + static_cast<int>(rng.UniformInt(4));
    std::vector<double> w(dim);
    for (double& x : w) x = rng.Uniform(-1.0, 1.0);
    LinearFunction f(w);
    Point lo(dim);
    Point hi(dim);
    for (int i = 0; i < dim; ++i) {
      const double a = rng.Uniform();
      const double b = rng.Uniform();
      lo[i] = std::min(a, b);
      hi[i] = std::max(a, b);
    }
    const Rect r(lo, hi);
    const double bound = f.MaxScore(r);
    for (int s = 0; s < 20; ++s) {
      Point p(dim);
      for (int i = 0; i < dim; ++i) p[i] = rng.Uniform(lo[i], hi[i]);
      EXPECT_LE(f.Score(p), bound + 1e-12);
    }
  }
}

}  // namespace
}  // namespace topkmon
