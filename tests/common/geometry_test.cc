#include "common/geometry.h"

#include <gtest/gtest.h>

#include <cmath>

namespace topkmon {
namespace {

TEST(PointTest, DefaultIsZeroDimensional) {
  Point p;
  EXPECT_EQ(p.dim(), 0);
}

TEST(PointTest, DimConstructorZeroInitializes) {
  Point p(3);
  EXPECT_EQ(p.dim(), 3);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(p[i], 0.0);
}

TEST(PointTest, InitializerListSetsCoords) {
  Point p{0.25, 0.5, 0.75};
  EXPECT_EQ(p.dim(), 3);
  EXPECT_EQ(p[0], 0.25);
  EXPECT_EQ(p[1], 0.5);
  EXPECT_EQ(p[2], 0.75);
}

TEST(PointTest, MutationThroughIndex) {
  Point p(2);
  p[1] = 0.9;
  EXPECT_EQ(p[1], 0.9);
}

TEST(PointTest, InUnitSpaceAcceptsBoundaries) {
  EXPECT_TRUE((Point{0.0, 1.0}).InUnitSpace());
  EXPECT_TRUE((Point{0.5, 0.5}).InUnitSpace());
}

TEST(PointTest, InUnitSpaceRejectsOutside) {
  EXPECT_FALSE((Point{-0.01, 0.5}).InUnitSpace());
  EXPECT_FALSE((Point{0.5, 1.01}).InUnitSpace());
}

TEST(PointTest, InUnitSpaceRejectsNonFinite) {
  EXPECT_FALSE((Point{std::nan(""), 0.5}).InUnitSpace());
  EXPECT_FALSE((Point{0.5, std::numeric_limits<double>::infinity()})
                   .InUnitSpace());
}

TEST(PointTest, EqualityRequiresSameDimAndCoords) {
  EXPECT_EQ((Point{0.1, 0.2}), (Point{0.1, 0.2}));
  EXPECT_FALSE((Point{0.1, 0.2}) == (Point{0.1}));
  EXPECT_FALSE((Point{0.1, 0.2}) == (Point{0.1, 0.3}));
}

TEST(PointTest, ToStringFormats) {
  EXPECT_EQ((Point{0.5, 1.0}).ToString(), "(0.5000, 1.0000)");
}

TEST(RectTest, UnitSpaceSpansZeroToOne) {
  Rect r = Rect::UnitSpace(3);
  EXPECT_EQ(r.dim(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(r.lo()[i], 0.0);
    EXPECT_EQ(r.hi()[i], 1.0);
  }
  EXPECT_DOUBLE_EQ(r.Volume(), 1.0);
}

TEST(RectTest, ContainsIsInclusive) {
  Rect r(Point{0.2, 0.2}, Point{0.8, 0.8});
  EXPECT_TRUE(r.Contains(Point{0.2, 0.8}));
  EXPECT_TRUE(r.Contains(Point{0.5, 0.5}));
  EXPECT_FALSE(r.Contains(Point{0.19, 0.5}));
  EXPECT_FALSE(r.Contains(Point{0.5, 0.81}));
}

TEST(RectTest, IntersectsDetectsOverlapAndTouch) {
  Rect a(Point{0.0, 0.0}, Point{0.5, 0.5});
  Rect b(Point{0.4, 0.4}, Point{1.0, 1.0});
  Rect c(Point{0.5, 0.5}, Point{1.0, 1.0});  // touches a at one corner
  Rect d(Point{0.6, 0.6}, Point{1.0, 1.0});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_TRUE(a.Intersects(c));
  EXPECT_FALSE(a.Intersects(d));
}

TEST(RectTest, VolumeIsProductOfExtents) {
  Rect r(Point{0.0, 0.25}, Point{0.5, 0.75});
  EXPECT_DOUBLE_EQ(r.Volume(), 0.25);
}

TEST(RectTest, DegenerateRectHasZeroVolumeButContainsItsPoints) {
  Rect r(Point{0.5, 0.5}, Point{0.5, 0.9});
  EXPECT_DOUBLE_EQ(r.Volume(), 0.0);
  EXPECT_TRUE(r.Contains(Point{0.5, 0.7}));
}

TEST(ValidatePointTest, AcceptsValid) {
  EXPECT_TRUE(ValidatePoint(Point{0.3, 0.4}, 2).ok());
}

TEST(ValidatePointTest, RejectsWrongDim) {
  const Status s = ValidatePoint(Point{0.3}, 2);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ValidatePointTest, RejectsOutOfRange) {
  const Status s = ValidatePoint(Point{0.3, 1.5}, 2);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace topkmon
