#include "common/status.h"

#include <gtest/gtest.h>

namespace topkmon {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
  EXPECT_FALSE(Status::InvalidArgument("bad").ok());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::NotFound("record 7").ToString(), "NOT_FOUND: record 7");
  EXPECT_EQ(Status(StatusCode::kInternal, "").ToString(), "INTERNAL");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::InvalidArgument("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "gone");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

namespace {
Status FailsThrough() {
  TOPKMON_RETURN_IF_ERROR(Status::OutOfRange("inner"));
  return Status::Ok();
}
Status Passes() {
  TOPKMON_RETURN_IF_ERROR(Status::Ok());
  return Status::InvalidArgument("reached end");
}
}  // namespace

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Passes().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace topkmon
