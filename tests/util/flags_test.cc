#include "util/flags.h"

#include <gtest/gtest.h>

namespace topkmon {
namespace {

Flags MustParse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  const Result<Flags> flags =
      Flags::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(flags.ok());
  return *flags;
}

TEST(FlagsTest, EqualsSyntax) {
  const Flags f = MustParse({"--engine=sma", "--k=20"});
  EXPECT_EQ(*f.GetString("engine", ""), "sma");
  EXPECT_EQ(*f.GetInt("k", 0), 20);
}

TEST(FlagsTest, SpaceSyntax) {
  const Flags f = MustParse({"--engine", "tma", "--k", "5"});
  EXPECT_EQ(*f.GetString("engine", ""), "tma");
  EXPECT_EQ(*f.GetInt("k", 0), 5);
}

TEST(FlagsTest, BareFlagIsTrueBool) {
  const Flags f = MustParse({"--csv", "--compare=false"});
  EXPECT_TRUE(*f.GetBool("csv", false));
  EXPECT_FALSE(*f.GetBool("compare", true));
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  const Flags f = MustParse({});
  EXPECT_EQ(*f.GetString("engine", "sma"), "sma");
  EXPECT_EQ(*f.GetInt("k", 7), 7);
  EXPECT_DOUBLE_EQ(*f.GetDouble("rate", 0.5), 0.5);
  EXPECT_TRUE(*f.GetBool("flag", true));
}

TEST(FlagsTest, DoubleParsing) {
  const Flags f = MustParse({"--rate=0.25"});
  EXPECT_DOUBLE_EQ(*f.GetDouble("rate", 0), 0.25);
}

TEST(FlagsTest, BadIntegerIsError) {
  const Flags f = MustParse({"--k=banana"});
  EXPECT_FALSE(f.GetInt("k", 0).ok());
}

TEST(FlagsTest, BadBoolIsError) {
  const Flags f = MustParse({"--csv=maybe"});
  EXPECT_FALSE(f.GetBool("csv", false).ok());
}

TEST(FlagsTest, NonFlagTokenIsError) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_FALSE(Flags::Parse(2, argv).ok());
}

TEST(FlagsTest, UnreadFlagsDetected) {
  const Flags f = MustParse({"--engine=sma", "--typo=1"});
  (void)*f.GetString("engine", "");
  const std::vector<std::string> unread = f.UnreadFlags();
  ASSERT_EQ(unread.size(), 1u);
  EXPECT_EQ(unread[0], "typo");
}

TEST(FlagsTest, HasChecksPresence) {
  const Flags f = MustParse({"--x=1"});
  EXPECT_TRUE(f.Has("x"));
  EXPECT_FALSE(f.Has("y"));
}

}  // namespace
}  // namespace topkmon
