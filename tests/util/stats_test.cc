#include "util/stats.h"

#include <gtest/gtest.h>

namespace topkmon {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatTest, SingleSample) {
  RunningStat s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, ResetClears) {
  RunningStat s;
  s.Add(1.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(RunningStatTest, ToStringMentionsMean) {
  RunningStat s;
  s.Add(2.0);
  EXPECT_NE(s.ToString().find("mean=2"), std::string::npos);
}

TEST(StopwatchTest, MeasuresNonNegativeMonotoneTime) {
  Stopwatch w;
  const double t1 = w.ElapsedSeconds();
  const double t2 = w.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  w.Restart();
  EXPECT_GE(w.ElapsedSeconds(), 0.0);
}

TEST(EngineStatsTest, AccumulateAndSubtract) {
  EngineStats a;
  a.cycles = 10;
  a.arrivals = 100;
  a.recomputations = 3;
  a.maintenance_seconds = 1.5;
  EngineStats b;
  b.cycles = 4;
  b.arrivals = 40;
  b.recomputations = 1;
  b.maintenance_seconds = 0.5;
  EngineStats sum = a;
  sum += b;
  EXPECT_EQ(sum.cycles, 14u);
  EXPECT_EQ(sum.arrivals, 140u);
  const EngineStats diff = Subtract(sum, b);
  EXPECT_EQ(diff.cycles, a.cycles);
  EXPECT_EQ(diff.arrivals, a.arrivals);
  EXPECT_EQ(diff.recomputations, a.recomputations);
  EXPECT_DOUBLE_EQ(diff.maintenance_seconds, a.maintenance_seconds);
}

TEST(EngineStatsTest, RecomputationRate) {
  EngineStats s;
  s.cycles = 100;
  s.recomputations = 20;
  EXPECT_DOUBLE_EQ(s.RecomputationRate(1), 0.2);
  EXPECT_DOUBLE_EQ(s.RecomputationRate(10), 0.02);
  EngineStats empty;
  EXPECT_EQ(empty.RecomputationRate(10), 0.0);
}

TEST(EngineStatsTest, ToStringContainsCounters) {
  EngineStats s;
  s.cycles = 7;
  const std::string str = s.ToString();
  EXPECT_NE(str.find("cycles=7"), std::string::npos);
}

}  // namespace
}  // namespace topkmon
