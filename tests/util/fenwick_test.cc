#include "util/fenwick.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace topkmon {
namespace {

TEST(FenwickTest, StartsEmpty) {
  FenwickTree t(10);
  EXPECT_EQ(t.universe(), 10u);
  EXPECT_EQ(t.total(), 0);
  EXPECT_EQ(t.PrefixSum(9), 0);
}

TEST(FenwickTest, SingleAdd) {
  FenwickTree t(8);
  t.Add(3, 5);
  EXPECT_EQ(t.PrefixSum(2), 0);
  EXPECT_EQ(t.PrefixSum(3), 5);
  EXPECT_EQ(t.PrefixSum(7), 5);
  EXPECT_EQ(t.total(), 5);
}

TEST(FenwickTest, RangeSum) {
  FenwickTree t(16);
  for (std::size_t i = 0; i < 16; ++i) t.Add(i, 1);
  EXPECT_EQ(t.RangeSum(0, 15), 16);
  EXPECT_EQ(t.RangeSum(4, 7), 4);
  EXPECT_EQ(t.RangeSum(15, 15), 1);
}

TEST(FenwickTest, CountGreater) {
  FenwickTree t(8);
  t.Add(1, 2);
  t.Add(5, 3);
  EXPECT_EQ(t.CountGreater(0), 5);
  EXPECT_EQ(t.CountGreater(1), 3);
  EXPECT_EQ(t.CountGreater(5), 0);
}

TEST(FenwickTest, NegativeDeltasRemoveCounts) {
  FenwickTree t(4);
  t.Add(2, 3);
  t.Add(2, -2);
  EXPECT_EQ(t.PrefixSum(3), 1);
  EXPECT_EQ(t.total(), 1);
}

TEST(FenwickTest, ClearResets) {
  FenwickTree t(8);
  t.Add(0, 1);
  t.Add(7, 1);
  t.Clear();
  EXPECT_EQ(t.total(), 0);
  EXPECT_EQ(t.PrefixSum(7), 0);
}

TEST(FenwickTest, MatchesVectorOracleUnderRandomOps) {
  const std::size_t n = 64;
  FenwickTree t(n);
  std::vector<std::int64_t> oracle(n, 0);
  Rng rng(9);
  for (int op = 0; op < 5000; ++op) {
    const std::size_t idx = rng.UniformInt(n);
    if (rng.UniformInt(2) == 0) {
      const std::int64_t delta = static_cast<std::int64_t>(rng.UniformInt(5));
      t.Add(idx, delta);
      oracle[idx] += delta;
    } else {
      std::int64_t want = 0;
      for (std::size_t i = 0; i <= idx; ++i) want += oracle[i];
      EXPECT_EQ(t.PrefixSum(idx), want);
    }
  }
}

}  // namespace
}  // namespace topkmon
