#include "util/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace topkmon {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // Every line has the same length (fixed-width columns).
  std::istringstream is(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << "line: '" << line << "'";
  }
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TablePrinterTest, NumFormatsSignificantDigits) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 3), "3.14");
  EXPECT_EQ(TablePrinter::Num(12345.678, 4), "1.235e+04");
  EXPECT_EQ(TablePrinter::Int(-7), "-7");
}

TEST(TablePrinterTest, SeparatorLineMatchesHeader) {
  TablePrinter t({"xx"});
  t.AddRow({"y"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("--"), std::string::npos);
}

}  // namespace
}  // namespace topkmon
