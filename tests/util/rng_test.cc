#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace topkmon {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextUint64() == b.NextUint64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIsInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformIntCoversDomainWithoutOverflow) {
  Rng rng(13);
  bool seen[7] = {};
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.UniformInt(7);
    ASSERT_LT(v, 7u);
    seen[v] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RngTest, UniformIntOne) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng fork = a.Fork();
  // The fork and the parent should not emit identical sequences.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextUint64() == fork.NextUint64();
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace topkmon
