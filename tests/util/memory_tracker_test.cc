#include "util/memory_tracker.h"

#include <gtest/gtest.h>

#include <vector>

namespace topkmon {
namespace {

TEST(MemoryBreakdownTest, EmptyTotalsZero) {
  MemoryBreakdown mb;
  EXPECT_EQ(mb.TotalBytes(), 0u);
  EXPECT_EQ(mb.TotalMiB(), 0.0);
}

TEST(MemoryBreakdownTest, AddAccumulatesPerComponent) {
  MemoryBreakdown mb;
  mb.Add("grid", 100);
  mb.Add("grid", 50);
  mb.Add("lists", 25);
  EXPECT_EQ(mb.Bytes("grid"), 150u);
  EXPECT_EQ(mb.Bytes("lists"), 25u);
  EXPECT_EQ(mb.Bytes("absent"), 0u);
  EXPECT_EQ(mb.TotalBytes(), 175u);
}

TEST(MemoryBreakdownTest, MergeCombines) {
  MemoryBreakdown a;
  a.Add("x", 10);
  MemoryBreakdown b;
  b.Add("x", 5);
  b.Add("y", 7);
  a.Merge(b);
  EXPECT_EQ(a.Bytes("x"), 15u);
  EXPECT_EQ(a.Bytes("y"), 7u);
}

TEST(MemoryBreakdownTest, ToStringListsComponentsAndTotal) {
  MemoryBreakdown mb;
  mb.Add("grid", 2 * 1024 * 1024);
  const std::string s = mb.ToString();
  EXPECT_NE(s.find("grid=2.00MiB"), std::string::npos);
  EXPECT_NE(s.find("total=2.00MiB"), std::string::npos);
}

TEST(VectorBytesTest, CountsCapacity) {
  std::vector<std::uint64_t> v;
  v.reserve(16);
  EXPECT_EQ(VectorBytes(v), 16 * sizeof(std::uint64_t));
}

}  // namespace
}  // namespace topkmon
