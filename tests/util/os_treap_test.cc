#include "util/os_treap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.h"

namespace topkmon {
namespace {

TEST(OsTreapTest, EmptyTreap) {
  OsTreap<int> t;
  EXPECT_TRUE(t.Empty());
  EXPECT_EQ(t.Size(), 0u);
  EXPECT_EQ(t.CountGreater(0), 0u);
  EXPECT_EQ(t.CountLess(0), 0u);
  EXPECT_FALSE(t.Contains(0));
  EXPECT_FALSE(t.Erase(0));
}

TEST(OsTreapTest, InsertAndCount) {
  OsTreap<int> t;
  for (int v : {5, 1, 9, 3, 7}) t.Insert(v);
  EXPECT_EQ(t.Size(), 5u);
  EXPECT_EQ(t.CountGreater(5), 2u);  // 7, 9
  EXPECT_EQ(t.CountLess(5), 2u);     // 1, 3
  EXPECT_EQ(t.CountGreater(0), 5u);
  EXPECT_EQ(t.CountGreater(9), 0u);
  EXPECT_TRUE(t.Contains(3));
  EXPECT_FALSE(t.Contains(4));
}

TEST(OsTreapTest, DuplicatesCountSeparately) {
  OsTreap<int> t;
  t.Insert(4);
  t.Insert(4);
  t.Insert(4);
  t.Insert(2);
  EXPECT_EQ(t.Size(), 4u);
  EXPECT_EQ(t.CountGreater(2), 3u);
  EXPECT_EQ(t.CountLess(4), 1u);
  EXPECT_TRUE(t.Erase(4));
  EXPECT_EQ(t.Size(), 3u);
  EXPECT_EQ(t.CountGreater(2), 2u);
}

TEST(OsTreapTest, SelectReturnsSortedOrder) {
  OsTreap<int> t;
  for (int v : {50, 10, 40, 20, 30}) t.Insert(v);
  EXPECT_EQ(t.Select(0), 10);
  EXPECT_EQ(t.Select(2), 30);
  EXPECT_EQ(t.Select(4), 50);
}

TEST(OsTreapTest, EraseMissingReturnsFalse) {
  OsTreap<int> t;
  t.Insert(1);
  EXPECT_FALSE(t.Erase(2));
  EXPECT_EQ(t.Size(), 1u);
}

TEST(OsTreapTest, ClearEmpties) {
  OsTreap<int> t;
  for (int i = 0; i < 100; ++i) t.Insert(i);
  t.Clear();
  EXPECT_TRUE(t.Empty());
}

TEST(OsTreapTest, ToSortedVectorIsSorted) {
  OsTreap<int> t;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) t.Insert(static_cast<int>(rng.UniformInt(50)));
  const std::vector<int> v = t.ToSortedVector();
  EXPECT_EQ(v.size(), 200u);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

// Randomized differential test against std::multiset.
TEST(OsTreapTest, MatchesMultisetOracleUnderRandomOps) {
  OsTreap<int> treap;
  std::multiset<int> oracle;
  Rng rng(42);
  for (int op = 0; op < 5000; ++op) {
    const int key = static_cast<int>(rng.UniformInt(100));
    const int action = static_cast<int>(rng.UniformInt(4));
    if (action < 2) {
      treap.Insert(key);
      oracle.insert(key);
    } else if (action == 2) {
      const bool erased = treap.Erase(key);
      auto it = oracle.find(key);
      EXPECT_EQ(erased, it != oracle.end());
      if (it != oracle.end()) oracle.erase(it);
    } else {
      const auto greater = static_cast<std::size_t>(std::distance(
          oracle.upper_bound(key), oracle.end()));
      const auto less = static_cast<std::size_t>(std::distance(
          oracle.begin(), oracle.lower_bound(key)));
      EXPECT_EQ(treap.CountGreater(key), greater);
      EXPECT_EQ(treap.CountLess(key), less);
    }
    ASSERT_EQ(treap.Size(), oracle.size());
  }
  // Final structural comparison.
  std::vector<int> want(oracle.begin(), oracle.end());
  EXPECT_EQ(treap.ToSortedVector(), want);
}

TEST(OsTreapTest, SelectMatchesOracleAfterRandomInserts) {
  OsTreap<int> treap;
  std::vector<int> oracle;
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    const int key = static_cast<int>(rng.UniformInt(1000));
    treap.Insert(key);
    oracle.push_back(key);
  }
  std::sort(oracle.begin(), oracle.end());
  for (std::size_t r = 0; r < oracle.size(); r += 7) {
    EXPECT_EQ(treap.Select(r), oracle[r]);
  }
}

TEST(OsTreapTest, WorksWithUint64Keys) {
  OsTreap<std::uint64_t> t;
  t.Insert(10);
  t.Insert(~std::uint64_t{0});
  EXPECT_EQ(t.CountGreater(10), 1u);
}

}  // namespace
}  // namespace topkmon
