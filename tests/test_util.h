// Shared helpers for the topkmon test suite.

#ifndef TOPKMON_TESTS_TEST_UTIL_H_
#define TOPKMON_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/scoring.h"
#include "core/engine.h"
#include "core/simulation.h"
#include "stream/generators.h"
#include "util/rng.h"

namespace topkmon {
namespace testing {

/// Extracts the (descending) score multiset of a result. Engines may break
/// exact-score ties differently, so correctness is compared on scores.
inline std::vector<double> Scores(const std::vector<ResultEntry>& result) {
  std::vector<double> out;
  out.reserve(result.size());
  for (const ResultEntry& e : result) out.push_back(e.score);
  return out;
}

/// gtest-friendly status assertions.
#define TOPKMON_ASSERT_OK(expr)                               \
  do {                                                        \
    const ::topkmon::Status _st = (expr);                     \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                  \
  } while (0)

#define TOPKMON_EXPECT_OK(expr)                               \
  do {                                                        \
    const ::topkmon::Status _st = (expr);                     \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                  \
  } while (0)

/// Makes a deterministic random query workload of `q` linear (by default)
/// queries for dimensionality `dim`.
inline std::vector<QuerySpec> MakeRandomQueries(
    int dim, std::size_t q, int k, std::uint64_t seed,
    FunctionFamily family = FunctionFamily::kLinear) {
  Rng rng(seed);
  std::vector<QuerySpec> out;
  for (std::size_t i = 0; i < q; ++i) {
    QuerySpec spec;
    spec.id = static_cast<QueryId>(i + 1);
    spec.k = k;
    spec.function =
        MakeRandomFunction(family, dim, [&rng]() { return rng.Uniform(); });
    out.push_back(std::move(spec));
  }
  return out;
}

/// Drives all engines through the same deterministic stream and checks
/// that every registered query's result score multiset matches the first
/// engine's after every cycle. `register_after` cycles run before query
/// registration (warm-up).
inline void RunLockstepAgreement(const std::vector<MonitorEngine*>& engines,
                                 const std::vector<QuerySpec>& queries,
                                 Distribution dist, int dim,
                                 std::size_t arrivals_per_cycle,
                                 int warmup_cycles, int measured_cycles,
                                 std::uint64_t seed) {
  ASSERT_FALSE(engines.empty());
  RecordSource source(MakeGenerator(dist, dim, seed));
  Timestamp now = 0;
  for (int c = 0; c < warmup_cycles; ++c) {
    ++now;
    const std::vector<Record> batch =
        source.NextBatch(arrivals_per_cycle, now);
    for (MonitorEngine* e : engines) {
      TOPKMON_ASSERT_OK(e->ProcessCycle(now, batch));
    }
  }
  for (const QuerySpec& q : queries) {
    for (MonitorEngine* e : engines) {
      TOPKMON_ASSERT_OK(e->RegisterQuery(q));
    }
  }
  for (int c = 0; c < measured_cycles; ++c) {
    ++now;
    const std::vector<Record> batch =
        source.NextBatch(arrivals_per_cycle, now);
    for (MonitorEngine* e : engines) {
      TOPKMON_ASSERT_OK(e->ProcessCycle(now, batch));
    }
    for (const QuerySpec& q : queries) {
      const auto reference = engines[0]->CurrentResult(q.id);
      ASSERT_TRUE(reference.ok());
      const std::vector<double> want = Scores(*reference);
      for (std::size_t i = 1; i < engines.size(); ++i) {
        const auto got = engines[i]->CurrentResult(q.id);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(want, Scores(*got))
            << "engine " << engines[i]->name() << " disagrees with "
            << engines[0]->name() << " on query " << q.id << " at cycle "
            << c << " (window=" << engines[0]->WindowSize() << ")";
      }
    }
  }
}

}  // namespace testing
}  // namespace topkmon

#endif  // TOPKMON_TESTS_TEST_UTIL_H_
