// The named-workload library (PR 7): registry coverage, option
// validation, sane emission bounds for every registered name, and the
// core contract — same name + options + seed produces a byte-identical
// step sequence.

#include "workload/workload.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/brute_force_engine.h"
#include "core/tma_engine.h"
#include "tests/test_util.h"

namespace topkmon {
namespace {

WorkloadOptions SmallOptions(std::uint64_t seed = 42) {
  WorkloadOptions opt;
  opt.dim = 2;
  opt.seed = seed;
  opt.k = 4;
  opt.mean_batch = 24;
  opt.num_queries = 5;
  return opt;
}

std::vector<WorkloadStep> Drain(Workload& w, int steps) {
  std::vector<WorkloadStep> out;
  out.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) out.push_back(w.NextStep());
  return out;
}

/// Bitwise step equality: record ids, coordinates and timestamps, plus
/// the query-event schedule (specs compared by rendered function and by
/// exact scores on deterministic probe points).
void ExpectStepsIdentical(const std::vector<WorkloadStep>& a,
                          const std::vector<WorkloadStep>& b, int dim) {
  ASSERT_EQ(a.size(), b.size());
  const std::vector<Point> probes = {Point{0.125, 0.875}, Point{0.5, 0.5},
                                     Point{0.9375, 0.0625}};
  for (std::size_t s = 0; s < a.size(); ++s) {
    SCOPED_TRACE("step " + std::to_string(s));
    EXPECT_EQ(a[s].cycle, b[s].cycle);
    EXPECT_EQ(a[s].now, b[s].now);
    ASSERT_EQ(a[s].arrivals.size(), b[s].arrivals.size());
    for (std::size_t i = 0; i < a[s].arrivals.size(); ++i) {
      const Record& ra = a[s].arrivals[i];
      const Record& rb = b[s].arrivals[i];
      ASSERT_EQ(ra.id, rb.id);
      ASSERT_EQ(ra.arrival, rb.arrival);
      for (int d = 0; d < dim; ++d) {
        ASSERT_EQ(ra.position[d], rb.position[d]) << "record " << ra.id;
      }
    }
    ASSERT_EQ(a[s].query_events.size(), b[s].query_events.size());
    for (std::size_t i = 0; i < a[s].query_events.size(); ++i) {
      const QueryEvent& ea = a[s].query_events[i];
      const QueryEvent& eb = b[s].query_events[i];
      ASSERT_EQ(ea.kind, eb.kind);
      ASSERT_EQ(ea.id, eb.id);
      if (ea.kind != QueryEvent::kRegister) continue;
      ASSERT_EQ(ea.spec.k, eb.spec.k);
      ASSERT_EQ(ea.spec.constraint.has_value(),
                eb.spec.constraint.has_value());
      ASSERT_EQ(ea.spec.function->ToString(), eb.spec.function->ToString());
      for (const Point& p : probes) {
        ASSERT_EQ(ea.spec.function->Score(p), eb.spec.function->Score(p));
      }
    }
  }
}

TEST(WorkloadTest, RegistryListsAtLeastEightDistinctNames) {
  const auto& infos = ListWorkloads();
  EXPECT_GE(infos.size(), 8u);
  std::set<std::string> names;
  for (const WorkloadInfo& info : infos) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.description.empty()) << info.name;
    names.insert(info.name);
  }
  EXPECT_EQ(names.size(), infos.size()) << "duplicate registry names";
  for (const char* expected :
       {"uniform", "zipfian-keys", "zipfian-queries", "bursty", "diurnal",
        "query-churn", "multi-tenant", "adversarial-slack"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(WorkloadTest, EveryNameConstructsAndEmitsSaneBounds) {
  const WorkloadOptions opt = SmallOptions();
  for (const WorkloadInfo& info : ListWorkloads()) {
    SCOPED_TRACE(info.name);
    auto workload = MakeWorkload(info.name, opt);
    ASSERT_TRUE(workload.ok()) << workload.status().ToString();
    EXPECT_EQ((*workload)->name(), info.name);
    EXPECT_EQ((*workload)->dim(), opt.dim);
    for (const WorkloadParam& p : (*workload)->Params()) {
      EXPECT_FALSE(p.name.empty());
      EXPECT_FALSE(p.description.empty()) << p.name;
    }
    RecordId last_id = 0;
    Timestamp last_ts = 0;
    std::set<QueryId> live;
    std::size_t total_arrivals = 0;
    const int kSteps = 40;
    for (int s = 0; s < kSteps; ++s) {
      const WorkloadStep step = (*workload)->NextStep();
      EXPECT_EQ(step.cycle, static_cast<std::uint64_t>(s));
      for (const QueryEvent& ev : step.query_events) {
        if (ev.kind == QueryEvent::kRegister) {
          EXPECT_FALSE(live.count(ev.id)) << "re-registered id " << ev.id;
          TOPKMON_EXPECT_OK(ev.spec.Validate(opt.dim));
          EXPECT_EQ(ev.spec.id, ev.id);
          live.insert(ev.id);
        } else {
          EXPECT_TRUE(live.count(ev.id)) << "unregistered unknown " << ev.id;
          live.erase(ev.id);
        }
      }
      for (const Record& r : step.arrivals) {
        EXPECT_GT(r.id, last_id) << "record ids not strictly increasing";
        last_id = r.id;
        EXPECT_GE(r.arrival, last_ts) << "timestamps regressed";
        EXPECT_LE(r.arrival, step.now) << "timestamp from the future";
        last_ts = r.arrival;
        ASSERT_EQ(r.position.dim(), opt.dim);
        for (int d = 0; d < opt.dim; ++d) {
          EXPECT_GE(r.position[d], 0.0);
          EXPECT_LE(r.position[d], 1.0);
        }
      }
      total_arrivals += step.arrivals.size();
    }
    // Every workload produces traffic around the configured mean: at
    // least a trickle, at most the burst ceiling.
    EXPECT_GE(total_arrivals, static_cast<std::size_t>(kSteps));
    EXPECT_LE(total_arrivals, opt.mean_batch * kSteps * 16);
    EXPECT_FALSE(live.empty()) << "workload ended with no live queries";
  }
}

TEST(WorkloadTest, SameNameAndSeedIsByteIdentical) {
  const WorkloadOptions opt = SmallOptions(1234);
  for (const WorkloadInfo& info : ListWorkloads()) {
    SCOPED_TRACE(info.name);
    auto a = MakeWorkload(info.name, opt);
    auto b = MakeWorkload(info.name, opt);
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectStepsIdentical(Drain(**a, 30), Drain(**b, 30), opt.dim);
  }
}

TEST(WorkloadTest, DifferentSeedsDiverge) {
  auto a = MakeWorkload("uniform", SmallOptions(1));
  auto b = MakeWorkload("uniform", SmallOptions(2));
  ASSERT_TRUE(a.ok() && b.ok());
  const WorkloadStep sa = (*a)->NextStep();
  const WorkloadStep sb = (*b)->NextStep();
  ASSERT_FALSE(sa.arrivals.empty());
  ASSERT_EQ(sa.arrivals.size(), sb.arrivals.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < sa.arrivals.size() && !any_difference; ++i) {
    for (int d = 0; d < 2; ++d) {
      if (sa.arrivals[i].position[d] != sb.arrivals[i].position[d]) {
        any_difference = true;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(WorkloadTest, InvalidSelectionsAreRejectedWithGuidance) {
  const WorkloadOptions opt = SmallOptions();
  const auto unknown = MakeWorkload("no-such-workload", opt);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  // The error names the registered workloads.
  EXPECT_NE(unknown.status().ToString().find("uniform"), std::string::npos);

  WorkloadOptions bad_dim = opt;
  bad_dim.dim = 0;
  EXPECT_FALSE(MakeWorkload("uniform", bad_dim).ok());
  WorkloadOptions bad_k = opt;
  bad_k.k = 0;
  EXPECT_FALSE(MakeWorkload("uniform", bad_k).ok());

  WorkloadOptions typo = opt;
  typo.params["burst-factr"] = 2.0;
  const auto rejected = MakeWorkload("bursty", typo);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().ToString().find("burst-factor"),
            std::string::npos)
      << "error should list the declared parameters";
}

TEST(WorkloadTest, DeclaredParamOverridesApply) {
  WorkloadOptions opt = SmallOptions();
  opt.params["burst-factor"] = 3.5;
  auto workload = MakeWorkload("bursty", opt);
  ASSERT_TRUE(workload.ok());
  bool found = false;
  for (const WorkloadParam& p : (*workload)->Params()) {
    if (p.name == "burst-factor") {
      found = true;
      EXPECT_EQ(p.value, 3.5);
    }
  }
  EXPECT_TRUE(found);
}

TEST(WorkloadTest, StepsDriveEnginesInLockstep) {
  // The emitted streams must satisfy the engine Append contract even
  // for the adversarial workloads, and the engines must agree on them.
  for (const char* name : {"zipfian-queries", "adversarial-slack"}) {
    SCOPED_TRACE(name);
    auto workload = MakeWorkload(name, SmallOptions(7));
    ASSERT_TRUE(workload.ok());
    const WindowSpec window = WindowSpec::Count(150);
    BruteForceEngine brute(2, window);
    GridEngineOptions grid;
    grid.dim = 2;
    grid.window = window;
    grid.cell_budget = 144;
    TmaEngine tma(grid);
    std::set<QueryId> live;
    for (int s = 0; s < 25; ++s) {
      const WorkloadStep step = (*workload)->NextStep();
      for (const QueryEvent& ev : step.query_events) {
        if (ev.kind == QueryEvent::kRegister) {
          TOPKMON_ASSERT_OK(brute.RegisterQuery(ev.spec));
          TOPKMON_ASSERT_OK(tma.RegisterQuery(ev.spec));
          live.insert(ev.id);
        } else {
          TOPKMON_ASSERT_OK(brute.UnregisterQuery(ev.id));
          TOPKMON_ASSERT_OK(tma.UnregisterQuery(ev.id));
          live.erase(ev.id);
        }
      }
      TOPKMON_ASSERT_OK(brute.ProcessCycle(step.now, step.arrivals));
      TOPKMON_ASSERT_OK(tma.ProcessCycle(step.now, step.arrivals));
      for (const QueryId id : live) {
        const auto want = brute.CurrentResult(id);
        const auto got = tma.CurrentResult(id);
        ASSERT_TRUE(want.ok() && got.ok());
        EXPECT_EQ(testing::Scores(*got), testing::Scores(*want))
            << "query " << id << " step " << s;
      }
    }
  }
}

}  // namespace
}  // namespace topkmon
