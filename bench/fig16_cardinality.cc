// Figure 16: CPU time versus data cardinality N (r = N/100), IND and ANT.
//
// The paper scales N from 1M to 5M with the arrival rate pinned at 1% of
// the window per timestamp. All methods degrade with N; TMA and SMA scale
// much better than TSL (more than an order of magnitude faster in most
// settings).

#include <iostream>

#include "bench/common/harness.h"

namespace topkmon {
namespace bench {
namespace {

int Main() {
  const Scale scale = GetScale();
  WorkloadSpec base = BaselineSpec(scale);
  PrintPreamble("Figure 16: CPU time vs number of active tuples (r = N/100)",
                "Figure 16(a)+(b) of Mouratidis et al., SIGMOD 2006", base);

  BenchResultWriter json("fig16_cardinality");
  json.Config("dim", static_cast<double>(base.dim));
  json.Config("queries", static_cast<double>(base.num_queries));
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAntiCorrelated}) {
    std::printf("--- %s ---\n", DistributionName(dist));
    TablePrinter table(
        {"N", "r", "TSL [s]", "TMA [s]", "SMA [s]", "TSL/SMA"});
    for (int mult = 1; mult <= 5; ++mult) {
      WorkloadSpec spec = base;
      spec.distribution = dist;
      spec.window_size = base.window_size * static_cast<std::size_t>(mult);
      spec.arrivals_per_cycle = spec.window_size / 100;
      const SimulationReport tsl = RunEngine(EngineKind::kTsl, spec);
      const SimulationReport tma = RunEngine(EngineKind::kTma, spec);
      const SimulationReport sma = RunEngine(EngineKind::kSma, spec);
      table.AddRow(
          {TablePrinter::Int(static_cast<std::int64_t>(spec.window_size)),
           TablePrinter::Int(
               static_cast<std::int64_t>(spec.arrivals_per_cycle)),
           TablePrinter::Num(tsl.monitor_seconds, 4),
           TablePrinter::Num(tma.monitor_seconds, 4),
           TablePrinter::Num(sma.monitor_seconds, 4),
           TablePrinter::Num(tsl.monitor_seconds / sma.monitor_seconds,
                             3)});
      BenchResultWriter::Row& row =
          json.AddRow(std::string(DistributionName(dist)) + "/N" +
                      std::to_string(spec.window_size));
      row.tags["dist"] = DistributionName(dist);
      row.metrics["window"] = static_cast<double>(spec.window_size);
      row.metrics["arrivals_per_cycle"] =
          static_cast<double>(spec.arrivals_per_cycle);
      row.metrics["tsl_seconds"] = tsl.monitor_seconds;
      row.metrics["tma_seconds"] = tma.monitor_seconds;
      row.metrics["sma_seconds"] = sma.monitor_seconds;
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  json.Write();
  PrintExpectation(
      "every method degrades with N; TMA and SMA stay more than an order "
      "of magnitude below TSL in most settings; ANT costs more than IND.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
