// Cluster tier scaling: what the scatter-gather router costs and buys.
//
// Three configurations ingest the same record stream over loopback TCP:
//   single-leader  one MonitorService behind one TcpServer, a plain
//                  MonitorClient batching tuples (the bench_net_throughput
//                  measurement, repeated here as the baseline);
//   cluster-1p     a 1-partition LocalCluster behind a ClusterRouter —
//                  identical data path plus the router's hash-routing,
//                  id namespacing and pacing logic (pure overhead);
//   cluster-3p     a 3-partition LocalCluster, the router fanning each
//                  batch to its owning leaders.
// The table reports end-to-end records/s and the p50/p99 of the per-batch
// ingest RPC (client-observed round trip including pacing retries). On a
// box with spare cores the 3-partition row shows the fan-out win; on a
// starved 1-CPU box the honest result is "routing costs little" — the
// committed target is cluster-1p >= 0.8x single-leader.
//
// Flags via env: TOPKMON_SCALE=smoke|default|paper, standard across the
// bench suite; TOPKMON_BENCH_JSON_DIR for the machine-readable output.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common/harness.h"
#include "cluster/local_cluster.h"
#include "cluster/router.h"
#include "core/tma_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "service/monitor_service.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace topkmon {
namespace bench {
namespace {

constexpr int kDim = 2;
constexpr std::size_t kQueries = 4;
constexpr int kK = 10;
constexpr std::size_t kWireBatch = 512;

struct RunResult {
  double wall_seconds = 0.0;
  double throughput = 0.0;  ///< records / second end to end
  double p50_ms = 0.0;      ///< per-batch ingest RPC round trip
  double p99_ms = 0.0;
};

ServiceOptions MakeServiceOptions() {
  ServiceOptions options;
  options.ingest.slack = 8;
  options.ingest.max_batch = 4096;
  options.hub.buffer_capacity = 1 << 16;
  options.drain_wait = std::chrono::milliseconds(2);
  return options;
}

std::function<std::unique_ptr<MonitorEngine>()> EngineFactory(
    std::size_t window) {
  return [window] {
    GridEngineOptions opt;
    opt.dim = kDim;
    opt.window = WindowSpec::Count(window);
    return std::unique_ptr<MonitorEngine>(new TmaEngine(opt));
  };
}

std::vector<QuerySpec> BenchQueries() {
  std::vector<QuerySpec> specs;
  std::uint64_t seed = 1;
  for (std::size_t q = 0; q < kQueries; ++q) {
    QuerySpec spec;
    spec.k = kK;
    Rng rng(seed++);
    spec.function = MakeRandomFunction(FunctionFamily::kLinear, kDim,
                                       [&rng] { return rng.Uniform(); });
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Baseline: one leader, one plain wire client, hint-paced batches.
RunResult RunSingleLeader(std::size_t records, std::size_t window) {
  auto service = std::make_unique<MonitorService>(EngineFactory(window)(),
                                                  MakeServiceOptions());
  NetServerOptions server_opt;
  server_opt.poll_tick = std::chrono::milliseconds(1);
  TcpServer server(*service, server_opt);
  if (!server.Start().ok()) std::abort();

  auto client = MonitorClient::Connect("127.0.0.1", server.port(),
                                       "bench-single", /*resume=*/false);
  if (!client.ok()) std::abort();
  for (const QuerySpec& spec : BenchQueries()) {
    if (!(*client)->Register(spec).ok()) std::abort();
  }

  auto gen = MakeGenerator(Distribution::kIndependent, kDim, 2000);
  std::vector<double> rpc_seconds;
  Stopwatch watch;
  Timestamp clock = 1;
  std::size_t sent = 0;
  while (sent < records) {
    const std::size_t n = std::min(kWireBatch, records - sent);
    std::vector<Record> batch;
    batch.reserve(n);
    const Timestamp ts = clock++;
    for (std::size_t i = 0; i < n; ++i) {
      batch.emplace_back(0, gen->NextPoint(), ts);
    }
    const double start = watch.ElapsedSeconds();
    std::size_t off = 0;
    while (off < batch.size()) {
      std::vector<Record> part(batch.begin() + static_cast<long>(off),
                               batch.end());
      const auto ack = (*client)->Ingest(std::move(part));
      if (!ack.ok()) std::abort();
      off += ack->accepted;
      if (ack->rejected == 0) break;
      if (ack->first_error.code() != StatusCode::kResourceExhausted) {
        std::abort();
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(100 + 4u * ack->queue_hint));
    }
    rpc_seconds.push_back(watch.ElapsedSeconds() - start);
    sent += n;
  }
  if (!service->Flush().ok()) std::abort();
  const double wall = watch.ElapsedSeconds();
  (void)(*client)->Close(/*close_session=*/false);
  server.Stop();
  service->Shutdown();

  RunResult out;
  out.wall_seconds = wall;
  out.throughput = static_cast<double>(records) / wall;
  out.p50_ms = Percentile(rpc_seconds, 0.50) * 1e3;
  out.p99_ms = Percentile(rpc_seconds, 0.99) * 1e3;
  return out;
}

/// Cluster path: an N-partition LocalCluster behind a ClusterRouter.
RunResult RunCluster(std::size_t partitions, std::size_t records,
                     std::size_t window) {
  LocalClusterOptions options;
  options.partitions = partitions;
  options.engine_factory = EngineFactory(window);
  options.service = MakeServiceOptions();
  options.net.poll_tick = std::chrono::milliseconds(1);
  auto cluster = LocalCluster::Start(options);
  if (!cluster.ok()) std::abort();

  auto router = ClusterRouter::Connect((*cluster)->map(), "bench-cluster",
                                       /*resume=*/false);
  if (!router.ok()) std::abort();
  for (const QuerySpec& spec : BenchQueries()) {
    if (!(*router)->Register(spec).ok()) std::abort();
  }

  auto gen = MakeGenerator(Distribution::kIndependent, kDim, 2000);
  std::vector<double> rpc_seconds;
  Stopwatch watch;
  Timestamp clock = 1;
  std::size_t sent = 0;
  RecordId next_id = 0;
  while (sent < records) {
    const std::size_t n = std::min(kWireBatch, records - sent);
    std::vector<Record> batch;
    batch.reserve(n);
    const Timestamp ts = clock++;
    for (std::size_t i = 0; i < n; ++i) {
      batch.emplace_back(next_id++, gen->NextPoint(), ts);
    }
    const double start = watch.ElapsedSeconds();
    const auto report = (*router)->Ingest(batch);
    if (!report.ok() || report->rejected != 0) std::abort();
    rpc_seconds.push_back(watch.ElapsedSeconds() - start);
    sent += n;
  }
  if (!(*cluster)->FlushAll().ok()) std::abort();
  const double wall = watch.ElapsedSeconds();
  (void)(*router)->Close();
  (*cluster)->Stop();

  RunResult out;
  out.wall_seconds = wall;
  out.throughput = static_cast<double>(records) / wall;
  out.p50_ms = Percentile(rpc_seconds, 0.50) * 1e3;
  out.p99_ms = Percentile(rpc_seconds, 0.99) * 1e3;
  return out;
}

int Main() {
  const Scale scale = GetScale();
  std::size_t records = 40000;
  std::size_t window = 10000;
  if (scale == Scale::kSmoke) {
    records = 4000;
    window = 1000;
  } else if (scale == Scale::kPaper) {
    records = 200000;
    window = 50000;
  }

  std::printf(
      "Cluster tier: scatter-gather routing overhead and partition "
      "fan-out\nrecords=%zu  window=N=%zu (per leader)  queries=%zu  "
      "k=%d  wire batch=%zu  scale=%s\n\n",
      records, window, kQueries, kK, kWireBatch, ScaleName(scale));

  BenchResultWriter json("cluster_scaling");
  json.Config("records", static_cast<double>(records));
  json.Config("window", static_cast<double>(window));
  json.Config("queries", static_cast<double>(kQueries));
  json.Config("k", static_cast<double>(kK));
  json.Config("wire_batch", static_cast<double>(kWireBatch));

  TablePrinter table({"configuration", "partitions", "ingest [rec/s]",
                      "wall [s]", "p50 rpc [ms]", "p99 rpc [ms]",
                      "vs single"});
  auto record_row = [&](const std::string& label, std::size_t partitions,
                        const RunResult& r, double baseline) {
    BenchResultWriter::Row& row = json.AddRow(label);
    row.metrics["partitions"] = static_cast<double>(partitions);
    row.metrics["ingest_rec_per_s"] = r.throughput;
    row.metrics["wall_s"] = r.wall_seconds;
    row.metrics["p50_rpc_ms"] = r.p50_ms;
    row.metrics["p99_rpc_ms"] = r.p99_ms;
    row.metrics["vs_single_leader"] =
        baseline > 0.0 ? r.throughput / baseline : 0.0;
    table.AddRow({label, TablePrinter::Int(static_cast<int>(partitions)),
                  TablePrinter::Num(r.throughput, 5),
                  TablePrinter::Num(r.wall_seconds, 4),
                  TablePrinter::Num(r.p50_ms, 4),
                  TablePrinter::Num(r.p99_ms, 4),
                  TablePrinter::Num(
                      baseline > 0.0 ? r.throughput / baseline : 0.0, 3)});
  };

  const RunResult single = RunSingleLeader(records, window);
  record_row("single-leader", 1, single, single.throughput);
  const RunResult one = RunCluster(1, records, window);
  record_row("cluster-1p", 1, one, single.throughput);
  const RunResult three = RunCluster(3, records, window);
  record_row("cluster-3p", 3, three, single.throughput);

  table.Print(std::cout);
  json.Write();
  std::printf(
      "\nrouting overhead (cluster-1p / single-leader): %.2f (target: >= "
      "0.80)\n",
      single.throughput > 0.0 ? one.throughput / single.throughput : 0.0);
  PrintExpectation(
      "the 1-partition cluster tracks the single leader closely (the "
      "router adds one hash and one id-namespace pass per batch); with "
      "spare cores the 3-partition row scales ingest by splitting each "
      "batch across leaders, while on a single-CPU box all three rows "
      "converge — the tier's win there is capacity (3x window, 3x "
      "queries), not CPU");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
