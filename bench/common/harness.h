// Shared scaffolding for the paper-figure benchmark binaries.
//
// Every binary under bench/ regenerates one table or figure of the paper
// (Section 8). Because the original testbed is a 2006-era Pentium and the
// paper-scale workloads (N up to 5M tuples, Q up to 5K queries) take many
// minutes per sweep point for the TSL baseline, the benches run a
// proportionally scaled-down workload by default and accept the
// TOPKMON_SCALE environment variable:
//   TOPKMON_SCALE=smoke    tiny workload (seconds; CI smoke run)
//   TOPKMON_SCALE=default  1/10 of the paper's parameters (the default)
//   TOPKMON_SCALE=paper    the paper's Table 1 parameters
// The reproduction target is the *shape* of each figure (who wins, by what
// factor, where trends bend), not absolute 2006 CPU seconds.

#ifndef TOPKMON_BENCH_COMMON_HARNESS_H_
#define TOPKMON_BENCH_COMMON_HARNESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/simulation.h"
#include "util/table_printer.h"
#include "workload/workload.h"

namespace topkmon {
namespace bench {

/// Workload scale selected via TOPKMON_SCALE.
enum class Scale { kSmoke, kDefault, kPaper };

/// Reads TOPKMON_SCALE (defaults to kDefault; unknown values warn and
/// fall back).
Scale GetScale();

const char* ScaleName(Scale scale);

/// The Table 1 defaults at the selected scale: d=4, N, r, Q, k=20,
/// linear functions, count-based window, 100 (scaled) timestamps.
WorkloadSpec BaselineSpec(Scale scale);

/// Engines under comparison.
enum class EngineKind { kTma, kSma, kTsl, kBrute };

const char* EngineName(EngineKind kind);

/// Instantiates an engine for the given workload. `cell_budget` applies to
/// the grid-based engines (default: the tuned ~12^4 cells of Figure 14);
/// `kmax_override` applies to TSL (0 = the paper's fine-tuned kmax).
std::unique_ptr<MonitorEngine> MakeEngine(EngineKind kind,
                                          const WorkloadSpec& spec,
                                          std::size_t cell_budget = 20736,
                                          int kmax_override = 0);

/// Runs `kind` through `spec` and returns the report (aborts with a
/// diagnostic on Status errors — benches have no recovery path).
SimulationReport RunEngine(EngineKind kind, const WorkloadSpec& spec,
                           std::size_t cell_budget = 20736,
                           int kmax_override = 0);

/// Prints the standard bench preamble: what paper artifact this
/// reproduces, the scale, and the workload parameters.
void PrintPreamble(const std::string& title, const std::string& paper_ref,
                   const WorkloadSpec& base);

/// Prints a closing note (expected qualitative shape from the paper).
void PrintExpectation(const std::string& note);

/// The p-quantile (0 <= p <= 1) of `samples` by nth_element; reorders
/// the vector. 0.0 on empty input. One definition shared by the
/// latency benches so their percentiles stay comparable.
double Percentile(std::vector<double>& samples, double p);

/// A named-workload selection parsed from argv. Benches that can drive
/// their engines from src/workload/ call ParseWorkloadFlags and, when
/// `requested`, replay the named generator instead of (or alongside)
/// the Table 1 stream.
struct WorkloadSelection {
  bool requested = false;  ///< a --workload=<name> flag was present
  std::string name;
  WorkloadOptions options;  ///< seed/k/mean_batch defaults + overrides
};

/// Parses `--workload=<name>`, `--workload-seed=<n>` and repeated
/// `--workload-param=<key>=<value>` flags. `--workload=list` prints the
/// registry with each workload's parameter listing and exits(0);
/// malformed flags print a diagnostic and exit(2). Unrelated flags are
/// ignored so benches can layer their own parsing on top.
WorkloadSelection ParseWorkloadFlags(int argc, char** argv);

/// Prints every registered workload name, description and parameters.
void PrintWorkloadRegistry();

/// Counters from replaying a named workload through an engine.
struct NamedWorkloadRun {
  double seconds = 0.0;      ///< wall time inside ProcessCycle + events
  std::size_t cycles = 0;
  std::size_t records = 0;
  std::size_t registers = 0;
  std::size_t unregisters = 0;
};

/// Drives `engine` through `cycles` steps of the named workload,
/// applying its query register/unregister schedule in-stream. Aborts
/// with a diagnostic on Status errors, like RunEngine.
NamedWorkloadRun RunNamedWorkload(MonitorEngine& engine,
                                  const std::string& name,
                                  const WorkloadOptions& options,
                                  std::size_t cycles);

/// Machine-readable bench output alongside the human tables.
///
/// Collects a flat config plus labelled rows of numeric metrics and
/// writes `BENCH_<name>.json` into $TOPKMON_BENCH_JSON_DIR (or the
/// working directory when unset). CI runs the benches at smoke scale and
/// validates every emitted file with tools/check_bench_json.py, so a
/// bench that silently produces garbage numbers fails the build instead
/// of polluting bench/results/. Non-finite metrics are serialized as
/// JSON `null` — faithfully recorded, rejected by the validator.
class BenchResultWriter {
 public:
  /// `name` keys the output file; it must be a [A-Za-z0-9_]+ slug.
  explicit BenchResultWriter(std::string name);

  /// Records one workload-level parameter (window size, k, ...).
  void Config(const std::string& key, const std::string& value);
  void Config(const std::string& key, double value);

  /// One measured configuration: a label plus its metrics. Tags carry
  /// non-numeric dimensions (engine name, transport, ...).
  struct Row {
    std::string label;
    std::map<std::string, double> metrics;
    std::map<std::string, std::string> tags;
  };
  Row& AddRow(const std::string& label);

  /// Serializes and writes the file; returns false (with a stderr
  /// diagnostic) when the file cannot be written. Safe to call once at
  /// the end of main — benches do not treat a failed write as fatal.
  bool Write() const;

  /// The output path Write() will use.
  std::string path() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_;  // pre-encoded
  std::vector<Row> rows_;
};

}  // namespace bench
}  // namespace topkmon

#endif  // TOPKMON_BENCH_COMMON_HARNESS_H_
