#include "bench/common/harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/brute_force_engine.h"
#include "core/sma_engine.h"
#include "core/tma_engine.h"
#include "tsl/tsl_engine.h"

namespace topkmon {
namespace bench {

Scale GetScale() {
  const char* env = std::getenv("TOPKMON_SCALE");
  if (env == nullptr || std::strcmp(env, "default") == 0) {
    return Scale::kDefault;
  }
  if (std::strcmp(env, "smoke") == 0) return Scale::kSmoke;
  if (std::strcmp(env, "paper") == 0) return Scale::kPaper;
  std::fprintf(stderr,
               "warning: unknown TOPKMON_SCALE '%s', using 'default'\n",
               env);
  return Scale::kDefault;
}

const char* ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return "smoke";
    case Scale::kDefault:
      return "default";
    case Scale::kPaper:
      return "paper";
  }
  return "?";
}

WorkloadSpec BaselineSpec(Scale scale) {
  WorkloadSpec spec;
  spec.dim = 4;
  spec.distribution = Distribution::kIndependent;
  spec.window_kind = WindowKind::kCountBased;
  spec.family = FunctionFamily::kLinear;
  spec.k = 20;
  spec.seed = 20060627;  // SIGMOD 2006, day one
  switch (scale) {
    case Scale::kSmoke:
      spec.window_size = 20000;
      spec.arrivals_per_cycle = 200;
      spec.num_queries = 20;
      spec.num_cycles = 10;
      break;
    case Scale::kDefault:
      spec.window_size = 100000;
      spec.arrivals_per_cycle = 1000;
      spec.num_queries = 100;
      spec.num_cycles = 50;
      break;
    case Scale::kPaper:
      spec.window_size = 1000000;
      spec.arrivals_per_cycle = 10000;
      spec.num_queries = 1000;
      spec.num_cycles = 100;
      break;
  }
  return spec;
}

const char* EngineName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kTma:
      return "TMA";
    case EngineKind::kSma:
      return "SMA";
    case EngineKind::kTsl:
      return "TSL";
    case EngineKind::kBrute:
      return "BRUTE";
  }
  return "?";
}

std::unique_ptr<MonitorEngine> MakeEngine(EngineKind kind,
                                          const WorkloadSpec& spec,
                                          std::size_t cell_budget,
                                          int kmax_override) {
  switch (kind) {
    case EngineKind::kTma: {
      GridEngineOptions opt;
      opt.dim = spec.dim;
      opt.window = spec.MakeWindowSpec();
      opt.cell_budget = cell_budget;
      return std::make_unique<TmaEngine>(opt);
    }
    case EngineKind::kSma: {
      GridEngineOptions opt;
      opt.dim = spec.dim;
      opt.window = spec.MakeWindowSpec();
      opt.cell_budget = cell_budget;
      return std::make_unique<SmaEngine>(opt);
    }
    case EngineKind::kTsl: {
      TslOptions opt;
      opt.dim = spec.dim;
      opt.window = spec.MakeWindowSpec();
      opt.kmax_override = kmax_override;
      return std::make_unique<TslEngine>(opt);
    }
    case EngineKind::kBrute:
      return std::make_unique<BruteForceEngine>(spec.dim,
                                                spec.MakeWindowSpec());
  }
  return nullptr;
}

SimulationReport RunEngine(EngineKind kind, const WorkloadSpec& spec,
                           std::size_t cell_budget, int kmax_override) {
  std::unique_ptr<MonitorEngine> engine =
      MakeEngine(kind, spec, cell_budget, kmax_override);
  Result<SimulationReport> report = RunWorkload(*engine, spec);
  if (!report.ok()) {
    std::fprintf(stderr, "bench workload failed for %s: %s\n",
                 EngineName(kind), report.status().ToString().c_str());
    std::abort();
  }
  return *std::move(report);
}

void PrintPreamble(const std::string& title, const std::string& paper_ref,
                   const WorkloadSpec& base) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf(
      "scale=%s  d=%d N=%zu r=%zu Q=%zu k=%d cycles=%d window=%s\n\n",
      ScaleName(GetScale()), base.dim, base.window_size,
      base.arrivals_per_cycle, base.num_queries, base.k, base.num_cycles,
      base.window_kind == WindowKind::kCountBased ? "count" : "time");
}

void PrintExpectation(const std::string& note) {
  std::printf("\npaper shape: %s\n\n", note.c_str());
}

double Percentile(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  const std::size_t idx = std::min(
      samples.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(samples.size())));
  std::nth_element(samples.begin(), samples.begin() + idx, samples.end());
  return samples[idx];
}

}  // namespace bench
}  // namespace topkmon
