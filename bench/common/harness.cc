#include "bench/common/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "core/brute_force_engine.h"
#include "core/sma_engine.h"
#include "core/tma_engine.h"
#include "tsl/tsl_engine.h"
#include "util/stats.h"

namespace topkmon {
namespace bench {

Scale GetScale() {
  const char* env = std::getenv("TOPKMON_SCALE");
  if (env == nullptr || std::strcmp(env, "default") == 0) {
    return Scale::kDefault;
  }
  if (std::strcmp(env, "smoke") == 0) return Scale::kSmoke;
  if (std::strcmp(env, "paper") == 0) return Scale::kPaper;
  std::fprintf(stderr,
               "warning: unknown TOPKMON_SCALE '%s', using 'default'\n",
               env);
  return Scale::kDefault;
}

const char* ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return "smoke";
    case Scale::kDefault:
      return "default";
    case Scale::kPaper:
      return "paper";
  }
  return "?";
}

WorkloadSpec BaselineSpec(Scale scale) {
  WorkloadSpec spec;
  spec.dim = 4;
  spec.distribution = Distribution::kIndependent;
  spec.window_kind = WindowKind::kCountBased;
  spec.family = FunctionFamily::kLinear;
  spec.k = 20;
  spec.seed = 20060627;  // SIGMOD 2006, day one
  switch (scale) {
    case Scale::kSmoke:
      spec.window_size = 20000;
      spec.arrivals_per_cycle = 200;
      spec.num_queries = 20;
      spec.num_cycles = 10;
      break;
    case Scale::kDefault:
      spec.window_size = 100000;
      spec.arrivals_per_cycle = 1000;
      spec.num_queries = 100;
      spec.num_cycles = 50;
      break;
    case Scale::kPaper:
      spec.window_size = 1000000;
      spec.arrivals_per_cycle = 10000;
      spec.num_queries = 1000;
      spec.num_cycles = 100;
      break;
  }
  return spec;
}

const char* EngineName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kTma:
      return "TMA";
    case EngineKind::kSma:
      return "SMA";
    case EngineKind::kTsl:
      return "TSL";
    case EngineKind::kBrute:
      return "BRUTE";
  }
  return "?";
}

std::unique_ptr<MonitorEngine> MakeEngine(EngineKind kind,
                                          const WorkloadSpec& spec,
                                          std::size_t cell_budget,
                                          int kmax_override) {
  switch (kind) {
    case EngineKind::kTma: {
      GridEngineOptions opt;
      opt.dim = spec.dim;
      opt.window = spec.MakeWindowSpec();
      opt.cell_budget = cell_budget;
      return std::make_unique<TmaEngine>(opt);
    }
    case EngineKind::kSma: {
      GridEngineOptions opt;
      opt.dim = spec.dim;
      opt.window = spec.MakeWindowSpec();
      opt.cell_budget = cell_budget;
      return std::make_unique<SmaEngine>(opt);
    }
    case EngineKind::kTsl: {
      TslOptions opt;
      opt.dim = spec.dim;
      opt.window = spec.MakeWindowSpec();
      opt.kmax_override = kmax_override;
      return std::make_unique<TslEngine>(opt);
    }
    case EngineKind::kBrute:
      return std::make_unique<BruteForceEngine>(spec.dim,
                                                spec.MakeWindowSpec());
  }
  return nullptr;
}

SimulationReport RunEngine(EngineKind kind, const WorkloadSpec& spec,
                           std::size_t cell_budget, int kmax_override) {
  std::unique_ptr<MonitorEngine> engine =
      MakeEngine(kind, spec, cell_budget, kmax_override);
  Result<SimulationReport> report = RunWorkload(*engine, spec);
  if (!report.ok()) {
    std::fprintf(stderr, "bench workload failed for %s: %s\n",
                 EngineName(kind), report.status().ToString().c_str());
    std::abort();
  }
  return *std::move(report);
}

void PrintPreamble(const std::string& title, const std::string& paper_ref,
                   const WorkloadSpec& base) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf(
      "scale=%s  d=%d N=%zu r=%zu Q=%zu k=%d cycles=%d window=%s\n\n",
      ScaleName(GetScale()), base.dim, base.window_size,
      base.arrivals_per_cycle, base.num_queries, base.k, base.num_cycles,
      base.window_kind == WindowKind::kCountBased ? "count" : "time");
}

void PrintExpectation(const std::string& note) {
  std::printf("\npaper shape: %s\n\n", note.c_str());
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

BenchResultWriter::BenchResultWriter(std::string name)
    : name_(std::move(name)) {
  for (const char c : name_) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) {
      std::fprintf(stderr, "bench json: invalid name '%s'\n", name_.c_str());
      std::abort();
    }
  }
}

void BenchResultWriter::Config(const std::string& key,
                               const std::string& value) {
  config_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

void BenchResultWriter::Config(const std::string& key, double value) {
  config_.emplace_back(key, JsonNumber(value));
}

BenchResultWriter::Row& BenchResultWriter::AddRow(const std::string& label) {
  rows_.push_back(Row{label, {}, {}});
  return rows_.back();
}

std::string BenchResultWriter::path() const {
  const char* dir = std::getenv("TOPKMON_BENCH_JSON_DIR");
  std::string out = (dir != nullptr && dir[0] != '\0') ? dir : ".";
  if (out.back() != '/') out += '/';
  return out + "BENCH_" + name_ + ".json";
}

bool BenchResultWriter::Write() const {
  std::string json = "{\n  \"name\": \"" + JsonEscape(name_) + "\",\n";
  json += "  \"scale\": \"" + std::string(ScaleName(GetScale())) + "\",\n";
  json += "  \"config\": {";
  for (std::size_t i = 0; i < config_.size(); ++i) {
    if (i > 0) json += ",";
    json += "\n    \"" + JsonEscape(config_[i].first) +
            "\": " + config_[i].second;
  }
  json += config_.empty() ? "},\n" : "\n  },\n";
  json += "  \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const Row& row = rows_[r];
    if (r > 0) json += ",";
    json += "\n    {\"label\": \"" + JsonEscape(row.label) + "\"";
    json += ", \"metrics\": {";
    bool first = true;
    for (const auto& [key, value] : row.metrics) {
      if (!first) json += ", ";
      first = false;
      json += "\"" + JsonEscape(key) + "\": " + JsonNumber(value);
    }
    json += "}";
    if (!row.tags.empty()) {
      json += ", \"tags\": {";
      first = true;
      for (const auto& [key, value] : row.tags) {
        if (!first) json += ", ";
        first = false;
        json += "\"" + JsonEscape(key) + "\": \"" + JsonEscape(value) + "\"";
      }
      json += "}";
    }
    json += "}";
  }
  json += rows_.empty() ? "]\n}\n" : "\n  ]\n}\n";

  const std::string file = path();
  std::FILE* f = std::fopen(file.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench json: cannot open %s for writing\n",
                 file.c_str());
    return false;
  }
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "bench json: short write to %s\n", file.c_str());
    return false;
  }
  std::printf("bench json: wrote %s\n", file.c_str());
  return true;
}

double Percentile(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  const std::size_t idx = std::min(
      samples.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(samples.size())));
  std::nth_element(samples.begin(), samples.begin() + idx, samples.end());
  return samples[idx];
}

void PrintWorkloadRegistry() {
  std::printf("registered workloads (--workload=<name>):\n");
  WorkloadOptions probe;
  for (const WorkloadInfo& info : ListWorkloads()) {
    std::printf("  %-18s %s\n", info.name.c_str(),
                info.description.c_str());
    const auto workload = MakeWorkload(info.name, probe);
    if (!workload.ok()) continue;
    for (const WorkloadParam& p : (*workload)->Params()) {
      std::printf("    --workload-param=%s=<v>  %s (default %g)\n",
                  p.name.c_str(), p.description.c_str(), p.value);
    }
  }
}

WorkloadSelection ParseWorkloadFlags(int argc, char** argv) {
  WorkloadSelection sel;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workload=", 0) == 0) {
      sel.name = arg.substr(std::strlen("--workload="));
      if (sel.name == "list" || sel.name == "help") {
        PrintWorkloadRegistry();
        std::exit(0);
      }
      sel.requested = true;
    } else if (arg.rfind("--workload-seed=", 0) == 0) {
      sel.options.seed =
          std::strtoull(arg.c_str() + std::strlen("--workload-seed="),
                        nullptr, 10);
    } else if (arg.rfind("--workload-param=", 0) == 0) {
      const std::string kv = arg.substr(std::strlen("--workload-param="));
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr,
                     "bad --workload-param '%s' (want key=value)\n",
                     kv.c_str());
        std::exit(2);
      }
      sel.options.params[kv.substr(0, eq)] =
          std::strtod(kv.c_str() + eq + 1, nullptr);
    }
  }
  if (sel.requested) {
    // Validate the selection eagerly so a typo fails before the bench
    // spends minutes on its baseline sweep.
    const auto workload = MakeWorkload(sel.name, sel.options);
    if (!workload.ok()) {
      std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
      std::exit(2);
    }
  }
  return sel;
}

NamedWorkloadRun RunNamedWorkload(MonitorEngine& engine,
                                  const std::string& name,
                                  const WorkloadOptions& options,
                                  std::size_t cycles) {
  auto workload = MakeWorkload(name, options);
  if (!workload.ok()) {
    std::fprintf(stderr, "bench workload '%s' failed: %s\n", name.c_str(),
                 workload.status().ToString().c_str());
    std::abort();
  }
  NamedWorkloadRun run;
  Stopwatch watch;
  for (std::size_t c = 0; c < cycles; ++c) {
    const WorkloadStep step = (*workload)->NextStep();
    for (const QueryEvent& ev : step.query_events) {
      Status st = ev.kind == QueryEvent::kRegister
                      ? engine.RegisterQuery(ev.spec)
                      : engine.UnregisterQuery(ev.id);
      if (!st.ok()) {
        std::fprintf(stderr, "bench workload '%s' query event failed: %s\n",
                     name.c_str(), st.ToString().c_str());
        std::abort();
      }
      ++(ev.kind == QueryEvent::kRegister ? run.registers
                                          : run.unregisters);
    }
    const Status st = engine.ProcessCycle(step.now, step.arrivals);
    if (!st.ok()) {
      std::fprintf(stderr, "bench workload '%s' cycle failed: %s\n",
                   name.c_str(), st.ToString().c_str());
      std::abort();
    }
    ++run.cycles;
    run.records += step.arrivals.size();
  }
  run.seconds = watch.ElapsedSeconds();
  return run;
}

}  // namespace bench
}  // namespace topkmon
