// Figure 17: CPU time versus arrival rate r (0.1% .. 10% of N per
// timestamp), IND and ANT.
//
// The cost of TMA and SMA grows with r (more events inside influence
// regions, higher probability of result expirations). TSL degrades even
// faster because every arrival updates d sorted lists and probes every
// query's view. SMA's advantage over TMA widens on ANT, where TMA's
// frequent recomputations are expensive.

#include <iostream>

#include "bench/common/harness.h"

namespace topkmon {
namespace bench {
namespace {

int Main() {
  const Scale scale = GetScale();
  WorkloadSpec base = BaselineSpec(scale);
  PrintPreamble("Figure 17: CPU time vs arrival rate",
                "Figure 17(a)+(b) of Mouratidis et al., SIGMOD 2006", base);

  // Paper rates: 1K, 5K, 10K, 50K, 100K of N=1M (0.1% .. 10%).
  const std::vector<double> rate_fractions = {0.001, 0.005, 0.01, 0.05, 0.1};
  BenchResultWriter json("fig17_arrival_rate");
  json.Config("dim", static_cast<double>(base.dim));
  json.Config("window", static_cast<double>(base.window_size));
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAntiCorrelated}) {
    std::printf("--- %s ---\n", DistributionName(dist));
    TablePrinter table(
        {"r", "r/N", "TSL [s]", "TMA [s]", "SMA [s]", "TMA/SMA"});
    for (double fraction : rate_fractions) {
      WorkloadSpec spec = base;
      spec.distribution = dist;
      spec.arrivals_per_cycle = std::max<std::size_t>(
          1, static_cast<std::size_t>(fraction *
                                      static_cast<double>(spec.window_size)));
      const SimulationReport tsl = RunEngine(EngineKind::kTsl, spec);
      const SimulationReport tma = RunEngine(EngineKind::kTma, spec);
      const SimulationReport sma = RunEngine(EngineKind::kSma, spec);
      table.AddRow(
          {TablePrinter::Int(
               static_cast<std::int64_t>(spec.arrivals_per_cycle)),
           TablePrinter::Num(fraction, 3),
           TablePrinter::Num(tsl.monitor_seconds, 4),
           TablePrinter::Num(tma.monitor_seconds, 4),
           TablePrinter::Num(sma.monitor_seconds, 4),
           TablePrinter::Num(tma.monitor_seconds / sma.monitor_seconds,
                             3)});
      BenchResultWriter::Row& row =
          json.AddRow(std::string(DistributionName(dist)) + "/r" +
                      std::to_string(spec.arrivals_per_cycle));
      row.tags["dist"] = DistributionName(dist);
      row.metrics["arrivals_per_cycle"] =
          static_cast<double>(spec.arrivals_per_cycle);
      row.metrics["rate_fraction"] = fraction;
      row.metrics["tsl_seconds"] = tsl.monitor_seconds;
      row.metrics["tma_seconds"] = tma.monitor_seconds;
      row.metrics["sma_seconds"] = sma.monitor_seconds;
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  json.Write();
  PrintExpectation(
      "cost increases with r for TMA and SMA (verifying the Section 6 "
      "analysis); both beat TSL at every rate; SMA's edge over TMA is "
      "larger on ANT.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
