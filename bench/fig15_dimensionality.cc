// Figure 15: CPU time versus data dimensionality d (2..6), IND and ANT.
//
// All algorithms degrade with d (more cells processed per computation for
// TMA/SMA; more sorted lists and TA rounds for TSL). TMA and SMA beat TSL
// by roughly an order of magnitude, SMA beats TMA, and ANT costs more
// than IND because the top-k computation must descend through many cells
// before finding records near the anti-diagonal.

#include <iostream>

#include "bench/common/harness.h"

namespace topkmon {
namespace bench {
namespace {

int Main() {
  const Scale scale = GetScale();
  WorkloadSpec base = BaselineSpec(scale);
  PrintPreamble("Figure 15: CPU time vs dimensionality",
                "Figure 15(a)+(b) of Mouratidis et al., SIGMOD 2006", base);

  BenchResultWriter json("fig15_dimensionality");
  json.Config("window", static_cast<double>(base.window_size));
  json.Config("queries", static_cast<double>(base.num_queries));
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAntiCorrelated}) {
    std::printf("--- %s ---\n", DistributionName(dist));
    TablePrinter table(
        {"d", "TSL [s]", "TMA [s]", "SMA [s]", "TSL/SMA", "TMA/SMA"});
    for (int d = 2; d <= 6; ++d) {
      WorkloadSpec spec = base;
      spec.dim = d;
      spec.distribution = dist;
      const SimulationReport tsl = RunEngine(EngineKind::kTsl, spec);
      const SimulationReport tma = RunEngine(EngineKind::kTma, spec);
      const SimulationReport sma = RunEngine(EngineKind::kSma, spec);
      table.AddRow(
          {TablePrinter::Int(d), TablePrinter::Num(tsl.monitor_seconds, 4),
           TablePrinter::Num(tma.monitor_seconds, 4),
           TablePrinter::Num(sma.monitor_seconds, 4),
           TablePrinter::Num(tsl.monitor_seconds / sma.monitor_seconds, 3),
           TablePrinter::Num(tma.monitor_seconds / sma.monitor_seconds,
                             3)});
      BenchResultWriter::Row& row = json.AddRow(
          std::string(DistributionName(dist)) + "/d" + std::to_string(d));
      row.tags["dist"] = DistributionName(dist);
      row.metrics["dim"] = static_cast<double>(d);
      row.metrics["tsl_seconds"] = tsl.monitor_seconds;
      row.metrics["tma_seconds"] = tma.monitor_seconds;
      row.metrics["sma_seconds"] = sma.monitor_seconds;
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  json.Write();
  PrintExpectation(
      "cost increases with d for every method; TSL >> TMA > SMA "
      "throughout (TMA/TSL gap of roughly an order of magnitude); ANT "
      "more expensive than IND.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
