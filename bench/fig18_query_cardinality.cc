// Figure 18: CPU time versus query cardinality Q (100 .. 5K), IND and ANT.
//
// Running time scales linearly with Q for all methods; the relative
// ordering (TSL >> TMA > SMA) is unchanged.

#include <iostream>

#include "bench/common/harness.h"

namespace topkmon {
namespace bench {
namespace {

int Main() {
  const Scale scale = GetScale();
  WorkloadSpec base = BaselineSpec(scale);
  PrintPreamble("Figure 18: CPU time vs number of queries",
                "Figure 18(a)+(b) of Mouratidis et al., SIGMOD 2006", base);

  // Paper Q values relative to the default 1K: 0.1x, 0.5x, 1x, 2x, 5x.
  const std::vector<double> q_multipliers = {0.1, 0.5, 1.0, 2.0, 5.0};
  BenchResultWriter json("fig18_query_cardinality");
  json.Config("dim", static_cast<double>(base.dim));
  json.Config("window", static_cast<double>(base.window_size));
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAntiCorrelated}) {
    std::printf("--- %s ---\n", DistributionName(dist));
    TablePrinter table({"Q", "TSL [s]", "TMA [s]", "SMA [s]", "TSL/SMA"});
    for (double mult : q_multipliers) {
      WorkloadSpec spec = base;
      spec.distribution = dist;
      spec.num_queries = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 mult * static_cast<double>(base.num_queries)));
      const SimulationReport tsl = RunEngine(EngineKind::kTsl, spec);
      const SimulationReport tma = RunEngine(EngineKind::kTma, spec);
      const SimulationReport sma = RunEngine(EngineKind::kSma, spec);
      table.AddRow(
          {TablePrinter::Int(static_cast<std::int64_t>(spec.num_queries)),
           TablePrinter::Num(tsl.monitor_seconds, 4),
           TablePrinter::Num(tma.monitor_seconds, 4),
           TablePrinter::Num(sma.monitor_seconds, 4),
           TablePrinter::Num(tsl.monitor_seconds / sma.monitor_seconds,
                             3)});
      BenchResultWriter::Row& row =
          json.AddRow(std::string(DistributionName(dist)) + "/Q" +
                      std::to_string(spec.num_queries));
      row.tags["dist"] = DistributionName(dist);
      row.metrics["queries"] = static_cast<double>(spec.num_queries);
      row.metrics["tsl_seconds"] = tsl.monitor_seconds;
      row.metrics["tma_seconds"] = tma.monitor_seconds;
      row.metrics["sma_seconds"] = sma.monitor_seconds;
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  json.Write();
  PrintExpectation(
      "near-linear growth in Q for every method; relative performance "
      "unchanged (TSL >> TMA > SMA).");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
