// Ablation: Pins-before-Pdel processing order (Section 4.3).
//
// TMA processes arrivals before expirations so that an arrival replacing
// an expiring result record pre-empts the from-scratch recomputation
// (Figure 8(a)'s discussion). This ablation runs TMA both ways and
// reports recomputation counts and running time.

#include <iostream>

#include "bench/common/harness.h"
#include "core/tma_engine.h"

namespace topkmon {
namespace bench {
namespace {

SimulationReport RunTma(const WorkloadSpec& spec, bool arrivals_first) {
  GridEngineOptions opt;
  opt.dim = spec.dim;
  opt.window = spec.MakeWindowSpec();
  opt.arrivals_before_expirations = arrivals_first;
  TmaEngine engine(opt);
  Result<SimulationReport> report = RunWorkload(engine, spec);
  if (!report.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 report.status().ToString().c_str());
    std::abort();
  }
  return *std::move(report);
}

int Main() {
  const Scale scale = GetScale();
  WorkloadSpec base = BaselineSpec(scale);
  PrintPreamble("Ablation: update processing order in TMA",
                "Section 4.3 of Mouratidis et al., SIGMOD 2006 (\"this is "
                "the reason for handling Pins before Pdel\")",
                base);

  TablePrinter table({"dist", "k", "order", "recomputes", "time [s]"});
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAntiCorrelated}) {
    for (int k : {10, 50}) {
      WorkloadSpec spec = base;
      spec.distribution = dist;
      spec.k = k;
      const SimulationReport pins_first = RunTma(spec, true);
      const SimulationReport pdel_first = RunTma(spec, false);
      table.AddRow({DistributionName(dist), TablePrinter::Int(k),
                    "Pins first",
                    TablePrinter::Int(static_cast<std::int64_t>(
                        pins_first.stats.recomputations)),
                    TablePrinter::Num(pins_first.monitor_seconds, 4)});
      table.AddRow({DistributionName(dist), TablePrinter::Int(k),
                    "Pdel first",
                    TablePrinter::Int(static_cast<std::int64_t>(
                        pdel_first.stats.recomputations)),
                    TablePrinter::Num(pdel_first.monitor_seconds, 4)});
    }
  }
  table.Print(std::cout);
  PrintExpectation(
      "processing expirations first triggers more from-scratch "
      "recomputations (an arrival can no longer pre-empt the expiry of "
      "the result record it evicts). The effect is modest at a 1% "
      "replacement rate — pre-emption requires the arrival to land in the "
      "same cycle as the expiry — but it is consistently non-negative, "
      "which is why Figure 9 fixes the Pins-before-Pdel order.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
