// Network front-end benchmark: wire ingest throughput and ingest->delta
// latency over real loopback TCP, against the in-process service numbers.
//
// bench_svc_throughput measures what a producer thread calling
// MonitorService::Ingest directly experiences; this bench puts the
// binary protocol, the poll-based server and the blocking client
// between the same producers and the same engine. Each client is one
// connection batching tuples through wire ingest plus one subscriber
// connection long-polling its session's deltas; the table reports
// records/s end to end and the p50/p99 of push-to-poll latency, with an
// in-process baseline row (the svc_throughput measurement, same
// parameters) for the apples-to-apples overhead of the wire.
//
// Flags via env: TOPKMON_SCALE=smoke|default|paper (records per client),
// standard across the bench suite.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common/harness.h"
#include "core/tma_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "service/monitor_service.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace topkmon {
namespace bench {
namespace {

constexpr int kDim = 2;
constexpr std::size_t kQueriesPerClient = 4;
constexpr int kK = 10;
constexpr std::size_t kWireBatch = 512;

struct RunResult {
  double wall_seconds = 0.0;
  double throughput = 0.0;  ///< records / second end to end
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t events = 0;
  std::uint64_t cycles = 0;
  std::uint64_t dropped = 0;
};

ServiceOptions MakeServiceOptions(std::size_t queries_per_client) {
  ServiceOptions options;
  options.ingest.slack = 8;
  options.ingest.max_batch = 4096;
  options.hub.buffer_capacity = 1 << 16;
  options.session.max_queries_per_session =
      static_cast<int>(queries_per_client);
  options.drain_wait = std::chrono::milliseconds(2);
  return options;
}

std::unique_ptr<MonitorService> MakeService(std::size_t window) {
  GridEngineOptions engine_opt;
  engine_opt.dim = kDim;
  engine_opt.window = WindowSpec::Count(window);
  return std::make_unique<MonitorService>(
      std::make_unique<TmaEngine>(engine_opt),
      MakeServiceOptions(kQueriesPerClient));
}

/// The in-process baseline: the exact measurement bench_svc_throughput
/// makes (producer threads calling Ingest directly), at one client.
RunResult RunInProcessBaseline(std::size_t records, std::size_t window) {
  auto service = MakeService(window);
  const auto session = service->OpenSession("baseline");
  if (!session.ok()) std::abort();
  std::uint64_t query_seed = 1;
  for (std::size_t q = 0; q < kQueriesPerClient; ++q) {
    QuerySpec spec;
    spec.k = kK;
    Rng rng(query_seed++);
    spec.function = MakeRandomFunction(FunctionFamily::kLinear, kDim,
                                       [&rng] { return rng.Uniform(); });
    if (!service->Register(*session, spec).ok()) std::abort();
  }
  std::vector<double> push_wall(records + 1, 0.0);
  Stopwatch watch;
  std::atomic<bool> done{false};
  std::vector<double> latencies;
  std::thread subscriber([&] {
    std::vector<DeltaEvent> events;
    while (true) {
      events.clear();
      const std::size_t n = service->WaitDeltas(
          *session, 4096, std::chrono::milliseconds(20), &events);
      const double now = watch.ElapsedSeconds();
      for (const DeltaEvent& e : events) {
        const Timestamp when = e.delta.when;
        if (when >= 1 && static_cast<std::size_t>(when) <= records) {
          latencies.push_back(now -
                              push_wall[static_cast<std::size_t>(when)]);
        }
      }
      if (n == 0 && done.load()) break;
    }
  });
  auto gen = MakeGenerator(Distribution::kIndependent, kDim, 1000);
  for (std::size_t i = 1; i <= records; ++i) {
    push_wall[i] = watch.ElapsedSeconds();
    if (!service->Ingest(gen->NextPoint(),
                         static_cast<Timestamp>(i)).ok()) {
      std::abort();
    }
  }
  if (!service->Flush().ok()) std::abort();
  const double wall = watch.ElapsedSeconds();
  service->Shutdown();
  done.store(true);
  subscriber.join();

  RunResult out;
  out.wall_seconds = wall;
  out.throughput = static_cast<double>(records) / wall;
  out.events = latencies.size();
  out.p50_ms = Percentile(latencies, 0.50) * 1e3;
  out.p99_ms = Percentile(latencies, 0.99) * 1e3;
  const ServiceStats stats = service->stats();
  out.cycles = stats.cycles;
  out.dropped = stats.deltas_dropped;
  return out;
}

RunResult RunWireClients(int clients, std::size_t records_per_client,
                         std::size_t window, std::size_t server_threads) {
  auto service = MakeService(window);
  NetServerOptions server_opt;
  server_opt.poll_tick = std::chrono::milliseconds(1);
  server_opt.server_threads = server_threads;
  TcpServer server(*service, server_opt);
  if (!server.Start().ok()) std::abort();
  const std::uint16_t port = server.port();

  // Register each client's queries over the wire before the stream.
  std::uint64_t query_seed = 1;
  for (int c = 0; c < clients; ++c) {
    auto sub = MonitorClient::Connect("127.0.0.1", port,
                                      "client-" + std::to_string(c),
                                      /*resume=*/false);
    if (!sub.ok()) std::abort();
    for (std::size_t q = 0; q < kQueriesPerClient; ++q) {
      QuerySpec spec;
      spec.k = kK;
      Rng rng(query_seed++);
      spec.function = MakeRandomFunction(FunctionFamily::kLinear, kDim,
                                         [&rng] { return rng.Uniform(); });
      if (!(*sub)->Register(spec).ok()) std::abort();
    }
    (void)(*sub)->Close(/*close_session=*/false);
  }

  const std::size_t total =
      static_cast<std::size_t>(clients) * records_per_client;
  std::vector<double> push_wall(total + 1, 0.0);
  std::atomic<Timestamp> clock{1};
  Stopwatch watch;

  // One subscriber thread per client session, resuming it by label over
  // its own connection and long-polling the delta stream.
  std::atomic<bool> done{false};
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::vector<std::thread> subscribers;
  for (int c = 0; c < clients; ++c) {
    subscribers.emplace_back([&, c] {
      auto client = MonitorClient::Connect("127.0.0.1", port,
                                           "client-" + std::to_string(c),
                                           /*resume=*/true);
      if (!client.ok() || !(*client)->resumed()) std::abort();
      while (true) {
        auto events =
            (*client)->PollDeltas(4096, std::chrono::milliseconds(20));
        if (!events.ok()) std::abort();
        const double now = watch.ElapsedSeconds();
        for (const DeltaEvent& e : *events) {
          const Timestamp when = e.delta.when;
          if (when >= 1 && static_cast<std::size_t>(when) <= total) {
            latencies[static_cast<std::size_t>(c)].push_back(
                now - push_wall[static_cast<std::size_t>(when)]);
          }
        }
        if (events->empty() && done.load()) break;
      }
      (void)(*client)->Close(/*close_session=*/false);
    });
  }

  // Producer threads: batched wire ingest on their own connections.
  std::vector<std::thread> producers;
  for (int c = 0; c < clients; ++c) {
    producers.emplace_back([&, c] {
      auto client = MonitorClient::Connect("127.0.0.1", port,
                                           "prod-" + std::to_string(c),
                                           /*resume=*/false);
      if (!client.ok()) std::abort();
      auto gen = MakeGenerator(Distribution::kIndependent, kDim,
                               1000 + static_cast<std::uint64_t>(c));
      std::size_t sent = 0;
      while (sent < records_per_client) {
        std::vector<Record> batch;
        const std::size_t n =
            std::min(kWireBatch, records_per_client - sent);
        batch.reserve(n);
        const double pushed_at = watch.ElapsedSeconds();
        for (std::size_t i = 0; i < n; ++i) {
          const Timestamp ts = clock.fetch_add(1);
          push_wall[static_cast<std::size_t>(ts)] = pushed_at;
          batch.emplace_back(0, gen->NextPoint(), ts);
        }
        // Hint-paced ingest (protocol v3): a RESOURCE_EXHAUSTED
        // refusal means the queue filled mid-batch; the accepted tuples
        // are the batch prefix, so back off by the hint and resend the
        // suffix instead of aborting.
        std::size_t off = 0;
        while (off < batch.size()) {
          std::vector<Record> part(
              batch.begin() + static_cast<long>(off), batch.end());
          const auto ack = (*client)->Ingest(std::move(part));
          if (!ack.ok()) std::abort();
          off += ack->accepted;
          if (ack->rejected == 0) break;
          if (ack->first_error.code() != StatusCode::kResourceExhausted) {
            std::abort();
          }
          std::this_thread::sleep_for(
              std::chrono::microseconds(100 + 4u * ack->queue_hint));
        }
        sent += n;
      }
      (void)(*client)->Close(/*close_session=*/false);
    });
  }
  for (std::thread& t : producers) t.join();
  if (!service->Flush().ok()) std::abort();
  const double wall = watch.ElapsedSeconds();
  done.store(true);
  for (std::thread& t : subscribers) t.join();
  server.Stop();
  const ServiceStats stats = service->stats();
  service->Shutdown();

  RunResult out;
  out.wall_seconds = wall;
  out.throughput = static_cast<double>(total) / wall;
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  out.events = all.size();
  out.p50_ms = Percentile(all, 0.50) * 1e3;
  out.p99_ms = Percentile(all, 0.99) * 1e3;
  out.cycles = stats.cycles;
  out.dropped = stats.deltas_dropped;
  return out;
}

int Main() {
  const Scale scale = GetScale();
  std::size_t records_per_client = 40000;
  std::size_t window = 10000;
  if (scale == Scale::kSmoke) {
    records_per_client = 2000;
    window = 1000;
  } else if (scale == Scale::kPaper) {
    records_per_client = 200000;
    window = 50000;
  }

  std::printf(
      "Binary TCP front-end: wire ingest throughput and ingest->delta "
      "latency\nrecords/client=%zu  window=N=%zu  queries/client=%zu  "
      "k=%d  wire batch=%zu  scale=%s\n\n",
      records_per_client, window, kQueriesPerClient, kK, kWireBatch,
      ScaleName(scale));

  TablePrinter table({"transport", "srv thr", "clients",
                      "ingest [rec/s]", "wall [s]", "p50 lat [ms]",
                      "p99 lat [ms]", "delta events", "cycles"});
  BenchResultWriter json("net_throughput");
  json.Config("records_per_client", static_cast<double>(records_per_client));
  json.Config("window", static_cast<double>(window));
  json.Config("queries_per_client", static_cast<double>(kQueriesPerClient));
  json.Config("k", static_cast<double>(kK));
  json.Config("wire_batch", static_cast<double>(kWireBatch));
  auto record_row = [&json](const std::string& label, const RunResult& r,
                            const std::string& transport, int threads,
                            int clients) {
    BenchResultWriter::Row& row = json.AddRow(label);
    row.tags["transport"] = transport;
    row.metrics["server_threads"] = threads;
    row.metrics["clients"] = clients;
    row.metrics["ingest_rec_per_s"] = r.throughput;
    row.metrics["wall_s"] = r.wall_seconds;
    row.metrics["p50_latency_ms"] = r.p50_ms;
    row.metrics["p99_latency_ms"] = r.p99_ms;
    row.metrics["delta_events"] = static_cast<double>(r.events);
    row.metrics["cycles"] = static_cast<double>(r.cycles);
  };
  const RunResult base = RunInProcessBaseline(records_per_client, window);
  record_row("in-process", base, "in-process", 0, 1);
  table.AddRow({"in-process", "-", TablePrinter::Int(1),
                TablePrinter::Num(base.throughput, 5),
                TablePrinter::Num(base.wall_seconds, 4),
                TablePrinter::Num(base.p50_ms, 4),
                TablePrinter::Num(base.p99_ms, 4),
                TablePrinter::Int(static_cast<std::int64_t>(base.events)),
                TablePrinter::Int(static_cast<std::int64_t>(base.cycles))});
  RunResult wire1;
  for (int clients : {1, 2, 4, 8}) {
    const RunResult r =
        RunWireClients(clients, records_per_client, window,
                       /*server_threads=*/1);
    if (clients == 1) wire1 = r;
    record_row("tcp-1thr-" + std::to_string(clients) + "cli", r, "tcp", 1,
               clients);
    table.AddRow({"tcp", TablePrinter::Int(1), TablePrinter::Int(clients),
                  TablePrinter::Num(r.throughput, 5),
                  TablePrinter::Num(r.wall_seconds, 4),
                  TablePrinter::Num(r.p50_ms, 4),
                  TablePrinter::Num(r.p99_ms, 4),
                  TablePrinter::Int(static_cast<std::int64_t>(r.events)),
                  TablePrinter::Int(static_cast<std::int64_t>(r.cycles))});
  }
  // The --server_threads sweep: fixed 4-client load, 1 -> 2 -> 4 poll
  // loops. With spare cores this is the aggregate-ingest scaling row
  // set recorded in bench/README.md; on a starved box it shows the
  // sharding costs nothing when there is nothing to parallelize.
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    const RunResult r =
        RunWireClients(4, records_per_client, window, threads);
    record_row("tcp-" + std::to_string(threads) + "thr-4cli", r, "tcp",
               static_cast<int>(threads), 4);
    table.AddRow({"tcp", TablePrinter::Int(static_cast<int>(threads)),
                  TablePrinter::Int(4),
                  TablePrinter::Num(r.throughput, 5),
                  TablePrinter::Num(r.wall_seconds, 4),
                  TablePrinter::Num(r.p50_ms, 4),
                  TablePrinter::Num(r.p99_ms, 4),
                  TablePrinter::Int(static_cast<std::int64_t>(r.events)),
                  TablePrinter::Int(static_cast<std::int64_t>(r.cycles))});
  }
  table.Print(std::cout);
  json.Write();
  std::printf(
      "\nwire/in-process single-client ingest ratio: %.2f (target: >= "
      "0.50)\n",
      base.throughput > 0.0 ? wire1.throughput / base.throughput : 0.0);
  PrintExpectation(
      "batched span-encoded ingest keeps the single-client wire rate "
      "within a small factor of in-process ingest (the frame/CRC cost "
      "amortizes over the batch), and multi-client wire throughput holds "
      "roughly flat while p99 ingest->delta latency absorbs the server's "
      "poll tick on top of the cycle cadence");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
