// TSL kmax calibration (Section 8).
//
// The paper fine-tunes the view slack kmax per k before comparing against
// TSL, reporting optima (4, 10, 20, 30, 70, 120) for k = (1, 5, 10, 20,
// 50, 100) on IND at the default settings. This harness sweeps kmax
// candidates per k, reports the running time of each, and marks the
// fastest. Small kmax refills constantly; large kmax makes every refill
// (and view update) more expensive.

#include <iostream>

#include "bench/common/harness.h"
#include "tsl/topk_view.h"

namespace topkmon {
namespace bench {
namespace {

int Main() {
  const Scale scale = GetScale();
  WorkloadSpec base = BaselineSpec(scale);
  // Tuning needs relative comparisons only; shorten the runs.
  base.num_cycles = std::max(10, base.num_cycles / 2);
  base.num_queries = std::max<std::size_t>(10, base.num_queries / 2);
  PrintPreamble("TSL kmax calibration",
                "Section 8 kmax fine-tuning of Mouratidis et al., SIGMOD "
                "2006 (optimal kmax = 4,10,20,30,70,120 for k = "
                "1,5,10,20,50,100)",
                base);

  const std::vector<int> ks =
      scale == Scale::kSmoke ? std::vector<int>{1, 10, 50}
                             : std::vector<int>{1, 5, 10, 20, 50, 100};
  TablePrinter table({"k", "kmax candidates [s each]", "best kmax",
                      "paper's kmax"});
  for (int k : ks) {
    const int paper_kmax = DefaultKmax(k);
    // Candidates: k (no slack), halfway, the paper's value, 2x slack.
    std::vector<int> candidates = {
        k, k + std::max(1, (paper_kmax - k) / 2), paper_kmax,
        k + 2 * std::max(1, paper_kmax - k)};
    std::string timings;
    int best_kmax = candidates.front();
    double best_time = -1.0;
    for (int kmax : candidates) {
      WorkloadSpec spec = base;
      spec.k = k;
      const SimulationReport report =
          RunEngine(EngineKind::kTsl, spec, 20736, kmax);
      if (!timings.empty()) timings += "  ";
      timings += std::to_string(kmax) + ":" +
                 TablePrinter::Num(report.monitor_seconds, 3);
      if (best_time < 0 || report.monitor_seconds < best_time) {
        best_time = report.monitor_seconds;
        best_kmax = kmax;
      }
    }
    table.AddRow({TablePrinter::Int(k), timings,
                  TablePrinter::Int(best_kmax),
                  TablePrinter::Int(paper_kmax)});
  }
  table.Print(std::cout);
  PrintExpectation(
      "a moderate slack beats both extremes: kmax = k refills on nearly "
      "every result expiration, oversized kmax slows every view update; "
      "the optimum lands near the paper's calibrated values.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
