// Extension benchmark: TMA over update streams (Section 7).
//
// With explicit deletions the expiry order is unknown, so SMA's skyband
// reduction is unavailable and TMA recomputes whenever a result record is
// deleted. This harness sweeps the deletion fraction of the stream and
// reports throughput and recomputation counts.

#include <iostream>

#include "bench/common/harness.h"
#include "core/update_stream_engine.h"
#include "stream/update_stream.h"

namespace topkmon {
namespace bench {
namespace {

int Main() {
  const Scale scale = GetScale();
  WorkloadSpec base = BaselineSpec(scale);
  PrintPreamble("Extension: TMA over update streams",
                "Section 7 (update streams) of Mouratidis et al., SIGMOD "
                "2006",
                base);

  TablePrinter table({"delete fraction", "live records", "ops/sec",
                      "recomputes", "time [s]"});
  for (double delete_fraction : {0.1, 0.3, 0.5}) {
    GridEngineOptions opt;
    opt.dim = base.dim;
    UpdateStreamTmaEngine engine(opt);
    for (const QuerySpec& q : base.MakeQueries()) {
      Status st = engine.RegisterQuery(q);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    UpdateStreamGenerator gen(
        MakeGenerator(base.distribution, base.dim, base.seed),
        /*delete_fraction=*/0.0, base.seed + 1);
    // Fill phase (insert-only): build up a live set comparable to the
    // sliding-window workloads, then enable churn. A fill with the target
    // delete fraction would stall near 0.5 (zero expected growth).
    Timestamp now = 0;
    while (engine.LiveCount() < base.window_size) {
      ++now;
      Status st = engine.ProcessBatch(
          gen.NextBatch(base.arrivals_per_cycle, now));
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    gen.set_delete_fraction(delete_fraction);
    const EngineStats before = engine.stats();
    const std::size_t total_ops =
        base.arrivals_per_cycle * static_cast<std::size_t>(base.num_cycles);
    Stopwatch watch;
    for (int c = 0; c < base.num_cycles; ++c) {
      ++now;
      Status st = engine.ProcessBatch(
          gen.NextBatch(base.arrivals_per_cycle, now));
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    const double elapsed = watch.ElapsedSeconds();
    const EngineStats delta = Subtract(engine.stats(), before);
    table.AddRow(
        {TablePrinter::Num(delete_fraction, 3),
         TablePrinter::Int(static_cast<std::int64_t>(engine.LiveCount())),
         TablePrinter::Num(static_cast<double>(total_ops) / elapsed, 5),
         TablePrinter::Int(
             static_cast<std::int64_t>(delta.recomputations)),
         TablePrinter::Num(elapsed, 4)});
  }
  table.Print(std::cout);
  PrintExpectation(
      "higher deletion fractions delete result records more often, "
      "raising the recomputation count steeply; per-op throughput stays "
      "in the same range because the grid+influence-list framework "
      "confines the extra work to the affected queries' influence "
      "regions.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
