// Figure 14: CPU time and space versus grid granularity (IND, defaults).
//
// The paper varies the number of cells per axis from 5 to 15 on a d=4
// workspace (5^4 .. 15^4 cells) and reports, for TMA and SMA, (a) overall
// running time and (b) memory. 12 cells per axis is the sweet spot: finer
// grids pay for heap operations over many (often empty) cells, sparser
// grids scan points outside the influence regions; finer grids also cost
// more book-keeping space.

#include <iostream>

#include "bench/common/harness.h"

namespace topkmon {
namespace bench {
namespace {

int Main() {
  const Scale scale = GetScale();
  WorkloadSpec spec = BaselineSpec(scale);
  PrintPreamble("Figure 14: performance vs grid granularity",
                "Figure 14(a)+(b) of Mouratidis et al., SIGMOD 2006", spec);

  const std::vector<int> per_axis = scale == Scale::kSmoke
                                        ? std::vector<int>{5, 9, 12, 15}
                                        : std::vector<int>{5, 6, 7, 8, 9, 10,
                                                           11, 12, 13, 14, 15};
  BenchResultWriter json("fig14_grid_granularity");
  json.Config("dim", static_cast<double>(spec.dim));
  json.Config("window", static_cast<double>(spec.window_size));
  json.Config("queries", static_cast<double>(spec.num_queries));
  TablePrinter table({"cells/axis", "total cells", "TMA time [s]",
                      "SMA time [s]", "TMA space [MiB]", "SMA space [MiB]"});
  for (int m : per_axis) {
    const std::size_t budget = static_cast<std::size_t>(m) * m * m * m;
    const SimulationReport tma =
        RunEngine(EngineKind::kTma, spec, budget);
    const SimulationReport sma =
        RunEngine(EngineKind::kSma, spec, budget);
    table.AddRow({std::to_string(m) + "^4", TablePrinter::Int(budget),
                  TablePrinter::Num(tma.monitor_seconds, 4),
                  TablePrinter::Num(sma.monitor_seconds, 4),
                  TablePrinter::Num(tma.memory.TotalMiB(), 4),
                  TablePrinter::Num(sma.memory.TotalMiB(), 4)});
    BenchResultWriter::Row& row =
        json.AddRow(std::to_string(m) + "^4");
    row.metrics["cells_per_axis"] = static_cast<double>(m);
    row.metrics["total_cells"] = static_cast<double>(budget);
    row.metrics["tma_seconds"] = tma.monitor_seconds;
    row.metrics["sma_seconds"] = sma.monitor_seconds;
    row.metrics["tma_mib"] = tma.memory.TotalMiB();
    row.metrics["sma_mib"] = sma.memory.TotalMiB();
  }
  table.Print(std::cout);
  json.Write();
  PrintExpectation(
      "U-shaped running time with the minimum near 12^4 cells for both "
      "TMA and SMA; space grows with granularity (book-keeping), and SMA "
      "uses slightly more memory than TMA (skybands).");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
