// Figure 19: CPU time versus result cardinality k (1 .. 100), IND and ANT.
//
// Influence regions (and the number of processed cells) grow with k, so
// every method slows down. TMA suffers most: large k raises the
// probability that some result record expires in a cycle (Prrec), i.e.
// the recomputation frequency; by k = 100 on ANT, TMA approaches TSL
// while SMA keeps a clear lead.

#include <iostream>

#include "bench/common/harness.h"

namespace topkmon {
namespace bench {
namespace {

int Main() {
  const Scale scale = GetScale();
  WorkloadSpec base = BaselineSpec(scale);
  PrintPreamble("Figure 19: CPU time vs k",
                "Figure 19(a)+(b) of Mouratidis et al., SIGMOD 2006", base);

  const std::vector<int> ks = {1, 5, 10, 20, 50, 100};
  BenchResultWriter json("fig19_k");
  json.Config("dim", static_cast<double>(base.dim));
  json.Config("window", static_cast<double>(base.window_size));
  json.Config("queries", static_cast<double>(base.num_queries));
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAntiCorrelated}) {
    std::printf("--- %s ---\n", DistributionName(dist));
    TablePrinter table({"k", "TSL [s]", "TMA [s]", "SMA [s]", "TMA/SMA",
                        "TMA recomputes", "SMA recomputes"});
    for (int k : ks) {
      WorkloadSpec spec = base;
      spec.distribution = dist;
      spec.k = k;
      const SimulationReport tsl = RunEngine(EngineKind::kTsl, spec);
      const SimulationReport tma = RunEngine(EngineKind::kTma, spec);
      const SimulationReport sma = RunEngine(EngineKind::kSma, spec);
      table.AddRow(
          {TablePrinter::Int(k), TablePrinter::Num(tsl.monitor_seconds, 4),
           TablePrinter::Num(tma.monitor_seconds, 4),
           TablePrinter::Num(sma.monitor_seconds, 4),
           TablePrinter::Num(tma.monitor_seconds / sma.monitor_seconds, 3),
           TablePrinter::Int(
               static_cast<std::int64_t>(tma.stats.recomputations)),
           TablePrinter::Int(
               static_cast<std::int64_t>(sma.stats.recomputations))});
      BenchResultWriter::Row& row = json.AddRow(
          std::string(DistributionName(dist)) + "/k" + std::to_string(k));
      row.tags["dist"] = DistributionName(dist);
      row.metrics["k"] = static_cast<double>(k);
      row.metrics["tsl_seconds"] = tsl.monitor_seconds;
      row.metrics["tma_seconds"] = tma.monitor_seconds;
      row.metrics["sma_seconds"] = sma.monitor_seconds;
      row.metrics["tma_recomputes"] =
          static_cast<double>(tma.stats.recomputations);
      row.metrics["sma_recomputes"] =
          static_cast<double>(sma.stats.recomputations);
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  json.Write();
  PrintExpectation(
      "cost grows with k; TMA and SMA start close and the gap widens with "
      "k as TMA recomputes more often; on ANT with k=100 TMA approaches "
      "TSL while SMA stays well ahead (SMA recomputes an order of "
      "magnitude less often).");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
