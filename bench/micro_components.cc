// Component-level google-benchmark suite: the primitive operations whose
// costs the Section 6 analysis composes (grid updates, skyband
// maintenance, order-statistics tree, TA runs, sorted-list churn).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/skyband.h"
#include "core/topk_compute.h"
#include "stream/generators.h"
#include "tsl/sorted_lists.h"
#include "tsl/threshold_algorithm.h"
#include "util/os_treap.h"
#include "util/rng.h"

namespace topkmon {
namespace {

void BM_GridLocateAndInsert(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  Grid grid(dim, Grid::CellsPerAxisForBudget(dim, 20736));
  RecordSource source(MakeGenerator(Distribution::kIndependent, dim, 7));
  std::vector<Record> batch = source.NextBatch(4096, 0);
  std::size_t i = 0;
  for (auto _ : state) {
    const Record& r = batch[i & 4095];
    const CellIndex cell = grid.LocateCell(r.position);
    grid.InsertPoint(cell, r.id, r.position);
    benchmark::DoNotOptimize(cell);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GridLocateAndInsert)->Arg(2)->Arg(4)->Arg(6);

void BM_SkybandInsert(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(3);
  Skyband skyband(k);
  RecordId next = 0;
  for (auto _ : state) {
    skyband.Insert(next++, rng.Uniform());
  }
  state.counters["size"] = static_cast<double>(skyband.size());
}
BENCHMARK(BM_SkybandInsert)->Arg(1)->Arg(20)->Arg(100);

void BM_OsTreapInsertCount(benchmark::State& state) {
  Rng rng(5);
  OsTreap<std::uint64_t> treap;
  for (auto _ : state) {
    const std::uint64_t key = rng.NextUint64();
    benchmark::DoNotOptimize(treap.CountGreater(key));
    treap.Insert(key);
    if (treap.Size() > 4096) treap.Clear();
  }
}
BENCHMARK(BM_OsTreapInsertCount);

void BM_SortedListsChurn(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  SortedAttributeLists lists(dim);
  RecordSource source(MakeGenerator(Distribution::kIndependent, dim, 11));
  std::vector<Record> window = source.NextBatch(100000, 0);
  for (const Record& r : window) lists.Insert(r);
  std::size_t head = 0;
  Timestamp now = 1;
  for (auto _ : state) {
    // One record replaced per iteration: the steady-state per-tuple cost.
    const Record arriving = source.Next(now++);
    lists.Insert(arriving);
    benchmark::DoNotOptimize(lists.Erase(window[head]));
    window.push_back(arriving);
    ++head;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SortedListsChurn)->Arg(2)->Arg(4)->Arg(6);

void BM_ThresholdAlgorithm(benchmark::State& state) {
  const int dim = 4;
  const int kmax = static_cast<int>(state.range(0));
  SortedAttributeLists lists(dim);
  std::vector<Record> records;
  RecordSource source(MakeGenerator(Distribution::kIndependent, dim, 13));
  for (std::size_t i = 0; i < 100000; ++i) {
    records.push_back(source.Next(0));
    lists.Insert(records.back());
  }
  LinearFunction f({0.7, 0.3, 0.9, 0.5});
  for (auto _ : state) {
    TaResult out = RunThresholdAlgorithm(
        lists, f, kmax, [&records](RecordId id) -> const Record& {
          return records[static_cast<std::size_t>(id)];
        });
    benchmark::DoNotOptimize(out.result.data());
  }
}
BENCHMARK(BM_ThresholdAlgorithm)->Arg(4)->Arg(30)->Arg(120)
    ->Unit(benchmark::kMicrosecond);

void BM_TopKComputeModule(benchmark::State& state) {
  const int dim = 4;
  const int k = static_cast<int>(state.range(0));
  Grid grid(dim, 12);
  std::vector<Record> records;
  RecordSource source(MakeGenerator(Distribution::kIndependent, dim, 17));
  for (std::size_t i = 0; i < 100000; ++i) {
    records.push_back(source.Next(0));
    grid.InsertPoint(grid.LocateCell(records.back().position),
                     records.back().id, records.back().position);
  }
  LinearFunction f({0.7, 0.3, 0.9, 0.5});
  TraversalScratch scratch;
  for (auto _ : state) {
    TopKComputation out = ComputeTopK(grid, f, k, &scratch);
    benchmark::DoNotOptimize(out.result.data());
  }
}
BENCHMARK(BM_TopKComputeModule)->Arg(1)->Arg(20)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace topkmon

BENCHMARK_MAIN();
