// Ablation: measured recomputation probability vs the Section 6 bound.
//
// The analysis bounds the probability that TMA recomputes a query in a
// cycle by Prrec <= 1 - (1 - r/N)^k (the probability that at least one of
// the k current results expires; arrivals replacing expiring records make
// the true rate lower). SMA's analysis predicts essentially zero
// recomputations under steady arrivals. This harness measures both
// engines' empirical rates across k and compares with the bound.

#include <cmath>
#include <iostream>

#include "bench/common/harness.h"

namespace topkmon {
namespace bench {
namespace {

int Main() {
  const Scale scale = GetScale();
  WorkloadSpec base = BaselineSpec(scale);
  PrintPreamble("Ablation: recomputation probability vs analytic bound",
                "Section 6 analysis of Mouratidis et al., SIGMOD 2006",
                base);

  const double ratio = static_cast<double>(base.arrivals_per_cycle) /
                       static_cast<double>(base.window_size);
  TablePrinter table({"k", "bound 1-(1-r/N)^k", "TMA measured",
                      "SMA measured"});
  for (int k : {1, 5, 10, 20, 50, 100}) {
    WorkloadSpec spec = base;
    spec.k = k;
    const SimulationReport tma = RunEngine(EngineKind::kTma, spec);
    const SimulationReport sma = RunEngine(EngineKind::kSma, spec);
    const double bound = 1.0 - std::pow(1.0 - ratio, k);
    table.AddRow(
        {TablePrinter::Int(k), TablePrinter::Num(bound, 4),
         TablePrinter::Num(tma.stats.RecomputationRate(spec.num_queries),
                           4),
         TablePrinter::Num(sma.stats.RecomputationRate(spec.num_queries),
                           4)});
  }
  table.Print(std::cout);
  PrintExpectation(
      "TMA's measured rate tracks the analytic estimate and grows with k; "
      "SMA's rate stays near zero (an order of magnitude below TMA) "
      "because the skyband absorbs result expirations, matching "
      "Section 6.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
