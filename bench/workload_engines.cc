// Engine throughput across the named workload taxonomy.
//
// The paper's Section 8 drives every experiment from one synthetic
// stream shape; this bench sweeps the src/workload/ registry — skewed
// keys, focused queries, bursts, diurnal drift, query churn,
// multi-tenant blends, adversarial timestamps — through TMA, SMA and
// TSL, so the engines' relative standing can be read per traffic shape
// rather than only under the IND baseline.
//
//   --workload=<name>            bench a single named workload
//   --workload=list              print the registry and exit
//   --workload-seed=<n>          override the stream seed
//   --workload-param=<k>=<v>     override a declared workload knob
//
// Without --workload the full registry is swept.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common/harness.h"
#include "tsl/tsl_engine.h"

namespace topkmon {
namespace bench {
namespace {

// ---------------------------------------------------------------------------
// Cost-model ranking check (ROADMAP "workload realism" item).
//
// The paper's cost model makes two orderings that must survive any
// engine refactor:
//   1. SMA beats TMA under query churn: TMA recomputes an affected
//      query from scratch whenever a top-k member expires (Figure 9,
//      lines 12-21), while SMA's k-skyband absorbs expirations and only
//      recomputes when the skyband underflows k (Figure 11) — so SMA
//      must issue strictly fewer from-scratch recomputations.
//   2. TSL degrades on zipfian-keys: hot-spot-clustered positions pack
//      the sorted-list prefixes with near-tied scores, so each
//      materialized-view refill's TA run scans deeper before the
//      threshold closes — accesses per refill must rise vs. uniform.
//
// Wall-clock rankings are noise on shared runners; these are exact
// work counters for a fixed workload seed, so drift fails CI
// deterministically. The probe uses its own small window so the stream
// actually wraps (expirations are what both orderings are about); the
// sweep's smoke window equals the record count and never expires a
// record.
struct CostProbe {
  EngineStats stats;
  std::uint64_t tsl_accesses = 0;
};

CostProbe ProbeCostModel(EngineKind kind, const std::string& workload,
                         WorkloadOptions options) {
  constexpr std::size_t kProbeWindow = 500;
  constexpr std::size_t kProbeCycles = 60;
  options.mean_batch = 50;
  WorkloadSpec spec;
  spec.dim = options.dim;
  spec.window_kind = WindowKind::kCountBased;
  spec.window_size = kProbeWindow;
  auto engine = MakeEngine(kind, spec);
  RunNamedWorkload(*engine, workload, options, kProbeCycles);
  CostProbe probe;
  probe.stats = engine->stats();
  if (const auto* tsl = dynamic_cast<const TslEngine*>(engine.get())) {
    probe.tsl_accesses =
        tsl->total_sorted_accesses() + tsl->total_random_accesses();
  }
  return probe;
}

int CheckCostModel(const WorkloadOptions& options) {
  const CostProbe tma = ProbeCostModel(EngineKind::kTma, "query-churn",
                                       options);
  const CostProbe sma = ProbeCostModel(EngineKind::kSma, "query-churn",
                                       options);
  const CostProbe tsl_uni = ProbeCostModel(EngineKind::kTsl, "uniform",
                                           options);
  const CostProbe tsl_zipf = ProbeCostModel(EngineKind::kTsl,
                                            "zipfian-keys", options);
  const double uni_cost =
      tsl_uni.stats.view_refills > 0
          ? static_cast<double>(tsl_uni.tsl_accesses) /
                static_cast<double>(tsl_uni.stats.view_refills)
          : 0.0;
  const double zipf_cost =
      tsl_zipf.stats.view_refills > 0
          ? static_cast<double>(tsl_zipf.tsl_accesses) /
                static_cast<double>(tsl_zipf.stats.view_refills)
          : 0.0;
  std::printf(
      "cost-model check: query-churn recomputations TMA=%llu SMA=%llu; "
      "TSL accesses/refill uniform=%.1f (%llu refills) "
      "zipfian-keys=%.1f (%llu refills)\n",
      static_cast<unsigned long long>(tma.stats.recomputations),
      static_cast<unsigned long long>(sma.stats.recomputations), uni_cost,
      static_cast<unsigned long long>(tsl_uni.stats.view_refills),
      zipf_cost,
      static_cast<unsigned long long>(tsl_zipf.stats.view_refills));
  int failures = 0;
  // Margin of 2x on both orderings: the gap the paper predicts is an
  // order of magnitude, so halving it is already drift worth failing.
  if (sma.stats.recomputations * 2 >= tma.stats.recomputations) {
    std::fprintf(stderr,
                 "cost-model violation: SMA should beat TMA on "
                 "query-churn (skyband absorbs expirations), but SMA "
                 "recomputed %llu times vs TMA's %llu\n",
                 static_cast<unsigned long long>(sma.stats.recomputations),
                 static_cast<unsigned long long>(tma.stats.recomputations));
    ++failures;
  }
  if (zipf_cost < uni_cost * 1.2) {
    std::fprintf(stderr,
                 "cost-model violation: TSL should degrade on "
                 "zipfian-keys (near-tied scores defer the TA "
                 "threshold), but refills cost %.1f accesses vs %.1f "
                 "on uniform\n",
                 zipf_cost, uni_cost);
    ++failures;
  }
  return failures;
}

int Main(int argc, char** argv) {
  const Scale scale = GetScale();
  WorkloadSelection sel = ParseWorkloadFlags(argc, argv);
  sel.options.dim = 2;
  sel.options.k = 10;
  sel.options.num_queries = 16;
  std::size_t cycles = 200;
  std::size_t window = 20000;
  sel.options.mean_batch = 200;
  if (scale == Scale::kSmoke) {
    cycles = 40;
    window = 2000;
    sel.options.mean_batch = 50;
  } else if (scale == Scale::kPaper) {
    cycles = 500;
    window = 100000;
    sel.options.mean_batch = 1000;
  }

  std::vector<std::string> names;
  if (sel.requested) {
    names.push_back(sel.name);
  } else {
    for (const WorkloadInfo& info : ListWorkloads()) {
      names.push_back(info.name);
    }
  }

  std::printf(
      "Named workloads through the paper engines\n"
      "dim=%d  window=N=%zu  mean_batch=%zu  queries=%zu  k=%d  "
      "cycles=%zu  seed=%llu  scale=%s\n\n",
      sel.options.dim, window, sel.options.mean_batch,
      sel.options.num_queries, sel.options.k, cycles,
      static_cast<unsigned long long>(sel.options.seed), ScaleName(scale));

  BenchResultWriter json("workload_engines");
  json.Config("dim", static_cast<double>(sel.options.dim));
  json.Config("window", static_cast<double>(window));
  json.Config("mean_batch", static_cast<double>(sel.options.mean_batch));
  json.Config("queries", static_cast<double>(sel.options.num_queries));
  json.Config("k", static_cast<double>(sel.options.k));
  json.Config("cycles", static_cast<double>(cycles));

  WorkloadSpec engine_spec;  // only dim/window feed MakeEngine
  engine_spec.dim = sel.options.dim;
  engine_spec.window_kind = WindowKind::kCountBased;
  engine_spec.window_size = window;

  TablePrinter table({"workload", "engine", "records", "rec/s",
                      "cycles/s", "reg", "unreg", "recomp", "scored",
                      "wall [s]"});
  for (const std::string& name : names) {
    for (const EngineKind kind :
         {EngineKind::kTma, EngineKind::kSma, EngineKind::kTsl}) {
      auto engine = MakeEngine(kind, engine_spec);
      const NamedWorkloadRun run =
          RunNamedWorkload(*engine, name, sel.options, cycles);
      const EngineStats& stats = engine->stats();
      const double rec_per_s =
          run.seconds > 0.0 ? static_cast<double>(run.records) / run.seconds
                            : 0.0;
      const double cyc_per_s =
          run.seconds > 0.0 ? static_cast<double>(run.cycles) / run.seconds
                            : 0.0;
      BenchResultWriter::Row& row =
          json.AddRow(name + "/" + EngineName(kind));
      row.tags["workload"] = name;
      row.tags["engine"] = EngineName(kind);
      row.metrics["records"] = static_cast<double>(run.records);
      row.metrics["records_per_s"] = rec_per_s;
      row.metrics["cycles_per_s"] = cyc_per_s;
      row.metrics["wall_s"] = run.seconds;
      row.metrics["recomputations"] = static_cast<double>(
          stats.recomputations);
      row.metrics["points_scored"] = static_cast<double>(
          stats.points_scored);
      table.AddRow({name, EngineName(kind),
                    TablePrinter::Int(static_cast<std::int64_t>(run.records)),
                    TablePrinter::Num(rec_per_s, 5),
                    TablePrinter::Num(cyc_per_s, 4),
                    TablePrinter::Int(static_cast<std::int64_t>(
                        run.registers)),
                    TablePrinter::Int(static_cast<std::int64_t>(
                        run.unregisters)),
                    TablePrinter::Int(static_cast<std::int64_t>(
                        stats.recomputations)),
                    TablePrinter::Int(static_cast<std::int64_t>(
                        stats.points_scored)),
                    TablePrinter::Num(run.seconds, 4)});
    }
  }
  table.Print(std::cout);
  json.Write();
  int failures = 0;
  if (!sel.requested) {
    failures = CheckCostModel(sel.options);
  }
  PrintExpectation(
      "skewed keys (zipfian-keys, multi-tenant) squeeze many records "
      "into few cells and narrow the TMA/SMA gap, query churn taxes "
      "SMA's skyband rebuilds at registration but SMA still recomputes "
      "far less than TMA once the window wraps, and adversarial-slack's "
      "boundary ties cost everyone without breaking anyone");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main(int argc, char** argv) {
  return topkmon::bench::Main(argc, argv);
}
