// Engine throughput across the named workload taxonomy.
//
// The paper's Section 8 drives every experiment from one synthetic
// stream shape; this bench sweeps the src/workload/ registry — skewed
// keys, focused queries, bursts, diurnal drift, query churn,
// multi-tenant blends, adversarial timestamps — through TMA, SMA and
// TSL, so the engines' relative standing can be read per traffic shape
// rather than only under the IND baseline.
//
//   --workload=<name>            bench a single named workload
//   --workload=list              print the registry and exit
//   --workload-seed=<n>          override the stream seed
//   --workload-param=<k>=<v>     override a declared workload knob
//
// Without --workload the full registry is swept.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common/harness.h"

namespace topkmon {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  const Scale scale = GetScale();
  WorkloadSelection sel = ParseWorkloadFlags(argc, argv);
  sel.options.dim = 2;
  sel.options.k = 10;
  sel.options.num_queries = 16;
  std::size_t cycles = 200;
  std::size_t window = 20000;
  sel.options.mean_batch = 200;
  if (scale == Scale::kSmoke) {
    cycles = 40;
    window = 2000;
    sel.options.mean_batch = 50;
  } else if (scale == Scale::kPaper) {
    cycles = 500;
    window = 100000;
    sel.options.mean_batch = 1000;
  }

  std::vector<std::string> names;
  if (sel.requested) {
    names.push_back(sel.name);
  } else {
    for (const WorkloadInfo& info : ListWorkloads()) {
      names.push_back(info.name);
    }
  }

  std::printf(
      "Named workloads through the paper engines\n"
      "dim=%d  window=N=%zu  mean_batch=%zu  queries=%zu  k=%d  "
      "cycles=%zu  seed=%llu  scale=%s\n\n",
      sel.options.dim, window, sel.options.mean_batch,
      sel.options.num_queries, sel.options.k, cycles,
      static_cast<unsigned long long>(sel.options.seed), ScaleName(scale));

  BenchResultWriter json("workload_engines");
  json.Config("dim", static_cast<double>(sel.options.dim));
  json.Config("window", static_cast<double>(window));
  json.Config("mean_batch", static_cast<double>(sel.options.mean_batch));
  json.Config("queries", static_cast<double>(sel.options.num_queries));
  json.Config("k", static_cast<double>(sel.options.k));
  json.Config("cycles", static_cast<double>(cycles));

  WorkloadSpec engine_spec;  // only dim/window feed MakeEngine
  engine_spec.dim = sel.options.dim;
  engine_spec.window_kind = WindowKind::kCountBased;
  engine_spec.window_size = window;

  TablePrinter table({"workload", "engine", "records", "rec/s",
                      "cycles/s", "reg", "unreg", "wall [s]"});
  for (const std::string& name : names) {
    for (const EngineKind kind :
         {EngineKind::kTma, EngineKind::kSma, EngineKind::kTsl}) {
      auto engine = MakeEngine(kind, engine_spec);
      const NamedWorkloadRun run =
          RunNamedWorkload(*engine, name, sel.options, cycles);
      const double rec_per_s =
          run.seconds > 0.0 ? static_cast<double>(run.records) / run.seconds
                            : 0.0;
      const double cyc_per_s =
          run.seconds > 0.0 ? static_cast<double>(run.cycles) / run.seconds
                            : 0.0;
      BenchResultWriter::Row& row =
          json.AddRow(name + "/" + EngineName(kind));
      row.tags["workload"] = name;
      row.tags["engine"] = EngineName(kind);
      row.metrics["records"] = static_cast<double>(run.records);
      row.metrics["records_per_s"] = rec_per_s;
      row.metrics["cycles_per_s"] = cyc_per_s;
      row.metrics["wall_s"] = run.seconds;
      table.AddRow({name, EngineName(kind),
                    TablePrinter::Int(static_cast<std::int64_t>(run.records)),
                    TablePrinter::Num(rec_per_s, 5),
                    TablePrinter::Num(cyc_per_s, 4),
                    TablePrinter::Int(static_cast<std::int64_t>(
                        run.registers)),
                    TablePrinter::Int(static_cast<std::int64_t>(
                        run.unregisters)),
                    TablePrinter::Num(run.seconds, 4)});
    }
  }
  table.Print(std::cout);
  json.Write();
  PrintExpectation(
      "the grid engines hold their lead on every shape; skewed keys "
      "(zipfian-keys, multi-tenant) squeeze many records into few cells "
      "and narrow the TMA/SMA gap, query churn taxes SMA's skyband "
      "rebuilds, and adversarial-slack's boundary ties cost everyone "
      "without breaking anyone");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main(int argc, char** argv) {
  return topkmon::bench::Main(argc, argv);
}
