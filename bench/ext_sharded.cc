// Extension benchmark: multi-core scaling via query sharding.
//
// ShardedEngine partitions the Q continuous queries across S replicas of
// an inner engine, each consuming the identical stream on its own worker
// thread. Per-cycle wall-clock time should approach 1/S of the
// single-shard time (plus the replicated index-update work, which does
// not shrink), at the cost of S windows and grids in memory.

#include <iostream>

#include "bench/common/harness.h"
#include "core/sharded_engine.h"
#include "core/sma_engine.h"

namespace topkmon {
namespace bench {
namespace {

int Main() {
  const Scale scale = GetScale();
  WorkloadSpec spec = BaselineSpec(scale);
  // Query-heavy workload: sharding pays off when per-query work dominates
  // the replicated per-record index updates.
  spec.num_queries *= 5;
  spec.k = 50;
  PrintPreamble("Extension: multi-core scaling via query sharding",
                "parallelization of the paper's single-server model "
                "(queries partitioned, stream replicated)",
                spec);

  double base_seconds = 0.0;
  TablePrinter table({"shards", "wall monitor [s]", "speedup",
                      "sum shard CPU [s]", "memory [MiB]"});
  for (int shards : {1, 2, 4}) {
    ShardedEngine engine(shards, [&spec] {
      GridEngineOptions opt;
      opt.dim = spec.dim;
      opt.window = spec.MakeWindowSpec();
      return std::unique_ptr<MonitorEngine>(new SmaEngine(opt));
    });
    const Result<SimulationReport> report = RunWorkload(engine, spec);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    if (shards == 1) base_seconds = report->monitor_seconds;
    table.AddRow(
        {TablePrinter::Int(shards),
         TablePrinter::Num(report->monitor_seconds, 4),
         TablePrinter::Num(base_seconds / report->monitor_seconds, 3),
         TablePrinter::Num(report->stats.maintenance_seconds, 4),
         TablePrinter::Num(report->memory.TotalMiB(), 4)});
  }
  table.Print(std::cout);
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("\nhardware threads available: %u\n", cores);
  PrintExpectation(
      cores > 1
          ? "wall-clock monitoring time drops with the shard count "
            "(bounded by the replicated per-record index updates and the "
            "core count); total CPU and memory grow with S."
          : "this machine exposes a single hardware thread, so shards "
            "serialize and the replicated index updates make S > 1 a net "
            "loss here; on a multi-core host wall-clock time drops toward "
            "1/S while total CPU and memory grow with S.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
