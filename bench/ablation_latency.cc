// Ablation: per-cycle latency distribution (responsiveness).
//
// The paper motivates continuous monitoring with time-critical
// applications (Section 1): what matters to a client is not only the
// total CPU time but the worst stall between consistent answers. TMA's
// cost is spiky — cycles in which many queries recompute from scratch
// stall everyone — while SMA's skyband maintenance spreads the work
// evenly. This harness reports the mean and maximum cycle latency.

#include <iostream>

#include "bench/common/harness.h"

namespace topkmon {
namespace bench {
namespace {

int Main() {
  const Scale scale = GetScale();
  WorkloadSpec base = BaselineSpec(scale);
  PrintPreamble("Ablation: per-cycle latency (mean vs worst case)",
                "responsiveness behind the Section 8 CPU-time figures",
                base);

  TablePrinter table({"dist", "k", "engine", "mean cycle [ms]",
                      "max cycle [ms]", "max/mean"});
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAntiCorrelated}) {
    for (int k : {20, 100}) {
      WorkloadSpec spec = base;
      spec.distribution = dist;
      spec.k = k;
      for (EngineKind kind : {EngineKind::kTma, EngineKind::kSma}) {
        const SimulationReport report = RunEngine(kind, spec);
        const double mean = 1e3 * report.cycle_seconds.mean();
        const double max = 1e3 * report.cycle_seconds.max();
        table.AddRow({DistributionName(dist), TablePrinter::Int(k),
                      EngineName(kind), TablePrinter::Num(mean, 4),
                      TablePrinter::Num(max, 4),
                      TablePrinter::Num(mean > 0 ? max / mean : 0, 3)});
      }
    }
  }
  table.Print(std::cout);
  PrintExpectation(
      "SMA's mean cycle latency is a fraction of TMA's at every setting. "
      "Both engines spike above their mean when batched recomputations "
      "hit a cycle — frequently for TMA (any result expiry), rarely for "
      "SMA (only a skyband refill) — so SMA delivers both lower average "
      "and more predictable response times.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
