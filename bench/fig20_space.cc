// Figure 20: space requirements versus k, IND and ANT.
//
// TSL pays for d extra sorted lists over the whole window; TMA and SMA
// pay for the grid plus per-cell book-keeping. All methods grow with k
// (bigger result lists / views and larger influence lists), and SMA sits
// slightly above TMA (skybands store dominance counters and a few extra
// entries).

#include <iostream>

#include "bench/common/harness.h"

namespace topkmon {
namespace bench {
namespace {

int Main() {
  const Scale scale = GetScale();
  WorkloadSpec base = BaselineSpec(scale);
  // Space stabilizes quickly; fewer cycles keep the bench fast.
  base.num_cycles = std::max(5, base.num_cycles / 5);
  PrintPreamble("Figure 20: space requirements vs k",
                "Figure 20(a)+(b) of Mouratidis et al., SIGMOD 2006", base);

  const std::vector<int> ks = {1, 5, 10, 20, 50, 100};
  BenchResultWriter json("fig20_space");
  json.Config("dim", static_cast<double>(base.dim));
  json.Config("window", static_cast<double>(base.window_size));
  json.Config("queries", static_cast<double>(base.num_queries));
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAntiCorrelated}) {
    std::printf("--- %s ---\n", DistributionName(dist));
    TablePrinter table({"k", "TSL [MiB]", "TMA [MiB]", "SMA [MiB]",
                        "TSL sorted lists [MiB]", "TMA+SMA grid [MiB]"});
    for (int k : ks) {
      WorkloadSpec spec = base;
      spec.distribution = dist;
      spec.k = k;
      const SimulationReport tsl = RunEngine(EngineKind::kTsl, spec);
      const SimulationReport tma = RunEngine(EngineKind::kTma, spec);
      const SimulationReport sma = RunEngine(EngineKind::kSma, spec);
      const double grid_mib =
          static_cast<double>(tma.memory.Bytes("grid_directory") +
                              tma.memory.Bytes("point_lists") +
                              tma.memory.Bytes("influence_lists")) /
          (1024.0 * 1024.0);
      table.AddRow(
          {TablePrinter::Int(k),
           TablePrinter::Num(tsl.memory.TotalMiB(), 4),
           TablePrinter::Num(tma.memory.TotalMiB(), 4),
           TablePrinter::Num(sma.memory.TotalMiB(), 4),
           TablePrinter::Num(static_cast<double>(tsl.memory.Bytes(
                                 "sorted_lists")) /
                                 (1024.0 * 1024.0),
                             4),
           TablePrinter::Num(grid_mib, 4)});
      BenchResultWriter::Row& row = json.AddRow(
          std::string(DistributionName(dist)) + "/k" + std::to_string(k));
      row.tags["dist"] = DistributionName(dist);
      row.metrics["k"] = static_cast<double>(k);
      row.metrics["tsl_mib"] = tsl.memory.TotalMiB();
      row.metrics["tma_mib"] = tma.memory.TotalMiB();
      row.metrics["sma_mib"] = sma.memory.TotalMiB();
      row.metrics["tsl_sorted_lists_mib"] =
          static_cast<double>(tsl.memory.Bytes("sorted_lists")) /
          (1024.0 * 1024.0);
      row.metrics["grid_mib"] = grid_mib;
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  json.Write();
  PrintExpectation(
      "TSL consumes the most space (d sorted lists over the window); TMA "
      "and SMA grow mildly with k (influence lists + result state) with "
      "SMA slightly above TMA.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
