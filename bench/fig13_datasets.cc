// Figure 13: the IND and ANT datasets (d = 2).
//
// The paper shows scatter plots; this harness prints per-distribution
// summary statistics (coordinate means, pairwise correlation, sum
// concentration) and a coarse ASCII density map so the two shapes —
// uniform square vs anti-correlated band around the anti-diagonal — are
// visible in text form.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common/harness.h"
#include "stream/generators.h"

namespace topkmon {
namespace bench {
namespace {

void Summarize(Distribution dist, std::size_t n, TablePrinter* table,
               BenchResultWriter* json) {
  auto gen = MakeGenerator(dist, 2, 13);
  double sx = 0, sy = 0, sxy = 0, sxx = 0, syy = 0;
  constexpr int kGrid = 16;
  std::vector<int> density(kGrid * kGrid, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Point p = gen->NextPoint();
    sx += p[0];
    sy += p[1];
    sxy += p[0] * p[1];
    sxx += p[0] * p[0];
    syy += p[1] * p[1];
    const int gx = std::min(kGrid - 1, static_cast<int>(p[0] * kGrid));
    const int gy = std::min(kGrid - 1, static_cast<int>(p[1] * kGrid));
    ++density[gy * kGrid + gx];
  }
  const double d = static_cast<double>(n);
  const double mx = sx / d;
  const double my = sy / d;
  const double cov = sxy / d - mx * my;
  const double vx = sxx / d - mx * mx;
  const double vy = syy / d - my * my;
  const double corr = cov / std::sqrt(vx * vy);
  table->AddRow({DistributionName(dist), TablePrinter::Num(mx, 3),
                 TablePrinter::Num(my, 3), TablePrinter::Num(corr, 3),
                 TablePrinter::Num(mx + my, 3)});
  BenchResultWriter::Row& row = json->AddRow(DistributionName(dist));
  row.metrics["mean_x1"] = mx;
  row.metrics["mean_x2"] = my;
  row.metrics["corr"] = corr;
  row.metrics["mean_sum"] = mx + my;

  std::printf("\n%s density (d=2, %zu points; darker = denser):\n",
              DistributionName(dist), n);
  const char* shades = " .:-=+*#%@";
  int max_count = 1;
  for (int c : density) max_count = std::max(max_count, c);
  for (int row = kGrid - 1; row >= 0; --row) {
    std::printf("  ");
    for (int col = 0; col < kGrid; ++col) {
      const int c = density[row * kGrid + col];
      const int shade = std::min(9, c * 10 / max_count);
      std::printf("%c%c", shades[shade], shades[shade]);
    }
    std::printf("\n");
  }
}

int Main() {
  const Scale scale = GetScale();
  const std::size_t n = scale == Scale::kPaper    ? 1000000
                        : scale == Scale::kSmoke  ? 20000
                                                  : 200000;
  WorkloadSpec base = BaselineSpec(scale);
  base.dim = 2;
  PrintPreamble("Figure 13: dataset shapes",
                "Figure 13 of Mouratidis et al., SIGMOD 2006", base);
  BenchResultWriter json("fig13_datasets");
  json.Config("points", static_cast<double>(n));
  TablePrinter table(
      {"dist", "mean_x1", "mean_x2", "corr(x1,x2)", "mean_sum"});
  Summarize(Distribution::kIndependent, n, &table, &json);
  Summarize(Distribution::kAntiCorrelated, n, &table, &json);
  std::printf("\n");
  table.Print(std::cout);
  json.Write();
  PrintExpectation(
      "IND fills the unit square uniformly (corr ~ 0); ANT concentrates in "
      "a band around the anti-diagonal with strongly negative correlation "
      "(large x1 forces small x2).");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
