// Ablation: heap-seeded cell traversal vs the naive sort-all-cells
// strawman (Section 4.2).
//
// The naive method computes maxscore for every cell and sorts them before
// scanning; the paper's traversal en-heaps only the frontier reachable
// from the best-corner cell. Both visit the same minimal set of cells,
// but the naive setup cost is Theta(#cells log #cells) per computation.
// google-benchmark micro-suite over grid resolutions and k.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/topk_compute.h"
#include "stream/generators.h"

namespace topkmon {
namespace {

struct Fixture {
  std::vector<Record> records;
  std::unique_ptr<Grid> grid;
  LinearFunction f{{0.6, 0.8, 0.3, 0.9}};

  Fixture(int cells_per_axis, std::size_t n) {
    const int dim = 4;
    grid = std::make_unique<Grid>(dim, cells_per_axis);
    RecordSource source(
        MakeGenerator(Distribution::kIndependent, dim, 42));
    for (std::size_t i = 0; i < n; ++i) {
      records.push_back(source.Next(0));
      grid->InsertPoint(grid->LocateCell(records.back().position),
                        records.back().id, records.back().position);
    }
  }
};

void BM_HeapTraversal(benchmark::State& state) {
  const Fixture fixture(static_cast<int>(state.range(0)), 100000);
  const int k = static_cast<int>(state.range(1));
  TraversalScratch scratch;
  for (auto _ : state) {
    TopKComputation out =
        ComputeTopK(*fixture.grid, fixture.f, k, &scratch);
    benchmark::DoNotOptimize(out.result.data());
  }
  state.counters["cells"] = static_cast<double>(
      fixture.grid->num_cells());
}

void BM_NaiveSortAllCells(benchmark::State& state) {
  const Fixture fixture(static_cast<int>(state.range(0)), 100000);
  const int k = static_cast<int>(state.range(1));
  for (auto _ : state) {
    TopKComputation out = ComputeTopKNaive(*fixture.grid, fixture.f, k);
    benchmark::DoNotOptimize(out.result.data());
  }
  state.counters["cells"] = static_cast<double>(
      fixture.grid->num_cells());
}

// Sweep (cells per axis, k): the naive variant's cost is dominated by the
// grid size; the heap traversal's by the influence region only.
BENCHMARK(BM_HeapTraversal)
    ->ArgsProduct({{6, 9, 12, 15}, {1, 20, 100}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NaiveSortAllCells)
    ->ArgsProduct({{6, 9, 12, 15}, {1, 20, 100}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace topkmon

BENCHMARK_MAIN();
