// Wire→engine ingest-path microbench: copying vs. zero-copy decode.
//
// The TCP server used to decode every kIngest frame into a fresh
// std::vector<Record> (DecodeNetBody) and then push each record into the
// IngestQueue one at a time, copying the Point again into the queue's
// storage. The zero-copy path (DecodeIngestBodyToArena + PushBatch)
// decodes the frame straight into the queue's RecordArena and admits the
// whole span in one call, so a record's payload is stored exactly once
// between the socket and the drain copy handed to the engine.
//
// Four measured configurations, each pumping the same pre-encoded ingest
// frames (batch=512, d=2) through one leg of the path:
//
//   decode-copying    DecodeNetBody into a fresh vector per frame
//   decode-zerocopy   DecodeIngestBodyToArena into a recycled arena
//   e2e-copying       copying decode + per-record TryPush + drain/commit
//   e2e-zerocopy      arena decode + PushBatch + drain/commit
//
// The two decode legs are NOT like-for-like: the arena decoder also runs
// the per-record ValidatePoint/arrival screening that the copying path
// defers to admission time (the frame-boundary validation contract), so
// it does strictly more work per tuple. The e2e legs are the fair
// comparison — both end with every record validated, admitted, drained
// and committed.
//
// Reported per row: rec_per_s (gated by tools/compare_bench_json.py) and
// bytes_copied_per_record — the Record-payload stores a tuple suffers
// between wire decode and the drained batch, counted analytically:
// copying e2e stores three times (decode vector, queue arena on TryPush,
// drain copy), zero-copy e2e twice (arena on decode, drain copy), the
// decode-only legs once each.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common/harness.h"
#include "common/record.h"
#include "net/protocol.h"
#include "service/ingest_queue.h"
#include "stream/record_arena.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace topkmon {
namespace bench {
namespace {

constexpr int kDim = 2;
constexpr std::size_t kBatch = 512;  // records per wire frame
// Distinct pre-encoded frames cycled through each loop, arrivals
// non-decreasing across the set so queue admission sees a plausible
// stream rather than one frozen timestamp.
constexpr std::size_t kDistinctFrames = 64;

std::vector<std::string> EncodeFrames() {
  std::vector<std::string> bodies;
  bodies.reserve(kDistinctFrames);
  Rng rng(7);
  RecordId next_id = 1;
  Timestamp arrival = 1;
  for (std::size_t f = 0; f < kDistinctFrames; ++f) {
    std::vector<Record> tuples;
    tuples.reserve(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      Record r;
      r.id = next_id++;
      r.arrival = arrival;
      r.position = Point(kDim);
      for (int d = 0; d < kDim; ++d) r.position[d] = rng.Uniform();
      tuples.push_back(r);
      if (i % 8 == 7) ++arrival;  // a few tuples share each timestamp
    }
    std::string body;
    EncodeIngest(tuples, &body);
    bodies.push_back(std::move(body));
  }
  return bodies;
}

IngestOptions QueueOptions() {
  IngestOptions opt;
  opt.capacity = 1 << 16;
  opt.max_batch = 8192;
  opt.slack = 0;  // release immediately: the bench drains after each frame
  return opt;
}

struct LegResult {
  double seconds = 0.0;
  std::size_t records = 0;
  double stores_per_record = 0.0;
  double rec_per_s() const {
    return seconds > 0.0 ? static_cast<double>(records) / seconds : 0.0;
  }
};

LegResult DecodeCopying(const std::vector<std::string>& bodies,
                        std::size_t frames) {
  LegResult result;
  result.stores_per_record = 1.0;
  Stopwatch watch;
  for (std::size_t f = 0; f < frames; ++f) {
    const std::string& body = bodies[f % bodies.size()];
    NetMessage msg;
    const Status status = DecodeNetBody(body.data(), body.size(), &msg);
    if (!status.ok()) std::abort();
    result.records += msg.tuples.size();
  }
  result.seconds = watch.ElapsedSeconds();
  return result;
}

LegResult DecodeZeroCopy(const std::vector<std::string>& bodies,
                         std::size_t frames) {
  LegResult result;
  result.stores_per_record = 1.0;
  RecordArena arena;
  Stopwatch watch;
  for (std::size_t f = 0; f < frames; ++f) {
    const std::string& body = bodies[f % bodies.size()];
    IngestFrameView view;
    const Status status = DecodeIngestBodyToArena(
        body.data(), body.size(), kDim, arena, &view);
    if (!status.ok()) std::abort();
    result.records += view.count;
    arena.Release(view.records, view.count);
    // The service advances the arena epoch once per drain cycle, which
    // covers several wire frames; model a ~8-frame cycle so chunks fill
    // before they seal and the free list gets exercised.
    if (f % 8 == 7) arena.RetireThrough(arena.AdvanceEpoch());
  }
  arena.RetireThrough(arena.AdvanceEpoch());
  result.seconds = watch.ElapsedSeconds();
  return result;
}

LegResult EndToEndCopying(const std::vector<std::string>& bodies,
                          std::size_t frames) {
  LegResult result;
  result.stores_per_record = 3.0;  // decode vector + queue arena + drain
  IngestQueue queue(QueueOptions());
  std::vector<Record> drained;
  Timestamp cycle_ts = 0;
  Stopwatch watch;
  for (std::size_t f = 0; f < frames; ++f) {
    const std::string& body = bodies[f % bodies.size()];
    NetMessage msg;
    if (!DecodeNetBody(body.data(), body.size(), &msg).ok()) std::abort();
    for (const Record& r : msg.tuples) {
      if (!queue.TryPush(r.position, r.arrival)) std::abort();
    }
    drained.clear();
    result.records += queue.DrainBatch(&drained, &cycle_ts,
                                       std::chrono::milliseconds(0),
                                       /*flush_all=*/true);
    queue.CommitDrained();
  }
  result.seconds = watch.ElapsedSeconds();
  return result;
}

LegResult EndToEndZeroCopy(const std::vector<std::string>& bodies,
                           std::size_t frames) {
  LegResult result;
  result.stores_per_record = 2.0;  // arena on decode + drain copy
  IngestQueue queue(QueueOptions());
  std::vector<Record> drained;
  Timestamp cycle_ts = 0;
  Stopwatch watch;
  for (std::size_t f = 0; f < frames; ++f) {
    const std::string& body = bodies[f % bodies.size()];
    IngestFrameView view;
    const Status status = DecodeIngestBodyToArena(
        body.data(), body.size(), kDim, queue.arena(), &view);
    if (!status.ok()) std::abort();
    const std::size_t pushed =
        queue.PushBatch(view.records, view.count, &queue.arena());
    if (pushed < view.count) {
      queue.arena().Release(view.records + pushed, view.count - pushed);
      std::abort();  // capacity >> batch and we drain every frame
    }
    drained.clear();
    result.records += queue.DrainBatch(&drained, &cycle_ts,
                                       std::chrono::milliseconds(0),
                                       /*flush_all=*/true);
    queue.CommitDrained();
  }
  result.seconds = watch.ElapsedSeconds();
  return result;
}

int Main() {
  const Scale scale = GetScale();
  std::size_t frames = 8000;
  if (scale == Scale::kSmoke) {
    frames = 2000;
  } else if (scale == Scale::kPaper) {
    frames = 32000;
  }
  const std::size_t total = frames * kBatch;

  std::printf("== Ingest path: copying vs. zero-copy wire decode ==\n");
  std::printf(
      "d=%d  batch=%zu records/frame  frames=%zu (%zu records)  "
      "scale=%s\n\n",
      kDim, kBatch, frames, total, ScaleName(scale));

  const std::vector<std::string> bodies = EncodeFrames();
  const double record_bytes =
      static_cast<double>(sizeof(Record));  // one in-memory store

  BenchResultWriter json("ingest_path");
  json.Config("dim", static_cast<double>(kDim));
  json.Config("wire_batch", static_cast<double>(kBatch));
  json.Config("frames", static_cast<double>(frames));
  json.Config("record_bytes", record_bytes);

  struct Leg {
    const char* label;
    const char* stage;
    const char* path;
    LegResult (*run)(const std::vector<std::string>&, std::size_t);
  };
  const Leg legs[] = {
      {"decode-copying", "decode", "copying", DecodeCopying},
      {"decode-zerocopy", "decode", "zerocopy", DecodeZeroCopy},
      {"e2e-copying", "e2e", "copying", EndToEndCopying},
      {"e2e-zerocopy", "e2e", "zerocopy", EndToEndZeroCopy},
  };

  TablePrinter table({"leg", "records", "wall s", "rec/s", "copied B/rec"});
  for (const Leg& leg : legs) {
    // One untimed warm-up pass over the distinct frames faults in the
    // bodies and the allocator before the measured run.
    leg.run(bodies, kDistinctFrames);
    const LegResult r = leg.run(bodies, frames);
    const double copied = r.stores_per_record * record_bytes;
    table.AddRow({leg.label,
                  TablePrinter::Int(static_cast<std::int64_t>(r.records)),
                  TablePrinter::Num(r.seconds, 3),
                  TablePrinter::Int(static_cast<std::int64_t>(r.rec_per_s())),
                  TablePrinter::Int(static_cast<std::int64_t>(copied))});
    BenchResultWriter::Row& row = json.AddRow(leg.label);
    row.tags["stage"] = leg.stage;
    row.tags["path"] = leg.path;
    row.metrics["records"] = static_cast<double>(r.records);
    row.metrics["wall_s"] = r.seconds;
    row.metrics["rec_per_s"] = r.rec_per_s();
    row.metrics["bytes_copied_per_record"] = copied;
  }
  table.Print(std::cout);
  json.Write();

  PrintExpectation(
      "e2e-zerocopy should beat e2e-copying: one payload store instead of "
      "two before the drain copy, and one admission call per frame "
      "instead of one per record. The decode-only rows bound each leg's "
      "raw parse cost; the arena row carries the per-record validation "
      "the copying path pays later, so it may trail on that leg alone.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
