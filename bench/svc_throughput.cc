// Service-layer benchmark: multi-client ingest throughput and
// ingest-to-delta latency.
//
// The paper measures per-cycle CPU time of a single-threaded engine; this
// bench measures what a *client* of the MonitorService experiences: how
// many records/second C concurrent producers can push through batched
// ingest + cycle processing, and how long a tuple takes from Push() until
// the resulting delta event is polled from a subscription buffer (p50 and
// p99 over all delivered events). Clients are swept over 1/2/4/8; each
// client is one producer thread plus one session holding queries whose
// deltas a dedicated subscriber thread drains.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common/harness.h"
#include "core/tma_engine.h"
#include "service/monitor_service.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace topkmon {
namespace bench {
namespace {

struct RunResult {
  double wall_seconds = 0.0;
  double throughput = 0.0;  ///< records / second end to end
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t events = 0;
  ServiceStats stats;
};

RunResult RunClients(int clients, std::size_t records_per_client,
                     std::size_t queries_per_client, int k,
                     std::size_t window) {
  ServiceOptions options;
  options.ingest.slack = 8;
  options.ingest.max_batch = 4096;
  options.hub.buffer_capacity = 1 << 16;
  options.session.max_queries_per_session =
      static_cast<int>(queries_per_client);
  options.drain_wait = std::chrono::milliseconds(2);

  GridEngineOptions engine_opt;
  engine_opt.dim = 2;
  engine_opt.window = WindowSpec::Count(window);
  MonitorService service(std::make_unique<TmaEngine>(engine_opt), options);

  // Register every client's queries before the stream starts.
  std::vector<SessionId> sessions;
  std::uint64_t query_seed = 1;
  for (int c = 0; c < clients; ++c) {
    const auto session =
        service.OpenSession("client-" + std::to_string(c));
    if (!session.ok()) std::abort();
    sessions.push_back(*session);
    for (std::size_t q = 0; q < queries_per_client; ++q) {
      QuerySpec spec;  // id assigned by the service
      spec.k = k;
      Rng rng(query_seed++);
      spec.function = MakeRandomFunction(FunctionFamily::kLinear, 2,
                                         [&rng] { return rng.Uniform(); });
      if (!service.Register(*session, spec).ok()) std::abort();
    }
  }

  // push_wall[ts] = seconds-stopwatch reading when logical ts was pushed.
  const std::size_t total = static_cast<std::size_t>(clients) *
                            records_per_client;
  std::vector<double> push_wall(total + 1, 0.0);
  std::atomic<Timestamp> clock{1};
  Stopwatch watch;

  // One subscriber per session, draining delta events as they appear and
  // sampling ingest->delta latency against the event's cycle timestamp.
  std::atomic<bool> done{false};
  std::vector<std::vector<double>> latencies(sessions.size());
  std::vector<std::thread> subscribers;
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    subscribers.emplace_back([&, s] {
      std::vector<DeltaEvent> events;
      while (true) {
        events.clear();
        const std::size_t n = service.WaitDeltas(
            sessions[s], 4096, std::chrono::milliseconds(20), &events);
        const double now = watch.ElapsedSeconds();
        for (const DeltaEvent& e : events) {
          const Timestamp when = e.delta.when;
          if (when >= 1 && static_cast<std::size_t>(when) <= total) {
            latencies[s].push_back(
                now - push_wall[static_cast<std::size_t>(when)]);
          }
        }
        if (n == 0 && done.load()) break;
      }
    });
  }

  std::vector<std::thread> producers;
  for (int c = 0; c < clients; ++c) {
    producers.emplace_back([&, c] {
      auto gen = MakeGenerator(Distribution::kIndependent, 2,
                               1000 + static_cast<std::uint64_t>(c));
      for (std::size_t i = 0; i < records_per_client; ++i) {
        const Timestamp ts = clock.fetch_add(1);
        push_wall[static_cast<std::size_t>(ts)] = watch.ElapsedSeconds();
        if (!service.Ingest(gen->NextPoint(), ts).ok()) std::abort();
      }
    });
  }
  for (std::thread& t : producers) t.join();
  if (!service.Flush().ok()) std::abort();
  const double wall = watch.ElapsedSeconds();
  service.Shutdown();
  done.store(true);
  for (std::thread& t : subscribers) t.join();

  RunResult out;
  out.wall_seconds = wall;
  out.throughput = static_cast<double>(total) / wall;
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  out.events = all.size();
  out.p50_ms = Percentile(all, 0.50) * 1e3;
  out.p99_ms = Percentile(all, 0.99) * 1e3;
  out.stats = service.stats();
  return out;
}

int Main() {
  const Scale scale = GetScale();
  std::size_t records_per_client = 40000;
  std::size_t window = 10000;
  if (scale == Scale::kSmoke) {
    records_per_client = 2000;
    window = 1000;
  } else if (scale == Scale::kPaper) {
    records_per_client = 200000;
    window = 50000;
  }
  const std::size_t queries_per_client = 4;
  const int k = 10;

  std::printf(
      "Service layer: multi-client continuous-query serving over TMA\n"
      "records/client=%zu  window=N=%zu  queries/client=%zu  k=%d  "
      "scale=%s\n\n",
      records_per_client, window, queries_per_client, k, ScaleName(scale));

  BenchResultWriter json("svc_throughput");
  json.Config("records_per_client", static_cast<double>(records_per_client));
  json.Config("window", static_cast<double>(window));
  json.Config("queries_per_client",
              static_cast<double>(queries_per_client));
  json.Config("k", static_cast<double>(k));

  TablePrinter table({"clients", "ingest [rec/s]", "wall [s]",
                      "p50 lat [ms]", "p99 lat [ms]", "delta events",
                      "cycles", "dropped"});
  for (int clients : {1, 2, 4, 8}) {
    const RunResult r =
        RunClients(clients, records_per_client, queries_per_client, k,
                   window);
    BenchResultWriter::Row& row =
        json.AddRow("clients-" + std::to_string(clients));
    row.metrics["clients"] = static_cast<double>(clients);
    row.metrics["ingest_rec_per_s"] = r.throughput;
    row.metrics["wall_s"] = r.wall_seconds;
    row.metrics["p50_lat_ms"] = r.p50_ms;
    row.metrics["p99_lat_ms"] = r.p99_ms;
    row.metrics["delta_events"] = static_cast<double>(r.events);
    row.metrics["cycles"] = static_cast<double>(r.stats.cycles);
    row.metrics["deltas_dropped"] =
        static_cast<double>(r.stats.deltas_dropped);
    table.AddRow({TablePrinter::Int(clients),
                  TablePrinter::Num(r.throughput, 5),
                  TablePrinter::Num(r.wall_seconds, 4),
                  TablePrinter::Num(r.p50_ms, 4),
                  TablePrinter::Num(r.p99_ms, 4),
                  TablePrinter::Int(static_cast<std::int64_t>(r.events)),
                  TablePrinter::Int(static_cast<std::int64_t>(
                      r.stats.cycles)),
                  TablePrinter::Int(static_cast<std::int64_t>(
                      r.stats.deltas_dropped))});
  }
  table.Print(std::cout);
  json.Write();
  PrintExpectation(
      "ingest throughput stays roughly flat as clients grow (the shared "
      "engine is the bottleneck, batching amortizes it) while p99 "
      "ingest->delta latency grows with the number of queries the cycle "
      "driver must maintain per batch");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
