// Journal-overhead and recovery-time benchmark.
//
// Two questions a durable deployment asks of the cycle journal:
//   1. What does write-ahead journaling cost on the ingest path? Measured
//      two ways:
//      (a) pipeline throughput — the driver loop distilled: identical
//          fixed-size batches pushed through AppendCycle + ProcessCycle
//          for every configuration, so the journal cost is isolated from
//          batch-formation dynamics. The acceptance bar for this repo:
//          < 15% regression at the default policy (sync=none).
//      (b) service end-to-end — one producer through a journaled
//          MonitorService vs the unjournaled baseline (best of 3 runs;
//          the ingest queue's slack-gate batching makes single runs
//          noisy).
//   2. How long does recovery take, and how well do snapshots bound it?
//      The journals written in part 1a are replayed into fresh engines —
//      with frequent snapshot rotation (bounded tail replay) and
//      anchored only by the initial empty snapshot (full replay).

#include <stdlib.h>

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/common/harness.h"
#include "core/tma_engine.h"
#include "journal/recovery.h"
#include "service/monitor_service.h"
#include "stream/generators.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace topkmon {
namespace bench {
namespace {

constexpr std::size_t kBatchSize = 512;

struct BenchConfig {
  std::size_t records = 0;
  std::size_t window = 0;
  std::size_t queries = 4;
  int k = 10;
};

/// mkdtemp wrapper; aborts on failure (benches have no recovery path).
std::string MakeTempDir() {
  char tmpl[] = "/tmp/topkmon_bench_journal_XXXXXX";
  const char* made = ::mkdtemp(tmpl);
  if (made == nullptr) std::abort();
  return made;
}

void RemoveDirRecursive(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "warning: failed to clean %s\n", dir.c_str());
  }
}

std::unique_ptr<MonitorEngine> MakeTma(const BenchConfig& config) {
  GridEngineOptions opt;
  opt.dim = 2;
  opt.window = WindowSpec::Count(config.window);
  return std::make_unique<TmaEngine>(opt);
}

std::vector<QuerySpec> BenchQueries(const BenchConfig& config) {
  std::vector<QuerySpec> out;
  Rng rng(99);
  for (std::size_t q = 0; q < config.queries; ++q) {
    QuerySpec spec;
    spec.id = static_cast<QueryId>(q + 1);
    spec.k = config.k;
    spec.function = MakeRandomFunction(FunctionFamily::kLinear, 2,
                                       [&rng] { return rng.Uniform(); });
    out.push_back(std::move(spec));
  }
  return out;
}

// ---- part 1a: deterministic pipeline throughput ------------------------

struct PipelineRun {
  double throughput = 0.0;  ///< records / second through the driver loop
  std::uint64_t journal_bytes = 0;
  std::uint64_t snapshots = 0;
  std::string dir;  ///< journal dir (empty for the baseline)
};

/// Drives identical batches through AppendCycle + ProcessCycle. With
/// `journal` null this is the unjournaled baseline.
PipelineRun RunPipeline(const BenchConfig& config,
                        const JournalOptions* journal) {
  PipelineRun run;
  std::unique_ptr<CycleJournalWriter> writer;
  if (journal != nullptr) {
    run.dir = journal->dir;
    auto opened = CycleJournalWriter::Open(*journal, JournalSnapshot{});
    if (!opened.ok()) {
      std::fprintf(stderr, "journal open failed: %s\n",
                   opened.status().ToString().c_str());
      std::abort();
    }
    writer = std::move(*opened);
  }
  auto engine = MakeTma(config);
  const std::vector<QuerySpec> queries = BenchQueries(config);
  std::vector<JournaledQuery> live;
  for (const QuerySpec& spec : queries) {
    live.push_back({spec, "bench"});
    if (writer != nullptr && !writer->AppendRegister(live.back()).ok()) {
      std::abort();
    }
    if (!engine->RegisterQuery(spec).ok()) std::abort();
  }
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 1234));
  const std::size_t cycles = config.records / kBatchSize;
  Stopwatch watch;
  for (std::size_t c = 1; c <= cycles; ++c) {
    const Timestamp ts = static_cast<Timestamp>(c);
    const std::vector<Record> batch = source.NextBatch(kBatchSize, ts);
    if (writer != nullptr && !writer->AppendCycle(ts, batch).ok()) {
      std::abort();
    }
    if (!engine->ProcessCycle(ts, batch).ok()) std::abort();
    if (writer != nullptr && writer->SnapshotDue()) {
      auto snap = engine->SnapshotState();
      if (!snap.ok()) std::abort();
      JournalSnapshot anchor;
      anchor.last_cycle_ts = snap->last_cycle;
      anchor.window = std::move(snap->window);
      anchor.next_record_id =
          anchor.window.empty() ? 0 : anchor.window.back().id + 1;
      anchor.next_query_id = config.queries + 1;
      anchor.live_queries = live;
      if (!writer->RotateWithSnapshot(anchor).ok()) std::abort();
    }
  }
  const double wall = watch.ElapsedSeconds();
  if (writer != nullptr) {
    if (!writer->Close().ok()) std::abort();
    run.journal_bytes = writer->stats().bytes_written;
    run.snapshots = writer->stats().snapshots_written;
  }
  run.throughput =
      static_cast<double>(cycles * kBatchSize) / std::max(wall, 1e-9);
  return run;
}

// ---- part 1b: service end-to-end ---------------------------------------

/// One producer streaming through the full service; returns end-to-end
/// throughput (push to fully applied). Best of `repeats` runs.
double RunService(const BenchConfig& config, bool journaled, int repeats) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    ServiceOptions options;
    options.ingest.slack = 8;
    options.ingest.max_batch = 4096;
    options.hub.buffer_capacity = 64;  // subscribers absent; cap buffers
    options.session.max_queries_per_session =
        static_cast<int>(config.queries);
    options.drain_wait = std::chrono::milliseconds(2);
    std::string dir;
    if (journaled) {
      dir = MakeTempDir();
      options.journal.dir = dir;
      options.journal.snapshot_on_shutdown = false;
    }
    {
      MonitorService service(MakeTma(config), options);
      const SessionId session = *service.OpenSession("bench");
      for (const QuerySpec& spec : BenchQueries(config)) {
        QuerySpec s = spec;  // the service assigns ids
        if (!service.Register(session, s).ok()) std::abort();
      }
      auto gen = MakeGenerator(Distribution::kIndependent, 2, 1234);
      Stopwatch watch;
      for (std::size_t i = 0; i < config.records; ++i) {
        if (!service.Ingest(gen->NextPoint(),
                            static_cast<Timestamp>(i + 1)).ok()) {
          std::abort();
        }
      }
      if (!service.Flush().ok()) std::abort();
      const double wall = watch.ElapsedSeconds();
      service.Shutdown();
      if (!service.journal_status().ok()) std::abort();
      best = std::max(best, static_cast<double>(config.records) / wall);
    }
    if (!dir.empty()) RemoveDirRecursive(dir);
  }
  return best;
}

// ---- part 2: recovery --------------------------------------------------

struct RecoveryRun {
  double seconds = 0.0;
  std::uint64_t cycles_replayed = 0;
  std::size_t window = 0;
};

RecoveryRun RunRecovery(const BenchConfig& config, const std::string& dir) {
  auto engine = MakeTma(config);
  Stopwatch watch;
  auto report = RecoveryDriver::Replay(dir, *engine);
  const double wall = watch.ElapsedSeconds();
  if (!report.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 report.status().ToString().c_str());
    std::abort();
  }
  return RecoveryRun{wall, report->cycles_replayed, report->window_size};
}

int Main() {
  const Scale scale = GetScale();
  BenchConfig config;
  config.records = 400000;
  config.window = 10000;
  int repeats = 3;
  if (scale == Scale::kSmoke) {
    config.records = 20000;
    config.window = 1000;
    repeats = 2;
  } else if (scale == Scale::kPaper) {
    config.records = 2000000;
    config.window = 50000;
  }

  std::printf(
      "Durable cycle journal: write-ahead overhead and recovery time\n"
      "records=%zu  batch=%zu  window=N=%zu  queries=%zu  k=%d  "
      "engine=TMA  scale=%s\n\n",
      config.records, kBatchSize, config.window, config.queries, config.k,
      ScaleName(scale));

  BenchResultWriter json("svc_journal");
  json.Config("records", static_cast<double>(config.records));
  json.Config("batch", static_cast<double>(kBatchSize));
  json.Config("window", static_cast<double>(config.window));
  json.Config("queries", static_cast<double>(config.queries));
  json.Config("k", static_cast<double>(config.k));
  json.Config("engine", "TMA");

  struct Variant {
    const char* label;
    SyncPolicy sync;
    std::uint64_t snapshot_every_cycles;
    std::uint64_t sync_interval_cycles;
    std::chrono::milliseconds sync_interval_ms;
  };
  const Variant variants[] = {
      {"journal sync=none (default)", SyncPolicy::kNone, 0, 0,
       std::chrono::milliseconds(0)},
      {"journal sync=none +snapshots", SyncPolicy::kNone, 100, 0,
       std::chrono::milliseconds(0)},
      {"journal sync=interval", SyncPolicy::kInterval, 0, 0,
       std::chrono::milliseconds(0)},
      // Group commit: one fdatasync covers 8 cycles (or 5 ms, whichever
      // first) — the durability/throughput middle ground between
      // interval-by-records and always.
      {"journal group-commit 8cyc/5ms", SyncPolicy::kInterval, 0, 8,
       std::chrono::milliseconds(5)},
      {"journal sync=always", SyncPolicy::kAlways, 0, 0,
       std::chrono::milliseconds(0)},
  };

  std::printf(
      "Pipeline (identical %zu-record batches per cycle, best of %d "
      "runs):\n",
      kBatchSize, repeats);
  PipelineRun baseline;
  for (int r = 0; r < repeats; ++r) {
    const PipelineRun run = RunPipeline(config, nullptr);
    if (run.throughput > baseline.throughput) baseline = run;
  }
  TablePrinter pipeline_table({"configuration", "ingest [rec/s]",
                               "overhead [%]", "journal [MiB]",
                               "snapshots"});
  pipeline_table.AddRow({"no journal (baseline)",
                         TablePrinter::Num(baseline.throughput, 5), "-",
                         "-", "-"});
  json.AddRow("pipeline/no-journal").metrics["ingest_rec_per_s"] =
      baseline.throughput;
  std::vector<std::pair<std::string, std::string>> journals;  // label, dir
  for (const Variant& v : variants) {
    PipelineRun best;
    for (int r = 0; r < repeats; ++r) {
      JournalOptions jopt;
      jopt.dir = MakeTempDir();
      jopt.sync = v.sync;
      jopt.snapshot_every_cycles = v.snapshot_every_cycles;
      jopt.sync_interval_cycles = v.sync_interval_cycles;
      jopt.sync_interval_ms = v.sync_interval_ms;
      jopt.segment_bytes = 1u << 30;  // rotate on the cycle interval only
      const PipelineRun run = RunPipeline(config, &jopt);
      if (run.throughput > best.throughput) {
        if (!best.dir.empty()) RemoveDirRecursive(best.dir);
        best = run;
      } else {
        RemoveDirRecursive(run.dir);
      }
    }
    const double overhead =
        100.0 * (baseline.throughput - best.throughput) /
        baseline.throughput;
    pipeline_table.AddRow(
        {v.label, TablePrinter::Num(best.throughput, 5),
         TablePrinter::Num(overhead, 3),
         TablePrinter::Num(
             static_cast<double>(best.journal_bytes) / (1024.0 * 1024.0), 4),
         TablePrinter::Int(static_cast<std::int64_t>(best.snapshots))});
    BenchResultWriter::Row& row =
        json.AddRow(std::string("pipeline/") + v.label);
    row.metrics["ingest_rec_per_s"] = best.throughput;
    row.metrics["overhead_pct"] = overhead;
    row.metrics["journal_mib"] =
        static_cast<double>(best.journal_bytes) / (1024.0 * 1024.0);
    row.metrics["snapshots"] = static_cast<double>(best.snapshots);
    journals.emplace_back(v.label, best.dir);
  }
  pipeline_table.Print(std::cout);

  std::printf(
      "\nService end-to-end (1 producer, best of %d runs; slack-gate "
      "batching makes single runs noisy):\n",
      repeats);
  const double svc_base = RunService(config, /*journaled=*/false, repeats);
  const double svc_journaled =
      RunService(config, /*journaled=*/true, repeats);
  TablePrinter service_table(
      {"configuration", "ingest [rec/s]", "overhead [%]"});
  service_table.AddRow(
      {"no journal", TablePrinter::Num(svc_base, 5), "-"});
  service_table.AddRow(
      {"journal sync=none", TablePrinter::Num(svc_journaled, 5),
       TablePrinter::Num(100.0 * (svc_base - svc_journaled) / svc_base,
                         3)});
  service_table.Print(std::cout);
  json.AddRow("service/no-journal").metrics["ingest_rec_per_s"] = svc_base;
  {
    BenchResultWriter::Row& row = json.AddRow("service/journal-sync-none");
    row.metrics["ingest_rec_per_s"] = svc_journaled;
    row.metrics["overhead_pct"] =
        100.0 * (svc_base - svc_journaled) / svc_base;
  }

  std::printf("\nRecovery (replay each journal into a fresh TMA engine):\n");
  TablePrinter recovery_table(
      {"journal", "recover [ms]", "cycles replayed", "window"});
  for (const auto& [label, dir] : journals) {
    const RecoveryRun run = RunRecovery(config, dir);
    recovery_table.AddRow(
        {label, TablePrinter::Num(run.seconds * 1e3, 4),
         TablePrinter::Int(static_cast<std::int64_t>(run.cycles_replayed)),
         TablePrinter::Int(static_cast<std::int64_t>(run.window))});
    BenchResultWriter::Row& row = json.AddRow("recovery/" + label);
    row.metrics["recover_ms"] = run.seconds * 1e3;
    row.metrics["cycles_replayed"] =
        static_cast<double>(run.cycles_replayed);
    row.metrics["window"] = static_cast<double>(run.window);
    RemoveDirRecursive(dir);
  }
  recovery_table.Print(std::cout);
  json.Write();

  PrintExpectation(
      "service-level ingest throughput regresses well under 15% at the "
      "default sync=none policy (~25 ns/record of delta-encoded append + "
      "hardware CRC against ~350 ns/record of queue + cycle work); the "
      "journal-less pipeline lens is stricter because the bare engine "
      "runs at ~130 ns/record; sync=interval/always add real fdatasync "
      "stalls and show it, with group-commit (several cycles per sync, "
      "time-bounded) recovering most of the sync=always gap at a bounded "
      "loss window; snapshot rotation bounds recovery to the tail "
      "after the last anchor, so the '+snapshots' journal recovers in a "
      "fraction of the full-replay time at the cost of periodic snapshot "
      "writes");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
