// Figure 21: CPU time versus d for non-linear preference functions.
//
// (a)/(b): f(p) = prod_i (a_i + x_i); (c)/(d): f(p) = sum_i a_i * x_i^2 —
// both increasingly monotone, both supported unchanged by the grid
// framework. The relative performance mirrors the linear case (Figure
// 15), demonstrating the generality of the methods.

#include <iostream>

#include "bench/common/harness.h"

namespace topkmon {
namespace bench {
namespace {

void RunFamily(const WorkloadSpec& base, FunctionFamily family,
               const char* label, const char* family_slug,
               BenchResultWriter* json) {
  std::printf("=== %s ===\n", label);
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAntiCorrelated}) {
    std::printf("--- %s ---\n", DistributionName(dist));
    TablePrinter table({"d", "TSL [s]", "TMA [s]", "SMA [s]", "TSL/SMA"});
    for (int d = 2; d <= 6; ++d) {
      WorkloadSpec spec = base;
      spec.dim = d;
      spec.family = family;
      spec.distribution = dist;
      const SimulationReport tsl = RunEngine(EngineKind::kTsl, spec);
      const SimulationReport tma = RunEngine(EngineKind::kTma, spec);
      const SimulationReport sma = RunEngine(EngineKind::kSma, spec);
      table.AddRow(
          {TablePrinter::Int(d), TablePrinter::Num(tsl.monitor_seconds, 4),
           TablePrinter::Num(tma.monitor_seconds, 4),
           TablePrinter::Num(sma.monitor_seconds, 4),
           TablePrinter::Num(tsl.monitor_seconds / sma.monitor_seconds,
                             3)});
      BenchResultWriter::Row& row =
          json->AddRow(std::string(family_slug) + "/" +
                       DistributionName(dist) + "/d" + std::to_string(d));
      row.tags["family"] = family_slug;
      row.tags["dist"] = DistributionName(dist);
      row.metrics["dim"] = static_cast<double>(d);
      row.metrics["tsl_seconds"] = tsl.monitor_seconds;
      row.metrics["tma_seconds"] = tma.monitor_seconds;
      row.metrics["sma_seconds"] = sma.monitor_seconds;
    }
    table.Print(std::cout);
    std::printf("\n");
  }
}

int Main() {
  const Scale scale = GetScale();
  WorkloadSpec base = BaselineSpec(scale);
  PrintPreamble("Figure 21: CPU time vs d for non-linear functions",
                "Figure 21(a)-(d) of Mouratidis et al., SIGMOD 2006", base);
  BenchResultWriter json("fig21_nonlinear");
  json.Config("window", static_cast<double>(base.window_size));
  json.Config("queries", static_cast<double>(base.num_queries));
  RunFamily(base, FunctionFamily::kProduct,
            "Figure 21(a)/(b): f(p) = prod(a_i + x_i)", "product", &json);
  RunFamily(base, FunctionFamily::kSumOfSquares,
            "Figure 21(c)/(d): f(p) = sum a_i * x_i^2", "sum_of_squares",
            &json);
  json.Write();
  PrintExpectation(
      "same relative ordering as the linear case (Figure 15): TSL >> TMA "
      "> SMA across dimensionalities and both distributions, illustrating "
      "the generality of the framework for monotone functions.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
