// Replication lag and leader-overhead benchmark.
//
// Two questions a warm-standby deployment asks of journal shipping:
//   1. What does an attached follower cost the leader? Nothing on the
//      ingest path by construction (the follower pulls; the leader's
//      driver never waits on it) — measured here as wire ingest
//      throughput with and without one follower attached, against the
//      same 1-client no-journal measurement bench_net_throughput makes
//      (the PR 3 baseline). The acceptance bar for this repo: the
//      attached run stays within 0.9x of that baseline when the box has
//      a core to spare for the replica's replay; a single-core box
//      time-slices the replay against the leader (see the closing note).
//   2. How far behind does a healthy follower run? The main thread
//      samples the follower's cycle-timestamp apply lag during the
//      stream (steady state) and times the post-stream drain to zero.
//
// Scale via TOPKMON_SCALE=smoke|default|paper, standard across the
// bench suite; this is also the CI smoke target for the replica tier.

#include <stdlib.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common/harness.h"
#include "core/tma_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "replica/follower.h"
#include "service/monitor_service.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace topkmon {
namespace bench {
namespace {

constexpr int kDim = 2;
constexpr std::size_t kQueries = 4;
constexpr int kK = 10;
constexpr std::size_t kWireBatch = 512;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/topkmon_bench_replica_XXXXXX";
  const char* made = ::mkdtemp(tmpl);
  if (made == nullptr) std::abort();
  return made;
}

void RemoveDirRecursive(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "warning: failed to clean %s\n", dir.c_str());
  }
}

std::function<std::unique_ptr<MonitorEngine>()> TmaFactory(
    std::size_t window) {
  return [window] {
    GridEngineOptions opt;
    opt.dim = kDim;
    opt.window = WindowSpec::Count(window);
    return std::unique_ptr<MonitorEngine>(new TmaEngine(opt));
  };
}

struct RunResult {
  double throughput = 0.0;       ///< wire ingest records/second
  double lag_p50_ts = 0.0;       ///< steady-state apply lag (cycle ts)
  double lag_max_ts = 0.0;
  double drain_ms = 0.0;         ///< post-stream catch-up to zero lag
  std::uint64_t restarts = 0;
  std::uint64_t segments_completed = 0;
  std::uint64_t bytes_shipped = 0;
};

enum class Config {
  kBaseline,  ///< no journal, no follower: the bench_net_throughput
              ///< 1-client measurement (the PR 3 baseline)
  kJournaled,
  kAttached,  ///< journaled + one live follower
};

RunResult Run(std::size_t records, std::size_t window, Config config) {
  const bool with_follower = config == Config::kAttached;
  const std::string leader_dir = MakeTempDir();
  RunResult out;
  {
    ServiceOptions opt;
    opt.ingest.slack = 8;
    opt.ingest.max_batch = 4096;
    opt.hub.buffer_capacity = 64;  // no subscriber in this bench
    opt.session.max_queries_per_session = kQueries;
    opt.drain_wait = std::chrono::milliseconds(2);
    if (config != Config::kBaseline) {
      opt.journal.dir = leader_dir + "/journal";
    }
    opt.journal.retain_segment_count = 2;  // replication horizon
    std::unique_ptr<MonitorService> leader;
    if (config == Config::kBaseline) {
      leader = std::make_unique<MonitorService>(TmaFactory(window)(), opt);
    } else {
      auto opened = MonitorService::Open(TmaFactory(window), opt);
      if (!opened.ok()) std::abort();
      leader = std::move(*opened);
    }
    NetServerOptions net;
    net.poll_tick = std::chrono::milliseconds(1);
    TcpServer server(*leader, net);
    if (!server.Start().ok()) std::abort();

    std::string follower_dir;
    std::unique_ptr<ReplicaFollower> follower;
    if (with_follower) {
      follower_dir = MakeTempDir();
      ServiceOptions fsvc;
      fsvc.journal.dir = follower_dir + "/repl";
      fsvc.hub.buffer_capacity = 64;
      ReplicaFollowerOptions fopt;
      fopt.leader_port = server.port();
      fopt.fetch_wait = std::chrono::milliseconds(20);
      auto opened = ReplicaFollower::Open(TmaFactory(window), fsvc, fopt);
      if (!opened.ok()) std::abort();
      follower = std::move(*opened);
    }

    // The same 1-client shape bench_net_throughput measures: register
    // over the wire, then batched wire ingest.
    {
      auto sub = MonitorClient::Connect("127.0.0.1", server.port(),
                                        "client-0", /*resume=*/false);
      if (!sub.ok()) std::abort();
      std::vector<QuerySpec> specs;
      for (std::size_t q = 0; q < kQueries; ++q) {
        QuerySpec spec;
        spec.k = kK;
        Rng rng(q + 1);
        spec.function = MakeRandomFunction(
            FunctionFamily::kLinear, kDim, [&rng] { return rng.Uniform(); });
        specs.push_back(std::move(spec));
      }
      const auto outcomes = (*sub)->RegisterBatch(specs);
      if (!outcomes.ok()) std::abort();
      (void)(*sub)->Close(/*close_session=*/false);
    }

    std::atomic<bool> done{false};
    std::vector<double> lag_samples;
    std::thread sampler;
    if (with_follower) {
      sampler = std::thread([&] {
        while (!done.load()) {
          lag_samples.push_back(
              static_cast<double>(follower->stats().LagTs()));
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      });
    }

    Stopwatch watch;
    {
      auto producer = MonitorClient::Connect("127.0.0.1", server.port(),
                                             "prod-0", /*resume=*/false);
      if (!producer.ok()) std::abort();
      auto gen = MakeGenerator(Distribution::kIndependent, kDim, 1000);
      std::size_t sent = 0;
      Timestamp ts = 0;
      while (sent < records) {
        std::vector<Record> batch;
        const std::size_t n = std::min(kWireBatch, records - sent);
        batch.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          batch.emplace_back(0, gen->NextPoint(), ++ts);
        }
        const auto ack = (*producer)->Ingest(std::move(batch));
        if (!ack.ok() || ack->rejected != 0) std::abort();
        sent += n;
      }
      (void)(*producer)->Close(/*close_session=*/false);
    }
    if (!leader->Flush().ok()) std::abort();
    const double wall = watch.ElapsedSeconds();
    out.throughput = static_cast<double>(records) / wall;

    if (with_follower) {
      const Timestamp leader_ts = leader->replication().applied_cycle_ts;
      Stopwatch drain;
      if (!follower->WaitForCycleTs(leader_ts, std::chrono::minutes(5))
               .ok()) {
        std::abort();
      }
      out.drain_ms = drain.ElapsedSeconds() * 1e3;
      done.store(true);
      sampler.join();
      out.lag_p50_ts = Percentile(lag_samples, 0.50);
      out.lag_max_ts = Percentile(lag_samples, 1.00);
      const ReplicaFollowerStats fs = follower->stats();
      out.restarts = fs.restarts;
      out.segments_completed = fs.segments_completed;
      out.bytes_shipped = fs.bytes_shipped;
      follower->Stop();
    }
    server.Stop();
    leader->Shutdown();
    if (!follower_dir.empty()) RemoveDirRecursive(follower_dir);
  }
  RemoveDirRecursive(leader_dir);
  return out;
}

int Main() {
  const Scale scale = GetScale();
  std::size_t records = 200000;
  std::size_t window = 10000;
  if (scale == Scale::kSmoke) {
    records = 10000;
    window = 1000;
  } else if (scale == Scale::kPaper) {
    records = 1000000;
    window = 50000;
  }

  std::printf(
      "Journal-shipping replication: follower apply lag and leader "
      "overhead\nrecords=%zu  window=N=%zu  queries=%zu  k=%d  wire "
      "batch=%zu  engine=TMA  scale=%s\n\n",
      records, window, kQueries, kK, kWireBatch, ScaleName(scale));

  // Best of 3 per configuration: single wire-producer runs are noisy
  // (the slack-gate batching and scheduler both move the needle).
  auto best_of = [&](Config config) {
    RunResult best;
    for (int r = 0; r < 3; ++r) {
      RunResult run = Run(records, window, config);
      if (run.throughput > best.throughput) best = run;
    }
    return best;
  };
  const RunResult baseline = best_of(Config::kBaseline);
  const RunResult alone = best_of(Config::kJournaled);
  const RunResult attached = best_of(Config::kAttached);

  BenchResultWriter json("replica_lag");
  json.Config("records", static_cast<double>(records));
  json.Config("window", static_cast<double>(window));
  json.Config("queries", static_cast<double>(kQueries));
  json.Config("k", static_cast<double>(kK));
  json.Config("wire_batch", static_cast<double>(kWireBatch));
  json.AddRow("wire-no-journal").metrics["ingest_rec_per_s"] =
      baseline.throughput;
  json.AddRow("journaled-leader").metrics["ingest_rec_per_s"] =
      alone.throughput;
  {
    BenchResultWriter::Row& row = json.AddRow("journaled-plus-follower");
    row.metrics["ingest_rec_per_s"] = attached.throughput;
    row.metrics["lag_p50_ts"] = attached.lag_p50_ts;
    row.metrics["lag_max_ts"] = attached.lag_max_ts;
    row.metrics["drain_ms"] = attached.drain_ms;
    row.metrics["segments_completed"] =
        static_cast<double>(attached.segments_completed);
    row.metrics["resyncs"] = static_cast<double>(attached.restarts);
    row.metrics["shipped_mib"] =
        static_cast<double>(attached.bytes_shipped) / (1024.0 * 1024.0);
    row.metrics["vs_baseline"] =
        baseline.throughput > 0.0
            ? attached.throughput / baseline.throughput
            : 0.0;
  }

  TablePrinter table({"configuration", "ingest [rec/s]", "lag p50 [ts]",
                      "lag max [ts]", "drain [ms]", "segments", "resyncs",
                      "shipped [MiB]"});
  table.AddRow({"wire 1-client, no journal (PR3 baseline)",
                TablePrinter::Num(baseline.throughput, 5), "-", "-", "-",
                "-", "-", "-"});
  table.AddRow({"journaled leader alone",
                TablePrinter::Num(alone.throughput, 5), "-", "-", "-", "-",
                "-", "-"});
  table.AddRow(
      {"journaled leader + 1 follower",
       TablePrinter::Num(attached.throughput, 5),
       TablePrinter::Num(attached.lag_p50_ts, 4),
       TablePrinter::Num(attached.lag_max_ts, 4),
       TablePrinter::Num(attached.drain_ms, 4),
       TablePrinter::Int(static_cast<std::int64_t>(
           attached.segments_completed)),
       TablePrinter::Int(static_cast<std::int64_t>(attached.restarts)),
       TablePrinter::Num(
           static_cast<double>(attached.bytes_shipped) / (1024.0 * 1024.0),
           4)});
  table.Print(std::cout);
  json.Write();

  const long cores = ::sysconf(_SC_NPROCESSORS_ONLN);
  std::printf(
      "\nattached/baseline ingest ratio: %.2f   attached/journaled: %.2f "
      "  (target: >= 0.90 with >= 2 cores; this box has %ld)\n",
      baseline.throughput > 0.0 ? attached.throughput / baseline.throughput
                                : 0.0,
      alone.throughput > 0.0 ? attached.throughput / alone.throughput : 0.0,
      cores);
  PrintExpectation(
      "the follower pulls journal bytes through its own connection and "
      "parked fetches, so nothing in the leader's ingest path ever waits "
      "on it — with a spare core for the replica's replay the attached "
      "ratio holds >= 0.9; on a single-core box the replica's own replay "
      "(inherently the same engine work again) time-slices the leader's "
      "core and the ratio reads ~0.7 — that is replay CPU, not shipping "
      "overhead (the fetch path itself costs ~30 paced round trips per "
      "run). Steady-state apply lag stays within one fetch-pacing "
      "interval of cycles and drains to zero in well under a second once "
      "the stream stops; zero resyncs at the default horizon");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
