// Table 2: average view / skyband cardinality per query versus k.
//
// TSL maintains materialized views of k' in [k, kmax] entries; SMA keeps
// the k-skyband of each query's influence region. The paper's Table 2
// shows that SMA stores very few entries beyond k (it discards records
// that can never appear in a result), consistently fewer than TSL's
// views.

#include <iostream>

#include "bench/common/harness.h"
#include "core/sma_engine.h"
#include "tsl/tsl_engine.h"

namespace topkmon {
namespace bench {
namespace {

int Main() {
  const Scale scale = GetScale();
  WorkloadSpec base = BaselineSpec(scale);
  PrintPreamble("Table 2: average view/skyband size per query",
                "Table 2 of Mouratidis et al., SIGMOD 2006", base);

  const std::vector<int> ks = {1, 5, 10, 20, 50, 100};
  TablePrinter table({"k", "kmax", "IND TSL", "IND SMA", "ANT TSL",
                      "ANT SMA"});
  for (int k : ks) {
    std::vector<std::string> row = {TablePrinter::Int(k),
                                    TablePrinter::Int(DefaultKmax(k))};
    for (Distribution dist :
         {Distribution::kIndependent, Distribution::kAntiCorrelated}) {
      WorkloadSpec spec = base;
      spec.distribution = dist;
      spec.k = k;

      TslOptions tsl_opt;
      tsl_opt.dim = spec.dim;
      tsl_opt.window = spec.MakeWindowSpec();
      TslEngine tsl(tsl_opt);
      Result<SimulationReport> tsl_report = RunWorkload(tsl, spec);
      if (!tsl_report.ok()) {
        std::fprintf(stderr, "TSL failed: %s\n",
                     tsl_report.status().ToString().c_str());
        return 1;
      }

      GridEngineOptions sma_opt;
      sma_opt.dim = spec.dim;
      sma_opt.window = spec.MakeWindowSpec();
      SmaEngine sma(sma_opt);
      Result<SimulationReport> sma_report = RunWorkload(sma, spec);
      if (!sma_report.ok()) {
        std::fprintf(stderr, "SMA failed: %s\n",
                     sma_report.status().ToString().c_str());
        return 1;
      }

      row.push_back(TablePrinter::Num(tsl.AverageViewSize(), 4));
      row.push_back(TablePrinter::Num(sma.AverageSkybandSize(), 4));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  PrintExpectation(
      "SMA's skybands hold only a few entries beyond k (e.g. ~21.6 at "
      "k=20 in the paper) and are consistently smaller than TSL's views "
      "(~26.7 at k=20), because SMA discards tuples that can never appear "
      "in a future result.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
