// Extension benchmark: constrained top-k and threshold monitoring
// (Section 7).
//
// Constrained queries restrict maintenance to the cells intersecting the
// constraint region, so they are cheaper than unconstrained queries with
// the same k. Threshold queries have static influence regions and never
// recompute; their cost tracks the event rate inside the region.

#include <iostream>
#include <memory>

#include "bench/common/harness.h"
#include "core/threshold_monitor.h"
#include "core/tma_engine.h"
#include "util/rng.h"

namespace topkmon {
namespace bench {
namespace {

/// Random axis-parallel constraint covering roughly `side^dim` of the
/// workspace.
Rect RandomConstraint(Rng& rng, int dim, double side) {
  Point lo(dim);
  Point hi(dim);
  for (int i = 0; i < dim; ++i) {
    lo[i] = rng.Uniform() * (1.0 - side);
    hi[i] = lo[i] + side;
  }
  return Rect(lo, hi);
}

int Main() {
  const Scale scale = GetScale();
  WorkloadSpec base = BaselineSpec(scale);
  PrintPreamble("Extensions: constrained top-k and threshold monitoring",
                "Section 7 of Mouratidis et al., SIGMOD 2006", base);

  // --- Constrained top-k: sweep the constraint side length. -------------
  std::printf("--- constrained top-k (TMA, IND) ---\n");
  TablePrinter ctable({"constraint side", "region volume", "time [s]",
                       "recomputes", "cells visited"});
  for (double side : {1.0, 0.8, 0.6, 0.4, 0.2}) {
    GridEngineOptions opt;
    opt.dim = base.dim;
    opt.window = base.MakeWindowSpec();
    TmaEngine engine(opt);
    // Register constrained variants of the workload's queries.
    Rng rng(base.seed);
    std::vector<QuerySpec> queries = base.MakeQueries();
    if (side < 1.0) {
      for (QuerySpec& q : queries) {
        q.constraint = RandomConstraint(rng, base.dim, side);
      }
    }
    // Drive manually (RunWorkload registers unconstrained queries).
    RecordSource source(
        MakeGenerator(base.distribution, base.dim, base.seed));
    Timestamp now = 0;
    for (int c = 0; c < base.WarmupCycles(); ++c) {
      ++now;
      Status st = engine.ProcessCycle(
          now, source.NextBatch(base.arrivals_per_cycle, now));
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    for (const QuerySpec& q : queries) {
      Status st = engine.RegisterQuery(q);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    const EngineStats before = engine.stats();
    Stopwatch watch;
    for (int c = 0; c < base.num_cycles; ++c) {
      ++now;
      Status st = engine.ProcessCycle(
          now, source.NextBatch(base.arrivals_per_cycle, now));
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    const double elapsed = watch.ElapsedSeconds();
    const EngineStats delta = Subtract(engine.stats(), before);
    double volume = 1.0;
    for (int i = 0; i < base.dim; ++i) volume *= side;
    ctable.AddRow({TablePrinter::Num(side, 3), TablePrinter::Num(volume, 3),
                   TablePrinter::Num(elapsed, 4),
                   TablePrinter::Int(
                       static_cast<std::int64_t>(delta.recomputations)),
                   TablePrinter::Int(
                       static_cast<std::int64_t>(delta.cells_visited))});
  }
  ctable.Print(std::cout);

  // --- Threshold monitoring: sweep the threshold selectivity. -----------
  std::printf("\n--- threshold monitoring (IND) ---\n");
  TablePrinter ttable({"threshold (frac of max)", "avg result size",
                       "time [s]", "recomputes"});
  for (double frac : {0.999, 0.99, 0.97, 0.95, 0.90}) {
    ThresholdMonitor monitor(base.dim, base.MakeWindowSpec());
    RecordSource source(
        MakeGenerator(base.distribution, base.dim, base.seed));
    Rng rng(base.seed + 7);
    Timestamp now = 0;
    for (int c = 0; c < base.WarmupCycles(); ++c) {
      ++now;
      Status st = monitor.ProcessCycle(
          now, source.NextBatch(base.arrivals_per_cycle, now));
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    std::vector<ThresholdQuerySpec> specs;
    for (std::size_t i = 0; i < base.num_queries; ++i) {
      ThresholdQuerySpec spec;
      spec.id = static_cast<QueryId>(i + 1);
      std::vector<double> w(base.dim);
      double max_score = 0;
      for (double& x : w) {
        x = rng.Uniform();
        max_score += x;
      }
      spec.threshold = frac * max_score;
      spec.function = std::make_shared<LinearFunction>(std::move(w));
      Status st = monitor.RegisterQuery(spec);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      specs.push_back(std::move(spec));
    }
    Stopwatch watch;
    for (int c = 0; c < base.num_cycles; ++c) {
      ++now;
      Status st = monitor.ProcessCycle(
          now, source.NextBatch(base.arrivals_per_cycle, now));
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    const double elapsed = watch.ElapsedSeconds();
    double total_results = 0;
    for (const auto& spec : specs) {
      const auto result = monitor.CurrentResult(spec.id);
      if (result.ok()) total_results += static_cast<double>(result->size());
    }
    ttable.AddRow(
        {TablePrinter::Num(frac, 3),
         TablePrinter::Num(total_results /
                               static_cast<double>(specs.size()),
                           4),
         TablePrinter::Num(elapsed, 4),
         TablePrinter::Int(
             static_cast<std::int64_t>(monitor.stats().recomputations))});
  }
  ttable.Print(std::cout);
  PrintExpectation(
      "smaller constraint regions cost less (fewer influencing cells); "
      "threshold queries never recompute and their cost scales with the "
      "result size / influence-region volume.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace topkmon

int main() { return topkmon::bench::Main(); }
