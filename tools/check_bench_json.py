#!/usr/bin/env python3
"""Validates the machine-readable bench output (run by the CI bench-smoke
job).

Every benchmark that emits a BENCH_<name>.json (via the harness's
BenchResultWriter) must produce a file this script accepts:

  {
    "name":   "<slug>",          matches the file name BENCH_<slug>.json
    "scale":  "smoke|default|paper",
    "config": { "<key>": <number or string>, ... },
    "rows": [
      { "label":   "<non-empty>",
        "metrics": { "<key>": <finite number>, ... },   at least one
        "tags":    { "<key>": "<string>", ... } },      optional
      ...                                               at least one row
    ]
  }

Non-finite metrics are serialized as JSON null by the writer and
rejected here: a bench whose measurement went wrong (0/0 throughput,
an empty latency vector feeding a percentile, ...) fails CI instead of
committing garbage to bench/results/.

Usage: check_bench_json.py FILE.json [FILE.json ...]
Exits non-zero if any file is malformed; prints one line per problem.
"""

import json
import math
import os
import re
import sys

SLUG_RE = re.compile(r"^[A-Za-z0-9_]+$")
SCALES = {"smoke", "default", "paper"}


def fail(path, message, problems):
    problems.append(f"{path}: {message}")


def check_metrics(path, label, metrics, problems):
    if not isinstance(metrics, dict) or not metrics:
        fail(path, f"row '{label}': 'metrics' must be a non-empty object",
             problems)
        return
    for key, value in metrics.items():
        if not isinstance(key, str) or not key:
            fail(path, f"row '{label}': metric keys must be non-empty "
                 "strings", problems)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            fail(path, f"row '{label}': metric '{key}' is not a number "
                 f"(got {value!r})", problems)
        elif not math.isfinite(value):
            fail(path, f"row '{label}': metric '{key}' is not finite",
                 problems)


def check_file(path, problems):
    base = os.path.basename(path)
    match = re.fullmatch(r"BENCH_([A-Za-z0-9_]+)\.json", base)
    if match is None:
        fail(path, "file name must be BENCH_<slug>.json", problems)
        return
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(path, f"unreadable or invalid JSON: {err}", problems)
        return
    if not isinstance(doc, dict):
        fail(path, "top level must be an object", problems)
        return

    name = doc.get("name")
    if not isinstance(name, str) or not SLUG_RE.fullmatch(name or ""):
        fail(path, f"'name' must be a [A-Za-z0-9_]+ slug (got {name!r})",
             problems)
    elif name != match.group(1):
        fail(path, f"'name' ({name}) does not match the file name", problems)

    scale = doc.get("scale")
    if scale not in SCALES:
        fail(path, f"'scale' must be one of {sorted(SCALES)} "
             f"(got {scale!r})", problems)

    config = doc.get("config")
    if not isinstance(config, dict):
        fail(path, "'config' must be an object", problems)
    else:
        for key, value in config.items():
            if isinstance(value, bool) or not isinstance(
                    value, (int, float, str)):
                fail(path, f"config '{key}' must be a number or string",
                     problems)
            elif isinstance(value, (int, float)) and not math.isfinite(value):
                fail(path, f"config '{key}' is not finite", problems)

    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(path, "'rows' must be a non-empty array", problems)
        return
    labels = set()
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            fail(path, f"row {i} must be an object", problems)
            continue
        label = row.get("label")
        if not isinstance(label, str) or not label:
            fail(path, f"row {i}: 'label' must be a non-empty string",
                 problems)
            label = f"<row {i}>"
        elif label in labels:
            fail(path, f"duplicate row label '{label}'", problems)
        labels.add(label)
        check_metrics(path, label, row.get("metrics"), problems)
        tags = row.get("tags", {})
        if not isinstance(tags, dict) or any(
                not isinstance(v, str) for v in tags.values()):
            fail(path, f"row '{label}': 'tags' must map strings to strings",
                 problems)
        unknown = set(row) - {"label", "metrics", "tags"}
        if unknown:
            fail(path, f"row '{label}': unknown keys {sorted(unknown)}",
                 problems)


def main(argv):
    if len(argv) < 2:
        print("usage: check_bench_json.py FILE.json [FILE.json ...]",
              file=sys.stderr)
        return 2
    problems = []
    for path in argv[1:]:
        check_file(path, problems)
    for problem in problems:
        print(f"BENCH JSON ERROR: {problem}")
    if problems:
        print(f"{len(problems)} problem(s) in {len(argv) - 1} file(s)")
        return 1
    print(f"bench json OK: {len(argv) - 1} file(s) validated")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
