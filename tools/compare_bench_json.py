#!/usr/bin/env python3
"""Compares a fresh bench run against the committed baselines in
bench/results/ and fails on throughput regressions (run by the CI
bench-smoke job after check_bench_json.py).

Matching: every fresh BENCH_<slug>.json is paired with a baseline of the
same slug AND the same "scale" field — baselines are searched recursively
under the baseline directory (bench/results/ keeps default-scale artifacts
at the top level and smoke-scale artifacts under smoke/), so a smoke CI
run is never compared against a paper-scale baseline. A fresh file with
no same-scale baseline is reported and skipped; it becomes a candidate
for committing as a new baseline.

Comparison: only throughput-like metrics are gated — metric names ending
in "_per_s" — because wall-clock seconds and memory vary legitimately
with scale knobs while a throughput collapse on identical config is the
regression signal this tool exists for. For each row label present in
both files, each shared *_per_s metric must not drop by more than
--max-drop (default 0.25, i.e. 25%) relative to the baseline. Rows or
metrics present on only one side are noted but do not fail: benches are
allowed to grow new rows.

Throughput on shared CI hardware is noisy — a loaded runner can halve a
short smoke run's numbers without any code change — so both sides of the
gate are de-noised rather than the threshold widened:

  * --fresh may be given several times; per row and metric the BEST
    (max) fresh value is compared. CI runs each smoke bench a few times
    into separate directories, and only a regression that survives every
    attempt fails the gate.
  * committed baselines should be conservative: the per-metric MIN
    across repeated runs on the reference machine, so the gate measures
    "fresh best is >25% below the slowest blessed run" — catching
    collapses (a lock on a hot path, an accidental O(n^2)), not
    scheduler jitter.

Usage: compare_bench_json.py --baseline DIR --fresh DIR [--fresh DIR ...]
                             [--max-drop F]
Exits 1 on any gated regression, 2 on usage/IO errors, else 0.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def index_baselines(root):
    """Maps (slug, scale) -> (path, doc) for every baseline under root."""
    baselines = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for base in sorted(filenames):
            if not (base.startswith("BENCH_") and base.endswith(".json")):
                continue
            path = os.path.join(dirpath, base)
            try:
                doc = load(path)
            except (OSError, json.JSONDecodeError) as err:
                print(f"COMPARE ERROR: {path}: unreadable baseline: {err}")
                return None
            key = (doc.get("name"), doc.get("scale"))
            if key in baselines:
                print(f"COMPARE ERROR: duplicate baseline for "
                      f"name={key[0]} scale={key[1]}: {path} and "
                      f"{baselines[key][0]}")
                return None
            baselines[key] = (path, doc)
    return baselines


def rows_by_label(doc):
    return {row["label"]: row.get("metrics", {}) for row in doc["rows"]}


def merge_best(docs):
    """Per row label and metric, the max value across repeated runs."""
    merged = {}
    for doc in docs:
        for label, metrics in rows_by_label(doc).items():
            best = merged.setdefault(label, {})
            for metric, value in metrics.items():
                if metric not in best or value > best[metric]:
                    best[metric] = value
    return merged


def compare(fresh_path, fresh_rows, base_path, base, max_drop, failures):
    base_rows = rows_by_label(base)
    gated = 0
    for label in sorted(base_rows):
        if label not in fresh_rows:
            print(f"  note: row '{label}' in baseline only "
                  f"({os.path.basename(base_path)})")
            continue
        for metric, base_value in sorted(base_rows[label].items()):
            if not metric.endswith("_per_s"):
                continue
            if metric not in fresh_rows[label]:
                print(f"  note: metric '{label}/{metric}' in baseline only")
                continue
            fresh_value = fresh_rows[label][metric]
            gated += 1
            if base_value <= 0:
                continue
            drop = 1.0 - fresh_value / base_value
            if drop > max_drop:
                failures.append(
                    f"{fresh_path}: row '{label}' metric '{metric}' "
                    f"dropped {drop:.1%} (baseline {base_value:.1f}, "
                    f"fresh {fresh_value:.1f}, allowed {max_drop:.0%})")
    return gated


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="directory of committed BENCH_*.json baselines")
    parser.add_argument("--fresh", required=True, action="append",
                        help="directory of a just-produced BENCH_*.json set; "
                        "repeat for best-of-N de-noising")
    parser.add_argument("--max-drop", type=float, default=0.25,
                        help="maximum tolerated relative throughput drop")
    args = parser.parse_args(argv[1:])
    if not os.path.isdir(args.baseline) or not all(
            os.path.isdir(d) for d in args.fresh):
        print("compare_bench_json.py: --baseline and --fresh must be "
              "directories", file=sys.stderr)
        return 2

    baselines = index_baselines(args.baseline)
    if baselines is None:
        return 2
    fresh_files = sorted({
        f for d in args.fresh for f in os.listdir(d)
        if f.startswith("BENCH_") and f.endswith(".json")})
    if not fresh_files:
        print("compare_bench_json.py: no BENCH_*.json under "
              f"{', '.join(args.fresh)}", file=sys.stderr)
        return 2

    failures = []
    compared = 0
    gated = 0
    for base_name in fresh_files:
        docs = []
        key = None
        for d in args.fresh:
            fresh_path = os.path.join(d, base_name)
            if not os.path.exists(fresh_path):
                continue
            try:
                fresh = load(fresh_path)
            except (OSError, json.JSONDecodeError) as err:
                print(f"COMPARE ERROR: {fresh_path}: {err}")
                return 2
            doc_key = (fresh.get("name"), fresh.get("scale"))
            if key is None:
                key = doc_key
            elif doc_key != key:
                print(f"COMPARE ERROR: {fresh_path}: name/scale {doc_key} "
                      f"disagrees with earlier run {key}")
                return 2
            docs.append(fresh)
        if key not in baselines:
            print(f"skip {base_name}: no scale={key[1]} baseline "
                  f"(candidate for committing)")
            continue
        base_path, base = baselines[key]
        print(f"compare {base_name} (scale={key[1]}, best of "
              f"{len(docs)} run(s)) vs {base_path}")
        gated += compare(base_name, merge_best(docs), base_path, base,
                         args.max_drop, failures)
        compared += 1

    for failure in failures:
        print(f"BENCH REGRESSION: {failure}")
    if failures:
        print(f"{len(failures)} regression(s) beyond "
              f"{args.max_drop:.0%} in {compared} compared file(s)")
        return 1
    print(f"bench compare OK: {compared} file(s), {gated} throughput "
          f"metric(s) within {args.max_drop:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
