#!/usr/bin/env python3
"""Documentation consistency checks (run by the CI docs job).

1. Markdown link check: every relative link target in the repo's .md
   files must exist (external http(s)/mailto links are skipped).
2. Journal format lockstep: the version stated in
   docs/JOURNAL_FORMAT.md must equal kJournalFormatVersion in
   src/journal/format.h, so the byte-level spec can never silently
   drift from the implementation.
3. Network protocol lockstep: likewise for docs/PROTOCOL.md and
   kNetProtocolVersion in src/net/protocol.h.
4. Replication lockstep: docs/REPLICATION.md specifies the replication
   frames, which are part of the network protocol — it must state the
   same kNetProtocolVersion.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_DIRS = {"build", ".git", ".claude"}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADER_VERSION_RE = re.compile(
    r"constexpr\s+std::uint32_t\s+kJournalFormatVersion\s*=\s*(\d+)\s*;")
DOC_VERSION_RE = re.compile(r"\*\*Format version:\*\*\s*(\d+)")
NET_HEADER_VERSION_RE = re.compile(
    r"constexpr\s+std::uint32_t\s+kNetProtocolVersion\s*=\s*(\d+)\s*;")
NET_DOC_VERSION_RE = re.compile(r"\*\*Protocol version:\*\*\s*(\d+)")


def markdown_files():
    for root, dirs, files in os.walk(REPO):
        dirs[:] = [d for d in dirs if d not in SKIP_DIRS]
        for name in files:
            if name.endswith(".md"):
                yield os.path.join(root, name)


def check_links():
    errors = []
    for path in markdown_files():
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target_path))
            if not os.path.exists(resolved):
                errors.append(
                    f"{os.path.relpath(path, REPO)}: broken link -> {target}")
    return errors


def check_version_lockstep(what, header_rel, header_re, constant_name,
                           spec_rel, spec_re, spec_line):
    """One spec-vs-header version pin: `constant_name` in `header_rel`
    must equal the version stated by `spec_line` in `spec_rel`."""
    header = os.path.join(REPO, *header_rel.split("/"))
    spec = os.path.join(REPO, *spec_rel.split("/"))
    errors = []
    try:
        header_text = open(header, encoding="utf-8").read()
    except OSError as e:
        return [f"cannot read {header}: {e}"]
    try:
        spec_text = open(spec, encoding="utf-8").read()
    except OSError as e:
        return [f"cannot read {spec}: {e}"]
    header_match = header_re.search(header_text)
    spec_match = spec_re.search(spec_text)
    if not header_match:
        errors.append(f"{header_rel}: {constant_name} not found")
    if not spec_match:
        errors.append(f"{spec_rel}: '{spec_line}' line not found")
    if header_match and spec_match and header_match.group(1) != \
            spec_match.group(1):
        errors.append(
            f"{what} version mismatch: {header_rel} says "
            f"{header_match.group(1)}, {spec_rel} says "
            f"{spec_match.group(1)} — update the spec alongside the code")
    return errors


def main():
    errors = check_links()
    errors += check_version_lockstep(
        "journal format", "src/journal/format.h", HEADER_VERSION_RE,
        "kJournalFormatVersion", "docs/JOURNAL_FORMAT.md", DOC_VERSION_RE,
        "**Format version:** N")
    errors += check_version_lockstep(
        "network protocol", "src/net/protocol.h", NET_HEADER_VERSION_RE,
        "kNetProtocolVersion", "docs/PROTOCOL.md", NET_DOC_VERSION_RE,
        "**Protocol version:** N")
    errors += check_version_lockstep(
        "replication protocol", "src/net/protocol.h",
        NET_HEADER_VERSION_RE, "kNetProtocolVersion",
        "docs/REPLICATION.md", NET_DOC_VERSION_RE,
        "**Protocol version:** N")
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if errors:
        print(f"\n{len(errors)} documentation error(s)", file=sys.stderr)
        return 1
    print("docs check passed (links resolve; journal format, network "
          "protocol and replication spec versions in lockstep)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
