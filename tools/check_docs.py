#!/usr/bin/env python3
"""Documentation consistency checks (run by the CI docs job).

1. Markdown link check: every relative link target in the repo's .md
   files must exist (external http(s)/mailto links are skipped).
2. Journal format lockstep: the version stated in
   docs/JOURNAL_FORMAT.md must equal kJournalFormatVersion in
   src/journal/format.h, so the byte-level spec can never silently
   drift from the implementation.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_DIRS = {"build", ".git", ".claude"}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADER_VERSION_RE = re.compile(
    r"constexpr\s+std::uint32_t\s+kJournalFormatVersion\s*=\s*(\d+)\s*;")
DOC_VERSION_RE = re.compile(r"\*\*Format version:\*\*\s*(\d+)")


def markdown_files():
    for root, dirs, files in os.walk(REPO):
        dirs[:] = [d for d in dirs if d not in SKIP_DIRS]
        for name in files:
            if name.endswith(".md"):
                yield os.path.join(root, name)


def check_links():
    errors = []
    for path in markdown_files():
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target_path))
            if not os.path.exists(resolved):
                errors.append(
                    f"{os.path.relpath(path, REPO)}: broken link -> {target}")
    return errors


def check_format_version():
    header = os.path.join(REPO, "src", "journal", "format.h")
    spec = os.path.join(REPO, "docs", "JOURNAL_FORMAT.md")
    errors = []
    try:
        header_text = open(header, encoding="utf-8").read()
    except OSError as e:
        return [f"cannot read {header}: {e}"]
    try:
        spec_text = open(spec, encoding="utf-8").read()
    except OSError as e:
        return [f"cannot read {spec}: {e}"]
    header_match = HEADER_VERSION_RE.search(header_text)
    spec_match = DOC_VERSION_RE.search(spec_text)
    if not header_match:
        errors.append("src/journal/format.h: kJournalFormatVersion not found")
    if not spec_match:
        errors.append(
            "docs/JOURNAL_FORMAT.md: '**Format version:** N' line not found")
    if header_match and spec_match and header_match.group(1) != \
            spec_match.group(1):
        errors.append(
            "journal format version mismatch: format.h says "
            f"{header_match.group(1)}, JOURNAL_FORMAT.md says "
            f"{spec_match.group(1)} — update the spec alongside the code")
    return errors


def main():
    errors = check_links() + check_format_version()
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if errors:
        print(f"\n{len(errors)} documentation error(s)", file=sys.stderr)
        return 1
    print("docs check passed (links resolve, journal format version in "
          "lockstep)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
