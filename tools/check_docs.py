#!/usr/bin/env python3
"""Documentation consistency checks (run by the CI docs job).

1. Markdown link check: every relative link target in the repo's .md
   files must exist (external http(s)/mailto links are skipped).
2. Anchor check: every intra-doc fragment link across docs/*.md —
   `#section` within a file or `OTHER.md#section` across files — must
   resolve to a real heading of the target file (GitHub slug rules), so
   a renamed section can never leave dangling cross-references behind.
3. Journal format lockstep: the version stated in
   docs/JOURNAL_FORMAT.md must equal kJournalFormatVersion in
   src/journal/format.h, so the byte-level spec can never silently
   drift from the implementation.
4. Network protocol lockstep: likewise for docs/PROTOCOL.md and
   kNetProtocolVersion in src/net/protocol.h.
5. Replication lockstep: docs/REPLICATION.md specifies the replication
   frames, which are part of the network protocol — it must state the
   same kNetProtocolVersion.
6. Operations lockstep: docs/OPERATIONS.md (the operator's manual)
   references both the protocol and the journal format; it must state
   both versions, matching the same headers.
7. Workload registry lockstep: every workload name registered between
   the `// workload-registry-begin` / `-end` markers in
   src/workload/workload.cc must have its own heading in
   docs/WORKLOADS.md, so a new generator can never ship undocumented
   (and a renamed one can never leave a stale section behind).
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_DIRS = {"build", ".git", ".claude"}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADER_VERSION_RE = re.compile(
    r"constexpr\s+std::uint32_t\s+kJournalFormatVersion\s*=\s*(\d+)\s*;")
DOC_VERSION_RE = re.compile(r"\*\*Format version:\*\*\s*(\d+)")
NET_HEADER_VERSION_RE = re.compile(
    r"constexpr\s+std::uint32_t\s+kNetProtocolVersion\s*=\s*(\d+)\s*;")
NET_DOC_VERSION_RE = re.compile(r"\*\*Protocol version:\*\*\s*(\d+)")


def markdown_files():
    for root, dirs, files in os.walk(REPO):
        dirs[:] = [d for d in dirs if d not in SKIP_DIRS]
        for name in files:
            if name.endswith(".md"):
                yield os.path.join(root, name)


HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading):
    """The anchor GitHub generates for a heading: lowercase, punctuation
    stripped (hyphens/underscores survive), spaces become hyphens."""
    text = re.sub(r"[`*_\[\]()]", "", heading.strip())
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path, cache={}):
    if path not in cache:
        try:
            text = open(path, encoding="utf-8").read()
        except OSError:
            cache[path] = set()
            return cache[path]
        slugs = set()
        counts = {}
        for heading in HEADING_RE.findall(text):
            slug = github_slug(heading)
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = slugs
    return cache[path]


def check_links():
    errors = []
    for path in markdown_files():
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target_path, _, fragment = target.partition("#")
            resolved = (os.path.normpath(
                os.path.join(os.path.dirname(path), target_path))
                        if target_path else path)
            if not os.path.exists(resolved):
                errors.append(
                    f"{os.path.relpath(path, REPO)}: broken link -> {target}")
                continue
            # Fragments are only checkable against markdown headings; a
            # fragment into a non-.md file (e.g. source) is skipped.
            if fragment and resolved.endswith(".md"):
                if fragment.lower() not in heading_slugs(resolved):
                    errors.append(
                        f"{os.path.relpath(path, REPO)}: dangling anchor "
                        f"-> {target} (no heading '#{fragment}' in "
                        f"{os.path.relpath(resolved, REPO)})")
    return errors


def check_version_lockstep(what, header_rel, header_re, constant_name,
                           spec_rel, spec_re, spec_line):
    """One spec-vs-header version pin: `constant_name` in `header_rel`
    must equal the version stated by `spec_line` in `spec_rel`."""
    header = os.path.join(REPO, *header_rel.split("/"))
    spec = os.path.join(REPO, *spec_rel.split("/"))
    errors = []
    try:
        header_text = open(header, encoding="utf-8").read()
    except OSError as e:
        return [f"cannot read {header}: {e}"]
    try:
        spec_text = open(spec, encoding="utf-8").read()
    except OSError as e:
        return [f"cannot read {spec}: {e}"]
    header_match = header_re.search(header_text)
    spec_match = spec_re.search(spec_text)
    if not header_match:
        errors.append(f"{header_rel}: {constant_name} not found")
    if not spec_match:
        errors.append(f"{spec_rel}: '{spec_line}' line not found")
    if header_match and spec_match and header_match.group(1) != \
            spec_match.group(1):
        errors.append(
            f"{what} version mismatch: {header_rel} says "
            f"{header_match.group(1)}, {spec_rel} says "
            f"{spec_match.group(1)} — update the spec alongside the code")
    return errors


WORKLOAD_NAME_RE = re.compile(r'^\s*\{"([a-z0-9-]+)"', re.MULTILINE)


def check_workload_registry():
    """Every name registered in src/workload/workload.cc has a heading
    in docs/WORKLOADS.md, and no documented heading is unregistered."""
    source = os.path.join(REPO, "src", "workload", "workload.cc")
    doc = os.path.join(REPO, "docs", "WORKLOADS.md")
    errors = []
    try:
        text = open(source, encoding="utf-8").read()
    except OSError as e:
        return [f"cannot read {source}: {e}"]
    begin = text.find("// workload-registry-begin")
    end = text.find("// workload-registry-end")
    if begin < 0 or end < 0 or end <= begin:
        return [f"src/workload/workload.cc: workload-registry-begin/-end "
                "markers not found"]
    names = WORKLOAD_NAME_RE.findall(text[begin:end])
    if not names:
        return ["src/workload/workload.cc: no names parsed between the "
                "registry markers"]
    doc_headings = heading_slugs(doc)
    if not doc_headings:
        return [f"cannot read {doc} (or it has no headings)"]
    for name in names:
        if github_slug(name) not in doc_headings:
            errors.append(
                f"docs/WORKLOADS.md: registered workload '{name}' has no "
                "heading — document it alongside the registration")
    # Level-2 headings that look like workload names but are not
    # registered are stale sections from a rename or removal.
    documented = {
        github_slug(h)
        for h in HEADING_RE.findall(open(doc, encoding="utf-8").read())
    }
    registered = {github_slug(n) for n in names}
    known_prose = {"named-workloads", "selecting-a-workload"}
    for slug in sorted(documented - registered - known_prose):
        errors.append(
            f"docs/WORKLOADS.md: heading '{slug}' matches no registered "
            "workload — remove the stale section or register the name")
    return errors


def main():
    errors = check_links()
    errors += check_version_lockstep(
        "journal format", "src/journal/format.h", HEADER_VERSION_RE,
        "kJournalFormatVersion", "docs/JOURNAL_FORMAT.md", DOC_VERSION_RE,
        "**Format version:** N")
    errors += check_version_lockstep(
        "network protocol", "src/net/protocol.h", NET_HEADER_VERSION_RE,
        "kNetProtocolVersion", "docs/PROTOCOL.md", NET_DOC_VERSION_RE,
        "**Protocol version:** N")
    errors += check_version_lockstep(
        "replication protocol", "src/net/protocol.h",
        NET_HEADER_VERSION_RE, "kNetProtocolVersion",
        "docs/REPLICATION.md", NET_DOC_VERSION_RE,
        "**Protocol version:** N")
    # The operator's manual cites both wire contracts; CI keeps it honest
    # against the same headers the specs are pinned to.
    errors += check_version_lockstep(
        "operations manual (protocol)", "src/net/protocol.h",
        NET_HEADER_VERSION_RE, "kNetProtocolVersion",
        "docs/OPERATIONS.md", NET_DOC_VERSION_RE,
        "**Protocol version:** N")
    errors += check_version_lockstep(
        "operations manual (journal format)", "src/journal/format.h",
        HEADER_VERSION_RE, "kJournalFormatVersion",
        "docs/OPERATIONS.md", DOC_VERSION_RE,
        "**Format version:** N")
    # The cluster tier builds on v4 wire features (Deltas as_of, Welcome
    # server_tag, UNAVAILABLE); its spec pins the same protocol version.
    errors += check_version_lockstep(
        "cluster spec (protocol)", "src/net/protocol.h",
        NET_HEADER_VERSION_RE, "kNetProtocolVersion",
        "docs/CLUSTER.md", NET_DOC_VERSION_RE,
        "**Protocol version:** N")
    errors += check_workload_registry()
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if errors:
        print(f"\n{len(errors)} documentation error(s)", file=sys.stderr)
        return 1
    print("docs check passed (links and intra-doc anchors resolve; "
          "journal format, network protocol, replication, operations "
          "and cluster versions in lockstep; workload registry "
          "documented)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
