#!/usr/bin/env python3
"""Metric catalog lockstep check (run by the CI build-and-test job).

docs/ADMIN.md carries the admin plane's metric catalog between the
`<!-- metric-catalog-begin -->` / `<!-- metric-catalog-end -->`
markers. A live node is the source of truth for what actually gets
registered: `example_service_demo --dump_metrics` boots a leader, a
TCP server, a replica follower and a failover agent, and prints the
union of registered metric names one per line.

This script diffs the two sets, so a metric added in code without a
catalog row — or a catalog row whose metric no longer exists — fails
CI, the same way tools/check_docs.py pins the workload registry.

Usage: check_metrics.py [path/to/example_service_demo]
       (default: build/example_service_demo)
"""

import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOC = os.path.join(REPO, "docs", "ADMIN.md")
CATALOG_NAME_RE = re.compile(r"`(topkmon_[a-z0-9_]+)`")
DUMPED_NAME_RE = re.compile(r"^topkmon_[a-z0-9_]+$")


def catalog_names():
    text = open(DOC, encoding="utf-8").read()
    begin = text.find("<!-- metric-catalog-begin -->")
    end = text.find("<!-- metric-catalog-end -->")
    if begin < 0 or end < 0 or end <= begin:
        sys.exit("error: docs/ADMIN.md: metric-catalog-begin/-end "
                 "markers not found")
    names = CATALOG_NAME_RE.findall(text[begin:end])
    if not names:
        sys.exit("error: docs/ADMIN.md: no `topkmon_*` names between the "
                 "catalog markers")
    duplicates = {n for n in names if names.count(n) > 1}
    if duplicates:
        sys.exit("error: docs/ADMIN.md: duplicate catalog rows: " +
                 ", ".join(sorted(duplicates)))
    return set(names)


def registered_names(binary):
    try:
        out = subprocess.run([binary, "--dump_metrics"], check=True,
                             capture_output=True, text=True,
                             timeout=120).stdout
    except FileNotFoundError:
        sys.exit(f"error: {binary} not found — build it first "
                 "(cmake --build build --target example_service_demo)")
    except subprocess.CalledProcessError as e:
        sys.exit(f"error: {binary} --dump_metrics failed "
                 f"({e.returncode}):\n{e.stderr}")
    names = set()
    for line in out.splitlines():
        line = line.strip()
        if not line:
            continue
        if not DUMPED_NAME_RE.match(line):
            sys.exit(f"error: unexpected --dump_metrics line: {line!r}")
        names.add(line)
    if not names:
        sys.exit("error: --dump_metrics printed no metric names")
    return names


def main():
    binary = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        REPO, "build", "example_service_demo")
    documented = catalog_names()
    registered = registered_names(binary)
    errors = []
    for name in sorted(registered - documented):
        errors.append(f"registered metric '{name}' has no docs/ADMIN.md "
                      "catalog row — document it alongside the code")
    for name in sorted(documented - registered):
        errors.append(f"docs/ADMIN.md catalogs '{name}' but no live node "
                      "registers it — remove the stale row")
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if errors:
        print(f"\n{len(errors)} metric catalog error(s)", file=sys.stderr)
        return 1
    print(f"metric catalog check passed ({len(registered)} metrics "
          "documented and registered)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
