#include "cluster/local_cluster.h"

#include <chrono>
#include <thread>
#include <utility>

namespace topkmon {

LocalCluster::~LocalCluster() { Stop(); }

ServiceOptions LocalCluster::NodeServiceOptions(std::size_t i) const {
  ServiceOptions service = options_.service;
  if (!service.journal.dir.empty()) {
    service.journal.dir += "/p" + std::to_string(i);
  }
  // One admin endpoint per partition: a fixed port cannot be shared by
  // N in-process nodes, so each binds ephemeral and publishes it
  // through LocalCluster::admin_port(i).
  service.admin.port = 0;
  return service;
}

NetServerOptions LocalCluster::NodeServerOptions(std::size_t i,
                                                 std::uint16_t port) const {
  NetServerOptions net = options_.net;
  net.port = port;
  net.server_tag = static_cast<std::uint32_t>(i);
  return net;
}

Result<std::unique_ptr<LocalCluster>> LocalCluster::Start(
    const LocalClusterOptions& options) {
  if (options.partitions == 0 || options.partitions > 256) {
    return Status::InvalidArgument("a cluster runs 1..256 partitions, got " +
                                   std::to_string(options.partitions));
  }
  if (!options.engine_factory) {
    return Status::InvalidArgument("engine_factory is required");
  }
  if (options.net.port != 0) {
    return Status::InvalidArgument(
        "partitions bind ephemeral ports; set net.port = 0 and read the "
        "map() back");
  }
  std::unique_ptr<LocalCluster> cluster(new LocalCluster(options));
  std::vector<PartitionEndpoint> endpoints;
  for (std::size_t i = 0; i < options.partitions; ++i) {
    Node node;
    const ServiceOptions service_options = cluster->NodeServiceOptions(i);
    node.journal_dir = service_options.journal.dir;
    if (node.journal_dir.empty()) {
      node.service = std::make_unique<MonitorService>(
          options.engine_factory(), service_options);
    } else {
      // Open() so a pre-existing journal (a cluster restarted in place)
      // recovers instead of erroring; a missing directory is first boot.
      Result<std::unique_ptr<MonitorService>> opened =
          MonitorService::Open(options.engine_factory, service_options);
      if (!opened.ok()) {
        return Status(opened.status().code(),
                      "partition " + std::to_string(i) +
                          " failed to open: " + opened.status().message());
      }
      node.service = std::move(*opened);
    }
    node.server = std::make_unique<TcpServer>(
        *node.service, cluster->NodeServerOptions(i, /*port=*/0));
    const Status started = node.server->Start();
    if (!started.ok()) {
      return Status(started.code(),
                    "partition " + std::to_string(i) +
                        " failed to start: " + started.message());
    }
    node.port = node.server->port();
    endpoints.push_back(
        PartitionEndpoint{options.net.bind_address, node.port, {}});
    cluster->nodes_.push_back(std::move(node));
  }
  Result<PartitionMap> map = PartitionMap::Create(std::move(endpoints));
  if (!map.ok()) return map.status();
  cluster->map_.emplace(std::move(*map));
  return cluster;
}

Status LocalCluster::FlushAll() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].service) continue;
    TOPKMON_RETURN_IF_ERROR(nodes_[i].service->Flush());
  }
  return Status::Ok();
}

Status LocalCluster::StopPartition(std::size_t i) {
  if (i >= nodes_.size()) {
    return Status::InvalidArgument("partition " + std::to_string(i) +
                                   " out of range");
  }
  Node& node = nodes_[i];
  if (node.server) {
    node.server->Stop();
    node.server.reset();
  }
  if (node.service) {
    node.service->Shutdown();
    node.service.reset();
  }
  return Status::Ok();
}

Status LocalCluster::RestartPartition(std::size_t i) {
  if (i >= nodes_.size()) {
    return Status::InvalidArgument("partition " + std::to_string(i) +
                                   " out of range");
  }
  Node& node = nodes_[i];
  if (node.service || node.server) {
    return Status::FailedPrecondition("partition " + std::to_string(i) +
                                      " is already running");
  }
  if (node.journal_dir.empty()) {
    return Status::FailedPrecondition(
        "partition " + std::to_string(i) +
        " has no journal to recover from (cluster started without "
        "journaling)");
  }
  Result<std::unique_ptr<MonitorService>> opened =
      MonitorService::Open(options_.engine_factory, NodeServiceOptions(i));
  if (!opened.ok()) return opened.status();
  auto server = std::make_unique<TcpServer>(
      **opened, NodeServerOptions(i, node.port));
  // The original port may sit in the kernel's release pipeline for a
  // moment after StopPartition even with SO_REUSEADDR (a racing accept
  // can hold it); retry briefly rather than fail the recovery.
  Status started = server->Start();
  for (int attempt = 0; !started.ok() && attempt < 50; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    started = server->Start();
  }
  if (!started.ok()) {
    (*opened)->Shutdown();
    return Status(started.code(), "partition " + std::to_string(i) +
                                      " could not rebind port " +
                                      std::to_string(node.port) + ": " +
                                      started.message());
  }
  node.service = std::move(*opened);
  node.server = std::move(server);
  return Status::Ok();
}

void LocalCluster::Stop() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    (void)StopPartition(i);
  }
}

}  // namespace topkmon
