// In-process N-partition cluster harness.
//
// Spins up N fully independent MonitorService leaders — each with its
// own engine, its own cycle driver, its own journal directory
// (<journal root>/p<i>) and its own TcpServer announcing the partition
// index as the Welcome server_tag — and hands back the PartitionMap a
// ClusterRouter needs to talk to them. This is the deployment shape
// docs/CLUSTER.md describes, compressed into one process: the partitions
// share nothing but the address space, every byte between router and
// partition crosses a real TCP socket, and killing/restarting a
// partition exercises the same journal-recovery path a crashed host
// would.
//
// Used by tests/cluster/, bench/cluster_scaling and the service demo's
// --mode=cluster; production deployments run one topkmon_serve per
// partition on real hosts with the same map instead.

#ifndef TOPKMON_CLUSTER_LOCAL_CLUSTER_H_
#define TOPKMON_CLUSTER_LOCAL_CLUSTER_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/partition_map.h"
#include "net/server.h"
#include "service/monitor_service.h"

namespace topkmon {

struct LocalClusterOptions {
  std::size_t partitions = 3;
  /// Builds each partition's (fresh, query-free) engine. Required.
  std::function<std::unique_ptr<MonitorEngine>()> engine_factory;
  /// Per-partition service configuration. journal.dir, when set, is the
  /// cluster's journal ROOT: partition i journals under
  /// "<dir>/p<i>" (and recovers from it on RestartPartition). Empty
  /// disables journaling — and with it, partition restart.
  ServiceOptions service;
  /// Per-partition TCP options. port must be 0 (each partition binds its
  /// own ephemeral port, published through map()); server_tag is
  /// overwritten with the partition index.
  NetServerOptions net;
};

class LocalCluster {
 public:
  /// Starts every partition; fails (and tears down the partial cluster)
  /// if any bind or recovery fails.
  static Result<std::unique_ptr<LocalCluster>> Start(
      const LocalClusterOptions& options);

  ~LocalCluster();

  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  /// The endpoint list routers connect with (fixed for the cluster's
  /// lifetime — a restarted partition rebinds its original port).
  const PartitionMap& map() const { return *map_; }

  std::size_t partitions() const { return nodes_.size(); }

  /// Partition i's service, for observers and stats — nullptr while the
  /// partition is stopped.
  MonitorService* service(std::size_t i) {
    return i < nodes_.size() ? nodes_[i].service.get() : nullptr;
  }

  /// Partition i's admin (HTTP introspection) port — 0 while the
  /// partition is stopped or when options.service.admin.enabled is
  /// false. Every partition binds its own ephemeral admin port
  /// (options.service.admin.port is forced to 0, like net.port), so a
  /// scraper walks the cluster by asking each partition.
  std::uint16_t admin_port(std::size_t i) const {
    return i < nodes_.size() && nodes_[i].service != nullptr
               ? nodes_[i].service->admin_port()
               : 0;
  }

  /// Flushes every running partition (the cross-partition ingest fence:
  /// afterwards every record accepted so far is applied and its deltas
  /// published).
  Status FlushAll();

  /// Kills one partition: TCP listener down, service shut down and
  /// destroyed. Connected routers see transport errors; the journal
  /// stays on disk for RestartPartition. Idempotent.
  Status StopPartition(std::size_t i);

  /// Brings a stopped partition back: journal recovery via
  /// MonitorService::Open (sessions re-created under their labels, so
  /// routers resume), then a fresh TcpServer on the ORIGINAL port.
  /// FailedPrecondition without journaling or while the partition runs.
  Status RestartPartition(std::size_t i);

  /// Stops everything. Idempotent; also run by the destructor.
  void Stop();

 private:
  struct Node {
    std::unique_ptr<MonitorService> service;
    std::unique_ptr<TcpServer> server;
    std::uint16_t port = 0;
    std::string journal_dir;  ///< empty when journaling is off
  };

  explicit LocalCluster(const LocalClusterOptions& options)
      : options_(options) {}

  /// Builds node i's service options (journal dir fanned out per
  /// partition) and server options (tag = i, port = `port`).
  ServiceOptions NodeServiceOptions(std::size_t i) const;
  NetServerOptions NodeServerOptions(std::size_t i,
                                     std::uint16_t port) const;

  LocalClusterOptions options_;
  std::vector<Node> nodes_;
  std::optional<PartitionMap> map_;
};

}  // namespace topkmon

#endif  // TOPKMON_CLUSTER_LOCAL_CLUSTER_H_
