#include "cluster/topk_merge.h"

#include <algorithm>
#include <queue>

namespace topkmon {
namespace {

/// One list head in the refine loop: the entry plus where it came from.
struct Head {
  ResultEntry entry;
  std::size_t list = 0;
  std::size_t next = 0;  ///< index of the entry after this one in `list`
};

/// Heap order: worst head on top (std::priority_queue pops the largest,
/// so "a < b" must mean "a is a worse result than b" — the inverse of
/// ResultOrder, which sorts best-first).
struct WorseHead {
  bool operator()(const Head& a, const Head& b) const {
    return ResultOrder(b.entry, a.entry);
  }
};

}  // namespace

std::vector<ResultEntry> MergeTopK(
    const std::vector<std::vector<ResultEntry>>& per_partition, int k) {
  std::vector<ResultEntry> out;
  if (k <= 0) return out;
  out.reserve(static_cast<std::size_t>(k));
  // Seed with each list's best entry; every unseen entry of list L is
  // bounded by L's head (the lists are sorted), so the best head bounds
  // everything unconsumed — popping it is always safe (the threshold
  // argument), and k pops produce the global top-k.
  std::priority_queue<Head, std::vector<Head>, WorseHead> heads;
  for (std::size_t l = 0; l < per_partition.size(); ++l) {
    if (!per_partition[l].empty()) {
      heads.push(Head{per_partition[l][0], l, 1});
    }
  }
  while (!heads.empty() && static_cast<int>(out.size()) < k) {
    Head best = heads.top();
    heads.pop();
    out.push_back(best.entry);
    const std::vector<ResultEntry>& list = per_partition[best.list];
    if (best.next < list.size()) {
      heads.push(Head{list[best.next], best.list, best.next + 1});
    }
  }
  return out;
}

}  // namespace topkmon
