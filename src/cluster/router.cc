#include "cluster/router.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#include "cluster/topk_merge.h"

namespace topkmon {

ClusterRouter::ClusterRouter(PartitionMap map, std::string label,
                             const ClusterRouterOptions& options)
    : map_(std::move(map)),
      label_(std::move(label)),
      options_(options),
      clients_(map_.partitions()),
      resumed_(map_.partitions(), false),
      local_to_global_(map_.partitions()),
      mux_(map_.partitions()) {
  active_.reserve(map_.partitions());
  for (std::size_t p = 0; p < map_.partitions(); ++p) {
    active_.push_back(map_.endpoint(p));
  }
}

ClusterRouter::~ClusterRouter() = default;

namespace {

std::string SessionLabel(const std::string& label, std::size_t partition) {
  return label + "#p" + std::to_string(partition);
}

/// Dials one partition endpoint and verifies its announced identity
/// against the map — a mis-ordered endpoint list must fail loudly, not
/// scramble the record-id namespace. Replica endpoints carry the same
/// server tag as their partition's primary, so the check holds across
/// failovers too.
Result<std::unique_ptr<MonitorClient>> DialPartition(
    const PartitionEndpoint& ep, std::size_t p, const std::string& label,
    bool resume, const NetClientOptions& net) {
  Result<std::unique_ptr<MonitorClient>> client = MonitorClient::Connect(
      ep.host, ep.port, SessionLabel(label, p), resume, net);
  if (!client.ok()) {
    return Status::Unavailable("partition " + std::to_string(p) + " at " +
                               ep.host + ":" + std::to_string(ep.port) +
                               " is unreachable: " +
                               client.status().message());
  }
  const std::uint32_t tag = (*client)->server_tag();
  if (tag != p) {
    return Status::InvalidArgument(
        "partition map mismatch: partition " + std::to_string(p) + " at " +
        ep.host + ":" + std::to_string(ep.port) + " announced " +
        (tag == kNoServerTag ? std::string("no server tag")
                             : "server tag " + std::to_string(tag)) +
        ", expected " + std::to_string(p) +
        " (endpoint list out of order, or pointing at the wrong server?)");
  }
  return client;
}

}  // namespace

Result<std::unique_ptr<ClusterRouter>> ClusterRouter::Connect(
    PartitionMap map, const std::string& label, bool resume,
    const ClusterRouterOptions& options) {
  std::unique_ptr<ClusterRouter> router(
      new ClusterRouter(std::move(map), label, options));
  for (std::size_t p = 0; p < router->map_.partitions(); ++p) {
    Result<std::unique_ptr<MonitorClient>> client = DialPartition(
        router->active_[p], p, router->label_, resume, options.net);
    if (!client.ok()) return client.status();
    router->resumed_[p] = (*client)->resumed();
    router->clients_[p] = std::move(*client);
  }
  return router;
}

Status ClusterRouter::Reconnect(std::size_t partition) {
  if (partition >= map_.partitions()) {
    return Status::InvalidArgument("partition " + std::to_string(partition) +
                                   " out of range");
  }
  clients_[partition].reset();
  Result<std::unique_ptr<MonitorClient>> client = DialPartition(
      active_[partition], partition, label_, /*resume=*/true, options_.net);
  if (!client.ok()) return client.status();
  resumed_[partition] = (*client)->resumed();
  clients_[partition] = std::move(*client);
  return Status::Ok();
}

Status ClusterRouter::ReResolve(std::size_t partition) {
  if (partition >= map_.partitions()) {
    return Status::InvalidArgument("partition " + std::to_string(partition) +
                                   " out of range");
  }
  // Probe the configured primary and every replica; keep the connection
  // to the highest-epoch leader (several may claim the role briefly —
  // a deposed leader that has not yet fenced loses on epoch).
  std::vector<PartitionEndpoint> candidates;
  candidates.push_back(map_.endpoint(partition));
  for (const PartitionEndpoint& r : map_.endpoint(partition).replicas) {
    candidates.push_back(r);
  }
  std::unique_ptr<MonitorClient> best;
  PartitionEndpoint best_ep;
  std::uint64_t best_epoch = 0;
  for (const PartitionEndpoint& cand : candidates) {
    Result<std::unique_ptr<MonitorClient>> client = DialPartition(
        cand, partition, label_, /*resume=*/true, options_.net);
    if (!client.ok()) continue;
    const auto status = (*client)->GetStatus();
    // A fenced node still reports role 0 (leader) — the latch, not the
    // role, says whether its claim is already dead.
    if (!status.ok() || status->role != 0 /* leader */ || status->fenced) {
      (void)(*client)->Close(/*close_session=*/false);
      continue;
    }
    if (best == nullptr || status->fencing_epoch > best_epoch) {
      if (best != nullptr) (void)best->Close(/*close_session=*/false);
      best = std::move(*client);
      best_ep = cand;
      best_epoch = status->fencing_epoch;
    } else {
      (void)(*client)->Close(/*close_session=*/false);
    }
  }
  if (best == nullptr) {
    clients_[partition].reset();
    return Status::Unavailable(
        "no live leader for " + map_.Describe(partition) +
        " or any of its replicas (failover still electing?); retry "
        "ReResolve(" + std::to_string(partition) + ")");
  }
  best_ep.replicas.clear();  // active_ tracks a single dial target
  active_[partition] = std::move(best_ep);
  resumed_[partition] = best->resumed();
  clients_[partition] = std::move(best);
  return Status::Ok();
}

Status ClusterRouter::Down(std::size_t p, const std::string& detail) const {
  return Status::Unavailable(detail + ": " + map_.Describe(p) +
                             " is down; Reconnect(" + std::to_string(p) +
                             ") once the partition recovers");
}

Status ClusterRouter::MarkDown(std::size_t p, const Status& cause) {
  clients_[p].reset();
  return Status::Unavailable(map_.Describe(p) +
                             " failed mid-call and was marked down: " +
                             cause.message());
}

Status ClusterRouter::IngestPartition(std::size_t p,
                                      std::vector<Record> batch,
                                      IngestReport* report) {
  // The client re-sorts (stably, by arrival) before shipping, and a
  // RESOURCE_EXHAUSTED ack's accepted count is a prefix of THAT order —
  // sort here so "resend the suffix" indexes the same sequence.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const Record& a, const Record& b) {
                     return a.arrival < b.arrival;
                   });
  std::size_t off = 0;
  int retries = options_.max_ingest_retries;
  while (off < batch.size()) {
    Result<MonitorClient::IngestAck> ack = clients_[p]->Ingest(
        std::vector<Record>(batch.begin() + static_cast<std::ptrdiff_t>(off),
                            batch.end()));
    if (!ack.ok()) {
      const Status down = clients_[p]->connected()
                              ? ack.status()
                              : MarkDown(p, ack.status());
      report->rejected += batch.size() - off;
      if (report->first_error.ok()) report->first_error = down;
      return Status::Ok();  // isolation: other partitions still ingest
    }
    report->accepted += ack->accepted;
    off += ack->accepted;
    if (ack->rejected == 0) return Status::Ok();
    if (ack->first_error.code() == StatusCode::kFenced) {
      // The partition's leader was deposed mid-stream (v5): find the
      // promoted replica and resend the unaccepted suffix there — a
      // fenced leader admits nothing, so `off` already marks exactly
      // what still needs to land.
      const Status re = ReResolve(p);
      if (!re.ok() || --retries < 0) {
        report->rejected += batch.size() - off;
        if (report->first_error.ok()) {
          report->first_error = re.ok() ? ack->first_error : re;
        }
        return Status::Ok();
      }
      continue;
    }
    if (ack->first_error.code() != StatusCode::kResourceExhausted) {
      // Per-tuple refusals (validation etc.): the server judged the
      // whole batch, nothing left to resend.
      report->rejected += ack->rejected;
      if (report->first_error.ok()) report->first_error = ack->first_error;
      return Status::Ok();
    }
    // Queue filled mid-batch: the accepted tuples are the sorted prefix;
    // back off proportionally to the server's fullness hint and resend
    // the rest (the pacing idiom from docs/OPERATIONS.md).
    if (--retries < 0) {
      report->rejected += batch.size() - off;
      if (report->first_error.ok()) report->first_error = ack->first_error;
      return Status::Ok();
    }
    ++report->pacing_retries;
    std::this_thread::sleep_for(
        std::chrono::microseconds(100 + 4 * ack->queue_hint));
  }
  return Status::Ok();
}

Result<ClusterRouter::IngestReport> ClusterRouter::Ingest(
    const std::vector<Record>& tuples) {
  std::vector<std::vector<Record>> split(map_.partitions());
  for (const Record& r : tuples) {
    split[map_.OwnerOf(r.id)].push_back(r);
  }
  IngestReport report;
  for (std::size_t p = 0; p < map_.partitions(); ++p) {
    if (split[p].empty()) continue;
    if (!clients_[p]) {
      report.rejected += split[p].size();
      if (report.first_error.ok()) {
        report.first_error = Down(p, "cannot ingest " +
                                         std::to_string(split[p].size()) +
                                         " tuple(s)");
      }
      continue;
    }
    TOPKMON_RETURN_IF_ERROR(
        IngestPartition(p, std::move(split[p]), &report));
  }
  return report;
}

Status ClusterRouter::RegisterEverywhere(const QuerySpec& spec,
                                         std::vector<QueryId>* locals) {
  locals->clear();
  auto rollback = [&]() {
    for (std::size_t q = 0; q < locals->size(); ++q) {
      if (!clients_[q] || !clients_[q]->connected()) continue;
      const Status st = clients_[q]->Unregister((*locals)[q]);
      // A transport failure here orphans the registration server-side
      // (see the Register contract in router.h); what must not happen
      // is the router keeping a client it can no longer trust — mark
      // the partition down like any other mid-call failure.
      if (!st.ok() && !clients_[q]->connected()) {
        (void)MarkDown(q, st);
      }
    }
    locals->clear();
  };
  for (std::size_t p = 0; p < map_.partitions(); ++p) {
    if (!clients_[p]) {
      rollback();
      return Down(p, "cannot register query");
    }
    Result<QueryId> local = clients_[p]->Register(spec);
    if (!local.ok() && local.status().code() == StatusCode::kFenced &&
        ReResolve(p).ok()) {
      // Deposed leader: the promoted replica replayed the same journal,
      // so registering there continues the same local-id sequence.
      local = clients_[p]->Register(spec);
    }
    if (!local.ok()) {
      const Status st = clients_[p]->connected()
                            ? local.status()
                            : MarkDown(p, local.status());
      rollback();
      return st;
    }
    locals->push_back(*local);
  }
  return Status::Ok();
}

Result<QueryId> ClusterRouter::Register(const QuerySpec& spec) {
  std::vector<QueryId> locals;
  TOPKMON_RETURN_IF_ERROR(RegisterEverywhere(spec, &locals));
  const QueryId global = next_global_qid_++;
  for (std::size_t p = 0; p < map_.partitions(); ++p) {
    local_to_global_[p][locals[p]] = global;
  }
  queries_[global] = GlobalQuery{std::move(locals), spec.k};
  TOPKMON_RETURN_IF_ERROR(mux_.AddQuery(global, spec.k));
  return global;
}

Result<std::vector<RegisterOutcome>> ClusterRouter::RegisterBatch(
    const std::vector<QuerySpec>& specs) {
  std::vector<RegisterOutcome> out(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    Result<QueryId> global = Register(specs[s]);
    if (global.ok()) {
      out[s] = RegisterOutcome{StatusCode::kOk, *global, ""};
    } else {
      out[s] = RegisterOutcome{global.status().code(), 0,
                               global.status().message()};
    }
  }
  return out;
}

Status ClusterRouter::Unregister(QueryId query) {
  auto it = queries_.find(query);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(query) +
                            " is not registered on this router");
  }
  // All partitions must be reachable up front — a partial unregister
  // keeps the mapping so the caller can simply retry after Reconnect
  // (the per-partition retry tolerates NOT_FOUND from partitions that
  // already dropped the query).
  for (std::size_t p = 0; p < map_.partitions(); ++p) {
    if (!clients_[p]) {
      return Down(p, "cannot unregister query " + std::to_string(query));
    }
  }
  for (std::size_t p = 0; p < map_.partitions(); ++p) {
    Status st = clients_[p]->Unregister(it->second.locals[p]);
    if (st.code() == StatusCode::kFenced && ReResolve(p).ok()) {
      st = clients_[p]->Unregister(it->second.locals[p]);
    }
    if (st.ok() || st.code() == StatusCode::kNotFound) continue;
    return clients_[p]->connected() ? st : MarkDown(p, st);
  }
  for (std::size_t p = 0; p < map_.partitions(); ++p) {
    local_to_global_[p].erase(it->second.locals[p]);
  }
  queries_.erase(it);
  (void)mux_.RemoveQuery(query);
  return Status::Ok();
}

Result<std::vector<ResultEntry>> ClusterRouter::CurrentResult(
    QueryId query) {
  auto it = queries_.find(query);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(query) +
                            " is not registered on this router");
  }
  std::vector<std::vector<ResultEntry>> lists(map_.partitions());
  Timestamp as_of = std::numeric_limits<Timestamp>::max();
  Timestamp stale_by = 0;
  for (std::size_t p = 0; p < map_.partitions(); ++p) {
    if (!clients_[p]) {
      return Down(p, "cannot read query " + std::to_string(query));
    }
    Result<std::vector<ResultEntry>> local =
        clients_[p]->CurrentResult(it->second.locals[p]);
    if (!local.ok()) {
      return clients_[p]->connected() ? local.status()
                                      : MarkDown(p, local.status());
    }
    lists[p].reserve(local->size());
    for (const ResultEntry& e : *local) {
      lists[p].push_back(ResultEntry{
          NamespaceRecordId(e.id, p, map_.partitions()), e.score});
    }
    as_of = std::min(as_of, clients_[p]->snapshot_as_of());
    stale_by = std::max(stale_by, clients_[p]->snapshot_stale_by());
  }
  snapshot_as_of_ = as_of;
  snapshot_stale_by_ = stale_by;
  return MergeTopK(lists, it->second.k);
}

Result<std::vector<DeltaEvent>> ClusterRouter::PollDeltas(
    std::uint32_t max_events_per_partition,
    std::chrono::milliseconds timeout) {
  bool first_live = true;
  for (std::size_t p = 0; p < map_.partitions(); ++p) {
    if (!clients_[p]) continue;  // frontier stalls at its last answer
    Result<std::vector<DeltaEvent>> events = clients_[p]->PollDeltas(
        max_events_per_partition,
        first_live ? timeout : std::chrono::milliseconds(0));
    if (!events.ok()) {
      if (!clients_[p]->connected()) {
        (void)MarkDown(p, events.status());  // others still poll
        continue;
      }
      return events.status();
    }
    first_live = false;
    // Translate local query ids to the router's namespace. Events for
    // unknown local ids (an unregister racing buffered history) keep
    // their slot with the never-assigned global id 0 — dropping them
    // would punch a hole in the per-partition sequence the multiplexer
    // checks; it skips id 0 at apply time instead.
    std::vector<DeltaEvent> translated = std::move(*events);
    for (DeltaEvent& event : translated) {
      auto g = local_to_global_[p].find(event.delta.query);
      event.delta.query = g == local_to_global_[p].end() ? 0 : g->second;
    }
    // The server reports truncation explicitly (v4), so this stays
    // honest even when the binding cap was the server's own
    // max_poll_events clamp rather than max_events_per_partition.
    TOPKMON_RETURN_IF_ERROR(
        mux_.OnPartitionEvents(p, translated, clients_[p]->deltas_as_of(),
                               clients_[p]->deltas_truncated()));
  }
  std::vector<DeltaEvent> merged;
  mux_.Drain(&merged);
  return merged;
}

std::vector<DeltaEvent> ClusterRouter::FinalizeDeltas() {
  std::vector<DeltaEvent> merged;
  mux_.Finalize(&merged);
  return merged;
}

Status ClusterRouter::Close(bool close_session) {
  Status first = Status::Ok();
  for (std::size_t p = 0; p < map_.partitions(); ++p) {
    if (!clients_[p]) continue;
    const Status st = clients_[p]->Close(close_session);
    if (!st.ok() && first.ok()) first = st;
    clients_[p].reset();
  }
  return first;
}

}  // namespace topkmon
