#include "cluster/partition_map.h"

#include <cstdlib>

namespace topkmon {
namespace {

/// splitmix64 finalizer: a full-avalanche mix so sequential object ids
/// land on uncorrelated partitions.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

Result<PartitionMap> PartitionMap::Create(
    std::vector<PartitionEndpoint> endpoints) {
  if (endpoints.empty() || endpoints.size() > 256) {
    return Status::InvalidArgument(
        "a partition map holds 1..256 endpoints, got " +
        std::to_string(endpoints.size()));
  }
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    if (endpoints[i].host.empty()) {
      return Status::InvalidArgument("partition " + std::to_string(i) +
                                     " has an empty host");
    }
    if (endpoints[i].port == 0) {
      return Status::InvalidArgument("partition " + std::to_string(i) +
                                     " has port 0");
    }
    for (const PartitionEndpoint& replica : endpoints[i].replicas) {
      if (replica.host.empty() || replica.port == 0) {
        return Status::InvalidArgument(
            "partition " + std::to_string(i) +
            " has a malformed replica endpoint");
      }
    }
  }
  return PartitionMap(std::move(endpoints));
}

Result<PartitionMap> PartitionMap::Parse(const std::string& spec) {
  const auto parse_one =
      [](const std::string& item) -> Result<PartitionEndpoint> {
    const std::size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == item.size()) {
      return Status::InvalidArgument("bad partition endpoint '" + item +
                                     "' (want host:port)");
    }
    char* end = nullptr;
    const unsigned long port = std::strtoul(item.c_str() + colon + 1,
                                            &end, 10);
    if (end == nullptr || *end != '\0' || port == 0 || port > 0xFFFF) {
      return Status::InvalidArgument("bad port in partition endpoint '" +
                                     item + "'");
    }
    return PartitionEndpoint{item.substr(0, colon),
                             static_cast<std::uint16_t>(port),
                             {}};
  };
  std::vector<PartitionEndpoint> endpoints;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(start, comma - start);
    // "leader:port|standby:port|..." — the '|' tail is the partition's
    // failover replica set.
    std::size_t piece_start = 0;
    PartitionEndpoint partition;
    bool first = true;
    while (piece_start <= item.size()) {
      std::size_t bar = item.find('|', piece_start);
      if (bar == std::string::npos) bar = item.size();
      auto parsed = parse_one(item.substr(piece_start, bar - piece_start));
      if (!parsed.ok()) return parsed.status();
      if (first) {
        partition = std::move(*parsed);
        first = false;
      } else {
        partition.replicas.push_back(std::move(*parsed));
      }
      piece_start = bar + 1;
    }
    endpoints.push_back(std::move(partition));
    start = comma + 1;
  }
  return Create(std::move(endpoints));
}

std::size_t PartitionMap::OwnerOf(RecordId id) const {
  return static_cast<std::size_t>(Mix64(id) % endpoints_.size());
}

std::string PartitionMap::Describe(std::size_t i) const {
  return "partition " + std::to_string(i) + " at " + endpoints_[i].host +
         ":" + std::to_string(endpoints_[i].port);
}

}  // namespace topkmon
