// Merges N per-partition delta streams into one gap-free client view.
//
// Each partition is an independent MonitorService leader running its own
// cycles at its own pace; its session delta stream is gap-free and
// sequence-numbered *per partition*. The multiplexer reconstructs one
// coherent global stream from them without gaps or reordering artifacts:
//
//   1. Per-partition events are buffered, never applied immediately: a
//      cycle timestamp t is only *final* for partition p once p's
//      progress frontier has moved strictly past t (cycle timestamps may
//      repeat — two queue drains can both cycle at ts t — so "frontier
//      == t" is not enough).
//   2. The progress frontier comes from the Deltas as_of field
//      (protocol v4), which the server samples BEFORE draining the
//      session buffer: every event at when < as_of is either in that
//      answer or was delivered earlier. When the server flagged the
//      answer truncated (cut at the poll's effective cap with events
//      still buffered), the frontier only advances to the last
//      delivered event's timestamp instead.
//   3. The merge frontier is min over partitions of the progress
//      frontier. Every buffered timestamp strictly below it is complete
//      across ALL partitions; those groups are applied in timestamp
//      order, each producing at most one merged event per query (the
//      diff of consecutive global k-merges), with a router-assigned
//      contiguous global sequence number.
//
// The cluster-level as_of is the same min — the staleness-honest answer
// to "how current is this merged view".
//
// Restart semantics: a partition that crashed and recovered re-publishes
// its delta stream from sequence 1 with a fresh full-result baseline
// (the in-memory session buffer does not survive recovery). The
// multiplexer detects the sequence regression, resets that partition's
// contribution, and re-baselines from the incoming events — the MERGED
// stream stays gap-free and monotone (its timestamps are clamped to the
// last merged group), though events the dead partition published between
// the last poll and the crash are gone; docs/CLUSTER.md spells out the
// resulting guarantee.
//
// Thread model: not thread-safe; owned and driven by one ClusterRouter
// (which is itself single-threaded, like MonitorClient).

#ifndef TOPKMON_CLUSTER_DELTA_MUX_H_
#define TOPKMON_CLUSTER_DELTA_MUX_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/status.h"
#include "core/delta.h"
#include "service/subscription_hub.h"

namespace topkmon {

class DeltaMultiplexer {
 public:
  explicit DeltaMultiplexer(std::size_t partitions);

  /// Starts merging a query. `query` is the GLOBAL query id (the
  /// router's namespace); `k` caps the merged view. Fails on duplicates.
  Status AddQuery(QueryId query, int k);

  /// Stops merging a query; buffered events for it are discarded as
  /// they surface.
  Status RemoveQuery(QueryId query);

  /// Feeds one partition's poll answer. Events must carry GLOBAL query
  /// ids (the router translates before calling; events for unknown ids
  /// are skipped — an unregister may race buffered history) and
  /// PARTITION-LOCAL record ids (namespacing happens here). `as_of` is
  /// the answer's v4 frontier; `maybe_truncated` is the answer's v4
  /// truncated flag (events remained buffered server-side), in which
  /// case only the delivered
  /// events' timestamps advance the frontier. Returns Internal on a
  /// per-partition sequence gap (dropped events — the subscription
  /// buffer overflowed server-side).
  Status OnPartitionEvents(std::size_t partition,
                           const std::vector<DeltaEvent>& events,
                           Timestamp as_of, bool maybe_truncated);

  /// Appends every merged event that became final to *out (merged
  /// events carry contiguous seq numbers starting at 1 and namespaced
  /// record ids).
  void Drain(std::vector<DeltaEvent>* out);

  /// Quiescent flush: merges ALL buffered events regardless of the
  /// frontier. Only correct when the caller knows no more input is
  /// coming (every partition flushed and polled to empty) — the e2e
  /// teardown and bench epilogue, not steady-state operation.
  void Finalize(std::vector<DeltaEvent>* out);

  /// The merged view's staleness-honest frontier: min over partitions
  /// of the per-partition progress (INT64_MIN until every partition has
  /// answered at least one poll).
  Timestamp as_of() const;

  /// The current merged top-k of a query (what the delta stream has
  /// built so far; empty if unknown). Entry ids are namespaced.
  std::vector<ResultEntry> CurrentView(QueryId query) const;

  std::uint64_t merged_events() const { return merged_seq_; }
  std::uint64_t partition_restarts() const { return restarts_; }
  std::size_t buffered_events() const;

 private:
  struct Pending {
    Timestamp when = 0;
    ResultDelta delta;  ///< global query id, namespaced record ids
  };

  struct PartitionState {
    bool seen_any = false;
    std::uint64_t last_seq = 0;
    Timestamp progress;  ///< every event with when < progress is in hand
    std::deque<Pending> buffered;
  };

  struct QueryState {
    int k = 0;
    /// Per-partition current top-k contribution (id -> score).
    std::vector<std::map<RecordId, double>> views;
    /// Last emitted merged top-k, in ResultOrder.
    std::vector<ResultEntry> merged;
  };

  /// Applies and emits every buffered group with when < `frontier`.
  void DrainBelow(Timestamp frontier, std::vector<DeltaEvent>* out);

  const std::size_t partitions_;
  std::vector<PartitionState> parts_;
  std::map<QueryId, QueryState> queries_;
  std::uint64_t merged_seq_ = 0;
  std::uint64_t restarts_ = 0;
  Timestamp last_merged_when_;
};

}  // namespace topkmon

#endif  // TOPKMON_CLUSTER_DELTA_MUX_H_
