// Static partition map of a topkmon cluster.
//
// A cluster (docs/CLUSTER.md) is N independent MonitorService leaders —
// each with its own journal directory, its own replication chain and its
// own TCP endpoint — plus client-side routers that split the work:
// ingest is hash-routed by the caller's object id to exactly one
// partition, while query registration and reads scatter to all
// partitions and gather. The map is static configuration: every router
// and every operator tool must agree on the same ordered endpoint list,
// because the partition index IS the routing key space (OwnerOf) and the
// record-id namespace (NamespaceRecordId in topk_merge.h).
//
// Hash routing uses a splitmix64 finalizer over the caller's object id
// so adjacent ids scatter uniformly; grid-region (locality-aware)
// assignment is a possible later refinement, which is why the map owns
// the policy rather than callers hashing ad hoc.

#ifndef TOPKMON_CLUSTER_PARTITION_MAP_H_
#define TOPKMON_CLUSTER_PARTITION_MAP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/record.h"
#include "common/status.h"

namespace topkmon {

/// One partition's TCP endpoint, plus the standby replicas of its
/// replication group (v5). `replicas` lists where the router looks for
/// the new leader when this endpoint answers FENCED or dies — the order
/// is plain configuration, probes decide who actually leads. Nested
/// replicas-of-replicas are not a thing; inner lists stay empty.
struct PartitionEndpoint {
  std::string host;
  std::uint16_t port = 0;
  std::vector<PartitionEndpoint> replicas;
};

/// Immutable ordered list of partition endpoints; the index in the list
/// is the partition id every protocol artifact (Welcome server_tag,
/// namespaced record ids) refers to.
class PartitionMap {
 public:
  /// Requires 1..256 endpoints with non-empty hosts and non-zero ports.
  static Result<PartitionMap> Create(std::vector<PartitionEndpoint> endpoints);

  /// Parses "host:port,host:port,..." (the CLI / config syntax). Each
  /// partition may name failover replicas with '|':
  /// "host:port|standby:port|standby2:port,next-partition:port" — the
  /// first endpoint is the presumed leader, the rest are where the
  /// router re-resolves after a failover.
  static Result<PartitionMap> Parse(const std::string& spec);

  std::size_t partitions() const { return endpoints_.size(); }
  const PartitionEndpoint& endpoint(std::size_t i) const {
    return endpoints_[i];
  }

  /// The partition owning object id `id`: splitmix64(id) % partitions().
  /// Every router must use this — a disagreeing producer would split one
  /// object's records across partitions.
  std::size_t OwnerOf(RecordId id) const;

  /// "partition 2 at 127.0.0.1:4010" — the phrasing used in Unavailable
  /// errors so operators can find the dead endpoint without a lookup.
  std::string Describe(std::size_t i) const;

 private:
  explicit PartitionMap(std::vector<PartitionEndpoint> endpoints)
      : endpoints_(std::move(endpoints)) {}

  std::vector<PartitionEndpoint> endpoints_;
};

}  // namespace topkmon

#endif  // TOPKMON_CLUSTER_PARTITION_MAP_H_
