// Client-side scatter-gather router over a partitioned cluster.
//
// A ClusterRouter speaks to every partition of a static PartitionMap
// through one MonitorClient each and presents the MonitorClient surface
// for the whole cluster:
//
//   * Ingest hash-splits the batch by the CALLER's object ids
//     (PartitionMap::OwnerOf) and ships each sub-batch to its owning
//     partition, self-pacing per partition on RESOURCE_EXHAUSTED with
//     the queue_hint backoff-and-resend-suffix protocol. A dead
//     partition only loses its own tuples — the healthy partitions'
//     sub-batches still flow (failure isolation).
//   * Register / RegisterBatch / Unregister scatter to ALL partitions.
//     The router assigns the global query id and keeps the global<->
//     per-partition local id mapping; a partial registration is rolled
//     back so a query either exists everywhere or nowhere.
//   * CurrentResult gathers every partition's top-k and k-merges them
//     (topk_merge.h) under namespaced record ids; the snapshot's as_of
//     is the MIN across partitions (staleness-honest: the merged answer
//     is only as fresh as its stalest contributor).
//   * PollDeltas polls every partition's subscription and feeds a
//     DeltaMultiplexer, returning the gap-free merged stream.
//
// Partition failures surface as StatusCode::kUnavailable with the
// endpoint spelled out (PartitionMap::Describe); the failed partition is
// marked down and every later call on it short-circuits to the same
// Unavailable until Reconnect(p) succeeds. Reconnecting resumes the
// per-partition session by label, and the multiplexer absorbs the
// resulting stream resumption (or restart re-baseline) without gaps in
// the merged sequence.
//
// Thread model: like MonitorClient, a ClusterRouter is NOT thread-safe;
// use one per thread. Session labels are derived per partition as
// "<label>#p<i>", so two routers sharing a label share sessions.

#ifndef TOPKMON_CLUSTER_ROUTER_H_
#define TOPKMON_CLUSTER_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/delta_mux.h"
#include "cluster/partition_map.h"
#include "net/client.h"

namespace topkmon {

struct ClusterRouterOptions {
  NetClientOptions net;
  /// Pacing retries per partition sub-batch before Ingest gives up on a
  /// persistently full queue.
  int max_ingest_retries = 1000;
};

class ClusterRouter {
 public:
  /// Connects to every partition (session label "<label>#p<i>",
  /// resume-by-label semantics as in MonitorClient::Connect) and
  /// verifies each Welcome's server_tag matches the partition index —
  /// a mis-wired map (two routers disagreeing on endpoint order) is a
  /// data-corruption bug this check turns into a connect error.
  static Result<std::unique_ptr<ClusterRouter>> Connect(
      PartitionMap map, const std::string& label, bool resume = true,
      const ClusterRouterOptions& options = {});

  ~ClusterRouter();

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  const PartitionMap& map() const { return map_; }
  bool partition_up(std::size_t p) const { return clients_[p] != nullptr; }
  /// True iff partition p's session was adopted rather than created.
  bool resumed(std::size_t p) const { return resumed_[p]; }

  /// Cluster-wide ingest outcome (sums of the per-partition acks).
  struct IngestReport {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t pacing_retries = 0;
    Status first_error;  ///< first per-tuple or per-partition refusal
  };

  /// Hash-routes `tuples` by their CALLER-assigned ids and ships each
  /// sub-batch to its owner, pacing on backpressure. Tuples owned by a
  /// down partition are counted rejected (first_error = Unavailable
  /// naming the endpoint) without disturbing the other partitions.
  Result<IngestReport> Ingest(const std::vector<Record>& tuples);

  /// Registers `spec` on EVERY partition and returns the router-assigned
  /// global query id. All-or-nothing: a refusal or dead partition rolls
  /// back the partial registration and nothing is tracked. A partition
  /// whose rollback Unregister itself fails in transport is marked down
  /// (so the connection state stays honest), and its registration may
  /// linger server-side until the session is closed or resumed — the
  /// router never reuses a local id it did not track, so a leaked
  /// registration only consumes a server-side query slot.
  Result<QueryId> Register(const QuerySpec& spec);

  /// Batched scatter registration; outcomes are per spec, each
  /// all-or-nothing as in Register.
  Result<std::vector<RegisterOutcome>> RegisterBatch(
      const std::vector<QuerySpec>& specs);

  /// Unregisters everywhere. Requires every partition up (a dead one
  /// returns Unavailable and leaves the query tracked for a retry).
  Status Unregister(QueryId query);

  /// Merged snapshot of a query's global top-k (namespaced ids);
  /// snapshot_as_of() is the min across partitions, snapshot_stale_by()
  /// the max.
  Result<std::vector<ResultEntry>> CurrentResult(QueryId query);
  Timestamp snapshot_as_of() const { return snapshot_as_of_; }
  Timestamp snapshot_stale_by() const { return snapshot_stale_by_; }

  /// Polls every live partition (each up to `max_events_per_partition`;
  /// 0 lets each server pick its own cap — truncation is reported by
  /// the server either way, so the merge frontier stays honest no
  /// matter which cap binds — waiting up to `timeout` on the FIRST live
  /// partition only — later
  /// ones poll non-blocking-ish with a zero timeout so one quiet
  /// partition cannot stall the others' freshness), feeds the merged
  /// stream, and returns the events that became final. Dead partitions
  /// are skipped: the merge frontier simply stops advancing past their
  /// last answer until Reconnect(p).
  Result<std::vector<DeltaEvent>> PollDeltas(
      std::uint32_t max_events_per_partition,
      std::chrono::milliseconds timeout);

  /// Quiescent flush of the merged stream (DeltaMultiplexer::Finalize);
  /// call only after every partition has been flushed and polled dry.
  std::vector<DeltaEvent> FinalizeDeltas();

  /// Merged-stream frontier (min partition progress).
  Timestamp deltas_as_of() const { return mux_.as_of(); }
  std::uint64_t merged_events() const { return mux_.merged_events(); }
  std::uint64_t partition_restarts() const {
    return mux_.partition_restarts();
  }

  /// Re-dials a down (or up — the old connection is discarded)
  /// partition, resuming its session by label. The delta multiplexer
  /// absorbs the resumed stream; if the partition itself restarted in
  /// between, the stream re-baselines (partition_restarts() ticks).
  /// Dials the partition's *current* endpoint — after a ReResolve this
  /// is the promoted replica, not the map's configured primary.
  Status Reconnect(std::size_t partition);

  /// Leader re-resolution (v5): probes the partition's configured
  /// endpoint and every replica (PartitionEndpoint::replicas), adopts
  /// the one answering as a leader with the highest fencing epoch, and
  /// reconnects the partition's session there. Called automatically
  /// when a write bounces with FENCED (the old leader was deposed);
  /// callable directly after an orchestrated failover. Fails Unavailable
  /// when no probed endpoint currently leads (election still running).
  Status ReResolve(std::size_t partition);

  /// The endpoint partition p's connection currently targets (the map's
  /// primary until a ReResolve moves it).
  const PartitionEndpoint& active_endpoint(std::size_t p) const {
    return active_[p];
  }

  /// Closes every live connection; with close_session the per-partition
  /// sessions are released too (no resume afterwards).
  Status Close(bool close_session = false);

 private:
  ClusterRouter(PartitionMap map, std::string label,
                const ClusterRouterOptions& options);

  /// The standing Unavailable for a down partition.
  Status Down(std::size_t p, const std::string& detail) const;

  /// Marks p down after a transport error and returns the Unavailable
  /// wrapping it.
  Status MarkDown(std::size_t p, const Status& cause);

  /// Paced ingest of one partition's sub-batch (sorted by arrival).
  Status IngestPartition(std::size_t p, std::vector<Record> batch,
                         IngestReport* report);

  /// One spec registered on all partitions, with rollback. On success
  /// appends the per-partition local ids to *locals.
  Status RegisterEverywhere(const QuerySpec& spec,
                            std::vector<QueryId>* locals);

  const PartitionMap map_;
  const std::string label_;
  const ClusterRouterOptions options_;
  std::vector<std::unique_ptr<MonitorClient>> clients_;
  std::vector<bool> resumed_;
  /// Current dial target per partition (primary until ReResolve).
  std::vector<PartitionEndpoint> active_;

  /// One globally-registered query: its local id on each partition
  /// (index = partition) plus the merge cardinality.
  struct GlobalQuery {
    std::vector<QueryId> locals;
    int k = 0;
  };

  QueryId next_global_qid_ = 1;  ///< 0 stays a never-assigned sentinel
  std::map<QueryId, GlobalQuery> queries_;
  /// per partition: local qid -> global qid (delta translation).
  std::vector<std::map<QueryId, QueryId>> local_to_global_;

  DeltaMultiplexer mux_;
  Timestamp snapshot_as_of_ = 0;
  Timestamp snapshot_stale_by_ = 0;
};

}  // namespace topkmon

#endif  // TOPKMON_CLUSTER_ROUTER_H_
