#include "cluster/delta_mux.h"

#include <algorithm>
#include <limits>
#include <set>
#include <utility>

#include "cluster/topk_merge.h"

namespace topkmon {
namespace {

constexpr Timestamp kNoProgress = std::numeric_limits<Timestamp>::min();

}  // namespace

DeltaMultiplexer::DeltaMultiplexer(std::size_t partitions)
    : partitions_(partitions),
      parts_(partitions),
      last_merged_when_(kNoProgress) {
  for (PartitionState& p : parts_) p.progress = kNoProgress;
}

Status DeltaMultiplexer::AddQuery(QueryId query, int k) {
  if (k <= 0) {
    return Status::InvalidArgument("k must be positive, got " +
                                   std::to_string(k));
  }
  auto [it, inserted] = queries_.emplace(query, QueryState{});
  if (!inserted) {
    return Status::AlreadyExists("query " + std::to_string(query) +
                                 " is already multiplexed");
  }
  it->second.k = k;
  it->second.views.resize(partitions_);
  return Status::Ok();
}

Status DeltaMultiplexer::RemoveQuery(QueryId query) {
  if (queries_.erase(query) == 0) {
    return Status::NotFound("query " + std::to_string(query) +
                            " is not multiplexed");
  }
  return Status::Ok();
}

Status DeltaMultiplexer::OnPartitionEvents(
    std::size_t partition, const std::vector<DeltaEvent>& events,
    Timestamp as_of, bool maybe_truncated) {
  if (partition >= partitions_) {
    return Status::InvalidArgument("partition " + std::to_string(partition) +
                                   " out of range");
  }
  PartitionState& part = parts_[partition];
  for (const DeltaEvent& event : events) {
    if (part.seen_any && event.seq <= part.last_seq) {
      // Sequence regression: the partition restarted and its recovered
      // service re-published from a fresh session buffer. Everything we
      // buffered but had not merged is superseded by the incoming full
      // baseline, and the per-partition views must be rebuilt from it.
      ++restarts_;
      part.buffered.clear();
      for (auto& [qid, qs] : queries_) {
        (void)qid;
        qs.views[partition].clear();
      }
    } else if (part.seen_any && event.seq != part.last_seq + 1) {
      return Status::Internal(
          "partition " + std::to_string(partition) +
          " delta stream gap: expected seq " +
          std::to_string(part.last_seq + 1) + ", got " +
          std::to_string(event.seq) +
          " (server-side subscription buffer overflowed)");
    }
    part.seen_any = true;
    part.last_seq = event.seq;

    Pending pending;
    pending.when = event.delta.when;
    pending.delta.query = event.delta.query;
    pending.delta.when = event.delta.when;
    pending.delta.added.reserve(event.delta.added.size());
    for (const ResultEntry& e : event.delta.added) {
      pending.delta.added.push_back(ResultEntry{
          NamespaceRecordId(e.id, partition, partitions_), e.score});
    }
    pending.delta.removed.reserve(event.delta.removed.size());
    for (const ResultEntry& e : event.delta.removed) {
      pending.delta.removed.push_back(ResultEntry{
          NamespaceRecordId(e.id, partition, partitions_), e.score});
    }
    part.buffered.push_back(std::move(pending));
  }

  // Advance the partition frontier. An untruncated answer proves every
  // event below the server-sampled as_of is in hand; a truncated one
  // only proves it for timestamps below the last delivered event (the
  // stream is when-ordered, but the cut may have split that timestamp).
  Timestamp advance = kNoProgress;
  if (!maybe_truncated) {
    advance = as_of;
  } else if (!events.empty()) {
    advance = events.back().delta.when;
  }
  part.progress = std::max(part.progress, advance);
  return Status::Ok();
}

Timestamp DeltaMultiplexer::as_of() const {
  Timestamp frontier = std::numeric_limits<Timestamp>::max();
  for (const PartitionState& p : parts_) {
    frontier = std::min(frontier, p.progress);
  }
  return frontier;
}

std::size_t DeltaMultiplexer::buffered_events() const {
  std::size_t n = 0;
  for (const PartitionState& p : parts_) n += p.buffered.size();
  return n;
}

std::vector<ResultEntry> DeltaMultiplexer::CurrentView(QueryId query) const {
  auto it = queries_.find(query);
  if (it == queries_.end()) return {};
  return it->second.merged;
}

void DeltaMultiplexer::Drain(std::vector<DeltaEvent>* out) {
  DrainBelow(as_of(), out);
}

void DeltaMultiplexer::Finalize(std::vector<DeltaEvent>* out) {
  DrainBelow(std::numeric_limits<Timestamp>::max(), out);
}

void DeltaMultiplexer::DrainBelow(Timestamp frontier,
                                  std::vector<DeltaEvent>* out) {
  // Collect every finalized pending, keyed for a deterministic apply
  // order: timestamp groups ascending, partitions within a group in
  // index order, each partition's own events in arrival order (deques
  // are when-ordered, so front-popping preserves it).
  struct Item {
    Timestamp when;
    std::size_t partition;
    std::size_t arrival;
    ResultDelta delta;
  };
  std::vector<Item> items;
  for (std::size_t p = 0; p < partitions_; ++p) {
    std::deque<Pending>& buffered = parts_[p].buffered;
    std::size_t arrival = 0;
    while (!buffered.empty() && buffered.front().when < frontier) {
      items.push_back(Item{buffered.front().when, p, arrival++,
                           std::move(buffered.front().delta)});
      buffered.pop_front();
    }
  }
  if (items.empty()) return;
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.partition != b.partition) return a.partition < b.partition;
    return a.arrival < b.arrival;
  });

  std::size_t i = 0;
  while (i < items.size()) {
    const Timestamp group_when = items[i].when;
    std::set<QueryId> touched;
    for (; i < items.size() && items[i].when == group_when; ++i) {
      auto qit = queries_.find(items[i].delta.query);
      if (qit == queries_.end()) continue;  // unregistered mid-stream
      std::map<RecordId, double>& view =
          qit->second.views[items[i].partition];
      for (const ResultEntry& e : items[i].delta.removed) view.erase(e.id);
      for (const ResultEntry& e : items[i].delta.added) view[e.id] = e.score;
      touched.insert(qit->first);
    }

    // One merged event per touched query per timestamp group: k-merge
    // the per-partition contributions, diff against the last merged
    // view. The emitted timestamp is clamped monotone — it can only
    // regress after a partition-restart re-baseline.
    for (QueryId qid : touched) {
      QueryState& qs = queries_[qid];
      std::vector<std::vector<ResultEntry>> lists(partitions_);
      for (std::size_t p = 0; p < partitions_; ++p) {
        lists[p].reserve(qs.views[p].size());
        for (const auto& [id, score] : qs.views[p]) {
          lists[p].push_back(ResultEntry{id, score});
        }
        std::sort(lists[p].begin(), lists[p].end(), ResultOrder);
      }
      std::vector<ResultEntry> merged = MergeTopK(lists, qs.k);

      ResultDelta delta;
      delta.query = qid;
      delta.when = std::max(group_when, last_merged_when_);
      for (const ResultEntry& e : merged) {
        if (std::none_of(qs.merged.begin(), qs.merged.end(),
                         [&](const ResultEntry& o) { return o.id == e.id; })) {
          delta.added.push_back(e);
        }
      }
      for (const ResultEntry& e : qs.merged) {
        if (std::none_of(merged.begin(), merged.end(),
                         [&](const ResultEntry& o) { return o.id == e.id; })) {
          delta.removed.push_back(e);
        }
      }
      if (delta.added.empty() && delta.removed.empty()) continue;
      last_merged_when_ = delta.when;
      qs.merged = std::move(merged);
      DeltaEvent event;
      event.seq = ++merged_seq_;
      event.delta = std::move(delta);
      out->push_back(std::move(event));
    }
  }
}

}  // namespace topkmon
