// K-merge of per-partition top-k lists into the global top-k.
//
// Correctness rests on the same containment argument ShardedEngine uses
// in-process (src/core/sharded_engine.cc): every record lives on exactly
// one partition, so each of the global k best is among its own
// partition's k best — the global top-k is a subset of the union of the
// per-partition top-k lists, and merging those lists loses nothing.
//
// The merge itself is the bound-and-refine loop of TSL's threshold
// algorithm (src/tsl/threshold_algorithm.cc) specialized to presorted
// inputs: each partition list is already in ResultOrder, so the best
// unconsumed head across all lists bounds every unseen entry, and
// popping heads best-first terminates after exactly k pops instead of
// sorting the whole union.
//
// Record-id namespacing: each partition assigns its own dense local
// record ids (the engines' sliding windows require contiguity, so the
// ids cannot be partition-strided at the source). The merged client view
// needs globally unique ids, so every entry is re-identified as
// local_id * partitions + partition — reversible, collision-free, and
// applied consistently by the snapshot gather and the delta multiplexer
// so the two views name records identically.

#ifndef TOPKMON_CLUSTER_TOPK_MERGE_H_
#define TOPKMON_CLUSTER_TOPK_MERGE_H_

#include <cstddef>
#include <vector>

#include "core/query.h"

namespace topkmon {

/// Global id of a partition-local record: local_id * partitions +
/// partition. Requires partition < partitions.
inline RecordId NamespaceRecordId(RecordId local_id, std::size_t partition,
                                  std::size_t partitions) {
  return local_id * static_cast<RecordId>(partitions) +
         static_cast<RecordId>(partition);
}

/// Merges per-partition result lists (each sorted by ResultOrder, as
/// every engine's CurrentResult returns) into the global top-k, with
/// entry ids ALREADY namespaced by the caller. Ties follow ResultOrder
/// (descending score, then descending id), making the merge
/// deterministic for any input.
std::vector<ResultEntry> MergeTopK(
    const std::vector<std::vector<ResultEntry>>& per_partition, int k);

}  // namespace topkmon

#endif  // TOPKMON_CLUSTER_TOPK_MERGE_H_
