// Named, seed-deterministic workload generators.
//
// The paper's evaluation (Section 8) drives every experiment from one
// synthetic stream shape; a production monitoring service sees far more
// texture — skewed keys, focused query populations, bursty and diurnal
// arrival rates, query churn, multi-tenant blends, adversarial
// timestamps. This library packages those scenarios behind one
// interface so the fuzz tier, the benches and the demo all draw from
// the same generators: a workload is selected by name, parameterized by
// WorkloadOptions, and emits per-cycle record batches, query
// register/unregister mixes and arrival-time schedules. The same name,
// options and seed always produce a byte-identical step sequence.
//
// The registered names (see ListWorkloads() and docs/WORKLOADS.md):
// uniform, zipfian-keys, zipfian-queries, bursty, diurnal, query-churn,
// multi-tenant, adversarial-slack.

#ifndef TOPKMON_WORKLOAD_WORKLOAD_H_
#define TOPKMON_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/record.h"
#include "common/status.h"
#include "core/query.h"

namespace topkmon {

/// Options common to every named workload. Workload-specific knobs ride
/// in `params`; each workload's Params() listing names them with their
/// defaults, and MakeWorkload rejects keys the workload never declared.
struct WorkloadOptions {
  int dim = 2;
  std::uint64_t seed = 42;
  /// Result size of generated queries.
  int k = 10;
  /// Mean arrivals per cycle; rate-modulating workloads scale around it.
  std::size_t mean_batch = 64;
  /// Steady-state number of live queries.
  std::size_t num_queries = 8;
  /// Timestamp of the first cycle and the per-cycle advance.
  Timestamp start = 1;
  Timestamp tick = 1;
  /// Workload-specific parameter overrides by name.
  std::map<std::string, double> params;
};

/// One resolved workload parameter, for self-describing listings.
struct WorkloadParam {
  std::string name;
  std::string description;
  double value = 0.0;
};

/// A query register/unregister event scheduled by the workload. A
/// consumer applies the cycle's events before processing its arrivals.
struct QueryEvent {
  enum Kind { kRegister, kUnregister };
  Kind kind = kRegister;
  QuerySpec spec;  ///< kRegister: the full spec (id already assigned)
  QueryId id = 0;  ///< the query id (both kinds)
};

/// One cycle of a workload. Record ids are strictly increasing and
/// arrival timestamps non-decreasing across steps (the engine Append
/// contract), with every position inside the unit workspace.
struct WorkloadStep {
  std::uint64_t cycle = 0;
  Timestamp now = 0;
  std::vector<Record> arrivals;
  std::vector<QueryEvent> query_events;
};

/// A named, seed-deterministic workload generator.
class Workload {
 public:
  virtual ~Workload() = default;
  virtual const std::string& name() const = 0;
  virtual const std::string& description() const = 0;
  virtual int dim() const = 0;
  /// Generates the next cycle.
  virtual WorkloadStep NextStep() = 0;
  /// The workload's parameters with their resolved values.
  virtual std::vector<WorkloadParam> Params() const = 0;
};

/// Registry metadata for ListWorkloads().
struct WorkloadInfo {
  std::string name;
  std::string description;
};

/// Every registered workload name with its one-line description.
const std::vector<WorkloadInfo>& ListWorkloads();

/// Instantiates a workload by registry name. Unknown names, invalid
/// options and `params` keys the workload never declared all return
/// InvalidArgument naming the valid choices.
Result<std::unique_ptr<Workload>> MakeWorkload(const std::string& name,
                                               const WorkloadOptions& options);

}  // namespace topkmon

#endif  // TOPKMON_WORKLOAD_WORKLOAD_H_
