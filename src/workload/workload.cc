#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/geometry.h"
#include "common/scoring.h"
#include "util/rng.h"

namespace topkmon {
namespace {

// FNV-1a over the workload name, so each workload's RNG stream is
// decorrelated from every other workload built from the same seed.
std::uint64_t HashName(const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

double Clamp01(double v) { return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v); }

// Triangle wave with period 1 mapping phase to [0, 1] (0 at integer
// phases, 1 at half phases). Used instead of a sinusoid so the diurnal
// schedule involves no libm transcendentals — the emitted sequence is
// bit-identical across platforms.
double Triangle(double phase) {
  const double t = phase - std::floor(phase);
  return t < 0.5 ? 2.0 * t : 2.0 * (1.0 - t);
}

// Zipf sampler over ranks [0, n): P(r) proportional to 1/(r+1)^s,
// sampled by CDF inversion.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) {
    cdf_.reserve(n);
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_.push_back(total);
    }
  }
  std::size_t Sample(Rng& rng) const {
    const double u = rng.Uniform() * cdf_.back();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return std::min(static_cast<std::size_t>(it - cdf_.begin()),
                    cdf_.size() - 1);
  }

 private:
  std::vector<double> cdf_;
};

// Shared machinery: id allocation, the live-query roster, timestamp
// clamping (the engine Append contract requires globally non-decreasing
// arrival timestamps even when a workload backdates), and the
// self-describing parameter table.
class WorkloadBase : public Workload {
 public:
  WorkloadBase(std::string name, std::string description,
               const WorkloadOptions& opt)
      : name_(std::move(name)),
        description_(std::move(description)),
        opt_(opt),
        rng_(opt.seed ^ HashName(name_)),
        now_(opt.start) {}

  const std::string& name() const override { return name_; }
  const std::string& description() const override { return description_; }
  int dim() const override { return opt_.dim; }
  std::vector<WorkloadParam> Params() const override { return declared_; }

  WorkloadStep NextStep() override {
    WorkloadStep step;
    step.cycle = cycle_;
    step.now = now_;
    if (cycle_ == 0) EmitInitialQueries(step);
    EmitCycle(step);
    ++cycle_;
    now_ += opt_.tick > 0 ? opt_.tick : 1;
    return step;
  }

 protected:
  /// Declares a parameter (call from the constructor, in display order)
  /// and resolves its value against the options override map.
  double Param(const std::string& key, double def,
               const std::string& description) {
    double value = def;
    const auto it = opt_.params.find(key);
    if (it != opt_.params.end()) value = it->second;
    declared_.push_back(WorkloadParam{key, description, value});
    return value;
  }

  /// Per-workload record batch and churn for one cycle.
  virtual void EmitCycle(WorkloadStep& step) = 0;

  /// Initial query mix; defaults to num_queries random linear queries.
  virtual void EmitInitialQueries(WorkloadStep& step) {
    for (std::size_t i = 0; i < opt_.num_queries; ++i) {
      step.query_events.push_back(RegisterEvent(MakeQuery()));
    }
  }

  /// A fresh random linear top-k query, optionally constrained.
  QuerySpec MakeQuery(std::optional<Rect> constraint = {}) {
    QuerySpec spec;
    spec.id = next_query_id_++;
    spec.k = opt_.k;
    spec.function = MakeRandomFunction(FunctionFamily::kLinear, opt_.dim,
                                       [this] { return rng_.Uniform(); });
    spec.constraint = std::move(constraint);
    live_.push_back(spec.id);
    return spec;
  }

  QueryEvent RegisterEvent(QuerySpec spec) {
    QueryEvent ev;
    ev.kind = QueryEvent::kRegister;
    ev.id = spec.id;
    ev.spec = std::move(spec);
    return ev;
  }

  /// Unregisters a uniformly random live query; no-op when none live.
  void EmitUnregister(WorkloadStep& step) {
    if (live_.empty()) return;
    const std::size_t idx =
        static_cast<std::size_t>(rng_.UniformInt(live_.size()));
    QueryEvent ev;
    ev.kind = QueryEvent::kUnregister;
    ev.id = live_[idx];
    live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(idx));
    step.query_events.push_back(std::move(ev));
  }

  /// Appends one record at `pos`. A negative `ts_hint` means "the
  /// cycle's timestamp"; backdated hints are clamped so the emitted
  /// stream stays non-decreasing.
  void EmitRecord(WorkloadStep& step, Point pos, Timestamp ts_hint = -1) {
    Timestamp ts = ts_hint < 0 ? step.now : ts_hint;
    if (ts > step.now) ts = step.now;
    if (ts < last_ts_) ts = last_ts_;
    last_ts_ = ts;
    step.arrivals.emplace_back(next_record_id_++, std::move(pos), ts);
  }

  Point UniformPoint(Rng& rng) {
    Point p(opt_.dim);
    for (int i = 0; i < opt_.dim; ++i) p[i] = rng.Uniform();
    return p;
  }

  Point JitteredPoint(Rng& rng, const Point& center, double spread) {
    Point p(opt_.dim);
    for (int i = 0; i < opt_.dim; ++i) {
      p[i] = Clamp01(center[i] + rng.Gaussian(0.0, spread));
    }
    return p;
  }

  /// An axis-aligned box of half-width `extent` around `center`,
  /// clipped to the unit workspace.
  Rect BoxAround(const Point& center, double extent) const {
    Point lo(opt_.dim);
    Point hi(opt_.dim);
    for (int i = 0; i < opt_.dim; ++i) {
      lo[i] = Clamp01(center[i] - extent);
      hi[i] = Clamp01(center[i] + extent);
    }
    return Rect(lo, hi);
  }

  const std::string name_;
  const std::string description_;
  const WorkloadOptions opt_;
  Rng rng_;
  std::uint64_t cycle_ = 0;
  Timestamp now_;
  Timestamp last_ts_ = 0;
  RecordId next_record_id_ = 1;
  QueryId next_query_id_ = 1;
  std::vector<QueryId> live_;
  std::vector<WorkloadParam> declared_;
};

// uniform — the paper's IND baseline: constant rate, static query set.
class UniformWorkload final : public WorkloadBase {
 public:
  explicit UniformWorkload(const WorkloadOptions& opt)
      : WorkloadBase("uniform",
                     "constant-rate IND records with a static query mix",
                     opt) {}

 protected:
  void EmitCycle(WorkloadStep& step) override {
    for (std::size_t i = 0; i < opt_.mean_batch; ++i) {
      EmitRecord(step, UniformPoint(rng_));
    }
  }
};

// zipfian-keys — record positions cluster around hot spots whose
// popularity follows a zipf law (key skew).
class ZipfianKeysWorkload final : public WorkloadBase {
 public:
  explicit ZipfianKeysWorkload(const WorkloadOptions& opt)
      : WorkloadBase("zipfian-keys",
                     "record positions zipf-clustered around hot spots",
                     opt),
        skew_(Param("skew", 1.1, "zipf exponent of hot-spot popularity")),
        spread_(Param("spread", 0.04, "per-axis stddev around a hot spot")),
        hot_spots_(std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   Param("hot-spots", 16, "number of hot spots")))),
        zipf_(hot_spots_, skew_) {
    Rng centers(opt.seed ^ HashName("zipfian-keys/centers"));
    centers_.reserve(hot_spots_);
    for (std::size_t i = 0; i < hot_spots_; ++i) {
      centers_.push_back(UniformPoint(centers));
    }
  }

 protected:
  void EmitCycle(WorkloadStep& step) override {
    for (std::size_t i = 0; i < opt_.mean_batch; ++i) {
      const std::size_t r = zipf_.Sample(rng_);
      EmitRecord(step, JitteredPoint(rng_, centers_[r], spread_));
    }
  }

 private:
  const double skew_;
  const double spread_;
  const std::size_t hot_spots_;
  ZipfSampler zipf_;
  std::vector<Point> centers_;
};

// zipfian-queries — uniform records, but the query population focuses
// zipf-weighted constraint regions on a few hot areas of the workspace.
class ZipfianQueriesWorkload final : public WorkloadBase {
 public:
  explicit ZipfianQueriesWorkload(const WorkloadOptions& opt)
      : WorkloadBase(
            "zipfian-queries",
            "uniform records; query regions zipf-focused on hot spots",
            opt),
        skew_(Param("skew", 1.2, "zipf exponent of region popularity")),
        extent_(Param("extent", 0.2, "constraint-box half-width")),
        churn_(Param("churn", 0.1,
                     "per-cycle probability of replacing one query")),
        regions_(std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   Param("regions", 8, "number of hot regions")))),
        zipf_(regions_, skew_) {
    Rng centers(opt.seed ^ HashName("zipfian-queries/centers"));
    centers_.reserve(regions_);
    for (std::size_t i = 0; i < regions_; ++i) {
      centers_.push_back(UniformPoint(centers));
    }
  }

 protected:
  void EmitInitialQueries(WorkloadStep& step) override {
    for (std::size_t i = 0; i < opt_.num_queries; ++i) {
      step.query_events.push_back(RegisterEvent(MakeHotQuery()));
    }
  }

  void EmitCycle(WorkloadStep& step) override {
    if (cycle_ > 0 && rng_.Uniform() < churn_) {
      EmitUnregister(step);
      step.query_events.push_back(RegisterEvent(MakeHotQuery()));
    }
    for (std::size_t i = 0; i < opt_.mean_batch; ++i) {
      EmitRecord(step, UniformPoint(rng_));
    }
  }

 private:
  QuerySpec MakeHotQuery() {
    const std::size_t r = zipf_.Sample(rng_);
    return MakeQuery(BoxAround(centers_[r], extent_));
  }

  const double skew_;
  const double extent_;
  const double churn_;
  const std::size_t regions_;
  ZipfSampler zipf_;
  std::vector<Point> centers_;
};

// bursty — a two-state Markov chain modulates the batch size between a
// quiet trickle and heavy bursts around the configured mean.
class BurstyWorkload final : public WorkloadBase {
 public:
  explicit BurstyWorkload(const WorkloadOptions& opt)
      : WorkloadBase("bursty",
                     "two-state Markov-modulated arrival bursts", opt),
        burst_factor_(
            Param("burst-factor", 8.0, "batch multiplier while bursting")),
        quiet_factor_(
            Param("quiet-factor", 0.25, "batch multiplier while quiet")),
        p_enter_(Param("p-enter-burst", 0.08,
                       "per-cycle probability quiet -> burst")),
        p_exit_(Param("p-exit-burst", 0.3,
                      "per-cycle probability burst -> quiet")) {}

 protected:
  void EmitCycle(WorkloadStep& step) override {
    bursting_ = bursting_ ? rng_.Uniform() >= p_exit_
                          : rng_.Uniform() < p_enter_;
    const double factor = bursting_ ? burst_factor_ : quiet_factor_;
    const std::size_t n = static_cast<std::size_t>(
        static_cast<double>(opt_.mean_batch) * factor);
    for (std::size_t i = 0; i < n; ++i) {
      EmitRecord(step, UniformPoint(rng_));
    }
  }

 private:
  const double burst_factor_;
  const double quiet_factor_;
  const double p_enter_;
  const double p_exit_;
  bool bursting_ = false;
};

// diurnal — the arrival rate follows a day/night triangle wave and the
// data's hot spot drifts across the workspace over the simulated day.
class DiurnalWorkload final : public WorkloadBase {
 public:
  explicit DiurnalWorkload(const WorkloadOptions& opt)
      : WorkloadBase(
            "diurnal",
            "day/night arrival-rate wave with a drifting hot spot", opt),
        period_(std::max(1.0, Param("period", 96.0,
                                    "cycles per simulated day"))),
        amplitude_(Param("amplitude", 0.9,
                         "rate swing around the mean, in [0, 1]")),
        drift_(Param("drift", 0.35, "hot-spot drift radius")),
        spread_(Param("spread", 0.08, "per-axis stddev around the spot")),
        hot_share_(Param("hot-share", 0.5,
                         "fraction of records drawn near the hot spot")) {}

 protected:
  void EmitCycle(WorkloadStep& step) override {
    const double phase = static_cast<double>(cycle_) / period_;
    const double rate =
        1.0 - amplitude_ + 2.0 * amplitude_ * Triangle(phase);
    const std::size_t n = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(opt_.mean_batch) * rate));
    Point center(opt_.dim);
    for (int i = 0; i < opt_.dim; ++i) {
      // Each axis drifts on its own phase-shifted triangle path.
      const double offset =
          2.0 * Triangle(phase + 0.25 * static_cast<double>(i)) - 1.0;
      center[i] = Clamp01(0.5 + drift_ * offset);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (rng_.Uniform() < hot_share_) {
        EmitRecord(step, JitteredPoint(rng_, center, spread_));
      } else {
        EmitRecord(step, UniformPoint(rng_));
      }
    }
  }

 private:
  const double period_;
  const double amplitude_;
  const double drift_;
  const double spread_;
  const double hot_share_;
};

// query-churn — the record stream is calm; the query table is not.
class QueryChurnWorkload final : public WorkloadBase {
 public:
  explicit QueryChurnWorkload(const WorkloadOptions& opt)
      : WorkloadBase("query-churn",
                     "continuous query replacement with occasional storms",
                     opt),
        churn_(Param("churn", 0.6,
                     "per-cycle probability of replacing one query")),
        storm_(Param("storm", 0.04,
                     "per-cycle probability of replacing half the set")) {}

 protected:
  void EmitCycle(WorkloadStep& step) override {
    if (cycle_ > 0) {
      if (rng_.Uniform() < storm_) {
        const std::size_t half = std::max<std::size_t>(1, live_.size() / 2);
        for (std::size_t i = 0; i < half; ++i) ReplaceOne(step);
      } else if (rng_.Uniform() < churn_) {
        ReplaceOne(step);
      }
    }
    for (std::size_t i = 0; i < opt_.mean_batch; ++i) {
      EmitRecord(step, UniformPoint(rng_));
    }
  }

 private:
  void ReplaceOne(WorkloadStep& step) {
    EmitUnregister(step);
    step.query_events.push_back(RegisterEvent(MakeQuery()));
  }

  const double churn_;
  const double storm_;
};

// multi-tenant — traffic is a zipf-weighted blend of tenants, each with
// its own data cluster and a query population constrained to its slice
// of the workspace.
class MultiTenantWorkload final : public WorkloadBase {
 public:
  explicit MultiTenantWorkload(const WorkloadOptions& opt)
      : WorkloadBase(
            "multi-tenant",
            "zipf-weighted tenants with per-tenant regions and queries",
            opt),
        tenants_(std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   Param("tenants", 4, "number of tenants")))),
        skew_(Param("skew", 1.0, "zipf exponent of tenant traffic share")),
        spread_(Param("spread", 0.06,
                      "per-axis stddev around a tenant's cluster")),
        extent_(Param("extent", 0.25, "tenant-region half-width")),
        zipf_(tenants_, skew_) {
    Rng centers(opt.seed ^ HashName("multi-tenant/centers"));
    centers_.reserve(tenants_);
    for (std::size_t i = 0; i < tenants_; ++i) {
      centers_.push_back(UniformPoint(centers));
    }
  }

 protected:
  void EmitInitialQueries(WorkloadStep& step) override {
    for (std::size_t i = 0; i < opt_.num_queries; ++i) {
      const Point& center = centers_[i % tenants_];
      step.query_events.push_back(
          RegisterEvent(MakeQuery(BoxAround(center, extent_))));
    }
  }

  void EmitCycle(WorkloadStep& step) override {
    for (std::size_t i = 0; i < opt_.mean_batch; ++i) {
      const std::size_t tenant = zipf_.Sample(rng_);
      EmitRecord(step, JitteredPoint(rng_, centers_[tenant], spread_));
    }
  }

 private:
  const std::size_t tenants_;
  const double skew_;
  const double spread_;
  const double extent_;
  ZipfSampler zipf_;
  std::vector<Point> centers_;
};

// adversarial-slack — positions snapped onto grid/piece boundary
// lattices (score ties, cell-edge membership) and timestamps backdated
// up to `slack` ticks (late data hugging the eviction edge).
class AdversarialSlackWorkload final : public WorkloadBase {
 public:
  explicit AdversarialSlackWorkload(const WorkloadOptions& opt)
      : WorkloadBase(
            "adversarial-slack",
            "boundary-snapped positions with slack-backdated timestamps",
            opt),
        slack_(std::max(0.0, Param("slack", 4.0,
                                   "max timestamp backdating, in ticks"))),
        snap_(Param("snap", 0.5,
                    "probability a coordinate snaps to the lattice")),
        lattice_(std::max(1.0, Param("lattice", 12.0,
                                     "boundary lattice resolution"))) {}

 protected:
  void EmitCycle(WorkloadStep& step) override {
    const auto slack = static_cast<std::uint64_t>(slack_);
    for (std::size_t i = 0; i < opt_.mean_batch; ++i) {
      Point p(opt_.dim);
      for (int axis = 0; axis < opt_.dim; ++axis) {
        if (rng_.Uniform() < snap_) {
          // Lattice points {0, 1/L, ..., 1}: grid-cell edges, and the
          // piece boundary 0.5 whenever L is even.
          const double cell = std::floor(rng_.Uniform() * (lattice_ + 1.0));
          p[axis] = Clamp01(cell / lattice_);
        } else {
          p[axis] = rng_.Uniform();
        }
      }
      const Timestamp backdate =
          slack == 0 ? 0
                     : static_cast<Timestamp>(rng_.UniformInt(slack + 1));
      EmitRecord(step, std::move(p), step.now - backdate);
    }
  }

 private:
  const double slack_;
  const double snap_;
  const double lattice_;
};

using Factory = std::unique_ptr<Workload> (*)(const WorkloadOptions&);

template <typename W>
std::unique_ptr<Workload> Make(const WorkloadOptions& opt) {
  return std::make_unique<W>(opt);
}

struct RegistryEntry {
  const char* name;
  const char* description;
  Factory factory;
};

// The registered taxonomy. tools/check_docs.py parses the names between
// these markers and requires each one to be documented (as a section
// anchor) in docs/WORKLOADS.md — adding a workload without docs fails
// CI.
// workload-registry-begin
constexpr RegistryEntry kRegistry[] = {
    {"uniform", "constant-rate IND records with a static query mix",
     Make<UniformWorkload>},
    {"zipfian-keys", "record positions zipf-clustered around hot spots",
     Make<ZipfianKeysWorkload>},
    {"zipfian-queries",
     "uniform records; query regions zipf-focused on hot spots",
     Make<ZipfianQueriesWorkload>},
    {"bursty", "two-state Markov-modulated arrival bursts",
     Make<BurstyWorkload>},
    {"diurnal", "day/night arrival-rate wave with a drifting hot spot",
     Make<DiurnalWorkload>},
    {"query-churn", "continuous query replacement with occasional storms",
     Make<QueryChurnWorkload>},
    {"multi-tenant",
     "zipf-weighted tenants with per-tenant regions and queries",
     Make<MultiTenantWorkload>},
    {"adversarial-slack",
     "boundary-snapped positions with slack-backdated timestamps",
     Make<AdversarialSlackWorkload>},
};
// workload-registry-end

}  // namespace

const std::vector<WorkloadInfo>& ListWorkloads() {
  static const std::vector<WorkloadInfo>* infos = [] {
    auto* v = new std::vector<WorkloadInfo>();
    for (const RegistryEntry& e : kRegistry) {
      v->push_back(WorkloadInfo{e.name, e.description});
    }
    return v;
  }();
  return *infos;
}

Result<std::unique_ptr<Workload>> MakeWorkload(
    const std::string& name, const WorkloadOptions& options) {
  if (options.dim < 1 || options.dim > kMaxDims) {
    return Status::InvalidArgument(
        "workload dim must be in [1, " + std::to_string(kMaxDims) +
        "], got " + std::to_string(options.dim));
  }
  if (options.k < 1) {
    return Status::InvalidArgument("workload k must be >= 1, got " +
                                   std::to_string(options.k));
  }
  const RegistryEntry* entry = nullptr;
  for (const RegistryEntry& e : kRegistry) {
    if (name == e.name) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) {
    std::string known;
    for (const RegistryEntry& e : kRegistry) {
      if (!known.empty()) known += ", ";
      known += e.name;
    }
    return Status::InvalidArgument("unknown workload '" + name +
                                   "'; registered: " + known);
  }
  std::unique_ptr<Workload> workload = entry->factory(options);
  // Reject overrides the workload never declared — a typoed knob should
  // fail loudly, not silently fall back to the default behavior.
  const std::vector<WorkloadParam> declared = workload->Params();
  for (const auto& [key, value] : options.params) {
    (void)value;
    const bool known =
        std::any_of(declared.begin(), declared.end(),
                    [&key](const WorkloadParam& p) { return p.name == key; });
    if (!known) {
      std::string names;
      for (const WorkloadParam& p : declared) {
        if (!names.empty()) names += ", ";
        names += p.name;
      }
      return Status::InvalidArgument(
          "workload '" + name + "' has no parameter '" + key +
          "'; declared: " + (names.empty() ? "(none)" : names));
    }
  }
  return workload;
}

}  // namespace topkmon
