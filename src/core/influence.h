// Influence-list book-keeping shared by the grid-based engines
// (Section 4.3).
//
// Influence lists are maintained lazily: result improvements (which shrink
// the influence region) leave stale entries in place, and the entries are
// reconciled only after a from-scratch top-k computation. The cleanup walk
// starts from the cells the computation left en-heaped (the frontier, just
// outside the new influence region) and expands toward lower scores
// through every cell that still carries the query, removing it. The walk
// can never re-enter the new influence region — the region is up-closed
// toward the best corner and the frontier lies strictly below it — so no
// live entry is ever removed.

#ifndef TOPKMON_CORE_INFLUENCE_H_
#define TOPKMON_CORE_INFLUENCE_H_

#include <vector>

#include "common/scoring.h"
#include "grid/cell_traversal.h"
#include "grid/grid.h"

namespace topkmon {

/// Registers `query` in the influence list of every cell in `cells`
/// (idempotent; cells typically come from TopKComputation::processed_cells).
void AddInfluenceEntries(Grid& grid, const std::vector<CellIndex>& cells,
                         QueryId query);

/// Removes stale influence entries of `query` reachable from the frontier
/// `seeds` by walking toward decreasing scores through cells that carry
/// the query (Figure 9, lines 14-21).
void CleanupStaleInfluence(Grid& grid, const ScoringFunction& f,
                           const std::vector<CellIndex>& seeds, QueryId query,
                           TraversalScratch* scratch);

/// Removes every influence entry of `query` (query termination,
/// Section 4.3): walks from the cell with the globally maximal maxscore —
/// the best corner of `constraint` when given, of the workspace otherwise.
void RemoveAllInfluence(Grid& grid, const ScoringFunction& f, QueryId query,
                        TraversalScratch* scratch,
                        const Rect* constraint = nullptr);

}  // namespace topkmon

#endif  // TOPKMON_CORE_INFLUENCE_H_
