#include "core/threshold_monitor.h"

#include <cmath>

namespace topkmon {

Status ThresholdQuerySpec::Validate(int dim) const {
  if (function == nullptr) {
    return Status::InvalidArgument("threshold query has no scoring function");
  }
  if (function->dim() != dim) {
    return Status::InvalidArgument("scoring function dimensionality " +
                                   std::to_string(function->dim()) +
                                   " != engine dimensionality " +
                                   std::to_string(dim));
  }
  if (!std::isfinite(threshold)) {
    return Status::InvalidArgument("threshold must be finite");
  }
  return Status::Ok();
}

ThresholdMonitor::ThresholdMonitor(int dim, const WindowSpec& window,
                                   std::size_t cell_budget)
    : grid_(dim, Grid::CellsPerAxisForBudget(dim, cell_budget)),
      window_(window.kind == WindowKind::kCountBased
                  ? SlidingWindow::CountBased(window.capacity)
                  : SlidingWindow::TimeBased(window.span)) {}

Status ThresholdMonitor::RegisterQuery(const ThresholdQuerySpec& spec) {
  TOPKMON_RETURN_IF_ERROR(spec.Validate(dim()));
  if (queries_.count(spec.id) > 0) {
    return Status::AlreadyExists("query id " + std::to_string(spec.id) +
                                 " already registered");
  }
  QueryState state;
  state.spec = spec;
  // List walk over cells with maxscore above the threshold (Section 7: the
  // visiting order does not matter, so a list replaces the heap).
  ++stats_.initial_computations;
  WalkDescending(
      grid_, *spec.function, {SeedCell(grid_, *spec.function)}, &scratch_,
      [this, &spec, &state](CellIndex cell) {
        if (spec.function->MaxScore(grid_.CellBounds(cell)) <=
            spec.threshold) {
          return false;
        }
        ++stats_.cells_visited;
        grid_.AddInfluence(cell, spec.id);
        state.influence_cells.push_back(cell);
        for (RecordId id : grid_.PointsIn(cell)) {
          ++stats_.points_scored;
          const double score = spec.function->Score(window_.Get(id).position);
          if (score > spec.threshold) state.result.emplace(score, id);
        }
        return true;
      });
  queries_.emplace(spec.id, std::move(state));
  return Status::Ok();
}

Status ThresholdMonitor::UnregisterQuery(QueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query id " + std::to_string(id) +
                            " not registered");
  }
  for (CellIndex cell : it->second.influence_cells) {
    grid_.RemoveInfluence(cell, id);
  }
  queries_.erase(it);
  return Status::Ok();
}

Status ThresholdMonitor::ProcessCycle(Timestamp now,
                                      const std::vector<Record>& arrivals) {
  Stopwatch watch;
  ++stats_.cycles;
  for (const Record& p : arrivals) {
    TOPKMON_RETURN_IF_ERROR(ValidatePoint(p.position, dim()));
    TOPKMON_RETURN_IF_ERROR(window_.Append(p));
    const CellIndex cell = grid_.LocateCell(p.position);
    grid_.InsertPoint(cell, p.id, p.position);
    ++stats_.arrivals;
    for (QueryId qid : grid_.InfluenceList(cell)) {
      QueryState& state = queries_.at(qid);
      ++stats_.points_scored;
      const double score = state.spec.function->Score(p.position);
      if (score > state.spec.threshold) {
        state.result.emplace(score, p.id);
        ++stats_.result_changes;
      }
    }
  }
  for (const Record& p : window_.EvictExpired(now)) {
    const CellIndex cell = grid_.LocateCell(p.position);
    grid_.ErasePointFifo(cell, p.id);
    ++stats_.expirations;
    for (QueryId qid : grid_.InfluenceList(cell)) {
      QueryState& state = queries_.at(qid);
      ++stats_.points_scored;
      const double score = state.spec.function->Score(p.position);
      if (score > state.spec.threshold) {
        state.result.erase({score, p.id});
        ++stats_.result_changes;
      }
    }
  }
  stats_.maintenance_seconds += watch.ElapsedSeconds();
  return Status::Ok();
}

Result<std::vector<ResultEntry>> ThresholdMonitor::CurrentResult(
    QueryId id) const {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query id " + std::to_string(id) +
                            " not registered");
  }
  std::vector<ResultEntry> out;
  out.reserve(it->second.result.size());
  for (auto rit = it->second.result.rbegin(); rit != it->second.result.rend();
       ++rit) {
    out.push_back(ResultEntry{rit->second, rit->first});
  }
  return out;
}

MemoryBreakdown ThresholdMonitor::Memory() const {
  MemoryBreakdown mb = grid_.Memory();
  mb.Add("window", window_.MemoryBytes());
  std::size_t query_bytes = 0;
  const std::size_t node_bytes =
      sizeof(std::pair<double, RecordId>) + 3 * sizeof(void*) + sizeof(long);
  for (const auto& [qid, state] : queries_) {
    query_bytes += sizeof(QueryState) + state.result.size() * node_bytes +
                   VectorBytes(state.influence_cells);
  }
  mb.Add("query_table", query_bytes);
  return mb;
}

}  // namespace topkmon
