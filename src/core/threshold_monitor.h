// Continuous threshold monitoring (Section 7).
//
// A threshold query reports, at all times, every valid record whose score
// exceeds a user-specified threshold. Unlike top-k queries the influence
// region is static — the iso-score surface at the threshold — so the
// framework needs no recomputation ever: the initial result is collected
// by a list walk over the cells with maxscore above the threshold (the
// visiting order is irrelevant, so no heap is needed), influence entries
// are installed in exactly those cells, and maintenance just filters the
// arrivals/expirations inside them.

#ifndef TOPKMON_CORE_THRESHOLD_MONITOR_H_
#define TOPKMON_CORE_THRESHOLD_MONITOR_H_

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "core/query.h"
#include "grid/cell_traversal.h"
#include "grid/grid.h"
#include "stream/sliding_window.h"

namespace topkmon {

/// A continuous "score above tau" monitoring query.
struct ThresholdQuerySpec {
  QueryId id = 0;
  double threshold = 0.0;
  std::shared_ptr<const ScoringFunction> function;

  Status Validate(int dim) const;
};

/// Monitors threshold queries over a sliding window using the grid
/// framework of Section 4.1.
class ThresholdMonitor {
 public:
  ThresholdMonitor(int dim, const WindowSpec& window,
                   std::size_t cell_budget = 20736);

  int dim() const { return grid_.dim(); }

  /// Registers a query and computes its initial result.
  Status RegisterQuery(const ThresholdQuerySpec& spec);

  /// Terminates a query, clearing its influence entries.
  Status UnregisterQuery(QueryId id);

  /// Advances the stream one cycle (same contract as MonitorEngine).
  Status ProcessCycle(Timestamp now, const std::vector<Record>& arrivals);

  /// All records currently above the query's threshold, best first.
  Result<std::vector<ResultEntry>> CurrentResult(QueryId id) const;

  std::size_t WindowSize() const { return window_.size(); }
  const EngineStats& stats() const { return stats_; }
  MemoryBreakdown Memory() const;

 private:
  struct QueryState {
    ThresholdQuerySpec spec;
    /// Result records ordered ascending by (score, id); reported reversed.
    std::set<std::pair<double, RecordId>> result;
    /// Cells carrying this query's influence entry (for termination).
    std::vector<CellIndex> influence_cells;
  };

  Grid grid_;
  SlidingWindow window_;
  TraversalScratch scratch_;
  std::unordered_map<QueryId, QueryState> queries_;
  EngineStats stats_;
};

}  // namespace topkmon

#endif  // TOPKMON_CORE_THRESHOLD_MONITOR_H_
