// TMA over update streams with explicit deletions (Section 7).
//
// When the stream issues explicit deletions, records no longer expire in
// FIFO order: the valid-record list is replaced by a RecordPool, cell
// point lists support positional removal, and SMA's skyband reduction is
// inapplicable (the expiry order is unknown in advance). TMA carries over
// directly (Section 7): insertions inside a query's influence region that
// beat its current kth score enter the top-k list; the deletion of a
// current result record marks the query as affected, and affected queries
// are recomputed from scratch at the end of the batch.

#ifndef TOPKMON_CORE_UPDATE_STREAM_ENGINE_H_
#define TOPKMON_CORE_UPDATE_STREAM_ENGINE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "core/query.h"
#include "core/tma_engine.h"  // GridEngineOptions
#include "grid/cell_traversal.h"
#include "grid/grid.h"
#include "stream/record_pool.h"
#include "stream/update_stream.h"

namespace topkmon {

/// Continuous top-k monitoring over an update stream (insertions plus
/// explicit deletions of arbitrary live records).
class UpdateStreamTmaEngine {
 public:
  /// `options.window` is ignored: validity is governed by explicit
  /// deletions, not a sliding window.
  explicit UpdateStreamTmaEngine(const GridEngineOptions& options);

  std::string name() const { return "TMA-upd"; }
  int dim() const { return grid_.dim(); }

  Status RegisterQuery(const QuerySpec& spec);
  Status UnregisterQuery(QueryId id);

  /// Applies one batch of interleaved insertions and deletions, then
  /// repairs every query whose result lost entries.
  Status ProcessBatch(const std::vector<UpdateOp>& ops);

  Result<std::vector<ResultEntry>> CurrentResult(QueryId id) const;

  std::size_t LiveCount() const { return pool_.size(); }
  const EngineStats& stats() const { return stats_; }
  MemoryBreakdown Memory() const;

 private:
  struct QueryState {
    explicit QueryState(QuerySpec s) : spec(std::move(s)), top_list(spec.k) {}
    QuerySpec spec;
    TopKList top_list;
    bool affected = false;  ///< a result record was deleted this batch
  };

  void RecomputeFromScratch(QueryId id, QueryState& state);

  Grid grid_;
  RecordPool pool_;
  TraversalScratch scratch_;
  std::unordered_map<QueryId, QueryState> queries_;
  EngineStats stats_;
};

}  // namespace topkmon

#endif  // TOPKMON_CORE_UPDATE_STREAM_ENGINE_H_
