// Continuous skyline monitoring over sliding windows.
//
// Library extension inspired by the related work the paper builds on
// (Section 2.2: Lin et al. [20], Tao and Papadias [26]): maintain the
// skyline — the set of valid records not dominated by any other valid
// record — continuously over the same sliding-window stream the top-k
// engines consume. The algorithm mirrors the top-k/skyband reduction of
// Section 3.1 applied in attribute space:
//
//   Keep as *candidates* exactly the valid records that are not strictly
//   dominated by any later-arriving valid record. Dominated-by-later
//   records can be discarded immediately: their dominator is better and
//   expires after them, so they can never (re-)enter the skyline. The
//   candidate set is precisely the union of the current and all future
//   skylines absent further arrivals; the current skyline is the subset
//   of candidates not dominated by another candidate (the latest-arriving
//   dominator of any candidate is itself a candidate, by transitivity of
//   dominance).
//
// Complexity: an arrival scans the candidate list once (skylines are
// small — O(log^{d-1} N / (d-1)!) in expectation for independent
// dimensions); expiration is O(1) (the expiring record can only be the
// oldest candidate); reading the skyline is O(c^2) over c candidates.

#ifndef TOPKMON_CORE_SKYLINE_MONITOR_H_
#define TOPKMON_CORE_SKYLINE_MONITOR_H_

#include <deque>
#include <vector>

#include "common/record.h"
#include "common/status.h"
#include "stream/sliding_window.h"
#include "util/memory_tracker.h"
#include "util/stats.h"

namespace topkmon {

/// True iff `a` dominates `b` with all dimensions maximized: a >= b on
/// every attribute and a > b on at least one (Section 2.2's definition).
bool Dominates(const Point& a, const Point& b);

/// True iff `a` is at least as good as `b` on every attribute (weak
/// dominance; equality included).
bool DominatesOrEquals(const Point& a, const Point& b);

/// Continuous skyline monitor (all attributes maximized).
class SkylineMonitor {
 public:
  /// Monitors the skyline of a `dim`-dimensional stream under `window`.
  SkylineMonitor(int dim, const WindowSpec& window);

  int dim() const { return dim_; }

  /// Advances the stream one cycle (same contract as MonitorEngine).
  Status ProcessCycle(Timestamp now, const std::vector<Record>& arrivals);

  /// The current skyline, in arrival order.
  std::vector<Record> CurrentSkyline() const;

  /// Records retained as candidates (current plus all future skylines
  /// absent further arrivals).
  std::size_t CandidateCount() const { return candidates_.size(); }
  std::size_t WindowSize() const { return window_.size(); }

  const EngineStats& stats() const { return stats_; }
  MemoryBreakdown Memory() const;

 private:
  int dim_;
  SlidingWindow window_;
  std::deque<Record> candidates_;  ///< arrival order
  EngineStats stats_;
};

}  // namespace topkmon

#endif  // TOPKMON_CORE_SKYLINE_MONITOR_H_
