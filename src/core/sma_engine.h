// SMA — the Skyband Monitoring Algorithm (Section 5, Figure 11).
//
// SMA exploits the reduction of top-k monitoring to k-skyband maintenance
// in score-time space (Section 3.1): it keeps, per query, the k-skyband of
// the records inside the influence region. Arrivals scoring at least
// q.top_score (the kth score at the last from-scratch computation — a
// fixed threshold, unlike TMA's moving one) enter the skyband; expiring
// results are simply removed, and the next result is already present as
// the new first-k prefix. A from-scratch recomputation is needed only when
// the skyband itself drops below k entries, which under steady arrival
// rates essentially never happens — SMA's running-time advantage over TMA.

#ifndef TOPKMON_CORE_SMA_ENGINE_H_
#define TOPKMON_CORE_SMA_ENGINE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "core/piecewise_router.h"
#include "core/skyband.h"
#include "core/tma_engine.h"  // GridEngineOptions
#include "core/topk_compute.h"
#include "grid/cell_traversal.h"
#include "grid/grid.h"
#include "stream/sliding_window.h"

namespace topkmon {

/// The Skyband Monitoring Algorithm.
class SmaEngine final : public MonitorEngine {
 public:
  explicit SmaEngine(const GridEngineOptions& options);

  std::string name() const override { return "SMA"; }
  int dim() const override { return grid_.dim(); }
  Status RegisterQuery(const QuerySpec& spec) override;
  Status UnregisterQuery(QueryId id) override;
  Status ProcessCycle(Timestamp now, RecordSpan arrivals) override;
  Result<std::vector<ResultEntry>> CurrentResult(QueryId id) const override;
  void SetDeltaCallback(DeltaCallback callback) override {
    delta_.SetCallback(std::move(callback));
  }
  std::size_t WindowSize() const override { return window_.size(); }
  Result<EngineSnapshot> SnapshotState() const override {
    return EngineSnapshot{
        last_cycle_, std::vector<Record>(window_.begin(), window_.end())};
  }
  const EngineStats& stats() const override { return stats_; }
  MemoryBreakdown Memory() const override;

  const Grid& grid() const { return grid_; }

  /// Average skyband cardinality across registered queries (Table 2).
  double AverageSkybandSize() const;

 private:
  struct QueryState {
    explicit QueryState(QuerySpec s) : spec(std::move(s)), skyband(spec.k) {}
    QuerySpec spec;
    Skyband skyband;
    /// kth score at the last from-scratch computation; fixed influence
    /// threshold until the next recomputation (Figure 11, line 7).
    double top_score = 0.0;
    bool changed = false;  ///< skyband mutated this cycle
  };

  void RecomputeFromScratch(QueryId id, QueryState& state);

  /// Pre-validated registration body; internal piecewise sub-queries
  /// skip the delta report (only the parent's merged result is visible).
  Status RegisterMonotone(const QuerySpec& spec, bool report_delta);
  Status RemoveMonotone(QueryId id);
  Status RegisterPiecewise(const QuerySpec& spec,
                           const PiecewiseFunction& fn);
  std::vector<ResultEntry> MergedPiecewise(const PiecewiseBook& book) const;

  const Record& Lookup(RecordId id) const { return window_.Get(id); }

  Grid grid_;
  SlidingWindow window_;
  TraversalScratch scratch_;
  std::unordered_map<QueryId, QueryState> queries_;
  std::unordered_map<QueryId, PiecewiseBook> piecewise_;
  QueryId next_internal_id_ = kInternalQueryIdBase;
  EngineStats stats_;
  DeltaTracker delta_;
  Timestamp last_cycle_ = 0;
};

}  // namespace topkmon

#endif  // TOPKMON_CORE_SMA_ENGINE_H_
