// Query-sharded parallel monitoring.
//
// The paper's engines are single-threaded and share no state across
// queries except the index, so the natural multi-core scaling strategy is
// to partition the *queries* across several engine instances, each
// consuming the identical stream on its own worker thread. ShardedEngine
// implements that: it owns S inner engines and a persistent worker pool;
// ProcessCycle fans the arrival batch out to every shard and joins.
//
// Trade-off (documented, inherent to query partitioning): each shard
// maintains its own window and index, so memory grows with S while
// per-cycle CPU time drops toward max over shards. Registration,
// termination and result reads are routed to the owning shard and must be
// called from one thread (the same contract as the inner engines).

#ifndef TOPKMON_CORE_SHARDED_ENGINE_H_
#define TOPKMON_CORE_SHARDED_ENGINE_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/engine.h"

namespace topkmon {

/// Creates one inner engine instance per shard.
using EngineFactory = std::function<std::unique_ptr<MonitorEngine>()>;

/// Partitions queries round-robin across engine replicas, each fed the
/// full stream on a dedicated worker thread.
class ShardedEngine final : public MonitorEngine {
 public:
  /// Builds `num_shards` inner engines with `factory`. Requires
  /// num_shards >= 1; factory must produce engines of equal
  /// dimensionality and window configuration.
  ShardedEngine(int num_shards, const EngineFactory& factory);
  ~ShardedEngine() override;

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Stops and joins the worker pool. Idempotent; also runs from the
  /// destructor. After shutdown, ProcessCycle fails with
  /// FailedPrecondition while name()/dim()/num_shards() (cached at
  /// construction) and the read-side (CurrentResult, stats, Memory)
  /// remain valid — a service layer can still serve snapshot reads while
  /// tearing down.
  void Shutdown();

  std::string name() const override { return name_; }
  int dim() const override { return dim_; }
  Status RegisterQuery(const QuerySpec& spec) override;
  Status UnregisterQuery(QueryId id) override;
  Status ProcessCycle(Timestamp now, RecordSpan arrivals) override;
  Result<std::vector<ResultEntry>> CurrentResult(QueryId id) const override;
  void SetDeltaCallback(DeltaCallback callback) override;
  std::size_t WindowSize() const override {
    return shards_.front()->WindowSize();
  }
  /// Every shard consumes the identical stream, so any shard's window is
  /// the engine's window; restore (the base-class default) re-partitions
  /// through the regular ProcessCycle fan-out.
  Result<EngineSnapshot> SnapshotState() const override {
    return shards_.front()->SnapshotState();
  }
  /// Aggregated counters across shards (maintenance_seconds sums shard
  /// CPU time; wall-clock per cycle is roughly the max over shards).
  const EngineStats& stats() const override;
  MemoryBreakdown Memory() const override;

  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  void WorkerLoop(std::size_t shard_index);

  // Identity cached at construction so it stays answerable after
  // Shutdown() without touching shard state.
  int dim_ = 0;
  std::string name_;

  std::vector<std::unique_ptr<MonitorEngine>> shards_;
  std::unordered_map<QueryId, std::size_t> query_shard_;
  std::size_t next_shard_ = 0;

  // Worker-pool synchronization: ProcessCycle publishes (now_, arrivals_),
  // bumps generation_ and waits for pending_ to drain.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
  Timestamp now_ = 0;
  RecordSpan arrivals_;
  std::vector<Status> shard_status_;
  std::vector<std::thread> threads_;

  // Serializes delta callbacks fired concurrently from worker threads.
  std::shared_ptr<std::mutex> delta_mu_ = std::make_shared<std::mutex>();

  mutable EngineStats aggregated_stats_;
};

}  // namespace topkmon

#endif  // TOPKMON_CORE_SHARDED_ENGINE_H_
