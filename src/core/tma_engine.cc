#include "core/tma_engine.h"

#include "core/influence.h"

namespace topkmon {

int GridEngineOptions::ResolvedCellsPerAxis() const {
  if (cells_per_axis > 0) return cells_per_axis;
  return Grid::CellsPerAxisForBudget(dim, cell_budget);
}

namespace {

SlidingWindow MakeWindow(const WindowSpec& spec) {
  return spec.kind == WindowKind::kCountBased
             ? SlidingWindow::CountBased(spec.capacity)
             : SlidingWindow::TimeBased(spec.span);
}

}  // namespace

TmaEngine::TmaEngine(const GridEngineOptions& options)
    : arrivals_first_(options.arrivals_before_expirations),
      grid_(options.dim, options.ResolvedCellsPerAxis()),
      window_(MakeWindow(options.window)) {}

Status TmaEngine::RegisterQuery(const QuerySpec& spec) {
  TOPKMON_RETURN_IF_ERROR(spec.Validate(dim()));
  if (IsInternalQueryId(spec.id)) {
    return Status::InvalidArgument(
        "query id " + std::to_string(spec.id) +
        " is in the range reserved for engine-internal sub-queries");
  }
  if (queries_.count(spec.id) > 0 || piecewise_.count(spec.id) > 0) {
    return Status::AlreadyExists("query id " + std::to_string(spec.id) +
                                 " already registered");
  }
  if (!spec.function->IsMonotone()) {
    const auto* fn =
        dynamic_cast<const PiecewiseFunction*>(spec.function.get());
    if (fn == nullptr) {
      return Status::Unimplemented(
          "TMA requires a per-dimension monotone or piecewise-monotone "
          "scoring function; got '" + spec.function->ToString() + "'");
    }
    return RegisterPiecewise(spec, *fn);
  }
  return RegisterMonotone(spec, /*report_delta=*/true);
}

Status TmaEngine::RegisterMonotone(const QuerySpec& spec, bool report_delta) {
  auto [it, inserted] = queries_.emplace(spec.id, QueryState(spec));
  QueryState& state = it->second;
  ++stats_.initial_computations;
  RecomputeFromScratch(spec.id, state);
  if (report_delta) {
    delta_.Report(spec.id, last_cycle_, state.top_list.entries());
  }
  return Status::Ok();
}

Status TmaEngine::RegisterPiecewise(const QuerySpec& spec,
                                    const PiecewiseFunction& fn) {
  Result<std::vector<QuerySpec>> subs =
      DecomposePiecewise(spec, fn, &next_internal_id_);
  if (!subs.ok()) return subs.status();
  PiecewiseBook book;
  book.k = spec.k;
  book.subs.reserve(subs->size());
  for (const QuerySpec& sub : *subs) {
    const Status st = RegisterMonotone(sub, /*report_delta=*/false);
    if (!st.ok()) {
      for (QueryId sid : book.subs) (void)RemoveMonotone(sid);
      return st;
    }
    book.subs.push_back(sub.id);
  }
  auto [it, inserted] = piecewise_.emplace(spec.id, std::move(book));
  delta_.Report(spec.id, last_cycle_, MergedPiecewise(it->second));
  return Status::Ok();
}

Status TmaEngine::UnregisterQuery(QueryId id) {
  auto pit = piecewise_.find(id);
  if (pit != piecewise_.end()) {
    for (QueryId sid : pit->second.subs) (void)RemoveMonotone(sid);
    piecewise_.erase(pit);
    delta_.Forget(id);
    return Status::Ok();
  }
  if (IsInternalQueryId(id)) {
    // Internal sub-queries are invisible to callers.
    return Status::NotFound("query id " + std::to_string(id) +
                            " not registered");
  }
  return RemoveMonotone(id);
}

Status TmaEngine::RemoveMonotone(QueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query id " + std::to_string(id) +
                            " not registered");
  }
  const QuerySpec& spec = it->second.spec;
  const Rect* constraint =
      spec.constraint.has_value() ? &*spec.constraint : nullptr;
  RemoveAllInfluence(grid_, *spec.function, id, &scratch_, constraint);
  queries_.erase(it);
  delta_.Forget(id);
  return Status::Ok();
}

Status TmaEngine::ProcessCycle(Timestamp now, RecordSpan arrivals) {
  Stopwatch watch;
  ++stats_.cycles;
  // Admit arrivals into the window first so that both batches (Pins and
  // Pdel) are known; their *processing* order is configurable.
  for (const Record& p : arrivals) {
    TOPKMON_RETURN_IF_ERROR(ValidatePoint(p.position, dim()));
    TOPKMON_RETURN_IF_ERROR(window_.Append(p));
  }
  const std::vector<Record> expired = window_.EvictExpired(now);
  if (arrivals_first_) {
    // Pins before Pdel (Figure 9): an arrival that beats the expiring kth
    // record replaces it before the expiration is seen, avoiding a
    // needless recomputation (Section 4.3).
    for (const Record& p : arrivals) HandleArrival(p);
    for (const Record& p : expired) HandleExpiry(p);
  } else {
    // Ablation order: expirations first mark queries affected even when an
    // arrival in the same cycle would have covered them.
    for (const Record& p : expired) HandleExpiry(p);
    for (const Record& p : arrivals) HandleArrival(p);
  }
  // -- Recompute affected queries from scratch (lines 12-21) ---------------
  for (auto& [qid, state] : queries_) {
    if (!state.affected) continue;
    state.affected = false;
    ++stats_.recomputations;
    ++stats_.result_changes;
    RecomputeFromScratch(qid, state);
  }
  last_cycle_ = now;
  if (delta_.enabled()) {
    for (const auto& [qid, state] : queries_) {
      if (IsInternalQueryId(qid)) continue;  // only parents are reported
      delta_.Report(qid, now, state.top_list.entries());
    }
    for (const auto& [pid, book] : piecewise_) {
      delta_.Report(pid, now, MergedPiecewise(book));
    }
  }
  stats_.maintenance_seconds += watch.ElapsedSeconds();
  return Status::Ok();
}

void TmaEngine::HandleArrival(const Record& p) {
  const CellIndex cell = grid_.LocateCell(p.position);
  grid_.InsertPoint(cell, p.id, p.position);
  ++stats_.arrivals;
  for (QueryId qid : grid_.InfluenceList(cell)) {
    QueryState& state = queries_.at(qid);
    if (state.spec.constraint.has_value() &&
        !state.spec.constraint->Contains(p.position)) {
      continue;  // constrained query: update outside R (Section 7)
    }
    ++stats_.points_scored;
    const double score = state.spec.function->Score(p.position);
    if (score >= state.top_list.KthScore()) {
      if (state.top_list.Consider(p.id, score)) ++stats_.result_changes;
    }
  }
}

void TmaEngine::HandleExpiry(const Record& p) {
  const CellIndex cell = grid_.LocateCell(p.position);
  grid_.ErasePointFifo(cell, p.id);
  ++stats_.expirations;
  for (QueryId qid : grid_.InfluenceList(cell)) {
    QueryState& state = queries_.at(qid);
    if (state.top_list.Contains(p.id)) state.affected = true;
  }
}

void TmaEngine::RecomputeFromScratch(QueryId id, QueryState& state) {
  const QuerySpec& spec = state.spec;
  const Rect* constraint =
      spec.constraint.has_value() ? &*spec.constraint : nullptr;
  const TopKComputation computation =
      ComputeTopK(grid_, *spec.function, spec.k, &scratch_, constraint);
  stats_.cells_visited += computation.processed_cells.size();
  stats_.points_scored += computation.points_scored;
  state.top_list.Clear();
  for (const ResultEntry& e : computation.result) {
    state.top_list.Consider(e.id, e.score);
  }
  AddInfluenceEntries(grid_, computation.processed_cells, id);
  CleanupStaleInfluence(grid_, *spec.function, computation.frontier_cells,
                        id, &scratch_);
}

Result<std::vector<ResultEntry>> TmaEngine::CurrentResult(QueryId id) const {
  auto pit = piecewise_.find(id);
  if (pit != piecewise_.end()) return MergedPiecewise(pit->second);
  auto it = queries_.find(id);
  if (it == queries_.end() || IsInternalQueryId(id)) {
    return Status::NotFound("query id " + std::to_string(id) +
                            " not registered");
  }
  return it->second.top_list.entries();
}

std::vector<ResultEntry> TmaEngine::MergedPiecewise(
    const PiecewiseBook& book) const {
  std::vector<ResultEntry> merged;
  for (QueryId sid : book.subs) {
    const auto& entries = queries_.at(sid).top_list.entries();
    merged.insert(merged.end(), entries.begin(), entries.end());
  }
  return MergePiecewiseTopK(book.k, std::move(merged));
}

MemoryBreakdown TmaEngine::Memory() const {
  MemoryBreakdown mb = grid_.Memory();
  mb.Add("window", window_.MemoryBytes());
  std::size_t query_bytes = 0;
  for (const auto& [qid, state] : queries_) {
    // Scoring function parameters (O(d)) + the result list (O(2k): id and
    // score per entry) — the paper's O(d + 2k) query-table entry.
    query_bytes += sizeof(QueryState) + state.top_list.MemoryBytes() +
                   static_cast<std::size_t>(dim()) * sizeof(double);
  }
  mb.Add("query_table", query_bytes);
  mb.Add("scratch", scratch_.MemoryBytes());
  return mb;
}

}  // namespace topkmon
