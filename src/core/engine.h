// Abstract interface of a continuous top-k monitoring engine.
//
// All evaluated methods (TMA, SMA, the TSL baseline, and the brute-force
// reference) implement this interface so that the simulation driver,
// benchmarks and correctness tests can feed the identical stream to each
// competitor and compare results cycle-for-cycle.

#ifndef TOPKMON_CORE_ENGINE_H_
#define TOPKMON_CORE_ENGINE_H_

#include <string>
#include <vector>

#include "common/record.h"
#include "common/status.h"
#include "core/delta.h"
#include "core/query.h"
#include "stream/sliding_window.h"
#include "util/memory_tracker.h"
#include "util/stats.h"

namespace topkmon {

/// Engine-ready image of the stream state, used by the journal subsystem
/// (src/journal/) for snapshot records and crash recovery.
struct EngineSnapshot {
  Timestamp last_cycle = 0;    ///< timestamp of the last processed cycle
  std::vector<Record> window;  ///< valid records in arrival (id) order
};

/// A continuous top-k monitoring engine.
///
/// Lifecycle: construct, RegisterQuery() any number of queries (also
/// mid-stream), then call ProcessCycle() once per timestamp with that
/// cycle's arrivals. After every ProcessCycle the engine answers
/// CurrentResult() for each registered query with its exact top-k set
/// among the valid records.
class MonitorEngine {
 public:
  virtual ~MonitorEngine() = default;

  /// Engine name for reports ("TMA", "SMA", "TSL", "BRUTE").
  virtual std::string name() const = 0;

  /// Attribute-space dimensionality.
  virtual int dim() const = 0;

  /// Registers a query and computes its initial result over the current
  /// window contents. Fails with AlreadyExists on duplicate ids and
  /// InvalidArgument on malformed specs.
  virtual Status RegisterQuery(const QuerySpec& spec) = 0;

  /// Terminates a query and releases its book-keeping (influence-list
  /// entries, views). NotFound if the id is unknown.
  virtual Status UnregisterQuery(QueryId id) = 0;

  /// Advances the stream by one processing cycle: admits `arrivals`
  /// (strictly increasing ids, non-decreasing timestamps), evicts expired
  /// records, and maintains every registered query's result. The span is
  /// a borrowed view (typically the driver's reusable cycle batch or an
  /// arena-backed wire batch): engines must copy whatever they keep and
  /// must not hold the view past the call.
  virtual Status ProcessCycle(Timestamp now, RecordSpan arrivals) = 0;

  /// The query's current top-k set in ResultOrder (may hold fewer than k
  /// entries when the window has fewer qualifying records).
  virtual Result<std::vector<ResultEntry>> CurrentResult(
      QueryId id) const = 0;

  /// Installs a callback receiving per-query result deltas: invoked once
  /// at registration (the initial result as `added`) and once per cycle
  /// in which a query's result changed (Figures 9/11: "report changes to
  /// the client"). Passing nullptr disables reporting; tracking costs
  /// nothing while disabled.
  virtual void SetDeltaCallback(DeltaCallback callback) = 0;

  /// Number of currently valid (indexed) records.
  virtual std::size_t WindowSize() const = 0;

  /// The current window image for journal snapshots. Engines that keep a
  /// SlidingWindow override this; exotic engines may leave it
  /// Unimplemented (such an engine cannot anchor journal segments).
  virtual Result<EngineSnapshot> SnapshotState() const {
    return Status::Unimplemented("engine " + name() +
                                 " does not support state snapshots");
  }

  /// Rebuilds the window from a snapshot. Requires a freshly constructed
  /// engine (empty window). The default re-admits the snapshot records as
  /// one arrival batch at the snapshot's cycle timestamp — exact for
  /// every engine, because a window's content is a deterministic function
  /// of the (id-ordered) records admitted and the eviction instant, and
  /// none of the snapshot records can be expired at that instant. Queries
  /// registered afterwards compute their initial results over the
  /// restored window exactly as they did originally.
  virtual Status RestoreState(const EngineSnapshot& snapshot) {
    if (WindowSize() != 0) {
      return Status::FailedPrecondition(
          "RestoreState requires a freshly constructed engine");
    }
    if (snapshot.window.empty() && snapshot.last_cycle == 0) {
      return Status::Ok();
    }
    return ProcessCycle(snapshot.last_cycle, snapshot.window);
  }

  /// Accumulated maintenance counters.
  virtual const EngineStats& stats() const = 0;

  /// Structure-size accounting of all engine state.
  virtual MemoryBreakdown Memory() const = 0;
};

}  // namespace topkmon

#endif  // TOPKMON_CORE_ENGINE_H_
