#include "core/skyline_monitor.h"

#include <algorithm>

namespace topkmon {

bool Dominates(const Point& a, const Point& b) {
  assert(a.dim() == b.dim());
  bool strict = false;
  for (int i = 0; i < a.dim(); ++i) {
    if (a[i] < b[i]) return false;
    if (a[i] > b[i]) strict = true;
  }
  return strict;
}

bool DominatesOrEquals(const Point& a, const Point& b) {
  assert(a.dim() == b.dim());
  for (int i = 0; i < a.dim(); ++i) {
    if (a[i] < b[i]) return false;
  }
  return true;
}

SkylineMonitor::SkylineMonitor(int dim, const WindowSpec& window)
    : dim_(dim),
      window_(window.kind == WindowKind::kCountBased
                  ? SlidingWindow::CountBased(window.capacity)
                  : SlidingWindow::TimeBased(window.span)) {
  assert(dim >= 1 && dim <= kMaxDims);
}

Status SkylineMonitor::ProcessCycle(Timestamp now,
                                    const std::vector<Record>& arrivals) {
  Stopwatch watch;
  ++stats_.cycles;
  for (const Record& p : arrivals) {
    TOPKMON_RETURN_IF_ERROR(ValidatePoint(p.position, dim_));
    TOPKMON_RETURN_IF_ERROR(window_.Append(p));
    ++stats_.arrivals;
    // Discard candidates the new record strictly dominates: it is better
    // on some attribute, no worse anywhere, and expires later, so they
    // can never (re-)enter the skyline. Exact duplicates are kept — the
    // classic skyline definition reports all copies of an undominated
    // coordinate vector.
    const auto dominated = [&p, this](const Record& c) {
      ++stats_.points_scored;
      return Dominates(p.position, c.position);
    };
    candidates_.erase(
        std::remove_if(candidates_.begin(), candidates_.end(), dominated),
        candidates_.end());
    candidates_.push_back(p);
  }
  for (const Record& p : window_.EvictExpired(now)) {
    ++stats_.expirations;
    // Candidates are stored in arrival order, so an expiring record can
    // only be the front candidate.
    if (!candidates_.empty() && candidates_.front().id == p.id) {
      candidates_.pop_front();
      ++stats_.result_changes;
    }
  }
  stats_.maintenance_seconds += watch.ElapsedSeconds();
  return Status::Ok();
}

std::vector<Record> SkylineMonitor::CurrentSkyline() const {
  std::vector<Record> skyline;
  for (const Record& c : candidates_) {
    bool dominated = false;
    for (const Record& other : candidates_) {
      if (other.id != c.id && Dominates(other.position, c.position)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(c);
  }
  return skyline;
}

MemoryBreakdown SkylineMonitor::Memory() const {
  MemoryBreakdown mb;
  mb.Add("window", window_.MemoryBytes());
  mb.Add("candidates", candidates_.size() * sizeof(Record));
  return mb;
}

}  // namespace topkmon
