#include "core/topk_compute.h"

#include <algorithm>

namespace topkmon {

namespace {

/// Scans one cell's point list, considering each point for the running
/// top-k list (Figure 6, lines 7-8).
void ScanCell(const Grid& grid, CellIndex cell, const ScoringFunction& f,
              const RecordAccessor& records, const Rect* constraint,
              TopKList* top, std::uint64_t* points_scored) {
  for (RecordId id : grid.PointsIn(cell)) {
    const Record& record = records(id);
    if (constraint != nullptr && !constraint->Contains(record.position)) {
      continue;  // outside the constraint region (Figure 12: point p1)
    }
    ++*points_scored;
    const double score = f.Score(record.position);
    if (!top->full() || score >= top->KthScore()) {
      top->Consider(id, score);
    }
  }
}

}  // namespace

TopKComputation ComputeTopK(const Grid& grid, const ScoringFunction& f,
                            int k, const RecordAccessor& records,
                            TraversalScratch* scratch,
                            const Rect* constraint) {
  assert(k >= 1);
  TopKComputation out;
  TopKList top(k);
  MaxScoreTraversal traversal(grid, f, scratch, constraint);
  // Figure 6, line 5: de-heap while the next key can still contribute,
  // i.e. the result is incomplete or the key exceeds q.top_score.
  while (traversal.HasNext() &&
         (!top.full() || traversal.PeekMaxScore() > top.KthScore())) {
    const MaxScoreTraversal::Entry entry = traversal.Next();
    ScanCell(grid, entry.cell, f, records, constraint, &top,
             &out.points_scored);
    out.processed_cells.push_back(entry.cell);
  }
  out.frontier_cells = traversal.RemainingFrontier();
  out.result = top.entries();
  return out;
}

TopKComputation ComputeTopKNaive(const Grid& grid, const ScoringFunction& f,
                                 int k, const RecordAccessor& records,
                                 const Rect* constraint) {
  assert(k >= 1);
  TopKComputation out;
  TopKList top(k);
  // Compute the maxscore of every cell and sort descending (the expensive
  // strawman the heap traversal replaces, Section 4.2).
  struct CellScore {
    CellIndex cell;
    double maxscore;
  };
  std::vector<CellScore> order;
  order.reserve(grid.num_cells());
  for (CellIndex c = 0; c < grid.num_cells(); ++c) {
    const Rect bounds = grid.CellBounds(c);
    if (constraint != nullptr && !bounds.Intersects(*constraint)) continue;
    Rect clipped = bounds;
    if (constraint != nullptr) {
      Point lo(grid.dim());
      Point hi(grid.dim());
      for (int i = 0; i < grid.dim(); ++i) {
        lo[i] = std::max(bounds.lo()[i], constraint->lo()[i]);
        hi[i] = std::min(bounds.hi()[i], constraint->hi()[i]);
      }
      clipped = Rect(lo, hi);
    }
    order.push_back(CellScore{c, f.MaxScore(clipped)});
  }
  std::sort(order.begin(), order.end(),
            [](const CellScore& a, const CellScore& b) {
              return a.maxscore > b.maxscore;
            });
  for (const CellScore& cs : order) {
    if (top.full() && cs.maxscore <= top.KthScore()) break;
    ScanCell(grid, cs.cell, f, records, constraint, &top,
             &out.points_scored);
    out.processed_cells.push_back(cs.cell);
  }
  out.result = top.entries();
  return out;
}

}  // namespace topkmon
