#include "core/topk_compute.h"

#include <algorithm>

namespace topkmon {

namespace {

/// Scans one cell's point list, considering each point for the running
/// top-k list (Figure 6, lines 7-8). The coordinates come from the cell's
/// lane-major storage: unconstrained scans batch-score the whole list with
/// one ScoreLanes call (contiguous, auto-vectorizable); constrained scans
/// filter per point first so points outside R are neither scored nor
/// counted (Figure 12: point p1).
void ScanCell(const Grid& grid, CellIndex cell, const ScoringFunction& f,
              const Rect* constraint, TopKList* top,
              std::vector<double>* score_buf,
              std::uint64_t* points_scored) {
  const PointList& points = grid.PointsIn(cell);
  const std::size_t n = points.size();
  if (n == 0) return;
  const RecordId* ids = points.begin();
  const int dim = grid.dim();
  const double* lanes[kMaxDims];
  for (int d = 0; d < dim; ++d) lanes[d] = points.Lane(d);
  if (constraint == nullptr) {
    score_buf->resize(n);
    double* scores = score_buf->data();
    f.ScoreLanes(lanes, n, scores);
    *points_scored += n;
    for (std::size_t i = 0; i < n; ++i) {
      const double score = scores[i];
      if (!top->full() || score >= top->KthScore()) {
        top->Consider(ids[i], score);
      }
    }
  } else {
    Point p(dim);
    for (std::size_t i = 0; i < n; ++i) {
      bool inside = true;
      for (int d = 0; d < dim; ++d) {
        const double v = lanes[d][i];
        if (v < constraint->lo()[d] || v > constraint->hi()[d]) {
          inside = false;
          break;
        }
      }
      if (!inside) continue;
      for (int d = 0; d < dim; ++d) p[d] = lanes[d][i];
      ++*points_scored;
      const double score = f.Score(p);
      if (!top->full() || score >= top->KthScore()) {
        top->Consider(ids[i], score);
      }
    }
  }
}

}  // namespace

TopKComputation ComputeTopK(const Grid& grid, const ScoringFunction& f,
                            int k, TraversalScratch* scratch,
                            const Rect* constraint) {
  assert(k >= 1);
  TopKComputation out;
  TopKList top(k);
  MaxScoreTraversal traversal(grid, f, scratch, constraint);
  // Figure 6, line 5: de-heap while the next key can still contribute,
  // i.e. the result is incomplete or the key exceeds q.top_score.
  while (traversal.HasNext() &&
         (!top.full() || traversal.PeekMaxScore() > top.KthScore())) {
    const MaxScoreTraversal::Entry entry = traversal.Next();
    ScanCell(grid, entry.cell, f, constraint, &top, &scratch->scores(),
             &out.points_scored);
    out.processed_cells.push_back(entry.cell);
  }
  out.frontier_cells = traversal.RemainingFrontier();
  out.result = top.entries();
  return out;
}

TopKComputation ComputeTopKNaive(const Grid& grid, const ScoringFunction& f,
                                 int k, const Rect* constraint) {
  assert(k >= 1);
  TopKComputation out;
  TopKList top(k);
  std::vector<double> score_buf;
  // Compute the maxscore of every cell and sort descending (the expensive
  // strawman the heap traversal replaces, Section 4.2).
  struct CellScore {
    CellIndex cell;
    double maxscore;
  };
  std::vector<CellScore> order;
  order.reserve(grid.num_cells());
  for (CellIndex c = 0; c < grid.num_cells(); ++c) {
    const Rect bounds = grid.CellBounds(c);
    if (constraint != nullptr && !bounds.Intersects(*constraint)) continue;
    Rect clipped = bounds;
    if (constraint != nullptr) {
      Point lo(grid.dim());
      Point hi(grid.dim());
      for (int i = 0; i < grid.dim(); ++i) {
        lo[i] = std::max(bounds.lo()[i], constraint->lo()[i]);
        hi[i] = std::min(bounds.hi()[i], constraint->hi()[i]);
      }
      clipped = Rect(lo, hi);
    }
    order.push_back(CellScore{c, f.MaxScore(clipped)});
  }
  std::sort(order.begin(), order.end(),
            [](const CellScore& a, const CellScore& b) {
              return a.maxscore > b.maxscore;
            });
  for (const CellScore& cs : order) {
    if (top.full() && cs.maxscore <= top.KthScore()) break;
    ScanCell(grid, cs.cell, f, constraint, &top, &score_buf,
             &out.points_scored);
    out.processed_cells.push_back(cs.cell);
  }
  out.result = top.entries();
  return out;
}

}  // namespace topkmon
