// k-skyband maintenance in score-time space (Sections 3.1 and 5).
//
// Associate each record with the pair (score, expiration time). A record
// appears in some future top-k result if and only if it belongs to the
// k-skyband of this 2-D space: it is dominated by fewer than k records
// that have both a higher score and a later expiry (Figure 2). Because
// arrival order equals expiration order in the append-only model, the
// record id doubles as the expiry coordinate.
//
// SMA restricts the skyband to the query's influence region: only records
// scoring at least q.top_score (the kth score at the last from-scratch
// computation) enter. Each entry carries a dominance counter DC = number
// of skyband records with higher score that arrived later; an entry whose
// DC reaches k can never re-enter the top-k and is evicted (Figure 10).

#ifndef TOPKMON_CORE_SKYBAND_H_
#define TOPKMON_CORE_SKYBAND_H_

#include <cstdint>
#include <vector>

#include "core/query.h"

namespace topkmon {

/// One skyband entry: <p.id, p.score, p.DC> (Section 5).
struct SkybandEntry {
  RecordId id = kInvalidRecordId;
  double score = 0.0;
  int dominance = 0;  ///< records with higher score arriving after this one
};

/// The per-query k-skyband of SMA, ordered by descending (score, id).
/// The first k entries are the query's current top-k result.
class Skyband {
 public:
  explicit Skyband(int k) : k_(k) { assert(k >= 1); }

  int k() const { return k_; }
  std::size_t size() const { return entries_.size(); }

  /// Rebuilds the skyband from a fresh top-k computation: the entries
  /// (given in ResultOrder) become the skyband, and dominance counters are
  /// derived with an order-statistics tree over arrival order in O(k log k)
  /// (Section 5's balanced tree BT).
  void Rebuild(const std::vector<ResultEntry>& result);

  /// Handles the arrival of a record inside the influence region
  /// (Figure 11, lines 8-11): inserts it with DC = 0, increments the DC of
  /// every entry with score <= `score`, and evicts entries whose DC
  /// reaches k. The new record must be the youngest ever inserted
  /// (append-only stream). Returns the number of evicted entries.
  std::size_t Insert(RecordId id, double score);

  /// Handles the expiration of a record: removes it if present. The
  /// expiring record never dominates anything (it has the earliest
  /// expiry), so no counters change (Figure 11, lines 15-16). Returns true
  /// iff the record was in the skyband.
  bool Remove(RecordId id);

  bool Contains(RecordId id) const;

  /// The current top-k result: the first min(k, size) entries.
  std::vector<ResultEntry> TopK() const;

  /// All entries, best score first.
  const std::vector<SkybandEntry>& entries() const { return entries_; }

  void Clear() { entries_.clear(); }

  std::size_t MemoryBytes() const { return VectorBytes(entries_); }

 private:
  int k_;
  std::vector<SkybandEntry> entries_;
};

/// Test oracle: the k-skyband of (score, expiry) pairs by O(n^2) dominance
/// counting. `a` dominates `b` iff a.score >= b.score and a expires
/// strictly later (a.id > b.id) — the convention of Skyband::Insert, where
/// equal scores are resolved in favor of the later-expiring record.
/// Returns the ids of records dominated by at most k-1 others.
std::vector<RecordId> BruteForceSkyband(
    const std::vector<ResultEntry>& records, int k);

}  // namespace topkmon

#endif  // TOPKMON_CORE_SKYBAND_H_
