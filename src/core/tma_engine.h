// TMA — the Top-k Monitoring Algorithm (Section 4, Figure 9).
//
// TMA maintains each query's exact top-k list incrementally:
//   * arrivals inside a query's influence region that score at least
//     q.top_score enter the top-k list directly (possibly evicting the
//     current kth entry);
//   * expirations of current result records mark the query as affected;
//     after the cycle's updates, affected queries are recomputed from
//     scratch by the top-k computation module, followed by the lazy
//     influence-list reconciliation walk.
// Arrivals are processed before expirations so that a replacement arriving
// in the same cycle avoids a needless recomputation (Section 4.3).

#ifndef TOPKMON_CORE_TMA_ENGINE_H_
#define TOPKMON_CORE_TMA_ENGINE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "core/piecewise_router.h"
#include "core/topk_compute.h"
#include "grid/cell_traversal.h"
#include "grid/grid.h"
#include "stream/sliding_window.h"

namespace topkmon {

/// Configuration shared by the grid-based engines.
struct GridEngineOptions {
  int dim = 2;
  WindowSpec window = WindowSpec::Count(1000);
  /// Total cell budget; per-axis resolution is budget^(1/dim) as in the
  /// paper's granularity experiment (Figure 14; 12^4 is the tuned value).
  std::size_t cell_budget = 20736;
  /// Overrides cell_budget with an explicit per-axis resolution when > 0.
  int cells_per_axis = 0;
  /// Process Pins before Pdel (Section 4.3's ordering, the default).
  /// Setting this to false processes expirations first — correct but
  /// wasteful, because an arrival that would have replaced an expiring
  /// result record no longer pre-empts the recomputation. Exists for the
  /// ordering ablation benchmark.
  bool arrivals_before_expirations = true;

  int ResolvedCellsPerAxis() const;
};

/// The Top-k Monitoring Algorithm.
class TmaEngine final : public MonitorEngine {
 public:
  explicit TmaEngine(const GridEngineOptions& options);

  std::string name() const override { return "TMA"; }
  int dim() const override { return grid_.dim(); }
  Status RegisterQuery(const QuerySpec& spec) override;
  Status UnregisterQuery(QueryId id) override;
  Status ProcessCycle(Timestamp now, RecordSpan arrivals) override;
  Result<std::vector<ResultEntry>> CurrentResult(QueryId id) const override;
  void SetDeltaCallback(DeltaCallback callback) override {
    delta_.SetCallback(std::move(callback));
  }
  std::size_t WindowSize() const override { return window_.size(); }
  Result<EngineSnapshot> SnapshotState() const override {
    return EngineSnapshot{
        last_cycle_, std::vector<Record>(window_.begin(), window_.end())};
  }
  const EngineStats& stats() const override { return stats_; }
  MemoryBreakdown Memory() const override;

  /// Grid resolution actually in use (for the granularity experiment).
  const Grid& grid() const { return grid_; }

 private:
  struct QueryState {
    explicit QueryState(QuerySpec s) : spec(std::move(s)), top_list(spec.k) {}
    QuerySpec spec;
    TopKList top_list;
    bool affected = false;  ///< a result record expired this cycle
  };

  /// Runs the computation module for `state`, refreshes its top-k list and
  /// reconciles influence lists (add processed, clean stale from frontier).
  void RecomputeFromScratch(QueryId id, QueryState& state);

  void HandleArrival(const Record& p);
  void HandleExpiry(const Record& p);

  /// The pre-validated registration body (shared by external monotone
  /// queries and internal piecewise sub-queries, which skip the delta
  /// report — only the parent's merged result is ever reported).
  Status RegisterMonotone(const QuerySpec& spec, bool report_delta);
  /// Removes one entry from the query table (internal or external).
  Status RemoveMonotone(QueryId id);
  /// Decomposes a piecewise-monotone spec into internal constrained
  /// sub-queries (core/piecewise_router.h) and records the parent book.
  Status RegisterPiecewise(const QuerySpec& spec,
                           const PiecewiseFunction& fn);
  std::vector<ResultEntry> MergedPiecewise(const PiecewiseBook& book) const;

  const Record& Lookup(RecordId id) const { return window_.Get(id); }

  bool arrivals_first_;
  Grid grid_;
  SlidingWindow window_;
  TraversalScratch scratch_;
  std::unordered_map<QueryId, QueryState> queries_;
  std::unordered_map<QueryId, PiecewiseBook> piecewise_;
  QueryId next_internal_id_ = kInternalQueryIdBase;
  EngineStats stats_;
  DeltaTracker delta_;
  Timestamp last_cycle_ = 0;
};

}  // namespace topkmon

#endif  // TOPKMON_CORE_TMA_ENGINE_H_
