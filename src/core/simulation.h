// Workload construction and simulation driving (Section 8).
//
// A WorkloadSpec captures the paper's experimental parameters (Table 1):
// dimensionality d, window size N, arrival rate r, query count Q, result
// size k, data distribution, scoring-function family, and the window
// flavor. RunWorkload() drives one engine through the standard protocol —
// warm the window up to steady state, register the Q queries, then run
// the measured monitoring cycles — and reports timings, counters and the
// memory footprint. Two engines given the same spec consume identical
// streams and query sets (generators are seeded deterministically), which
// is what makes cross-engine comparisons and correctness checks exact.

#ifndef TOPKMON_CORE_SIMULATION_H_
#define TOPKMON_CORE_SIMULATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/scoring.h"
#include "core/engine.h"
#include "stream/generators.h"

namespace topkmon {

/// Experiment parameters (defaults follow Table 1, scaled by the caller).
struct WorkloadSpec {
  int dim = 4;                              ///< d
  Distribution distribution = Distribution::kIndependent;
  WindowKind window_kind = WindowKind::kCountBased;
  std::size_t window_size = 100000;         ///< N (count-based)
  std::size_t arrivals_per_cycle = 1000;    ///< r
  int num_cycles = 100;                     ///< measured timestamps
  std::size_t num_queries = 100;            ///< Q
  int k = 20;
  FunctionFamily family = FunctionFamily::kLinear;
  std::uint64_t seed = 42;

  /// Window spec for engine construction. Time-based windows get a span of
  /// ceil(N / r) cycles so that steady state also holds ~N records.
  WindowSpec MakeWindowSpec() const;

  /// Number of warm-up cycles needed to reach a full window.
  int WarmupCycles() const;

  /// The Q random queries of Section 8 (coefficients uniform in [0,1]),
  /// deterministic in `seed`. Ids are 1..Q.
  std::vector<QuerySpec> MakeQueries() const;
};

/// Outcome of driving one engine through a workload.
struct SimulationReport {
  std::string engine;
  double warmup_seconds = 0.0;    ///< window fill (unmeasured in the paper)
  double register_seconds = 0.0;  ///< initial computation of all queries
  double monitor_seconds = 0.0;   ///< the paper's "CPU time": the measured
                                  ///< monitoring cycles
  RunningStat cycle_seconds;      ///< per-cycle latency distribution —
                                  ///< max() is the worst stall a client
                                  ///< observes between consistent results
  EngineStats stats;              ///< counters accumulated over the run
  MemoryBreakdown memory;         ///< footprint after the last cycle
};

/// Drives `engine` through `spec`: warm-up, query registration, then
/// spec.num_cycles measured cycles of r arrivals each. The engine must be
/// freshly constructed with spec.MakeWindowSpec() and dimensionality
/// spec.dim.
Result<SimulationReport> RunWorkload(MonitorEngine& engine,
                                     const WorkloadSpec& spec);

}  // namespace topkmon

#endif  // TOPKMON_CORE_SIMULATION_H_
