#include "core/delta.h"

#include <algorithm>

namespace topkmon {

void DeltaTracker::Report(QueryId query, Timestamp when,
                          const std::vector<ResultEntry>& current) {
  if (!callback_) return;
  std::vector<ResultEntry>& last = last_reported_[query];
  ResultDelta delta;
  delta.query = query;
  delta.when = when;
  // Results are small (k entries); an id-membership scan beats hashing.
  const auto contains = [](const std::vector<ResultEntry>& haystack,
                           RecordId id) {
    for (const ResultEntry& e : haystack) {
      if (e.id == id) return true;
    }
    return false;
  };
  for (const ResultEntry& e : current) {
    if (!contains(last, e.id)) delta.added.push_back(e);
  }
  for (const ResultEntry& e : last) {
    if (!contains(current, e.id)) delta.removed.push_back(e);
  }
  if (delta.added.empty() && delta.removed.empty()) return;
  last = current;
  callback_(delta);
}

std::size_t DeltaTracker::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& [query, entries] : last_reported_) {
    bytes += sizeof(query) + VectorBytes(entries);
  }
  return bytes;
}

}  // namespace topkmon
