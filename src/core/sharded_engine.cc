#include "core/sharded_engine.h"

#include <cassert>

namespace topkmon {

ShardedEngine::ShardedEngine(int num_shards, const EngineFactory& factory) {
  assert(num_shards >= 1);
  shards_.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(factory());
    assert(shards_.back() != nullptr);
  }
  shard_status_.resize(shards_.size());
  threads_.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    threads_.emplace_back([this, s] { WorkerLoop(s); });
  }
}

ShardedEngine::~ShardedEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::string ShardedEngine::name() const {
  return "SHARDED[" + std::to_string(shards_.size()) + "x" +
         shards_.front()->name() + "]";
}

Status ShardedEngine::RegisterQuery(const QuerySpec& spec) {
  if (query_shard_.count(spec.id) > 0) {
    return Status::AlreadyExists("query id " + std::to_string(spec.id) +
                                 " already registered");
  }
  const std::size_t shard = next_shard_ % shards_.size();
  TOPKMON_RETURN_IF_ERROR(shards_[shard]->RegisterQuery(spec));
  query_shard_.emplace(spec.id, shard);
  ++next_shard_;
  return Status::Ok();
}

Status ShardedEngine::UnregisterQuery(QueryId id) {
  auto it = query_shard_.find(id);
  if (it == query_shard_.end()) {
    return Status::NotFound("query id " + std::to_string(id) +
                            " not registered");
  }
  TOPKMON_RETURN_IF_ERROR(shards_[it->second]->UnregisterQuery(id));
  query_shard_.erase(it);
  return Status::Ok();
}

Status ShardedEngine::ProcessCycle(Timestamp now,
                                   const std::vector<Record>& arrivals) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    now_ = now;
    arrivals_ = &arrivals;
    pending_ = shards_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }
  // All shards run the same deterministic validation on the same input,
  // so either all succeed or all fail identically; report the first.
  for (const Status& st : shard_status_) {
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

void ShardedEngine::WorkerLoop(std::size_t shard_index) {
  std::uint64_t seen_generation = 0;
  while (true) {
    Timestamp now;
    const std::vector<Record>* arrivals;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_generation] {
        return stop_ || generation_ > seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      now = now_;
      arrivals = arrivals_;
    }
    const Status st = shards_[shard_index]->ProcessCycle(now, *arrivals);
    {
      std::lock_guard<std::mutex> lock(mu_);
      shard_status_[shard_index] = st;
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

Result<std::vector<ResultEntry>> ShardedEngine::CurrentResult(
    QueryId id) const {
  auto it = query_shard_.find(id);
  if (it == query_shard_.end()) {
    return Status::NotFound("query id " + std::to_string(id) +
                            " not registered");
  }
  return shards_[it->second]->CurrentResult(id);
}

void ShardedEngine::SetDeltaCallback(DeltaCallback callback) {
  if (!callback) {
    for (auto& shard : shards_) shard->SetDeltaCallback(nullptr);
    return;
  }
  // Callbacks fire from worker threads concurrently; serialize them so
  // the client sees the single-threaded contract.
  auto mu = delta_mu_;
  auto serialized = [mu, callback](const ResultDelta& delta) {
    std::lock_guard<std::mutex> lock(*mu);
    callback(delta);
  };
  for (auto& shard : shards_) shard->SetDeltaCallback(serialized);
}

const EngineStats& ShardedEngine::stats() const {
  aggregated_stats_ = EngineStats();
  for (const auto& shard : shards_) aggregated_stats_ += shard->stats();
  // Cycles and stream counters are replicated per shard; report the
  // logical stream numbers, not the sum.
  const EngineStats& first = shards_.front()->stats();
  aggregated_stats_.cycles = first.cycles;
  aggregated_stats_.arrivals = first.arrivals;
  aggregated_stats_.expirations = first.expirations;
  return aggregated_stats_;
}

MemoryBreakdown ShardedEngine::Memory() const {
  MemoryBreakdown mb;
  for (const auto& shard : shards_) mb.Merge(shard->Memory());
  return mb;
}

}  // namespace topkmon
