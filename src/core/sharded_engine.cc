#include "core/sharded_engine.h"

#include <cassert>

namespace topkmon {

ShardedEngine::ShardedEngine(int num_shards, const EngineFactory& factory) {
  assert(num_shards >= 1);
  if (num_shards < 1) num_shards = 1;  // release builds: degrade, not UB
  shards_.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(factory());
    assert(shards_.back() != nullptr);
  }
  dim_ = shards_.front()->dim();
  name_ = "SHARDED[" + std::to_string(shards_.size()) + "x" +
          shards_.front()->name() + "]";
  shard_status_.resize(shards_.size());
  threads_.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    threads_.emplace_back([this, s] { WorkerLoop(s); });
  }
}

ShardedEngine::~ShardedEngine() { Shutdown(); }

void ShardedEngine::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

Status ShardedEngine::RegisterQuery(const QuerySpec& spec) {
  if (query_shard_.count(spec.id) > 0) {
    return Status::AlreadyExists("query id " + std::to_string(spec.id) +
                                 " already registered");
  }
  const std::size_t shard = next_shard_ % shards_.size();
  // Record the routing *before* the inner registration: the inner engine
  // reports the query's initial result synchronously through the delta
  // callback, and the per-shard wrapper drops deltas for unrouted queries.
  query_shard_.emplace(spec.id, shard);
  const Status st = shards_[shard]->RegisterQuery(spec);
  if (!st.ok()) {
    query_shard_.erase(spec.id);
    return st;
  }
  ++next_shard_;
  return Status::Ok();
}

Status ShardedEngine::UnregisterQuery(QueryId id) {
  auto it = query_shard_.find(id);
  if (it == query_shard_.end()) {
    return Status::NotFound("query id " + std::to_string(id) +
                            " not registered");
  }
  TOPKMON_RETURN_IF_ERROR(shards_[it->second]->UnregisterQuery(id));
  query_shard_.erase(it);
  return Status::Ok();
}

Status ShardedEngine::ProcessCycle(Timestamp now, RecordSpan arrivals) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return Status::FailedPrecondition(
          "ShardedEngine is shut down; no worker pool to run the cycle");
    }
    now_ = now;
    arrivals_ = arrivals;
    pending_ = shards_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }
  // All shards run the same deterministic validation on the same input,
  // so either all succeed or all fail identically; report the first.
  for (const Status& st : shard_status_) {
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

void ShardedEngine::WorkerLoop(std::size_t shard_index) {
  std::uint64_t seen_generation = 0;
  while (true) {
    Timestamp now;
    RecordSpan arrivals;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_generation] {
        return stop_ || generation_ > seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      now = now_;
      arrivals = arrivals_;
    }
    const Status st = shards_[shard_index]->ProcessCycle(now, arrivals);
    {
      std::lock_guard<std::mutex> lock(mu_);
      shard_status_[shard_index] = st;
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

Result<std::vector<ResultEntry>> ShardedEngine::CurrentResult(
    QueryId id) const {
  auto it = query_shard_.find(id);
  if (it == query_shard_.end()) {
    return Status::NotFound("query id " + std::to_string(id) +
                            " not registered");
  }
  return shards_[it->second]->CurrentResult(id);
}

void ShardedEngine::SetDeltaCallback(DeltaCallback callback) {
  if (!callback) {
    for (auto& shard : shards_) shard->SetDeltaCallback(nullptr);
    return;
  }
  // Each shard gets its own wrapper: callbacks fire from worker threads
  // concurrently, so they are serialized to preserve the single-threaded
  // contract, and each delta is forwarded only while the routing table
  // still maps its query to the reporting shard — a delta racing a
  // just-failed registration rollback is dropped instead of leaking a
  // phantom query to the subscriber.
  auto mu = delta_mu_;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->SetDeltaCallback(
        [this, mu, callback, s](const ResultDelta& delta) {
          const auto it = query_shard_.find(delta.query);
          if (it == query_shard_.end() || it->second != s) return;
          std::lock_guard<std::mutex> lock(*mu);
          callback(delta);
        });
  }
}

const EngineStats& ShardedEngine::stats() const {
  aggregated_stats_ = EngineStats();
  for (const auto& shard : shards_) aggregated_stats_ += shard->stats();
  // Cycles and stream counters are replicated per shard; report the
  // logical stream numbers, not the sum.
  const EngineStats& first = shards_.front()->stats();
  aggregated_stats_.cycles = first.cycles;
  aggregated_stats_.arrivals = first.arrivals;
  aggregated_stats_.expirations = first.expirations;
  return aggregated_stats_;
}

MemoryBreakdown ShardedEngine::Memory() const {
  MemoryBreakdown mb;
  for (const auto& shard : shards_) mb.Merge(shard->Memory());
  return mb;
}

}  // namespace topkmon
