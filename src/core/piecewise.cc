#include "core/piecewise.h"

#include <algorithm>
#include <limits>
#include <string>

namespace topkmon {

Result<std::shared_ptr<const PiecewiseFunction>> PiecewiseFunction::Create(
    std::vector<MonotonePiece> pieces) {
  if (pieces.empty()) {
    return Status::InvalidArgument(
        "piecewise function needs at least one monotone piece");
  }
  if (pieces.size() > 255) {
    return Status::InvalidArgument(
        "piecewise function is limited to 255 pieces, got " +
        std::to_string(pieces.size()));
  }
  int dim = 0;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const MonotonePiece& piece = pieces[i];
    if (piece.function == nullptr) {
      return Status::InvalidArgument("piecewise piece " + std::to_string(i) +
                                     " has no scoring function");
    }
    if (dynamic_cast<const PiecewiseFunction*>(piece.function.get()) !=
        nullptr) {
      return Status::InvalidArgument(
          "piecewise piece " + std::to_string(i) +
          " is itself piecewise; flatten nested pieces instead");
    }
    if (i == 0) {
      dim = piece.function->dim();
    } else if (piece.function->dim() != dim) {
      return Status::InvalidArgument(
          "piecewise piece " + std::to_string(i) + " has dimensionality " +
          std::to_string(piece.function->dim()) + ", expected " +
          std::to_string(dim));
    }
    if (piece.domain.lo().dim() != dim) {
      return Status::InvalidArgument(
          "piecewise piece " + std::to_string(i) +
          " has a domain of mismatched dimensionality");
    }
  }
  return std::shared_ptr<const PiecewiseFunction>(
      new PiecewiseFunction(std::move(pieces), dim));
}

double PiecewiseFunction::Score(const Point& p) const {
  for (const MonotonePiece& piece : pieces_) {
    if (piece.domain.Contains(p)) return piece.function->Score(p);
  }
  return -std::numeric_limits<double>::infinity();
}

std::unique_ptr<ScoringFunction> PiecewiseFunction::Clone() const {
  std::vector<MonotonePiece> copy;
  copy.reserve(pieces_.size());
  for (const MonotonePiece& piece : pieces_) {
    copy.push_back(MonotonePiece{
        piece.domain,
        std::shared_ptr<const ScoringFunction>(piece.function->Clone())});
  }
  return std::unique_ptr<ScoringFunction>(
      new PiecewiseFunction(std::move(copy), dim_));
}

std::string PiecewiseFunction::ToString() const {
  std::string out = "piecewise[";
  for (std::size_t i = 0; i < pieces_.size(); ++i) {
    if (i > 0) out += "; ";
    out += pieces_[i].function->ToString();
  }
  out += "]";
  return out;
}

Result<PiecewiseTopKQuery> PiecewiseTopKQuery::Register(
    MonitorEngine* engine, QueryId base_id, int k,
    std::vector<MonotonePiece> pieces) {
  if (engine == nullptr) {
    return Status::InvalidArgument("piecewise query needs an engine");
  }
  if (pieces.empty()) {
    return Status::InvalidArgument(
        "piecewise query needs at least one monotone piece");
  }
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    QuerySpec spec;
    spec.id = base_id + static_cast<QueryId>(i);
    spec.k = k;
    spec.function = pieces[i].function;
    spec.constraint = pieces[i].domain;
    const Status st = engine->RegisterQuery(spec);
    if (!st.ok()) {
      // Roll back the sub-queries registered so far.
      for (std::size_t j = 0; j < i; ++j) {
        (void)engine->UnregisterQuery(base_id + static_cast<QueryId>(j));
      }
      return st;
    }
  }
  return PiecewiseTopKQuery(engine, base_id, k, pieces.size());
}

Result<std::vector<ResultEntry>> PiecewiseTopKQuery::CurrentResult() const {
  std::vector<ResultEntry> merged;
  for (std::size_t i = 0; i < num_pieces_; ++i) {
    const Result<std::vector<ResultEntry>> piece =
        engine_->CurrentResult(base_id_ + static_cast<QueryId>(i));
    if (!piece.ok()) return piece.status();
    merged.insert(merged.end(), piece->begin(), piece->end());
  }
  std::sort(merged.begin(), merged.end(), ResultOrder);
  // Deduplicate boundary records reported by adjacent pieces: identical
  // ids carry identical scores (the pieces agree with the global function
  // on their shared boundary), so duplicates are adjacent after sorting.
  std::vector<ResultEntry> result;
  result.reserve(std::min<std::size_t>(merged.size(), k_));
  for (const ResultEntry& e : merged) {
    if (!result.empty() && result.back().id == e.id) continue;
    result.push_back(e);
    if (static_cast<int>(result.size()) == k_) break;
  }
  return result;
}

Status PiecewiseTopKQuery::Unregister() {
  Status first_error;
  for (std::size_t i = 0; i < num_pieces_; ++i) {
    const Status st =
        engine_->UnregisterQuery(base_id_ + static_cast<QueryId>(i));
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

}  // namespace topkmon
