#include "core/piecewise.h"

#include <algorithm>

namespace topkmon {

Result<PiecewiseTopKQuery> PiecewiseTopKQuery::Register(
    MonitorEngine* engine, QueryId base_id, int k,
    std::vector<MonotonePiece> pieces) {
  if (engine == nullptr) {
    return Status::InvalidArgument("piecewise query needs an engine");
  }
  if (pieces.empty()) {
    return Status::InvalidArgument(
        "piecewise query needs at least one monotone piece");
  }
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    QuerySpec spec;
    spec.id = base_id + static_cast<QueryId>(i);
    spec.k = k;
    spec.function = pieces[i].function;
    spec.constraint = pieces[i].domain;
    const Status st = engine->RegisterQuery(spec);
    if (!st.ok()) {
      // Roll back the sub-queries registered so far.
      for (std::size_t j = 0; j < i; ++j) {
        (void)engine->UnregisterQuery(base_id + static_cast<QueryId>(j));
      }
      return st;
    }
  }
  return PiecewiseTopKQuery(engine, base_id, k, pieces.size());
}

Result<std::vector<ResultEntry>> PiecewiseTopKQuery::CurrentResult() const {
  std::vector<ResultEntry> merged;
  for (std::size_t i = 0; i < num_pieces_; ++i) {
    const Result<std::vector<ResultEntry>> piece =
        engine_->CurrentResult(base_id_ + static_cast<QueryId>(i));
    if (!piece.ok()) return piece.status();
    merged.insert(merged.end(), piece->begin(), piece->end());
  }
  std::sort(merged.begin(), merged.end(), ResultOrder);
  // Deduplicate boundary records reported by adjacent pieces: identical
  // ids carry identical scores (the pieces agree with the global function
  // on their shared boundary), so duplicates are adjacent after sorting.
  std::vector<ResultEntry> result;
  result.reserve(std::min<std::size_t>(merged.size(), k_));
  for (const ResultEntry& e : merged) {
    if (!result.empty() && result.back().id == e.id) continue;
    result.push_back(e);
    if (static_cast<int>(result.size()) == k_) break;
  }
  return result;
}

Status PiecewiseTopKQuery::Unregister() {
  Status first_error;
  for (std::size_t i = 0; i < num_pieces_; ++i) {
    const Status st =
        engine_->UnregisterQuery(base_id_ + static_cast<QueryId>(i));
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

}  // namespace topkmon
