#include "core/query.h"

#include <algorithm>

namespace topkmon {

Status QuerySpec::Validate(int dim) const {
  if (k < 1) {
    return Status::InvalidArgument("query k must be >= 1, got " +
                                   std::to_string(k));
  }
  if (function == nullptr) {
    return Status::InvalidArgument("query has no scoring function");
  }
  if (function->dim() != dim) {
    return Status::InvalidArgument(
        "scoring function dimensionality " +
        std::to_string(function->dim()) + " != engine dimensionality " +
        std::to_string(dim));
  }
  if (constraint.has_value()) {
    if (constraint->dim() != dim) {
      return Status::InvalidArgument("constraint dimensionality mismatch");
    }
    for (int i = 0; i < dim; ++i) {
      if (constraint->lo()[i] < 0.0 || constraint->hi()[i] > 1.0) {
        return Status::OutOfRange("constraint region outside unit space");
      }
    }
  }
  return Status::Ok();
}

bool TopKList::Consider(RecordId id, double score) {
  const ResultEntry candidate{id, score};
  if (full() && !ResultOrder(candidate, entries_.back())) return false;
  auto pos =
      std::lower_bound(entries_.begin(), entries_.end(), candidate,
                       ResultOrder);
  entries_.insert(pos, candidate);
  if (static_cast<int>(entries_.size()) > k_) entries_.pop_back();
  return true;
}

bool TopKList::Remove(RecordId id) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->id == id) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

bool TopKList::Contains(RecordId id) const {
  for (const ResultEntry& e : entries_) {
    if (e.id == id) return true;
  }
  return false;
}

}  // namespace topkmon
