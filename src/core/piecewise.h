// Non-monotone preference functions via piecewise-monotone partitioning.
//
// The paper's future-work direction (Section 9): "a function with finite
// and analytically computable local maxima could be evaluated with a
// proper partitioning of the space into sub-domains where it is
// monotone." This header implements exactly that: the caller supplies
// the partition — a set of axis-parallel sub-domains, each with a
// monotone function that agrees with the global preference function on
// that sub-domain. Since PR 7 the engines perform the decomposition
// themselves (core/piecewise_router.h): registering a QuerySpec whose
// function is a PiecewiseFunction works on every engine. The explicit
// PiecewiseTopKQuery helper below predates that and remains for callers
// that want the sub-queries under their own ids.
//
// Example: f(p) = x2 - |x1 - 0.5| is not monotone in x1, but splits into
//   piece 1: x1 in [0, 0.5], f = x1 - 0.5 + x2   (increasing, increasing)
//   piece 2: x1 in [0.5, 1], f = 0.5 - x1 + x2   (decreasing, increasing)
// Records on a shared boundary may appear in several pieces; the merge
// deduplicates by record id, so partitions only need to cover the
// workspace, not to be disjoint.

#ifndef TOPKMON_CORE_PIECEWISE_H_
#define TOPKMON_CORE_PIECEWISE_H_

#include <memory>
#include <vector>

#include "core/engine.h"
#include "core/query.h"

namespace topkmon {

/// One monotone piece of a non-monotone preference function: an
/// axis-parallel sub-domain and a monotone function that equals the
/// global function inside it.
struct MonotonePiece {
  Rect domain;
  std::shared_ptr<const ScoringFunction> function;
};

/// A piecewise-monotone preference function as a first-class
/// ScoringFunction: the value at `p` is the value of the first piece
/// whose domain contains `p`, and -infinity outside every piece —
/// uncovered records are unrankable and excluded from results entirely
/// (BruteForce skips -infinity scores; the decomposed engines never see
/// uncovered records at all).
///
/// IsMonotone() is false — the global function has no per-dimension
/// direction — but every engine accepts it at registration: TMA, SMA
/// and TSL decompose it internally into one constrained monotone
/// sub-query per piece (core/piecewise_router.h), ShardedEngine
/// forwards to its inner engines, and BruteForce evaluates Score
/// directly. Being a ScoringFunction gives it a wire/journal encoding
/// (family tag 4, journal format v2): a piecewise query registered
/// against a journaling service survives recovery.
class PiecewiseFunction final : public ScoringFunction {
 public:
  /// Validates and wraps `pieces`: 1..255 pieces, uniform dimensionality
  /// across functions and domains, no nested piecewise functions (the
  /// wire encoding is deliberately one level deep — flatten instead).
  static Result<std::shared_ptr<const PiecewiseFunction>> Create(
      std::vector<MonotonePiece> pieces);

  int dim() const override { return dim_; }
  double Score(const Point& p) const override;
  /// Per-piece directions conflict by definition; reported as increasing
  /// for API completeness. Consumers must check IsMonotone() before
  /// trusting directions — corner bounds derived from them are invalid.
  Monotonicity direction(int) const override {
    return Monotonicity::kIncreasing;
  }
  bool IsMonotone() const override { return false; }
  std::unique_ptr<ScoringFunction> Clone() const override;
  std::string ToString() const override;

  const std::vector<MonotonePiece>& pieces() const { return pieces_; }

 private:
  PiecewiseFunction(std::vector<MonotonePiece> pieces, int dim)
      : pieces_(std::move(pieces)), dim_(dim) {}

  std::vector<MonotonePiece> pieces_;
  int dim_;
};

/// A continuous top-k query with a piecewise-monotone preference
/// function, evaluated as one constrained sub-query per piece.
///
/// Sub-queries occupy the id range [base_id, base_id + pieces). The
/// object is move-only and unregisters its sub-queries via Unregister()
/// (not automatically: destruction without Unregister leaves them
/// running, mirroring the raw engine API).
class PiecewiseTopKQuery {
 public:
  /// Registers one constrained top-k sub-query per piece on `engine`.
  /// Validates that every piece has a function of the engine's
  /// dimensionality and a domain inside the unit workspace. On failure,
  /// any sub-queries registered so far are rolled back.
  static Result<PiecewiseTopKQuery> Register(
      MonitorEngine* engine, QueryId base_id, int k,
      std::vector<MonotonePiece> pieces);

  /// The global top-k: the k best entries across all pieces, deduplicated
  /// by record id (boundary records may be reported by several pieces).
  Result<std::vector<ResultEntry>> CurrentResult() const;

  /// Terminates all sub-queries.
  Status Unregister();

  QueryId base_id() const { return base_id_; }
  int k() const { return k_; }
  std::size_t num_pieces() const { return num_pieces_; }

 private:
  PiecewiseTopKQuery(MonitorEngine* engine, QueryId base_id, int k,
                     std::size_t num_pieces)
      : engine_(engine), base_id_(base_id), k_(k), num_pieces_(num_pieces) {}

  MonitorEngine* engine_;
  QueryId base_id_;
  int k_;
  std::size_t num_pieces_;
};

}  // namespace topkmon

#endif  // TOPKMON_CORE_PIECEWISE_H_
