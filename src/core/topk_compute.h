// The top-k computation module (Section 4.2, Figure 6).
//
// Computes a query's top-k set by de-heaping grid cells in descending
// maxscore order and scanning their point lists, stopping as soon as the
// next cell's maxscore cannot beat the kth best score found. The module
// returns, besides the result itself, the two cell sets the maintenance
// algorithms need:
//   * processed cells — de-heaped and scanned; the query is registered in
//     their influence lists;
//   * frontier cells — en-heaped but never processed; TMA seeds its
//     influence-list cleanup walk with them (Section 4.3).
//
// ComputeTopKNaive implements the strawman of Section 4.2 (compute the
// maxscore of every cell, sort, scan in order) for the traversal ablation
// benchmark; both produce identical results.

#ifndef TOPKMON_CORE_TOPK_COMPUTE_H_
#define TOPKMON_CORE_TOPK_COMPUTE_H_

#include <vector>

#include "common/record.h"
#include "common/scoring.h"
#include "core/query.h"
#include "grid/cell_traversal.h"
#include "grid/grid.h"

namespace topkmon {

/// Output of one run of the computation module.
struct TopKComputation {
  /// Up to k entries in ResultOrder.
  std::vector<ResultEntry> result;
  /// Cells de-heaped and scanned, in processing order.
  std::vector<CellIndex> processed_cells;
  /// Cells still en-heaped at termination (the frontier).
  std::vector<CellIndex> frontier_cells;
  /// Points whose score was evaluated.
  std::uint64_t points_scored = 0;

  /// Score of the kth result, or -infinity if fewer than k were found.
  double KthScore(int k) const {
    return static_cast<int>(result.size()) >= k
               ? result[k - 1].score
               : -std::numeric_limits<double>::infinity();
  }
};

/// Runs the computation module for preference function `f` and result size
/// `k` over the points indexed in `grid`; point coordinates come straight
/// from the grid's lane-major point lists, so whole cells are batch-scored
/// without touching the window. When `constraint` is non-null, only points
/// inside it are considered and only cells intersecting it are visited
/// (constrained top-k, Section 7). `scratch` provides the visited marks and
/// the score buffer; it must not be shared with a concurrently live
/// traversal.
TopKComputation ComputeTopK(const Grid& grid, const ScoringFunction& f,
                            int k, TraversalScratch* scratch,
                            const Rect* constraint = nullptr);

/// The naive strawman: maxscore of every cell + full sort, identical
/// result and processed-cell semantics (no frontier; all unprocessed cells
/// with maxscore above the threshold would be the frontier equivalent).
TopKComputation ComputeTopKNaive(const Grid& grid, const ScoringFunction& f,
                                 int k, const Rect* constraint = nullptr);

}  // namespace topkmon

#endif  // TOPKMON_CORE_TOPK_COMPUTE_H_
