#include "core/brute_force_engine.h"

#include <algorithm>
#include <limits>

#include "core/piecewise_router.h"

namespace topkmon {

BruteForceEngine::BruteForceEngine(int dim, const WindowSpec& window)
    : dim_(dim),
      window_(window.kind == WindowKind::kCountBased
                  ? SlidingWindow::CountBased(window.capacity)
                  : SlidingWindow::TimeBased(window.span)) {}

Status BruteForceEngine::RegisterQuery(const QuerySpec& spec) {
  TOPKMON_RETURN_IF_ERROR(spec.Validate(dim_));
  if (IsInternalQueryId(spec.id)) {
    // BruteForce never decomposes, but the reserved range is refused
    // uniformly so callers observe one id-space contract per engine.
    return Status::InvalidArgument(
        "query id " + std::to_string(spec.id) +
        " is in the range reserved for engine-internal sub-queries");
  }
  if (queries_.count(spec.id) > 0) {
    return Status::AlreadyExists("query id " + std::to_string(spec.id) +
                                 " already registered");
  }
  QueryState state{spec, {}};
  Recompute(state);
  ++stats_.initial_computations;
  delta_.Report(spec.id, last_cycle_, state.result);
  queries_.emplace(spec.id, std::move(state));
  return Status::Ok();
}

Status BruteForceEngine::UnregisterQuery(QueryId id) {
  if (queries_.erase(id) == 0) {
    return Status::NotFound("query id " + std::to_string(id) +
                            " not registered");
  }
  delta_.Forget(id);
  return Status::Ok();
}

Status BruteForceEngine::ProcessCycle(Timestamp now,
                                      RecordSpan arrivals) {
  Stopwatch watch;
  ++stats_.cycles;
  for (const Record& p : arrivals) {
    TOPKMON_RETURN_IF_ERROR(ValidatePoint(p.position, dim_));
    TOPKMON_RETURN_IF_ERROR(window_.Append(p));
    ++stats_.arrivals;
  }
  stats_.expirations += window_.EvictExpired(now).size();
  for (auto& [qid, state] : queries_) {
    Recompute(state);
    ++stats_.recomputations;
    delta_.Report(qid, now, state.result);
  }
  last_cycle_ = now;
  stats_.maintenance_seconds += watch.ElapsedSeconds();
  return Status::Ok();
}

void BruteForceEngine::Recompute(QueryState& state) {
  TopKList top(state.spec.k);
  for (const Record& p : window_) {
    if (state.spec.constraint.has_value() &&
        !state.spec.constraint->Contains(p.position)) {
      continue;
    }
    ++stats_.points_scored;
    const double score = state.spec.function->Score(p.position);
    // A record scoring -infinity lies outside every piece of a piecewise
    // function: it is unrankable and excluded from the result entirely,
    // matching the decomposed evaluation on the grid engines (which never
    // see uncovered records at all).
    if (score == -std::numeric_limits<double>::infinity()) continue;
    top.Consider(p.id, score);
  }
  state.result = top.entries();
}

Result<std::vector<ResultEntry>> BruteForceEngine::CurrentResult(
    QueryId id) const {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query id " + std::to_string(id) +
                            " not registered");
  }
  return it->second.result;
}

MemoryBreakdown BruteForceEngine::Memory() const {
  MemoryBreakdown mb;
  mb.Add("window", window_.MemoryBytes());
  std::size_t query_bytes = 0;
  for (const auto& [qid, state] : queries_) {
    query_bytes += sizeof(QueryState) + VectorBytes(state.result);
  }
  mb.Add("query_table", query_bytes);
  return mb;
}

}  // namespace topkmon
