// Result-change reporting ("Report changes to the client", Figures 9/11).
//
// Clients of a monitoring server rarely want the full top-k every cycle;
// they want the delta. DeltaTracker compares each query's current result
// against the last reported one and invokes a client callback with the
// entries that entered and left. Tracking is off (and free) until a
// callback is installed.

#ifndef TOPKMON_CORE_DELTA_H_
#define TOPKMON_CORE_DELTA_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "core/query.h"

namespace topkmon {

/// The change in one query's result since the last report.
struct ResultDelta {
  QueryId query = 0;
  Timestamp when = 0;
  std::vector<ResultEntry> added;    ///< entries that entered the top-k
  std::vector<ResultEntry> removed;  ///< entries that left the top-k
};

/// Client callback; invoked once per query per cycle in which its result
/// changed (and once at registration with the initial result as `added`).
using DeltaCallback = std::function<void(const ResultDelta&)>;

/// Per-engine delta bookkeeping. Engines call Report() for every query at
/// the end of each processing cycle; the tracker diffs by record id and
/// fires the callback only on actual changes.
class DeltaTracker {
 public:
  /// Installs (or clears, with nullptr) the callback. Installing starts
  /// reporting from the *next* Report() call, which will treat the
  /// current result as entirely new.
  void SetCallback(DeltaCallback callback) {
    callback_ = std::move(callback);
    if (!callback_) last_reported_.clear();
  }

  /// True iff a callback is installed; engines skip all tracking work
  /// otherwise.
  bool enabled() const { return static_cast<bool>(callback_); }

  /// Diffs `current` against the last reported result of `query`, fires
  /// the callback when they differ, and remembers `current`.
  void Report(QueryId query, Timestamp when,
              const std::vector<ResultEntry>& current);

  /// Drops the stored state of a terminated query (no callback fired).
  void Forget(QueryId query) { last_reported_.erase(query); }

  std::size_t MemoryBytes() const;

 private:
  DeltaCallback callback_;
  std::unordered_map<QueryId, std::vector<ResultEntry>> last_reported_;
};

}  // namespace topkmon

#endif  // TOPKMON_CORE_DELTA_H_
