#include "core/sma_engine.h"

#include "core/influence.h"

namespace topkmon {

namespace {

SlidingWindow MakeWindow(const WindowSpec& spec) {
  return spec.kind == WindowKind::kCountBased
             ? SlidingWindow::CountBased(spec.capacity)
             : SlidingWindow::TimeBased(spec.span);
}

}  // namespace

SmaEngine::SmaEngine(const GridEngineOptions& options)
    : grid_(options.dim, options.ResolvedCellsPerAxis()),
      window_(MakeWindow(options.window)) {}

Status SmaEngine::RegisterQuery(const QuerySpec& spec) {
  TOPKMON_RETURN_IF_ERROR(spec.Validate(dim()));
  if (IsInternalQueryId(spec.id)) {
    return Status::InvalidArgument(
        "query id " + std::to_string(spec.id) +
        " is in the range reserved for engine-internal sub-queries");
  }
  if (queries_.count(spec.id) > 0 || piecewise_.count(spec.id) > 0) {
    return Status::AlreadyExists("query id " + std::to_string(spec.id) +
                                 " already registered");
  }
  if (!spec.function->IsMonotone()) {
    const auto* fn =
        dynamic_cast<const PiecewiseFunction*>(spec.function.get());
    if (fn == nullptr) {
      return Status::Unimplemented(
          "SMA requires a per-dimension monotone or piecewise-monotone "
          "scoring function; got '" + spec.function->ToString() + "'");
    }
    return RegisterPiecewise(spec, *fn);
  }
  return RegisterMonotone(spec, /*report_delta=*/true);
}

Status SmaEngine::RegisterMonotone(const QuerySpec& spec, bool report_delta) {
  auto [it, inserted] = queries_.emplace(spec.id, QueryState(spec));
  ++stats_.initial_computations;
  RecomputeFromScratch(spec.id, it->second);
  if (report_delta) {
    delta_.Report(spec.id, last_cycle_, it->second.skyband.TopK());
  }
  return Status::Ok();
}

Status SmaEngine::RegisterPiecewise(const QuerySpec& spec,
                                    const PiecewiseFunction& fn) {
  Result<std::vector<QuerySpec>> subs =
      DecomposePiecewise(spec, fn, &next_internal_id_);
  if (!subs.ok()) return subs.status();
  PiecewiseBook book;
  book.k = spec.k;
  book.subs.reserve(subs->size());
  for (const QuerySpec& sub : *subs) {
    const Status st = RegisterMonotone(sub, /*report_delta=*/false);
    if (!st.ok()) {
      for (QueryId sid : book.subs) (void)RemoveMonotone(sid);
      return st;
    }
    book.subs.push_back(sub.id);
  }
  auto [it, inserted] = piecewise_.emplace(spec.id, std::move(book));
  delta_.Report(spec.id, last_cycle_, MergedPiecewise(it->second));
  return Status::Ok();
}

Status SmaEngine::UnregisterQuery(QueryId id) {
  auto pit = piecewise_.find(id);
  if (pit != piecewise_.end()) {
    for (QueryId sid : pit->second.subs) (void)RemoveMonotone(sid);
    piecewise_.erase(pit);
    delta_.Forget(id);
    return Status::Ok();
  }
  if (IsInternalQueryId(id)) {
    return Status::NotFound("query id " + std::to_string(id) +
                            " not registered");
  }
  return RemoveMonotone(id);
}

Status SmaEngine::RemoveMonotone(QueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query id " + std::to_string(id) +
                            " not registered");
  }
  const QuerySpec& spec = it->second.spec;
  const Rect* constraint =
      spec.constraint.has_value() ? &*spec.constraint : nullptr;
  RemoveAllInfluence(grid_, *spec.function, id, &scratch_, constraint);
  queries_.erase(it);
  delta_.Forget(id);
  return Status::Ok();
}

Status SmaEngine::ProcessCycle(Timestamp now, RecordSpan arrivals) {
  Stopwatch watch;
  ++stats_.cycles;
  // -- Pins (Figure 11, lines 4-11) ----------------------------------------
  for (const Record& p : arrivals) {
    TOPKMON_RETURN_IF_ERROR(ValidatePoint(p.position, dim()));
    TOPKMON_RETURN_IF_ERROR(window_.Append(p));
    const CellIndex cell = grid_.LocateCell(p.position);
    grid_.InsertPoint(cell, p.id, p.position);
    ++stats_.arrivals;
    for (QueryId qid : grid_.InfluenceList(cell)) {
      QueryState& state = queries_.at(qid);
      if (state.spec.constraint.has_value() &&
          !state.spec.constraint->Contains(p.position)) {
        continue;
      }
      ++stats_.points_scored;
      const double score = state.spec.function->Score(p.position);
      if (score >= state.top_score) {
        stats_.skyband_evictions += state.skyband.Insert(p.id, score);
        ++stats_.skyband_insertions;
        state.changed = true;
      }
    }
  }
  // -- Pdel (lines 12-16) ----------------------------------------------------
  for (const Record& p : window_.EvictExpired(now)) {
    const CellIndex cell = grid_.LocateCell(p.position);
    grid_.ErasePointFifo(cell, p.id);
    ++stats_.expirations;
    for (QueryId qid : grid_.InfluenceList(cell)) {
      QueryState& state = queries_.at(qid);
      // An expiring record found in the skyband is necessarily its
      // earliest-arrival entry and a member of the current top-k
      // (Section 5, footnote 5); its removal affects no dominance counter.
      if (state.skyband.Remove(p.id)) state.changed = true;
    }
  }
  // -- Report / refill (lines 17-22) ----------------------------------------
  for (auto& [qid, state] : queries_) {
    if (!state.changed) continue;
    state.changed = false;
    ++stats_.result_changes;
    if (state.skyband.size() < static_cast<std::size_t>(state.spec.k) &&
        window_.size() > 0) {
      ++stats_.recomputations;
      RecomputeFromScratch(qid, state);
    }
  }
  last_cycle_ = now;
  if (delta_.enabled()) {
    for (const auto& [qid, state] : queries_) {
      if (IsInternalQueryId(qid)) continue;  // only parents are reported
      delta_.Report(qid, now, state.skyband.TopK());
    }
    for (const auto& [pid, book] : piecewise_) {
      delta_.Report(pid, now, MergedPiecewise(book));
    }
  }
  stats_.maintenance_seconds += watch.ElapsedSeconds();
  return Status::Ok();
}

void SmaEngine::RecomputeFromScratch(QueryId id, QueryState& state) {
  const QuerySpec& spec = state.spec;
  const Rect* constraint =
      spec.constraint.has_value() ? &*spec.constraint : nullptr;
  const TopKComputation computation =
      ComputeTopK(grid_, *spec.function, spec.k, &scratch_, constraint);
  stats_.cells_visited += computation.processed_cells.size();
  stats_.points_scored += computation.points_scored;
  state.skyband.Rebuild(computation.result);
  state.top_score = computation.KthScore(spec.k);
  AddInfluenceEntries(grid_, computation.processed_cells, id);
  CleanupStaleInfluence(grid_, *spec.function, computation.frontier_cells,
                        id, &scratch_);
}

Result<std::vector<ResultEntry>> SmaEngine::CurrentResult(QueryId id) const {
  auto pit = piecewise_.find(id);
  if (pit != piecewise_.end()) return MergedPiecewise(pit->second);
  auto it = queries_.find(id);
  if (it == queries_.end() || IsInternalQueryId(id)) {
    return Status::NotFound("query id " + std::to_string(id) +
                            " not registered");
  }
  return it->second.skyband.TopK();
}

std::vector<ResultEntry> SmaEngine::MergedPiecewise(
    const PiecewiseBook& book) const {
  std::vector<ResultEntry> merged;
  for (QueryId sid : book.subs) {
    const std::vector<ResultEntry> entries = queries_.at(sid).skyband.TopK();
    merged.insert(merged.end(), entries.begin(), entries.end());
  }
  return MergePiecewiseTopK(book.k, std::move(merged));
}

MemoryBreakdown SmaEngine::Memory() const {
  MemoryBreakdown mb = grid_.Memory();
  mb.Add("window", window_.MemoryBytes());
  std::size_t query_bytes = 0;
  for (const auto& [qid, state] : queries_) {
    // O(d + 3k): function parameters plus <id, score, DC> per skyband
    // entry (Section 6).
    query_bytes += sizeof(QueryState) + state.skyband.MemoryBytes() +
                   static_cast<std::size_t>(dim()) * sizeof(double);
  }
  mb.Add("query_table", query_bytes);
  mb.Add("scratch", scratch_.MemoryBytes());
  return mb;
}

double SmaEngine::AverageSkybandSize() const {
  if (queries_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& [qid, state] : queries_) {
    total += static_cast<double>(state.skyband.size());
  }
  return total / static_cast<double>(queries_.size());
}

}  // namespace topkmon
