// Query specifications, result lists and the query table entry types
// shared by all monitoring engines (Section 4.1).

#ifndef TOPKMON_CORE_QUERY_H_
#define TOPKMON_CORE_QUERY_H_

#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/record.h"
#include "common/scoring.h"
#include "common/status.h"
#include "grid/grid.h"

namespace topkmon {

/// One entry of a top-k result: a record id and its score under the
/// query's preference function.
struct ResultEntry {
  RecordId id = kInvalidRecordId;
  double score = 0.0;

  friend bool operator==(const ResultEntry& a, const ResultEntry& b) {
    return a.id == b.id && a.score == b.score;
  }
};

/// Result ordering: descending score; ties broken by descending id so that
/// the most recent (latest-expiring) record ranks first among equals —
/// this keeps equal-score replacements from evicting the entry that was
/// just inserted.
inline bool ResultOrder(const ResultEntry& a, const ResultEntry& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id > b.id;
}

/// A continuous top-k monitoring query as registered by a client:
/// identifier, result cardinality k, monotone preference function, and an
/// optional constraint region (constrained top-k, Section 7).
struct QuerySpec {
  QueryId id = 0;
  int k = 1;
  std::shared_ptr<const ScoringFunction> function;
  std::optional<Rect> constraint;

  /// Validates the spec against an engine of dimensionality `dim`.
  Status Validate(int dim) const;
};

/// The current top-k set of a query (q.top_list in the paper), kept sorted
/// by ResultOrder with at most k entries.
class TopKList {
 public:
  explicit TopKList(int k) : k_(k) { entries_.reserve(k); }

  int k() const { return k_; }
  std::size_t size() const { return entries_.size(); }
  bool full() const { return static_cast<int>(entries_.size()) == k_; }

  /// Score of the kth (worst) entry; -infinity while the list holds fewer
  /// than k entries. This is q.top_score, which implicitly defines the
  /// query's influence region (Section 4.1).
  double KthScore() const {
    return full() ? entries_.back().score
                  : -std::numeric_limits<double>::infinity();
  }

  /// Inserts a candidate if it qualifies (list not full, or score >= the
  /// current kth score), evicting the worst entry on overflow. Returns
  /// true iff the list changed.
  bool Consider(RecordId id, double score);

  /// Removes the entry with this id if present; returns true iff removed.
  bool Remove(RecordId id);

  bool Contains(RecordId id) const;

  /// Entries in ResultOrder (best first).
  const std::vector<ResultEntry>& entries() const { return entries_; }

  void Clear() { entries_.clear(); }

  std::size_t MemoryBytes() const { return VectorBytes(entries_); }

 private:
  int k_;
  std::vector<ResultEntry> entries_;
};

}  // namespace topkmon

#endif  // TOPKMON_CORE_QUERY_H_
