#include "core/simulation.h"

#include "util/rng.h"

namespace topkmon {

WindowSpec WorkloadSpec::MakeWindowSpec() const {
  if (window_kind == WindowKind::kCountBased) {
    return WindowSpec::Count(window_size);
  }
  const Timestamp span = static_cast<Timestamp>(
      (window_size + arrivals_per_cycle - 1) / arrivals_per_cycle);
  return WindowSpec::Time(span);
}

int WorkloadSpec::WarmupCycles() const {
  return static_cast<int>((window_size + arrivals_per_cycle - 1) /
                          arrivals_per_cycle);
}

std::vector<QuerySpec> WorkloadSpec::MakeQueries() const {
  // Query workload derives from an independent fork of the seed so that
  // changing Q or the stream leaves individual queries unchanged.
  Rng rng(seed ^ 0x9d2c5680cafebabeULL);
  std::vector<QuerySpec> out;
  out.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    QuerySpec spec;
    spec.id = static_cast<QueryId>(i + 1);
    spec.k = k;
    spec.function = MakeRandomFunction(family, dim,
                                       [&rng]() { return rng.Uniform(); });
    out.push_back(std::move(spec));
  }
  return out;
}

Result<SimulationReport> RunWorkload(MonitorEngine& engine,
                                     const WorkloadSpec& spec) {
  SimulationReport report;
  report.engine = engine.name();

  RecordSource source(
      MakeGenerator(spec.distribution, spec.dim, spec.seed));

  // Phase 1: warm the window up to ~N valid records (unmeasured).
  Stopwatch watch;
  Timestamp now = 0;
  const int warmup = spec.WarmupCycles();
  for (int c = 0; c < warmup; ++c) {
    ++now;
    Status st =
        engine.ProcessCycle(now, source.NextBatch(spec.arrivals_per_cycle,
                                                  now));
    if (!st.ok()) return st;
  }
  report.warmup_seconds = watch.ElapsedSeconds();

  // Phase 2: register the Q monitoring queries (initial computations).
  watch.Restart();
  for (const QuerySpec& q : spec.MakeQueries()) {
    Status st = engine.RegisterQuery(q);
    if (!st.ok()) return st;
  }
  report.register_seconds = watch.ElapsedSeconds();

  // Phase 3: the measured monitoring cycles (the paper's CPU time).
  const EngineStats before = engine.stats();
  watch.Restart();
  for (int c = 0; c < spec.num_cycles; ++c) {
    ++now;
    const std::vector<Record> batch =
        source.NextBatch(spec.arrivals_per_cycle, now);
    Stopwatch cycle_watch;
    Status st = engine.ProcessCycle(now, batch);
    report.cycle_seconds.Add(cycle_watch.ElapsedSeconds());
    if (!st.ok()) return st;
  }
  report.monitor_seconds = watch.ElapsedSeconds();
  // Report only the measured phase's counters, mirroring the paper's
  // measurement protocol (warm-up and registration excluded).
  report.stats = Subtract(engine.stats(), before);
  report.memory = engine.Memory();
  return report;
}

}  // namespace topkmon
