#include "core/influence.h"

namespace topkmon {

void AddInfluenceEntries(Grid& grid, const std::vector<CellIndex>& cells,
                         QueryId query) {
  for (CellIndex cell : cells) grid.AddInfluence(cell, query);
}

void CleanupStaleInfluence(Grid& grid, const ScoringFunction& f,
                           const std::vector<CellIndex>& seeds, QueryId query,
                           TraversalScratch* scratch) {
  WalkDescending(grid, f, seeds, scratch, [&grid, query](CellIndex cell) {
    // Expand only through cells that carried the query: stale regions are
    // contiguous in the score-decreasing direction (Section 4.3).
    return grid.RemoveInfluence(cell, query);
  });
}

void RemoveAllInfluence(Grid& grid, const ScoringFunction& f, QueryId query,
                        TraversalScratch* scratch, const Rect* constraint) {
  const CellIndex seed = constraint == nullptr
                             ? SeedCell(grid, f)
                             : ConstrainedSeedCell(grid, f, *constraint);
  WalkDescending(grid, f, {seed}, scratch, [&grid, query](CellIndex cell) {
    return grid.RemoveInfluence(cell, query);
  });
}

}  // namespace topkmon
