#include "core/update_stream_engine.h"

#include "core/influence.h"
#include "core/topk_compute.h"

namespace topkmon {

UpdateStreamTmaEngine::UpdateStreamTmaEngine(const GridEngineOptions& options)
    : grid_(options.dim, options.ResolvedCellsPerAxis()) {}

Status UpdateStreamTmaEngine::RegisterQuery(const QuerySpec& spec) {
  TOPKMON_RETURN_IF_ERROR(spec.Validate(dim()));
  if (queries_.count(spec.id) > 0) {
    return Status::AlreadyExists("query id " + std::to_string(spec.id) +
                                 " already registered");
  }
  auto [it, inserted] = queries_.emplace(spec.id, QueryState(spec));
  ++stats_.initial_computations;
  RecomputeFromScratch(spec.id, it->second);
  return Status::Ok();
}

Status UpdateStreamTmaEngine::UnregisterQuery(QueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query id " + std::to_string(id) +
                            " not registered");
  }
  const QuerySpec& spec = it->second.spec;
  const Rect* constraint =
      spec.constraint.has_value() ? &*spec.constraint : nullptr;
  RemoveAllInfluence(grid_, *spec.function, id, &scratch_, constraint);
  queries_.erase(it);
  return Status::Ok();
}

Status UpdateStreamTmaEngine::ProcessBatch(const std::vector<UpdateOp>& ops) {
  Stopwatch watch;
  ++stats_.cycles;
  for (const UpdateOp& op : ops) {
    if (op.kind == UpdateOp::Kind::kInsert) {
      const Record& p = op.record;
      TOPKMON_RETURN_IF_ERROR(ValidatePoint(p.position, dim()));
      TOPKMON_RETURN_IF_ERROR(pool_.Insert(p));
      const CellIndex cell = grid_.LocateCell(p.position);
      grid_.InsertPoint(cell, p.id, p.position);
      ++stats_.arrivals;
      for (QueryId qid : grid_.InfluenceList(cell)) {
        QueryState& state = queries_.at(qid);
        if (state.spec.constraint.has_value() &&
            !state.spec.constraint->Contains(p.position)) {
          continue;
        }
        ++stats_.points_scored;
        const double score = state.spec.function->Score(p.position);
        if (score >= state.top_list.KthScore()) {
          if (state.top_list.Consider(p.id, score)) ++stats_.result_changes;
        }
      }
    } else {
      const Result<Record> found = pool_.Find(op.record.id);
      if (!found.ok()) return found.status();
      const Record p = *found;
      TOPKMON_RETURN_IF_ERROR(pool_.Erase(p.id));
      const CellIndex cell = grid_.LocateCell(p.position);
      TOPKMON_RETURN_IF_ERROR(grid_.ErasePoint(cell, p.id));
      ++stats_.expirations;
      for (QueryId qid : grid_.InfluenceList(cell)) {
        QueryState& state = queries_.at(qid);
        // Deleting a current result record invalidates the list: the
        // replacement may lie anywhere below the kth score, so the query
        // must be recomputed (Section 7). The stale list keeps serving
        // membership checks until the end-of-batch repair.
        if (state.top_list.Contains(p.id)) state.affected = true;
      }
    }
  }
  for (auto& [qid, state] : queries_) {
    if (!state.affected) continue;
    state.affected = false;
    ++stats_.recomputations;
    ++stats_.result_changes;
    RecomputeFromScratch(qid, state);
  }
  stats_.maintenance_seconds += watch.ElapsedSeconds();
  return Status::Ok();
}

void UpdateStreamTmaEngine::RecomputeFromScratch(QueryId id,
                                                 QueryState& state) {
  const QuerySpec& spec = state.spec;
  const Rect* constraint =
      spec.constraint.has_value() ? &*spec.constraint : nullptr;
  const TopKComputation computation =
      ComputeTopK(grid_, *spec.function, spec.k, &scratch_, constraint);
  stats_.cells_visited += computation.processed_cells.size();
  stats_.points_scored += computation.points_scored;
  state.top_list.Clear();
  for (const ResultEntry& e : computation.result) {
    state.top_list.Consider(e.id, e.score);
  }
  AddInfluenceEntries(grid_, computation.processed_cells, id);
  CleanupStaleInfluence(grid_, *spec.function, computation.frontier_cells,
                        id, &scratch_);
}

Result<std::vector<ResultEntry>> UpdateStreamTmaEngine::CurrentResult(
    QueryId id) const {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query id " + std::to_string(id) +
                            " not registered");
  }
  return it->second.top_list.entries();
}

MemoryBreakdown UpdateStreamTmaEngine::Memory() const {
  MemoryBreakdown mb = grid_.Memory();
  mb.Add("record_pool", pool_.MemoryBytes());
  std::size_t query_bytes = 0;
  for (const auto& [qid, state] : queries_) {
    query_bytes += sizeof(QueryState) + state.top_list.MemoryBytes() +
                   static_cast<std::size_t>(dim()) * sizeof(double);
  }
  mb.Add("query_table", query_bytes);
  return mb;
}

}  // namespace topkmon
