#include "core/piecewise_router.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace topkmon {

std::optional<Rect> IntersectRects(const Rect& a, const Rect& b) {
  assert(a.dim() == b.dim());
  Point lo(a.dim());
  Point hi(a.dim());
  for (int i = 0; i < a.dim(); ++i) {
    lo[i] = std::max(a.lo()[i], b.lo()[i]);
    hi[i] = std::min(a.hi()[i], b.hi()[i]);
    if (lo[i] > hi[i]) return std::nullopt;
  }
  return Rect(lo, hi);
}

Result<std::vector<QuerySpec>> DecomposePiecewise(const QuerySpec& spec,
                                                  const PiecewiseFunction& fn,
                                                  QueryId* next_id) {
  const Rect base = spec.constraint.has_value()
                        ? *spec.constraint
                        : Rect::UnitSpace(fn.dim());
  std::vector<QuerySpec> subs;
  subs.reserve(fn.pieces().size());
  for (std::size_t i = 0; i < fn.pieces().size(); ++i) {
    const MonotonePiece& piece = fn.pieces()[i];
    if (!piece.function->IsMonotone()) {
      return Status::InvalidArgument(
          "piecewise piece " + std::to_string(i) +
          " has a non-monotone function; pieces must be monotone");
    }
    const std::optional<Rect> clipped = IntersectRects(piece.domain, base);
    if (!clipped.has_value()) continue;  // piece misses the constraint
    QuerySpec sub;
    sub.id = (*next_id)++;
    sub.k = spec.k;
    sub.function = piece.function;
    sub.constraint = *clipped;
    subs.push_back(std::move(sub));
  }
  return subs;
}

std::vector<ResultEntry> MergePiecewiseTopK(int k,
                                            std::vector<ResultEntry> merged) {
  std::sort(merged.begin(), merged.end(), ResultOrder);
  std::vector<ResultEntry> result;
  result.reserve(std::min(merged.size(), static_cast<std::size_t>(k)));
  for (const ResultEntry& e : merged) {
    if (!result.empty() && result.back().id == e.id) continue;
    result.push_back(e);
    if (static_cast<int>(result.size()) == k) break;
  }
  return result;
}

}  // namespace topkmon
