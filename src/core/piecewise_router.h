// Engine-internal decomposition of piecewise-monotone scoring specs.
//
// PR 7 closes the engine-side scenario gap: TMA, SMA and TSL accept a
// QuerySpec whose function is a PiecewiseFunction by registering one
// constrained monotone sub-query per piece in their ordinary query
// tables — the same construction PiecewiseTopKQuery performs from the
// outside (core/piecewise.h), moved inside the engine so the service
// tier, the journal replay path and plain callers need no special
// casing. ShardedEngine inherits the capability by forwarding specs to
// its inner engines.
//
// Sub-queries draw their ids from the reserved upper half of the
// QueryId space ([kInternalQueryIdBase, 2^32)). Every engine refuses
// external registrations in that range, hides the ids from
// CurrentResult/UnregisterQuery, and reports deltas only for the
// parent's merged top-k, so internal routing never leaks to callers.

#ifndef TOPKMON_CORE_PIECEWISE_ROUTER_H_
#define TOPKMON_CORE_PIECEWISE_ROUTER_H_

#include <optional>
#include <vector>

#include "core/piecewise.h"
#include "core/query.h"

namespace topkmon {

/// First id of the engine-internal sub-query range.
inline constexpr QueryId kInternalQueryIdBase = QueryId{1} << 31;

/// True for ids reserved for engine-internal sub-queries.
inline bool IsInternalQueryId(QueryId id) {
  return id >= kInternalQueryIdBase;
}

/// Per-parent bookkeeping: the requested result size and the internal
/// ids of the per-piece sub-queries (possibly empty when every piece
/// misses the parent's constraint region).
struct PiecewiseBook {
  int k = 0;
  std::vector<QueryId> subs;
};

/// The intersection [max(lo), min(hi)] of two rectangles of equal
/// dimensionality, or nullopt when they are disjoint.
std::optional<Rect> IntersectRects(const Rect& a, const Rect& b);

/// Builds the constrained monotone sub-specs for `spec`, whose function
/// must be the PiecewiseFunction `fn`, drawing fresh internal ids from
/// *next_id. Each piece's domain is clipped by the parent's constraint
/// region (so sub-queries stay inside the unit workspace); pieces that
/// miss it entirely yield no sub-query. Fails if any piece's function
/// is itself non-monotone.
Result<std::vector<QuerySpec>> DecomposePiecewise(const QuerySpec& spec,
                                                  const PiecewiseFunction& fn,
                                                  QueryId* next_id);

/// Merges concatenated per-piece result lists into the parent's global
/// top-k: ResultOrder sort, dedup by record id (a boundary record is
/// reported by several pieces with bit-identical scores — the pieces
/// agree on shared boundaries by contract), truncate to k.
std::vector<ResultEntry> MergePiecewiseTopK(int k,
                                            std::vector<ResultEntry> merged);

}  // namespace topkmon

#endif  // TOPKMON_CORE_PIECEWISE_ROUTER_H_
