// Brute-force reference engine.
//
// Recomputes every query by a full scan of the valid records each cycle.
// It is the correctness oracle for the integration tests (every other
// engine must match its result score sets cycle-for-cycle) and a
// no-index baseline datapoint for the benchmarks.

#ifndef TOPKMON_CORE_BRUTE_FORCE_ENGINE_H_
#define TOPKMON_CORE_BRUTE_FORCE_ENGINE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "stream/sliding_window.h"

namespace topkmon {

/// Full-scan reference implementation of MonitorEngine.
class BruteForceEngine final : public MonitorEngine {
 public:
  BruteForceEngine(int dim, const WindowSpec& window);

  std::string name() const override { return "BRUTE"; }
  int dim() const override { return dim_; }
  Status RegisterQuery(const QuerySpec& spec) override;
  Status UnregisterQuery(QueryId id) override;
  Status ProcessCycle(Timestamp now, RecordSpan arrivals) override;
  Result<std::vector<ResultEntry>> CurrentResult(QueryId id) const override;
  void SetDeltaCallback(DeltaCallback callback) override {
    delta_.SetCallback(std::move(callback));
  }
  std::size_t WindowSize() const override { return window_.size(); }
  Result<EngineSnapshot> SnapshotState() const override {
    return EngineSnapshot{
        last_cycle_, std::vector<Record>(window_.begin(), window_.end())};
  }
  const EngineStats& stats() const override { return stats_; }
  MemoryBreakdown Memory() const override;

 private:
  struct QueryState {
    QuerySpec spec;
    std::vector<ResultEntry> result;
  };

  void Recompute(QueryState& state);

  int dim_;
  SlidingWindow window_;
  std::unordered_map<QueryId, QueryState> queries_;
  EngineStats stats_;
  DeltaTracker delta_;
  Timestamp last_cycle_ = 0;
};

}  // namespace topkmon

#endif  // TOPKMON_CORE_BRUTE_FORCE_ENGINE_H_
