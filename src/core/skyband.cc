#include "core/skyband.h"

#include <algorithm>

#include "util/os_treap.h"

namespace topkmon {

namespace {

bool SkybandOrder(const SkybandEntry& a, const SkybandEntry& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id > b.id;
}

}  // namespace

void Skyband::Rebuild(const std::vector<ResultEntry>& result) {
  entries_.clear();
  entries_.reserve(result.size());
  // Process in descending (score, id) order; every id already in the tree
  // belongs to a record with higher score (or equal score and later
  // expiry), so the entries preceding `e.id` in expiry order — the ids
  // greater than e.id — are exactly its dominators (Section 5).
  OsTreap<RecordId> arrival_tree;
  for (const ResultEntry& e : result) {
    SkybandEntry entry;
    entry.id = e.id;
    entry.score = e.score;
    entry.dominance = static_cast<int>(arrival_tree.CountGreater(e.id));
    arrival_tree.Insert(e.id);
    entries_.push_back(entry);
  }
  assert(std::is_sorted(entries_.begin(), entries_.end(), SkybandOrder));
}

std::size_t Skyband::Insert(RecordId id, double score) {
  const SkybandEntry candidate{id, score, 0};
  auto pos = std::lower_bound(entries_.begin(), entries_.end(), candidate,
                              SkybandOrder);
  const std::size_t insert_at = static_cast<std::size_t>(pos - entries_.begin());
  // Every entry at or after `pos` has score <= `score` (the candidate is
  // the newest record, so the tie-break also places it first among
  // equals): increment their dominance counters and evict the ones that
  // reach k, compacting in a single pass.
  std::size_t evicted = 0;
  auto out = pos;
  for (auto it = pos; it != entries_.end(); ++it) {
    if (++it->dominance >= k_) {
      ++evicted;
      continue;
    }
    *out++ = *it;
  }
  entries_.erase(out, entries_.end());
  // The insertion index is unaffected: evictions happened at or after it.
  entries_.insert(entries_.begin() + static_cast<long>(insert_at), candidate);
  return evicted;
}

bool Skyband::Remove(RecordId id) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->id == id) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

bool Skyband::Contains(RecordId id) const {
  for (const SkybandEntry& e : entries_) {
    if (e.id == id) return true;
  }
  return false;
}

std::vector<ResultEntry> Skyband::TopK() const {
  const std::size_t n = std::min<std::size_t>(entries_.size(), k_);
  std::vector<ResultEntry> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ResultEntry{entries_[i].id, entries_[i].score});
  }
  return out;
}

std::vector<RecordId> BruteForceSkyband(
    const std::vector<ResultEntry>& records, int k) {
  std::vector<RecordId> out;
  for (const ResultEntry& p : records) {
    int dominators = 0;
    for (const ResultEntry& q : records) {
      if (q.score >= p.score && q.id > p.id) ++dominators;
    }
    if (dominators < k) out.push_back(p.id);
  }
  return out;
}

}  // namespace topkmon
