#include "grid/grid.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace topkmon {

void PointList::PushBack(RecordId id, const Point& p) {
  assert(p.dim() >= 1);
  assert(dim_ == 0 || p.dim() == dim_);
  if (dim_ == 0) dim_ = p.dim();
  const std::size_t idx = ids_.size();
  if (idx >= stride_) GrowLanes(idx + 1);
  ids_.push_back(id);
  for (int d = 0; d < dim_; ++d) {
    lanes_[static_cast<std::size_t>(d) * stride_ + idx] = p[d];
  }
}

void PointList::GrowLanes(std::size_t min_stride) {
  std::size_t stride = stride_ == 0 ? 16 : stride_ * 2;
  if (stride < min_stride) stride = min_stride;
  std::vector<double> lanes(static_cast<std::size_t>(dim_) * stride);
  // Copy each lane, dead head prefix included, so lane index i stays
  // aligned with ids_[i].
  for (int d = 0; d < dim_; ++d) {
    std::memcpy(lanes.data() + static_cast<std::size_t>(d) * stride,
                lanes_.data() + static_cast<std::size_t>(d) * stride_,
                ids_.size() * sizeof(double));
  }
  lanes_.swap(lanes);
  stride_ = stride;
}

void PointList::MaybeCompact() {
  if (head_ > 64 && head_ * 2 >= ids_.size()) {
    const std::size_t n = ids_.size() - head_;
    std::memmove(ids_.data(), ids_.data() + head_, n * sizeof(RecordId));
    ids_.resize(n);
    for (int d = 0; d < dim_; ++d) {
      double* lane = lanes_.data() + static_cast<std::size_t>(d) * stride_;
      std::memmove(lane, lane + head_, n * sizeof(double));
    }
    head_ = 0;
  }
}

bool PointList::Erase(RecordId id) {
  for (std::size_t i = head_; i < ids_.size(); ++i) {
    if (ids_[i] == id) {
      const std::size_t tail = ids_.size() - i - 1;
      std::memmove(ids_.data() + i, ids_.data() + i + 1,
                   tail * sizeof(RecordId));
      ids_.resize(ids_.size() - 1);
      for (int d = 0; d < dim_; ++d) {
        double* lane = lanes_.data() + static_cast<std::size_t>(d) * stride_;
        std::memmove(lane + i, lane + i + 1, tail * sizeof(double));
      }
      return true;
    }
  }
  return false;
}

Grid::Grid(int dim, int cells_per_axis)
    : dim_(dim),
      cells_per_axis_(cells_per_axis),
      delta_(1.0 / cells_per_axis) {
  assert(dim >= 1 && dim <= kMaxDims);
  assert(cells_per_axis >= 1);
  std::size_t n = 1;
  for (int i = 0; i < dim; ++i) n *= static_cast<std::size_t>(cells_per_axis);
  num_cells_ = n;
  cells_.resize(num_cells_);
}

int Grid::CellsPerAxisForBudget(int dim, std::size_t cell_budget) {
  assert(dim >= 1 && dim <= kMaxDims);
  assert(cell_budget >= 1);
  int per_axis = std::max(
      1, static_cast<int>(std::floor(std::pow(
             static_cast<double>(cell_budget), 1.0 / dim))));
  // Floating-point roots can land one off; correct upward then downward.
  auto total = [dim](int m) {
    std::size_t t = 1;
    for (int i = 0; i < dim; ++i) t *= static_cast<std::size_t>(m);
    return t;
  };
  while (total(per_axis + 1) <= cell_budget) ++per_axis;
  while (per_axis > 1 && total(per_axis) > cell_budget) --per_axis;
  return per_axis;
}

CellIndex Grid::LocateCell(const Point& p) const {
  assert(p.dim() == dim_);
  CellIndex index = 0;
  for (int i = 0; i < dim_; ++i) {
    int c = static_cast<int>(p[i] * cells_per_axis_);
    // Coordinate 1.0 belongs to the last cell.
    if (c >= cells_per_axis_) c = cells_per_axis_ - 1;
    if (c < 0) c = 0;
    index = index * static_cast<CellIndex>(cells_per_axis_) +
            static_cast<CellIndex>(c);
  }
  return index;
}

CellIndex Grid::Compose(const CellCoords& coords) const {
  CellIndex index = 0;
  for (int i = 0; i < dim_; ++i) {
    assert(coords[i] >= 0 && coords[i] < cells_per_axis_);
    index = index * static_cast<CellIndex>(cells_per_axis_) +
            static_cast<CellIndex>(coords[i]);
  }
  return index;
}

CellCoords Grid::Decompose(CellIndex cell) const {
  CellCoords coords{};
  for (int i = dim_ - 1; i >= 0; --i) {
    coords[i] = static_cast<std::int32_t>(
        cell % static_cast<CellIndex>(cells_per_axis_));
    cell /= static_cast<CellIndex>(cells_per_axis_);
  }
  return coords;
}

Rect Grid::CellBounds(CellIndex cell) const {
  const CellCoords coords = Decompose(cell);
  Point lo(dim_);
  Point hi(dim_);
  for (int i = 0; i < dim_; ++i) {
    lo[i] = coords[i] * delta_;
    hi[i] = std::min(1.0, (coords[i] + 1) * delta_);
  }
  return Rect(lo, hi);
}

Status Grid::ErasePoint(CellIndex cell, RecordId id) {
  if (!cells_[cell].points.Erase(id)) {
    return Status::NotFound("record " + std::to_string(id) +
                            " not in cell " + std::to_string(cell));
  }
  --num_points_;
  return Status::Ok();
}

std::size_t Grid::TotalInfluenceEntries() const {
  std::size_t total = 0;
  for (const Cell& c : cells_) total += c.influence.size();
  return total;
}

MemoryBreakdown Grid::Memory() const {
  MemoryBreakdown mb;
  mb.Add("grid_directory", cells_.capacity() * sizeof(Cell));
  std::size_t point_bytes = 0;
  std::size_t influence_bytes = 0;
  for (const Cell& c : cells_) {
    point_bytes += c.points.MemoryBytes();
    // Hash-set node: value + next pointer; buckets: one pointer each.
    influence_bytes +=
        c.influence.size() * (sizeof(QueryId) + sizeof(void*)) +
        c.influence.bucket_count() * sizeof(void*);
  }
  mb.Add("point_lists", point_bytes);
  mb.Add("influence_lists", influence_bytes);
  return mb;
}

}  // namespace topkmon
