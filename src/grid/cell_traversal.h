// Cell visiting order for monotone scoring functions (Section 4.2).
//
// The naive way to find the cells that may contain top-k results is to
// compute maxscore for every cell and sort. The paper's computation module
// instead exploits monotonicity (Figure 5b): the corner cell maximizing f
// has the globally highest maxscore, and after processing a cell, only its
// per-axis neighbors one step in the score-decreasing direction can be
// next. A max-heap seeded with the corner cell therefore enumerates cells
// in exact descending maxscore order while touching only the cells it
// returns plus their immediate frontier.
//
// MaxScoreTraversal implements that enumeration (optionally restricted to
// a constraint rectangle, Section 7); WalkDescending implements the
// order-free list walk used for influence-list cleanup (Section 4.3) and
// threshold queries (Section 7).

#ifndef TOPKMON_GRID_CELL_TRAVERSAL_H_
#define TOPKMON_GRID_CELL_TRAVERSAL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/scoring.h"
#include "grid/grid.h"

namespace topkmon {

/// Reusable visited-cell marks. Epoch-stamped so that Reset() is O(1) and
/// no per-traversal allocation or clearing happens once the buffer reaches
/// the grid size. One scratch must not be shared by two live traversals.
class TraversalScratch {
 public:
  /// Prepares the scratch for a new traversal over `num_cells` cells.
  void Reset(std::size_t num_cells);

  /// Marks a cell; returns true iff it was not yet marked this epoch.
  bool Mark(CellIndex cell) {
    assert(cell < marks_.size());
    if (marks_[cell] == epoch_) return false;
    marks_[cell] = epoch_;
    return true;
  }

  bool IsMarked(CellIndex cell) const {
    assert(cell < marks_.size());
    return marks_[cell] == epoch_;
  }

  /// Reusable batch-scoring buffer for the per-cell point scan
  /// (core/topk_compute.cc); it lives here so the per-engine scratch
  /// carries the allocation across cycles.
  std::vector<double>& scores() { return scores_; }

  std::size_t MemoryBytes() const {
    return VectorBytes(marks_) + VectorBytes(scores_);
  }

 private:
  std::vector<std::uint32_t> marks_;
  std::vector<double> scores_;
  std::uint32_t epoch_ = 0;
};

/// Enumerates grid cells in descending maxscore order for a monotone
/// scoring function, expanding neighbors lazily (Figure 5b / Figure 6).
class MaxScoreTraversal {
 public:
  struct Entry {
    CellIndex cell;
    double maxscore;
  };

  /// Starts a traversal. If `constraint` is non-null, only cells
  /// intersecting it are visited and maxscores are computed on the
  /// clipped rectangle cell ∩ constraint (constrained top-k, Section 7).
  /// `scratch` must outlive the traversal and not be shared concurrently.
  MaxScoreTraversal(const Grid& grid, const ScoringFunction& f,
                    TraversalScratch* scratch,
                    const Rect* constraint = nullptr);

  /// True iff at least one unprocessed cell remains en-heaped.
  bool HasNext() const { return !heap_.empty(); }

  /// Maxscore key of the next cell. Requires HasNext().
  double PeekMaxScore() const {
    assert(HasNext());
    return heap_.front().maxscore;
  }

  /// Pops the cell with the highest maxscore and en-heaps its
  /// score-decreasing neighbors (marking them so no cell is en-heaped
  /// twice). Requires HasNext().
  Entry Next();

  /// Number of cells returned by Next() so far.
  std::size_t num_processed() const { return num_processed_; }

  /// Cells currently en-heaped but not processed: the frontier left when
  /// the caller stops early. TMA seeds its influence-list cleanup walk
  /// with exactly these cells (Section 4.3).
  std::vector<CellIndex> RemainingFrontier() const;

 private:
  void Push(CellIndex cell);
  /// Clips `cell`'s bounds against the constraint; returns nullopt when the
  /// cell does not intersect it.
  std::optional<Rect> ClippedBounds(CellIndex cell) const;

  const Grid& grid_;
  const ScoringFunction& f_;
  TraversalScratch* scratch_;
  const Rect* constraint_;
  std::vector<Entry> heap_;  // std::push_heap/pop_heap max-heap on maxscore
  std::size_t num_processed_ = 0;
};

/// Order-free walk from `seeds` toward decreasing scores: visits each seed,
/// and whenever `visit(cell)` returns true, expands to the cell's
/// score-decreasing neighbors (each cell visited at most once).
/// Implements the "list" walks of Sections 4.3 (influence-list cleanup,
/// query termination) and 7 (threshold queries).
void WalkDescending(const Grid& grid, const ScoringFunction& f,
                    const std::vector<CellIndex>& seeds,
                    TraversalScratch* scratch,
                    const std::function<bool(CellIndex)>& visit);

/// The cell containing the best corner of the workspace for `f` — the
/// traversal seed of Figure 6 (top-right cell for functions increasing on
/// both axes).
CellIndex SeedCell(const Grid& grid, const ScoringFunction& f);

/// The seed cell for a constrained query (Figure 12): the cell containing
/// the best corner of `constraint`, corrected for the floating-point case
/// where the corner lies exactly on a grid line and naive location would
/// pick a cell that does not intersect the constraint.
CellIndex ConstrainedSeedCell(const Grid& grid, const ScoringFunction& f,
                              const Rect& constraint);

}  // namespace topkmon

#endif  // TOPKMON_GRID_CELL_TRAVERSAL_H_
