// Regular grid index with book-keeping (Section 4.1).
//
// The valid records are indexed by a regular grid over the unit workspace.
// Cell c_{i1,...,id} spans [i_j*delta, (i_j+1)*delta) per axis, so the cell
// covering a point is found in O(1). Each cell maintains:
//   * a point list — ids of the valid records inside the cell, in arrival
//     order. In the append-only model insertions and deletions are FIFO,
//     so the list is a vector with a moving head (amortized O(1) at both
//     ends). The update-stream model (Section 7) deletes from arbitrary
//     positions; cells are small (N * delta^d points on average), so a
//     bounded linear scan replaces the paper's per-cell hash table with
//     the same expected O(1) cost and better locality.
//   * an influence list IL_c — the set of queries whose influence region
//     intersects the cell, stored as a hash set for O(1) insert / erase /
//     membership (Section 4.1).

#ifndef TOPKMON_GRID_GRID_H_
#define TOPKMON_GRID_GRID_H_

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/geometry.h"
#include "common/record.h"
#include "common/status.h"
#include "util/memory_tracker.h"

namespace topkmon {

/// Identifier of a registered continuous query.
using QueryId = std::uint32_t;

/// Flattened index of a grid cell in [0, num_cells).
using CellIndex = std::uint32_t;

/// Per-axis integer coordinates of a cell.
using CellCoords = std::array<std::int32_t, kMaxDims>;

/// FIFO point list with a moving head: PushBack to insert, PopFront to
/// expire, bounded-scan Erase for update streams.
///
/// Besides the ids, the list stores the point coordinates in a lane-major
/// (structure-of-arrays) layout: lane d is a contiguous run of coordinate
/// d for every entry, so the top-k scan batch-scores a whole cell with
/// auto-vectorizable per-lane loops instead of chasing each record through
/// the window (grid entries grow from 8 to 8 + 8d bytes per point; the
/// paper's space numbers count only the id lane).
class PointList {
 public:
  void PushBack(RecordId id, const Point& p);

  /// Removes the oldest entry, which must equal `id` (append-only model
  /// expires strictly FIFO within each cell).
  void PopFront(RecordId id) {
    assert(head_ < ids_.size() && ids_[head_] == id);
    (void)id;
    ++head_;
    MaybeCompact();
  }

  /// Removes `id` wherever it is (update-stream model); returns false if
  /// absent.
  bool Erase(RecordId id);

  std::size_t size() const { return ids_.size() - head_; }
  bool empty() const { return size() == 0; }

  /// Valid entries, oldest first.
  const RecordId* begin() const { return ids_.data() + head_; }
  const RecordId* end() const { return ids_.data() + ids_.size(); }

  /// Contiguous coordinate-d lane of the valid entries, aligned with
  /// begin(): Lane(d)[i] is coordinate d of the record begin()[i].
  /// Requires 0 <= d < the dimensionality of the inserted points.
  const double* Lane(int d) const {
    assert(d >= 0 && d < dim_);
    return lanes_.data() + static_cast<std::size_t>(d) * stride_ + head_;
  }

  std::size_t MemoryBytes() const {
    return VectorBytes(ids_) + VectorBytes(lanes_);
  }

 private:
  void MaybeCompact();
  void GrowLanes(std::size_t min_stride);

  std::vector<RecordId> ids_;
  /// Lane-major coordinates; entry i of ids_ lives at lanes_[d*stride_+i].
  std::vector<double> lanes_;
  std::size_t stride_ = 0;  // per-lane capacity; >= ids_.size() once dim_>0
  std::size_t head_ = 0;
  int dim_ = 0;
};

/// The grid index. Owns per-cell point lists and influence lists; does not
/// own the records themselves (those live in the SlidingWindow /
/// RecordPool), keeping index entries at 8 bytes per point.
class Grid {
 public:
  /// Grid with `cells_per_axis` cells on each of `dim` axes.
  /// Requires 1 <= dim <= kMaxDims and cells_per_axis >= 1.
  Grid(int dim, int cells_per_axis);

  /// The paper sizes grids by total cell budget across dimensionalities
  /// (~12^4 cells regardless of d, Section 8): the largest per-axis count
  /// whose d-th power does not exceed `cell_budget` (at least 1).
  static int CellsPerAxisForBudget(int dim, std::size_t cell_budget);

  int dim() const { return dim_; }
  int cells_per_axis() const { return cells_per_axis_; }
  std::size_t num_cells() const { return num_cells_; }
  /// Cell extent per axis (the paper's delta).
  double delta() const { return delta_; }

  /// O(1) location of the cell covering `p` (Section 4.1). Coordinates
  /// exactly equal to 1.0 map to the last cell.
  CellIndex LocateCell(const Point& p) const;

  /// Flattened index <-> per-axis coordinates.
  CellIndex Compose(const CellCoords& coords) const;
  CellCoords Decompose(CellIndex cell) const;

  /// The rectangle covered by a cell.
  Rect CellBounds(CellIndex cell) const;

  // -- Point lists ---------------------------------------------------------

  /// Appends `id` with its coordinates to the point list of `cell`
  /// (arrival). `p` must be the point that LocateCell mapped to `cell`.
  void InsertPoint(CellIndex cell, RecordId id, const Point& p) {
    cells_[cell].points.PushBack(id, p);
    ++num_points_;
  }

  /// FIFO removal on expiration (append-only model). `id` must be the
  /// oldest entry of the cell.
  void ErasePointFifo(CellIndex cell, RecordId id) {
    cells_[cell].points.PopFront(id);
    --num_points_;
  }

  /// Positional removal (update-stream model). Returns NotFound if the id
  /// is not in the cell.
  Status ErasePoint(CellIndex cell, RecordId id);

  /// The point list of a cell (oldest first).
  const PointList& PointsIn(CellIndex cell) const {
    return cells_[cell].points;
  }

  /// Total number of indexed points.
  std::size_t num_points() const { return num_points_; }

  // -- Influence lists -----------------------------------------------------

  /// Registers query `q` in IL_cell (idempotent).
  void AddInfluence(CellIndex cell, QueryId q) {
    cells_[cell].influence.insert(q);
  }

  /// Removes query `q` from IL_cell; returns true iff it was present.
  bool RemoveInfluence(CellIndex cell, QueryId q) {
    return cells_[cell].influence.erase(q) > 0;
  }

  bool HasInfluence(CellIndex cell, QueryId q) const {
    return cells_[cell].influence.count(q) > 0;
  }

  const std::unordered_set<QueryId>& InfluenceList(CellIndex cell) const {
    return cells_[cell].influence;
  }

  /// Sum of influence-list sizes across all cells (book-keeping volume).
  std::size_t TotalInfluenceEntries() const;

  /// Structure-size accounting for the space experiments (Figures 14b, 20):
  /// cell directory, point lists, influence lists.
  MemoryBreakdown Memory() const;

 private:
  struct Cell {
    PointList points;
    std::unordered_set<QueryId> influence;
  };

  int dim_;
  int cells_per_axis_;
  std::size_t num_cells_;
  double delta_;
  std::size_t num_points_ = 0;
  std::vector<Cell> cells_;
};

}  // namespace topkmon

#endif  // TOPKMON_GRID_GRID_H_
